module icbtc

go 1.24
