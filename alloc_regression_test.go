package icbtc_test

import (
	"testing"

	"icbtc/internal/btc"
	"icbtc/internal/canister"
	"icbtc/internal/experiments"
	"icbtc/internal/ic"
)

// TestGetUTXOsPageAllocations pins the allocation budget of a full
// get_utxos page served from the ordered stable index: one context, one
// page slice, one result — the indexed read path must stay sort-free and
// bucket-copy-free. The pre-index implementation spent 36 allocations per
// request on this workload; a regression past the pinned budget means the
// streaming path degraded.
func TestGetUTXOsPageAllocations(t *testing.T) {
	f := experiments.NewFeeder(btc.Regtest, 6, 9)
	var h [20]byte
	h[0] = 0x42
	addr := btc.NewP2PKHAddress(h, btc.Regtest)
	script := btc.PayToAddrScript(addr)
	if _, err := f.FeedBlock([]experiments.TxSpec{{Outputs: experiments.PayN(script, 1000, 546)}}); err != nil {
		t.Fatal(err)
	}
	if err := f.FeedEmpty(8); err != nil {
		t.Fatal(err)
	}
	args := canister.GetUTXOsArgs{Address: addr.String()}
	avg := testing.AllocsPerRun(200, func() {
		ctx := f.QueryCtx()
		res, err := f.Canister.GetUTXOs(ctx, args)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.UTXOs) != 1000 {
			t.Fatalf("got %d UTXOs", len(res.UTXOs))
		}
	})
	// Budget: context (with embedded meter), page slice, result struct,
	// plus one of slack for runtime noise.
	if avg > 4 {
		t.Fatalf("get_utxos page allocates %.1f times per request, budget is 4", avg)
	}
}

// TestBalanceAllocations pins the indexed get_balance path: the stable part
// is an O(1) running total, so a cold query against a deep stable bucket
// must stay within a handful of allocations.
func TestBalanceAllocations(t *testing.T) {
	f := experiments.NewFeeder(btc.Regtest, 6, 11)
	var h [20]byte
	h[0] = 0x43
	addr := btc.NewP2PKHAddress(h, btc.Regtest)
	script := btc.PayToAddrScript(addr)
	if _, err := f.FeedBlock([]experiments.TxSpec{{Outputs: experiments.PayN(script, 500, 546)}}); err != nil {
		t.Fatal(err)
	}
	if err := f.FeedEmpty(8); err != nil {
		t.Fatal(err)
	}
	args := canister.GetBalanceArgs{Address: addr.String()}
	avg := testing.AllocsPerRun(200, func() {
		ctx := f.QueryCtx()
		ctx.Kind = ic.KindUpdate // bypass the balance cache, measure the merge
		if _, err := f.Canister.GetBalance(ctx, args); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 4 {
		t.Fatalf("get_balance allocates %.1f times per request, budget is 4", avg)
	}
}
