package icbtc_test

import (
	"math/rand"
	"testing"

	"icbtc/internal/btc"
	"icbtc/internal/canister"
	"icbtc/internal/experiments"
	"icbtc/internal/ic"
	"icbtc/internal/utxo"
)

// TestGetUTXOsPageAllocations pins the allocation budget of a full
// get_utxos page served from the ordered stable index: one context, one
// page slice, one result — the indexed read path must stay sort-free and
// bucket-copy-free. The pre-index implementation spent 36 allocations per
// request on this workload; a regression past the pinned budget means the
// streaming path degraded.
func TestGetUTXOsPageAllocations(t *testing.T) {
	f := experiments.NewFeeder(btc.Regtest, 6, 9)
	var h [20]byte
	h[0] = 0x42
	addr := btc.NewP2PKHAddress(h, btc.Regtest)
	script := btc.PayToAddrScript(addr)
	if _, err := f.FeedBlock([]experiments.TxSpec{{Outputs: experiments.PayN(script, 1000, 546)}}); err != nil {
		t.Fatal(err)
	}
	if err := f.FeedEmpty(8); err != nil {
		t.Fatal(err)
	}
	args := canister.GetUTXOsArgs{Address: addr.String()}
	avg := testing.AllocsPerRun(200, func() {
		ctx := f.QueryCtx()
		res, err := f.Canister.GetUTXOs(ctx, args)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.UTXOs) != 1000 {
			t.Fatalf("got %d UTXOs", len(res.UTXOs))
		}
	})
	// Budget: context (with embedded meter), page slice, result struct,
	// plus one of slack for runtime noise.
	if avg > 4 {
		t.Fatalf("get_utxos page allocates %.1f times per request, budget is 4", avg)
	}
}

// TestApplyBlockAllocations pins the batched staged apply: one staging pass
// (presized arenas and maps) plus one ordered merge per touched bucket,
// followed by a full unapply. A regression toward per-entry allocation
// patterns (bucket reallocations, unsized undo growth) blows the budget.
func TestApplyBlockAllocations(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	scripts := make([][]byte, 4)
	for i := range scripts {
		var h [20]byte
		rng.Read(h[:])
		scripts[i] = btc.PayToPubKeyHashScript(h)
	}
	set := utxo.New(btc.Regtest)
	mkBlock := func(n int) *btc.Block {
		blk := &btc.Block{}
		for tr := 0; tr < 50; tr++ {
			tx := &btc.Transaction{Version: 2, Inputs: []btc.TxIn{{
				PreviousOutPoint: btc.OutPoint{TxID: btc.ZeroHash, Vout: 0xffffffff},
				SignatureScript:  []byte{byte(n), byte(n >> 8), byte(tr), byte(rng.Intn(256))},
			}}}
			for o := 0; o < 4; o++ {
				tx.Outputs = append(tx.Outputs, btc.TxOut{Value: 546, PkScript: scripts[(tr+o)%len(scripts)]})
			}
			blk.Transactions = append(blk.Transactions, tx)
		}
		blk.TxIDs() // seal outside the measured region
		return blk
	}
	// Warm the buckets so merges land in occupied buckets, then measure
	// apply+unapply round trips (distinct blocks each run, same shape).
	if _, _, err := set.ApplyBlock(mkBlock(0), 1); err != nil {
		t.Fatal(err)
	}
	n := 1
	avg := testing.AllocsPerRun(100, func() {
		n++
		blk := mkBlock(n)
		undo, _, err := set.ApplyBlock(blk, int64(n))
		if err != nil {
			t.Fatal(err)
		}
		if err := set.UnapplyBlock(undo); err != nil {
			t.Fatal(err)
		}
	})
	// The block itself costs ~350 allocations to build; staging, commit,
	// and unapply must stay within ~1.3k on top of that for 50 txs / 200
	// outputs, plus slack for runtime noise.
	if avg > 2200 {
		t.Fatalf("apply+unapply of a 200-output block allocates %.0f times, budget is 2200", avg)
	}
}

// TestBalanceAllocations pins the indexed get_balance path: the stable part
// is an O(1) running total, so a cold query against a deep stable bucket
// must stay within a handful of allocations.
func TestBalanceAllocations(t *testing.T) {
	f := experiments.NewFeeder(btc.Regtest, 6, 11)
	var h [20]byte
	h[0] = 0x43
	addr := btc.NewP2PKHAddress(h, btc.Regtest)
	script := btc.PayToAddrScript(addr)
	if _, err := f.FeedBlock([]experiments.TxSpec{{Outputs: experiments.PayN(script, 500, 546)}}); err != nil {
		t.Fatal(err)
	}
	if err := f.FeedEmpty(8); err != nil {
		t.Fatal(err)
	}
	args := canister.GetBalanceArgs{Address: addr.String()}
	avg := testing.AllocsPerRun(200, func() {
		ctx := f.QueryCtx()
		ctx.Kind = ic.KindUpdate // bypass the balance cache, measure the merge
		if _, err := f.Canister.GetBalance(ctx, args); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 4 {
		t.Fatalf("get_balance allocates %.1f times per request, budget is 4", avg)
	}
}
