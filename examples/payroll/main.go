// Payroll: a timer-driven decentralized payroll — the second application
// class the paper's introduction motivates. A payroll canister funded in
// bitcoin pays every employee on a schedule using canister timers ("
// canisters can schedule the execution of (parts of) their own code using
// timers, in contrast to most other smart contract platforms", §II-A) and
// threshold-ECDSA signatures.
//
// Run with: go run ./examples/payroll
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"time"

	"icbtc/internal/btc"
	"icbtc/internal/canister"
	"icbtc/internal/core"
	"icbtc/internal/ic"
	"icbtc/internal/utxo"
)

// Employee is one payee on the payroll.
type Employee struct {
	Name    string
	Address string
	Salary  int64 // satoshi per pay period
}

// PayrollCanister pays employees from a threshold-key treasury each period.
type PayrollCanister struct {
	BitcoinID ic.CanisterID
	Network   btc.Network
	Employees []Employee
	// Period is the pay interval in consensus timer ticks (blocks).
	Period int

	ticks    int
	payRuns  int
	lastTxID btc.Hash
	payError string
}

// Update implements ic.Canister.
func (p *PayrollCanister) Update(ctx *ic.CallContext, method string, arg any) (any, error) {
	switch method {
	case "treasury_address":
		return p.treasuryAddress(ctx)
	case "pay_runs":
		return p.payRuns, nil
	case "last_tx":
		return p.lastTxID, nil
	case "last_error":
		return p.payError, nil
	default:
		return nil, fmt.Errorf("payroll: no method %q", method)
	}
}

// Query implements ic.Canister.
func (p *PayrollCanister) Query(ctx *ic.CallContext, method string, arg any) (any, error) {
	return p.Update(ctx, method, arg)
}

// OnTimer fires once per finalized block; every Period ticks it runs a pay
// cycle.
func (p *PayrollCanister) OnTimer(ctx *ic.CallContext) {
	p.ticks++
	if p.Period <= 0 || p.ticks%p.Period != 0 {
		return
	}
	if err := p.runPayCycle(ctx); err != nil {
		// Record and carry on; the next period retries.
		p.payError = err.Error()
	}
}

func (p *PayrollCanister) treasuryAddress(ctx *ic.CallContext) (string, error) {
	pub := ctx.ECDSAPublicKey()
	if pub == nil {
		return "", errors.New("payroll: no threshold key")
	}
	return btc.AddressFromPubKey(pub, p.Network).String(), nil
}

// runPayCycle builds one transaction paying every employee, threshold-signs
// it, and submits it through the Bitcoin canister.
func (p *PayrollCanister) runPayCycle(ctx *ic.CallContext) error {
	treasury, err := p.treasuryAddress(ctx)
	if err != nil {
		return err
	}
	var totalOwed int64
	for _, e := range p.Employees {
		totalOwed += e.Salary
	}
	const fee = 1000

	v, err := ctx.Call(p.BitcoinID, "get_utxos", canister.GetUTXOsArgs{Address: treasury})
	if err != nil {
		return err
	}
	res := v.(*canister.GetUTXOsResult)
	var selected []utxo.UTXO
	var total int64
	for _, u := range res.UTXOs {
		selected = append(selected, u)
		total += u.Value
		if total >= totalOwed+fee {
			break
		}
	}
	if total < totalOwed+fee {
		return fmt.Errorf("payroll: treasury has %d, needs %d", total, totalOwed+fee)
	}

	tx := &btc.Transaction{Version: 2}
	for _, u := range selected {
		tx.Inputs = append(tx.Inputs, btc.TxIn{PreviousOutPoint: u.OutPoint, Sequence: 0xffffffff})
	}
	for _, e := range p.Employees {
		dest, err := btc.ParseAddress(e.Address, p.Network)
		if err != nil {
			return fmt.Errorf("payroll: employee %s: %w", e.Name, err)
		}
		tx.Outputs = append(tx.Outputs, btc.TxOut{Value: e.Salary, PkScript: btc.PayToAddrScript(dest)})
	}
	if change := total - totalOwed - fee; change > 0 {
		self, err := btc.ParseAddress(treasury, p.Network)
		if err != nil {
			return err
		}
		tx.Outputs = append(tx.Outputs, btc.TxOut{Value: change, PkScript: btc.PayToAddrScript(self)})
	}
	pub := ctx.ECDSAPublicKey()
	for i := range tx.Inputs {
		digest, err := btc.SignatureHash(tx, i, selected[i].PkScript)
		if err != nil {
			return err
		}
		der, err := ctx.SignWithECDSA(digest[:])
		if err != nil {
			return err
		}
		tx.Inputs[i].SignatureScript = btc.BuildP2PKHUnlockScript(der, pub)
	}
	if _, err := ctx.Call(p.BitcoinID, "send_transaction", canister.SendTransactionArgs{RawTx: tx.Bytes()}); err != nil {
		return err
	}
	p.payRuns++
	p.lastTxID = tx.TxID()
	p.payError = ""
	return nil
}

var (
	_ ic.Canister     = (*PayrollCanister)(nil)
	_ ic.TimerHandler = (*PayrollCanister)(nil)
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Println("payroll:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("== Setting up the payroll ==")
	integ, err := core.New(core.Options{Seed: 9})
	if err != nil {
		return err
	}
	alice := btc.NewP2PKHAddress([20]byte{0xA1, 0x1C}, integ.Params.Network)
	bob := btc.NewP2PKHAddress([20]byte{0xB0, 0xB0}, integ.Params.Network)
	carol := btc.NewP2PKHAddress([20]byte{0xCA, 0x01}, integ.Params.Network)
	payroll := &PayrollCanister{
		BitcoinID: core.BitcoinCanisterID,
		Network:   integ.Params.Network,
		Employees: []Employee{
			{Name: "alice", Address: alice.String(), Salary: 2_000_000},
			{Name: "bob", Address: bob.String(), Salary: 1_500_000},
			{Name: "carol", Address: carol.String(), Salary: 1_000_000},
		},
		Period: 30, // every 30 finalized blocks (~30 s simulated)
	}
	integ.InstallCanister("payroll", payroll)
	integ.Start()
	integ.RunFor(5 * time.Second)

	if _, err := integ.MineBlocks(2); err != nil {
		return err
	}
	res, err := integ.CallCanister("payroll", "treasury_address", nil)
	if err != nil {
		return err
	}
	treasury := res.Value.(string)
	fmt.Printf("   treasury (threshold key): %s\n", treasury)

	fmt.Println("== Funding the treasury with 0.5 BTC ==")
	if _, err := core.FundAddress(integ, treasury, 50_000_000); err != nil {
		return err
	}
	if err := integ.AwaitCanisterHeight(3, 3*time.Minute); err != nil {
		return err
	}

	fmt.Println("== Letting the timer run one pay period ==")
	deadline := integ.Now().Add(5 * time.Minute)
	for integ.Now().Before(deadline) {
		integ.RunFor(10 * time.Second)
		res, err = integ.CallCanister("payroll", "pay_runs", nil)
		if err != nil {
			return err
		}
		if res.Value.(int) >= 1 {
			break
		}
	}
	if res.Value.(int) < 1 {
		errRes, _ := integ.CallCanister("payroll", "last_error", nil)
		return fmt.Errorf("no pay run executed (last error: %v)", errRes.Value)
	}
	res, err = integ.CallCanister("payroll", "last_tx", nil)
	if err != nil {
		return err
	}
	payTx := res.Value.(btc.Hash)
	fmt.Printf("   pay run executed: %s\n", payTx)

	if err := integ.AwaitTxInMempool(payTx, 2*time.Minute); err != nil {
		return err
	}
	if _, err := integ.MineBlocks(1); err != nil {
		return err
	}
	if err := integ.AwaitCanisterHeight(4, 2*time.Minute); err != nil {
		return err
	}
	for _, e := range payroll.Employees {
		bal, _, err := integ.GetBalance(e.Address, 0, false)
		if err != nil {
			return err
		}
		fmt.Printf("   %s received %d sat (salary %d)\n", e.Name, bal, e.Salary)
		if bal != e.Salary {
			return fmt.Errorf("%s paid %d, want %d", e.Name, bal, e.Salary)
		}
	}
	fmt.Println("payroll complete")
	return nil
}
