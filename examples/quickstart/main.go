// Quickstart: spin up the full architecture — a simulated Bitcoin network,
// an IC subnet with the Bitcoin canister, and per-replica Bitcoin adapters —
// then exercise the read and write paths end to end:
//
//  1. mine blocks and watch the canister ingest them,
//  2. read a balance via a fast query and a certified replicated call,
//  3. submit a Bitcoin transaction through send_transaction and watch it
//     reach the Bitcoin network and confirm.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"icbtc/internal/btc"
	"icbtc/internal/core"
	"icbtc/internal/ic"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Println("quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("== 1. Building the integration (8 Bitcoin nodes, 13-replica IC subnet) ==")
	subnetCfg := ic.DefaultConfig()
	subnetCfg.DisableThresholdKeys = true // not needed for raw-tx quickstart
	integ, err := core.New(core.Options{Seed: 42, Subnet: &subnetCfg})
	if err != nil {
		return err
	}
	integ.Start()
	integ.RunFor(5 * time.Second) // adapters discover Bitcoin peers

	fmt.Println("== 2. Mining 8 blocks on the Bitcoin network ==")
	height, err := integ.MineBlocks(8)
	if err != nil {
		return err
	}
	fmt.Printf("   Bitcoin chain height: %d\n", height)

	fmt.Println("== 3. Waiting for the Bitcoin canister to ingest the chain ==")
	if err := integ.AwaitCanisterHeight(8, 3*time.Minute); err != nil {
		return err
	}
	fmt.Printf("   canister tip=%d anchor=%d stable-UTXOs=%d synced=%v\n",
		integ.Canister.TipHeight(), integ.Canister.AnchorHeight(),
		integ.Canister.StableUTXOCount(), integ.Canister.Synced())

	miner := integ.MinerAddress()
	fmt.Printf("== 4. Reading the miner's balance (%s) ==\n", miner)
	qBal, qRes, err := integ.GetBalance(miner.String(), 0, false)
	if err != nil {
		return err
	}
	fmt.Printf("   query:      %d sat in %v (uncertified)\n", qBal, qRes.Latency.Round(time.Millisecond))
	rBal, rRes, err := integ.GetBalance(miner.String(), 0, true)
	if err != nil {
		return err
	}
	fmt.Printf("   replicated: %d sat in %v (threshold-certified: %v)\n",
		rBal, rRes.Latency.Round(time.Millisecond), len(rRes.Signature) > 0 || rRes.Certified)

	fmt.Println("== 5. Spending a coinbase through send_transaction ==")
	dest := btc.NewP2PKHAddress([20]byte{0xD0, 0x0D}, integ.Params.Network)
	node := integ.Bitcoin.Nodes[0]
	utxos := node.UTXOView().UTXOsForAddress(miner.String())
	tx := &btc.Transaction{
		Version: 2,
		Inputs:  []btc.TxIn{{PreviousOutPoint: utxos[0].OutPoint, Sequence: 0xffffffff}},
		Outputs: []btc.TxOut{{Value: utxos[0].Value - 1000, PkScript: btc.PayToAddrScript(dest)}},
	}
	if err := btc.SignInput(tx, 0, utxos[0].PkScript, integ.MinerKey()); err != nil {
		return err
	}
	if _, err := integ.SendTransaction(tx.Bytes()); err != nil {
		return err
	}
	fmt.Printf("   submitted %s\n", tx.TxID())
	if err := integ.AwaitTxInMempool(tx.TxID(), 2*time.Minute); err != nil {
		return err
	}
	fmt.Println("   transaction reached the Bitcoin network's mempools")

	if _, err := integ.MineBlocks(1); err != nil {
		return err
	}
	if err := integ.AwaitCanisterHeight(9, 2*time.Minute); err != nil {
		return err
	}
	bal, _, err := integ.GetBalance(dest.String(), 1, false)
	if err != nil {
		return err
	}
	fmt.Printf("== 6. Destination balance with 1 confirmation: %d sat ==\n", bal)
	fmt.Println("quickstart complete")
	return nil
}
