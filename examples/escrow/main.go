// Escrow: a decentralized escrow service holding real (simulated) bitcoin
// under the subnet's threshold-ECDSA key — one of the applications the
// paper's introduction motivates ("decentralized payroll or escrow
// systems").
//
// The escrow canister:
//
//   - derives a deposit address from the subnet threshold key (no party —
//     not even a single IC node — can unilaterally move the funds),
//   - watches the deposit through the Bitcoin canister's get_utxos with a
//     confirmation requirement,
//   - on "release" threshold-signs a payout to the seller,
//   - on "refund" threshold-signs a payout back to the buyer.
//
// Run with: go run ./examples/escrow
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"time"

	"icbtc/internal/btc"
	"icbtc/internal/canister"
	"icbtc/internal/core"
	"icbtc/internal/ic"
	"icbtc/internal/utxo"
)

// EscrowCanister holds a buyer's deposit until released or refunded.
type EscrowCanister struct {
	BitcoinID ic.CanisterID
	Network   btc.Network
	// Seller and Buyer are the payout addresses.
	Seller, Buyer string
	// RequiredConfirmations gates the deposit check (the paper's c*).
	RequiredConfirmations int64
	// state: one of "open", "funded", "released", "refunded".
	state string
}

// Update implements ic.Canister.
func (e *EscrowCanister) Update(ctx *ic.CallContext, method string, arg any) (any, error) {
	if e.state == "" {
		e.state = "open"
	}
	switch method {
	case "deposit_address":
		return e.depositAddress(ctx)
	case "check_funding":
		amount, ok := arg.(int64)
		if !ok {
			return nil, fmt.Errorf("escrow: check_funding wants int64 amount, got %T", arg)
		}
		return e.checkFunding(ctx, amount)
	case "release":
		return e.payout(ctx, e.Seller, "released")
	case "refund":
		return e.payout(ctx, e.Buyer, "refunded")
	case "state":
		return e.state, nil
	default:
		return nil, fmt.Errorf("escrow: no method %q", method)
	}
}

// Query implements ic.Canister.
func (e *EscrowCanister) Query(ctx *ic.CallContext, method string, arg any) (any, error) {
	switch method {
	case "state":
		if e.state == "" {
			return "open", nil
		}
		return e.state, nil
	case "deposit_address":
		return e.depositAddress(ctx)
	default:
		return nil, fmt.Errorf("escrow: no query method %q", method)
	}
}

func (e *EscrowCanister) depositAddress(ctx *ic.CallContext) (string, error) {
	pub := ctx.ECDSAPublicKey()
	if pub == nil {
		return "", errors.New("escrow: no threshold key")
	}
	return btc.AddressFromPubKey(pub, e.Network).String(), nil
}

// checkFunding verifies the deposit holds at least amount satoshi with the
// required confirmations, moving the escrow to "funded".
func (e *EscrowCanister) checkFunding(ctx *ic.CallContext, amount int64) (bool, error) {
	addr, err := e.depositAddress(ctx)
	if err != nil {
		return false, err
	}
	v, err := ctx.Call(e.BitcoinID, "get_balance", canister.GetBalanceArgs{
		Address:          addr,
		MinConfirmations: e.RequiredConfirmations,
	})
	if err != nil {
		return false, err
	}
	if v.(int64) >= amount {
		e.state = "funded"
		return true, nil
	}
	return false, nil
}

// payout threshold-signs a sweep of the whole deposit to the target.
func (e *EscrowCanister) payout(ctx *ic.CallContext, to, finalState string) (btc.Hash, error) {
	if e.state != "funded" {
		return btc.Hash{}, fmt.Errorf("escrow: cannot pay out in state %q", e.state)
	}
	addr, err := e.depositAddress(ctx)
	if err != nil {
		return btc.Hash{}, err
	}
	dest, err := btc.ParseAddress(to, e.Network)
	if err != nil {
		return btc.Hash{}, fmt.Errorf("escrow: bad payout address: %w", err)
	}
	v, err := ctx.Call(e.BitcoinID, "get_utxos", canister.GetUTXOsArgs{Address: addr})
	if err != nil {
		return btc.Hash{}, err
	}
	res := v.(*canister.GetUTXOsResult)
	if len(res.UTXOs) == 0 {
		return btc.Hash{}, errors.New("escrow: no funds")
	}
	const fee = 1000
	var total int64
	tx := &btc.Transaction{Version: 2}
	var spent []utxo.UTXO
	for _, u := range res.UTXOs {
		tx.Inputs = append(tx.Inputs, btc.TxIn{PreviousOutPoint: u.OutPoint, Sequence: 0xffffffff})
		spent = append(spent, u)
		total += u.Value
	}
	if total <= fee {
		return btc.Hash{}, errors.New("escrow: deposit below fee")
	}
	tx.Outputs = []btc.TxOut{{Value: total - fee, PkScript: btc.PayToAddrScript(dest)}}

	pub := ctx.ECDSAPublicKey()
	for i := range tx.Inputs {
		digest, err := btc.SignatureHash(tx, i, spent[i].PkScript)
		if err != nil {
			return btc.Hash{}, err
		}
		der, err := ctx.SignWithECDSA(digest[:])
		if err != nil {
			return btc.Hash{}, fmt.Errorf("escrow: threshold signing: %w", err)
		}
		tx.Inputs[i].SignatureScript = btc.BuildP2PKHUnlockScript(der, pub)
	}
	if _, err := ctx.Call(e.BitcoinID, "send_transaction", canister.SendTransactionArgs{RawTx: tx.Bytes()}); err != nil {
		return btc.Hash{}, err
	}
	e.state = finalState
	return tx.TxID(), nil
}

var _ ic.Canister = (*EscrowCanister)(nil)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Println("escrow:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("== Setting up the integration and the escrow canister ==")
	integ, err := core.New(core.Options{Seed: 7})
	if err != nil {
		return err
	}
	buyer := btc.NewP2PKHAddress([20]byte{0xB1}, integ.Params.Network)
	seller := btc.NewP2PKHAddress([20]byte{0x5E}, integ.Params.Network)
	escrow := &EscrowCanister{
		BitcoinID:             core.BitcoinCanisterID,
		Network:               integ.Params.Network,
		Seller:                seller.String(),
		Buyer:                 buyer.String(),
		RequiredConfirmations: 2,
	}
	integ.InstallCanister("escrow", escrow)
	integ.Start()
	integ.RunFor(5 * time.Second)

	// Mine the miner some funds to pay the deposit from.
	if _, err := integ.MineBlocks(2); err != nil {
		return err
	}
	res, err := integ.CallCanister("escrow", "deposit_address", nil)
	if err != nil {
		return err
	}
	depositAddr := res.Value.(string)
	fmt.Printf("   escrow deposit address (threshold key): %s\n", depositAddr)

	fmt.Println("== Buyer funds the escrow with 0.25 BTC ==")
	const deposit = 25_000_000
	if _, err := core.FundAddress(integ, depositAddr, deposit); err != nil {
		return err
	}
	// One more block for the 2-confirmation requirement.
	if _, err := integ.MineBlocks(1); err != nil {
		return err
	}
	if err := integ.AwaitCanisterHeight(4, 3*time.Minute); err != nil {
		return err
	}

	res, err = integ.CallCanister("escrow", "check_funding", int64(deposit))
	if err != nil {
		return err
	}
	fmt.Printf("   funded with ≥2 confirmations: %v\n", res.Value)
	if funded, _ := res.Value.(bool); !funded {
		return errors.New("escrow did not observe the deposit")
	}

	fmt.Println("== Goods delivered — releasing to the seller ==")
	res, err = integ.CallCanister("escrow", "release", nil)
	if err != nil {
		return err
	}
	payoutTx := res.Value.(btc.Hash)
	fmt.Printf("   threshold-signed payout: %s\n", payoutTx)
	if err := integ.AwaitTxInMempool(payoutTx, 2*time.Minute); err != nil {
		return err
	}
	if _, err := integ.MineBlocks(1); err != nil {
		return err
	}
	if err := integ.AwaitCanisterHeight(5, 2*time.Minute); err != nil {
		return err
	}
	bal, _, err := integ.GetBalance(seller.String(), 0, false)
	if err != nil {
		return err
	}
	fmt.Printf("== Seller received %d sat (deposit minus 1000 sat fee) ==\n", bal)
	res, err = integ.CallCanister("escrow", "state", nil)
	if err != nil {
		return err
	}
	fmt.Printf("   escrow final state: %s\n", res.Value)
	return nil
}
