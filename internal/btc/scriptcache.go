package btc

// ScriptIDCache memoizes ScriptID derivations. Deriving the bucket key for
// a locking script means an address decode (base58check or bech32 encode)
// or, for non-standard scripts, a SHA-256 — per output, this dominates the
// cost of indexing a block. Real traffic repeats scripts heavily (one
// address receives many outputs, often within one block), so a cache turns
// the per-output derivation into a map probe.
//
// The cache is a deterministic pure function of the scripts looked up, so
// replicas feeding identical blocks stay in lockstep. It is not
// synchronized; callers are single-goroutine (the execution layer).
type ScriptIDCache struct {
	network Network
	ids     map[string]string
}

// maxScriptIDCacheEntries bounds the cache; when full it resets wholesale
// (deterministically) rather than evicting, keeping the common case —
// a working set far below the bound — allocation-free.
const maxScriptIDCacheEntries = 1 << 16

// NewScriptIDCache creates an empty cache for a network.
func NewScriptIDCache(network Network) *ScriptIDCache {
	return &ScriptIDCache{network: network, ids: make(map[string]string, 256)}
}

// Network returns the network the cache derives IDs for.
func (c *ScriptIDCache) Network() Network { return c.network }

// Len returns the number of memoized scripts (observability).
func (c *ScriptIDCache) Len() int { return len(c.ids) }

// ID returns ScriptID(script, network), memoized. The lookup converts the
// script to a map key without allocating (the compiler's string(b) map-index
// fast path); only a miss copies the script and derives the ID.
func (c *ScriptIDCache) ID(script []byte) string {
	if id, ok := c.ids[string(script)]; ok {
		return id
	}
	id := ScriptID(script, c.network)
	if len(c.ids) >= maxScriptIDCacheEntries {
		c.ids = make(map[string]string, 256)
	}
	c.ids[string(script)] = id
	return id
}
