package btc

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"

	"icbtc/internal/secp256k1"
)

// This file implements the subset of Bitcoin Script the integration uses:
// standard P2PKH locking/unlocking scripts and P2WPKH witness programs.
// The Bitcoin canister deliberately does NOT validate spend conditions
// (§III-C: "the validity of the transactions is not verified"); full script
// execution lives in the simulated Bitcoin nodes (internal/btcnode), which
// play the role of the mining/validating network the paper relies on.

// Script opcodes (only those used by standard output scripts).
const (
	opDup         = 0x76
	opHash160     = 0xa9
	opEqualVerify = 0x88
	opCheckSig    = 0xac
	op0           = 0x00
	opData20      = 0x14
)

// PayToPubKeyHashScript builds the canonical P2PKH locking script:
// OP_DUP OP_HASH160 <20-byte hash> OP_EQUALVERIFY OP_CHECKSIG.
func PayToPubKeyHashScript(hash [20]byte) []byte {
	script := make([]byte, 0, 25)
	script = append(script, opDup, opHash160, opData20)
	script = append(script, hash[:]...)
	return append(script, opEqualVerify, opCheckSig)
}

// PayToWitnessPubKeyHashScript builds the P2WPKH program: OP_0 <20-byte hash>.
func PayToWitnessPubKeyHashScript(hash [20]byte) []byte {
	script := make([]byte, 0, 22)
	script = append(script, op0, opData20)
	return append(script, hash[:]...)
}

// PayToAddrScript returns the locking script for an address.
func PayToAddrScript(addr Address) []byte {
	if addr.IsWitness() {
		return PayToWitnessPubKeyHashScript(addr.Hash160())
	}
	return PayToPubKeyHashScript(addr.Hash160())
}

// ExtractAddress recovers the address a standard locking script pays to.
// It returns false for non-standard scripts, which the UTXO index files
// under a synthetic "script hash" bucket.
func ExtractAddress(script []byte, network Network) (Address, bool) {
	switch {
	case len(script) == 25 && script[0] == opDup && script[1] == opHash160 &&
		script[2] == opData20 && script[23] == opEqualVerify && script[24] == opCheckSig:
		var h [20]byte
		copy(h[:], script[3:23])
		return NewP2PKHAddress(h, network), true
	case len(script) == 22 && script[0] == op0 && script[1] == opData20:
		var h [20]byte
		copy(h[:], script[2:])
		return NewP2WPKHAddress(h, network), true
	default:
		return Address{}, false
	}
}

// ScriptID returns a stable bucket key for any locking script: the address
// string when standard, otherwise "script:" plus the script hash.
func ScriptID(script []byte, network Network) string {
	if addr, ok := ExtractAddress(script, network); ok {
		return addr.String()
	}
	sum := sha256.Sum256(script)
	return fmt.Sprintf("script:%x", sum[:8])
}

// SigHashAll is the only signature hash type the simulation supports.
const SigHashAll = 0x01

// SignatureHash computes the digest an input signature commits to. The scheme
// follows legacy Bitcoin sighash: the transaction is serialized with all
// input scripts blanked except the signed input, which carries the previous
// output's locking script, and the hash type is appended.
func SignatureHash(tx *Transaction, idx int, prevPkScript []byte) (Hash, error) {
	if idx < 0 || idx >= len(tx.Inputs) {
		return Hash{}, fmt.Errorf("btc: signature hash input %d out of range", idx)
	}
	cp := Transaction{
		Version:  tx.Version,
		Inputs:   make([]TxIn, len(tx.Inputs)),
		Outputs:  tx.Outputs,
		LockTime: tx.LockTime,
	}
	for i := range tx.Inputs {
		cp.Inputs[i] = TxIn{
			PreviousOutPoint: tx.Inputs[i].PreviousOutPoint,
			Sequence:         tx.Inputs[i].Sequence,
		}
		if i == idx {
			cp.Inputs[i].SignatureScript = prevPkScript
		}
	}
	var buf bytes.Buffer
	if err := cp.Serialize(&buf); err != nil {
		return Hash{}, err
	}
	buf.Write([]byte{SigHashAll, 0, 0, 0})
	return DoubleSHA256(buf.Bytes()), nil
}

// SignInput produces the unlocking script for input idx of tx spending a
// P2PKH output locked to key's public key hash.
func SignInput(tx *Transaction, idx int, prevPkScript []byte, key *secp256k1.PrivateKey) error {
	digest, err := SignatureHash(tx, idx, prevPkScript)
	if err != nil {
		return err
	}
	sig, err := key.Sign(digest[:])
	if err != nil {
		return fmt.Errorf("btc: signing input %d: %w", idx, err)
	}
	tx.Inputs[idx].SignatureScript = BuildP2PKHUnlockScript(sig.SerializeDER(), key.PubKey().SerializeCompressed())
	return nil
}

// BuildP2PKHUnlockScript assembles <sig+hashtype> <pubkey> push operations.
func BuildP2PKHUnlockScript(derSig, pubKey []byte) []byte {
	sigPush := append(append([]byte{}, derSig...), SigHashAll)
	script := make([]byte, 0, len(sigPush)+len(pubKey)+2)
	script = append(script, byte(len(sigPush)))
	script = append(script, sigPush...)
	script = append(script, byte(len(pubKey)))
	return append(script, pubKey...)
}

// ErrScriptInvalid is returned when script verification fails.
var ErrScriptInvalid = errors.New("btc: script verification failed")

// VerifyInput checks that input idx of tx correctly spends an output locked
// by prevPkScript. Only standard P2PKH spends are supported; the simulated
// Bitcoin network uses this for transaction validation.
func VerifyInput(tx *Transaction, idx int, prevPkScript []byte) error {
	if idx < 0 || idx >= len(tx.Inputs) {
		return fmt.Errorf("btc: verify input %d out of range", idx)
	}
	sigScript := tx.Inputs[idx].SignatureScript
	sig, pubKey, err := parseP2PKHUnlockScript(sigScript)
	if err != nil {
		return err
	}
	// The public key must hash to the hash in the locking script.
	addr, ok := ExtractAddress(prevPkScript, Regtest)
	if !ok {
		return fmt.Errorf("%w: non-standard locking script", ErrScriptInvalid)
	}
	if Hash160(pubKey) != addr.Hash160() {
		return fmt.Errorf("%w: public key hash mismatch", ErrScriptInvalid)
	}
	parsedSig, err := secp256k1.ParseDERSignature(sig)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrScriptInvalid, err)
	}
	pk, err := secp256k1.ParsePubKey(pubKey)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrScriptInvalid, err)
	}
	digest, err := SignatureHash(tx, idx, prevPkScript)
	if err != nil {
		return err
	}
	if !parsedSig.Verify(digest[:], pk) {
		return fmt.Errorf("%w: ECDSA verification failed", ErrScriptInvalid)
	}
	return nil
}

// parseP2PKHUnlockScript splits <sig> <pubkey> pushes, returning the DER
// signature (hash type stripped) and the serialized public key.
func parseP2PKHUnlockScript(script []byte) (sig, pubKey []byte, err error) {
	if len(script) < 2 {
		return nil, nil, fmt.Errorf("%w: unlock script too short", ErrScriptInvalid)
	}
	sigLen := int(script[0])
	if sigLen < 9 || 1+sigLen+1 > len(script) {
		return nil, nil, fmt.Errorf("%w: bad signature push", ErrScriptInvalid)
	}
	sigWithType := script[1 : 1+sigLen]
	if sigWithType[len(sigWithType)-1] != SigHashAll {
		return nil, nil, fmt.Errorf("%w: unsupported sighash type", ErrScriptInvalid)
	}
	rest := script[1+sigLen:]
	pkLen := int(rest[0])
	if 1+pkLen != len(rest) {
		return nil, nil, fmt.Errorf("%w: bad pubkey push", ErrScriptInvalid)
	}
	return sigWithType[:len(sigWithType)-1], rest[1:], nil
}
