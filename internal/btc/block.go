package btc

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"
	"time"
)

// BlockHeaderSize is the wire size of a Bitcoin block header.
const BlockHeaderSize = 80

// BlockHeader is the 80-byte Bitcoin block header.
type BlockHeader struct {
	Version    uint32
	PrevBlock  Hash // hashPrevBlock: hash of the predecessor header
	MerkleRoot Hash
	Timestamp  uint32 // seconds since the Unix epoch
	Bits       uint32 // compact encoding of the difficulty target
	Nonce      uint32
}

// Serialize encodes the header in wire format.
func (h *BlockHeader) Serialize(w io.Writer) error {
	if err := writeUint32(w, h.Version); err != nil {
		return err
	}
	if err := writeHash(w, h.PrevBlock); err != nil {
		return err
	}
	if err := writeHash(w, h.MerkleRoot); err != nil {
		return err
	}
	if err := writeUint32(w, h.Timestamp); err != nil {
		return err
	}
	if err := writeUint32(w, h.Bits); err != nil {
		return err
	}
	return writeUint32(w, h.Nonce)
}

// Bytes returns the 80-byte wire encoding.
func (h *BlockHeader) Bytes() []byte {
	var buf bytes.Buffer
	buf.Grow(BlockHeaderSize)
	_ = h.Serialize(&buf)
	return buf.Bytes()
}

// BlockHash returns H(header), the block's identifier.
func (h *BlockHeader) BlockHash() Hash {
	return DoubleSHA256(h.Bytes())
}

// DeserializeBlockHeader decodes a header from r.
func DeserializeBlockHeader(r io.Reader) (*BlockHeader, error) {
	var h BlockHeader
	var err error
	if h.Version, err = readUint32(r); err != nil {
		return nil, fmt.Errorf("btc: header version: %w", err)
	}
	if h.PrevBlock, err = readHash(r); err != nil {
		return nil, fmt.Errorf("btc: header prev: %w", err)
	}
	if h.MerkleRoot, err = readHash(r); err != nil {
		return nil, fmt.Errorf("btc: header merkle: %w", err)
	}
	if h.Timestamp, err = readUint32(r); err != nil {
		return nil, fmt.Errorf("btc: header time: %w", err)
	}
	if h.Bits, err = readUint32(r); err != nil {
		return nil, fmt.Errorf("btc: header bits: %w", err)
	}
	if h.Nonce, err = readUint32(r); err != nil {
		return nil, fmt.Errorf("btc: header nonce: %w", err)
	}
	return &h, nil
}

// ParseBlockHeader decodes a header from exactly 80 bytes.
func ParseBlockHeader(data []byte) (*BlockHeader, error) {
	if len(data) != BlockHeaderSize {
		return nil, fmt.Errorf("btc: block header must be %d bytes, got %d", BlockHeaderSize, len(data))
	}
	return DeserializeBlockHeader(bytes.NewReader(data))
}

// Block is a batch of transactions referencing a predecessor block.
type Block struct {
	Header       BlockHeader
	Transactions []*Transaction

	// txids memoizes TxIDs. A block's transactions are immutable once the
	// header (whose Merkle root commits to them) is assembled, so the IDs
	// are computed at most once per block instead of once per consumer —
	// Merkle validation, delta building, and stable ingestion all share one
	// table. Sealed blocks flow to concurrent consumers (query-fleet
	// replicas, the parallel ingest pipeline's workers), so the memo is
	// guarded by a sync.Once; the value is identical no matter which
	// goroutine wins.
	txidsOnce sync.Once
	txids     []Hash

	// merkle memoizes MerkleRoot the same way: validation recomputes the
	// root the pipeline's prepare stage already derived, and both must pay
	// the tree hashing at most once per block.
	merkleOnce sync.Once
	merkle     Hash
}

// TxIDs returns the memoized transaction IDs, in block order. The first
// call serializes and double-hashes every transaction; later calls are
// free. Safe for concurrent use on a sealed block; callers must not mutate
// Transactions after the block is shared.
func (b *Block) TxIDs() []Hash {
	b.txidsOnce.Do(func() {
		if len(b.Transactions) == 0 {
			return
		}
		ids := make([]Hash, len(b.Transactions))
		for i, tx := range b.Transactions {
			ids[i] = tx.TxID()
		}
		b.txids = ids
	})
	return b.txids
}

// sealTxIDs installs precomputed transaction IDs (the zero-copy parser
// hashes them straight off the wire spans). A racing TxIDs computation
// yields the identical table, so whichever Do wins is correct.
func (b *Block) sealTxIDs(ids []Hash) {
	b.txidsOnce.Do(func() { b.txids = ids })
}

// BlockHash returns the hash of the block's header.
func (b *Block) BlockHash() Hash { return b.Header.BlockHash() }

// Serialize encodes the block in wire format.
func (b *Block) Serialize(w io.Writer) error {
	if err := b.Header.Serialize(w); err != nil {
		return err
	}
	if err := WriteVarInt(w, uint64(len(b.Transactions))); err != nil {
		return err
	}
	for _, tx := range b.Transactions {
		if err := tx.Serialize(w); err != nil {
			return err
		}
	}
	return nil
}

// Bytes returns the wire encoding.
func (b *Block) Bytes() []byte {
	var buf bytes.Buffer
	_ = b.Serialize(&buf)
	return buf.Bytes()
}

// SerializedSize returns the byte length of the wire encoding.
func (b *Block) SerializedSize() int {
	n := BlockHeaderSize + VarIntSize(uint64(len(b.Transactions)))
	for _, tx := range b.Transactions {
		n += tx.SerializedSize()
	}
	return n
}

// maxBlockTxs bounds decoder allocation.
const maxBlockTxs = 1 << 20

// DeserializeBlock decodes a block from r.
func DeserializeBlock(r io.Reader) (*Block, error) {
	hdr, err := DeserializeBlockHeader(r)
	if err != nil {
		return nil, err
	}
	n, err := ReadVarInt(r)
	if err != nil {
		return nil, fmt.Errorf("btc: block tx count: %w", err)
	}
	if n > maxBlockTxs {
		return nil, fmt.Errorf("btc: too many transactions: %d", n)
	}
	b := &Block{Header: *hdr, Transactions: make([]*Transaction, 0, min(n, maxAlloc))}
	for i := uint64(0); i < n; i++ {
		tx, err := DeserializeTransaction(r)
		if err != nil {
			return nil, fmt.Errorf("btc: block tx %d: %w", i, err)
		}
		b.Transactions = append(b.Transactions, tx)
	}
	return b, nil
}

// ParseBlock decodes a block from bytes, rejecting trailing data.
func ParseBlock(data []byte) (*Block, error) {
	r := bytes.NewReader(data)
	b, err := DeserializeBlock(r)
	if err != nil {
		return nil, err
	}
	if r.Len() != 0 {
		return nil, errors.New("btc: trailing bytes after block")
	}
	return b, nil
}

// MerkleRoot computes the Merkle tree root over the block's transaction IDs
// using Bitcoin's duplicate-last-node rule for odd levels. Memoized; safe
// for concurrent use on a sealed block.
func (b *Block) MerkleRoot() Hash {
	b.merkleOnce.Do(func() { b.merkle = MerkleRootFromHashes(b.TxIDs()) })
	return b.merkle
}

// MerkleRootFromHashes computes the Merkle root of a hash list.
func MerkleRootFromHashes(hashes []Hash) Hash {
	if len(hashes) == 0 {
		return ZeroHash
	}
	level := make([]Hash, len(hashes))
	copy(level, hashes)
	for len(level) > 1 {
		if len(level)%2 == 1 {
			level = append(level, level[len(level)-1])
		}
		next := make([]Hash, 0, len(level)/2)
		for i := 0; i < len(level); i += 2 {
			next = append(next, HashOf(level[i][:], level[i+1][:]))
		}
		level = next
	}
	return level[0]
}

// MerkleProof is an inclusion proof for one leaf of a Merkle tree.
type MerkleProof struct {
	Index    int
	Siblings []Hash
}

// BuildMerkleProof constructs a proof that hashes[index] is included in the
// tree rooted at MerkleRootFromHashes(hashes).
func BuildMerkleProof(hashes []Hash, index int) (*MerkleProof, error) {
	if index < 0 || index >= len(hashes) {
		return nil, fmt.Errorf("btc: merkle index %d out of range [0,%d)", index, len(hashes))
	}
	proof := &MerkleProof{Index: index}
	level := make([]Hash, len(hashes))
	copy(level, hashes)
	pos := index
	for len(level) > 1 {
		if len(level)%2 == 1 {
			level = append(level, level[len(level)-1])
		}
		sibling := pos ^ 1
		proof.Siblings = append(proof.Siblings, level[sibling])
		next := make([]Hash, 0, len(level)/2)
		for i := 0; i < len(level); i += 2 {
			next = append(next, HashOf(level[i][:], level[i+1][:]))
		}
		level = next
		pos /= 2
	}
	return proof, nil
}

// Verify checks the proof against a leaf hash and expected root.
func (p *MerkleProof) Verify(leaf, root Hash) bool {
	acc := leaf
	pos := p.Index
	for _, sib := range p.Siblings {
		if pos%2 == 0 {
			acc = HashOf(acc[:], sib[:])
		} else {
			acc = HashOf(sib[:], acc[:])
		}
		pos /= 2
	}
	return acc == root
}

// --- Compact-bits difficulty targets ---

// CompactToBig converts the 32-bit compact ("Bits") representation to the
// full 256-bit target, as Bitcoin consensus does.
func CompactToBig(compact uint32) *big.Int {
	mantissa := compact & 0x007fffff
	exponent := uint(compact >> 24)
	negative := compact&0x00800000 != 0
	var target *big.Int
	if exponent <= 3 {
		target = big.NewInt(int64(mantissa >> (8 * (3 - exponent))))
	} else {
		target = big.NewInt(int64(mantissa))
		target.Lsh(target, 8*(exponent-3))
	}
	if negative {
		target.Neg(target)
	}
	return target
}

// BigToCompact converts a 256-bit target to compact representation.
func BigToCompact(target *big.Int) uint32 {
	if target.Sign() == 0 {
		return 0
	}
	abs := new(big.Int).Abs(target)
	exponent := uint(len(abs.Bytes()))
	var mantissa uint32
	if exponent <= 3 {
		mantissa = uint32(abs.Int64() << (8 * (3 - exponent)))
	} else {
		shifted := new(big.Int).Rsh(abs, 8*(exponent-3))
		mantissa = uint32(shifted.Int64())
	}
	if mantissa&0x00800000 != 0 {
		mantissa >>= 8
		exponent++
	}
	compact := uint32(exponent<<24) | mantissa
	if target.Sign() < 0 {
		compact |= 0x00800000
	}
	return compact
}

// HashMeetsTarget reports whether the block hash, interpreted as a 256-bit
// big-endian number (after byte reversal from internal order), is at most
// the target encoded in bits.
func HashMeetsTarget(h Hash, bits uint32) bool {
	target := CompactToBig(bits)
	if target.Sign() <= 0 {
		return false
	}
	var be [HashSize]byte
	for i := 0; i < HashSize; i++ {
		be[i] = h[HashSize-1-i]
	}
	val := new(big.Int).SetBytes(be[:])
	return val.Cmp(target) <= 0
}

// WorkForBits returns the expected hash work to find a block at the given
// target: work = 2^256 / (target + 1). This is the w(b) function of §II-B.
func WorkForBits(bits uint32) *big.Int {
	target := CompactToBig(bits)
	if target.Sign() <= 0 {
		return new(big.Int)
	}
	num := new(big.Int).Lsh(big.NewInt(1), 256)
	den := new(big.Int).Add(target, big.NewInt(1))
	return num.Div(num, den)
}

// --- Header timestamp validation ---

// MaxFutureBlockTime is the maximum allowed clock skew into the future for a
// block timestamp (Bitcoin: 2 hours).
const MaxFutureBlockTime = 2 * time.Hour

// MedianTimePast computes the median of the last up-to-11 timestamps, the
// lower bound Bitcoin consensus places on a new block's timestamp.
func MedianTimePast(timestamps []uint32) uint32 {
	if len(timestamps) == 0 {
		return 0
	}
	n := len(timestamps)
	if n > 11 {
		timestamps = timestamps[n-11:]
		n = 11
	}
	sorted := make([]uint32, n)
	copy(sorted, timestamps)
	for i := 1; i < n; i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[n/2]
}

// ValidateTimestamp checks a header timestamp against median-time-past and
// the future-skew bound, the "valid block timestamp" check of §III-B.
func ValidateTimestamp(ts uint32, mtp uint32, now time.Time) error {
	if ts <= mtp {
		return fmt.Errorf("btc: timestamp %d not after median time past %d", ts, mtp)
	}
	limit := now.Add(MaxFutureBlockTime).Unix()
	if int64(ts) > limit {
		return fmt.Errorf("btc: timestamp %d too far in the future (limit %d)", ts, limit)
	}
	return nil
}
