package btc

import (
	"bytes"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func randomBlock(rng *rand.Rand, nTx int) *Block {
	b := &Block{
		Header: BlockHeader{
			Version:   1,
			Timestamp: uint32(rng.Int31()),
			Bits:      regtestPowBits,
			Nonce:     rng.Uint32(),
		},
	}
	rng.Read(b.Header.PrevBlock[:])
	for i := 0; i < nTx; i++ {
		b.Transactions = append(b.Transactions, randomTx(rng))
	}
	b.Header.MerkleRoot = b.MerkleRoot()
	return b
}

func TestBlockHeaderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	b := randomBlock(rng, 1)
	enc := b.Header.Bytes()
	if len(enc) != BlockHeaderSize {
		t.Fatalf("header size %d, want %d", len(enc), BlockHeaderSize)
	}
	got, err := ParseBlockHeader(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.BlockHash() != b.Header.BlockHash() {
		t.Fatal("header hash changed across round trip")
	}
	if _, err := ParseBlockHeader(enc[:79]); err == nil {
		t.Fatal("short header accepted")
	}
}

func TestBlockRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, nTx := range []int{1, 2, 3, 7, 20} {
		b := randomBlock(rng, nTx)
		enc := b.Bytes()
		if len(enc) != b.SerializedSize() {
			t.Fatalf("SerializedSize %d != actual %d", b.SerializedSize(), len(enc))
		}
		got, err := ParseBlock(enc)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		if !bytes.Equal(got.Bytes(), enc) {
			t.Fatal("round trip mismatch")
		}
		if got.BlockHash() != b.BlockHash() {
			t.Fatal("block hash changed")
		}
	}
}

func TestParseBlockRejectsTrailing(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	b := randomBlock(rng, 2)
	if _, err := ParseBlock(append(b.Bytes(), 0xAA)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestMerkleRootSingleTx(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	b := randomBlock(rng, 1)
	if b.MerkleRoot() != b.Transactions[0].TxID() {
		t.Fatal("single-tx merkle root must equal the txid")
	}
}

func TestMerkleRootOddDuplication(t *testing.T) {
	// With 3 leaves, Bitcoin duplicates the 3rd: root = H(H(1,2), H(3,3)).
	h1 := DoubleSHA256([]byte("a"))
	h2 := DoubleSHA256([]byte("b"))
	h3 := DoubleSHA256([]byte("c"))
	left := HashOf(h1[:], h2[:])
	right := HashOf(h3[:], h3[:])
	want := HashOf(left[:], right[:])
	got := MerkleRootFromHashes([]Hash{h1, h2, h3})
	if got != want {
		t.Fatalf("got %s, want %s", got, want)
	}
}

func TestMerkleRootEmpty(t *testing.T) {
	if MerkleRootFromHashes(nil) != ZeroHash {
		t.Fatal("empty merkle root must be zero")
	}
}

func TestMerkleProof(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, n := range []int{1, 2, 3, 5, 8, 13} {
		hashes := make([]Hash, n)
		for i := range hashes {
			rng.Read(hashes[i][:])
		}
		root := MerkleRootFromHashes(hashes)
		for i := 0; i < n; i++ {
			proof, err := BuildMerkleProof(hashes, i)
			if err != nil {
				t.Fatal(err)
			}
			if !proof.Verify(hashes[i], root) {
				t.Fatalf("n=%d i=%d: proof did not verify", n, i)
			}
			// Proof must not verify a different leaf.
			var other Hash
			rng.Read(other[:])
			if proof.Verify(other, root) {
				t.Fatalf("n=%d i=%d: proof verified a random leaf", n, i)
			}
		}
	}
	if _, err := BuildMerkleProof([]Hash{{}}, 5); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestQuickMerkleProof(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%16) + 1
		rng := rand.New(rand.NewSource(seed))
		hashes := make([]Hash, n)
		for i := range hashes {
			rng.Read(hashes[i][:])
		}
		root := MerkleRootFromHashes(hashes)
		i := rng.Intn(n)
		proof, err := BuildMerkleProof(hashes, i)
		return err == nil && proof.Verify(hashes[i], root)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCompactToBigRoundTrip(t *testing.T) {
	cases := []uint32{0x1d00ffff, 0x1b0404cb, regtestPowBits, simPowBits, 0x03123456}
	for _, c := range cases {
		big := CompactToBig(c)
		if got := BigToCompact(big); got != c {
			t.Errorf("compact 0x%08x: round trip gave 0x%08x", c, got)
		}
	}
}

func TestCompactToBigKnownValue(t *testing.T) {
	// 0x1b0404cb is a classic example: target = 0x0404cb * 2^(8*(0x1b-3)).
	target := CompactToBig(0x1b0404cb)
	want, _ := new(big.Int).SetString("404cb000000000000000000000000000000000000000000000000", 16)
	if target.Cmp(want) != 0 {
		t.Fatalf("got %x, want %x", target, want)
	}
}

func TestWorkForBitsMonotone(t *testing.T) {
	// Lower target (harder) must mean more work.
	hard := WorkForBits(0x1b0404cb)
	easy := WorkForBits(regtestPowBits)
	if hard.Cmp(easy) <= 0 {
		t.Fatal("harder target did not yield more work")
	}
	if WorkForBits(0).Sign() != 0 {
		t.Fatal("zero bits must yield zero work")
	}
}

func TestHashMeetsTarget(t *testing.T) {
	// The all-zero hash trivially satisfies any positive target.
	if !HashMeetsTarget(ZeroHash, 0x1d00ffff) {
		t.Fatal("zero hash rejected")
	}
	// An all-0xff hash cannot satisfy a real target.
	var maxHash Hash
	for i := range maxHash {
		maxHash[i] = 0xff
	}
	if HashMeetsTarget(maxHash, 0x1d00ffff) {
		t.Fatal("max hash accepted")
	}
}

func TestMedianTimePast(t *testing.T) {
	if MedianTimePast(nil) != 0 {
		t.Fatal("empty MTP must be 0")
	}
	if got := MedianTimePast([]uint32{5}); got != 5 {
		t.Fatalf("single: got %d", got)
	}
	if got := MedianTimePast([]uint32{1, 9, 5}); got != 5 {
		t.Fatalf("odd: got %d, want 5", got)
	}
	// Only the last 11 entries count.
	ts := make([]uint32, 0, 20)
	for i := 0; i < 9; i++ {
		ts = append(ts, 1000)
	}
	for i := 0; i < 11; i++ {
		ts = append(ts, uint32(i))
	}
	if got := MedianTimePast(ts); got != 5 {
		t.Fatalf("window: got %d, want 5", got)
	}
}

func TestValidateTimestamp(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	mtp := uint32(1_699_999_000)
	if err := ValidateTimestamp(uint32(now.Unix()), mtp, now); err != nil {
		t.Fatalf("valid timestamp rejected: %v", err)
	}
	if err := ValidateTimestamp(mtp, mtp, now); err == nil {
		t.Fatal("timestamp equal to MTP accepted")
	}
	future := uint32(now.Add(MaxFutureBlockTime + time.Minute).Unix())
	if err := ValidateTimestamp(future, mtp, now); err == nil {
		t.Fatal("far-future timestamp accepted")
	}
}
