package btc

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"strings"
)

// Network identifies which Bitcoin network an address or chain state belongs
// to. Enum starts at one so the zero value is invalid and cannot be confused
// with mainnet.
type Network int

// Supported networks, matching the paper's get_utxos parameter.
const (
	Mainnet Network = iota + 1
	Testnet
	Regtest
)

// String implements fmt.Stringer.
func (n Network) String() string {
	switch n {
	case Mainnet:
		return "mainnet"
	case Testnet:
		return "testnet"
	case Regtest:
		return "regtest"
	default:
		return fmt.Sprintf("Network(%d)", int(n))
	}
}

// pubKeyHashVersion returns the base58check version byte for P2PKH addresses.
func (n Network) pubKeyHashVersion() byte {
	switch n {
	case Mainnet:
		return 0x00
	case Testnet, Regtest:
		return 0x6f
	default:
		return 0xff
	}
}

// bech32HRP returns the human-readable prefix for segwit addresses.
func (n Network) bech32HRP() string {
	switch n {
	case Mainnet:
		return "bc"
	case Testnet:
		return "tb"
	case Regtest:
		return "bcrt"
	default:
		return "??"
	}
}

// Address is an opaque Bitcoin address string plus its decoded payload.
type Address struct {
	encoded string
	network Network
	// kind distinguishes P2PKH (base58) from P2WPKH (bech32).
	kind addressKind
	hash [20]byte
}

type addressKind int

const (
	addrP2PKH addressKind = iota + 1
	addrP2WPKH
)

// String returns the encoded address.
func (a Address) String() string { return a.encoded }

// Network returns the network the address belongs to.
func (a Address) Network() Network { return a.network }

// Hash160 returns the 20-byte key hash inside the address.
func (a Address) Hash160() [20]byte { return a.hash }

// IsWitness reports whether the address is a segwit (P2WPKH) address.
func (a Address) IsWitness() bool { return a.kind == addrP2WPKH }

// NewP2PKHAddress builds a pay-to-pubkey-hash address from a key hash.
func NewP2PKHAddress(hash [20]byte, network Network) Address {
	payload := make([]byte, 21)
	payload[0] = network.pubKeyHashVersion()
	copy(payload[1:], hash[:])
	return Address{
		encoded: base58CheckEncode(payload),
		network: network,
		kind:    addrP2PKH,
		hash:    hash,
	}
}

// NewP2WPKHAddress builds a pay-to-witness-pubkey-hash (bech32) address.
func NewP2WPKHAddress(hash [20]byte, network Network) Address {
	enc, err := bech32Encode(network.bech32HRP(), 0, hash[:])
	if err != nil {
		// Cannot happen for a fixed 20-byte program; guard anyway.
		panic("btc: bech32 encoding of fixed-size program failed: " + err.Error())
	}
	return Address{encoded: enc, network: network, kind: addrP2WPKH, hash: hash}
}

// AddressFromPubKey derives the P2PKH address of a serialized public key.
func AddressFromPubKey(pubKey []byte, network Network) Address {
	return NewP2PKHAddress(Hash160(pubKey), network)
}

// ParseAddress decodes a base58check or bech32 address and validates that it
// belongs to the given network.
func ParseAddress(s string, network Network) (Address, error) {
	if s == "" {
		return Address{}, errors.New("btc: empty address")
	}
	if strings.Contains(s, "1") && strings.HasPrefix(strings.ToLower(s), network.bech32HRP()+"1") {
		hrp, version, program, err := bech32Decode(strings.ToLower(s))
		if err != nil {
			return Address{}, err
		}
		if hrp != network.bech32HRP() {
			return Address{}, fmt.Errorf("btc: address HRP %q does not match network %v", hrp, network)
		}
		if version != 0 || len(program) != 20 {
			return Address{}, fmt.Errorf("btc: unsupported witness version %d / program length %d", version, len(program))
		}
		var h [20]byte
		copy(h[:], program)
		return Address{encoded: strings.ToLower(s), network: network, kind: addrP2WPKH, hash: h}, nil
	}
	payload, err := base58CheckDecode(s)
	if err != nil {
		return Address{}, err
	}
	if len(payload) != 21 {
		return Address{}, fmt.Errorf("btc: address payload must be 21 bytes, got %d", len(payload))
	}
	if payload[0] != network.pubKeyHashVersion() {
		return Address{}, fmt.Errorf("btc: address version 0x%02x does not match network %v", payload[0], network)
	}
	var h [20]byte
	copy(h[:], payload[1:])
	return Address{encoded: s, network: network, kind: addrP2PKH, hash: h}, nil
}

// --- base58check ---

const base58Alphabet = "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz"

func base58Encode(input []byte) string {
	zeros := 0
	for zeros < len(input) && input[zeros] == 0 {
		zeros++
	}
	// Base conversion.
	digits := []byte{0}
	for _, b := range input[zeros:] {
		carry := int(b)
		for i := 0; i < len(digits); i++ {
			carry += int(digits[i]) << 8
			digits[i] = byte(carry % 58)
			carry /= 58
		}
		for carry > 0 {
			digits = append(digits, byte(carry%58))
			carry /= 58
		}
	}
	var sb strings.Builder
	sb.Grow(zeros + len(digits))
	for i := 0; i < zeros; i++ {
		sb.WriteByte('1')
	}
	for i := len(digits) - 1; i >= 0; i-- {
		sb.WriteByte(base58Alphabet[digits[i]])
	}
	// Trim the artificial leading zero digit if input was empty-ish.
	out := sb.String()
	if len(input) == zeros {
		return out[:zeros]
	}
	// Remove leading '1' digits introduced by the initial zero digit.
	trimmed := strings.TrimLeft(out[zeros:], "1")
	if trimmed == "" && len(input) > zeros {
		trimmed = "1"
	}
	return out[:zeros] + trimmed
}

var base58Rev = func() [256]int8 {
	var rev [256]int8
	for i := range rev {
		rev[i] = -1
	}
	for i := 0; i < len(base58Alphabet); i++ {
		rev[base58Alphabet[i]] = int8(i)
	}
	return rev
}()

func base58Decode(s string) ([]byte, error) {
	zeros := 0
	for zeros < len(s) && s[zeros] == '1' {
		zeros++
	}
	bytesOut := []byte{0}
	for i := zeros; i < len(s); i++ {
		d := base58Rev[s[i]]
		if d < 0 {
			return nil, fmt.Errorf("btc: invalid base58 character %q", s[i])
		}
		carry := int(d)
		for j := 0; j < len(bytesOut); j++ {
			carry += int(bytesOut[j]) * 58
			bytesOut[j] = byte(carry & 0xff)
			carry >>= 8
		}
		for carry > 0 {
			bytesOut = append(bytesOut, byte(carry&0xff))
			carry >>= 8
		}
	}
	// Strip the artificial zero and reverse.
	for len(bytesOut) > 1 && bytesOut[len(bytesOut)-1] == 0 {
		bytesOut = bytesOut[:len(bytesOut)-1]
	}
	if len(bytesOut) == 1 && bytesOut[0] == 0 && len(s) == zeros {
		bytesOut = nil
	}
	out := make([]byte, zeros, zeros+len(bytesOut))
	for i := len(bytesOut) - 1; i >= 0; i-- {
		out = append(out, bytesOut[i])
	}
	return out, nil
}

func base58CheckEncode(payload []byte) string {
	first := sha256.Sum256(payload)
	second := sha256.Sum256(first[:])
	full := make([]byte, 0, len(payload)+4)
	full = append(full, payload...)
	full = append(full, second[:4]...)
	return base58Encode(full)
}

func base58CheckDecode(s string) ([]byte, error) {
	full, err := base58Decode(s)
	if err != nil {
		return nil, err
	}
	if len(full) < 4 {
		return nil, errors.New("btc: base58check payload too short")
	}
	payload, checksum := full[:len(full)-4], full[len(full)-4:]
	first := sha256.Sum256(payload)
	second := sha256.Sum256(first[:])
	if !bytes.Equal(checksum, second[:4]) {
		return nil, errors.New("btc: base58check checksum mismatch")
	}
	return payload, nil
}

// --- bech32 (BIP173) ---

const bech32Charset = "qpzry9x8gf2tvdw0s3jn54khce6mua7l"

var bech32Rev = func() [256]int8 {
	var rev [256]int8
	for i := range rev {
		rev[i] = -1
	}
	for i := 0; i < len(bech32Charset); i++ {
		rev[bech32Charset[i]] = int8(i)
	}
	return rev
}()

func bech32Polymod(values []byte) uint32 {
	gen := [5]uint32{0x3b6a57b2, 0x26508e6d, 0x1ea119fa, 0x3d4233dd, 0x2a1462b3}
	chk := uint32(1)
	for _, v := range values {
		top := chk >> 25
		chk = (chk&0x1ffffff)<<5 ^ uint32(v)
		for i := 0; i < 5; i++ {
			if (top>>uint(i))&1 == 1 {
				chk ^= gen[i]
			}
		}
	}
	return chk
}

func bech32HRPExpand(hrp string) []byte {
	out := make([]byte, 0, 2*len(hrp)+1)
	for i := 0; i < len(hrp); i++ {
		out = append(out, hrp[i]>>5)
	}
	out = append(out, 0)
	for i := 0; i < len(hrp); i++ {
		out = append(out, hrp[i]&31)
	}
	return out
}

func bech32CreateChecksum(hrp string, data []byte) []byte {
	values := append(bech32HRPExpand(hrp), data...)
	values = append(values, 0, 0, 0, 0, 0, 0)
	polymod := bech32Polymod(values) ^ 1
	out := make([]byte, 6)
	for i := 0; i < 6; i++ {
		out[i] = byte((polymod >> uint(5*(5-i))) & 31)
	}
	return out
}

func bech32VerifyChecksum(hrp string, data []byte) bool {
	return bech32Polymod(append(bech32HRPExpand(hrp), data...)) == 1
}

// convertBits regroups bits between 8-bit and 5-bit words.
func convertBits(data []byte, fromBits, toBits uint, pad bool) ([]byte, error) {
	var acc, bits uint
	maxV := uint(1)<<toBits - 1
	out := make([]byte, 0, len(data)*int(fromBits)/int(toBits)+1)
	for _, v := range data {
		if uint(v)>>fromBits != 0 {
			return nil, fmt.Errorf("btc: invalid data value %d for %d bits", v, fromBits)
		}
		acc = acc<<fromBits | uint(v)
		bits += fromBits
		for bits >= toBits {
			bits -= toBits
			out = append(out, byte((acc>>bits)&maxV))
		}
	}
	if pad {
		if bits > 0 {
			out = append(out, byte((acc<<(toBits-bits))&maxV))
		}
	} else if bits >= fromBits || (acc<<(toBits-bits))&maxV != 0 {
		return nil, errors.New("btc: invalid bech32 padding")
	}
	return out, nil
}

func bech32Encode(hrp string, version byte, program []byte) (string, error) {
	conv, err := convertBits(program, 8, 5, true)
	if err != nil {
		return "", err
	}
	data := append([]byte{version}, conv...)
	combined := append(data, bech32CreateChecksum(hrp, data)...)
	var sb strings.Builder
	sb.WriteString(hrp)
	sb.WriteByte('1')
	for _, d := range combined {
		sb.WriteByte(bech32Charset[d])
	}
	return sb.String(), nil
}

func bech32Decode(s string) (hrp string, version byte, program []byte, err error) {
	pos := strings.LastIndexByte(s, '1')
	if pos < 1 || pos+7 > len(s) {
		return "", 0, nil, errors.New("btc: malformed bech32 string")
	}
	hrp = s[:pos]
	data := make([]byte, 0, len(s)-pos-1)
	for i := pos + 1; i < len(s); i++ {
		d := bech32Rev[s[i]]
		if d < 0 {
			return "", 0, nil, fmt.Errorf("btc: invalid bech32 character %q", s[i])
		}
		data = append(data, byte(d))
	}
	if !bech32VerifyChecksum(hrp, data) {
		return "", 0, nil, errors.New("btc: bech32 checksum mismatch")
	}
	data = data[:len(data)-6]
	if len(data) < 1 {
		return "", 0, nil, errors.New("btc: bech32 payload too short")
	}
	version = data[0]
	program, err = convertBits(data[1:], 5, 8, false)
	if err != nil {
		return "", 0, nil, err
	}
	return hrp, version, program, nil
}
