package btc

import (
	"math/big"
	"time"
)

// Params bundles the per-network consensus parameters the simulation uses.
type Params struct {
	Network Network
	// GenesisHeader is the hard-coded genesis block header the adapter
	// starts syncing from.
	GenesisHeader BlockHeader
	// PowLimitBits is the easiest allowed difficulty target in compact form.
	PowLimitBits uint32
	// TargetBlockInterval is the intended spacing between blocks.
	TargetBlockInterval time.Duration
	// DifficultyAdjustmentWindow is the number of blocks between retargets
	// (Bitcoin: 2016). The simulation keeps difficulty fixed unless a test
	// exercises retargeting.
	DifficultyAdjustmentWindow int
	// CoinbaseMaturity is the number of blocks before a coinbase output may
	// be spent (Bitcoin: 100; regtest simulation uses a smaller value).
	CoinbaseMaturity int
	// BlockSubsidy is the coinbase reward in satoshi (halvings are not
	// simulated; the UTXO-set dynamics do not depend on them).
	BlockSubsidy int64
}

// regtestPowBits allows virtually every hash, so mining is a handful of
// attempts: target = 2^255-ish. Compact 0x207fffff is Bitcoin's regtest limit.
const regtestPowBits = 0x207fffff

// simPowBits is a mildly harder target used by simulated mainnet/testnet so
// that difficulty-based work values are meaningfully large while mining stays
// laptop-scale (expected ~256 hash attempts).
const simPowBits = 0x1f7fffff

// newGenesis builds a deterministic genesis header for a network.
func newGenesis(network Network, bits uint32) BlockHeader {
	// The Merkle root commits to the network name so the three networks
	// have distinct genesis hashes, as in Bitcoin.
	root := DoubleSHA256([]byte("icbtc-genesis-" + network.String()))
	return BlockHeader{
		Version:    1,
		PrevBlock:  ZeroHash,
		MerkleRoot: root,
		Timestamp:  1231006505, // Bitcoin's genesis timestamp, reused for flavor
		Bits:       bits,
		Nonce:      0,
	}
}

// MainnetParams returns the simulated-mainnet parameter set.
func MainnetParams() *Params {
	return &Params{
		Network:                    Mainnet,
		GenesisHeader:              newGenesis(Mainnet, simPowBits),
		PowLimitBits:               simPowBits,
		TargetBlockInterval:        10 * time.Minute,
		DifficultyAdjustmentWindow: 2016,
		CoinbaseMaturity:           100,
		BlockSubsidy:               50 * SatoshiPerBitcoin,
	}
}

// TestnetParams returns the simulated-testnet parameter set.
func TestnetParams() *Params {
	return &Params{
		Network:                    Testnet,
		GenesisHeader:              newGenesis(Testnet, simPowBits),
		PowLimitBits:               simPowBits,
		TargetBlockInterval:        10 * time.Minute,
		DifficultyAdjustmentWindow: 2016,
		CoinbaseMaturity:           100,
		BlockSubsidy:               50 * SatoshiPerBitcoin,
	}
}

// RegtestParams returns the regtest parameter set used by most tests.
func RegtestParams() *Params {
	return &Params{
		Network:             Regtest,
		GenesisHeader:       newGenesis(Regtest, regtestPowBits),
		PowLimitBits:        regtestPowBits,
		TargetBlockInterval: time.Second,
		// Regtest never retargets, as in Bitcoin.
		DifficultyAdjustmentWindow: 0,
		// Maturity 1 keeps rewards spendable as soon as they are mined —
		// the rule itself is exercised with custom parameters in tests.
		CoinbaseMaturity: 1,
		BlockSubsidy:     50 * SatoshiPerBitcoin,
	}
}

// ParamsForNetwork returns the parameter set for a network.
func ParamsForNetwork(n Network) *Params {
	switch n {
	case Mainnet:
		return MainnetParams()
	case Testnet:
		return TestnetParams()
	default:
		return RegtestParams()
	}
}

// GenesisWork returns w(genesis) for the network.
func (p *Params) GenesisWork() *big.Int {
	return WorkForBits(p.GenesisHeader.Bits)
}
