package btc

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestP2PKHAddressRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for _, net := range []Network{Mainnet, Testnet, Regtest} {
		for i := 0; i < 10; i++ {
			var h [20]byte
			rng.Read(h[:])
			addr := NewP2PKHAddress(h, net)
			got, err := ParseAddress(addr.String(), net)
			if err != nil {
				t.Fatalf("%v: parse %q: %v", net, addr, err)
			}
			if got.Hash160() != h {
				t.Fatalf("%v: hash mismatch", net)
			}
			if got.IsWitness() {
				t.Fatalf("%v: P2PKH reported as witness", net)
			}
		}
	}
}

func TestP2WPKHAddressRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, net := range []Network{Mainnet, Testnet, Regtest} {
		var h [20]byte
		rng.Read(h[:])
		addr := NewP2WPKHAddress(h, net)
		if !strings.HasPrefix(addr.String(), net.bech32HRP()+"1") {
			t.Fatalf("%v: bad HRP in %q", net, addr)
		}
		got, err := ParseAddress(addr.String(), net)
		if err != nil {
			t.Fatalf("%v: parse: %v", net, err)
		}
		if got.Hash160() != h || !got.IsWitness() {
			t.Fatalf("%v: decoded mismatch", net)
		}
	}
}

func TestParseAddressWrongNetwork(t *testing.T) {
	var h [20]byte
	mainAddr := NewP2PKHAddress(h, Mainnet)
	if _, err := ParseAddress(mainAddr.String(), Testnet); err == nil {
		t.Fatal("mainnet address accepted on testnet")
	}
	segwit := NewP2WPKHAddress(h, Mainnet)
	if _, err := ParseAddress(segwit.String(), Regtest); err == nil {
		t.Fatal("mainnet segwit address accepted on regtest")
	}
}

func TestParseAddressCorruption(t *testing.T) {
	var h [20]byte
	h[0] = 0x42
	addr := NewP2PKHAddress(h, Mainnet).String()
	// Flip one character; checksum must catch it.
	corrupted := []byte(addr)
	if corrupted[3] == '2' {
		corrupted[3] = '3'
	} else {
		corrupted[3] = '2'
	}
	if _, err := ParseAddress(string(corrupted), Mainnet); err == nil {
		t.Fatal("corrupted base58 address accepted")
	}

	seg := NewP2WPKHAddress(h, Mainnet).String()
	corrupted = []byte(seg)
	last := corrupted[len(corrupted)-1]
	if last == 'q' {
		corrupted[len(corrupted)-1] = 'p'
	} else {
		corrupted[len(corrupted)-1] = 'q'
	}
	if _, err := ParseAddress(string(corrupted), Mainnet); err == nil {
		t.Fatal("corrupted bech32 address accepted")
	}

	if _, err := ParseAddress("", Mainnet); err == nil {
		t.Fatal("empty address accepted")
	}
}

func TestBase58RoundTrip(t *testing.T) {
	cases := [][]byte{
		{},
		{0x00},
		{0x00, 0x00, 0x01},
		{0xff, 0xfe, 0xfd},
		{0x00, 0x01, 0x02, 0x03, 0x04},
	}
	for _, c := range cases {
		enc := base58Encode(c)
		dec, err := base58Decode(enc)
		if err != nil {
			t.Fatalf("decode %q: %v", enc, err)
		}
		if string(dec) != string(c) {
			t.Fatalf("round trip: %x -> %q -> %x", c, enc, dec)
		}
	}
	if _, err := base58Decode("0OIl"); err == nil {
		t.Fatal("invalid base58 characters accepted")
	}
}

func TestQuickBase58RoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		dec, err := base58Decode(base58Encode(data))
		return err == nil && string(dec) == string(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBech32KnownVector(t *testing.T) {
	// BIP173 test vector: witness v0, 20-byte program.
	hrp, version, program, err := bech32Decode("bc1qw508d6qejxtdg4y5r3zarvary0c5xw7kv8f3t4")
	if err != nil {
		t.Fatal(err)
	}
	if hrp != "bc" || version != 0 || len(program) != 20 {
		t.Fatalf("hrp=%q version=%d len=%d", hrp, version, len(program))
	}
	// Re-encode must produce the same string.
	enc, err := bech32Encode(hrp, version, program)
	if err != nil {
		t.Fatal(err)
	}
	if enc != "bc1qw508d6qejxtdg4y5r3zarvary0c5xw7kv8f3t4" {
		t.Fatalf("re-encode: %q", enc)
	}
}

func TestScriptAddressExtraction(t *testing.T) {
	var h [20]byte
	h[5] = 0x99
	p2pkh := PayToPubKeyHashScript(h)
	addr, ok := ExtractAddress(p2pkh, Mainnet)
	if !ok || addr.Hash160() != h || addr.IsWitness() {
		t.Fatal("P2PKH extraction failed")
	}
	p2wpkh := PayToWitnessPubKeyHashScript(h)
	addr, ok = ExtractAddress(p2wpkh, Testnet)
	if !ok || addr.Hash160() != h || !addr.IsWitness() {
		t.Fatal("P2WPKH extraction failed")
	}
	if _, ok := ExtractAddress([]byte{0x51}, Mainnet); ok {
		t.Fatal("non-standard script extracted")
	}
}

func TestScriptID(t *testing.T) {
	var h [20]byte
	addr := NewP2PKHAddress(h, Regtest)
	if ScriptID(PayToAddrScript(addr), Regtest) != addr.String() {
		t.Fatal("standard script ID must be the address")
	}
	id := ScriptID([]byte{0x51, 0x52}, Regtest)
	if !strings.HasPrefix(id, "script:") {
		t.Fatalf("non-standard script ID %q", id)
	}
}

func TestNetworkString(t *testing.T) {
	if Mainnet.String() != "mainnet" || Testnet.String() != "testnet" || Regtest.String() != "regtest" {
		t.Fatal("network names wrong")
	}
	if Network(0).String() == "mainnet" {
		t.Fatal("zero network must not be mainnet")
	}
}

func TestParamsForNetwork(t *testing.T) {
	for _, net := range []Network{Mainnet, Testnet, Regtest} {
		p := ParamsForNetwork(net)
		if p.Network != net {
			t.Fatalf("params network %v, want %v", p.Network, net)
		}
		if p.GenesisWork().Sign() <= 0 {
			t.Fatalf("%v: genesis work not positive", net)
		}
	}
	// Distinct genesis hashes per network.
	m := MainnetParams().GenesisHeader.BlockHash()
	r := RegtestParams().GenesisHeader.BlockHash()
	if m == r {
		t.Fatal("mainnet and regtest genesis collide")
	}
}
