package btc

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

// randomTestBlock builds a block with a mix of coinbase-like and spending
// transactions, random script lengths (including empty), and random counts.
func randomTestBlock(rng *rand.Rand) *Block {
	b := &Block{Header: BlockHeader{
		Version:   uint32(rng.Int31()),
		Timestamp: uint32(rng.Int31()),
		Bits:      uint32(rng.Int31()),
		Nonce:     uint32(rng.Int31()),
	}}
	rng.Read(b.Header.PrevBlock[:])
	rng.Read(b.Header.MerkleRoot[:])
	for t := rng.Intn(6); t >= 0; t-- {
		tx := &Transaction{Version: uint32(rng.Intn(3)), LockTime: uint32(rng.Intn(1000))}
		for i := rng.Intn(4); i >= 0; i-- {
			var in TxIn
			rng.Read(in.PreviousOutPoint.TxID[:])
			in.PreviousOutPoint.Vout = uint32(rng.Intn(5))
			in.SignatureScript = make([]byte, rng.Intn(120))
			rng.Read(in.SignatureScript)
			in.Sequence = uint32(rng.Int31())
			tx.Inputs = append(tx.Inputs, in)
		}
		for i := rng.Intn(4); i >= 0; i-- {
			script := make([]byte, rng.Intn(40))
			rng.Read(script)
			tx.Outputs = append(tx.Outputs, TxOut{Value: int64(rng.Intn(100_000)), PkScript: script})
		}
		b.Transactions = append(b.Transactions, tx)
	}
	return b
}

// TestParseBlockFastEquivalence pins the zero-copy parser to the reader
// parser: identical blocks, identical txid tables (span hashes equal
// re-serialization hashes), identical re-serialization, and identical
// accept/reject decisions on truncations and trailing garbage.
func TestParseBlockFastEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 200; iter++ {
		blk := randomTestBlock(rng)
		wire := blk.Bytes()

		slow, errSlow := ParseBlock(wire)
		fast, errFast := ParseBlockFast(wire)
		if errSlow != nil || errFast != nil {
			t.Fatalf("iter %d: parse errors slow=%v fast=%v", iter, errSlow, errFast)
		}
		if !bytes.Equal(slow.Bytes(), fast.Bytes()) {
			t.Fatalf("iter %d: serializations differ", iter)
		}
		slowIDs, fastIDs := slow.TxIDs(), fast.TxIDs()
		if len(slowIDs) != len(fastIDs) {
			t.Fatalf("iter %d: txid count %d != %d", iter, len(slowIDs), len(fastIDs))
		}
		for i := range slowIDs {
			if slowIDs[i] != fastIDs[i] {
				t.Fatalf("iter %d: txid %d differs: %s != %s", iter, i, slowIDs[i], fastIDs[i])
			}
		}
		if slow.MerkleRoot() != fast.MerkleRoot() {
			t.Fatalf("iter %d: merkle roots differ", iter)
		}

		// Truncations and trailing bytes must be rejected by both.
		if len(wire) > 0 {
			cut := wire[:rng.Intn(len(wire))]
			if _, err := ParseBlock(cut); err == nil {
				t.Fatalf("iter %d: reader parser accepted a truncation", iter)
			}
			if _, err := ParseBlockFast(cut); err == nil {
				t.Fatalf("iter %d: fast parser accepted a truncation", iter)
			}
		}
		trailing := append(append([]byte(nil), wire...), 0x00)
		if _, err := ParseBlock(trailing); err == nil {
			t.Fatalf("iter %d: reader parser accepted trailing bytes", iter)
		}
		if _, err := ParseBlockFast(trailing); err == nil {
			t.Fatalf("iter %d: fast parser accepted trailing bytes", iter)
		}
	}
}

// TestParseBlockFastRejectsNonCanonicalVarint mirrors ReadVarInt's
// canonical-form enforcement: a 0xfd-prefixed count below 0xfd must be
// rejected by both parsers (span hashes would otherwise diverge from
// re-serialization hashes).
func TestParseBlockFastRejectsNonCanonicalVarint(t *testing.T) {
	blk := randomTestBlock(rand.New(rand.NewSource(7)))
	wire := blk.Bytes()
	// The tx count varint sits right after the 80-byte header and is a
	// single byte for small blocks; widen it to a non-canonical 0xfd form.
	n := wire[BlockHeaderSize]
	mut := append([]byte(nil), wire[:BlockHeaderSize]...)
	mut = append(mut, 0xfd, n, 0x00)
	mut = append(mut, wire[BlockHeaderSize+1:]...)
	if _, err := ParseBlock(mut); err == nil {
		t.Fatal("reader parser accepted a non-canonical varint")
	}
	if _, err := ParseBlockFast(mut); err == nil {
		t.Fatal("fast parser accepted a non-canonical varint")
	}
}

// TestBlockMemoRaceSafety is the -race regression for the TxIDs/MerkleRoot
// memoization: sealed blocks are read by concurrent query-fleet replicas
// and pipeline workers, so first-use memoization from many goroutines must
// be race-free and agree on the value.
func TestBlockMemoRaceSafety(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 20; iter++ {
		blk := randomTestBlock(rng)
		want := blk.Bytes() // serialization does not touch the memos
		ref, err := ParseBlock(want)
		if err != nil {
			t.Fatal(err)
		}
		wantIDs := ref.TxIDs()
		wantRoot := ref.MerkleRoot()

		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ids := blk.TxIDs()
				if len(ids) != len(wantIDs) {
					t.Errorf("txid count %d != %d", len(ids), len(wantIDs))
					return
				}
				for i := range ids {
					if ids[i] != wantIDs[i] {
						t.Errorf("txid %d diverged under concurrency", i)
						return
					}
				}
				if blk.MerkleRoot() != wantRoot {
					t.Error("merkle root diverged under concurrency")
				}
			}()
		}
		wg.Wait()
	}
}
