package btc

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestVarIntRoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 0xfc, 0xfd, 0xfe, 0xffff, 0x10000, 0xffffffff, 0x100000000, 1<<64 - 1}
	for _, v := range cases {
		var buf bytes.Buffer
		if err := WriteVarInt(&buf, v); err != nil {
			t.Fatalf("write %d: %v", v, err)
		}
		if buf.Len() != VarIntSize(v) {
			t.Errorf("v=%d: encoded %d bytes, VarIntSize says %d", v, buf.Len(), VarIntSize(v))
		}
		got, err := ReadVarInt(&buf)
		if err != nil {
			t.Fatalf("read %d: %v", v, err)
		}
		if got != v {
			t.Errorf("round trip: got %d, want %d", got, v)
		}
	}
}

func TestVarIntCanonical(t *testing.T) {
	// 0xfd prefix encoding a value < 0xfd must be rejected.
	cases := [][]byte{
		{0xfd, 0x01, 0x00},                                     // 1 encoded in 3 bytes
		{0xfe, 0xff, 0xff, 0x00, 0x00},                         // 0xffff encoded in 5 bytes
		{0xff, 0xff, 0xff, 0xff, 0xff, 0x00, 0x00, 0x00, 0x00}, // 32-bit in 9
	}
	for i, c := range cases {
		if _, err := ReadVarInt(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: non-canonical varint accepted", i)
		}
	}
}

func TestVarIntTruncated(t *testing.T) {
	cases := [][]byte{{}, {0xfd}, {0xfd, 0x01}, {0xfe, 1, 2, 3}, {0xff, 1, 2, 3, 4, 5, 6, 7}}
	for i, c := range cases {
		if _, err := ReadVarInt(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: truncated varint accepted", i)
		}
	}
}

func TestQuickVarIntRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		var buf bytes.Buffer
		if err := WriteVarInt(&buf, v); err != nil {
			return false
		}
		got, err := ReadVarInt(&buf)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVarBytesLimit(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteVarBytes(&buf, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadVarBytes(bytes.NewReader(buf.Bytes()), 99); err == nil {
		t.Fatal("length above limit accepted")
	}
	got, err := ReadVarBytes(bytes.NewReader(buf.Bytes()), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("got %d bytes, want 100", len(got))
	}
}

func TestHashStringRoundTrip(t *testing.T) {
	h := DoubleSHA256([]byte("hello"))
	parsed, err := NewHashFromString(h.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != h {
		t.Fatalf("round trip mismatch: %s != %s", parsed, h)
	}
}

func TestNewHashFromStringErrors(t *testing.T) {
	if _, err := NewHashFromString("zz"); err == nil {
		t.Error("invalid hex accepted")
	}
	if _, err := NewHashFromString("abcd"); err == nil {
		t.Error("short hash accepted")
	}
}

func TestDoubleSHA256KnownVector(t *testing.T) {
	// Double SHA-256 of the empty string.
	h := DoubleSHA256(nil)
	// Display order reverses bytes; verify against the known value of
	// sha256d("") = 5df6e0e2761359d30a8275058e299fcc0381534545f55cf43e41983f5d4c9456
	// whose reversed-hex display is below.
	const want = "56944c5d3f98413ef45cf54545538103cc9f298e0575820ad3591376e2e0f65d"
	if h.String() != want {
		t.Fatalf("got %s, want %s", h, want)
	}
}

func TestHash160Stable(t *testing.T) {
	a := Hash160([]byte("key"))
	b := Hash160([]byte("key"))
	c := Hash160([]byte("other"))
	if a != b {
		t.Fatal("Hash160 not deterministic")
	}
	if a == c {
		t.Fatal("Hash160 collision on trivially distinct inputs")
	}
}
