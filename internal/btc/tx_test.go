package btc

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"icbtc/internal/secp256k1"
)

func randomTx(rng *rand.Rand) *Transaction {
	tx := &Transaction{Version: 2, LockTime: rng.Uint32()}
	nIn := 1 + rng.Intn(4)
	for i := 0; i < nIn; i++ {
		var op OutPoint
		rng.Read(op.TxID[:])
		op.Vout = uint32(rng.Intn(10))
		script := make([]byte, rng.Intn(80))
		rng.Read(script)
		tx.Inputs = append(tx.Inputs, TxIn{
			PreviousOutPoint: op,
			SignatureScript:  script,
			Sequence:         0xffffffff,
		})
	}
	nOut := 1 + rng.Intn(4)
	for i := 0; i < nOut; i++ {
		var h [20]byte
		rng.Read(h[:])
		tx.Outputs = append(tx.Outputs, TxOut{
			Value:    int64(rng.Intn(1_000_000) + 1),
			PkScript: PayToPubKeyHashScript(h),
		})
	}
	return tx
}

func TestTransactionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		tx := randomTx(rng)
		enc := tx.Bytes()
		if len(enc) != tx.SerializedSize() {
			t.Fatalf("SerializedSize %d != actual %d", tx.SerializedSize(), len(enc))
		}
		got, err := ParseTransaction(enc)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		if !bytes.Equal(got.Bytes(), enc) {
			t.Fatal("round trip mismatch")
		}
		if got.TxID() != tx.TxID() {
			t.Fatal("txid changed across round trip")
		}
	}
}

func TestParseTransactionRejectsTrailing(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tx := randomTx(rng)
	enc := append(tx.Bytes(), 0x00)
	if _, err := ParseTransaction(enc); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestParseTransactionTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tx := randomTx(rng)
	enc := tx.Bytes()
	for _, cut := range []int{0, 1, 4, len(enc) / 2, len(enc) - 1} {
		if _, err := ParseTransaction(enc[:cut]); err == nil {
			t.Errorf("truncated at %d accepted", cut)
		}
	}
}

func TestIsCoinbase(t *testing.T) {
	cb := &Transaction{
		Inputs: []TxIn{{
			PreviousOutPoint: OutPoint{TxID: ZeroHash, Vout: 0xffffffff},
		}},
		Outputs: []TxOut{{Value: 50 * SatoshiPerBitcoin}},
	}
	if !cb.IsCoinbase() {
		t.Fatal("coinbase not detected")
	}
	rng := rand.New(rand.NewSource(10))
	if randomTx(rng).IsCoinbase() {
		t.Fatal("regular tx detected as coinbase")
	}
}

func TestCheckSanity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	good := randomTx(rng)
	if err := good.CheckSanity(); err != nil {
		t.Fatalf("valid tx rejected: %v", err)
	}

	noIn := &Transaction{Outputs: good.Outputs}
	if err := noIn.CheckSanity(); err == nil {
		t.Error("tx with no inputs accepted")
	}
	noOut := &Transaction{Inputs: good.Inputs}
	if err := noOut.CheckSanity(); err == nil {
		t.Error("tx with no outputs accepted")
	}

	negative := randomTx(rng)
	negative.Outputs[0].Value = -1
	if err := negative.CheckSanity(); err == nil {
		t.Error("negative output value accepted")
	}

	huge := randomTx(rng)
	huge.Outputs[0].Value = MaxSatoshi + 1
	if err := huge.CheckSanity(); err == nil {
		t.Error("output above supply cap accepted")
	}

	overflow := randomTx(rng)
	overflow.Outputs = []TxOut{
		{Value: MaxSatoshi, PkScript: overflow.Outputs[0].PkScript},
		{Value: MaxSatoshi, PkScript: overflow.Outputs[0].PkScript},
	}
	if err := overflow.CheckSanity(); err == nil {
		t.Error("aggregate overflow accepted")
	}

	dup := randomTx(rng)
	dup.Inputs = append(dup.Inputs, dup.Inputs[0])
	if err := dup.CheckSanity(); err == nil {
		t.Error("duplicate input accepted")
	}
}

func TestQuickTxRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tx := randomTx(rng)
		got, err := ParseTransaction(tx.Bytes())
		return err == nil && got.TxID() == tx.TxID()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSignVerifyInput(t *testing.T) {
	key, err := secp256k1.GeneratePrivateKey(rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	addr := AddressFromPubKey(key.PubKey().SerializeCompressed(), Regtest)
	lockScript := PayToAddrScript(addr)

	var prev OutPoint
	prev.TxID = DoubleSHA256([]byte("funding"))
	tx := &Transaction{
		Version: 2,
		Inputs:  []TxIn{{PreviousOutPoint: prev, Sequence: 0xffffffff}},
		Outputs: []TxOut{{Value: 1000, PkScript: lockScript}},
	}
	if err := SignInput(tx, 0, lockScript, key); err != nil {
		t.Fatalf("sign: %v", err)
	}
	if err := VerifyInput(tx, 0, lockScript); err != nil {
		t.Fatalf("verify: %v", err)
	}

	// Tampering with the output must invalidate the signature.
	tx.Outputs[0].Value = 999
	if err := VerifyInput(tx, 0, lockScript); err == nil {
		t.Fatal("tampered tx verified")
	}
	tx.Outputs[0].Value = 1000

	// A different key's address must not verify.
	otherKey, _ := secp256k1.GeneratePrivateKey(rand.New(rand.NewSource(13)))
	otherAddr := AddressFromPubKey(otherKey.PubKey().SerializeCompressed(), Regtest)
	if err := VerifyInput(tx, 0, PayToAddrScript(otherAddr)); err == nil {
		t.Fatal("signature verified against wrong locking script")
	}
}

func TestSignatureHashDependsOnInput(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	tx := randomTx(rng)
	tx.Inputs = append(tx.Inputs, tx.Inputs[0])
	tx.Inputs[1].PreviousOutPoint.Vout++
	script := tx.Outputs[0].PkScript
	h0, err := SignatureHash(tx, 0, script)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := SignatureHash(tx, 1, script)
	if err != nil {
		t.Fatal(err)
	}
	if h0 == h1 {
		t.Fatal("signature hash identical for different inputs")
	}
	if _, err := SignatureHash(tx, len(tx.Inputs), script); err == nil {
		t.Fatal("out-of-range input accepted")
	}
}
