package btc

import (
	"bytes"
	"errors"
	"fmt"
	"io"
)

// Satoshi amounts. One bitcoin is 1e8 satoshi.
const (
	SatoshiPerBitcoin = 100_000_000
	// MaxSatoshi is the total supply cap (21 million BTC) in satoshi.
	MaxSatoshi = 21_000_000 * SatoshiPerBitcoin
)

// OutPoint identifies a transaction output by the hash of the transaction
// that created it and the output index within that transaction.
type OutPoint struct {
	TxID Hash
	Vout uint32
}

// String renders the outpoint as txid:vout.
func (o OutPoint) String() string { return fmt.Sprintf("%s:%d", o.TxID, o.Vout) }

// TxIn spends a previous output. SignatureScript carries the unlocking data
// (a DER signature and public key for P2PKH, empty for witness spends).
type TxIn struct {
	PreviousOutPoint OutPoint
	SignatureScript  []byte
	Witness          [][]byte
	Sequence         uint32
}

// TxOut creates new value locked by PkScript.
type TxOut struct {
	Value    int64
	PkScript []byte
}

// Transaction is a Bitcoin transaction. A transaction with a single input
// whose previous outpoint is the zero hash is a coinbase transaction.
type Transaction struct {
	Version  uint32
	Inputs   []TxIn
	Outputs  []TxOut
	LockTime uint32
}

// IsCoinbase reports whether the transaction is a coinbase (mints new value).
func (t *Transaction) IsCoinbase() bool {
	return len(t.Inputs) == 1 &&
		t.Inputs[0].PreviousOutPoint.TxID.IsZero() &&
		t.Inputs[0].PreviousOutPoint.Vout == 0xffffffff
}

// Serialize encodes the transaction in Bitcoin wire format (without witness
// data; witnesses travel in the segregated area and do not affect the txid).
func (t *Transaction) Serialize(w io.Writer) error {
	if err := writeUint32(w, t.Version); err != nil {
		return err
	}
	if err := WriteVarInt(w, uint64(len(t.Inputs))); err != nil {
		return err
	}
	for i := range t.Inputs {
		in := &t.Inputs[i]
		if err := writeHash(w, in.PreviousOutPoint.TxID); err != nil {
			return err
		}
		if err := writeUint32(w, in.PreviousOutPoint.Vout); err != nil {
			return err
		}
		if err := WriteVarBytes(w, in.SignatureScript); err != nil {
			return err
		}
		if err := writeUint32(w, in.Sequence); err != nil {
			return err
		}
	}
	if err := WriteVarInt(w, uint64(len(t.Outputs))); err != nil {
		return err
	}
	for i := range t.Outputs {
		out := &t.Outputs[i]
		if err := writeUint64(w, uint64(out.Value)); err != nil {
			return err
		}
		if err := WriteVarBytes(w, out.PkScript); err != nil {
			return err
		}
	}
	return writeUint32(w, t.LockTime)
}

// Bytes returns the wire encoding.
func (t *Transaction) Bytes() []byte {
	var buf bytes.Buffer
	// Buffer writes cannot fail.
	_ = t.Serialize(&buf)
	return buf.Bytes()
}

// TxID returns the transaction hash (double SHA-256 of the non-witness
// serialization).
func (t *Transaction) TxID() Hash {
	return DoubleSHA256(t.Bytes())
}

// SerializedSize returns the byte length of the wire encoding.
func (t *Transaction) SerializedSize() int {
	n := 4 + 4 // version + locktime
	n += VarIntSize(uint64(len(t.Inputs)))
	for i := range t.Inputs {
		in := &t.Inputs[i]
		n += 32 + 4 + VarIntSize(uint64(len(in.SignatureScript))) + len(in.SignatureScript) + 4
	}
	n += VarIntSize(uint64(len(t.Outputs)))
	for i := range t.Outputs {
		out := &t.Outputs[i]
		n += 8 + VarIntSize(uint64(len(out.PkScript))) + len(out.PkScript)
	}
	return n
}

// Tx size and count consensus limits (simplified: the simulation uses the
// pre-segwit 1 MB-style block size limit scaled to the simulated network).
const (
	maxTxInputs  = 100_000
	maxTxOutputs = 100_000
	maxScriptLen = 10_000
)

// DeserializeTransaction decodes a transaction from r.
func DeserializeTransaction(r io.Reader) (*Transaction, error) {
	var t Transaction
	var err error
	if t.Version, err = readUint32(r); err != nil {
		return nil, fmt.Errorf("btc: tx version: %w", err)
	}
	nIn, err := ReadVarInt(r)
	if err != nil {
		return nil, fmt.Errorf("btc: tx input count: %w", err)
	}
	if nIn > maxTxInputs {
		return nil, fmt.Errorf("btc: too many inputs: %d", nIn)
	}
	t.Inputs = make([]TxIn, 0, min(nIn, maxAlloc))
	for i := uint64(0); i < nIn; i++ {
		var in TxIn
		if in.PreviousOutPoint.TxID, err = readHash(r); err != nil {
			return nil, fmt.Errorf("btc: tx input %d: %w", i, err)
		}
		if in.PreviousOutPoint.Vout, err = readUint32(r); err != nil {
			return nil, fmt.Errorf("btc: tx input %d vout: %w", i, err)
		}
		if in.SignatureScript, err = ReadVarBytes(r, maxScriptLen); err != nil {
			return nil, fmt.Errorf("btc: tx input %d script: %w", i, err)
		}
		if in.Sequence, err = readUint32(r); err != nil {
			return nil, fmt.Errorf("btc: tx input %d sequence: %w", i, err)
		}
		t.Inputs = append(t.Inputs, in)
	}
	nOut, err := ReadVarInt(r)
	if err != nil {
		return nil, fmt.Errorf("btc: tx output count: %w", err)
	}
	if nOut > maxTxOutputs {
		return nil, fmt.Errorf("btc: too many outputs: %d", nOut)
	}
	t.Outputs = make([]TxOut, 0, min(nOut, maxAlloc))
	for i := uint64(0); i < nOut; i++ {
		var out TxOut
		v, err := readUint64(r)
		if err != nil {
			return nil, fmt.Errorf("btc: tx output %d value: %w", i, err)
		}
		out.Value = int64(v)
		if out.PkScript, err = ReadVarBytes(r, maxScriptLen); err != nil {
			return nil, fmt.Errorf("btc: tx output %d script: %w", i, err)
		}
		t.Outputs = append(t.Outputs, out)
	}
	if t.LockTime, err = readUint32(r); err != nil {
		return nil, fmt.Errorf("btc: tx locktime: %w", err)
	}
	return &t, nil
}

// ParseTransaction decodes a transaction from bytes, rejecting trailing data.
func ParseTransaction(data []byte) (*Transaction, error) {
	r := bytes.NewReader(data)
	t, err := DeserializeTransaction(r)
	if err != nil {
		return nil, err
	}
	if r.Len() != 0 {
		return nil, errors.New("btc: trailing bytes after transaction")
	}
	return t, nil
}

// CheckSanity performs the stateless syntactic checks the Bitcoin canister's
// send_transaction endpoint applies before forwarding a transaction: it must
// decode, have at least one input and output, and its output values must be
// in range individually and in aggregate.
func (t *Transaction) CheckSanity() error {
	if len(t.Inputs) == 0 {
		return errors.New("btc: transaction has no inputs")
	}
	if len(t.Outputs) == 0 {
		return errors.New("btc: transaction has no outputs")
	}
	var total int64
	for i := range t.Outputs {
		v := t.Outputs[i].Value
		if v < 0 || v > MaxSatoshi {
			return fmt.Errorf("btc: output %d value %d out of range", i, v)
		}
		total += v
		if total > MaxSatoshi {
			return errors.New("btc: total output value exceeds supply cap")
		}
	}
	seen := make(map[OutPoint]struct{}, len(t.Inputs))
	for i := range t.Inputs {
		op := t.Inputs[i].PreviousOutPoint
		if _, dup := seen[op]; dup {
			return fmt.Errorf("btc: duplicate input %s", op)
		}
		seen[op] = struct{}{}
	}
	return nil
}

func min(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
