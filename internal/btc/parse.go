package btc

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Zero-copy block parsing for the ingest pipeline. DeserializeBlock reads
// through an io.Reader and copies every script into a fresh allocation;
// when a whole block is already in memory (wire bytes from the adapter, a
// snapshot, or a stream frame) that indirection is pure overhead. The
// parser below walks the byte slice with a cursor, aliases script fields
// into the input buffer, and — the important part — computes every
// transaction ID as DoubleSHA256 over the transaction's wire span, so the
// txid table costs one hash per transaction and zero re-serialization.
//
// ParseBlockFast accepts exactly the encodings ParseBlock accepts: the
// wire varint reader enforces canonical CompactSize forms, so any input
// that parses is byte-identical to the re-serialization of its parse, and
// the span hashes equal the TxID() of the decoded transactions. The
// equivalence is pinned by TestParseBlockFastEquivalence.

// cursor is a bounds-checked reader over a byte slice.
type cursor struct {
	data []byte
	off  int
}

func (c *cursor) remaining() int { return len(c.data) - c.off }

func (c *cursor) take(n int) ([]byte, error) {
	if n < 0 || c.remaining() < n {
		return nil, ErrTruncated
	}
	b := c.data[c.off : c.off+n]
	c.off += n
	return b, nil
}

func (c *cursor) u32() (uint32, error) {
	b, err := c.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (c *cursor) u64() (uint64, error) {
	b, err := c.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (c *cursor) hash() (Hash, error) {
	b, err := c.take(HashSize)
	if err != nil {
		return Hash{}, err
	}
	var h Hash
	copy(h[:], b)
	return h, nil
}

// varint decodes a canonical CompactSize integer, mirroring ReadVarInt's
// canonicality enforcement exactly.
func (c *cursor) varint() (uint64, error) {
	b, err := c.take(1)
	if err != nil {
		return 0, fmt.Errorf("%w: varint prefix", ErrTruncated)
	}
	switch b[0] {
	case 0xfd:
		p, err := c.take(2)
		if err != nil {
			return 0, fmt.Errorf("%w: varint16", ErrTruncated)
		}
		v := uint64(binary.LittleEndian.Uint16(p))
		if v < 0xfd {
			return 0, errors.New("btc: non-canonical varint")
		}
		return v, nil
	case 0xfe:
		p, err := c.take(4)
		if err != nil {
			return 0, fmt.Errorf("%w: varint32", ErrTruncated)
		}
		v := uint64(binary.LittleEndian.Uint32(p))
		if v <= 0xffff {
			return 0, errors.New("btc: non-canonical varint")
		}
		return v, nil
	case 0xff:
		p, err := c.take(8)
		if err != nil {
			return 0, fmt.Errorf("%w: varint64", ErrTruncated)
		}
		v := binary.LittleEndian.Uint64(p)
		if v <= 0xffffffff {
			return 0, errors.New("btc: non-canonical varint")
		}
		return v, nil
	default:
		return uint64(b[0]), nil
	}
}

// varbytes reads a length-prefixed byte slice aliasing the input buffer.
func (c *cursor) varbytes(maxLen uint64) ([]byte, error) {
	n, err := c.varint()
	if err != nil {
		return nil, err
	}
	if n > maxLen {
		return nil, fmt.Errorf("btc: var bytes length %d exceeds limit %d", n, maxLen)
	}
	b, err := c.take(int(n))
	if err != nil {
		return nil, fmt.Errorf("%w: var bytes body", ErrTruncated)
	}
	return b, nil
}

// parseTransaction decodes one transaction starting at the cursor,
// returning it together with its wire span [start, end) for span hashing.
func (c *cursor) parseTransaction() (*Transaction, int, int, error) {
	start := c.off
	var t Transaction
	var err error
	if t.Version, err = c.u32(); err != nil {
		return nil, 0, 0, fmt.Errorf("btc: tx version: %w", err)
	}
	nIn, err := c.varint()
	if err != nil {
		return nil, 0, 0, fmt.Errorf("btc: tx input count: %w", err)
	}
	if nIn > maxTxInputs {
		return nil, 0, 0, fmt.Errorf("btc: too many inputs: %d", nIn)
	}
	t.Inputs = make([]TxIn, 0, min(nIn, maxAlloc))
	for i := uint64(0); i < nIn; i++ {
		var in TxIn
		if in.PreviousOutPoint.TxID, err = c.hash(); err != nil {
			return nil, 0, 0, fmt.Errorf("btc: tx input %d: %w", i, err)
		}
		if in.PreviousOutPoint.Vout, err = c.u32(); err != nil {
			return nil, 0, 0, fmt.Errorf("btc: tx input %d vout: %w", i, err)
		}
		if in.SignatureScript, err = c.varbytes(maxScriptLen); err != nil {
			return nil, 0, 0, fmt.Errorf("btc: tx input %d script: %w", i, err)
		}
		if in.Sequence, err = c.u32(); err != nil {
			return nil, 0, 0, fmt.Errorf("btc: tx input %d sequence: %w", i, err)
		}
		t.Inputs = append(t.Inputs, in)
	}
	nOut, err := c.varint()
	if err != nil {
		return nil, 0, 0, fmt.Errorf("btc: tx output count: %w", err)
	}
	if nOut > maxTxOutputs {
		return nil, 0, 0, fmt.Errorf("btc: too many outputs: %d", nOut)
	}
	t.Outputs = make([]TxOut, 0, min(nOut, maxAlloc))
	for i := uint64(0); i < nOut; i++ {
		var out TxOut
		v, err := c.u64()
		if err != nil {
			return nil, 0, 0, fmt.Errorf("btc: tx output %d value: %w", i, err)
		}
		out.Value = int64(v)
		if out.PkScript, err = c.varbytes(maxScriptLen); err != nil {
			return nil, 0, 0, fmt.Errorf("btc: tx output %d script: %w", i, err)
		}
		t.Outputs = append(t.Outputs, out)
	}
	if t.LockTime, err = c.u32(); err != nil {
		return nil, 0, 0, fmt.Errorf("btc: tx locktime: %w", err)
	}
	return &t, start, c.off, nil
}

// ParseBlockFast decodes a block from wire bytes without copying script
// fields (they alias data, which must stay immutable for the block's
// lifetime) and seals the block's transaction-ID memo by double-hashing
// each transaction's wire span. It accepts exactly the inputs ParseBlock
// accepts and produces an equivalent block; the txid table and the blocks'
// serializations are byte-identical.
func ParseBlockFast(data []byte) (*Block, error) {
	c := &cursor{data: data}
	hdrBytes, err := c.take(BlockHeaderSize)
	if err != nil {
		return nil, fmt.Errorf("btc: header: %w", ErrTruncated)
	}
	hdr, err := ParseBlockHeader(hdrBytes)
	if err != nil {
		return nil, err
	}
	n, err := c.varint()
	if err != nil {
		return nil, fmt.Errorf("btc: block tx count: %w", err)
	}
	if n > maxBlockTxs {
		return nil, fmt.Errorf("btc: too many transactions: %d", n)
	}
	b := &Block{Header: *hdr, Transactions: make([]*Transaction, 0, min(n, maxAlloc))}
	ids := make([]Hash, 0, min(n, maxAlloc))
	for i := uint64(0); i < n; i++ {
		tx, start, end, err := c.parseTransaction()
		if err != nil {
			return nil, fmt.Errorf("btc: block tx %d: %w", i, err)
		}
		b.Transactions = append(b.Transactions, tx)
		ids = append(ids, DoubleSHA256(data[start:end]))
	}
	if c.remaining() != 0 {
		return nil, errors.New("btc: trailing bytes after block")
	}
	if len(b.Transactions) > 0 {
		b.sealTxIDs(ids)
	}
	return b, nil
}
