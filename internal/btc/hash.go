// Package btc implements the Bitcoin primitives the integration depends on:
// double-SHA256 hashing, the variable-length wire encoding, transactions,
// blocks and block headers, Merkle trees, compact-bits difficulty targets,
// base58check and bech32 addresses, and a simplified script engine covering
// the P2PKH and P2WPKH spend paths.
package btc

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// HashSize is the byte length of a Bitcoin hash.
const HashSize = 32

// Hash is a Bitcoin double-SHA256 hash. Following Bitcoin convention the
// bytes are stored in internal (little-endian) order and displayed reversed.
type Hash [HashSize]byte

// ZeroHash is the all-zero hash, used as the previous-block reference of the
// genesis block.
var ZeroHash Hash

// DoubleSHA256 computes SHA256(SHA256(data)), Bitcoin's block and transaction
// hash function H.
func DoubleSHA256(data []byte) Hash {
	first := sha256.Sum256(data)
	return Hash(sha256.Sum256(first[:]))
}

// HashOf is shorthand for DoubleSHA256 over the concatenation of parts.
func HashOf(parts ...[]byte) Hash {
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
	}
	first := h.Sum(nil)
	return Hash(sha256.Sum256(first))
}

// String renders the hash in display order (byte-reversed hex), matching
// Bitcoin block explorers.
func (h Hash) String() string {
	var rev [HashSize]byte
	for i := 0; i < HashSize; i++ {
		rev[i] = h[HashSize-1-i]
	}
	return hex.EncodeToString(rev[:])
}

// IsZero reports whether the hash is all zeros.
func (h Hash) IsZero() bool { return h == ZeroHash }

// NewHashFromString parses a display-order hex string.
func NewHashFromString(s string) (Hash, error) {
	raw, err := hex.DecodeString(s)
	if err != nil {
		return Hash{}, fmt.Errorf("btc: parsing hash: %w", err)
	}
	if len(raw) != HashSize {
		return Hash{}, fmt.Errorf("btc: hash must be %d bytes, got %d", HashSize, len(raw))
	}
	var h Hash
	for i := 0; i < HashSize; i++ {
		h[i] = raw[HashSize-1-i]
	}
	return h, nil
}

// Hash160 computes SHA256 followed by a truncated second SHA256.
//
// Substitution note: Bitcoin proper uses RIPEMD-160 for the outer hash;
// RIPEMD-160 is not in the Go standard library, so the outer hash here is the
// first 20 bytes of a second SHA-256. The construction preserves everything
// the architecture relies on — a 20-byte collision-resistant commitment to a
// public key — and is documented in DESIGN.md.
func Hash160(data []byte) [20]byte {
	first := sha256.Sum256(data)
	second := sha256.Sum256(first[:])
	var out [20]byte
	copy(out[:], second[:20])
	return out
}
