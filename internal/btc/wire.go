package btc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// This file implements the Bitcoin wire encoding primitives: little-endian
// fixed-width integers and the variable-length integer ("CompactSize")
// encoding used throughout the P2P protocol and in transaction/block
// serialization.

// ErrTruncated is returned when a decoder runs out of input.
var ErrTruncated = errors.New("btc: truncated input")

// maxAlloc caps the element count a decoder will pre-allocate for, guarding
// against memory exhaustion from hostile length prefixes.
const maxAlloc = 1 << 20

// WriteVarInt encodes v using Bitcoin's CompactSize encoding.
func WriteVarInt(w io.Writer, v uint64) error {
	var buf [9]byte
	switch {
	case v < 0xfd:
		buf[0] = byte(v)
		_, err := w.Write(buf[:1])
		return err
	case v <= 0xffff:
		buf[0] = 0xfd
		binary.LittleEndian.PutUint16(buf[1:3], uint16(v))
		_, err := w.Write(buf[:3])
		return err
	case v <= 0xffffffff:
		buf[0] = 0xfe
		binary.LittleEndian.PutUint32(buf[1:5], uint32(v))
		_, err := w.Write(buf[:5])
		return err
	default:
		buf[0] = 0xff
		binary.LittleEndian.PutUint64(buf[1:9], v)
		_, err := w.Write(buf[:9])
		return err
	}
}

// ReadVarInt decodes a CompactSize integer, enforcing canonical (minimal)
// encoding as Bitcoin consensus does for transaction counts.
func ReadVarInt(r io.Reader) (uint64, error) {
	var first [1]byte
	if _, err := io.ReadFull(r, first[:]); err != nil {
		return 0, fmt.Errorf("%w: varint prefix", ErrTruncated)
	}
	switch first[0] {
	case 0xfd:
		var buf [2]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return 0, fmt.Errorf("%w: varint16", ErrTruncated)
		}
		v := uint64(binary.LittleEndian.Uint16(buf[:]))
		if v < 0xfd {
			return 0, errors.New("btc: non-canonical varint")
		}
		return v, nil
	case 0xfe:
		var buf [4]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return 0, fmt.Errorf("%w: varint32", ErrTruncated)
		}
		v := uint64(binary.LittleEndian.Uint32(buf[:]))
		if v <= 0xffff {
			return 0, errors.New("btc: non-canonical varint")
		}
		return v, nil
	case 0xff:
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return 0, fmt.Errorf("%w: varint64", ErrTruncated)
		}
		v := binary.LittleEndian.Uint64(buf[:])
		if v <= 0xffffffff {
			return 0, errors.New("btc: non-canonical varint")
		}
		return v, nil
	default:
		return uint64(first[0]), nil
	}
}

// VarIntSize returns the encoded size of v in bytes.
func VarIntSize(v uint64) int {
	switch {
	case v < 0xfd:
		return 1
	case v <= 0xffff:
		return 3
	case v <= 0xffffffff:
		return 5
	default:
		return 9
	}
}

// WriteVarBytes writes a length-prefixed byte slice.
func WriteVarBytes(w io.Writer, b []byte) error {
	if err := WriteVarInt(w, uint64(len(b))); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

// ReadVarBytes reads a length-prefixed byte slice, rejecting lengths above
// maxLen.
func ReadVarBytes(r io.Reader, maxLen uint64) ([]byte, error) {
	n, err := ReadVarInt(r)
	if err != nil {
		return nil, err
	}
	if n > maxLen {
		return nil, fmt.Errorf("btc: var bytes length %d exceeds limit %d", n, maxLen)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("%w: var bytes body", ErrTruncated)
	}
	return buf, nil
}

func writeUint32(w io.Writer, v uint32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func readUint32(r io.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("%w: uint32", ErrTruncated)
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func writeUint64(w io.Writer, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func readUint64(r io.Reader) (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("%w: uint64", ErrTruncated)
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

func writeHash(w io.Writer, h Hash) error {
	_, err := w.Write(h[:])
	return err
}

func readHash(r io.Reader) (Hash, error) {
	var h Hash
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return Hash{}, fmt.Errorf("%w: hash", ErrTruncated)
	}
	return h, nil
}
