// Package difftest is the differential test harness for the canister read
// path: the incremental unstable-state overlay is an equivalence-preserving
// rewrite of the naive §III-C per-request block replay, so the harness runs
// randomized workloads — mines, reorgs up to δ−1 deep, sends (including
// double spends and spends of outputs created on losing branches, which the
// canister deliberately does not validate away), and paginated queries at
// varying minConfirmations — through two canisters fed byte-identical
// payloads: one on ReadPathOverlay, one on ReadPathReplay (the oracle). All
// request results must be byte-identical.
//
// The harness additionally exercises the snapshot subsystem: at random
// points mid-run the overlay canister is serialized, decoded into a fresh
// instance, and replaced (Config.SnapshotEvery). The oracle is never
// restarted, so the restored canister's answers are checked against a
// replica that lived through the entire history in process memory — the
// upgrade and crash-recovery scenarios, differentially verified.
package difftest

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"time"

	"icbtc/internal/adapter"
	"icbtc/internal/btc"
	"icbtc/internal/canister"
	"icbtc/internal/ic"
)

// Config parameterizes one differential run.
type Config struct {
	// Seed drives every random choice; a run is fully reproducible.
	Seed int64
	// Steps is how many workload iterations to execute.
	Steps int
	// Delta is δ (the canisters' stability threshold).
	Delta int64
	// Addresses is the size of the synthetic address population.
	Addresses int
	// SnapshotEvery, when > 0, snapshot/restores the overlay canister with
	// probability 1/SnapshotEvery per step: the canister is serialized,
	// decoded into a fresh instance that replaces it mid-run, and
	// re-encoding the restored instance must reproduce the snapshot bytes.
	// The replay oracle is never restarted, so every later query also
	// cross-checks the restore against a canister that lived through the
	// whole history in memory.
	SnapshotEvery int
}

// DefaultConfig returns a workload mix that exercises forks, conflicting
// spends, pagination, confirmation filters, and mid-run snapshot/restores
// within a small δ.
func DefaultConfig(seed int64) Config {
	return Config{Seed: seed, Steps: 100, Delta: 6, Addresses: 10, SnapshotEvery: 5}
}

// Stats summarizes a completed run.
type Stats struct {
	Steps            int
	BlocksMined      int
	Reorgs           int
	Queries          int
	PagesWalked      int
	HeaderDelays     int
	SnapshotRestores int
	// SnapshotBytes is the size of the last snapshot taken.
	SnapshotBytes int
}

// Harness drives the two canisters.
type Harness struct {
	cfg    Config
	rng    *rand.Rand
	params *btc.Params

	overlay *canister.BitcoinCanister
	replay  *canister.BitcoinCanister

	miner *forkMiner
	now   time.Time

	// addrs is the synthetic population queries and outputs draw from.
	addrs []popAddr
	// pool holds previously created outpoints across every branch; spends
	// sample it with replacement, so double spends and spends of outputs
	// created on losing branches occur naturally.
	pool []poolEntry
	// pending holds blocks whose headers were announced (via Next) one step
	// before their blocks are delivered, exercising header-only tree nodes.
	pending []*btc.Block

	stats Stats
}

type popAddr struct {
	address string
	script  []byte
}

type poolEntry struct {
	op    btc.OutPoint
	value int64
}

// New creates a harness with both canisters at genesis.
func New(cfg Config) *Harness {
	params := btc.RegtestParams()
	mk := func(rp canister.ReadPath) *canister.BitcoinCanister {
		c := canister.DefaultConfig(btc.Regtest)
		c.StabilityThreshold = cfg.Delta
		c.ReadPath = rp
		return canister.New(c)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	h := &Harness{
		cfg:     cfg,
		rng:     rng,
		params:  params,
		overlay: mk(canister.ReadPathOverlay),
		replay:  mk(canister.ReadPathReplay),
		miner:   newForkMiner(params),
		now:     time.Unix(int64(params.GenesisHeader.Timestamp), 0).Add(time.Hour),
	}
	for i := 0; i < cfg.Addresses; i++ {
		var hash [20]byte
		rng.Read(hash[:])
		a := btc.NewP2PKHAddress(hash, params.Network)
		h.addrs = append(h.addrs, popAddr{address: a.String(), script: btc.PayToAddrScript(a)})
	}
	return h
}

// Stats returns the run counters so far.
func (h *Harness) Stats() Stats { return h.stats }

// Run executes cfg.Steps workload iterations, stopping at the first
// divergence between the overlay and the oracle.
func (h *Harness) Run() (Stats, error) {
	for i := 0; i < h.cfg.Steps; i++ {
		if err := h.Step(); err != nil {
			return h.stats, fmt.Errorf("difftest: seed %d step %d: %w", h.cfg.Seed, i, err)
		}
	}
	return h.stats, nil
}

// Step executes one workload iteration: deliver any deferred blocks, mutate
// the chain (extend or reorg), then cross-check a batch of queries.
func (h *Harness) Step() error {
	h.stats.Steps++
	if err := h.deliverPending(); err != nil {
		return err
	}

	switch {
	case h.rng.Intn(4) == 0 && h.forkDepthBudget() > 0:
		if err := h.reorg(); err != nil {
			return err
		}
	default:
		block, err := h.mineOnTip()
		if err != nil {
			return err
		}
		// One time in five, announce the header first and hold the block
		// back one step (the adapter's upcoming-headers flow), putting a
		// header-only node at the tip of the considered chain.
		if h.rng.Intn(5) == 0 {
			h.stats.HeaderDelays++
			h.pending = append(h.pending, block)
			if err := h.deliver(adapter.Response{Next: []btc.BlockHeader{block.Header}}); err != nil {
				return err
			}
		} else if err := h.deliverBlocks(block); err != nil {
			return err
		}
	}

	// Occasionally tear the overlay canister down to bytes and bring it
	// back mid-run — an upgrade/crash-recovery at a random point in the
	// workload. All later checks run against the restored instance.
	if h.cfg.SnapshotEvery > 0 && h.rng.Intn(h.cfg.SnapshotEvery) == 0 {
		if err := h.snapshotRestart(); err != nil {
			return err
		}
	}

	if err := h.checkStateAgreement(); err != nil {
		return err
	}
	return h.checkQueries()
}

// snapshotRestart replaces the overlay canister with one restored from its
// own snapshot, first asserting the codec's determinism: re-encoding the
// restored canister must reproduce the snapshot byte for byte.
func (h *Harness) snapshotRestart() error {
	snap, err := h.overlay.Snapshot()
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	restored, err := canister.RestoreSnapshot(snap)
	if err != nil {
		return fmt.Errorf("restore: %w", err)
	}
	again, err := restored.Snapshot()
	if err != nil {
		return fmt.Errorf("re-snapshot: %w", err)
	}
	if !bytes.Equal(snap, again) {
		return fmt.Errorf("snapshot non-deterministic: re-encoding a restored canister changed %d -> %d bytes",
			len(snap), len(again))
	}
	h.overlay = restored
	h.stats.SnapshotRestores++
	h.stats.SnapshotBytes = len(snap)
	return nil
}

// deliverPending ships blocks whose headers went out last step.
func (h *Harness) deliverPending() error {
	if len(h.pending) == 0 {
		return nil
	}
	blocks := h.pending
	h.pending = nil
	return h.deliverBlocks(blocks...)
}

// forkDepthBudget returns the deepest admissible fork point distance from
// the tip: at most δ−1 and never below the anchor.
func (h *Harness) forkDepthBudget() int64 {
	budget := h.overlay.TipHeight() - h.overlay.AnchorHeight()
	if max := h.cfg.Delta - 1; budget > max {
		budget = max
	}
	return budget
}

// reorg mines a heavier competing branch from up to δ−1 blocks below the
// tip and delivers it; the canisters must switch their current chain to it.
func (h *Harness) reorg() error {
	h.stats.Reorgs++
	depth := 1 + h.rng.Int63n(h.forkDepthBudget())
	base := h.tipHash()
	for i := int64(0); i < depth; i++ {
		base = h.miner.parentOf(base)
	}
	// depth+1 blocks strictly outweigh the displaced suffix (equal bits).
	blocks := make([]*btc.Block, 0, depth+1)
	parent := base
	for i := int64(0); i <= depth; i++ {
		b, err := h.miner.mine(parent, h.randomTxs())
		if err != nil {
			return err
		}
		h.recordOutputs(b)
		blocks = append(blocks, b)
		parent = b.BlockHash()
		h.now = h.now.Add(time.Minute)
	}
	h.stats.BlocksMined += len(blocks)
	return h.deliverBlocks(blocks...)
}

// mineOnTip extends the current chain by one block of random transactions.
func (h *Harness) mineOnTip() (*btc.Block, error) {
	block, err := h.miner.mine(h.tipHash(), h.randomTxs())
	if err != nil {
		return nil, err
	}
	h.recordOutputs(block)
	h.stats.BlocksMined++
	h.now = h.now.Add(time.Minute)
	return block, nil
}

// tipHash asks the canister for its current tip (both canisters run the
// same state machine, so either would do; state agreement is checked after
// every step).
func (h *Harness) tipHash() btc.Hash {
	v, err := h.overlay.Update(h.ctx(ic.KindUpdate), "get_tip", nil)
	if err != nil {
		panic(err) // get_tip cannot fail
	}
	return v.(btc.Hash)
}

// randomTxs builds 0..4 transactions: spends sampled (with replacement)
// from every output ever created on any branch, occasional alien inputs the
// canister never tracked, and 1..3 outputs paying population addresses.
// One block in eight additionally carries a burst transaction paying tens
// of outputs to a single address, so stable buckets grow deep enough that
// paginated queries resume mid-bucket (exercising the ordered index's
// cursor binary search, not just first pages).
func (h *Harness) randomTxs() []*btc.Transaction {
	txs := make([]*btc.Transaction, 0, 5)
	for n := h.rng.Intn(5); n > 0; n-- {
		tx := &btc.Transaction{Version: 2}
		switch {
		case len(h.pool) > 0 && h.rng.Intn(10) < 7:
			for k := 1 + h.rng.Intn(2); k > 0 && len(h.pool) > 0; k-- {
				e := h.pool[h.rng.Intn(len(h.pool))]
				tx.Inputs = append(tx.Inputs, btc.TxIn{PreviousOutPoint: e.op, Sequence: 0xffffffff})
			}
		default:
			// Alien input: value entering the tracked set from outside, or
			// plain garbage — the canister trusts proof of work, not spends.
			var fake btc.OutPoint
			h.rng.Read(fake.TxID[:])
			tx.Inputs = append(tx.Inputs, btc.TxIn{PreviousOutPoint: fake, Sequence: 0xffffffff})
		}
		for k := 1 + h.rng.Intn(3); k > 0; k-- {
			addr := h.addrs[h.rng.Intn(len(h.addrs))]
			tx.Outputs = append(tx.Outputs, btc.TxOut{
				Value:    500 + int64(h.rng.Intn(10_000)),
				PkScript: addr.script,
			})
		}
		txs = append(txs, tx)
	}
	if h.rng.Intn(8) == 0 {
		burst := &btc.Transaction{Version: 2}
		var fake btc.OutPoint
		h.rng.Read(fake.TxID[:])
		burst.Inputs = append(burst.Inputs, btc.TxIn{PreviousOutPoint: fake, Sequence: 0xffffffff})
		addr := h.addrs[h.rng.Intn(len(h.addrs))]
		for k := 20 + h.rng.Intn(21); k > 0; k-- {
			burst.Outputs = append(burst.Outputs, btc.TxOut{
				Value:    400 + int64(h.rng.Intn(5_000)),
				PkScript: addr.script,
			})
		}
		txs = append(txs, burst)
	}
	return txs
}

// recordOutputs adds a block's outputs to the spend-candidate pool.
func (h *Harness) recordOutputs(block *btc.Block) {
	for _, tx := range block.Transactions {
		txid := tx.TxID()
		for vout := range tx.Outputs {
			h.pool = append(h.pool, poolEntry{
				op:    btc.OutPoint{TxID: txid, Vout: uint32(vout)},
				value: tx.Outputs[vout].Value,
			})
		}
	}
	if len(h.pool) > 600 {
		h.pool = h.pool[len(h.pool)-600:]
	}
}

// deliverBlocks ships blocks (parent-first) to both canisters.
func (h *Harness) deliverBlocks(blocks ...*btc.Block) error {
	resp := adapter.Response{}
	for _, b := range blocks {
		resp.Blocks = append(resp.Blocks, adapter.BlockWithHeader{Block: b, Header: b.Header})
	}
	return h.deliver(resp)
}

// deliver processes one payload on both canisters with identical contexts.
func (h *Harness) deliver(resp adapter.Response) error {
	if err := h.overlay.ProcessPayload(h.ctx(ic.KindUpdate), resp); err != nil {
		return fmt.Errorf("overlay payload: %w", err)
	}
	if err := h.replay.ProcessPayload(h.ctx(ic.KindUpdate), resp); err != nil {
		return fmt.Errorf("replay payload: %w", err)
	}
	return nil
}

func (h *Harness) ctx(kind ic.CallKind) *ic.CallContext {
	return &ic.CallContext{Meter: ic.NewMeter(), Time: h.now, Kind: kind}
}

// checkStateAgreement asserts the two state machines stayed identical (the
// read path must not influence consensus state).
func (h *Harness) checkStateAgreement() error {
	type probe struct {
		name string
		a, b int64
	}
	for _, p := range []probe{
		{"tip height", h.overlay.TipHeight(), h.replay.TipHeight()},
		{"anchor height", h.overlay.AnchorHeight(), h.replay.AnchorHeight()},
		{"stable UTXOs", int64(h.overlay.StableUTXOCount()), int64(h.replay.StableUTXOCount())},
		{"unstable blocks", int64(h.overlay.UnstableBlockCount()), int64(h.replay.UnstableBlockCount())},
	} {
		if p.a != p.b {
			return fmt.Errorf("state divergence: %s overlay=%d replay=%d", p.name, p.a, p.b)
		}
	}
	return nil
}

// checkQueries cross-checks a batch of balance and paginated UTXO queries,
// including a deliberately out-of-range confirmations filter.
func (h *Harness) checkQueries() error {
	confChoices := []int64{0, 1, h.cfg.Delta / 2, h.cfg.Delta, h.cfg.Delta + 1}
	for q := 0; q < 4; q++ {
		addr := h.addrs[h.rng.Intn(len(h.addrs))].address
		if h.rng.Intn(12) == 0 {
			addr = "unknown-address"
		}
		minConf := confChoices[h.rng.Intn(len(confChoices))]
		if err := h.compareBalance(addr, minConf); err != nil {
			return err
		}
		if err := h.compareUTXOPages(addr, minConf, 1+h.rng.Intn(7)); err != nil {
			return err
		}
	}
	return nil
}

func (h *Harness) compareBalance(addr string, minConf int64) error {
	h.stats.Queries++
	args := canister.GetBalanceArgs{Address: addr, MinConfirmations: minConf}
	a, errA := h.overlay.GetBalance(h.ctx(ic.KindQuery), args)
	b, errB := h.replay.GetBalance(h.ctx(ic.KindQuery), args)
	if err := sameError(errA, errB); err != nil {
		return fmt.Errorf("get_balance(%s, c=%d): %w", addr, minConf, err)
	}
	if errA == nil && a != b {
		return fmt.Errorf("get_balance(%s, c=%d): overlay=%d replay=%d", addr, minConf, a, b)
	}
	// A repeated query must hit the overlay's balance cache and agree.
	a2, err := h.overlay.GetBalance(h.ctx(ic.KindQuery), args)
	if errA == nil && (err != nil || a2 != a) {
		return fmt.Errorf("get_balance(%s, c=%d): cache answered %d/%v, first answer %d", addr, minConf, a2, err, a)
	}
	return nil
}

func (h *Harness) compareUTXOPages(addr string, minConf int64, limit int) error {
	var tokA, tokB []byte
	for page := 0; ; page++ {
		if page > 400 {
			return fmt.Errorf("get_utxos(%s, c=%d): pagination did not terminate", addr, minConf)
		}
		h.stats.Queries++
		h.stats.PagesWalked++
		resA, errA := h.overlay.GetUTXOs(h.ctx(ic.KindQuery), canister.GetUTXOsArgs{
			Address: addr, MinConfirmations: minConf, Page: tokA, Limit: limit,
		})
		resB, errB := h.replay.GetUTXOs(h.ctx(ic.KindQuery), canister.GetUTXOsArgs{
			Address: addr, MinConfirmations: minConf, Page: tokB, Limit: limit,
		})
		if err := sameError(errA, errB); err != nil {
			return fmt.Errorf("get_utxos(%s, c=%d) page %d: %w", addr, minConf, page, err)
		}
		if errA != nil {
			return nil // both rejected identically (e.g. c > δ)
		}
		ba, bb := EncodeUTXOsResult(resA), EncodeUTXOsResult(resB)
		if !bytes.Equal(ba, bb) {
			return fmt.Errorf("get_utxos(%s, c=%d) page %d: overlay %x != replay %x", addr, minConf, page, ba, bb)
		}
		if resA.NextPage == nil {
			return nil
		}
		tokA, tokB = resA.NextPage, resB.NextPage
	}
}

func sameError(a, b error) error {
	switch {
	case a == nil && b == nil:
		return nil
	case a == nil || b == nil:
		return fmt.Errorf("error divergence: overlay=%v replay=%v", a, b)
	case a.Error() != b.Error():
		return fmt.Errorf("error divergence: overlay=%q replay=%q", a, b)
	}
	return nil
}

// EncodeUTXOsResult serializes a get_utxos response deterministically so
// responses can be compared byte for byte.
func EncodeUTXOsResult(res *canister.GetUTXOsResult) []byte {
	var buf bytes.Buffer
	w := func(v any) { _ = binary.Write(&buf, binary.BigEndian, v) }
	buf.Write(res.TipHash[:])
	w(res.TipHeight)
	w(int64(res.StableCount))
	w(int64(res.UnstableCount))
	w(int64(len(res.NextPage)))
	buf.Write(res.NextPage)
	w(int64(len(res.UTXOs)))
	for _, u := range res.UTXOs {
		buf.Write(u.OutPoint.TxID[:])
		w(u.OutPoint.Vout)
		w(u.Value)
		w(u.Height)
		w(int64(len(u.PkScript)))
		buf.Write(u.PkScript)
	}
	return buf.Bytes()
}
