// Package difftest is the differential test harness for the canister read
// path: the incremental unstable-state overlay is an equivalence-preserving
// rewrite of the naive §III-C per-request block replay, so the harness runs
// randomized workloads — mines, reorgs up to δ−1 deep, sends (including
// double spends and spends of outputs created on losing branches, which the
// canister deliberately does not validate away), and paginated queries at
// varying minConfirmations — through two canisters fed byte-identical
// payloads: one on ReadPathOverlay, one on ReadPathReplay (the oracle). All
// request results must be byte-identical.
//
// The harness additionally exercises the snapshot subsystem: at random
// points mid-run the overlay canister is serialized, decoded into a fresh
// instance, and replaced (Config.SnapshotEvery). The oracle is never
// restarted, so the restored canister's answers are checked against a
// replica that lived through the entire history in process memory — the
// upgrade and crash-recovery scenarios, differentially verified.
//
// With Config.FleetReplicas > 0 the harness also stands up a read-replica
// query fleet fed by the overlay canister's delta stream, and verifies
// bounded-staleness serving *exactly*: after every published frame it
// records the authoritative canister's answers to a fixed probe set, then
// holds each replica at a random lag (including mid-reorg, when a reorg's
// blocks arrive as separate frames, and immediately after a snapshot
// re-hydration) and requires the replica's answers to be byte-identical to
// the authoritative canister's recorded answers at the replica's frame.
// Certified responses must verify under the subnet key, and forwarded
// (too-stale) responses must match the current authoritative state.
package difftest

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"time"

	"icbtc/internal/adapter"
	"icbtc/internal/btc"
	"icbtc/internal/canister"
	"icbtc/internal/ic"
	"icbtc/internal/ingest"
	"icbtc/internal/obs"
	"icbtc/internal/queryfleet"
	"icbtc/internal/simnet"
)

// Config parameterizes one differential run.
type Config struct {
	// Seed drives every random choice; a run is fully reproducible.
	Seed int64
	// Steps is how many workload iterations to execute.
	Steps int
	// Delta is δ (the canisters' stability threshold).
	Delta int64
	// Addresses is the size of the synthetic address population.
	Addresses int
	// SnapshotEvery, when > 0, snapshot/restores the overlay canister with
	// probability 1/SnapshotEvery per step: the canister is serialized,
	// decoded into a fresh instance that replaces it mid-run, and
	// re-encoding the restored instance must reproduce the snapshot bytes.
	// The replay oracle is never restarted, so every later query also
	// cross-checks the restore against a canister that lived through the
	// whole history in memory.
	SnapshotEvery int
	// FleetReplicas, when > 0, runs a read-replica query fleet against the
	// overlay canister's delta stream and differentially verifies replicas
	// held at random lags against recorded authoritative responses.
	FleetReplicas int
	// FleetMaxLag is the fleet's bounded-staleness limit in blocks.
	FleetMaxLag int64
	// HydrateEvery, when > 0, re-hydrates a random fleet replica from a
	// fresh snapshot with probability 1/HydrateEvery per step (fast-sync
	// mid-workload).
	HydrateEvery int
	// CertifyEvery, when > 0, threshold-signs one routed query every
	// CertifyEvery steps and verifies it via Subnet.VerifyCertified.
	CertifyEvery int
	// ServeLayers, when true, enables the fleet's serving layers (request
	// coalescing and the certified hot-response cache) and differentially
	// verifies them: a repeat at an unchanged stream generation must be
	// served from the cache byte-identical to a fresh execution, any
	// generation change must invalidate (the cache never serves across a
	// tip move), and a cache-served certified envelope must still verify
	// under the subnet key. Admission control stays off — a shed query has
	// no authoritative counterpart to differ against.
	ServeLayers bool
	// FrameFaults, when true, corrupts the fleet's delta stream with seeded
	// bit-flips, truncations, duplications, and drops (a private RNG, so the
	// workload sequence is identical with faults on or off) and enables the
	// fleet's auto-resync. Every corruption must be detected — the
	// per-failure-class counters in Stats are pinned nonzero by the test —
	// and every replica must keep answering byte-identical to the recorded
	// authoritative history at its frame, resyncs included.
	FrameFaults bool
	// LossyLink, when true, routes every payload through a seeded simnet
	// link with loss, duplication, and reordering (mildLossProfile) under a
	// stop-and-wait at-least-once resend protocol before any canister sees
	// it. The link's scheduler is private, so the payload sequence is
	// identical with the link on or off — a run's final state must be
	// byte-identical either way (TestDifferentialLossyLink checks exactly
	// that).
	LossyLink bool
	// Pipelined, when true, runs a third canister fed the same payloads
	// through ProcessPayloadPipelined with per-step randomized worker
	// counts (1..8, degenerating to the serial loop at 1) and prefetch
	// windows (1..8). After every step its full snapshot and its probe
	// responses must be byte-identical to the serial overlay canister's —
	// the pipeline-vs-serial-oracle guarantee, across reorgs, header
	// delays, and mid-run re-hydrations (the pipelined canister is also
	// restored from its own snapshot via RestoreSnapshotParallel at random
	// worker counts).
	Pipelined bool
}

// DefaultConfig returns a workload mix that exercises forks, conflicting
// spends, pagination, confirmation filters, mid-run snapshot/restores, and
// a lag-randomized query fleet within a small δ.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed: seed, Steps: 100, Delta: 6, Addresses: 10, SnapshotEvery: 5,
		FleetReplicas: 3, FleetMaxLag: 3, HydrateEvery: 9, CertifyEvery: 20,
		Pipelined: true, ServeLayers: true,
	}
}

// Stats summarizes a completed run.
type Stats struct {
	Steps            int
	BlocksMined      int
	Reorgs           int
	SplitReorgs      int
	Queries          int
	PagesWalked      int
	HeaderDelays     int
	SnapshotRestores int
	// SnapshotBytes is the size of the last snapshot taken.
	SnapshotBytes int
	// Lossy-link transport counters (zero when LossyLink is off). The test
	// asserts both are non-zero: a run whose degraded link never dropped or
	// duplicated anything proves nothing.
	LinkRetransmits int
	LinkStaleDrops  int
	// PipelinedChecks counts steps at which the pipelined canister's
	// snapshot and probe responses were verified byte-identical to the
	// serial overlay's; PipelinedRestores counts its mid-run parallel
	// snapshot re-hydrations; PipelinedWorkerSum accumulates the randomized
	// worker counts (coverage signal: both 1 and >1 must occur).
	PipelinedChecks    int
	PipelinedRestores  int
	PipelinedWorkerSum int
	PipelinedSerial    int // steps run with 1 worker (serial degeneration)
	// Fleet counters (zero when the fleet is disabled).
	FleetFrames        uint64 // frames published by the overlay canister
	FleetReplicaChecks int    // lagged-replica probe batches verified
	FleetLagSum        int64  // total frames of lag across verified checks
	FleetHydrations    int    // mid-run snapshot re-hydrations
	FleetForwardChecks int    // too-stale forwards verified against the authority
	FleetCertified     int    // certified responses verified under the subnet key
	// Serving-layer counters (zero when Config.ServeLayers is off).
	// Frame-stream corruption counters (zero when Config.FrameFaults is
	// off): detections by failure class, and the automatic re-hydrations
	// those detections triggered.
	FleetFrameCorrupt    uint64
	FleetFrameGaps       uint64
	FleetFrameDuplicates uint64
	FleetResyncs         uint64
	// Serving-layer counters (zero when Config.ServeLayers is off).
	FleetServeChecks   int    // same-generation cache-hit batches verified byte-identical
	FleetGenMisses     int    // cross-generation routes verified to bypass the cache
	FleetCertifiedHits int    // cache-served certified envelopes verified under the subnet key
	FleetCacheHits     uint64 // fleet-reported hot-cache hits over the run
	FleetCoalesced     uint64 // fleet-reported coalesced followers over the run
}

// Harness drives the two canisters.
type Harness struct {
	cfg    Config
	rng    *rand.Rand
	params *btc.Params

	overlay *canister.BitcoinCanister
	replay  *canister.BitcoinCanister
	// pipelined receives identical payloads through the parallel ingest
	// pipeline at randomized worker counts; nil when Config.Pipelined is
	// off. The serial overlay is its oracle.
	pipelined *canister.BitcoinCanister

	miner *forkMiner
	now   time.Time
	// link degrades the payload transport when Config.LossyLink is set.
	link *lossyLink
	// faultRng drives frame-stream corruption when Config.FrameFaults is
	// set; a private RNG so the workload draws are identical either way.
	faultRng *rand.Rand

	// addrs is the synthetic population queries and outputs draw from.
	addrs []popAddr
	// pool holds previously created outpoints across every branch; spends
	// sample it with replacement, so double spends and spends of outputs
	// created on losing branches occur naturally.
	pool []poolEntry
	// pending holds blocks whose headers were announced (via Next) one step
	// before their blocks are delivered, exercising header-only tree nodes.
	pending []*btc.Block

	// Query-fleet verification state (nil/empty when disabled).
	fleet *queryfleet.Fleet
	// probeHistory records, per stream frame seq, the authoritative
	// canister's canonical probe digests right after publishing that frame;
	// a replica whose state sits at frame s must reproduce history[s].
	probeHistory map[uint64][]probeDigest
	lastRecorded uint64
	// subnet supplies the threshold committee certified responses are
	// signed with and verified against; signer is its SignFunc, installed
	// on the fleet only for the queries checkCertification exercises (a
	// threshold signing round costs tens of milliseconds — signing every
	// probe would dominate the run).
	subnet *ic.Subnet
	signer queryfleet.SignFunc
	// lastServe remembers the request the previous serving-layer check
	// cached and the stream generation it was cached at, so the next check
	// can assert the entry is never served once the generation has moved.
	lastServe struct {
		ok   bool
		args canister.GetUTXOsArgs
		gen  uint64
	}

	stats Stats
}

// probeDigest is one probe's canonical response digest.
type probeDigest [32]byte

type popAddr struct {
	address string
	script  []byte
}

type poolEntry struct {
	op    btc.OutPoint
	value int64
}

// New creates a harness with both canisters at genesis.
func New(cfg Config) *Harness {
	params := btc.RegtestParams()
	mk := func(rp canister.ReadPath) *canister.BitcoinCanister {
		c := canister.DefaultConfig(btc.Regtest)
		c.StabilityThreshold = cfg.Delta
		c.ReadPath = rp
		return canister.New(c)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	h := &Harness{
		cfg:     cfg,
		rng:     rng,
		params:  params,
		overlay: mk(canister.ReadPathOverlay),
		replay:  mk(canister.ReadPathReplay),
		miner:   newForkMiner(params),
		now:     time.Unix(int64(params.GenesisHeader.Timestamp), 0).Add(time.Hour),
	}
	if cfg.Pipelined {
		h.pipelined = mk(canister.ReadPathOverlay)
	}
	if cfg.LossyLink {
		// An offset seed: the transport's RNG must not mirror the workload's.
		h.link = newLossyLink(cfg.Seed^0x10557, mildLossProfile())
	}
	if cfg.FrameFaults {
		h.faultRng = rand.New(rand.NewSource(cfg.Seed ^ 0xf4a17))
	}
	for i := 0; i < cfg.Addresses; i++ {
		var hash [20]byte
		rng.Read(hash[:])
		a := btc.NewP2PKHAddress(hash, params.Network)
		h.addrs = append(h.addrs, popAddr{address: a.String(), script: btc.PayToAddrScript(a)})
	}
	if cfg.FleetReplicas > 0 {
		h.setupFleet()
	}
	return h
}

// setupFleet hydrates the read-replica fleet from the (genesis) overlay
// canister and installs its delta-stream sink. The fleet runs in manual
// apply mode so the harness controls each replica's lag deterministically.
func (h *Harness) setupFleet() {
	fcfg := queryfleet.Config{
		Replicas:     h.cfg.FleetReplicas,
		MaxLagBlocks: h.cfg.FleetMaxLag,
		StalePolicy:  queryfleet.StaleForward,
		// Corrupted frames must heal by automatic re-hydration, not by the
		// harness failing the run — the run fails only if a corruption goes
		// UNdetected (the history check catches silently-applied garbage).
		AutoResync: h.cfg.FrameFaults,
	}
	if h.cfg.ServeLayers {
		// Coalescing and the hot-response cache sit in front of every routed
		// query, so the whole randomized workload runs against them; no
		// Budgets — admission shedding would replace answers the harness
		// must compare byte-for-byte against the authority.
		fcfg.Coalesce = true
		fcfg.CacheEntries = 128
	}
	if h.cfg.CertifyEvery > 0 {
		// A minimal committee-backed subnet supplies threshold signing and
		// the client-side VerifyCertified check.
		scfg := ic.DefaultConfig()
		scfg.N = 4
		scfg.Seed = h.cfg.Seed
		subnet, err := ic.NewSubnet(simnet.NewScheduler(h.cfg.Seed), scfg)
		if err != nil {
			panic(fmt.Sprintf("difftest: subnet for certification: %v", err))
		}
		h.subnet = subnet
		h.signer = queryfleet.CommitteeSigner(subnet.Committee())
	}
	fleet, err := queryfleet.New(authorityProxy{h}, fcfg)
	if err != nil {
		panic(fmt.Sprintf("difftest: fleet: %v", err))
	}
	h.fleet = fleet
	if h.cfg.FrameFaults {
		fleet.SetFrameFault(func(replica int, seq uint64, raw []byte) [][]byte {
			// One RNG draw per (replica, frame) delivery keeps the fault
			// sequence deterministic for a given seed.
			if h.faultRng.Float64() >= 0.15 {
				return [][]byte{raw}
			}
			switch h.faultRng.Intn(4) {
			case 0: // bit-flip
				cp := append([]byte(nil), raw...)
				cp[h.faultRng.Intn(len(cp))] ^= 1 << uint(h.faultRng.Intn(8))
				return [][]byte{cp}
			case 1: // truncate
				return [][]byte{raw[:len(raw)/2]}
			case 2: // duplicate
				return [][]byte{raw, raw}
			default: // drop
				return nil
			}
		})
	}
	h.probeHistory = make(map[uint64][]probeDigest)
	h.overlay.SetStreamSink(fleet.Feed)
	// Seed the history for the hydration state (frame 0 = genesis).
	h.probeHistory[0] = h.probeDigests(h.overlay)
}

// authorityProxy routes the fleet's authority access through the harness,
// so snapshot restarts that swap the overlay canister instance mid-run are
// transparent to the fleet.
type authorityProxy struct{ h *Harness }

func (a authorityProxy) Snapshot() ([]byte, error) { return a.h.overlay.Snapshot() }
func (a authorityProxy) Query(ctx *ic.CallContext, method string, arg any) (any, error) {
	return a.h.overlay.Query(ctx, method, arg)
}
func (a authorityProxy) TipHeight() int64    { return a.h.overlay.TipHeight() }
func (a authorityProxy) AnchorHeight() int64 { return a.h.overlay.AnchorHeight() }

// Stats returns the run counters so far.
func (h *Harness) Stats() Stats { return h.stats }

// Run executes cfg.Steps workload iterations, stopping at the first
// divergence between the overlay and the oracle.
func (h *Harness) Run() (Stats, error) {
	for i := 0; i < h.cfg.Steps; i++ {
		if err := h.Step(); err != nil {
			return h.stats, fmt.Errorf("difftest: seed %d step %d: %w\nreproduce: go test ./internal/difftest -run TestDifferentialOverlayVsReplay -difftest.seed=%d",
				h.cfg.Seed, i, err, h.cfg.Seed)
		}
	}
	return h.stats, nil
}

// Step executes one workload iteration: deliver any deferred blocks, mutate
// the chain (extend or reorg), then cross-check a batch of queries.
func (h *Harness) Step() error {
	h.stats.Steps++
	if err := h.deliverPending(); err != nil {
		return err
	}

	switch {
	case h.rng.Intn(4) == 0 && h.forkDepthBudget() > 0:
		if err := h.reorg(); err != nil {
			return err
		}
	default:
		block, err := h.mineOnTip()
		if err != nil {
			return err
		}
		// One time in five, announce the header first and hold the block
		// back one step (the adapter's upcoming-headers flow), putting a
		// header-only node at the tip of the considered chain.
		if h.rng.Intn(5) == 0 {
			h.stats.HeaderDelays++
			h.pending = append(h.pending, block)
			if err := h.deliver(adapter.Response{Next: []btc.BlockHeader{block.Header}}); err != nil {
				return err
			}
		} else if err := h.deliverBlocks(block); err != nil {
			return err
		}
	}

	// Occasionally tear the overlay canister down to bytes and bring it
	// back mid-run — an upgrade/crash-recovery at a random point in the
	// workload. All later checks run against the restored instance.
	if h.cfg.SnapshotEvery > 0 && h.rng.Intn(h.cfg.SnapshotEvery) == 0 {
		if err := h.snapshotRestart(); err != nil {
			return err
		}
	}

	if err := h.checkStateAgreement(); err != nil {
		return err
	}
	if err := h.checkPipelined(); err != nil {
		return err
	}
	if err := h.checkQueries(); err != nil {
		return err
	}
	if h.fleet != nil {
		return h.fleetStep()
	}
	return nil
}

// checkPipelined asserts the pipelined canister is byte-identical to the
// serial overlay oracle: the full snapshot (state, counters, tree, deltas)
// and every probe response. One step in SnapshotEvery it is additionally
// torn down and restored through the sharded parallel decoder at a random
// worker count; re-encoding the restored instance must reproduce the
// snapshot bytes.
func (h *Harness) checkPipelined() error {
	if h.pipelined == nil {
		return nil
	}
	want, err := h.overlay.Snapshot()
	if err != nil {
		return fmt.Errorf("overlay snapshot: %w", err)
	}
	got, err := h.pipelined.Snapshot()
	if err != nil {
		return fmt.Errorf("pipelined snapshot: %w", err)
	}
	if !bytes.Equal(want, got) {
		return fmt.Errorf("pipelined ingest diverged from the serial oracle: snapshots differ (%d vs %d bytes)",
			len(got), len(want))
	}
	wantProbes := h.probeDigests(h.overlay)
	gotProbes := h.probeDigests(h.pipelined)
	for p := range wantProbes {
		if gotProbes[p] != wantProbes[p] {
			return fmt.Errorf("pipelined ingest diverged from the serial oracle at probe %d", p)
		}
	}
	if h.cfg.SnapshotEvery > 0 && h.rng.Intn(h.cfg.SnapshotEvery) == 0 {
		workers := 1 + h.rng.Intn(8)
		restored, err := canister.RestoreSnapshotParallel(got, ingest.Config{Workers: workers})
		if err != nil {
			return fmt.Errorf("pipelined parallel restore (workers=%d): %w", workers, err)
		}
		again, err := restored.Snapshot()
		if err != nil {
			return fmt.Errorf("pipelined re-snapshot: %w", err)
		}
		if !bytes.Equal(got, again) {
			return fmt.Errorf("parallel restore (workers=%d) not byte-stable: %d -> %d bytes", workers, len(got), len(again))
		}
		h.pipelined = restored
		h.stats.PipelinedRestores++
	}
	h.stats.PipelinedChecks++
	return nil
}

// snapshotRestart replaces the overlay canister with one restored from its
// own snapshot, first asserting the codec's determinism: re-encoding the
// restored canister must reproduce the snapshot byte for byte.
func (h *Harness) snapshotRestart() error {
	snap, err := h.overlay.Snapshot()
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	restored, err := canister.RestoreSnapshot(snap)
	if err != nil {
		return fmt.Errorf("restore: %w", err)
	}
	again, err := restored.Snapshot()
	if err != nil {
		return fmt.Errorf("re-snapshot: %w", err)
	}
	if !bytes.Equal(snap, again) {
		return fmt.Errorf("snapshot non-deterministic: re-encoding a restored canister changed %d -> %d bytes",
			len(snap), len(again))
	}
	h.overlay = restored
	if h.fleet != nil {
		// The restored instance must keep publishing the delta stream; its
		// state is byte-identical, so replicas hydrated or fed from the old
		// instance continue seamlessly.
		h.overlay.SetStreamSink(h.fleet.Feed)
	}
	h.stats.SnapshotRestores++
	h.stats.SnapshotBytes = len(snap)
	return nil
}

// deliverPending ships blocks whose headers went out last step.
func (h *Harness) deliverPending() error {
	if len(h.pending) == 0 {
		return nil
	}
	blocks := h.pending
	h.pending = nil
	return h.deliverBlocks(blocks...)
}

// forkDepthBudget returns the deepest admissible fork point distance from
// the tip: at most δ−1 and never below the anchor.
func (h *Harness) forkDepthBudget() int64 {
	budget := h.overlay.TipHeight() - h.overlay.AnchorHeight()
	if max := h.cfg.Delta - 1; budget > max {
		budget = max
	}
	return budget
}

// reorg mines a heavier competing branch from up to δ−1 blocks below the
// tip and delivers it; the canisters must switch their current chain to it.
func (h *Harness) reorg() error {
	h.stats.Reorgs++
	depth := 1 + h.rng.Int63n(h.forkDepthBudget())
	base := h.tipHash()
	for i := int64(0); i < depth; i++ {
		base = h.miner.parentOf(base)
	}
	// depth+1 blocks strictly outweigh the displaced suffix (equal bits).
	blocks := make([]*btc.Block, 0, depth+1)
	parent := base
	for i := int64(0); i <= depth; i++ {
		b, err := h.miner.mine(parent, h.randomTxs())
		if err != nil {
			return err
		}
		h.recordOutputs(b)
		blocks = append(blocks, b)
		parent = b.BlockHash()
		h.now = h.now.Add(time.Minute)
	}
	h.stats.BlocksMined += len(blocks)
	// With a fleet attached, half the reorgs arrive one block per payload:
	// each delivery publishes its own frame, so replicas can be held
	// mid-reorg — on a state where the heavier branch is only partially
	// known — and must still answer exactly as the authoritative canister
	// did at that frame.
	if h.fleet != nil && h.rng.Intn(2) == 0 {
		h.stats.SplitReorgs++
		for _, b := range blocks {
			if err := h.deliverBlocks(b); err != nil {
				return err
			}
		}
		return nil
	}
	return h.deliverBlocks(blocks...)
}

// mineOnTip extends the current chain by one block of random transactions.
func (h *Harness) mineOnTip() (*btc.Block, error) {
	block, err := h.miner.mine(h.tipHash(), h.randomTxs())
	if err != nil {
		return nil, err
	}
	h.recordOutputs(block)
	h.stats.BlocksMined++
	h.now = h.now.Add(time.Minute)
	return block, nil
}

// tipHash asks the canister for its current tip (both canisters run the
// same state machine, so either would do; state agreement is checked after
// every step).
func (h *Harness) tipHash() btc.Hash {
	v, err := h.overlay.Update(h.ctx(ic.KindUpdate), "get_tip", nil)
	if err != nil {
		panic(err) // get_tip cannot fail
	}
	return v.(btc.Hash)
}

// randomTxs builds 0..4 transactions: spends sampled (with replacement)
// from every output ever created on any branch, occasional alien inputs the
// canister never tracked, and 1..3 outputs paying population addresses.
// One block in eight additionally carries a burst transaction paying tens
// of outputs to a single address, so stable buckets grow deep enough that
// paginated queries resume mid-bucket (exercising the ordered index's
// cursor binary search, not just first pages).
func (h *Harness) randomTxs() []*btc.Transaction {
	txs := make([]*btc.Transaction, 0, 5)
	for n := h.rng.Intn(5); n > 0; n-- {
		tx := &btc.Transaction{Version: 2}
		switch {
		case len(h.pool) > 0 && h.rng.Intn(10) < 7:
			for k := 1 + h.rng.Intn(2); k > 0 && len(h.pool) > 0; k-- {
				e := h.pool[h.rng.Intn(len(h.pool))]
				tx.Inputs = append(tx.Inputs, btc.TxIn{PreviousOutPoint: e.op, Sequence: 0xffffffff})
			}
		default:
			// Alien input: value entering the tracked set from outside, or
			// plain garbage — the canister trusts proof of work, not spends.
			var fake btc.OutPoint
			h.rng.Read(fake.TxID[:])
			tx.Inputs = append(tx.Inputs, btc.TxIn{PreviousOutPoint: fake, Sequence: 0xffffffff})
		}
		for k := 1 + h.rng.Intn(3); k > 0; k-- {
			addr := h.addrs[h.rng.Intn(len(h.addrs))]
			tx.Outputs = append(tx.Outputs, btc.TxOut{
				Value:    500 + int64(h.rng.Intn(10_000)),
				PkScript: addr.script,
			})
		}
		txs = append(txs, tx)
	}
	if h.rng.Intn(8) == 0 {
		burst := &btc.Transaction{Version: 2}
		var fake btc.OutPoint
		h.rng.Read(fake.TxID[:])
		burst.Inputs = append(burst.Inputs, btc.TxIn{PreviousOutPoint: fake, Sequence: 0xffffffff})
		addr := h.addrs[h.rng.Intn(len(h.addrs))]
		for k := 20 + h.rng.Intn(21); k > 0; k-- {
			burst.Outputs = append(burst.Outputs, btc.TxOut{
				Value:    400 + int64(h.rng.Intn(5_000)),
				PkScript: addr.script,
			})
		}
		txs = append(txs, burst)
	}
	return txs
}

// recordOutputs adds a block's outputs to the spend-candidate pool.
func (h *Harness) recordOutputs(block *btc.Block) {
	for _, tx := range block.Transactions {
		txid := tx.TxID()
		for vout := range tx.Outputs {
			h.pool = append(h.pool, poolEntry{
				op:    btc.OutPoint{TxID: txid, Vout: uint32(vout)},
				value: tx.Outputs[vout].Value,
			})
		}
	}
	if len(h.pool) > 600 {
		h.pool = h.pool[len(h.pool)-600:]
	}
}

// deliverBlocks ships blocks (parent-first) to both canisters.
func (h *Harness) deliverBlocks(blocks ...*btc.Block) error {
	resp := adapter.Response{}
	for _, b := range blocks {
		resp.Blocks = append(resp.Blocks, adapter.BlockWithHeader{Block: b, Header: b.Header})
	}
	return h.deliver(resp)
}

// deliver processes one payload on every canister with identical contexts,
// then records the authoritative probe answers for any frame the payload
// published — the per-frame history lagged replicas are verified against.
// The pipelined canister receives the payload through the parallel ingest
// pipeline at a per-payload randomized worker count and prefetch window.
func (h *Harness) deliver(resp adapter.Response) error {
	if h.link != nil {
		got, err := h.link.transmit(resp)
		if err != nil {
			return err
		}
		resp = got
		h.stats.LinkRetransmits = h.link.retransmits
		h.stats.LinkStaleDrops = h.link.staleDrops
	}
	if err := h.overlay.ProcessPayload(h.ctx(ic.KindUpdate), resp); err != nil {
		return fmt.Errorf("overlay payload: %w", err)
	}
	if err := h.replay.ProcessPayload(h.ctx(ic.KindUpdate), resp); err != nil {
		return fmt.Errorf("replay payload: %w", err)
	}
	if h.pipelined != nil {
		cfg := ingest.Config{Workers: 1 + h.rng.Intn(8), Window: 1 + h.rng.Intn(8)}
		h.stats.PipelinedWorkerSum += cfg.Workers
		if cfg.Workers == 1 {
			h.stats.PipelinedSerial++
		}
		if err := h.pipelined.ProcessPayloadPipelined(h.ctx(ic.KindUpdate), resp, cfg); err != nil {
			return fmt.Errorf("pipelined payload (workers=%d window=%d): %w", cfg.Workers, cfg.Window, err)
		}
	}
	if h.fleet != nil {
		if seq := h.fleet.LastSeq(); seq > h.lastRecorded {
			h.probeHistory[seq] = h.probeDigests(h.overlay)
			h.lastRecorded = seq
		}
	}
	return nil
}

func (h *Harness) ctx(kind ic.CallKind) *ic.CallContext {
	return &ic.CallContext{Meter: ic.NewMeter(), Time: h.now, Kind: kind}
}

// checkStateAgreement asserts the two state machines stayed identical (the
// read path must not influence consensus state).
func (h *Harness) checkStateAgreement() error {
	type probe struct {
		name string
		a, b int64
	}
	for _, p := range []probe{
		{"tip height", h.overlay.TipHeight(), h.replay.TipHeight()},
		{"anchor height", h.overlay.AnchorHeight(), h.replay.AnchorHeight()},
		{"stable UTXOs", int64(h.overlay.StableUTXOCount()), int64(h.replay.StableUTXOCount())},
		{"unstable blocks", int64(h.overlay.UnstableBlockCount()), int64(h.replay.UnstableBlockCount())},
	} {
		if p.a != p.b {
			return fmt.Errorf("state divergence: %s overlay=%d replay=%d", p.name, p.a, p.b)
		}
	}
	return nil
}

// checkQueries cross-checks a batch of balance and paginated UTXO queries,
// including a deliberately out-of-range confirmations filter.
func (h *Harness) checkQueries() error {
	confChoices := []int64{0, 1, h.cfg.Delta / 2, h.cfg.Delta, h.cfg.Delta + 1}
	for q := 0; q < 4; q++ {
		addr := h.addrs[h.rng.Intn(len(h.addrs))].address
		if h.rng.Intn(12) == 0 {
			addr = "unknown-address"
		}
		minConf := confChoices[h.rng.Intn(len(confChoices))]
		if err := h.compareBalance(addr, minConf); err != nil {
			return err
		}
		if err := h.compareUTXOPages(addr, minConf, 1+h.rng.Intn(7)); err != nil {
			return err
		}
	}
	if err := h.compareFeePercentiles(); err != nil {
		return err
	}
	return h.compareHeaders()
}

// compareFeePercentiles cross-checks get_current_fee_percentiles: the
// overlay's per-tip cached path against the replay oracle that rescans
// every unstable block on every call — twice, so the second overlay answer
// comes from the cache.
func (h *Harness) compareFeePercentiles() error {
	for round := 0; round < 2; round++ {
		h.stats.Queries++
		a, errA := h.overlay.GetCurrentFeePercentiles(h.ctx(ic.KindQuery))
		b, errB := h.replay.GetCurrentFeePercentiles(h.ctx(ic.KindQuery))
		if err := sameError(errA, errB); err != nil {
			return fmt.Errorf("get_current_fee_percentiles round %d: %w", round, err)
		}
		if errA != nil {
			return nil
		}
		if ic.ResponseDigest(a, nil) != ic.ResponseDigest(b, nil) {
			return fmt.Errorf("get_current_fee_percentiles round %d: overlay %v != replay %v", round, a, b)
		}
	}
	return nil
}

// compareHeaders cross-checks get_block_headers over the full range and a
// random sub-range spanning the anchor boundary.
func (h *Harness) compareHeaders() error {
	ranges := []canister.GetBlockHeadersArgs{{}}
	if tip := h.overlay.TipHeight(); tip > 1 {
		start := h.rng.Int63n(tip)
		ranges = append(ranges, canister.GetBlockHeadersArgs{
			StartHeight: start,
			EndHeight:   start + h.rng.Int63n(tip-start+1),
		})
	}
	for _, args := range ranges {
		h.stats.Queries++
		a, errA := h.overlay.GetBlockHeaders(h.ctx(ic.KindQuery), args)
		b, errB := h.replay.GetBlockHeaders(h.ctx(ic.KindQuery), args)
		if err := sameError(errA, errB); err != nil {
			return fmt.Errorf("get_block_headers(%+v): %w", args, err)
		}
		if errA != nil {
			continue
		}
		if ic.ResponseDigest(a, nil) != ic.ResponseDigest(b, nil) {
			return fmt.Errorf("get_block_headers(%+v): overlay and replay diverged", args)
		}
	}
	return nil
}

func (h *Harness) compareBalance(addr string, minConf int64) error {
	h.stats.Queries++
	args := canister.GetBalanceArgs{Address: addr, MinConfirmations: minConf}
	a, errA := h.overlay.GetBalance(h.ctx(ic.KindQuery), args)
	b, errB := h.replay.GetBalance(h.ctx(ic.KindQuery), args)
	if err := sameError(errA, errB); err != nil {
		return fmt.Errorf("get_balance(%s, c=%d): %w", addr, minConf, err)
	}
	if errA == nil && a != b {
		return fmt.Errorf("get_balance(%s, c=%d): overlay=%d replay=%d", addr, minConf, a, b)
	}
	// A repeated query must hit the overlay's balance cache and agree.
	a2, err := h.overlay.GetBalance(h.ctx(ic.KindQuery), args)
	if errA == nil && (err != nil || a2 != a) {
		return fmt.Errorf("get_balance(%s, c=%d): cache answered %d/%v, first answer %d", addr, minConf, a2, err, a)
	}
	return nil
}

func (h *Harness) compareUTXOPages(addr string, minConf int64, limit int) error {
	var tokA, tokB []byte
	for page := 0; ; page++ {
		if page > 400 {
			return fmt.Errorf("get_utxos(%s, c=%d): pagination did not terminate", addr, minConf)
		}
		h.stats.Queries++
		h.stats.PagesWalked++
		resA, errA := h.overlay.GetUTXOs(h.ctx(ic.KindQuery), canister.GetUTXOsArgs{
			Address: addr, MinConfirmations: minConf, Page: tokA, Limit: limit,
		})
		resB, errB := h.replay.GetUTXOs(h.ctx(ic.KindQuery), canister.GetUTXOsArgs{
			Address: addr, MinConfirmations: minConf, Page: tokB, Limit: limit,
		})
		if err := sameError(errA, errB); err != nil {
			return fmt.Errorf("get_utxos(%s, c=%d) page %d: %w", addr, minConf, page, err)
		}
		if errA != nil {
			return nil // both rejected identically (e.g. c > δ)
		}
		ba, bb := EncodeUTXOsResult(resA), EncodeUTXOsResult(resB)
		if !bytes.Equal(ba, bb) {
			return fmt.Errorf("get_utxos(%s, c=%d) page %d: overlay %x != replay %x", addr, minConf, page, ba, bb)
		}
		if resA.NextPage == nil {
			return nil
		}
		tokA, tokB = resA.NextPage, resB.NextPage
	}
}

func sameError(a, b error) error {
	switch {
	case a == nil && b == nil:
		return nil
	case a == nil || b == nil:
		return fmt.Errorf("error divergence: overlay=%v replay=%v", a, b)
	case a.Error() != b.Error():
		return fmt.Errorf("error divergence: overlay=%q replay=%q", a, b)
	}
	return nil
}

// probeSpec is one entry of the fixed probe set: a registry method name
// plus its argument. Expressing probes by name keeps the set checkable
// against the canister's method registry — TestProbesCoverRegistryQuery
// asserts every read-only registry method is probed.
type probeSpec struct {
	method string
	arg    any
}

// probeSpecs returns the fixed probe set. It covers every read endpoint in
// the registry: balances (filtered and unfiltered, known and unknown
// addresses), a paginated UTXO page, the fee percentiles, the full header
// range, the health summary (chain-derived apart from the adapter's
// always-zero-in-this-harness self-report), and the exact tip hash.
func (h *Harness) probeSpecs() []probeSpec {
	a0 := h.addrs[0].address
	a1 := h.addrs[1%len(h.addrs)].address
	return []probeSpec{
		{"get_balance", canister.GetBalanceArgs{Address: a0}},
		{"get_balance", canister.GetBalanceArgs{Address: a1}},
		{"get_balance", canister.GetBalanceArgs{Address: "unknown-address"}},
		{"get_balance", canister.GetBalanceArgs{Address: a0, MinConfirmations: h.cfg.Delta}},
		{"get_utxos", canister.GetUTXOsArgs{Address: a0, Limit: 5}},
		{"get_utxos", canister.GetUTXOsArgs{Address: a1, Limit: 5}},
		{"get_current_fee_percentiles", nil},
		{"get_block_headers", canister.GetBlockHeadersArgs{}},
		{"get_health", nil},
		{"get_metrics", nil},
		{"get_tip", nil},
	}
}

// probeDigests answers the fixed probe set on one canister — dispatched by
// method name through the registry, the same path fleet queries take — and
// returns the canonical digest of every response (value and error alike).
//
// get_metrics is the one probe whose raw response legitimately differs
// between equivalent canisters: request counters depend on how often each
// canister has been probed, and a hydrated replica's counters restart at its
// hydration point. Its digest is therefore restricted to the deterministic
// gauge subset — the chain-derived values every canister at the same frame
// must agree on.
func (h *Harness) probeDigests(c *canister.BitcoinCanister) []probeDigest {
	specs := h.probeSpecs()
	out := make([]probeDigest, 0, len(specs))
	for _, p := range specs {
		v, err := c.Query(ic.NewCallContext(ic.KindQuery, h.now), p.method, p.arg)
		if p.method == "get_metrics" && err == nil {
			v = deterministicMetricsView(v)
		}
		out = append(out, probeDigest(ic.ResponseDigest(v, err)))
	}
	return out
}

// deterministicMetricsView reduces a get_metrics response to the gauges in
// canister.DeterministicMetricGauges, in that list's (sorted) order.
func deterministicMetricsView(v any) any {
	res, ok := v.(*canister.MetricsResult)
	if !ok {
		return v
	}
	snap, err := obs.DecodeSnapshot(res.Encoded)
	if err != nil {
		return fmt.Sprintf("difftest: undecodable metrics snapshot: %v", err)
	}
	byName := make(map[string]int64, len(snap.Gauges))
	for _, g := range snap.Gauges {
		byName[g.Name] = g.Value
	}
	view := make([]obs.GaugePoint, 0, len(canister.DeterministicMetricGauges))
	for _, name := range canister.DeterministicMetricGauges {
		view = append(view, obs.GaugePoint{Name: name, Value: byName[name]})
	}
	return view
}

// OverlaySnapshot exposes the overlay canister's snapshot bytes, so tests
// can compare final states across harness configurations (the lossy-link
// byte-identity check).
func (h *Harness) OverlaySnapshot() ([]byte, error) { return h.overlay.Snapshot() }

// fleetStep advances each replica by a random number of frames (sometimes
// none, sometimes a snapshot re-hydration) and verifies its answers against
// the recorded authoritative history at its exact frame; then spot-checks
// the routing policies (forwarding beyond the staleness bound, response
// certification).
func (h *Harness) fleetStep() error {
	// Frames a replica may fall behind before the harness force-applies;
	// bounds the probe history the run retains.
	const maxPendingFrames = 10
	for i := 0; i < h.fleet.Replicas(); i++ {
		r := h.fleet.Replica(i)
		if h.cfg.HydrateEvery > 0 && h.rng.Intn(h.cfg.HydrateEvery) == 0 {
			// Fast-sync mid-workload: the replica jumps to the newest state
			// without replaying its queued frames.
			if err := h.fleet.HydrateReplica(i); err != nil {
				return err
			}
			h.stats.FleetHydrations++
		} else {
			pending := r.Pending()
			apply := h.rng.Intn(pending + 1)
			if keep := pending - apply; keep > maxPendingFrames {
				apply = pending - maxPendingFrames
			}
			if _, err := r.ApplyPending(apply); err != nil {
				return err
			}
		}
		if err := h.checkReplicaAgainstHistory(i, r); err != nil {
			return err
		}
	}
	h.pruneHistory()
	if err := h.checkStaleForwarding(); err != nil {
		return err
	}
	// Every seventh step (not every step: the check catches all replicas
	// up, and doing so each step would collapse the random lag distribution
	// the history checks exist for) the serving layers are verified.
	if h.cfg.ServeLayers && h.stats.Steps%7 == 0 {
		if err := h.checkServingLayers(); err != nil {
			return err
		}
	}
	if h.cfg.CertifyEvery > 0 && h.stats.Steps%h.cfg.CertifyEvery == 0 {
		if err := h.checkCertification(); err != nil {
			return err
		}
	}
	fs := h.fleet.Stats()
	h.stats.FleetFrames = fs.Frames
	h.stats.FleetCacheHits = fs.CacheHits
	h.stats.FleetCoalesced = fs.Coalesced
	h.stats.FleetFrameCorrupt = fs.FrameCorrupt
	h.stats.FleetFrameGaps = fs.FrameGaps
	h.stats.FleetFrameDuplicates = fs.FrameDuplicates
	h.stats.FleetResyncs = fs.Resyncs
	return nil
}

// checkServingLayers differentially verifies the fleet's serving layers.
// Cross-generation first: the request the previous check cached must not be
// served from the cache once any frame has moved the stream generation —
// the "never serve across a tip change" contract. Then same-generation:
// with every replica caught up (so the fill provably belongs to the current
// generation) a repeated get_utxos must be served from the cache and be
// byte-identical to both its first execution and a fresh authoritative one.
// Finally a concurrent burst of identical balance queries — whatever mix of
// coalesced followers, cache hits, and executions it resolves to — must fan
// out the one authoritative answer.
func (h *Harness) checkServingLayers() error {
	if h.lastServe.ok && h.fleet.LastSeq() != h.lastServe.gen {
		hits := h.fleet.Stats().CacheHits
		rq := h.fleet.RouteQuery("get_utxos", h.lastServe.args, "difftest", h.now)
		if got := h.fleet.Stats().CacheHits; got != hits {
			return fmt.Errorf("cache served across a generation change (%d -> %d)",
				h.lastServe.gen, h.fleet.LastSeq())
		}
		if rq.Err != nil {
			return fmt.Errorf("cross-generation get_utxos: %w", rq.Err)
		}
		h.stats.FleetGenMisses++
	}
	if err := h.fleet.CatchUpAll(); err != nil {
		return err
	}
	addr := h.addrs[h.rng.Intn(len(h.addrs))].address
	args := canister.GetUTXOsArgs{Address: addr, Limit: 4}
	first := h.fleet.RouteQuery("get_utxos", args, "difftest", h.now)
	if first.Err != nil {
		return fmt.Errorf("serve-layers get_utxos(%s): %w", addr, first.Err)
	}
	hits := h.fleet.Stats().CacheHits
	second := h.fleet.RouteQuery("get_utxos", args, "difftest", h.now)
	if got := h.fleet.Stats().CacheHits; got != hits+1 {
		return fmt.Errorf("repeat get_utxos(%s) at an unchanged generation not served from the cache (hits %d -> %d)",
			addr, hits, got)
	}
	auth, authErr := h.overlay.GetUTXOs(h.ctx(ic.KindQuery), args)
	d := ic.ResponseDigest(second.Value, second.Err)
	if d != ic.ResponseDigest(first.Value, first.Err) {
		return fmt.Errorf("cached get_utxos(%s) differs from its first execution", addr)
	}
	if d != ic.ResponseDigest(auth, authErr) {
		return fmt.Errorf("cached get_utxos(%s) differs from a fresh authoritative execution", addr)
	}
	h.lastServe.ok = true
	h.lastServe.args = args
	h.lastServe.gen = h.fleet.LastSeq()

	bargs := canister.GetBalanceArgs{Address: addr}
	want, wantErr := h.overlay.GetBalance(h.ctx(ic.KindQuery), bargs)
	const burst = 4
	results := make(chan ic.RoutedQuery, burst)
	for i := 0; i < burst; i++ {
		go func() { results <- h.fleet.RouteQuery("get_balance", bargs, "difftest", h.now) }()
	}
	for i := 0; i < burst; i++ {
		rq := <-results
		if err := sameError(rq.Err, wantErr); err != nil {
			return fmt.Errorf("burst get_balance(%s): %w", addr, err)
		}
		if rq.Err == nil && ic.ResponseDigest(rq.Value, nil) != ic.ResponseDigest(want, nil) {
			return fmt.Errorf("burst get_balance(%s) diverged from the authoritative answer", addr)
		}
	}
	h.stats.FleetServeChecks++
	return nil
}

// checkReplicaAgainstHistory requires the replica's probe answers to be
// byte-identical to what the authoritative canister answered at the
// replica's exact frame — whatever its lag, including mid-reorg states and
// states reached by snapshot hydration.
func (h *Harness) checkReplicaAgainstHistory(i int, r *queryfleet.Replica) error {
	seq := r.Seq()
	want, ok := h.probeHistory[seq]
	if !ok {
		return fmt.Errorf("fleet replica %d sits at frame %d with no recorded history", i, seq)
	}
	got := h.probeDigests(r.Canister())
	if len(got) != len(want) {
		return fmt.Errorf("fleet replica %d: %d probes, history has %d", i, len(got), len(want))
	}
	for p := range got {
		if got[p] != want[p] {
			return fmt.Errorf("fleet replica %d at frame %d (lag %d): probe %d diverged from the authoritative response",
				i, seq, h.lastRecorded-seq, p)
		}
	}
	h.stats.FleetReplicaChecks++
	h.stats.FleetLagSum += int64(h.lastRecorded - seq)
	return nil
}

// pruneHistory drops probe records no replica can reach anymore.
func (h *Harness) pruneHistory() {
	min := h.lastRecorded
	for i := 0; i < h.fleet.Replicas(); i++ {
		if s := h.fleet.Replica(i).Seq(); s < min {
			min = s
		}
	}
	for seq := range h.probeHistory {
		if seq < min {
			delete(h.probeHistory, seq)
		}
	}
}

// checkStaleForwarding routes one query through the fleet's policy layer:
// when the round-robin replica exceeds the staleness bound the query must
// come back marked Forwarded and carry the *current* authoritative answer.
func (h *Harness) checkStaleForwarding() error {
	addr := h.addrs[h.rng.Intn(len(h.addrs))].address
	args := canister.GetBalanceArgs{Address: addr}
	rq := h.fleet.RouteQuery("get_balance", args, "difftest", h.now)
	if !rq.Forwarded {
		return nil // served by a within-bound replica; covered by history checks
	}
	auth, err := h.overlay.GetBalance(h.ctx(ic.KindQuery), args)
	if serr := sameError(rq.Err, err); serr != nil {
		return fmt.Errorf("forwarded get_balance(%s): %w", addr, serr)
	}
	if rq.Err == nil && rq.Value.(int64) != auth {
		return fmt.Errorf("forwarded get_balance(%s) = %d, authoritative %d", addr, rq.Value, auth)
	}
	if rq.TipHeight != h.overlay.TipHeight() {
		return fmt.Errorf("forwarded response bound to tip %d, authoritative at %d", rq.TipHeight, h.overlay.TipHeight())
	}
	h.stats.FleetForwardChecks++
	return nil
}

// checkCertification verifies one routed response's threshold signature the
// way a client would — via Subnet.VerifyCertified over the rebuilt
// CertifiedQuery envelope — and that tampering breaks it.
func (h *Harness) checkCertification() error {
	addr := h.addrs[h.rng.Intn(len(h.addrs))].address
	args := canister.GetUTXOsArgs{Address: addr, Limit: 3}
	h.fleet.SetSigner(h.signer)
	defer h.fleet.SetSigner(nil)
	if h.cfg.ServeLayers {
		// Catch the replicas up so the signed response is served at — and
		// therefore cached under — the current stream generation, making the
		// repeat below provably a cache hit.
		if err := h.fleet.CatchUpAll(); err != nil {
			return err
		}
	}
	rq := h.fleet.RouteQuery("get_utxos", args, "difftest", h.now)
	if rq.Signature == nil {
		return fmt.Errorf("fleet returned an uncertified response with signing enabled")
	}
	env := ic.CertifiedQuery{
		Method:       "get_utxos",
		Value:        rq.Value,
		ErrText:      ic.ErrText(rq.Err),
		AnchorHeight: rq.AnchorHeight,
		TipHeight:    rq.TipHeight,
	}
	if !h.subnet.VerifyCertified(env, nil, rq.Signature) {
		return fmt.Errorf("certified get_utxos(%s) did not verify under the subnet key", addr)
	}
	env.TipHeight++
	if h.subnet.VerifyCertified(env, nil, rq.Signature) {
		return fmt.Errorf("certification verified after tampering with the bound tip height")
	}
	h.stats.FleetCertified++
	if !h.cfg.ServeLayers {
		return nil
	}
	// The repeat must come out of the hot cache carrying the *same*
	// threshold signature bytes, and that cache-served envelope must verify
	// under the subnet key exactly as the fresh one did.
	hits := h.fleet.Stats().CacheHits
	hit := h.fleet.RouteQuery("get_utxos", args, "difftest", h.now)
	if got := h.fleet.Stats().CacheHits; got != hits+1 {
		return fmt.Errorf("signed repeat get_utxos(%s) not served from the hot cache (hits %d -> %d)", addr, hits, got)
	}
	if !bytes.Equal(hit.Signature, rq.Signature) {
		return fmt.Errorf("cache-served get_utxos(%s) carries different signature bytes", addr)
	}
	henv := ic.CertifiedQuery{
		Method:       "get_utxos",
		Value:        hit.Value,
		ErrText:      ic.ErrText(hit.Err),
		AnchorHeight: hit.AnchorHeight,
		TipHeight:    hit.TipHeight,
	}
	if !h.subnet.VerifyCertified(henv, nil, hit.Signature) {
		return fmt.Errorf("cache-served certified get_utxos(%s) did not verify under the subnet key", addr)
	}
	h.stats.FleetCertifiedHits++
	return nil
}

// EncodeUTXOsResult serializes a get_utxos response deterministically so
// responses can be compared byte for byte.
func EncodeUTXOsResult(res *canister.GetUTXOsResult) []byte {
	var buf bytes.Buffer
	w := func(v any) { _ = binary.Write(&buf, binary.BigEndian, v) }
	buf.Write(res.TipHash[:])
	w(res.TipHeight)
	w(int64(res.StableCount))
	w(int64(res.UnstableCount))
	w(int64(len(res.NextPage)))
	buf.Write(res.NextPage)
	w(int64(len(res.UTXOs)))
	for _, u := range res.UTXOs {
		buf.Write(u.OutPoint.TxID[:])
		w(u.OutPoint.Vout)
		w(u.Value)
		w(u.Height)
		w(int64(len(u.PkScript)))
		buf.Write(u.PkScript)
	}
	return buf.Bytes()
}
