package difftest

import (
	"errors"
	"fmt"

	"icbtc/internal/btc"
)

// forkMiner mines valid blocks (real PoW at simulation targets, correct
// Merkle roots, MTP-respecting timestamps) on top of ANY previously mined
// block, not just the best tip — the capability the harness needs to build
// competing branches. Unlike btcnode's miner it performs no transaction
// validation at all, so workloads can include double spends, alien inputs,
// and spends of outputs created on losing branches.
type forkMiner struct {
	params *btc.Params
	byHash map[btc.Hash]*minedHeader
	extra  uint64
}

type minedHeader struct {
	header   btc.BlockHeader
	height   int64
	parent   btc.Hash
	tsWindow []uint32
}

func newForkMiner(params *btc.Params) *forkMiner {
	genesis := params.GenesisHeader
	m := &forkMiner{params: params, byHash: make(map[btc.Hash]*minedHeader)}
	m.byHash[genesis.BlockHash()] = &minedHeader{
		header:   genesis,
		tsWindow: []uint32{genesis.Timestamp},
	}
	return m
}

// parentOf returns the parent hash of a previously mined block.
func (m *forkMiner) parentOf(h btc.Hash) btc.Hash {
	mh := m.byHash[h]
	if mh == nil {
		panic(fmt.Sprintf("difftest: unknown block %s", h))
	}
	return mh.parent
}

// mine assembles and grinds one block on the given parent: a unique
// coinbase plus the given transactions, timestamped just past the parent's
// median time past.
func (m *forkMiner) mine(parent btc.Hash, txs []*btc.Transaction) (*btc.Block, error) {
	p := m.byHash[parent]
	if p == nil {
		return nil, fmt.Errorf("difftest: mining on unknown parent %s", parent)
	}
	m.extra++
	height := p.height + 1
	coinbase := &btc.Transaction{
		Version: 2,
		Inputs: []btc.TxIn{{
			PreviousOutPoint: btc.OutPoint{TxID: btc.ZeroHash, Vout: 0xffffffff},
			SignatureScript: []byte{
				byte(height), byte(height >> 8), byte(height >> 16), byte(height >> 24),
				byte(m.extra), byte(m.extra >> 8), byte(m.extra >> 16), byte(m.extra >> 24),
			},
		}},
		Outputs: []btc.TxOut{{Value: m.params.BlockSubsidy, PkScript: btc.PayToPubKeyHashScript([20]byte{0xD1, 0xFF})}},
	}
	block := &btc.Block{
		Header: btc.BlockHeader{
			Version:   1,
			PrevBlock: parent,
			Timestamp: btc.MedianTimePast(p.tsWindow) + 30,
			Bits:      p.header.Bits, // regtest never retargets
		},
		Transactions: append([]*btc.Transaction{coinbase}, txs...),
	}
	block.Header.MerkleRoot = block.MerkleRoot()
	found := false
	for nonce := uint32(0); nonce < 1<<24; nonce++ {
		block.Header.Nonce = nonce
		if btc.HashMeetsTarget(block.BlockHash(), block.Header.Bits) {
			found = true
			break
		}
	}
	if !found {
		return nil, errors.New("difftest: proof-of-work search exhausted")
	}
	window := make([]uint32, 0, 11)
	if len(p.tsWindow) >= 11 {
		window = append(window, p.tsWindow[len(p.tsWindow)-10:]...)
	} else {
		window = append(window, p.tsWindow...)
	}
	window = append(window, block.Header.Timestamp)
	m.byHash[block.BlockHash()] = &minedHeader{
		header:   block.Header,
		height:   height,
		parent:   parent,
		tsWindow: window,
	}
	return block, nil
}
