package difftest

import (
	"fmt"
	"time"

	"icbtc/internal/adapter"
	"icbtc/internal/simnet"
)

// lossyLink ships every payload from a source to a sink endpoint over a
// seeded simnet link degraded by loss, duplication, and reordering (both
// directions — acks suffer too), with stop-and-wait at-least-once resend
// and receiver-side dedup. The link's scheduler is private to the
// transport: its RNG draws never entangle with the workload's, so the same
// workload seed produces the identical payload sequence with the link on
// or off — which is exactly what TestDifferentialLossyLink exploits to
// prove transport faults cannot change canister state.
type lossyLink struct {
	sched *simnet.Scheduler
	net   *simnet.Network

	// Sender: nextSeq numbers outgoing payloads, ackedThrough is the first
	// unacked seq (stop-and-wait keeps exactly one payload in flight).
	nextSeq      uint64
	ackedThrough uint64
	// Receiver: expect is the next in-order seq; delivered buffers payloads
	// released in order.
	expect    uint64
	delivered []adapter.Response

	retransmits int
	staleDrops  int
}

type payloadMsg struct {
	seq  uint64
	resp adapter.Response
}

type ackMsg struct{ seq uint64 }

const (
	linkSource simnet.NodeID = "difftest/source"
	linkSink   simnet.NodeID = "difftest/sink"
	// linkRTO is the retransmission timeout — several times the link's
	// round trip, so a retransmit means the network really dropped (or
	// badly delayed) the payload or its ack.
	linkRTO = 250 * time.Millisecond
)

// linkEnd adapts a func to simnet.Endpoint.
type linkEnd struct {
	fn func(from simnet.NodeID, msg any)
}

func (e linkEnd) Receive(from simnet.NodeID, msg any) { e.fn(from, msg) }

// mildLossProfile is the default transport degradation: enough loss,
// duplication, and reordering that a ~100-step run sees every fault class,
// while staying far from the harness's delivery timeout.
func mildLossProfile() *simnet.LinkProfile {
	return &simnet.LinkProfile{
		Latency:       simnet.LatencyModel{Base: 10 * time.Millisecond, Jitter: 15 * time.Millisecond},
		LossRate:      0.15,
		DuplicateRate: 0.10,
		ReorderRate:   0.20,
		ReorderDelay:  40 * time.Millisecond,
	}
}

func newLossyLink(seed int64, p *simnet.LinkProfile) *lossyLink {
	sched := simnet.NewScheduler(seed)
	l := &lossyLink{sched: sched, net: simnet.NewNetwork(sched)}
	l.net.Register(linkSource, linkEnd{l.onSource})
	l.net.Register(linkSink, linkEnd{l.onSink})
	l.net.SetLinkProfile(linkSource, linkSink, p)
	l.net.SetLinkProfile(linkSink, linkSource, p)
	return l
}

func (l *lossyLink) onSource(_ simnet.NodeID, msg any) {
	if m, ok := msg.(ackMsg); ok && m.seq+1 > l.ackedThrough {
		l.ackedThrough = m.seq + 1
	}
}

func (l *lossyLink) onSink(_ simnet.NodeID, msg any) {
	m, ok := msg.(payloadMsg)
	if !ok {
		return
	}
	switch {
	case m.seq == l.expect:
		l.delivered = append(l.delivered, m.resp)
		l.expect++
	case m.seq < l.expect:
		// A retransmit of something already delivered (the ack was lost or
		// late, or the link duplicated the payload): drop, but re-ack so the
		// sender can move on.
		l.staleDrops++
	default:
		// A future seq is impossible under stop-and-wait; not acking it
		// would surface the protocol bug as a delivery timeout.
		return
	}
	l.net.Send(linkSink, linkSource, ackMsg{seq: m.seq})
}

// transmit pushes one payload through the degraded link and returns the
// copy the sink released, erroring if the resend protocol cannot get it
// across within a generous virtual-time budget.
func (l *lossyLink) transmit(resp adapter.Response) (adapter.Response, error) {
	seq := l.nextSeq
	l.nextSeq++
	attempts := 0
	var send func()
	send = func() {
		if l.ackedThrough > seq {
			return
		}
		if attempts > 0 {
			l.retransmits++
		}
		attempts++
		l.net.Send(linkSource, linkSink, payloadMsg{seq: seq, resp: resp})
		l.sched.After(linkRTO, send)
	}
	send()
	for i := 0; l.ackedThrough <= seq; i++ {
		if i >= 400 {
			return adapter.Response{}, fmt.Errorf("lossy link: payload %d not delivered after %d virtual seconds (%d attempts)",
				seq, i/10, attempts)
		}
		l.sched.RunFor(100 * time.Millisecond)
	}
	if got := uint64(len(l.delivered)); got != seq+1 {
		return adapter.Response{}, fmt.Errorf("lossy link: %d payloads released after acking seq %d", got, seq)
	}
	out := l.delivered[seq]
	l.delivered[seq] = adapter.Response{} // release the buffered references
	return out, nil
}
