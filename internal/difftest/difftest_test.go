package difftest

import (
	"flag"
	"runtime"
	"testing"

	"icbtc/internal/canister"
)

// seedFlag replays a single failing seed — the one-liner every difftest
// failure message prints.
var seedFlag = flag.Int64("difftest.seed", 0, "run only this workload seed (0 = full battery)")

// TestDifferentialOverlayVsReplay runs the randomized differential workload
// across a battery of fixed seeds: ≥ 1000 workload iterations in total,
// every get_utxos page and get_balance answer byte-identical between the
// overlay read path and the naive-replay oracle — with the overlay canister
// torn down to a snapshot and restored at random points along the way.
func TestDifferentialOverlayVsReplay(t *testing.T) {
	seeds := []int64{1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233}
	if *seedFlag != 0 {
		seeds = []int64{*seedFlag}
	}
	var agg Stats
	for _, seed := range seeds {
		cfg := DefaultConfig(seed)
		h := New(cfg)
		stats, err := h.Run()
		if err != nil {
			t.Fatal(err)
		}
		agg.Steps += stats.Steps
		agg.SnapshotRestores += stats.SnapshotRestores
		agg.SplitReorgs += stats.SplitReorgs
		agg.FleetReplicaChecks += stats.FleetReplicaChecks
		agg.FleetLagSum += stats.FleetLagSum
		agg.FleetHydrations += stats.FleetHydrations
		agg.FleetForwardChecks += stats.FleetForwardChecks
		agg.FleetCertified += stats.FleetCertified
		agg.FleetServeChecks += stats.FleetServeChecks
		agg.FleetGenMisses += stats.FleetGenMisses
		agg.FleetCertifiedHits += stats.FleetCertifiedHits
		agg.FleetCacheHits += stats.FleetCacheHits
		agg.FleetCoalesced += stats.FleetCoalesced
		agg.PipelinedChecks += stats.PipelinedChecks
		agg.PipelinedRestores += stats.PipelinedRestores
		agg.PipelinedSerial += stats.PipelinedSerial
		agg.PipelinedWorkerSum += stats.PipelinedWorkerSum
		if stats.Reorgs == 0 {
			t.Errorf("seed %d: workload produced no reorgs", seed)
		}
		if stats.Queries == 0 || stats.BlocksMined == 0 {
			t.Errorf("seed %d: degenerate workload: %+v", seed, stats)
		}
		if stats.FleetFrames == 0 || stats.FleetReplicaChecks == 0 {
			t.Errorf("seed %d: fleet never exercised: %+v", seed, stats)
		}
	}
	if *seedFlag != 0 {
		// Single-seed replay mode exists to reproduce a failure, not to
		// re-prove the battery-wide coverage thresholds below.
		return
	}
	if agg.Steps < 1000 {
		t.Fatalf("only %d workload iterations, want >= 1000", agg.Steps)
	}
	if agg.SnapshotRestores < 100 {
		t.Fatalf("only %d snapshot/restores across the battery, want >= 100", agg.SnapshotRestores)
	}
	// The fleet dimension must have real coverage: replicas verified at
	// nonzero lags (mid-reorg states included via split reorgs), snapshot
	// re-hydrations mid-workload, stale queries forwarded, and certified
	// responses verified under the subnet key.
	if agg.FleetLagSum == 0 {
		t.Fatal("every fleet replica check ran at zero lag; staleness never exercised")
	}
	if agg.SplitReorgs == 0 {
		t.Fatal("no reorg was delivered frame by frame; mid-reorg replica states never exercised")
	}
	if agg.FleetHydrations < 10 {
		t.Fatalf("only %d mid-run replica re-hydrations, want >= 10", agg.FleetHydrations)
	}
	if agg.FleetForwardChecks == 0 {
		t.Fatal("no too-stale query was forwarded to the authoritative canister")
	}
	if agg.FleetCertified < 10 {
		t.Fatalf("only %d certified responses verified, want >= 10", agg.FleetCertified)
	}
	// Serving-layer dimension: same-generation repeats served from the
	// certified hot cache byte-identical to fresh executions, generation
	// changes always invalidating, and cache-served certified envelopes
	// verifying under the subnet key.
	if agg.FleetServeChecks < 100 {
		t.Fatalf("only %d serving-layer check batches, want >= 100", agg.FleetServeChecks)
	}
	if agg.FleetGenMisses < 100 {
		t.Fatalf("only %d cross-generation invalidation checks, want >= 100", agg.FleetGenMisses)
	}
	if agg.FleetCertifiedHits != agg.FleetCertified {
		t.Fatalf("%d of %d certification checks re-verified the cache-served envelope",
			agg.FleetCertifiedHits, agg.FleetCertified)
	}
	if agg.FleetCacheHits == 0 {
		t.Fatal("the hot-response cache never served a hit across the battery")
	}
	// Pipelined-ingest dimension: the third canister must have been
	// verified byte-identical to the serial oracle at every step, with the
	// randomized worker counts actually spanning serial and parallel, and
	// parallel restores exercised mid-run.
	if agg.PipelinedChecks != agg.Steps {
		t.Fatalf("pipelined canister verified at %d of %d steps", agg.PipelinedChecks, agg.Steps)
	}
	if agg.PipelinedSerial == 0 || agg.PipelinedWorkerSum <= agg.PipelinedChecks {
		t.Fatalf("worker randomization degenerate: %d serial steps, worker sum %d over %d checks",
			agg.PipelinedSerial, agg.PipelinedWorkerSum, agg.PipelinedChecks)
	}
	if agg.PipelinedRestores < 20 {
		t.Fatalf("only %d parallel snapshot restores of the pipelined canister, want >= 20", agg.PipelinedRestores)
	}
}

// TestDifferentialPipelinedSingleProc repeats the pipelined-vs-serial
// exercise under GOMAXPROCS=1: the pipeline's goroutines interleave on one
// OS thread, the most adversarial schedule for ordering bugs, and results
// must stay byte-identical.
func TestDifferentialPipelinedSingleProc(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	for _, seed := range []int64{6, 17} {
		cfg := DefaultConfig(seed)
		cfg.Steps = 60
		h := New(cfg)
		stats, err := h.Run()
		if err != nil {
			t.Fatal(err)
		}
		if stats.PipelinedChecks != stats.Steps {
			t.Fatalf("seed %d: pipelined verified at %d of %d steps", seed, stats.PipelinedChecks, stats.Steps)
		}
	}
}

// TestDifferentialSnapshotEveryStep restarts the overlay canister from its
// snapshot on every single step — the most hostile restore cadence — and
// still requires byte-identical answers against the never-restarted oracle.
func TestDifferentialSnapshotEveryStep(t *testing.T) {
	for _, seed := range []int64{4, 9, 25} {
		cfg := DefaultConfig(seed)
		cfg.SnapshotEvery = 1
		cfg.Steps = 60
		h := New(cfg)
		stats, err := h.Run()
		if err != nil {
			t.Fatal(err)
		}
		if stats.SnapshotRestores != stats.Steps {
			t.Fatalf("seed %d: %d restores over %d steps, want one per step", seed, stats.SnapshotRestores, stats.Steps)
		}
	}
}

// TestDifferentialLossyLink runs the same seeded workload twice — once with
// payloads fed directly, once routed through a simnet link that drops,
// duplicates, and reorders under a stop-and-wait at-least-once resend — and
// requires the two runs' final overlay snapshots to be byte-identical. The
// full per-step differential checks (overlay vs replay, pipelined, fleet)
// run inside the lossy pass too, so a transport fault surfacing as a
// dropped, double-applied, or reordered payload is caught at the step it
// happens, not just at the end. The stats assertions pin that the degraded
// link actually degraded: a retransmit-free run would prove nothing.
func TestDifferentialLossyLink(t *testing.T) {
	for _, seed := range []int64{3, 12, 31} {
		clean := New(DefaultConfig(seed))
		if _, err := clean.Run(); err != nil {
			t.Fatal(err)
		}
		want, err := clean.OverlaySnapshot()
		if err != nil {
			t.Fatal(err)
		}

		cfg := DefaultConfig(seed)
		cfg.LossyLink = true
		lossy := New(cfg)
		stats, err := lossy.Run()
		if err != nil {
			t.Fatal(err)
		}
		got, err := lossy.OverlaySnapshot()
		if err != nil {
			t.Fatal(err)
		}
		if len(want) == 0 || string(want) != string(got) {
			t.Fatalf("seed %d: lossy-transport run diverged from the direct run: %d vs %d snapshot bytes",
				seed, len(got), len(want))
		}
		if stats.LinkRetransmits == 0 {
			t.Fatalf("seed %d: the lossy link never forced a retransmit; loss not exercised", seed)
		}
		if stats.LinkStaleDrops == 0 {
			t.Fatalf("seed %d: the receiver never deduplicated a payload; duplication not exercised", seed)
		}
		t.Logf("seed %d: %d retransmits, %d dup/stale drops over %d blocks, state byte-identical",
			seed, stats.LinkRetransmits, stats.LinkStaleDrops, stats.BlocksMined)
	}
}

// TestProbesCoverRegistryQuery asserts the differential probe set covers
// exactly the canister registry's read-only methods: every query method is
// probed (a registry addition without a probe fails here), and no probe
// targets a method the registry does not serve as a query.
func TestProbesCoverRegistryQuery(t *testing.T) {
	h := New(DefaultConfig(1))
	probed := make(map[string]bool)
	for _, p := range h.probeSpecs() {
		probed[p.method] = true
	}
	for _, name := range canister.QueryMethodNames() {
		if !probed[name] {
			t.Errorf("registry query method %q has no differential probe", name)
		}
	}
	for name := range probed {
		m, ok := canister.MethodByName(name)
		if !ok {
			t.Errorf("probe targets %q, which is not in the method registry", name)
			continue
		}
		if m.Kind != canister.MethodReadOnly {
			t.Errorf("probe targets %q, which the registry does not serve as a query", name)
		}
	}
}

// TestDifferentialServeLayersOff pins the plain routing path: with the
// serving layers disabled the harness must still pass, and the layer
// counters must stay at zero.
func TestDifferentialServeLayersOff(t *testing.T) {
	cfg := DefaultConfig(19)
	cfg.ServeLayers = false
	cfg.Steps = 60
	h := New(cfg)
	stats, err := h.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.FleetServeChecks != 0 || stats.FleetCacheHits != 0 || stats.FleetCoalesced != 0 {
		t.Fatalf("serving layers were exercised while disabled: %+v", stats)
	}
}

// TestDifferentialFrameFaults corrupts the fleet's delta stream (seeded
// bit-flips, truncations, duplications, drops) and requires every fault to be
// detected and healed by automatic re-hydration: the per-class detection
// counters and the resync counter must be nonzero, and the history checks
// inside Run fail the test if any corrupted frame is ever silently applied.
// ServeLayers and certification are off — those checks assume replicas only
// lag by the harness's own choice, not by dropped frames.
func TestDifferentialFrameFaults(t *testing.T) {
	for _, seed := range []int64{5, 17, 29} {
		cfg := DefaultConfig(seed)
		cfg.FrameFaults = true
		cfg.ServeLayers = false
		cfg.CertifyEvery = 0
		stats, err := New(cfg).Run()
		if err != nil {
			t.Fatal(err)
		}
		detected := stats.FleetFrameCorrupt + stats.FleetFrameGaps + stats.FleetFrameDuplicates
		if detected == 0 {
			t.Fatalf("seed %d: corruption injection never tripped a detector: %+v", seed, stats)
		}
		if stats.FleetResyncs == 0 {
			t.Fatalf("seed %d: detected corruption never forced a re-hydration: %+v", seed, stats)
		}
		t.Logf("seed %d: corrupt=%d gaps=%d dups=%d resyncs=%d",
			seed, stats.FleetFrameCorrupt, stats.FleetFrameGaps, stats.FleetFrameDuplicates, stats.FleetResyncs)
	}
}

// TestDifferentialLargerDelta repeats the exercise with a deeper stability
// threshold so reorgs reach depths the regtest default cannot.
func TestDifferentialLargerDelta(t *testing.T) {
	for _, seed := range []int64{7, 11} {
		cfg := DefaultConfig(seed)
		cfg.Delta = 12
		cfg.Steps = 60
		h := New(cfg)
		if _, err := h.Run(); err != nil {
			t.Fatal(err)
		}
	}
}
