package difftest

import (
	"testing"
)

// TestDifferentialOverlayVsReplay runs the randomized differential workload
// across a battery of fixed seeds: ≥ 1000 workload iterations in total,
// every get_utxos page and get_balance answer byte-identical between the
// overlay read path and the naive-replay oracle.
func TestDifferentialOverlayVsReplay(t *testing.T) {
	seeds := []int64{1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233}
	totalSteps := 0
	for _, seed := range seeds {
		cfg := DefaultConfig(seed)
		h := New(cfg)
		stats, err := h.Run()
		if err != nil {
			t.Fatal(err)
		}
		totalSteps += stats.Steps
		if stats.Reorgs == 0 {
			t.Errorf("seed %d: workload produced no reorgs", seed)
		}
		if stats.Queries == 0 || stats.BlocksMined == 0 {
			t.Errorf("seed %d: degenerate workload: %+v", seed, stats)
		}
	}
	if totalSteps < 1000 {
		t.Fatalf("only %d workload iterations, want >= 1000", totalSteps)
	}
}

// TestDifferentialLargerDelta repeats the exercise with a deeper stability
// threshold so reorgs reach depths the regtest default cannot.
func TestDifferentialLargerDelta(t *testing.T) {
	for _, seed := range []int64{7, 11} {
		cfg := DefaultConfig(seed)
		cfg.Delta = 12
		cfg.Steps = 60
		h := New(cfg)
		if _, err := h.Run(); err != nil {
			t.Fatal(err)
		}
	}
}
