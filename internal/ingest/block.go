package ingest

import (
	"icbtc/internal/btc"
	"icbtc/internal/utxo"
)

// PreparedBlock is the CPU-bound prework of one block, computed on a
// pipeline worker ahead of sequential application: the parsed block with
// its transaction-ID and Merkle-root memos sealed, the header hash, and
// (when the attach height was predictable) the state-independent half of
// the block's address-indexed delta.
type PreparedBlock struct {
	// Block is the parsed block; nil when Err is set.
	Block *btc.Block
	// Hash is the header hash (the block's identity in the tree).
	Hash btc.Hash
	// Delta is the prebuilt state-independent delta at the predicted attach
	// height, or nil when the height was unknowable (an orphan — the
	// sequential applier will reject it before needing a delta) or the
	// caller asked for none.
	Delta *utxo.PreparedDelta
	// Err records a wire-decode failure; the sequential applier counts the
	// block as rejected.
	Err error
}

// Preparer owns the worker-local state block preparation needs — one
// script-ID cache per worker, so workers never contend and the derivation
// stays a pure function (identical results whichever worker runs a block).
type Preparer struct {
	caches []*btc.ScriptIDCache
}

// NewPreparer creates worker-local caches for a pipeline of the given
// worker count (Config.normalized's count, i.e. at least 1).
func NewPreparer(network btc.Network, workers int) *Preparer {
	if workers < 1 {
		workers = 1
	}
	p := &Preparer{caches: make([]*btc.ScriptIDCache, workers)}
	for i := range p.caches {
		p.caches[i] = btc.NewScriptIDCache(network)
	}
	return p
}

// Prepare runs the CPU-bound prework for an already-parsed block: seal the
// txid memo, compute the Merkle root, and (height >= 0) prebuild the
// delta. worker selects the worker-local cache and must be the index Map
// passed to produce.
func (p *Preparer) Prepare(worker int, block *btc.Block, height int64) PreparedBlock {
	pb := PreparedBlock{Block: block, Hash: block.Header.BlockHash()}
	block.TxIDs()
	block.MerkleRoot()
	if height >= 0 {
		pb.Delta = utxo.PrepareBlockDelta(block, height, p.caches[worker])
	}
	return pb
}

// PrepareWire decodes a block from wire bytes (zero-copy: scripts alias
// wire, txids are span hashes) and then prepares it like Prepare. A decode
// failure is carried in Err.
func (p *Preparer) PrepareWire(worker int, wire []byte, height int64) PreparedBlock {
	block, err := btc.ParseBlockFast(wire)
	if err != nil {
		return PreparedBlock{Err: err}
	}
	return p.Prepare(worker, block, height)
}
