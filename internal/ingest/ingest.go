// Package ingest is the deterministic parallel block-ingest pipeline: it
// overlaps the CPU-bound per-block work — wire decode, txid and Merkle
// double-hashing, script-ID derivation, block-delta prebuild — across a
// bounded prefetch window of upcoming blocks, while state application
// stays strictly sequential. The applied result is therefore byte-identical
// to the serial path at every worker count (including one), which is what
// lets the differential harness hold the serial path as the oracle and
// randomize worker counts freely.
//
// The pipeline's contract is split in two:
//
//   - Map is the generic ordered fan-out/fan-in primitive: produce(i) runs
//     on a worker pool inside a bounded in-flight window, consume(i, v)
//     runs on the calling goroutine in strict index order. Determinism
//     falls out of the structure — produce must be a pure function of its
//     input, and all state mutation happens in consume.
//   - PrepareBlock / PrepareWire (block.go) are the produce functions for
//     Bitcoin blocks, used by the canister's catch-up sync, payload
//     processing, frame application, and snapshot hydration.
package ingest

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"icbtc/internal/obs"
)

// Config parameterizes a pipeline run.
type Config struct {
	// Workers is the number of concurrent produce goroutines. Values <= 1
	// select the serial path (produce and consume interleaved on the
	// calling goroutine — no goroutines, no channels).
	Workers int
	// Window bounds how many items may be in flight (produced or being
	// produced but not yet consumed) at once; it is the prefetch depth K.
	// <= 0 defaults to 2×Workers.
	Window int
	// Obs, when non-nil, receives pipeline instrumentation: items consumed,
	// per-item produce/consume durations (measured on the registry clock,
	// so seeded runs stay bit-identical), and the configured prefetch depth.
	// The depth gauge reports the window the run was CONFIGURED with, never
	// live channel occupancy — sampling goroutine-scheduling state would
	// leak real-process nondeterminism into deterministic snapshots. Nil
	// (the default) adds zero overhead.
	Obs *obs.Registry
}

// DefaultWorkers returns the worker count used when a consumer asks for
// "parallel" without a specific count: GOMAXPROCS, capped at 8 (the deepest
// point measured to still help; beyond it the sequential applier is the
// bottleneck).
func DefaultWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	if w < 1 {
		w = 1
	}
	return w
}

// NormalizedWorkers returns the worker count Map will run with (before
// the per-call clamp to the item count) — what callers use to size
// worker-local state such as Preparer caches.
func (c Config) NormalizedWorkers() int {
	workers, _ := c.normalized()
	return workers
}

// normalized returns the effective worker count and window.
func (c Config) normalized() (workers, window int) {
	workers = c.Workers
	if workers < 1 {
		workers = 1
	}
	window = c.Window
	if window <= 0 {
		window = 2 * workers
	}
	if window < workers {
		window = workers
	}
	return workers, window
}

// instrumented wraps a run's produce and consume with obs recording on
// registry r: ingest_produce_duration_ns is observed on worker goroutines
// (Observe is atomic), ingest_consume_duration_ns and ingest_items_total on
// the sequential consumer, and ingest_window_depth reports the configured
// prefetch window.
func instrumented[T any](r *obs.Registry, window int,
	produce func(worker, i int) T, consume func(i int, v T) error,
) (func(worker, i int) T, func(i int, v T) error) {
	r.Gauge("ingest_window_depth").Set(int64(window))
	items := r.Counter("ingest_items_total")
	produceNS := r.Histogram("ingest_produce_duration_ns", obs.DurationBuckets)
	consumeNS := r.Histogram("ingest_consume_duration_ns", obs.DurationBuckets)
	return func(worker, i int) T {
			start := r.Now()
			v := produce(worker, i)
			produceNS.ObserveDuration(r.Now().Sub(start))
			return v
		}, func(i int, v T) error {
			start := r.Now()
			err := consume(i, v)
			consumeNS.ObserveDuration(r.Now().Sub(start))
			items.Inc()
			return err
		}
}

// Map runs produce(i) for every i in [0, n) on cfg.Workers goroutines with
// at most cfg.Window items in flight, and feeds the results to consume in
// strict index order on the calling goroutine. It returns the first
// consume error; remaining produce calls are abandoned (workers drain and
// exit). produce must not touch shared mutable state: every structural
// guarantee of the pipeline (byte-identical results at any worker count)
// rests on produce being pure and consume being the only mutator.
//
// produce receives a stable worker index in [0, workers) so callers can
// maintain worker-local caches (e.g. script-ID memos) without locking.
func Map[T any](n int, cfg Config, produce func(worker, i int) T, consume func(i int, v T) error) error {
	if n <= 0 {
		return nil
	}
	workers, window := cfg.normalized()
	if cfg.Obs != nil {
		produce, consume = instrumented(cfg.Obs, window, produce, consume)
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := consume(i, produce(0, i)); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	if window > n {
		window = n
	}

	// Tickets bound the in-flight window: a worker takes one before
	// claiming an index, the consumer returns it after consuming. quit
	// unblocks workers waiting on a ticket after a consume error.
	tickets := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		tickets <- struct{}{}
	}
	quit := make(chan struct{})

	results := make([]T, n)
	ready := make([]chan struct{}, n)
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		go func(worker int) {
			for {
				select {
				case <-tickets:
				case <-quit:
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i] = produce(worker, i)
				close(ready[i])
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		<-ready[i]
		err := consume(i, results[i])
		var zero T
		results[i] = zero // release the prepared item as soon as it is consumed
		if err != nil {
			close(quit)
			return fmt.Errorf("ingest: item %d: %w", i, err)
		}
		tickets <- struct{}{}
	}
	close(quit)
	return nil
}
