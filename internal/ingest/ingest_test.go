package ingest

import (
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapOrdering: consume must see every index exactly once, in order,
// with the produced value, at every worker/window combination.
func TestMapOrdering(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8, 17} {
		for _, window := range []int{0, 1, 2, 5, 64} {
			n := 200
			next := 0
			err := Map(n, Config{Workers: workers, Window: window},
				func(_, i int) int { return i * 3 },
				func(i, v int) error {
					if i != next {
						t.Fatalf("workers=%d window=%d: consumed %d, want %d", workers, window, i, next)
					}
					if v != i*3 {
						t.Fatalf("workers=%d window=%d: value %d for index %d", workers, window, v, i)
					}
					next++
					return nil
				})
			if err != nil {
				t.Fatal(err)
			}
			if next != n {
				t.Fatalf("workers=%d window=%d: consumed %d of %d", workers, window, next, n)
			}
		}
	}
}

// TestMapWindowBound: no more than Window items may be produced beyond the
// consume frontier.
func TestMapWindowBound(t *testing.T) {
	const n, window = 100, 4
	var produced, consumed atomic.Int64
	err := Map(n, Config{Workers: 3, Window: window},
		func(_, i int) int {
			p := produced.Add(1)
			if c := consumed.Load(); p-c > window+1 {
				t.Errorf("window overrun: %d produced, %d consumed", p, c)
			}
			return i
		},
		func(i, v int) error {
			time.Sleep(time.Microsecond) // let workers run ahead if they can
			consumed.Add(1)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMapConsumeError: the first consume error aborts the run (wrapped
// with the item index) and workers exit rather than hanging on tickets.
func TestMapConsumeError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := Map(500, Config{Workers: workers, Window: 3},
			func(_, i int) int { return i },
			func(i, v int) error {
				if i == 7 {
					return boom
				}
				return nil
			})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: got %v, want wrapped boom", workers, err)
		}
	}
}

// TestMapWorkerLocality: the worker index passed to produce must stay
// within [0, workers), so worker-local caches are safe.
func TestMapWorkerLocality(t *testing.T) {
	const workers = 4
	var bad atomic.Bool
	err := Map(300, Config{Workers: workers},
		func(w, i int) int {
			if w < 0 || w >= workers {
				bad.Store(true)
			}
			return i
		},
		func(i, v int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if bad.Load() {
		t.Fatal("worker index out of range")
	}
}

// TestMapDeterministicAggregation: aggregating in consume yields the same
// result at every worker count even when producers finish out of order.
func TestMapDeterministicAggregation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inputs := make([]int, 300)
	for i := range inputs {
		inputs[i] = rng.Intn(1000)
	}
	run := func(workers int) []int {
		var out []int
		err := Map(len(inputs), Config{Workers: workers, Window: 7},
			func(_, i int) int {
				if inputs[i]%3 == 0 {
					time.Sleep(time.Duration(inputs[i]%5) * time.Microsecond)
				}
				return inputs[i] * 2
			},
			func(i, v int) error { out = append(out, v); return nil })
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: aggregation diverged at %d", workers, i)
			}
		}
	}
}
