package ingest

import (
	"testing"

	"icbtc/internal/obs"
)

// TestMapInstrumentation checks the optional obs wiring: item counts and
// per-item durations land in the registry, the window-depth gauge reports
// the CONFIGURED window, and both the serial and parallel paths record the
// same totals.
func TestMapInstrumentation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		reg := obs.NewRegistry()
		const n = 37
		err := Map(n, Config{Workers: workers, Window: 5, Obs: reg},
			func(_, i int) int { return i * i },
			func(i, v int) error {
				if v != i*i {
					t.Fatalf("item %d: got %d", i, v)
				}
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if got := reg.Counter("ingest_items_total").Value(); got != n {
			t.Errorf("workers=%d: items=%d, want %d", workers, got, n)
		}
		if got := reg.Gauge("ingest_window_depth").Value(); got != 5 {
			t.Errorf("workers=%d: window_depth=%d, want 5", workers, got)
		}
		if got := reg.Histogram("ingest_produce_duration_ns", obs.DurationBuckets).Count(); got != n {
			t.Errorf("workers=%d: produce observations=%d, want %d", workers, got, n)
		}
		if got := reg.Histogram("ingest_consume_duration_ns", obs.DurationBuckets).Count(); got != n {
			t.Errorf("workers=%d: consume observations=%d, want %d", workers, got, n)
		}
	}
}
