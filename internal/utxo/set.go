// Package utxo implements the unspent-transaction-output set the Bitcoin
// canister stores (§III-C): "the implementation uses a data structure with
// Bitcoin addresses as the index for an efficient retrieval of all UTXOs
// associated with an address."
//
// The set supports applying and unapplying whole blocks (the latter is used
// by the simulated Bitcoin nodes during reorgs; the canister itself never
// rolls back below the anchor), balance computation, and height-descending
// paginated retrieval as required by the get_utxos endpoint.
package utxo

import (
	"errors"
	"fmt"
	"sort"

	"icbtc/internal/btc"
)

// UTXO is one unspent output together with the height of the block that
// created it.
type UTXO struct {
	OutPoint btc.OutPoint
	Value    int64
	PkScript []byte
	Height   int64
}

// entry is the stored form; the address key is derived from PkScript.
type entry struct {
	value    int64
	pkScript []byte
	height   int64
}

// Set is an address-indexed UTXO set. The zero value is not usable; use New.
type Set struct {
	network btc.Network
	// byOutPoint is the authoritative map of unspent outputs.
	byOutPoint map[btc.OutPoint]entry
	// byAddress indexes outpoints by the ScriptID of their locking script.
	byAddress map[string]map[btc.OutPoint]struct{}
	// approxBytes tracks an estimate of resident memory, reported by Fig 5.
	approxBytes int64
}

// New creates an empty UTXO set for a network.
func New(network btc.Network) *Set {
	return &Set{
		network:    network,
		byOutPoint: make(map[btc.OutPoint]entry),
		byAddress:  make(map[string]map[btc.OutPoint]struct{}),
	}
}

// Len returns the number of unspent outputs.
func (s *Set) Len() int { return len(s.byOutPoint) }

// ApproxBytes returns an estimate of the set's resident size in bytes
// (outpoint + entry overhead + script bytes), used by the Fig 5 experiment.
func (s *Set) ApproxBytes() int64 { return s.approxBytes }

// Network returns the network the set indexes addresses for.
func (s *Set) Network() btc.Network { return s.network }

// perUTXOOverhead approximates the per-output storage footprint of the
// production canister (value, outpoint, address index entry, and stable-
// memory bookkeeping): the paper's end point of 103 GiB for ~170 M UTXOs
// works out to ~650 bytes per UTXO, most of it metadata rather than the
// script itself.
const perUTXOOverhead = 580

// Add inserts an unspent output. Adding a duplicate outpoint is an error
// (it would indicate a consensus bug upstream).
func (s *Set) Add(op btc.OutPoint, out btc.TxOut, height int64) error {
	if _, dup := s.byOutPoint[op]; dup {
		return fmt.Errorf("utxo: duplicate outpoint %s", op)
	}
	script := make([]byte, len(out.PkScript))
	copy(script, out.PkScript)
	s.byOutPoint[op] = entry{value: out.Value, pkScript: script, height: height}
	key := btc.ScriptID(script, s.network)
	bucket := s.byAddress[key]
	if bucket == nil {
		bucket = make(map[btc.OutPoint]struct{})
		s.byAddress[key] = bucket
	}
	bucket[op] = struct{}{}
	s.approxBytes += int64(perUTXOOverhead + len(script))
	return nil
}

// ErrMissingOutput is returned when spending an output not in the set.
var ErrMissingOutput = errors.New("utxo: output not in set")

// Remove spends an output, returning the removed UTXO so callers can build
// undo data.
func (s *Set) Remove(op btc.OutPoint) (UTXO, error) {
	e, ok := s.byOutPoint[op]
	if !ok {
		return UTXO{}, fmt.Errorf("%w: %s", ErrMissingOutput, op)
	}
	delete(s.byOutPoint, op)
	key := btc.ScriptID(e.pkScript, s.network)
	if bucket := s.byAddress[key]; bucket != nil {
		delete(bucket, op)
		if len(bucket) == 0 {
			delete(s.byAddress, key)
		}
	}
	s.approxBytes -= int64(perUTXOOverhead + len(e.pkScript))
	return UTXO{OutPoint: op, Value: e.value, PkScript: e.pkScript, Height: e.height}, nil
}

// Get returns the UTXO for an outpoint if present.
func (s *Set) Get(op btc.OutPoint) (UTXO, bool) {
	e, ok := s.byOutPoint[op]
	if !ok {
		return UTXO{}, false
	}
	return UTXO{OutPoint: op, Value: e.value, PkScript: e.pkScript, Height: e.height}, true
}

// BlockUndo records everything needed to unapply a block.
type BlockUndo struct {
	// Spent holds the UTXOs consumed by the block, in consumption order.
	Spent []UTXO
	// Created holds the outpoints of outputs the block added.
	Created []btc.OutPoint
}

// ApplyStats reports the work done applying a block; the execution layer's
// metering consumes these to price block ingestion (Fig 6).
type ApplyStats struct {
	OutputsInserted int
	InputsRemoved   int
	BytesInserted   int
}

// ApplyBlock applies all transactions of a block at the given height:
// removes every spent input (except coinbase inputs) and inserts every
// created output. It returns undo data and work statistics. On error the
// set is left unchanged.
func (s *Set) ApplyBlock(block *btc.Block, height int64) (*BlockUndo, ApplyStats, error) {
	undo := &BlockUndo{}
	var stats ApplyStats
	rollback := func() {
		// Reverse creations, then restore spends.
		for i := len(undo.Created) - 1; i >= 0; i-- {
			// Ignoring the error: these were just inserted.
			_, _ = s.Remove(undo.Created[i])
		}
		for i := len(undo.Spent) - 1; i >= 0; i-- {
			u := undo.Spent[i]
			_ = s.Add(u.OutPoint, btc.TxOut{Value: u.Value, PkScript: u.PkScript}, u.Height)
		}
	}
	for _, tx := range block.Transactions {
		if !tx.IsCoinbase() {
			for i := range tx.Inputs {
				spent, err := s.Remove(tx.Inputs[i].PreviousOutPoint)
				if err != nil {
					rollback()
					return nil, ApplyStats{}, fmt.Errorf("utxo: applying block at height %d: %w", height, err)
				}
				undo.Spent = append(undo.Spent, spent)
				stats.InputsRemoved++
			}
		}
		txid := tx.TxID()
		for vout := range tx.Outputs {
			op := btc.OutPoint{TxID: txid, Vout: uint32(vout)}
			if err := s.Add(op, tx.Outputs[vout], height); err != nil {
				rollback()
				return nil, ApplyStats{}, fmt.Errorf("utxo: applying block at height %d: %w", height, err)
			}
			undo.Created = append(undo.Created, op)
			stats.OutputsInserted++
			stats.BytesInserted += len(tx.Outputs[vout].PkScript) + 8
		}
	}
	return undo, stats, nil
}

// UnapplyBlock reverses a previous ApplyBlock using its undo data.
func (s *Set) UnapplyBlock(undo *BlockUndo) error {
	for i := len(undo.Created) - 1; i >= 0; i-- {
		if _, err := s.Remove(undo.Created[i]); err != nil {
			return fmt.Errorf("utxo: unapply remove: %w", err)
		}
	}
	for i := len(undo.Spent) - 1; i >= 0; i-- {
		u := undo.Spent[i]
		if err := s.Add(u.OutPoint, btc.TxOut{Value: u.Value, PkScript: u.PkScript}, u.Height); err != nil {
			return fmt.Errorf("utxo: unapply restore: %w", err)
		}
	}
	return nil
}

// Balance returns the total unspent value locked to an address key.
func (s *Set) Balance(addressKey string) int64 {
	var total int64
	for op := range s.byAddress[addressKey] {
		total += s.byOutPoint[op].value
	}
	return total
}

// UTXOsForAddress returns all UTXOs for an address key sorted by height in
// descending order (the get_utxos contract: "sorted by block height in
// descending order, ensuring the correctness of the pagination mechanism"),
// with ties broken deterministically by outpoint.
func (s *Set) UTXOsForAddress(addressKey string) []UTXO {
	bucket := s.byAddress[addressKey]
	if len(bucket) == 0 {
		return nil
	}
	out := make([]UTXO, 0, len(bucket))
	for op := range bucket {
		e := s.byOutPoint[op]
		out = append(out, UTXO{OutPoint: op, Value: e.value, PkScript: e.pkScript, Height: e.height})
	}
	SortUTXOs(out)
	return out
}

// SortUTXOs orders UTXOs by height descending, then txid, then vout; the
// canonical ordering every replica must agree on for pagination.
func SortUTXOs(u []UTXO) {
	sort.Slice(u, func(i, j int) bool {
		if u[i].Height != u[j].Height {
			return u[i].Height > u[j].Height
		}
		if u[i].OutPoint.TxID != u[j].OutPoint.TxID {
			return lessHash(u[i].OutPoint.TxID, u[j].OutPoint.TxID)
		}
		return u[i].OutPoint.Vout < u[j].OutPoint.Vout
	})
}

// AddressCount returns the number of distinct address keys with UTXOs.
func (s *Set) AddressCount() int { return len(s.byAddress) }

// ForEach visits every UTXO in unspecified order; visit returning false
// stops the walk.
func (s *Set) ForEach(visit func(UTXO) bool) {
	for op, e := range s.byOutPoint {
		if !visit(UTXO{OutPoint: op, Value: e.value, PkScript: e.pkScript, Height: e.height}) {
			return
		}
	}
}

func lessHash(a, b btc.Hash) bool {
	for i := btc.HashSize - 1; i >= 0; i-- {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
