// Package utxo implements the unspent-transaction-output set the Bitcoin
// canister stores (§III-C): "the implementation uses a data structure with
// Bitcoin addresses as the index for an efficient retrieval of all UTXOs
// associated with an address."
//
// The address index is ordered (see index.go): every bucket maintains the
// canonical height-descending get_utxos order incrementally, so reads
// stream pages in O(log n + page) and balances are O(1) running totals. On
// the write path locking scripts are interned — each distinct script is
// address-decoded/hashed once and its bytes stored once — and every entry
// remembers its derived address key, so Remove never recomputes a ScriptID.
//
// The set supports applying and unapplying whole blocks (the latter is used
// by the simulated Bitcoin nodes during reorgs; the canister itself never
// rolls back below the anchor), balance computation, and height-descending
// paginated retrieval as required by the get_utxos endpoint.
package utxo

import (
	"errors"
	"fmt"

	"icbtc/internal/btc"
)

// UTXO is one unspent output together with the height of the block that
// created it.
type UTXO struct {
	OutPoint btc.OutPoint
	Value    int64
	PkScript []byte
	Height   int64
}

// internedScript is the single stored copy of one distinct locking script
// together with its memoized address key. Interning makes the per-output
// cost of repeated scripts (the common case: one address receiving many
// outputs) a map probe instead of an address decode plus SHA-256.
type internedScript struct {
	bytes []byte
	key   string
	refs  int
}

// entry is the stored form; script carries both the script bytes and the
// derived address key, so spends never re-derive either.
type entry struct {
	value  int64
	height int64
	script *internedScript
}

// Set is an address-indexed UTXO set. The zero value is not usable; use New.
type Set struct {
	network btc.Network
	// byOutPoint is the authoritative map of unspent outputs.
	byOutPoint map[btc.OutPoint]entry
	// byAddress indexes ordered buckets by the ScriptID of their locking
	// script (see index.go).
	byAddress map[string]*bucket
	// interned deduplicates locking scripts, keyed by the script bytes.
	interned map[string]*internedScript
	// approxBytes tracks an estimate of resident memory, reported by Fig 5.
	approxBytes int64
}

// New creates an empty UTXO set for a network.
func New(network btc.Network) *Set {
	return &Set{
		network:    network,
		byOutPoint: make(map[btc.OutPoint]entry),
		byAddress:  make(map[string]*bucket),
		interned:   make(map[string]*internedScript),
	}
}

// Len returns the number of unspent outputs.
func (s *Set) Len() int { return len(s.byOutPoint) }

// ApproxBytes returns an estimate of the set's resident size in bytes
// (outpoint + entry overhead + script bytes), used by the Fig 5 experiment.
func (s *Set) ApproxBytes() int64 { return s.approxBytes }

// Network returns the network the set indexes addresses for.
func (s *Set) Network() btc.Network { return s.network }

// perUTXOOverhead approximates the per-output storage footprint of the
// production canister (value, outpoint, address index entry, and stable-
// memory bookkeeping): the paper's end point of 103 GiB for ~170 M UTXOs
// works out to ~650 bytes per UTXO, most of it metadata rather than the
// script itself.
const perUTXOOverhead = 580

// intern returns the single stored copy of script, creating it (one copy,
// one ScriptID derivation) on first sight.
func (s *Set) intern(script []byte) *internedScript {
	if sc, ok := s.interned[string(script)]; ok {
		return sc
	}
	cp := make([]byte, len(script))
	copy(cp, script)
	sc := &internedScript{bytes: cp, key: btc.ScriptID(cp, s.network)}
	s.interned[string(cp)] = sc
	return sc
}

// release drops one reference to an interned script, un-interning it when
// the last UTXO carrying it is spent so the table cannot grow unboundedly.
func (s *Set) release(sc *internedScript) {
	sc.refs--
	if sc.refs == 0 {
		delete(s.interned, string(sc.bytes))
	}
}

// ScriptInterned reports whether the set already holds an interned copy of
// script — i.e. whether inserting another output with it skips the address
// decode and hash. The execution layer's metering uses this to price
// insertions (Fig 6). The lookup itself allocates nothing.
func (s *Set) ScriptInterned(script []byte) bool {
	_, ok := s.interned[string(script)]
	return ok
}

// InternedScripts returns the number of distinct locking scripts currently
// interned (observability).
func (s *Set) InternedScripts() int { return len(s.interned) }

// Add inserts an unspent output. Adding a duplicate outpoint is an error
// (it would indicate a consensus bug upstream).
func (s *Set) Add(op btc.OutPoint, out btc.TxOut, height int64) error {
	if _, dup := s.byOutPoint[op]; dup {
		return fmt.Errorf("utxo: duplicate outpoint %s", op)
	}
	sc := s.intern(out.PkScript)
	sc.refs++
	s.byOutPoint[op] = entry{value: out.Value, height: height, script: sc}
	b := s.byAddress[sc.key]
	if b == nil {
		b = &bucket{}
		s.byAddress[sc.key] = b
	}
	b.insert(UTXO{OutPoint: op, Value: out.Value, PkScript: sc.bytes, Height: height})
	b.balance += out.Value
	s.approxBytes += int64(perUTXOOverhead + len(sc.bytes))
	return nil
}

// ErrMissingOutput is returned when spending an output not in the set.
var ErrMissingOutput = errors.New("utxo: output not in set")

// Remove spends an output, returning the removed UTXO so callers can build
// undo data. The stored address key is reused — no script decoding.
func (s *Set) Remove(op btc.OutPoint) (UTXO, error) {
	e, ok := s.byOutPoint[op]
	if !ok {
		return UTXO{}, fmt.Errorf("%w: %s", ErrMissingOutput, op)
	}
	delete(s.byOutPoint, op)
	if b := s.byAddress[e.script.key]; b != nil {
		b.remove(op, e.height)
		b.balance -= e.value
		if len(b.asc) == 0 {
			delete(s.byAddress, e.script.key)
		}
	}
	s.approxBytes -= int64(perUTXOOverhead + len(e.script.bytes))
	u := UTXO{OutPoint: op, Value: e.value, PkScript: e.script.bytes, Height: e.height}
	s.release(e.script)
	return u, nil
}

// Get returns the UTXO for an outpoint if present.
func (s *Set) Get(op btc.OutPoint) (UTXO, bool) {
	e, ok := s.byOutPoint[op]
	if !ok {
		return UTXO{}, false
	}
	return UTXO{OutPoint: op, Value: e.value, PkScript: e.script.bytes, Height: e.height}, true
}

// AddressKeyOf returns the memoized address key of an unspent outpoint.
func (s *Set) AddressKeyOf(op btc.OutPoint) (string, bool) {
	e, ok := s.byOutPoint[op]
	if !ok {
		return "", false
	}
	return e.script.key, true
}

// BlockUndo records everything needed to unapply a block.
type BlockUndo struct {
	// Spent holds the UTXOs consumed by the block, in consumption order.
	Spent []UTXO
	// Created holds the outpoints of outputs the block added.
	Created []btc.OutPoint
}

// ApplyStats reports the work done applying a block; the execution layer's
// metering consumes these to price block ingestion (Fig 6).
type ApplyStats struct {
	OutputsInserted int
	InputsRemoved   int
	BytesInserted   int
}

// ApplyBlock applies all transactions of a block at the given height:
// removes every spent input (except coinbase inputs) and inserts every
// created output. Transaction IDs come from the block's memoized table —
// they are computed once per block, not re-serialized per call site. It
// returns undo data and work statistics. On error the set is left
// unchanged.
func (s *Set) ApplyBlock(block *btc.Block, height int64) (*BlockUndo, ApplyStats, error) {
	undo := &BlockUndo{}
	var stats ApplyStats
	rollback := func() {
		// Reverse creations, then restore spends.
		for i := len(undo.Created) - 1; i >= 0; i-- {
			// Ignoring the error: these were just inserted.
			_, _ = s.Remove(undo.Created[i])
		}
		for i := len(undo.Spent) - 1; i >= 0; i-- {
			u := undo.Spent[i]
			_ = s.Add(u.OutPoint, btc.TxOut{Value: u.Value, PkScript: u.PkScript}, u.Height)
		}
	}
	txids := block.TxIDs()
	for ti, tx := range block.Transactions {
		if !tx.IsCoinbase() {
			for i := range tx.Inputs {
				spent, err := s.Remove(tx.Inputs[i].PreviousOutPoint)
				if err != nil {
					rollback()
					return nil, ApplyStats{}, fmt.Errorf("utxo: applying block at height %d: %w", height, err)
				}
				undo.Spent = append(undo.Spent, spent)
				stats.InputsRemoved++
			}
		}
		txid := txids[ti]
		for vout := range tx.Outputs {
			op := btc.OutPoint{TxID: txid, Vout: uint32(vout)}
			if err := s.Add(op, tx.Outputs[vout], height); err != nil {
				rollback()
				return nil, ApplyStats{}, fmt.Errorf("utxo: applying block at height %d: %w", height, err)
			}
			undo.Created = append(undo.Created, op)
			stats.OutputsInserted++
			stats.BytesInserted += len(tx.Outputs[vout].PkScript) + 8
		}
	}
	return undo, stats, nil
}

// UnapplyBlock reverses a previous ApplyBlock using its undo data.
func (s *Set) UnapplyBlock(undo *BlockUndo) error {
	for i := len(undo.Created) - 1; i >= 0; i-- {
		if _, err := s.Remove(undo.Created[i]); err != nil {
			return fmt.Errorf("utxo: unapply remove: %w", err)
		}
	}
	for i := len(undo.Spent) - 1; i >= 0; i-- {
		u := undo.Spent[i]
		if err := s.Add(u.OutPoint, btc.TxOut{Value: u.Value, PkScript: u.PkScript}, u.Height); err != nil {
			return fmt.Errorf("utxo: unapply restore: %w", err)
		}
	}
	return nil
}

// Balance returns the total unspent value locked to an address key: the
// bucket's running total, maintained on Add/Remove — O(1), no bucket walk.
func (s *Set) Balance(addressKey string) int64 {
	b := s.byAddress[addressKey]
	if b == nil {
		return 0
	}
	return b.balance
}

// UTXOsForAddress returns all UTXOs for an address key sorted by height in
// descending order (the get_utxos contract: "sorted by block height in
// descending order, ensuring the correctness of the pagination mechanism"),
// with ties broken deterministically by outpoint. The bucket maintains its
// height groups in order incrementally, so the call streams the canonical
// order in one pass — no sort.
func (s *Set) UTXOsForAddress(addressKey string) []UTXO {
	b := s.byAddress[addressKey]
	if b == nil || len(b.asc) == 0 {
		return nil
	}
	out := make([]UTXO, 0, len(b.asc))
	it := s.AddressIter(addressKey)
	for u, ok := it.Next(); ok; u, ok = it.Next() {
		out = append(out, u)
	}
	return out
}

// AddressCount returns the number of distinct address keys with UTXOs.
func (s *Set) AddressCount() int { return len(s.byAddress) }

// ForEach visits every UTXO in unspecified order; visit returning false
// stops the walk.
func (s *Set) ForEach(visit func(UTXO) bool) {
	for op, e := range s.byOutPoint {
		if !visit(UTXO{OutPoint: op, Value: e.value, PkScript: e.script.bytes, Height: e.height}) {
			return
		}
	}
}
