// Package utxo implements the unspent-transaction-output set the Bitcoin
// canister stores (§III-C): "the implementation uses a data structure with
// Bitcoin addresses as the index for an efficient retrieval of all UTXOs
// associated with an address."
//
// The address index is ordered (see index.go): every bucket maintains the
// canonical height-descending get_utxos order incrementally, so reads
// stream pages in O(log n + page) and balances are O(1) running totals. On
// the write path locking scripts are interned — each distinct script is
// address-decoded/hashed once and its bytes stored once — and every entry
// remembers its derived address key, so Remove never recomputes a ScriptID.
//
// The set supports applying and unapplying whole blocks (the latter is used
// by the simulated Bitcoin nodes during reorgs; the canister itself never
// rolls back below the anchor), balance computation, and height-descending
// paginated retrieval as required by the get_utxos endpoint.
package utxo

import (
	"errors"
	"fmt"

	"icbtc/internal/btc"
)

// UTXO is one unspent output together with the height of the block that
// created it.
type UTXO struct {
	OutPoint btc.OutPoint
	Value    int64
	PkScript []byte
	Height   int64
}

// internedScript is the single stored copy of one distinct locking script
// together with its memoized address key. Interning makes the per-output
// cost of repeated scripts (the common case: one address receiving many
// outputs) a map probe instead of an address decode plus SHA-256.
type internedScript struct {
	bytes []byte
	key   string
	refs  int
}

// entry is the stored form; script carries both the script bytes and the
// derived address key, so spends never re-derive either.
type entry struct {
	value  int64
	height int64
	script *internedScript
}

// Set is an address-indexed UTXO set. The zero value is not usable; use New.
type Set struct {
	network btc.Network
	// byOutPoint is the authoritative map of unspent outputs.
	byOutPoint map[btc.OutPoint]entry
	// byAddress indexes ordered buckets by the ScriptID of their locking
	// script (see index.go).
	byAddress map[string]*bucket
	// interned deduplicates locking scripts, keyed by the script bytes.
	interned map[string]*internedScript
	// approxBytes tracks an estimate of resident memory, reported by Fig 5.
	approxBytes int64
}

// New creates an empty UTXO set for a network.
func New(network btc.Network) *Set {
	return &Set{
		network:    network,
		byOutPoint: make(map[btc.OutPoint]entry),
		byAddress:  make(map[string]*bucket),
		interned:   make(map[string]*internedScript),
	}
}

// Len returns the number of unspent outputs.
func (s *Set) Len() int { return len(s.byOutPoint) }

// ApproxBytes returns an estimate of the set's resident size in bytes
// (outpoint + entry overhead + script bytes), used by the Fig 5 experiment.
func (s *Set) ApproxBytes() int64 { return s.approxBytes }

// Network returns the network the set indexes addresses for.
func (s *Set) Network() btc.Network { return s.network }

// perUTXOOverhead approximates the per-output storage footprint of the
// production canister (value, outpoint, address index entry, and stable-
// memory bookkeeping): the paper's end point of 103 GiB for ~170 M UTXOs
// works out to ~650 bytes per UTXO, most of it metadata rather than the
// script itself.
const perUTXOOverhead = 580

// intern returns the single stored copy of script, creating it (one copy,
// one ScriptID derivation) on first sight.
func (s *Set) intern(script []byte) *internedScript {
	if sc, ok := s.interned[string(script)]; ok {
		return sc
	}
	return s.internWithKey(script, btc.ScriptID(script, s.network))
}

// internWithKey interns a script whose address key the caller has already
// derived (the batched apply derives keys once per distinct script during
// staging), skipping the re-derivation intern would pay on a miss.
func (s *Set) internWithKey(script []byte, key string) *internedScript {
	if sc, ok := s.interned[string(script)]; ok {
		return sc
	}
	cp := make([]byte, len(script))
	copy(cp, script)
	sc := &internedScript{bytes: cp, key: key}
	s.interned[string(cp)] = sc
	return sc
}

// release drops one reference to an interned script, un-interning it when
// the last UTXO carrying it is spent so the table cannot grow unboundedly.
func (s *Set) release(sc *internedScript) {
	sc.refs--
	if sc.refs == 0 {
		delete(s.interned, string(sc.bytes))
	}
}

// ScriptInterned reports whether the set already holds an interned copy of
// script — i.e. whether inserting another output with it skips the address
// decode and hash. The execution layer's metering uses this to price
// insertions (Fig 6). The lookup itself allocates nothing.
func (s *Set) ScriptInterned(script []byte) bool {
	_, ok := s.interned[string(script)]
	return ok
}

// InternedScripts returns the number of distinct locking scripts currently
// interned (observability).
func (s *Set) InternedScripts() int { return len(s.interned) }

// Add inserts an unspent output. Adding a duplicate outpoint is an error
// (it would indicate a consensus bug upstream).
func (s *Set) Add(op btc.OutPoint, out btc.TxOut, height int64) error {
	if _, dup := s.byOutPoint[op]; dup {
		return fmt.Errorf("utxo: duplicate outpoint %s", op)
	}
	sc := s.intern(out.PkScript)
	sc.refs++
	s.byOutPoint[op] = entry{value: out.Value, height: height, script: sc}
	b := s.byAddress[sc.key]
	if b == nil {
		b = &bucket{}
		s.byAddress[sc.key] = b
	}
	b.insert(UTXO{OutPoint: op, Value: out.Value, PkScript: sc.bytes, Height: height})
	b.balance += out.Value
	s.approxBytes += int64(perUTXOOverhead + len(sc.bytes))
	return nil
}

// ErrMissingOutput is returned when spending an output not in the set.
var ErrMissingOutput = errors.New("utxo: output not in set")

// Remove spends an output, returning the removed UTXO so callers can build
// undo data. The stored address key is reused — no script decoding.
func (s *Set) Remove(op btc.OutPoint) (UTXO, error) {
	e, ok := s.byOutPoint[op]
	if !ok {
		return UTXO{}, fmt.Errorf("%w: %s", ErrMissingOutput, op)
	}
	delete(s.byOutPoint, op)
	if b := s.byAddress[e.script.key]; b != nil {
		b.remove(op, e.height)
		b.balance -= e.value
		if len(b.asc) == 0 {
			delete(s.byAddress, e.script.key)
		}
	}
	s.approxBytes -= int64(perUTXOOverhead + len(e.script.bytes))
	u := UTXO{OutPoint: op, Value: e.value, PkScript: e.script.bytes, Height: e.height}
	s.release(e.script)
	return u, nil
}

// Get returns the UTXO for an outpoint if present.
func (s *Set) Get(op btc.OutPoint) (UTXO, bool) {
	e, ok := s.byOutPoint[op]
	if !ok {
		return UTXO{}, false
	}
	return UTXO{OutPoint: op, Value: e.value, PkScript: e.script.bytes, Height: e.height}, true
}

// AddressKeyOf returns the memoized address key of an unspent outpoint.
func (s *Set) AddressKeyOf(op btc.OutPoint) (string, bool) {
	e, ok := s.byOutPoint[op]
	if !ok {
		return "", false
	}
	return e.script.key, true
}

// BlockUndo records everything needed to unapply a block. Outputs both
// created and spent within the same block (in-block spend chains, routine
// in real Bitcoin) net to nothing and are excluded entirely: they are
// invisible in the post-apply state, so undo has nothing to reverse. (The
// old per-entry apply recorded such pairs in both lists, which made
// UnapplyBlock fail on any block containing one.)
type BlockUndo struct {
	// Spent holds the pre-existing UTXOs the block consumed, in
	// consumption order.
	Spent []UTXO
	// Created holds the outpoints of outputs the block added that were
	// still unspent at the end of the block, in insertion order.
	Created []btc.OutPoint
}

// ApplyStats reports the work done applying a block; the execution layer's
// metering consumes these to price block ingestion (Fig 6).
type ApplyStats struct {
	OutputsInserted int
	InputsRemoved   int
	BytesInserted   int
}

// ApplyBlock applies all transactions of a block at the given height:
// removes every spent input (except coinbase inputs) and inserts every
// created output. Transaction IDs come from the block's memoized table —
// they are computed once per block, not re-serialized per call site. It
// returns undo data and work statistics.
//
// The apply is batched: the block is first replayed against a staged view
// (no set mutation), then committed — spends as ordered removals,
// insertions grouped per address bucket so each bucket does one ordered
// merge instead of per-entry binary insertion, and undo entries carved from
// presized arenas. On error nothing was committed, so the set is left
// untouched (there is no rollback path to re-derive ScriptIDs on), and the
// first error in block order is reported exactly as the per-entry apply
// would have.
func (s *Set) ApplyBlock(block *btc.Block, height int64) (*BlockUndo, ApplyStats, error) {
	st := s.stageBlock(block, height, true)
	if st.err != nil {
		return nil, ApplyStats{}, fmt.Errorf("utxo: applying block at height %d: %w", height, st.err)
	}
	s.commitStage(st, height)
	stats := ApplyStats{
		OutputsInserted: len(st.inserts),
		InputsRemoved:   st.removed,
		BytesInserted:   st.bytesInserted,
	}
	// Undo holds the net effect only: pre-existing spends and surviving
	// creations; in-block created-and-spent pairs cancel.
	created := make([]btc.OutPoint, 0, len(st.liveIdx))
	for i := range st.inserts {
		if st.inserts[i].live {
			created = append(created, st.inserts[i].op)
		}
	}
	undo := &BlockUndo{Spent: st.spentBase, Created: created}
	return undo, stats, nil
}

// IngestStats reports the work of one tolerant block fold into the stable
// set — the counts the execution layer's metering prices (Fig 6). Outputs
// are classified by whether their locking script was interned at the moment
// that output was processed (insertions earlier in the same block count),
// exactly as the per-entry loop's ScriptInterned probe would have.
type IngestStats struct {
	// InputsRemoved counts removal attempts (every non-coinbase input;
	// metering charges the attempt, not the success).
	InputsRemoved int
	// OutputsInterned/OutputsFresh partition every output (including
	// skipped duplicates, which the per-entry loop also charged) by the
	// at-the-time interned status of its script.
	OutputsInterned int
	OutputsFresh    int
	// Errors counts tolerated failures: missing inputs plus duplicate
	// outputs, both skipped without touching the set.
	Errors int
}

// ApplyBlockIngest folds a block into the set tolerantly — the canister's
// stable-ingestion semantics: a missing input or duplicate output is
// counted and skipped rather than failing the block ("the canister trusts
// proof of work, not transaction validity"). The final state is identical
// to a per-entry Remove/Add loop that ignores individual errors, but
// insertions land in one ordered merge per address bucket. No undo data is
// built; the canister never rolls back below the anchor.
func (s *Set) ApplyBlockIngest(block *btc.Block, height int64) IngestStats {
	st := s.stageBlock(block, height, false)
	s.commitStage(st, height)
	return IngestStats{
		InputsRemoved:   st.inputsAttempted,
		OutputsInterned: st.outputsInterned,
		OutputsFresh:    st.outputsFresh,
		Errors:          st.errors,
	}
}

// stagedInsert is one successfully staged output creation.
type stagedInsert struct {
	op  btc.OutPoint
	out btc.TxOut
	// key is the derived address key (from the interned table when the
	// script is known, derived once per distinct script otherwise).
	key string
	// live is cleared when a later transaction in the same block spends the
	// output; only live inserts are committed.
	live bool
}

// blockStage is the virtual view a block is replayed against before any
// mutation touches the set.
type blockStage struct {
	// err is the first error in block order (strict mode only).
	err error

	// spentBase collects consumed pre-existing UTXOs in consumption order
	// (undo.Spent); removed counts every successful removal, staged spends
	// included (the stats figure).
	spentBase []UTXO
	removed   int
	// inserts collects every successful staged insertion, in order.
	inserts []stagedInsert
	// liveIdx maps a live staged outpoint to its index in inserts.
	liveIdx map[btc.OutPoint]int
	// removedBase lists base-set outpoints staged for removal, in order;
	// removedSet is its membership view.
	removedBase []btc.OutPoint
	removedSet  map[btc.OutPoint]bool
	// refDelta tracks the net interned-reference change per script so the
	// at-the-time interned classification matches the live-mutation loop.
	refDelta map[string]int
	// keys memoizes address-key derivations for scripts not interned yet.
	keys map[string]string

	bytesInserted   int
	inputsAttempted int
	outputsInterned int
	outputsFresh    int
	errors          int
}

// keyOf derives (memoized) the address key of a script during staging,
// reusing the interned table's stored key whenever the script is known.
func (st *blockStage) keyOf(s *Set, script []byte) string {
	if sc, ok := s.interned[string(script)]; ok {
		return sc.key
	}
	if key, ok := st.keys[string(script)]; ok {
		return key
	}
	key := btc.ScriptID(script, s.network)
	st.keys[string(script)] = key
	return key
}

// internedNow reports whether script is interned in the staged view: base
// references plus the staged delta.
func (st *blockStage) internedNow(s *Set, script []byte) bool {
	refs := st.refDelta[string(script)]
	if sc, ok := s.interned[string(script)]; ok {
		refs += sc.refs
	}
	return refs > 0
}

// stageBlock replays the block's transactions in order against the staged
// view. In strict mode the first failure stops the stage with err set; in
// tolerant mode failures are counted and skipped. The set itself is never
// touched.
func (s *Set) stageBlock(block *btc.Block, height int64, strict bool) *blockStage {
	nIn, nOut := 0, 0
	for _, tx := range block.Transactions {
		if !tx.IsCoinbase() {
			nIn += len(tx.Inputs)
		}
		nOut += len(tx.Outputs)
	}
	st := &blockStage{
		spentBase:  make([]UTXO, 0, nIn),
		inserts:    make([]stagedInsert, 0, nOut),
		liveIdx:    make(map[btc.OutPoint]int, nOut),
		removedSet: make(map[btc.OutPoint]bool, nIn),
		refDelta:   make(map[string]int, 8),
		keys:       make(map[string]string, 8),
	}
	txids := block.TxIDs()
	for ti, tx := range block.Transactions {
		if !tx.IsCoinbase() {
			for i := range tx.Inputs {
				op := tx.Inputs[i].PreviousOutPoint
				st.inputsAttempted++
				if idx, ok := st.liveIdx[op]; ok {
					// Spends an output created earlier in this block: the
					// pair nets out and never reaches the undo data.
					ins := &st.inserts[idx]
					ins.live = false
					delete(st.liveIdx, op)
					st.removed++
					st.refDelta[string(ins.out.PkScript)]--
					continue
				}
				if e, ok := s.byOutPoint[op]; ok && !st.removedSet[op] {
					st.removedSet[op] = true
					st.removedBase = append(st.removedBase, op)
					st.spentBase = append(st.spentBase, UTXO{OutPoint: op, Value: e.value, PkScript: e.script.bytes, Height: e.height})
					st.removed++
					st.refDelta[string(e.script.bytes)]--
					continue
				}
				if strict {
					st.err = fmt.Errorf("%w: %s", ErrMissingOutput, op)
					return st
				}
				st.errors++
			}
		}
		txid := txids[ti]
		for vout := range tx.Outputs {
			op := btc.OutPoint{TxID: txid, Vout: uint32(vout)}
			out := tx.Outputs[vout]
			if !strict {
				// Metering classification happens before the insert attempt,
				// as the per-entry loop's ScriptInterned probe did.
				if st.internedNow(s, out.PkScript) {
					st.outputsInterned++
				} else {
					st.outputsFresh++
				}
			}
			_, inBase := s.byOutPoint[op]
			_, inStaged := st.liveIdx[op]
			if (inBase && !st.removedSet[op]) || inStaged {
				if strict {
					st.err = fmt.Errorf("utxo: duplicate outpoint %s", op)
					return st
				}
				st.errors++
				continue
			}
			st.liveIdx[op] = len(st.inserts)
			st.inserts = append(st.inserts, stagedInsert{op: op, out: out, key: st.keyOf(s, out.PkScript), live: true})
			st.bytesInserted += len(out.PkScript) + 8
			st.refDelta[string(out.PkScript)]++
		}
	}
	return st
}

// commitStage applies a completed stage to the set: ordered base removals
// first, then the surviving insertions grouped per address bucket, each
// bucket merged in one pass. The resulting set — outpoint map, interned
// table and reference counts, bucket contents and balances, byte estimate —
// is identical to what the per-entry loop would have produced.
func (s *Set) commitStage(st *blockStage, height int64) {
	for _, op := range st.removedBase {
		// Remove reuses the stored address key; no script re-derivation.
		_, _ = s.Remove(op)
	}
	if len(st.liveIdx) == 0 {
		return
	}
	// Group surviving inserts by address key in first-insertion order.
	groups := make(map[string][]UTXO, len(st.keys)+len(st.liveIdx)/4+1)
	var order []string
	for i := range st.inserts {
		ins := &st.inserts[i]
		if !ins.live {
			continue
		}
		sc := s.internWithKey(ins.out.PkScript, ins.key)
		sc.refs++
		s.byOutPoint[ins.op] = entry{value: ins.out.Value, height: height, script: sc}
		s.approxBytes += int64(perUTXOOverhead + len(sc.bytes))
		if _, ok := groups[ins.key]; !ok {
			order = append(order, ins.key)
		}
		groups[ins.key] = append(groups[ins.key], UTXO{OutPoint: ins.op, Value: ins.out.Value, PkScript: sc.bytes, Height: height})
	}
	for _, key := range order {
		list := groups[key]
		// All entries share the block's height, so the canonical sort is
		// the storage order within the height group.
		SortUTXOs(list)
		b := s.byAddress[key]
		if b == nil {
			b = &bucket{}
			s.byAddress[key] = b
		}
		b.insertBatch(list)
		for i := range list {
			b.balance += list[i].Value
		}
	}
}

// UnapplyBlock reverses a previous ApplyBlock using its undo data: the
// surviving creations are removed, then the pre-existing spends restored.
// In-block created-and-spent pairs were netted out of the undo, so every
// Created outpoint is present and every Spent entry re-adds cleanly.
func (s *Set) UnapplyBlock(undo *BlockUndo) error {
	for i := len(undo.Created) - 1; i >= 0; i-- {
		if _, err := s.Remove(undo.Created[i]); err != nil {
			return fmt.Errorf("utxo: unapply remove: %w", err)
		}
	}
	for i := len(undo.Spent) - 1; i >= 0; i-- {
		u := undo.Spent[i]
		if err := s.Add(u.OutPoint, btc.TxOut{Value: u.Value, PkScript: u.PkScript}, u.Height); err != nil {
			return fmt.Errorf("utxo: unapply restore: %w", err)
		}
	}
	return nil
}

// Balance returns the total unspent value locked to an address key: the
// bucket's running total, maintained on Add/Remove — O(1), no bucket walk.
func (s *Set) Balance(addressKey string) int64 {
	b := s.byAddress[addressKey]
	if b == nil {
		return 0
	}
	return b.balance
}

// UTXOsForAddress returns all UTXOs for an address key sorted by height in
// descending order (the get_utxos contract: "sorted by block height in
// descending order, ensuring the correctness of the pagination mechanism"),
// with ties broken deterministically by outpoint. The bucket maintains its
// height groups in order incrementally, so the call streams the canonical
// order in one pass — no sort.
func (s *Set) UTXOsForAddress(addressKey string) []UTXO {
	b := s.byAddress[addressKey]
	if b == nil || len(b.asc) == 0 {
		return nil
	}
	out := make([]UTXO, 0, len(b.asc))
	it := s.AddressIter(addressKey)
	for u, ok := it.Next(); ok; u, ok = it.Next() {
		out = append(out, u)
	}
	return out
}

// AddressCount returns the number of distinct address keys with UTXOs.
func (s *Set) AddressCount() int { return len(s.byAddress) }

// ForEach visits every UTXO in unspecified order; visit returning false
// stops the walk.
func (s *Set) ForEach(visit func(UTXO) bool) {
	for op, e := range s.byOutPoint {
		if !visit(UTXO{OutPoint: op, Value: e.value, PkScript: e.script.bytes, Height: e.height}) {
			return
		}
	}
}
