package utxo

import (
	"bytes"
	"fmt"
	"testing"

	"icbtc/internal/btc"
	"icbtc/internal/statecodec"
)

func decodeSetParallel(t *testing.T, snap []byte, workers int) (*Set, error) {
	t.Helper()
	d, err := statecodec.NewDecoder(snap, codecTestMagic, codecTestVersion)
	if err != nil {
		t.Fatal(err)
	}
	s, err := DecodeSetParallel(d, workers)
	if err != nil {
		return nil, err
	}
	if err := d.Close(); err != nil {
		return nil, fmt.Errorf("close: %w", err)
	}
	return s, nil
}

// TestDecodeSetParallelEquivalence pins the sharded decoder to the serial
// one: identical re-encoded bytes (hence identical outpoint map, interned
// table, ordered buckets, balances, byte estimate) at every worker count,
// on set shapes from empty to many-bucket.
func TestDecodeSetParallelEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 7, 23} {
		s := buildRandomSet(seed, 600)
		snap := encodeSet(s)
		serial := decodeSet(t, snap)
		want := encodeSet(serial)
		for _, workers := range []int{1, 2, 3, 4, 8, 16} {
			got, err := decodeSetParallel(t, snap, workers)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if !bytes.Equal(encodeSet(got), want) {
				t.Fatalf("seed %d workers %d: parallel decode diverged from serial", seed, workers)
			}
			if got.Len() != serial.Len() || got.AddressCount() != serial.AddressCount() ||
				got.InternedScripts() != serial.InternedScripts() || got.ApproxBytes() != serial.ApproxBytes() {
				t.Fatalf("seed %d workers %d: derived counters diverged", seed, workers)
			}
		}
	}

	// Empty set round-trips too.
	empty := New(btc.Regtest)
	snap := encodeSet(empty)
	got, err := decodeSetParallel(t, snap, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.AddressCount() != 0 {
		t.Fatal("empty set decoded non-empty")
	}
}

// TestDecodeSetParallelRejectsCorruption flips every byte of a small
// snapshot's payload region and requires the parallel decoder to reject
// whatever the serial decoder rejects (the framing checksum catches most
// flips before either decoder runs; this exercises the structural checks
// via targeted truncations instead).
func TestDecodeSetParallelRejectsCorruption(t *testing.T) {
	s := buildRandomSet(5, 120)
	snap := encodeSet(s)

	// Truncations at every length (re-framed so the checksum passes and the
	// structural checks do the rejecting).
	payload := snap[len(codecTestMagic)+2 : len(snap)-4]
	for cut := 0; cut < len(payload); cut += 7 {
		e := statecodec.NewEncoder(codecTestMagic, codecTestVersion, cut)
		e.Raw(payload[:cut])
		reframed := e.Finish()

		_, errSerial := func() (*Set, error) {
			d, err := statecodec.NewDecoder(reframed, codecTestMagic, codecTestVersion)
			if err != nil {
				return nil, err
			}
			set, err := DecodeSet(d)
			if err != nil {
				return nil, err
			}
			return set, d.Close()
		}()
		_, errParallel := func() (*Set, error) {
			d, err := statecodec.NewDecoder(reframed, codecTestMagic, codecTestVersion)
			if err != nil {
				return nil, err
			}
			set, err := DecodeSetParallel(d, 4)
			if err != nil {
				return nil, err
			}
			return set, d.Close()
		}()
		if (errSerial == nil) != (errParallel == nil) {
			t.Fatalf("cut %d: accept/reject divergence: serial=%v parallel=%v", cut, errSerial, errParallel)
		}
	}
}
