package utxo

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"icbtc/internal/btc"
	"icbtc/internal/statecodec"
)

const (
	codecTestMagic   = "utxo-codec-test\n"
	codecTestVersion = uint16(1)
)

func encodeSet(s *Set) []byte {
	e := statecodec.NewEncoder(codecTestMagic, codecTestVersion, 0)
	s.EncodeTo(e)
	return e.Finish()
}

func decodeSet(t *testing.T, snap []byte) *Set {
	t.Helper()
	d, err := statecodec.NewDecoder(snap, codecTestMagic, codecTestVersion)
	if err != nil {
		t.Fatal(err)
	}
	s, err := DecodeSet(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	return s
}

// buildRandomSet assembles a set through the normal Add/Remove flow: many
// outputs over a small script population (deep buckets, shared interned
// scripts) with a share of them spent again.
func buildRandomSet(seed int64, outputs int) *Set {
	rng := rand.New(rand.NewSource(seed))
	s := New(btc.Regtest)
	scripts := make([][]byte, 12)
	for i := range scripts {
		var h [20]byte
		rng.Read(h[:])
		scripts[i] = btc.PayToPubKeyHashScript(h)
	}
	var added []btc.OutPoint
	for i := 0; i < outputs; i++ {
		var op btc.OutPoint
		rng.Read(op.TxID[:])
		op.Vout = uint32(rng.Intn(4))
		out := btc.TxOut{Value: 500 + int64(rng.Intn(100_000)), PkScript: scripts[rng.Intn(len(scripts))]}
		if err := s.Add(op, out, int64(1+rng.Intn(300))); err != nil {
			continue // rare duplicate outpoint draw
		}
		added = append(added, op)
	}
	for _, op := range added {
		if rng.Intn(3) == 0 {
			_, _ = s.Remove(op)
		}
	}
	return s
}

func assertSetsEqual(t *testing.T, want, got *Set) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("Len: got %d, want %d", got.Len(), want.Len())
	}
	if got.AddressCount() != want.AddressCount() {
		t.Fatalf("AddressCount: got %d, want %d", got.AddressCount(), want.AddressCount())
	}
	if got.InternedScripts() != want.InternedScripts() {
		t.Fatalf("InternedScripts: got %d, want %d", got.InternedScripts(), want.InternedScripts())
	}
	if got.ApproxBytes() != want.ApproxBytes() {
		t.Fatalf("ApproxBytes: got %d, want %d", got.ApproxBytes(), want.ApproxBytes())
	}
	if got.Network() != want.Network() {
		t.Fatalf("Network: got %v, want %v", got.Network(), want.Network())
	}
	for key, b := range want.byAddress {
		if got.Balance(key) != b.balance {
			t.Fatalf("balance[%s]: got %d, want %d", key, got.Balance(key), b.balance)
		}
		w, g := want.UTXOsForAddress(key), got.UTXOsForAddress(key)
		if len(w) != len(g) {
			t.Fatalf("bucket %s: got %d entries, want %d", key, len(g), len(w))
		}
		for i := range w {
			if w[i].OutPoint != g[i].OutPoint || w[i].Value != g[i].Value ||
				w[i].Height != g[i].Height || !bytes.Equal(w[i].PkScript, g[i].PkScript) {
				t.Fatalf("bucket %s entry %d: got %+v, want %+v", key, i, g[i], w[i])
			}
		}
	}
	want.ForEach(func(u UTXO) bool {
		g, ok := got.Get(u.OutPoint)
		if !ok {
			t.Fatalf("outpoint %s missing after decode", u.OutPoint)
		}
		if g.Value != u.Value || g.Height != u.Height || !bytes.Equal(g.PkScript, u.PkScript) {
			t.Fatalf("outpoint %s: got %+v, want %+v", u.OutPoint, g, u)
		}
		wk, _ := want.AddressKeyOf(u.OutPoint)
		gk, _ := got.AddressKeyOf(u.OutPoint)
		if wk != gk {
			t.Fatalf("outpoint %s: key %q, want %q", u.OutPoint, gk, wk)
		}
		return true
	})
}

func TestSetCodecRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		s := buildRandomSet(seed, 400)
		snap := encodeSet(s)
		restored := decodeSet(t, snap)
		assertSetsEqual(t, s, restored)
		// Determinism both ways: the same state encodes identically, and the
		// restored set reproduces the snapshot byte for byte.
		if !bytes.Equal(snap, encodeSet(s)) {
			t.Fatalf("seed %d: re-encoding the original changed bytes", seed)
		}
		if !bytes.Equal(snap, encodeSet(restored)) {
			t.Fatalf("seed %d: re-encoding the restored set changed bytes", seed)
		}
	}
}

func TestSetCodecEmpty(t *testing.T) {
	s := New(btc.Mainnet)
	restored := decodeSet(t, encodeSet(s))
	if restored.Len() != 0 || restored.AddressCount() != 0 || restored.Network() != btc.Mainnet {
		t.Fatalf("empty set did not round-trip: %d UTXOs, %d addresses", restored.Len(), restored.AddressCount())
	}
}

// TestSetDecodeUsesStoredKeys proves the O(bytes) restore property: the
// address key under which an entry is indexed comes from the snapshot, not
// from a ScriptID re-derivation. A handcrafted snapshot with a key that no
// derivation would produce must decode under exactly that key.
func TestSetDecodeUsesStoredKeys(t *testing.T) {
	script := btc.PayToPubKeyHashScript([20]byte{1, 2, 3})
	const storedKey = "stored-key-no-derivation-produces"
	if btc.ScriptID(script, btc.Regtest) == storedKey {
		t.Fatal("test key collides with the derived key")
	}
	var op btc.OutPoint
	op.TxID[0] = 9

	e := statecodec.NewEncoder(codecTestMagic, codecTestVersion, 0)
	e.U8(uint8(btc.Regtest))
	e.Uvarint(1) // total entries
	e.Uvarint(1) // one interned script
	e.Bytes(script)
	e.String(storedKey)
	e.Uvarint(1) // one bucket
	e.String(storedKey)
	e.Uvarint(1) // one entry
	e.Raw(op.TxID[:])
	e.U32(op.Vout)
	e.I64(777)
	e.I64(10)
	e.Uvarint(0)

	s := decodeSet(t, e.Finish())
	if got := s.Balance(storedKey); got != 777 {
		t.Fatalf("balance under stored key = %d, want 777", got)
	}
	if key, _ := s.AddressKeyOf(op); key != storedKey {
		t.Fatalf("entry key = %q, want the stored key", key)
	}
	if got := s.Balance(btc.ScriptID(script, btc.Regtest)); got != 0 {
		t.Fatal("decode re-derived the ScriptID instead of using the stored key")
	}
}

// TestSetDecodeRejectsMisorderedBucket: entries arrive in maintained storage
// order; decode appends without sorting but verifies the order, because a
// misordered bucket would serve wrong pages forever after.
func TestSetDecodeRejectsMisorderedBucket(t *testing.T) {
	script := btc.PayToPubKeyHashScript([20]byte{4})
	key := btc.ScriptID(script, btc.Regtest)
	e := statecodec.NewEncoder(codecTestMagic, codecTestVersion, 0)
	e.U8(uint8(btc.Regtest))
	e.Uvarint(2) // total entries
	e.Uvarint(1)
	e.Bytes(script)
	e.String(key)
	e.Uvarint(1)
	e.String(key)
	e.Uvarint(2)
	for _, height := range []int64{20, 10} { // descending: violates storage order
		var op btc.OutPoint
		op.TxID[0] = byte(height)
		e.Raw(op.TxID[:])
		e.U32(0)
		e.I64(1000)
		e.I64(height)
		e.Uvarint(0)
	}
	d, err := statecodec.NewDecoder(e.Finish(), codecTestMagic, codecTestVersion)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSet(d); err == nil {
		t.Fatal("decode accepted a misordered bucket")
	}
}

func TestSetDecodeRejectsBadScriptIndex(t *testing.T) {
	e := statecodec.NewEncoder(codecTestMagic, codecTestVersion, 0)
	e.U8(uint8(btc.Regtest))
	e.Uvarint(1) // total entries
	e.Uvarint(0) // no scripts
	e.Uvarint(1) // one bucket referencing script 0 anyway
	e.String("key")
	e.Uvarint(1)
	e.Raw(make([]byte, btc.HashSize))
	e.U32(0)
	e.I64(1)
	e.I64(1)
	e.Uvarint(0)
	d, err := statecodec.NewDecoder(e.Finish(), codecTestMagic, codecTestVersion)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSet(d); err == nil {
		t.Fatal("decode accepted an out-of-range script index")
	}
}

// deltaTestBlock builds a block with in-block nets, external spends, and
// repeated scripts, plus the resolver the canister would supply.
func deltaTestBlock(t *testing.T) (*btc.Block, OwnerResolver, map[btc.OutPoint]OwnedOutput) {
	t.Helper()
	scriptA := btc.PayToPubKeyHashScript([20]byte{0xaa})
	scriptB := btc.PayToPubKeyHashScript([20]byte{0xbb})
	external := map[btc.OutPoint]OwnedOutput{}
	var extOp btc.OutPoint
	extOp.TxID[0] = 0xee
	external[extOp] = OwnedOutput{AddressKey: btc.ScriptID(scriptA, btc.Regtest), Value: 5_000}

	coinbase := &btc.Transaction{
		Version: 2,
		Inputs:  []btc.TxIn{{PreviousOutPoint: btc.OutPoint{Vout: 0xffffffff}, SignatureScript: []byte{1, 2}}},
		Outputs: []btc.TxOut{{Value: 50_000, PkScript: scriptA}},
	}
	spendExt := &btc.Transaction{
		Version: 2,
		Inputs:  []btc.TxIn{{PreviousOutPoint: extOp}},
		Outputs: []btc.TxOut{{Value: 4_000, PkScript: scriptB}, {Value: 900, PkScript: scriptA}},
	}
	// Spend an output created earlier in this very block (nets out locally).
	inBlock := &btc.Transaction{
		Version: 2,
		Inputs:  []btc.TxIn{{PreviousOutPoint: btc.OutPoint{TxID: spendExt.TxID(), Vout: 0}}},
		Outputs: []btc.TxOut{{Value: 3_500, PkScript: scriptB}},
	}
	block := &btc.Block{Transactions: []*btc.Transaction{coinbase, spendExt, inBlock}}
	resolve := func(op btc.OutPoint) []OwnedOutput {
		if o, ok := external[op]; ok {
			return []OwnedOutput{o}
		}
		return nil
	}
	return block, resolve, external
}

func TestBlockDeltaCodecRoundTrip(t *testing.T) {
	block, resolve, _ := deltaTestBlock(t)
	delta := BuildBlockDelta(block, 42, btc.NewScriptIDCache(btc.Regtest), resolve)

	e := statecodec.NewEncoder(codecTestMagic, codecTestVersion, 0)
	EncodeBlockDelta(e, delta)
	snap := e.Finish()

	d, err := statecodec.NewDecoder(snap, codecTestMagic, codecTestVersion)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := DecodeBlockDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	if restored.Height() != delta.Height() || restored.Entries() != delta.Entries() ||
		restored.Addresses() != delta.Addresses() {
		t.Fatalf("delta scalars diverged: got (%d,%d,%d), want (%d,%d,%d)",
			restored.Height(), restored.Entries(), restored.Addresses(),
			delta.Height(), delta.Entries(), delta.Addresses())
	}
	for key := range delta.createdByAddr {
		w, g := delta.CreatedFor(key), restored.CreatedFor(key)
		if fmt.Sprint(w) != fmt.Sprint(g) {
			t.Fatalf("CreatedFor(%s): got %v, want %v", key, g, w)
		}
	}
	for key := range delta.spentByAddr {
		w, g := delta.SpentFor(key), restored.SpentFor(key)
		if fmt.Sprint(w) != fmt.Sprint(g) {
			t.Fatalf("SpentFor(%s): got %v, want %v", key, g, w)
		}
	}
	for op := range delta.createdByOp {
		if _, ok := restored.CreatedOutput(op); !ok {
			t.Fatalf("CreatedOutput(%s) missing after decode", op)
		}
	}

	// Re-encoding the restored delta reproduces the bytes.
	e2 := statecodec.NewEncoder(codecTestMagic, codecTestVersion, 0)
	EncodeBlockDelta(e2, restored)
	if !bytes.Equal(snap, e2.Finish()) {
		t.Fatal("re-encoding a restored delta changed bytes")
	}
}

// TestSetDecodeAllocations pins the restore hot path: decoding must stay a
// small constant number of allocations per UTXO (map inserts and bucket
// appends) — a regression past the budget means the O(bytes) restore grew
// re-derivation or re-sorting work.
func TestSetDecodeAllocations(t *testing.T) {
	s := buildRandomSet(7, 3000)
	snap := encodeSet(s)
	n := s.Len()
	avg := testing.AllocsPerRun(10, func() {
		d, err := statecodec.NewDecoder(snap, codecTestMagic, codecTestVersion)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeSet(d); err != nil {
			t.Fatal(err)
		}
	})
	perUTXO := avg / float64(n)
	if perUTXO > 4 {
		t.Fatalf("decode allocates %.2f per UTXO (%.0f total for %d), budget is 4", perUTXO, avg, n)
	}
}

// TestSetEncodeAllocations pins the snapshot writer: encoding allocates the
// sort scratch and the output buffer, not per-entry garbage.
func TestSetEncodeAllocations(t *testing.T) {
	s := buildRandomSet(8, 3000)
	n := s.Len()
	avg := testing.AllocsPerRun(10, func() {
		_ = encodeSet(s)
	})
	if perUTXO := avg / float64(n); perUTXO > 0.5 {
		t.Fatalf("encode allocates %.2f per UTXO (%.0f total for %d), budget is 0.5", perUTXO, avg, n)
	}
}

// TestSetDecodeRejectsHostileCounts: a checksum-valid snapshot is still
// untrusted input (fast-sync receives it from a peer, and the trailer is
// integrity-only); a tiny payload declaring 2^27 entries must be rejected
// at the count instead of driving a multi-GiB pre-allocation.
func TestSetDecodeRejectsHostileCounts(t *testing.T) {
	e := statecodec.NewEncoder(codecTestMagic, codecTestVersion, 0)
	e.U8(uint8(btc.Regtest))
	e.Uvarint(1 << 27) // declared total entries; payload holds none
	e.Uvarint(0)
	e.Uvarint(0)
	d, err := statecodec.NewDecoder(e.Finish(), codecTestMagic, codecTestVersion)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSet(d); err == nil {
		t.Fatal("decode accepted a count the payload cannot hold")
	}
}

// TestBlockDeltaDecodeRejectsDuplicateKeys: a crafted delta repeating an
// address key must fail loudly, not silently overwrite the first list
// while double-counting entries.
func TestBlockDeltaDecodeRejectsDuplicateKeys(t *testing.T) {
	e := statecodec.NewEncoder(codecTestMagic, codecTestVersion, 0)
	e.I64(9)     // height
	e.Uvarint(0) // no created lists
	e.Uvarint(2) // two spent lists under the same key
	for i := 0; i < 2; i++ {
		e.String("dup-key")
		e.Uvarint(1)
		var op btc.OutPoint
		op.TxID[0] = byte(i)
		e.Raw(op.TxID[:])
		e.U32(0)
		e.I64(5)
	}
	d, err := statecodec.NewDecoder(e.Finish(), codecTestMagic, codecTestVersion)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBlockDelta(d); err == nil {
		t.Fatal("decode accepted a delta with a duplicated address key")
	}
}
