package utxo

import "icbtc/internal/btc"

// Canonical get_utxos ordering (§III-C): height descending — newest blocks
// first — with ties broken by txid, then vout, so every replica paginates
// identically. This file holds the comparison helpers shared by the ordered
// address index, the pagination cursor, and the typed sorter.

// utxoBefore reports whether a strictly precedes b in canonical order.
func utxoBefore(a, b *UTXO) bool {
	if a.Height != b.Height {
		return a.Height > b.Height
	}
	if a.OutPoint.TxID != b.OutPoint.TxID {
		return lessHash(a.OutPoint.TxID, b.OutPoint.TxID)
	}
	return a.OutPoint.Vout < b.OutPoint.Vout
}

// SortUTXOs orders UTXOs canonically: height descending, then txid, then
// vout. The sorter is a hand-rolled introsort typed on []UTXO — unlike the
// reflection-based sort.Slice it needs no comparison closure and performs
// zero allocations, which matters to the overlay merge and the difftest
// oracle that sort on every request.
func SortUTXOs(u []UTXO) {
	if len(u) < 2 {
		return
	}
	// Depth limit 2·⌊log2 n⌋ switches to heapsort on adversarial pivots,
	// keeping the worst case O(n log n) like the stdlib.
	depth := 0
	for n := len(u); n > 0; n >>= 1 {
		depth += 2
	}
	introSortUTXOs(u, depth)
}

const insertionThreshold = 12

func introSortUTXOs(u []UTXO, depth int) {
	for len(u) > insertionThreshold {
		if depth == 0 {
			heapSortUTXOs(u)
			return
		}
		depth--
		p := partitionUTXOs(u)
		// Recurse into the smaller half, loop on the larger: O(log n) stack.
		if p < len(u)-p-1 {
			introSortUTXOs(u[:p], depth)
			u = u[p+1:]
		} else {
			introSortUTXOs(u[p+1:], depth)
			u = u[:p]
		}
	}
	insertionSortUTXOs(u)
}

// partitionUTXOs performs a Lomuto partition around a median-of-three
// pivot and returns the pivot's final index.
func partitionUTXOs(u []UTXO) int {
	m := len(u) / 2
	hi := len(u) - 1
	// Order u[0], u[m], u[hi]; the median lands in u[hi] as the pivot.
	if utxoBefore(&u[m], &u[0]) {
		u[m], u[0] = u[0], u[m]
	}
	if utxoBefore(&u[hi], &u[0]) {
		u[hi], u[0] = u[0], u[hi]
	}
	if utxoBefore(&u[m], &u[hi]) {
		u[m], u[hi] = u[hi], u[m]
	}
	pivot := u[hi]
	i := 0
	for j := 0; j < hi; j++ {
		if utxoBefore(&u[j], &pivot) {
			u[i], u[j] = u[j], u[i]
			i++
		}
	}
	u[i], u[hi] = u[hi], u[i]
	return i
}

func insertionSortUTXOs(u []UTXO) {
	for i := 1; i < len(u); i++ {
		for j := i; j > 0 && utxoBefore(&u[j], &u[j-1]); j-- {
			u[j], u[j-1] = u[j-1], u[j]
		}
	}
}

func heapSortUTXOs(u []UTXO) {
	n := len(u)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownUTXOs(u, i, n)
	}
	for i := n - 1; i > 0; i-- {
		u[0], u[i] = u[i], u[0]
		siftDownUTXOs(u, 0, i)
	}
}

func siftDownUTXOs(u []UTXO, root, n int) {
	for {
		child := 2*root + 1
		if child >= n {
			return
		}
		if child+1 < n && utxoBefore(&u[child], &u[child+1]) {
			child++
		}
		if !utxoBefore(&u[root], &u[child]) {
			return
		}
		u[root], u[child] = u[child], u[root]
		root = child
	}
}

func lessHash(a, b btc.Hash) bool {
	for i := btc.HashSize - 1; i >= 0; i-- {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
