package utxo

import (
	"errors"
	"math/rand"
	"testing"

	"icbtc/internal/btc"
)

// Property tests for the pagination cursor and the Page walk: the cursor
// must round-trip, and a full page walk must reproduce the canonical list
// exactly — no UTXO duplicated, none dropped — for any limit.

func randomCursor(rng *rand.Rand) pageCursor {
	var c pageCursor
	c.height = rng.Int63()
	rng.Read(c.op.TxID[:])
	c.op.Vout = rng.Uint32()
	return c
}

func TestCursorRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 2000; i++ {
		c := randomCursor(rng)
		got, err := decodeCursor(encodeCursor(c))
		if err != nil {
			t.Fatalf("round-trip %d: %v", i, err)
		}
		if got != c {
			t.Fatalf("round-trip %d: got %+v, want %+v", i, got, c)
		}
	}
}

// randomSortedUTXOs builds a canonically sorted list with deliberately
// heavy height collisions so tie-breaking is exercised.
func randomSortedUTXOs(rng *rand.Rand, n int) []UTXO {
	out := make([]UTXO, n)
	seen := make(map[btc.OutPoint]bool, n)
	for i := range out {
		var op btc.OutPoint
		for {
			rng.Read(op.TxID[:2]) // tiny keyspace → txid collisions across entries
			op.Vout = uint32(rng.Intn(3))
			if !seen[op] {
				seen[op] = true
				break
			}
		}
		out[i] = UTXO{
			OutPoint: op,
			Value:    int64(rng.Intn(10_000)),
			PkScript: []byte{0x76, byte(rng.Intn(4))},
			Height:   int64(rng.Intn(5)), // few distinct heights → many ties
		}
	}
	SortUTXOs(out)
	return out
}

func TestPageWalkNeverDuplicatesOrDrops(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(120)
		sorted := randomSortedUTXOs(rng, n)
		limit := 1 + rng.Intn(10)

		var walked []UTXO
		var token PageToken
		for pages := 0; ; pages++ {
			if pages > n+2 {
				t.Fatalf("trial %d: walk did not terminate", trial)
			}
			page, next, err := Page(sorted, token, limit)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if len(page) > limit {
				t.Fatalf("trial %d: page of %d exceeds limit %d", trial, len(page), limit)
			}
			walked = append(walked, page...)
			if next == nil {
				break
			}
			if len(page) == 0 {
				t.Fatalf("trial %d: empty page with non-nil continuation", trial)
			}
			token = next
		}
		if len(walked) != len(sorted) {
			t.Fatalf("trial %d: walked %d of %d UTXOs", trial, len(walked), len(sorted))
		}
		for i := range walked {
			if walked[i].OutPoint != sorted[i].OutPoint || walked[i].Height != sorted[i].Height {
				t.Fatalf("trial %d: position %d diverged: %+v vs %+v", trial, i, walked[i], sorted[i])
			}
		}
	}
}

func TestPageResumeIsStableUnderGrowth(t *testing.T) {
	// New UTXOs arriving ABOVE the cursor height (new blocks) must not
	// disturb resumption: the cursor identifies a position by (height,
	// outpoint), not by index.
	rng := rand.New(rand.NewSource(43))
	sorted := randomSortedUTXOs(rng, 50)
	first, token, err := Page(sorted, nil, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Prepend higher-height arrivals.
	grown := append(randomHigherUTXOs(rng, 10, 100), sorted...)
	SortUTXOs(grown)
	rest, _, err := Page(grown, token, 1000)
	if err != nil {
		t.Fatal(err)
	}
	want := sorted[len(first):]
	if len(rest) != len(want) {
		t.Fatalf("resumed %d, want %d", len(rest), len(want))
	}
	for i := range rest {
		if rest[i].OutPoint != want[i].OutPoint {
			t.Fatalf("resumption diverged at %d", i)
		}
	}
}

func randomHigherUTXOs(rng *rand.Rand, n int, baseHeight int64) []UTXO {
	out := make([]UTXO, n)
	for i := range out {
		var op btc.OutPoint
		rng.Read(op.TxID[:])
		out[i] = UTXO{OutPoint: op, Height: baseHeight + int64(i)}
	}
	return out
}

func TestMalformedPageTokensRejected(t *testing.T) {
	sorted := randomSortedUTXOs(rand.New(rand.NewSource(44)), 10)
	good := encodeCursor(pageCursor{height: 3})
	bad := [][]byte{
		{0x01},                               // far too short
		good[:len(good)-1],                   // truncated by one byte
		append(good, 0x00),                   // one byte too long
		make([]byte, 2*len(good)),            // wrong length entirely
		make([]byte, len(good)-btc.HashSize), // missing the txid
	}
	for i, tok := range bad {
		if _, _, err := Page(sorted, tok, 5); !errors.Is(err, ErrBadPageToken) {
			t.Errorf("token %d: got %v, want ErrBadPageToken", i, err)
		}
	}
	// Zero or negative limits are errors, not silent empties.
	if _, _, err := Page(sorted, nil, 0); err == nil {
		t.Error("limit 0 accepted")
	}
}
