package utxo

import (
	"bytes"
	"math/rand"
	"testing"

	"icbtc/internal/btc"
)

// applyBlockNaive is the per-entry reference the batched ApplyBlock is
// pinned against: the exact Remove/Add loop (with its Remove-then-re-Add
// rollback) the set used before the staged rewrite.
func applyBlockNaive(s *Set, block *btc.Block, height int64) (*BlockUndo, ApplyStats, error) {
	undo := &BlockUndo{}
	var stats ApplyStats
	rollback := func() {
		for i := len(undo.Created) - 1; i >= 0; i-- {
			_, _ = s.Remove(undo.Created[i])
		}
		for i := len(undo.Spent) - 1; i >= 0; i-- {
			u := undo.Spent[i]
			_ = s.Add(u.OutPoint, btc.TxOut{Value: u.Value, PkScript: u.PkScript}, u.Height)
		}
	}
	txids := block.TxIDs()
	for ti, tx := range block.Transactions {
		if !tx.IsCoinbase() {
			for i := range tx.Inputs {
				spent, err := s.Remove(tx.Inputs[i].PreviousOutPoint)
				if err != nil {
					rollback()
					return nil, ApplyStats{}, err
				}
				undo.Spent = append(undo.Spent, spent)
				stats.InputsRemoved++
			}
		}
		txid := txids[ti]
		for vout := range tx.Outputs {
			op := btc.OutPoint{TxID: txid, Vout: uint32(vout)}
			if err := s.Add(op, tx.Outputs[vout], height); err != nil {
				rollback()
				return nil, ApplyStats{}, err
			}
			undo.Created = append(undo.Created, op)
			stats.OutputsInserted++
			stats.BytesInserted += len(tx.Outputs[vout].PkScript) + 8
		}
	}
	return undo, stats, nil
}

// ingestNaive is the tolerant per-entry reference for ApplyBlockIngest: the
// canister's old stable-fold loop, including its before-the-attempt
// interned classification.
func ingestNaive(s *Set, block *btc.Block, height int64) IngestStats {
	var st IngestStats
	txids := block.TxIDs()
	for ti, tx := range block.Transactions {
		if !tx.IsCoinbase() {
			for i := range tx.Inputs {
				st.InputsRemoved++
				if _, err := s.Remove(tx.Inputs[i].PreviousOutPoint); err != nil {
					st.Errors++
				}
			}
		}
		txid := txids[ti]
		for vout := range tx.Outputs {
			if s.ScriptInterned(tx.Outputs[vout].PkScript) {
				st.OutputsInterned++
			} else {
				st.OutputsFresh++
			}
			op := btc.OutPoint{TxID: txid, Vout: uint32(vout)}
			if err := s.Add(op, tx.Outputs[vout], height); err != nil {
				st.Errors++
			}
		}
	}
	return st
}

// randomApplyBlock builds a random block over a population of scripts, spending
// from pool with replacement (double spends, aliens) — the difftest
// workload shape, plus occasional bursts that stress per-bucket merges.
func randomApplyBlock(rng *rand.Rand, scripts [][]byte, pool []btc.OutPoint) *btc.Block {
	blk := &btc.Block{}
	coin := &btc.Transaction{Version: 2, Inputs: []btc.TxIn{{
		PreviousOutPoint: btc.OutPoint{TxID: btc.ZeroHash, Vout: 0xffffffff},
		SignatureScript:  []byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))},
	}}, Outputs: []btc.TxOut{{Value: 5000, PkScript: scripts[rng.Intn(len(scripts))]}}}
	blk.Transactions = append(blk.Transactions, coin)
	for n := rng.Intn(6); n > 0; n-- {
		tx := &btc.Transaction{Version: 2}
		for k := 1 + rng.Intn(3); k > 0; k-- {
			if len(pool) > 0 && rng.Intn(3) > 0 {
				tx.Inputs = append(tx.Inputs, btc.TxIn{PreviousOutPoint: pool[rng.Intn(len(pool))]})
			} else {
				var fake btc.OutPoint
				rng.Read(fake.TxID[:])
				tx.Inputs = append(tx.Inputs, btc.TxIn{PreviousOutPoint: fake})
			}
		}
		outs := 1 + rng.Intn(3)
		if rng.Intn(8) == 0 {
			outs = 20 + rng.Intn(20) // burst: deep same-address bucket
		}
		script := scripts[rng.Intn(len(scripts))]
		for k := 0; k < outs; k++ {
			sc := script
			if rng.Intn(4) == 0 {
				sc = scripts[rng.Intn(len(scripts))]
			}
			tx.Outputs = append(tx.Outputs, btc.TxOut{Value: 500 + int64(rng.Intn(9000)), PkScript: sc})
		}
		blk.Transactions = append(blk.Transactions, tx)
	}
	return blk
}

// TestApplyBlockBatchedEquivalence drives the batched ApplyBlock and the
// per-entry reference through an identical random workload (tolerant
// ingest interleaved on separate sets) and requires byte-identical encoded
// state, identical undo data, stats, and errors at every block.
func TestApplyBlockBatchedEquivalence(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		scripts := make([][]byte, 6)
		for i := range scripts {
			var h [20]byte
			rng.Read(h[:])
			scripts[i] = btc.PayToAddrScript(btc.NewP2PKHAddress(h, btc.Regtest))
		}
		batched := New(btc.Regtest)
		naive := New(btc.Regtest)
		var pool []btc.OutPoint
		for height := int64(1); height <= 40; height++ {
			blk := randomApplyBlock(rng, scripts, pool)
			txids := blk.TxIDs()
			for ti, tx := range blk.Transactions {
				for v := range tx.Outputs {
					pool = append(pool, btc.OutPoint{TxID: txids[ti], Vout: uint32(v)})
				}
			}

			undoB, statsB, errB := batched.ApplyBlock(blk, height)
			undoN, statsN, errN := applyBlockNaive(naive, blk, height)
			if (errB == nil) != (errN == nil) {
				t.Fatalf("seed %d height %d: error divergence: batched=%v naive=%v", seed, height, errB, errN)
			}
			if errB == nil {
				if statsB != statsN {
					t.Fatalf("seed %d height %d: stats divergence: %+v vs %+v", seed, height, statsB, statsN)
				}
				if len(undoB.Spent) != len(undoN.Spent) || len(undoB.Created) != len(undoN.Created) {
					t.Fatalf("seed %d height %d: undo shape divergence", seed, height)
				}
				for i := range undoB.Spent {
					a, b := undoB.Spent[i], undoN.Spent[i]
					if a.OutPoint != b.OutPoint || a.Value != b.Value || a.Height != b.Height || !bytes.Equal(a.PkScript, b.PkScript) {
						t.Fatalf("seed %d height %d: undo.Spent[%d] diverged", seed, height, i)
					}
				}
				for i := range undoB.Created {
					if undoB.Created[i] != undoN.Created[i] {
						t.Fatalf("seed %d height %d: undo.Created[%d] diverged", seed, height, i)
					}
				}
			}
			if !bytes.Equal(encodeSet(batched), encodeSet(naive)) {
				t.Fatalf("seed %d height %d: encoded state diverged", seed, height)
			}
			// Unapply/reapply round trip keeps both in lockstep too.
			if errB == nil && rng.Intn(4) == 0 {
				if err := batched.UnapplyBlock(undoB); err != nil {
					t.Fatalf("seed %d height %d: unapply batched: %v", seed, height, err)
				}
				if err := naive.UnapplyBlock(undoN); err != nil {
					t.Fatalf("seed %d height %d: unapply naive: %v", seed, height, err)
				}
				if !bytes.Equal(encodeSet(batched), encodeSet(naive)) {
					t.Fatalf("seed %d height %d: post-unapply state diverged", seed, height)
				}
				if _, _, err := batched.ApplyBlock(blk, height); err != nil {
					t.Fatal(err)
				}
				if _, _, err := applyBlockNaive(naive, blk, height); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// TestApplyBlockIngestEquivalence pins the tolerant batched fold against
// the per-entry tolerant loop: identical final state and identical
// metering classification (interned vs fresh at processing time), across
// workloads full of missing inputs and duplicate outputs.
func TestApplyBlockIngestEquivalence(t *testing.T) {
	for seed := int64(100); seed < 106; seed++ {
		rng := rand.New(rand.NewSource(seed))
		scripts := make([][]byte, 5)
		for i := range scripts {
			var h [20]byte
			rng.Read(h[:])
			scripts[i] = btc.PayToAddrScript(btc.NewP2PKHAddress(h, btc.Regtest))
		}
		batched := New(btc.Regtest)
		naive := New(btc.Regtest)
		var pool []btc.OutPoint
		for height := int64(1); height <= 40; height++ {
			blk := randomApplyBlock(rng, scripts, pool)
			txids := blk.TxIDs()
			for ti, tx := range blk.Transactions {
				for v := range tx.Outputs {
					pool = append(pool, btc.OutPoint{TxID: txids[ti], Vout: uint32(v)})
				}
			}
			stB := batched.ApplyBlockIngest(blk, height)
			stN := ingestNaive(naive, blk, height)
			if stB != stN {
				t.Fatalf("seed %d height %d: ingest stats diverged: %+v vs %+v", seed, height, stB, stN)
			}
			if !bytes.Equal(encodeSet(batched), encodeSet(naive)) {
				t.Fatalf("seed %d height %d: encoded state diverged", seed, height)
			}
		}
	}
}

// TestApplyBlockMidBlockFailure is the satellite regression: a block that
// fails mid-way (earlier transactions already created outputs and spent
// inputs) must leave the set — outpoint map, address index, interned
// scripts, balances — byte-identical to the pre-apply state, with no
// ScriptID re-derivation on any rollback path (there is none to take).
func TestApplyBlockMidBlockFailure(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var h1, h2 [20]byte
	rng.Read(h1[:])
	rng.Read(h2[:])
	scriptA := btc.PayToAddrScript(btc.NewP2PKHAddress(h1, btc.Regtest))
	scriptB := btc.PayToAddrScript(btc.NewP2PKHAddress(h2, btc.Regtest))

	s := New(btc.Regtest)
	var seedOps []btc.OutPoint
	for i := 0; i < 10; i++ {
		var op btc.OutPoint
		rng.Read(op.TxID[:])
		seedOps = append(seedOps, op)
		if err := s.Add(op, btc.TxOut{Value: 1000 + int64(i), PkScript: scriptA}, 1); err != nil {
			t.Fatal(err)
		}
	}
	before := encodeSet(s)
	beforeLen, beforeInterned := s.Len(), s.InternedScripts()

	var missing btc.OutPoint
	rng.Read(missing.TxID[:])
	blk := &btc.Block{Transactions: []*btc.Transaction{
		{Version: 2, Inputs: []btc.TxIn{{PreviousOutPoint: btc.OutPoint{TxID: btc.ZeroHash, Vout: 0xffffffff}}},
			Outputs: []btc.TxOut{{Value: 5000, PkScript: scriptB}}},
		// Spends real outputs and creates new ones for a brand-new script.
		{Version: 2, Inputs: []btc.TxIn{{PreviousOutPoint: seedOps[0]}, {PreviousOutPoint: seedOps[1]}},
			Outputs: []btc.TxOut{{Value: 100, PkScript: scriptB}, {Value: 200, PkScript: scriptB}}},
		// Fails: spends an outpoint the set never held.
		{Version: 2, Inputs: []btc.TxIn{{PreviousOutPoint: missing}},
			Outputs: []btc.TxOut{{Value: 300, PkScript: scriptA}}},
	}}

	undo, stats, err := s.ApplyBlock(blk, 2)
	if err == nil {
		t.Fatal("mid-block failure not reported")
	}
	if undo != nil || stats != (ApplyStats{}) {
		t.Fatalf("failed apply returned undo=%v stats=%+v", undo, stats)
	}
	if got := encodeSet(s); !bytes.Equal(before, got) {
		t.Fatal("failed apply left the set changed: encoded state differs from pre-apply state")
	}
	if s.Len() != beforeLen || s.InternedScripts() != beforeInterned {
		t.Fatalf("failed apply leaked state: len %d->%d, interned %d->%d",
			beforeLen, s.Len(), beforeInterned, s.InternedScripts())
	}
	// scriptB must not have been interned by the failed block.
	if s.ScriptInterned(scriptB) {
		t.Fatal("failed apply interned a script from an uncommitted block")
	}
}

// TestApplyBlockInBlockSpendChain: a block whose later transaction spends
// an output an earlier transaction in the same block created (routine in
// real Bitcoin) must apply, and — the regression — unapply back to a
// byte-identical pre-apply state. The old per-entry apply recorded such
// pairs in both undo lists, which made UnapplyBlock fail on the Created
// removal; netted undo excludes the pair entirely.
func TestApplyBlockInBlockSpendChain(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var h1, h2 [20]byte
	rng.Read(h1[:])
	rng.Read(h2[:])
	scriptA := btc.PayToAddrScript(btc.NewP2PKHAddress(h1, btc.Regtest))
	scriptB := btc.PayToAddrScript(btc.NewP2PKHAddress(h2, btc.Regtest))

	s := New(btc.Regtest)
	var base btc.OutPoint
	rng.Read(base.TxID[:])
	if err := s.Add(base, btc.TxOut{Value: 7000, PkScript: scriptA}, 1); err != nil {
		t.Fatal(err)
	}
	before := encodeSet(s)

	tx1 := &btc.Transaction{Version: 2,
		Inputs:  []btc.TxIn{{PreviousOutPoint: btc.OutPoint{TxID: btc.ZeroHash, Vout: 0xffffffff}}},
		Outputs: []btc.TxOut{{Value: 5000, PkScript: scriptB}, {Value: 100, PkScript: scriptA}}}
	// tx2 spends tx1's first output AND a pre-existing one, creating fresh
	// outputs — the chained shape.
	tx2 := &btc.Transaction{Version: 2,
		Inputs: []btc.TxIn{
			{PreviousOutPoint: btc.OutPoint{TxID: tx1.TxID(), Vout: 0}},
			{PreviousOutPoint: base},
		},
		Outputs: []btc.TxOut{{Value: 4000, PkScript: scriptB}}}
	blk := &btc.Block{Transactions: []*btc.Transaction{tx1, tx2}}

	undo, stats, err := s.ApplyBlock(blk, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.OutputsInserted != 3 || stats.InputsRemoved != 2 {
		t.Fatalf("stats %+v, want 3 inserts / 2 removes", stats)
	}
	// Netted undo: the chained output never appears; the surviving two do.
	if len(undo.Created) != 2 || len(undo.Spent) != 1 || undo.Spent[0].OutPoint != base {
		t.Fatalf("undo shape: %d created, %d spent", len(undo.Created), len(undo.Spent))
	}
	// The chained output must be gone, its siblings present.
	if _, ok := s.Get(btc.OutPoint{TxID: tx1.TxID(), Vout: 0}); ok {
		t.Fatal("in-block-spent output still in set")
	}
	if _, ok := s.Get(btc.OutPoint{TxID: tx2.TxID(), Vout: 0}); !ok {
		t.Fatal("chained transaction's output missing")
	}

	if err := s.UnapplyBlock(undo); err != nil {
		t.Fatalf("unapply of in-block spend chain: %v", err)
	}
	if got := encodeSet(s); !bytes.Equal(before, got) {
		t.Fatal("unapply did not restore the pre-apply state byte-identically")
	}
}

// TestBucketInsertBatch drives the one-pass merge against per-entry
// insertion across random batch shapes (appends, interleavings, single
// heights, mixed heights).
func TestBucketInsertBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 300; iter++ {
		var a, b bucket
		n := rng.Intn(30)
		for i := 0; i < n; i++ {
			u := UTXO{Height: int64(rng.Intn(6)), Value: int64(i)}
			rng.Read(u.OutPoint.TxID[:])
			u.OutPoint.Vout = uint32(rng.Intn(3))
			a.insert(u)
			b.insert(u)
		}
		m := 1 + rng.Intn(20)
		batch := make([]UTXO, 0, m)
		h := int64(rng.Intn(8)) // often above existing heights, sometimes interleaved
		for i := 0; i < m; i++ {
			u := UTXO{Height: h, Value: int64(100 + i)}
			if rng.Intn(4) == 0 {
				u.Height = int64(rng.Intn(8))
			}
			rng.Read(u.OutPoint.TxID[:])
			u.OutPoint.Vout = uint32(rng.Intn(3))
			// Skip accidental duplicates against existing or batch entries.
			dup := false
			for k := range a.asc {
				if a.asc[k].OutPoint == u.OutPoint && a.asc[k].Height == u.Height {
					dup = true
				}
			}
			for k := range batch {
				if batch[k].OutPoint == u.OutPoint && batch[k].Height == u.Height {
					dup = true
				}
			}
			if dup {
				continue
			}
			batch = append(batch, u)
		}
		if len(batch) == 0 {
			continue
		}
		// insertBatch wants storage order (height ascending).
		sorted := append([]UTXO(nil), batch...)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && storageLess(&sorted[j], &sorted[j-1]); j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		a.insertBatch(sorted)
		for _, u := range batch {
			b.insert(u)
		}
		if len(a.asc) != len(b.asc) {
			t.Fatalf("iter %d: lengths %d vs %d", iter, len(a.asc), len(b.asc))
		}
		for i := range a.asc {
			if a.asc[i].OutPoint != b.asc[i].OutPoint || a.asc[i].Height != b.asc[i].Height || a.asc[i].Value != b.asc[i].Value {
				t.Fatalf("iter %d: entry %d diverged", iter, i)
			}
		}
	}
}
