package utxo

import (
	"icbtc/internal/btc"
)

// Incremental unstable-state overlay (read-path optimization). The naive
// get_utxos/get_balance implementation replays every unstable block for
// every request, so query cost grows linearly with δ (§III-C notes exactly
// this complexity). A BlockDelta is the address-indexed net effect of one
// unstable block, computed once when the block is attached to the header
// tree; the read path then merges the stable set with the chain of per-block
// deltas for just the queried address instead of rescanning full blocks.

// BlockDelta is the address-indexed delta of one block: the outputs it
// created (net of outputs it created and spent itself) and the pre-existing
// outpoints it spent attributed to their owning addresses. A delta is
// immutable once built.
type BlockDelta struct {
	height int64

	// createdByAddr holds surviving created outputs per address key, in
	// block order (the canonical order the naive replay would add them).
	createdByAddr map[string][]UTXO
	// spentByAddr holds spent pre-existing outpoints per owning address.
	// The same outpoint may appear more than once (redundant double spends
	// inside one block); merge deletion is idempotent, matching replay.
	spentByAddr map[string][]SpentOutPoint
	// createdByOp indexes the surviving created outputs by outpoint so
	// descendant blocks can resolve the owner of an outpoint they spend.
	createdByOp map[btc.OutPoint]UTXO

	entries int
}

// SpentOutPoint is one spent pre-existing outpoint with its value, kept so
// balance deltas can be derived without a second lookup.
type SpentOutPoint struct {
	OutPoint btc.OutPoint
	Value    int64
}

// Height returns the block height the delta was computed at.
func (d *BlockDelta) Height() int64 { return d.height }

// Entries returns the total number of created + spent entries, the size
// metric the execution layer's metering charges per applied entry.
func (d *BlockDelta) Entries() int { return d.entries }

// Addresses returns how many distinct address keys the delta touches.
func (d *BlockDelta) Addresses() int {
	seen := make(map[string]struct{}, len(d.createdByAddr)+len(d.spentByAddr))
	for a := range d.createdByAddr {
		seen[a] = struct{}{}
	}
	for a := range d.spentByAddr {
		seen[a] = struct{}{}
	}
	return len(seen)
}

// CreatedFor returns the surviving outputs the block created for an address
// key, in block order. The returned slice is shared; callers must not
// mutate it.
func (d *BlockDelta) CreatedFor(addressKey string) []UTXO { return d.createdByAddr[addressKey] }

// SpentFor returns the pre-existing outpoints the block spent that are
// attributed to an address key. The returned slice is shared.
func (d *BlockDelta) SpentFor(addressKey string) []SpentOutPoint { return d.spentByAddr[addressKey] }

// CreatedOutput resolves an outpoint this block created (and did not itself
// spend), for descendant-delta owner attribution.
func (d *BlockDelta) CreatedOutput(op btc.OutPoint) (UTXO, bool) {
	u, ok := d.createdByOp[op]
	return u, ok
}

// OwnerResolver attributes a spent outpoint to the address keys whose views
// may contain it at the time the delta's block is processed: the stable
// set's owner and/or an unstable ancestor block that created it. Returning
// no owners means the spend is a no-op for every address view (an alien or
// already-folded input), exactly as the naive replay's unconditional map
// delete would be.
type OwnerResolver func(op btc.OutPoint) []OwnedOutput

// OwnedOutput is one resolution result: the address key owning the outpoint
// and the output's value (for balance deltas).
type OwnedOutput struct {
	AddressKey string
	Value      int64
}

// BuildBlockDelta computes the address-indexed delta of one block. It
// replays the block's transactions in order — exactly the order the naive
// read path would — netting out outputs created and spent within the block,
// and attributes external spends through resolve. Transaction IDs come from
// the block's memoized table and address keys from the shared ScriptID
// cache, so neither is re-derived per output.
func BuildBlockDelta(block *btc.Block, height int64, ids *btc.ScriptIDCache, resolve OwnerResolver) *BlockDelta {
	d := &BlockDelta{
		height:        height,
		createdByAddr: make(map[string][]UTXO),
		spentByAddr:   make(map[string][]SpentOutPoint),
		createdByOp:   make(map[btc.OutPoint]UTXO),
	}
	// createdOrder preserves block order for the per-address created lists.
	var createdOrder []btc.OutPoint
	txids := block.TxIDs()
	for ti, tx := range block.Transactions {
		if !tx.IsCoinbase() {
			for i := range tx.Inputs {
				op := tx.Inputs[i].PreviousOutPoint
				if _, inBlock := d.createdByOp[op]; inBlock {
					// Created earlier in this very block: net the pair out
					// locally; it never becomes visible to any view.
					delete(d.createdByOp, op)
				}
				// Attribute the spend to every owner whose merged view could
				// currently contain the outpoint. Deletion is idempotent at
				// merge time, so over-attribution cannot skew the view.
				for _, owner := range resolve(op) {
					d.spentByAddr[owner.AddressKey] = append(d.spentByAddr[owner.AddressKey],
						SpentOutPoint{OutPoint: op, Value: owner.Value})
				}
			}
		}
		txid := txids[ti]
		for vout := range tx.Outputs {
			op := btc.OutPoint{TxID: txid, Vout: uint32(vout)}
			d.createdByOp[op] = UTXO{
				OutPoint: op,
				Value:    tx.Outputs[vout].Value,
				PkScript: tx.Outputs[vout].PkScript,
				Height:   height,
			}
			createdOrder = append(createdOrder, op)
		}
	}
	// Index the surviving creations by address, in block order. A repeated
	// outpoint (a transaction duplicated inside the block) is emitted once.
	emitted := make(map[btc.OutPoint]bool, len(d.createdByOp))
	for _, op := range createdOrder {
		u, ok := d.createdByOp[op]
		if !ok || emitted[op] {
			continue // netted out by an in-block spend, or already emitted
		}
		emitted[op] = true
		key := ids.ID(u.PkScript)
		d.createdByAddr[key] = append(d.createdByAddr[key], u)
	}
	for _, c := range d.createdByAddr {
		d.entries += len(c)
	}
	for _, s := range d.spentByAddr {
		d.entries += len(s)
	}
	return d
}

// EntriesFor returns how many created + spent entries the delta holds for
// one address key — the per-delta work a merged read performs.
func (d *BlockDelta) EntriesFor(addressKey string) int {
	return len(d.createdByAddr[addressKey]) + len(d.spentByAddr[addressKey])
}
