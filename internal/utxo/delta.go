package utxo

import (
	"icbtc/internal/btc"
)

// Incremental unstable-state overlay (read-path optimization). The naive
// get_utxos/get_balance implementation replays every unstable block for
// every request, so query cost grows linearly with δ (§III-C notes exactly
// this complexity). A BlockDelta is the address-indexed net effect of one
// unstable block, computed once when the block is attached to the header
// tree; the read path then merges the stable set with the chain of per-block
// deltas for just the queried address instead of rescanning full blocks.

// BlockDelta is the address-indexed delta of one block: the outputs it
// created (net of outputs it created and spent itself) and the pre-existing
// outpoints it spent attributed to their owning addresses. A delta is
// immutable once built.
type BlockDelta struct {
	height int64

	// createdByAddr holds surviving created outputs per address key, in
	// block order (the canonical order the naive replay would add them).
	createdByAddr map[string][]UTXO
	// spentByAddr holds spent pre-existing outpoints per owning address.
	// The same outpoint may appear more than once (redundant double spends
	// inside one block); merge deletion is idempotent, matching replay.
	spentByAddr map[string][]SpentOutPoint
	// createdByOp indexes the surviving created outputs by outpoint so
	// descendant blocks can resolve the owner of an outpoint they spend.
	createdByOp map[btc.OutPoint]UTXO

	entries int
}

// SpentOutPoint is one spent pre-existing outpoint with its value, kept so
// balance deltas can be derived without a second lookup.
type SpentOutPoint struct {
	OutPoint btc.OutPoint
	Value    int64
}

// Height returns the block height the delta was computed at.
func (d *BlockDelta) Height() int64 { return d.height }

// Entries returns the total number of created + spent entries, the size
// metric the execution layer's metering charges per applied entry.
func (d *BlockDelta) Entries() int { return d.entries }

// Addresses returns how many distinct address keys the delta touches.
func (d *BlockDelta) Addresses() int {
	seen := make(map[string]struct{}, len(d.createdByAddr)+len(d.spentByAddr))
	for a := range d.createdByAddr {
		seen[a] = struct{}{}
	}
	for a := range d.spentByAddr {
		seen[a] = struct{}{}
	}
	return len(seen)
}

// CreatedFor returns the surviving outputs the block created for an address
// key, in block order. The returned slice is shared; callers must not
// mutate it.
func (d *BlockDelta) CreatedFor(addressKey string) []UTXO { return d.createdByAddr[addressKey] }

// SpentFor returns the pre-existing outpoints the block spent that are
// attributed to an address key. The returned slice is shared.
func (d *BlockDelta) SpentFor(addressKey string) []SpentOutPoint { return d.spentByAddr[addressKey] }

// CreatedOutput resolves an outpoint this block created (and did not itself
// spend), for descendant-delta owner attribution.
func (d *BlockDelta) CreatedOutput(op btc.OutPoint) (UTXO, bool) {
	u, ok := d.createdByOp[op]
	return u, ok
}

// OwnerResolver attributes a spent outpoint to the address keys whose views
// may contain it at the time the delta's block is processed: the stable
// set's owner and/or an unstable ancestor block that created it. Returning
// no owners means the spend is a no-op for every address view (an alien or
// already-folded input), exactly as the naive replay's unconditional map
// delete would be.
type OwnerResolver func(op btc.OutPoint) []OwnedOutput

// OwnedOutput is one resolution result: the address key owning the outpoint
// and the output's value (for balance deltas).
type OwnedOutput struct {
	AddressKey string
	Value      int64
}

// PreparedDelta is the state-independent half of a BlockDelta: everything
// derivable from the block alone — the surviving created outputs (netted
// against in-block spends), their address-keyed lists, and the ordered list
// of inputs still needing owner attribution against live state. The ingest
// pipeline builds PreparedDeltas on worker goroutines ahead of sequential
// application; Finish then binds one to the state it applies at.
//
// A PreparedDelta is single-use: Finish transfers its maps into the
// resulting BlockDelta.
type PreparedDelta struct {
	height        int64
	createdByAddr map[string][]UTXO
	createdByOp   map[btc.OutPoint]UTXO
	// spends holds every non-coinbase input outpoint in block order — the
	// order the serial path would resolve them in.
	spends []btc.OutPoint
}

// Height returns the block height the delta was prepared at.
func (p *PreparedDelta) Height() int64 { return p.height }

// PrepareBlockDelta computes the state-independent half of a block's delta.
// It is a pure function of the block (plus the memoized address-key
// derivation), so it can run on any goroutine: pipeline workers call it
// with worker-local ScriptIDCaches and hand the result to the sequential
// applier.
func PrepareBlockDelta(block *btc.Block, height int64, ids *btc.ScriptIDCache) *PreparedDelta {
	nOut, nIn := 0, 0
	for _, tx := range block.Transactions {
		nOut += len(tx.Outputs)
		if !tx.IsCoinbase() {
			nIn += len(tx.Inputs)
		}
	}
	p := &PreparedDelta{
		height:        height,
		createdByAddr: make(map[string][]UTXO, 8),
		createdByOp:   make(map[btc.OutPoint]UTXO, nOut),
		spends:        make([]btc.OutPoint, 0, nIn),
	}
	// createdOrder preserves block order for the per-address created lists.
	createdOrder := make([]btc.OutPoint, 0, nOut)
	txids := block.TxIDs()
	for ti, tx := range block.Transactions {
		if !tx.IsCoinbase() {
			for i := range tx.Inputs {
				op := tx.Inputs[i].PreviousOutPoint
				if _, inBlock := p.createdByOp[op]; inBlock {
					// Created earlier in this very block: net the pair out
					// locally; it never becomes visible to any view.
					delete(p.createdByOp, op)
				}
				// Owner attribution needs live state; defer it to Finish, in
				// this exact order.
				p.spends = append(p.spends, op)
			}
		}
		txid := txids[ti]
		for vout := range tx.Outputs {
			op := btc.OutPoint{TxID: txid, Vout: uint32(vout)}
			p.createdByOp[op] = UTXO{
				OutPoint: op,
				Value:    tx.Outputs[vout].Value,
				PkScript: tx.Outputs[vout].PkScript,
				Height:   height,
			}
			createdOrder = append(createdOrder, op)
		}
	}
	// Index the surviving creations by address, in block order. A repeated
	// outpoint (a transaction duplicated inside the block) is emitted once.
	emitted := make(map[btc.OutPoint]bool, len(p.createdByOp))
	for _, op := range createdOrder {
		u, ok := p.createdByOp[op]
		if !ok || emitted[op] {
			continue // netted out by an in-block spend, or already emitted
		}
		emitted[op] = true
		key := ids.ID(u.PkScript)
		p.createdByAddr[key] = append(p.createdByAddr[key], u)
	}
	return p
}

// Finish attributes the prepared delta's external spends through resolve
// and returns the completed BlockDelta — byte-identical to what
// BuildBlockDelta would produce on the same state, because resolve is
// independent of the delta under construction and the spend order is
// preserved. Must run on the applier goroutine (resolve reads live state).
func (p *PreparedDelta) Finish(resolve OwnerResolver) *BlockDelta {
	d := &BlockDelta{
		height:        p.height,
		createdByAddr: p.createdByAddr,
		spentByAddr:   make(map[string][]SpentOutPoint),
		createdByOp:   p.createdByOp,
	}
	for _, op := range p.spends {
		// Attribute the spend to every owner whose merged view could
		// currently contain the outpoint. Deletion is idempotent at merge
		// time, so over-attribution cannot skew the view.
		for _, owner := range resolve(op) {
			d.spentByAddr[owner.AddressKey] = append(d.spentByAddr[owner.AddressKey],
				SpentOutPoint{OutPoint: op, Value: owner.Value})
		}
	}
	for _, c := range d.createdByAddr {
		d.entries += len(c)
	}
	for _, s := range d.spentByAddr {
		d.entries += len(s)
	}
	return d
}

// BuildBlockDelta computes the address-indexed delta of one block. It
// replays the block's transactions in order — exactly the order the naive
// read path would — netting out outputs created and spent within the block,
// and attributes external spends through resolve. Transaction IDs come from
// the block's memoized table and address keys from the shared ScriptID
// cache, so neither is re-derived per output. Equivalent to
// PrepareBlockDelta followed by Finish — the serial path and the pipelined
// path share this exact code.
func BuildBlockDelta(block *btc.Block, height int64, ids *btc.ScriptIDCache, resolve OwnerResolver) *BlockDelta {
	return PrepareBlockDelta(block, height, ids).Finish(resolve)
}

// EntriesFor returns how many created + spent entries the delta holds for
// one address key — the per-delta work a merged read performs.
func (d *BlockDelta) EntriesFor(addressKey string) int {
	return len(d.createdByAddr[addressKey]) + len(d.spentByAddr[addressKey])
}
