package utxo

import (
	"fmt"
	"sort"

	"icbtc/internal/btc"
)

// Ordered address index. Each address bucket keeps its UTXOs in a slice
// sorted ascending by (height, txid, vout). Ingestion order matches this
// order almost everywhere — heights ascend block over block and a
// transaction's outputs arrive vout-ascending — so inserts are appends (or
// short moves within one height group), never head-of-slice shifts. The
// canonical get_utxos order (height *descending*, txid/vout ascending) is
// streamed by walking the height groups back-to-front while emitting each
// group forward; a running balance total makes the stable part of
// get_balance O(1).

// bucket is the per-address ordered container plus its running balance.
type bucket struct {
	// asc is sorted by storageLess.
	asc     []UTXO
	balance int64
}

// storageLess is the bucket's storage order: height ascending with the
// canonical txid/vout tie-break. Within one height group the storage order
// IS the canonical order.
func storageLess(a, b *UTXO) bool {
	if a.Height != b.Height {
		return a.Height < b.Height
	}
	if a.OutPoint.TxID != b.OutPoint.TxID {
		return lessHash(a.OutPoint.TxID, b.OutPoint.TxID)
	}
	return a.OutPoint.Vout < b.OutPoint.Vout
}

// insert places u at its ordered position. Outputs arrive overwhelmingly in
// storage order (ascending heights, ascending vouts), so the append fast
// path is checked before the binary search.
func (b *bucket) insert(u UTXO) {
	n := len(b.asc)
	if n == 0 || storageLess(&b.asc[n-1], &u) {
		b.asc = append(b.asc, u)
		return
	}
	i := sort.Search(n, func(i int) bool { return storageLess(&u, &b.asc[i]) })
	b.asc = append(b.asc, UTXO{})
	copy(b.asc[i+1:], b.asc[i:])
	b.asc[i] = u
}

// insertBatch merges a batch of new entries, sorted by storageLess, into
// the bucket in one pass: one grow, one backward merge — instead of a
// binary search plus memmove per entry, which made deep buckets quadratic
// in the batch size. Batches from a block fold share one height, but the
// merge handles arbitrary sorted input.
func (b *bucket) insertBatch(us []UTXO) {
	old := len(b.asc)
	if old == 0 || storageLess(&b.asc[old-1], &us[0]) {
		// Everything lands after the existing entries — the common case:
		// block heights ascend, so a fold appends.
		b.asc = append(b.asc, us...)
		return
	}
	b.asc = append(b.asc, us...)
	// Backward in-place merge: keys are unique (outpoints), so stability is
	// moot and strict less suffices.
	i, j := old-1, len(us)-1
	for k := len(b.asc) - 1; j >= 0; k-- {
		if i >= 0 && storageLess(&us[j], &b.asc[i]) {
			b.asc[k] = b.asc[i]
			i--
		} else {
			b.asc[k] = us[j]
			j--
		}
	}
}

// remove deletes the element with the given outpoint and height, reporting
// whether it was present.
func (b *bucket) remove(op btc.OutPoint, height int64) bool {
	probe := UTXO{OutPoint: op, Height: height}
	n := len(b.asc)
	i := sort.Search(n, func(i int) bool { return !storageLess(&b.asc[i], &probe) })
	if i >= n || b.asc[i].OutPoint != op || b.asc[i].Height != height {
		return false
	}
	copy(b.asc[i:], b.asc[i+1:])
	b.asc[n-1] = UTXO{}
	b.asc = b.asc[:n-1]
	return true
}

// AddressIter streams one address's stable UTXOs in canonical
// (height-descending) order: height groups are visited from the top of the
// storage slice downwards, each group emitted forward (its storage order is
// already canonical). The zero value is an exhausted iterator.
type AddressIter struct {
	asc []UTXO
	// cur indexes the next element of the current group [groupStart,
	// groupEnd); when the group is exhausted the iterator advances to the
	// group ending at groupStart.
	cur, groupEnd, groupStart int
}

// Next returns the next UTXO in canonical order.
func (it *AddressIter) Next() (UTXO, bool) {
	if it.cur >= it.groupEnd {
		if it.groupStart == 0 {
			return UTXO{}, false
		}
		it.groupEnd = it.groupStart
		h := it.asc[it.groupEnd-1].Height
		it.groupStart = sort.Search(it.groupEnd, func(i int) bool { return it.asc[i].Height >= h })
		it.cur = it.groupStart
	}
	u := it.asc[it.cur]
	it.cur++
	return u, true
}

// Remaining returns the number of entries left in the stream.
func (it *AddressIter) Remaining() int { return (it.groupEnd - it.cur) + it.groupStart }

// AddressIter returns an iterator over an address's UTXOs from the top of
// the canonical order.
func (s *Set) AddressIter(addressKey string) AddressIter {
	b := s.byAddress[addressKey]
	if b == nil {
		return AddressIter{}
	}
	n := len(b.asc)
	return AddressIter{asc: b.asc, cur: n, groupEnd: n, groupStart: n}
}

// cursorStorageAfter reports whether u sits strictly after the cursor
// position in *storage* order; monotone along a bucket slice.
func cursorStorageAfter(c pageCursor, u *UTXO) bool {
	if u.Height != c.height {
		return u.Height > c.height
	}
	if u.OutPoint.TxID != c.op.TxID {
		return lessHash(c.op.TxID, u.OutPoint.TxID)
	}
	return u.OutPoint.Vout > c.op.Vout
}

// addressIterAfter returns an iterator resuming strictly after the cursor
// in canonical order: the rest of the cursor's height group first, then
// every lower height group. Positioning is a pair of binary searches.
func (s *Set) addressIterAfter(addressKey string, c pageCursor) AddressIter {
	b := s.byAddress[addressKey]
	if b == nil {
		return AddressIter{}
	}
	asc := b.asc
	n := len(asc)
	q := sort.Search(n, func(i int) bool { return cursorStorageAfter(c, &asc[i]) })
	if q < n && asc[q].Height == c.height {
		// Resume mid-group: emit [q, groupEnd), then continue below the
		// group's start.
		groupEnd := q + sort.Search(n-q, func(j int) bool { return asc[q+j].Height > c.height })
		groupStart := sort.Search(q, func(i int) bool { return asc[i].Height >= c.height })
		return AddressIter{asc: asc, cur: q, groupEnd: groupEnd, groupStart: groupStart}
	}
	// The cursor's height group is exhausted (or absent): everything that
	// remains sits strictly below it.
	p := sort.Search(n, func(i int) bool { return asc[i].Height >= c.height })
	return AddressIter{asc: asc, cur: p, groupEnd: p, groupStart: p}
}

// AddressUTXOCount returns how many stable UTXOs an address holds.
func (s *Set) AddressUTXOCount(addressKey string) int {
	b := s.byAddress[addressKey]
	if b == nil {
		return 0
	}
	return len(b.asc)
}

// MergedPage streams one get_utxos page for an address directly off the
// ordered index: the union of the stable bucket (minus suppressed
// outpoints) and a small pre-sorted list of unstable creations, in
// canonical order, resuming strictly after token. It returns the page, how
// many of its entries came from the unstable list, and the next-page token
// (nil when the merged stream is exhausted).
//
// The page is byte-for-byte what Page(sortedMergedView, token, limit) would
// return, at O(log n + page) instead of O(n log n): the cursor is located
// by binary search and only the page is copied.
//
// created must be sorted canonically; suppress holds the outpoints the
// unstable chain spent plus every outpoint in created (creations override a
// same-outpoint stable entry, as the replay's map overwrite does).
func (s *Set) MergedPage(addressKey string, created []UTXO, suppress map[btc.OutPoint]bool, token PageToken, limit int) (page []UTXO, unstable int, next PageToken, err error) {
	if limit <= 0 {
		return nil, 0, nil, fmt.Errorf("utxo: page limit must be positive, got %d", limit)
	}
	var stable AddressIter
	ci := 0
	if len(token) != 0 {
		cur, err := decodeCursor(token)
		if err != nil {
			return nil, 0, nil, err
		}
		stable = s.addressIterAfter(addressKey, cur)
		ci = sort.Search(len(created), func(i int) bool { return cursorBefore(cur, created[i]) })
	} else {
		stable = s.AddressIter(addressKey)
	}

	capHint := stable.Remaining() + (len(created) - ci)
	if capHint > limit {
		capHint = limit
	}
	page = make([]UTXO, 0, capHint)

	su, sok := nextUnsuppressed(&stable, suppress)
	for len(page) < limit {
		switch {
		case sok && (ci >= len(created) || utxoBefore(&su, &created[ci])):
			page = append(page, su)
			su, sok = nextUnsuppressed(&stable, suppress)
		case ci < len(created):
			page = append(page, created[ci])
			unstable++
			ci++
		default:
			return page, unstable, nil, nil // both streams exhausted
		}
	}
	if !sok && ci >= len(created) {
		return page, unstable, nil, nil
	}
	last := page[len(page)-1]
	return page, unstable, encodeCursor(pageCursor{height: last.Height, op: last.OutPoint}), nil
}

// nextUnsuppressed advances the stable stream past suppressed outpoints.
func nextUnsuppressed(it *AddressIter, suppress map[btc.OutPoint]bool) (UTXO, bool) {
	for {
		u, ok := it.Next()
		if !ok || !suppress[u.OutPoint] {
			return u, ok
		}
	}
}
