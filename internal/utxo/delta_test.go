package utxo

import (
	"testing"

	"icbtc/internal/btc"
)

func deltaScript(b byte) []byte { return btc.PayToPubKeyHashScript([20]byte{b}) }

func deltaAddr(b byte) string { return btc.ScriptID(deltaScript(b), btc.Regtest) }

func TestBuildBlockDeltaNetsOutInBlockSpends(t *testing.T) {
	scriptA := deltaScript(0x01)
	addrA := deltaAddr(0x01)

	// tx1 creates two outputs for A; tx2 spends the first within the block.
	tx1 := &btc.Transaction{
		Version: 2,
		Inputs:  []btc.TxIn{{PreviousOutPoint: btc.OutPoint{TxID: btc.DoubleSHA256([]byte("in")), Vout: 0}}},
		Outputs: []btc.TxOut{{Value: 100, PkScript: scriptA}, {Value: 200, PkScript: scriptA}},
	}
	tx2 := &btc.Transaction{
		Version: 2,
		Inputs:  []btc.TxIn{{PreviousOutPoint: btc.OutPoint{TxID: tx1.TxID(), Vout: 0}}},
		Outputs: []btc.TxOut{{Value: 90, PkScript: deltaScript(0x02)}},
	}
	coinbase := &btc.Transaction{
		Version: 2,
		Inputs:  []btc.TxIn{{PreviousOutPoint: btc.OutPoint{TxID: btc.ZeroHash, Vout: 0xffffffff}}},
		Outputs: []btc.TxOut{{Value: 50, PkScript: deltaScript(0x03)}},
	}
	block := &btc.Block{Transactions: []*btc.Transaction{coinbase, tx1, tx2}}

	noOwners := func(op btc.OutPoint) []OwnedOutput { return nil }
	d := BuildBlockDelta(block, 9, btc.NewScriptIDCache(btc.Regtest), noOwners)

	// Only tx1's second output survives for A: the first was netted out.
	created := d.CreatedFor(addrA)
	if len(created) != 1 || created[0].Value != 200 || created[0].Height != 9 {
		t.Fatalf("created for A: %+v", created)
	}
	if _, ok := d.CreatedOutput(btc.OutPoint{TxID: tx1.TxID(), Vout: 0}); ok {
		t.Fatal("netted-out output still resolvable by descendants")
	}
	if _, ok := d.CreatedOutput(btc.OutPoint{TxID: tx1.TxID(), Vout: 1}); !ok {
		t.Fatal("surviving output not resolvable")
	}
	// No external owner resolved → no spent entries; B's in-block receipt
	// survives as a creation.
	if len(d.SpentFor(addrA)) != 0 {
		t.Fatalf("unexpected spends: %+v", d.SpentFor(addrA))
	}
	createdB := d.CreatedFor(deltaAddr(0x02))
	if len(createdB) != 1 || createdB[0].Value != 90 {
		t.Fatalf("created for B: %+v", createdB)
	}
	if got := d.EntriesFor(addrA); got != 1 {
		t.Fatalf("entries for A: %d", got)
	}
}

func TestBuildBlockDeltaAttributesExternalSpends(t *testing.T) {
	addrA := deltaAddr(0x04)
	ext := btc.OutPoint{TxID: btc.DoubleSHA256([]byte("stable")), Vout: 1}
	tx := &btc.Transaction{
		Version: 2,
		Inputs:  []btc.TxIn{{PreviousOutPoint: ext}},
		Outputs: []btc.TxOut{{Value: 10, PkScript: deltaScript(0x05)}},
	}
	coinbase := &btc.Transaction{
		Version: 2,
		Inputs:  []btc.TxIn{{PreviousOutPoint: btc.OutPoint{TxID: btc.ZeroHash, Vout: 0xffffffff}}},
		Outputs: []btc.TxOut{{Value: 50, PkScript: deltaScript(0x06)}},
	}
	block := &btc.Block{Transactions: []*btc.Transaction{coinbase, tx}}
	d := BuildBlockDelta(block, 3, btc.NewScriptIDCache(btc.Regtest), func(op btc.OutPoint) []OwnedOutput {
		if op == ext {
			return []OwnedOutput{{AddressKey: addrA, Value: 77}}
		}
		return nil
	})
	spent := d.SpentFor(addrA)
	if len(spent) != 1 || spent[0].OutPoint != ext || spent[0].Value != 77 {
		t.Fatalf("spent for A: %+v", spent)
	}
	if got := d.EntriesFor(addrA); got != 1 {
		t.Fatalf("entries for A: %d", got)
	}
	// The spend is attributed only to the resolved owner; the recipient
	// address sees a creation, not a spend.
	if len(d.SpentFor(deltaAddr(0x05))) != 0 {
		t.Fatal("spend leaked to recipient address")
	}
	if got := d.CreatedFor(deltaAddr(0x05)); len(got) != 1 || got[0].Value != 10 {
		t.Fatalf("created for recipient: %+v", got)
	}
}
