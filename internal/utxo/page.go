package utxo

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"icbtc/internal/btc"
)

// Pagination for get_utxos (§III-C): responses for addresses holding many
// UTXOs are split into pages; the response carries an opaque "next page
// reference" the caller passes back to resume. Because UTXOs are sorted by
// height descending with a deterministic tie-break, a (height, outpoint)
// cursor identifies a stable resumption point even while new blocks arrive
// above the cursor height.

// PageToken is the opaque next-page reference.
type PageToken []byte

// pageCursor is the decoded form of a PageToken.
type pageCursor struct {
	height int64
	op     btc.OutPoint
}

func encodeCursor(c pageCursor) PageToken {
	var buf bytes.Buffer
	var h [8]byte
	binary.BigEndian.PutUint64(h[:], uint64(c.height))
	buf.Write(h[:])
	buf.Write(c.op.TxID[:])
	var v [4]byte
	binary.BigEndian.PutUint32(v[:], c.op.Vout)
	buf.Write(v[:])
	return buf.Bytes()
}

// ErrBadPageToken is returned for malformed next-page references.
var ErrBadPageToken = errors.New("utxo: malformed page token")

func decodeCursor(tok PageToken) (pageCursor, error) {
	if len(tok) != 8+btc.HashSize+4 {
		return pageCursor{}, fmt.Errorf("%w: length %d", ErrBadPageToken, len(tok))
	}
	var c pageCursor
	c.height = int64(binary.BigEndian.Uint64(tok[:8]))
	copy(c.op.TxID[:], tok[8:8+btc.HashSize])
	c.op.Vout = binary.BigEndian.Uint32(tok[8+btc.HashSize:])
	return c, nil
}

// Page selects up to limit UTXOs from the canonically sorted list, resuming
// after the position encoded in token (nil for the first page). It returns
// the page and the token for the next page (nil when exhausted).
func Page(sorted []UTXO, token PageToken, limit int) ([]UTXO, PageToken, error) {
	if limit <= 0 {
		return nil, nil, fmt.Errorf("utxo: page limit must be positive, got %d", limit)
	}
	start := 0
	if len(token) != 0 {
		cur, err := decodeCursor(token)
		if err != nil {
			return nil, nil, err
		}
		// Resume strictly after the cursor position in canonical order.
		// cursorBefore is monotone along the sorted input, so the resumption
		// point is a binary search — deep pagination used to linear-scan from
		// element 0 on every page, making a full walk quadratic.
		start = sort.Search(len(sorted), func(i int) bool { return cursorBefore(cur, sorted[i]) })
	}
	end := start + limit
	if end > len(sorted) {
		end = len(sorted)
	}
	page := make([]UTXO, end-start)
	copy(page, sorted[start:end])
	if end == len(sorted) {
		return page, nil, nil
	}
	last := sorted[end-1]
	return page, encodeCursor(pageCursor{height: last.Height, op: last.OutPoint}), nil
}

// cursorBefore reports whether the cursor strictly precedes u in canonical
// (height-descending) order, meaning u belongs to a later page position.
func cursorBefore(c pageCursor, u UTXO) bool {
	if c.height != u.Height {
		return c.height > u.Height
	}
	if c.op.TxID != u.OutPoint.TxID {
		return lessHash(c.op.TxID, u.OutPoint.TxID)
	}
	return c.op.Vout < u.OutPoint.Vout
}
