package utxo

import (
	"math/rand"
	"testing"

	"icbtc/internal/btc"
)

// mapOracle is the naive reference implementation the ordered index is
// checked against: a flat outpoint map with balances and views recomputed
// from scratch on every probe.
type mapOracle struct {
	network btc.Network
	utxos   map[btc.OutPoint]UTXO
}

func newMapOracle(network btc.Network) *mapOracle {
	return &mapOracle{network: network, utxos: make(map[btc.OutPoint]UTXO)}
}

func (o *mapOracle) add(op btc.OutPoint, out btc.TxOut, height int64) bool {
	if _, dup := o.utxos[op]; dup {
		return false
	}
	script := append([]byte(nil), out.PkScript...)
	o.utxos[op] = UTXO{OutPoint: op, Value: out.Value, PkScript: script, Height: height}
	return true
}

func (o *mapOracle) remove(op btc.OutPoint) bool {
	if _, ok := o.utxos[op]; !ok {
		return false
	}
	delete(o.utxos, op)
	return true
}

func (o *mapOracle) balance(key string) int64 {
	var total int64
	for _, u := range o.utxos {
		if btc.ScriptID(u.PkScript, o.network) == key {
			total += u.Value
		}
	}
	return total
}

func (o *mapOracle) forAddress(key string) []UTXO {
	var out []UTXO
	for _, u := range o.utxos {
		if btc.ScriptID(u.PkScript, o.network) == key {
			out = append(out, u)
		}
	}
	SortUTXOs(out)
	return out
}

// TestOrderedIndexAgainstMapOracle drives the ordered address index through
// long random interleavings of ApplyBlock/UnapplyBlock (and direct
// Add/Remove) and cross-checks every observable — balances, canonical
// per-address views, pagination via both Page and MergedPage, counts, and
// cursor-resumed iteration — against the map-based oracle.
func TestOrderedIndexAgainstMapOracle(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7, 42, 1337} {
		seed := seed
		rng := rand.New(rand.NewSource(seed))
		set := New(btc.Regtest)
		oracle := newMapOracle(btc.Regtest)

		const nAddrs = 6
		keys := make([]string, nAddrs)
		scripts := make([][]byte, nAddrs)
		for i := range keys {
			keys[i], scripts[i] = addrKey(byte(0x40 + i))
		}

		type undoPair struct{ undo *BlockUndo }
		var undos []undoPair
		var live []btc.OutPoint // outpoints currently believed unspent
		// stacked tracks outpoints created by blocks still on the undo
		// stack: direct removes must not consume them, or a later LIFO
		// unapply would try to delete an already-gone output (a sequence no
		// real caller produces).
		stacked := make(map[btc.OutPoint]bool)
		height := int64(1)
		opCounter := uint32(0)

		newOp := func() btc.OutPoint {
			opCounter++
			var h btc.Hash
			rng.Read(h[:8])
			h[31] = byte(opCounter)
			return btc.OutPoint{TxID: h, Vout: opCounter % 4}
		}

		check := func(step int) {
			t.Helper()
			if set.Len() != len(oracle.utxos) {
				t.Fatalf("seed %d step %d: len %d != oracle %d", seed, step, set.Len(), len(oracle.utxos))
			}
			for i, key := range keys {
				if got, want := set.Balance(key), oracle.balance(key); got != want {
					t.Fatalf("seed %d step %d: balance[%d] %d != %d", seed, step, i, got, want)
				}
				if got, want := set.AddressUTXOCount(key), len(oracle.forAddress(key)); got != want {
					t.Fatalf("seed %d step %d: count[%d] %d != %d", seed, step, i, got, want)
				}
				got, want := set.UTXOsForAddress(key), oracle.forAddress(key)
				if len(got) != len(want) {
					t.Fatalf("seed %d step %d: view[%d] len %d != %d", seed, step, i, len(got), len(want))
				}
				for j := range got {
					if got[j].OutPoint != want[j].OutPoint || got[j].Value != want[j].Value ||
						got[j].Height != want[j].Height || string(got[j].PkScript) != string(want[j].PkScript) {
						t.Fatalf("seed %d step %d: view[%d][%d] %+v != %+v", seed, step, i, j, got[j], want[j])
					}
				}
				// Iterator streams the same canonical sequence.
				it := set.AddressIter(key)
				for j := range want {
					u, ok := it.Next()
					if !ok || u.OutPoint != want[j].OutPoint {
						t.Fatalf("seed %d step %d: iter[%d] diverged at %d", seed, step, i, j)
					}
				}
				if _, ok := it.Next(); ok {
					t.Fatalf("seed %d step %d: iter[%d] overran", seed, step, i)
				}
			}
		}

		for step := 0; step < 120; step++ {
			switch r := rng.Intn(10); {
			case r < 4: // apply a random block
				var txs []*btc.Transaction
				for n := 1 + rng.Intn(3); n > 0; n-- {
					tx := &btc.Transaction{Version: 2}
					if len(live) > 0 && rng.Intn(3) > 0 {
						idx := rng.Intn(len(live))
						tx.Inputs = append(tx.Inputs, btc.TxIn{PreviousOutPoint: live[idx]})
						live = append(live[:idx], live[idx+1:]...)
					} else {
						tx.Inputs = append(tx.Inputs, btc.TxIn{
							PreviousOutPoint: btc.OutPoint{TxID: btc.ZeroHash, Vout: 0xffffffff},
							SignatureScript:  []byte{byte(step), byte(seed)},
						})
					}
					for k := 1 + rng.Intn(3); k > 0; k-- {
						a := rng.Intn(nAddrs)
						tx.Outputs = append(tx.Outputs, btc.TxOut{Value: int64(1 + rng.Intn(5000)), PkScript: scripts[a]})
					}
					txs = append(txs, tx)
				}
				block := &btc.Block{Transactions: txs}
				undo, _, err := set.ApplyBlock(block, height)
				if err != nil {
					t.Fatalf("seed %d step %d: apply: %v", seed, step, err)
				}
				for _, u := range undo.Spent {
					if !oracle.remove(u.OutPoint) {
						t.Fatalf("seed %d step %d: oracle missing spent %s", seed, step, u.OutPoint)
					}
				}
				txids := block.TxIDs()
				for ti, tx := range block.Transactions {
					for vout := range tx.Outputs {
						op := btc.OutPoint{TxID: txids[ti], Vout: uint32(vout)}
						oracle.add(op, tx.Outputs[vout], height)
						live = append(live, op)
						stacked[op] = true
					}
				}
				undos = append(undos, undoPair{undo: undo})
				height++
			case r < 6 && len(undos) > 0: // unapply the most recent block
				last := undos[len(undos)-1]
				undos = undos[:len(undos)-1]
				if err := set.UnapplyBlock(last.undo); err != nil {
					t.Fatalf("seed %d step %d: unapply: %v", seed, step, err)
				}
				for _, op := range last.undo.Created {
					oracle.remove(op)
					delete(stacked, op)
					for i := range live {
						if live[i] == op {
							live = append(live[:i], live[i+1:]...)
							break
						}
					}
				}
				for _, u := range last.undo.Spent {
					oracle.add(u.OutPoint, btc.TxOut{Value: u.Value, PkScript: u.PkScript}, u.Height)
					live = append(live, u.OutPoint)
				}
				height--
			case r < 8: // direct add
				op := newOp()
				a := rng.Intn(nAddrs)
				out := btc.TxOut{Value: int64(1 + rng.Intn(9000)), PkScript: scripts[a]}
				h := int64(rng.Intn(40))
				errSet := set.Add(op, out, h)
				okOracle := oracle.add(op, out, h)
				if (errSet == nil) != okOracle {
					t.Fatalf("seed %d step %d: add divergence: %v vs %v", seed, step, errSet, okOracle)
				}
				if errSet == nil {
					live = append(live, op)
				}
			default: // direct remove (sometimes of an absent outpoint)
				op := newOp()
				if len(live) > 0 && rng.Intn(4) > 0 {
					// Pick a removable (non-stacked) live outpoint if a few
					// random probes find one; otherwise keep the absent op.
					for probe := 0; probe < 4; probe++ {
						idx := rng.Intn(len(live))
						if !stacked[live[idx]] {
							op = live[idx]
							live = append(live[:idx], live[idx+1:]...)
							break
						}
					}
				}
				_, errSet := set.Remove(op)
				okOracle := oracle.remove(op)
				if (errSet == nil) != okOracle {
					t.Fatalf("seed %d step %d: remove divergence: %v vs %v", seed, step, errSet, okOracle)
				}
			}
			if step%10 == 0 || step == 119 {
				check(step)
			}
		}
		check(-1)
	}
}

// TestMergedPageMatchesNaivePaging asserts that MergedPage — the streamed,
// binary-searched page path — walks exactly the pages Page produces over
// the materialized merged view, for random buckets, unstable creations,
// suppressions, and page sizes.
func TestMergedPageMatchesNaivePaging(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		set := New(btc.Regtest)
		key, script := addrKey(0x99)

		// Stable bucket.
		nStable := rng.Intn(80)
		for i := 0; i < nStable; i++ {
			op := btc.OutPoint{Vout: uint32(i)}
			rng.Read(op.TxID[:8])
			if err := set.Add(op, btc.TxOut{Value: int64(i + 1), PkScript: script}, int64(rng.Intn(12))); err != nil {
				t.Fatal(err)
			}
		}
		stable := set.UTXOsForAddress(key)

		// Unstable effect: suppress some stable entries, create some new.
		suppress := make(map[btc.OutPoint]bool)
		for _, u := range stable {
			if rng.Intn(4) == 0 {
				suppress[u.OutPoint] = true
			}
		}
		var created []UTXO
		for i := 0; i < rng.Intn(20); i++ {
			op := btc.OutPoint{Vout: uint32(1000 + i)}
			rng.Read(op.TxID[:8])
			u := UTXO{OutPoint: op, Value: int64(10_000 + i), PkScript: script, Height: int64(8 + rng.Intn(8))}
			created = append(created, u)
			suppress[op] = true
		}
		SortUTXOs(created)

		// Materialized merged view, the way the replay oracle builds it.
		var merged []UTXO
		for _, u := range stable {
			if !suppress[u.OutPoint] {
				merged = append(merged, u)
			}
		}
		merged = append(merged, created...)
		SortUTXOs(merged)

		limit := 1 + rng.Intn(9)
		var tokA, tokB PageToken
		for page := 0; ; page++ {
			if page > 500 {
				t.Fatalf("seed %d: pagination did not terminate", seed)
			}
			wantPage, wantNext, err := Page(merged, tokA, limit)
			if err != nil {
				t.Fatal(err)
			}
			gotPage, unstable, gotNext, err := set.MergedPage(key, created, suppress, tokB, limit)
			if err != nil {
				t.Fatal(err)
			}
			if len(gotPage) != len(wantPage) {
				t.Fatalf("seed %d page %d: len %d != %d", seed, page, len(gotPage), len(wantPage))
			}
			wantUnstable := 0
			for i := range wantPage {
				if gotPage[i].OutPoint != wantPage[i].OutPoint || gotPage[i].Height != wantPage[i].Height {
					t.Fatalf("seed %d page %d entry %d: %+v != %+v", seed, page, i, gotPage[i], wantPage[i])
				}
				if wantPage[i].Value >= 10_000 {
					wantUnstable++
				}
			}
			if unstable != wantUnstable {
				t.Fatalf("seed %d page %d: unstable %d != %d", seed, page, unstable, wantUnstable)
			}
			if string(gotNext) != string(wantNext) {
				t.Fatalf("seed %d page %d: token %x != %x", seed, page, gotNext, wantNext)
			}
			if gotNext == nil {
				break
			}
			tokA, tokB = wantNext, gotNext
		}
	}
}

// TestBucketInsertRemoveOrder exercises the bucket's append fast path and
// mid-bucket insertions/removals directly.
func TestBucketInsertRemoveOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	set := New(btc.Regtest)
	key, script := addrKey(0x77)
	// Mixed ascending and random heights force both insert paths.
	for i := 0; i < 200; i++ {
		h := int64(i)
		if i%3 == 0 {
			h = int64(rng.Intn(200))
		}
		op := btc.OutPoint{Vout: uint32(i)}
		op.TxID[0] = byte(i)
		op.TxID[1] = byte(i >> 8)
		if err := set.Add(op, btc.TxOut{Value: 1, PkScript: script}, h); err != nil {
			t.Fatal(err)
		}
	}
	view := set.UTXOsForAddress(key)
	for i := 1; i < len(view); i++ {
		if utxoBefore(&view[i], &view[i-1]) {
			t.Fatalf("canonical order violated at %d", i)
		}
	}
	// Remove a random half; order must survive.
	for _, u := range view {
		if rng.Intn(2) == 0 {
			if _, err := set.Remove(u.OutPoint); err != nil {
				t.Fatal(err)
			}
		}
	}
	view = set.UTXOsForAddress(key)
	for i := 1; i < len(view); i++ {
		if utxoBefore(&view[i], &view[i-1]) {
			t.Fatalf("canonical order violated after removals at %d", i)
		}
	}
}

// TestScriptInterning pins the interning contract: one stored copy per
// distinct script, reference-counted away when the last output is spent.
func TestScriptInterning(t *testing.T) {
	set := New(btc.Regtest)
	_, script := addrKey(0x55)
	if set.ScriptInterned(script) {
		t.Fatal("script interned before any add")
	}
	for i := 0; i < 10; i++ {
		op := btc.OutPoint{Vout: uint32(i)}
		if err := set.Add(op, btc.TxOut{Value: 1, PkScript: script}, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if !set.ScriptInterned(script) || set.InternedScripts() != 1 {
		t.Fatalf("want 1 interned script, got %d", set.InternedScripts())
	}
	for i := 0; i < 10; i++ {
		if _, err := set.Remove(btc.OutPoint{Vout: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if set.ScriptInterned(script) || set.InternedScripts() != 0 {
		t.Fatalf("interned table leaked: %d entries", set.InternedScripts())
	}
}
