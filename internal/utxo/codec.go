package utxo

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"icbtc/internal/btc"
	"icbtc/internal/statecodec"
)

// Snapshot codec for the UTXO set and the per-block deltas (the stable-
// memory serialization of §III-C's state). Two properties matter beyond
// plain round-tripping:
//
//   - Determinism: map-backed containers are written in canonical order —
//     the interned-script table sorted by script bytes, address buckets
//     sorted by key, bucket entries in their maintained storage order — so
//     two replicas holding identical state produce identical snapshots, and
//     encode→decode→encode is byte-stable.
//   - O(bytes) restore: every entry is written with its interned-script
//     reference and every script with its memoized address key, so decoding
//     performs no address decoding, no ScriptID hashing, and no sorting.
//     Bucket slices are rebuilt by appending in stored (already canonical)
//     order; running balances and the byte estimate are accumulated in the
//     same pass.
//
// Snapshots carry a checksum (see statecodec), so a decoder failure means a
// framing bug or version skew, not silent corruption. Ordering invariants
// are still verified during decode — the check is a linear comparison pass,
// not a sort — because a restored set with a misordered bucket would serve
// wrong pages long after the restore.

// Decode guards: upper bounds on element counts and lengths so a hostile
// length prefix cannot drive allocation (fast-sync restores a snapshot
// received from a peer).
const (
	maxSnapshotEntries   = 1 << 28
	maxSnapshotScriptLen = 1 << 16
	maxSnapshotKeyLen    = 1 << 12

	// Minimum encoded sizes per repeated element, used to bound declared
	// counts against the bytes actually present (Decoder.CountFor): a set
	// entry is txid+vout+value+height plus a one-byte script index; a delta
	// creation drops height but adds a script length prefix; a delta spend
	// is outpoint+value; scripts and buckets are at least two length
	// prefixes.
	setEntryBytes      = btc.HashSize + 4 + 8 + 8 + 1
	deltaCreatedBytes  = btc.HashSize + 4 + 8 + 1
	deltaSpentBytes    = btc.HashSize + 4 + 8
	lengthPrefixedMin2 = 2
)

// EncodeTo appends the set's deterministic encoding to e.
func (s *Set) EncodeTo(e *statecodec.Encoder) {
	e.U8(uint8(s.network))
	// Total entry count up front so decode can pre-size the outpoint map:
	// growing a 100k-entry map incrementally re-hashes every entry several
	// times and dominated restore time before this hint existed.
	e.Uvarint(uint64(len(s.byOutPoint)))

	// Interned-script table, sorted by script bytes. Each script carries its
	// memoized address key so restore never re-derives a ScriptID.
	scripts := make([]*internedScript, 0, len(s.interned))
	for _, sc := range s.interned {
		scripts = append(scripts, sc)
	}
	sort.Slice(scripts, func(i, j int) bool {
		return bytes.Compare(scripts[i].bytes, scripts[j].bytes) < 0
	})
	index := make(map[*internedScript]uint64, len(scripts))
	e.Uvarint(uint64(len(scripts)))
	for i, sc := range scripts {
		index[sc] = uint64(i)
		e.Bytes(sc.bytes)
		e.String(sc.key)
	}

	// Address buckets, sorted by key; entries in maintained storage order
	// (height ascending with the canonical tie-break), which restore can
	// append verbatim.
	keys := make([]string, 0, len(s.byAddress))
	for k := range s.byAddress {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		b := s.byAddress[k]
		e.String(k)
		e.Uvarint(uint64(len(b.asc)))
		for i := range b.asc {
			u := &b.asc[i]
			e.Raw(u.OutPoint.TxID[:])
			e.U32(u.OutPoint.Vout)
			e.I64(u.Value)
			e.I64(u.Height)
			e.Uvarint(index[s.byOutPoint[u.OutPoint].script])
		}
	}
}

// DecodeSet reads a set encoded by EncodeTo. Restore cost is linear in the
// snapshot bytes: scripts are interned straight from the stored table (keys
// included), bucket slices are appended in stored order, and the outpoint
// map, reference counts, running balances, and byte estimate are rebuilt in
// the same single pass.
func DecodeSet(d *statecodec.Decoder) (*Set, error) {
	network := btc.Network(d.U8())
	total := d.CountFor(maxSnapshotEntries, setEntryBytes)

	nScripts := d.CountFor(maxSnapshotEntries, lengthPrefixedMin2)
	// Pre-size every map from the stored counts — incremental growth would
	// re-hash the whole table log(n) times and dominate restore.
	s := &Set{
		network:    network,
		byOutPoint: make(map[btc.OutPoint]entry, total),
		byAddress:  make(map[string]*bucket, nScripts),
		interned:   make(map[string]*internedScript, nScripts),
	}
	scripts := make([]*internedScript, 0, nScripts)
	for i := 0; i < nScripts; i++ {
		raw := d.Bytes(maxSnapshotScriptLen)
		key := d.String(maxSnapshotKeyLen)
		if d.Err() != nil {
			return nil, d.Err()
		}
		cp := make([]byte, len(raw))
		copy(cp, raw)
		sc := &internedScript{bytes: cp, key: key}
		before := len(s.interned)
		s.interned[string(cp)] = sc
		if len(s.interned) == before {
			return nil, fmt.Errorf("utxo: snapshot script %d duplicated", i)
		}
		scripts = append(scripts, sc)
	}

	nBuckets := d.CountFor(maxSnapshotEntries, lengthPrefixedMin2)
	// One arena backs every bucket's entry slice: a single allocation and
	// one contiguous zeroing instead of per-bucket garbage. Buckets take
	// capacity-limited sub-slices, so a post-restore insert that outgrows
	// its bucket reallocates that bucket normally.
	arena := make([]UTXO, 0, total)
	decoded := 0
	for i := 0; i < nBuckets; i++ {
		key := d.String(maxSnapshotKeyLen)
		n := d.CountFor(maxSnapshotEntries, setEntryBytes)
		if d.Err() != nil {
			return nil, d.Err()
		}
		if _, dup := s.byAddress[key]; dup {
			return nil, fmt.Errorf("utxo: snapshot bucket %q duplicated", key)
		}
		if decoded+n > total {
			return nil, fmt.Errorf("utxo: snapshot bucket %q overflows declared entry count %d", key, total)
		}
		b := &bucket{asc: arena[decoded : decoded : decoded+n]}
		for j := 0; j < n; j++ {
			// One bounds-checked read covers the entry's fixed-width fields
			// (txid, vout, value, height); only the script index varints.
			fields := d.Raw(btc.HashSize + 4 + 8 + 8)
			si := d.Uvarint()
			if d.Err() != nil {
				return nil, d.Err()
			}
			var op btc.OutPoint
			copy(op.TxID[:], fields[:btc.HashSize])
			op.Vout = binary.LittleEndian.Uint32(fields[btc.HashSize:])
			value := int64(binary.LittleEndian.Uint64(fields[btc.HashSize+4:]))
			height := int64(binary.LittleEndian.Uint64(fields[btc.HashSize+12:]))
			if si >= uint64(len(scripts)) {
				return nil, fmt.Errorf("utxo: snapshot script index %d out of range", si)
			}
			sc := scripts[si]
			u := UTXO{OutPoint: op, Value: value, PkScript: sc.bytes, Height: height}
			if j > 0 && !storageLess(&b.asc[j-1], &u) {
				return nil, fmt.Errorf("utxo: snapshot bucket %q not in storage order at entry %d", key, j)
			}
			before := len(s.byOutPoint)
			s.byOutPoint[op] = entry{value: value, height: height, script: sc}
			if len(s.byOutPoint) == before {
				return nil, fmt.Errorf("utxo: snapshot outpoint %s duplicated", op)
			}
			sc.refs++
			b.asc = append(b.asc, u)
			b.balance += value
			s.approxBytes += int64(perUTXOOverhead + len(sc.bytes))
		}
		decoded += len(b.asc)
		if len(b.asc) > 0 {
			s.byAddress[key] = b
		}
	}
	if decoded != total {
		return nil, fmt.Errorf("utxo: snapshot declared %d entries, decoded %d", total, decoded)
	}
	for i, sc := range scripts {
		if sc.refs == 0 {
			return nil, fmt.Errorf("utxo: snapshot script %d referenced by no entry", i)
		}
	}
	return s, d.Err()
}

// --- Sharded parallel decode (fast-sync hydration) ---

// scriptSpan / bucketSpan record the byte windows a scan pass found, so
// shard workers can decode them independently.
type scriptSpan struct {
	start, end int
}

type bucketSpan struct {
	key        string
	n          int
	start, end int // entry bytes window
	arenaOff   int // the bucket's slot in the shared entry arena
}

// shardResult is one shard's decoded buckets: the bucket structs (entries
// appended into disjoint arena sub-slices, balances accumulated, order
// verified) plus each entry's script index for the sequential merge.
type shardResult struct {
	buckets []*bucket
	scIdx   [][]uint32
	err     error
}

// DecodeSetParallel reads a set encoded by EncodeTo using up to `workers`
// goroutines: a cheap scan pass records the script-table and bucket byte
// windows, the script table and bucket shards decode concurrently, and a
// sequential merge — running as shards complete, in deterministic shard
// order — rebuilds the outpoint map, reference counts, and byte estimate.
// The format is unchanged (same bytes DecodeSet reads) and the resulting
// set is identical to DecodeSet's; with workers <= 1 it IS DecodeSet.
//
// The merge preserves every structural check the serial decoder performs
// (duplicate scripts/buckets/outpoints, storage-order violations, script
// index bounds, entry-count accounting, unreferenced scripts), so a
// hostile snapshot is rejected either way.
func DecodeSetParallel(d *statecodec.Decoder, workers int) (*Set, error) {
	if workers <= 1 {
		return DecodeSet(d)
	}
	network := btc.Network(d.U8())
	total := d.CountFor(maxSnapshotEntries, setEntryBytes)
	nScripts := d.CountFor(maxSnapshotEntries, lengthPrefixedMin2)
	if d.Err() != nil {
		return nil, d.Err()
	}

	// Scan the script table: skip length-prefixed fields, record the window.
	scripts := scriptSpan{start: d.Offset()}
	for i := 0; i < nScripts; i++ {
		d.Skip(d.Count(maxSnapshotScriptLen))
		d.Skip(d.Count(maxSnapshotKeyLen))
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	scripts.end = d.Offset()

	// Decode the script table concurrently with the bucket scan below.
	type scriptTable struct {
		list     []*internedScript
		interned map[string]*internedScript
		err      error
	}
	scriptCh := make(chan scriptTable, 1)
	sw, err := d.Window(scripts.start, scripts.end)
	if err != nil {
		return nil, err
	}
	go func() {
		t := scriptTable{
			list:     make([]*internedScript, 0, nScripts),
			interned: make(map[string]*internedScript, nScripts),
		}
		for i := 0; i < nScripts; i++ {
			raw := sw.Bytes(maxSnapshotScriptLen)
			key := sw.String(maxSnapshotKeyLen)
			if sw.Err() != nil {
				t.err = sw.Err()
				break
			}
			cp := make([]byte, len(raw))
			copy(cp, raw)
			sc := &internedScript{bytes: cp, key: key}
			before := len(t.interned)
			t.interned[string(cp)] = sc
			if len(t.interned) == before {
				t.err = fmt.Errorf("utxo: snapshot script %d duplicated", i)
				break
			}
			t.list = append(t.list, sc)
		}
		scriptCh <- t
	}()

	// Scan the bucket section: keys, counts, and entry windows. Entries are
	// a fixed 52 bytes plus a script-index varint, so the scan is a skip
	// per entry, no decoding.
	nBuckets := d.CountFor(maxSnapshotEntries, lengthPrefixedMin2)
	spans := make([]bucketSpan, 0, nBuckets)
	seen := make(map[string]struct{}, nBuckets)
	decoded := 0
	for i := 0; i < nBuckets; i++ {
		key := d.String(maxSnapshotKeyLen)
		n := d.CountFor(maxSnapshotEntries, setEntryBytes)
		if d.Err() != nil {
			return nil, d.Err()
		}
		if _, dup := seen[key]; dup {
			return nil, fmt.Errorf("utxo: snapshot bucket %q duplicated", key)
		}
		if n > 0 {
			// The serial decoder only indexes non-empty buckets, so only
			// those can collide.
			seen[key] = struct{}{}
		}
		if decoded+n > total {
			return nil, fmt.Errorf("utxo: snapshot bucket %q overflows declared entry count %d", key, total)
		}
		start := d.Offset()
		for j := 0; j < n; j++ {
			d.Skip(btc.HashSize + 4 + 8 + 8)
			d.Uvarint()
		}
		if d.Err() != nil {
			return nil, d.Err()
		}
		spans = append(spans, bucketSpan{key: key, n: n, start: start, end: d.Offset(), arenaOff: decoded})
		decoded += n
	}
	if decoded != total {
		return nil, fmt.Errorf("utxo: snapshot declared %d entries, decoded %d", total, decoded)
	}

	// Partition buckets into contiguous shards balanced by entry count.
	var shards [][]bucketSpan
	target := (total + workers - 1) / workers
	if target < 1 {
		target = 1
	}
	for lo := 0; lo < len(spans); {
		hi, count := lo, 0
		for hi < len(spans) && (count == 0 || count+spans[hi].n <= target) {
			count += spans[hi].n
			hi++
		}
		shards = append(shards, spans[lo:hi])
		lo = hi
	}

	st := <-scriptCh
	if st.err != nil {
		return nil, st.err
	}

	s := &Set{
		network:    network,
		byOutPoint: make(map[btc.OutPoint]entry, total),
		byAddress:  make(map[string]*bucket, nScripts),
		interned:   st.interned,
	}
	// One arena backs every bucket's entry slice, as in the serial decoder;
	// shards fill disjoint sub-slices.
	arena := make([]UTXO, 0, total)

	results := make([]chan shardResult, len(shards))
	for si := range shards {
		results[si] = make(chan shardResult, 1)
		go func(si int, part []bucketSpan) {
			res := shardResult{
				buckets: make([]*bucket, 0, len(part)),
				scIdx:   make([][]uint32, 0, len(part)),
			}
			for _, sp := range part {
				w, err := d.Window(sp.start, sp.end)
				if err != nil {
					res.err = err
					break
				}
				b := &bucket{asc: arena[sp.arenaOff : sp.arenaOff : sp.arenaOff+sp.n]}
				idx := make([]uint32, 0, sp.n)
				for j := 0; j < sp.n; j++ {
					fields := w.Raw(btc.HashSize + 4 + 8 + 8)
					si64 := w.Uvarint()
					if w.Err() != nil {
						res.err = w.Err()
						break
					}
					var op btc.OutPoint
					copy(op.TxID[:], fields[:btc.HashSize])
					op.Vout = binary.LittleEndian.Uint32(fields[btc.HashSize:])
					value := int64(binary.LittleEndian.Uint64(fields[btc.HashSize+4:]))
					height := int64(binary.LittleEndian.Uint64(fields[btc.HashSize+12:]))
					if si64 >= uint64(len(st.list)) {
						res.err = fmt.Errorf("utxo: snapshot script index %d out of range", si64)
						break
					}
					sc := st.list[si64]
					u := UTXO{OutPoint: op, Value: value, PkScript: sc.bytes, Height: height}
					if j > 0 && !storageLess(&b.asc[j-1], &u) {
						res.err = fmt.Errorf("utxo: snapshot bucket %q not in storage order at entry %d", sp.key, j)
						break
					}
					b.asc = append(b.asc, u)
					b.balance += value
					idx = append(idx, uint32(si64))
				}
				if res.err != nil {
					break
				}
				res.buckets = append(res.buckets, b)
				res.scIdx = append(res.scIdx, idx)
			}
			results[si] <- res
		}(si, shards[si])
	}

	// Merge shards in order as they complete: the outpoint map, reference
	// counts, and byte estimate are sequential state, so this loop is the
	// only writer. A failed shard still drains the others before returning.
	var firstErr error
	for si := range shards {
		res := <-results[si]
		if res.err != nil {
			if firstErr == nil {
				firstErr = res.err
			}
			continue
		}
		if firstErr != nil {
			continue
		}
		for bi, sp := range shards[si] {
			b := res.buckets[bi]
			for j := range b.asc {
				u := &b.asc[j]
				sc := st.list[res.scIdx[bi][j]]
				before := len(s.byOutPoint)
				s.byOutPoint[u.OutPoint] = entry{value: u.Value, height: u.Height, script: sc}
				if len(s.byOutPoint) == before {
					firstErr = fmt.Errorf("utxo: snapshot outpoint %s duplicated", u.OutPoint)
					break
				}
				sc.refs++
				s.approxBytes += int64(perUTXOOverhead + len(sc.bytes))
			}
			if firstErr != nil {
				break
			}
			if sp.n > 0 {
				s.byAddress[sp.key] = b
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	for i, sc := range st.list {
		if sc.refs == 0 {
			return nil, fmt.Errorf("utxo: snapshot script %d referenced by no entry", i)
		}
	}
	return s, d.Err()
}

// EncodeBlockDelta appends a block delta's deterministic encoding: created
// outputs per address (sorted by key, lists in block order) followed by
// spent outpoints per address. Created outputs all sit at the delta's own
// height, so only the outpoint, value, and script are stored per entry; the
// outpoint index and entry counts are rebuilt on decode.
func EncodeBlockDelta(e *statecodec.Encoder, bd *BlockDelta) {
	e.I64(bd.height)

	created := make([]string, 0, len(bd.createdByAddr))
	for k := range bd.createdByAddr {
		created = append(created, k)
	}
	sort.Strings(created)
	e.Uvarint(uint64(len(created)))
	for _, k := range created {
		list := bd.createdByAddr[k]
		e.String(k)
		e.Uvarint(uint64(len(list)))
		for i := range list {
			e.Raw(list[i].OutPoint.TxID[:])
			e.U32(list[i].OutPoint.Vout)
			e.I64(list[i].Value)
			e.Bytes(list[i].PkScript)
		}
	}

	spent := make([]string, 0, len(bd.spentByAddr))
	for k := range bd.spentByAddr {
		spent = append(spent, k)
	}
	sort.Strings(spent)
	e.Uvarint(uint64(len(spent)))
	for _, k := range spent {
		list := bd.spentByAddr[k]
		e.String(k)
		e.Uvarint(uint64(len(list)))
		for i := range list {
			e.Raw(list[i].OutPoint.TxID[:])
			e.U32(list[i].OutPoint.Vout)
			e.I64(list[i].Value)
		}
	}
}

// DecodeBlockDelta reads a delta encoded by EncodeBlockDelta, rebuilding
// the by-outpoint index and the entry count without re-deriving any address
// key (keys were stored alongside the lists).
func DecodeBlockDelta(d *statecodec.Decoder) (*BlockDelta, error) {
	bd := &BlockDelta{
		height:        d.I64(),
		createdByAddr: make(map[string][]UTXO),
		spentByAddr:   make(map[string][]SpentOutPoint),
		createdByOp:   make(map[btc.OutPoint]UTXO),
	}

	nCreated := d.CountFor(maxSnapshotEntries, lengthPrefixedMin2)
	for i := 0; i < nCreated; i++ {
		key := d.String(maxSnapshotKeyLen)
		n := d.CountFor(maxSnapshotEntries, deltaCreatedBytes)
		if d.Err() != nil {
			return nil, d.Err()
		}
		if _, dup := bd.createdByAddr[key]; dup {
			return nil, fmt.Errorf("utxo: delta snapshot created key %q duplicated", key)
		}
		list := make([]UTXO, 0, n)
		for j := 0; j < n; j++ {
			var op btc.OutPoint
			copy(op.TxID[:], d.Raw(btc.HashSize))
			op.Vout = d.U32()
			value := d.I64()
			raw := d.Bytes(maxSnapshotScriptLen)
			if d.Err() != nil {
				return nil, d.Err()
			}
			script := make([]byte, len(raw))
			copy(script, raw)
			u := UTXO{OutPoint: op, Value: value, PkScript: script, Height: bd.height}
			list = append(list, u)
			if _, dup := bd.createdByOp[op]; dup {
				return nil, fmt.Errorf("utxo: delta snapshot created outpoint %s duplicated", op)
			}
			bd.createdByOp[op] = u
		}
		bd.createdByAddr[key] = list
		bd.entries += len(list)
	}

	nSpent := d.CountFor(maxSnapshotEntries, lengthPrefixedMin2)
	for i := 0; i < nSpent; i++ {
		key := d.String(maxSnapshotKeyLen)
		n := d.CountFor(maxSnapshotEntries, deltaSpentBytes)
		if d.Err() != nil {
			return nil, d.Err()
		}
		if _, dup := bd.spentByAddr[key]; dup {
			return nil, fmt.Errorf("utxo: delta snapshot spent key %q duplicated", key)
		}
		list := make([]SpentOutPoint, 0, n)
		for j := 0; j < n; j++ {
			var sp SpentOutPoint
			copy(sp.OutPoint.TxID[:], d.Raw(btc.HashSize))
			sp.OutPoint.Vout = d.U32()
			sp.Value = d.I64()
			list = append(list, sp)
		}
		bd.spentByAddr[key] = list
		bd.entries += len(list)
	}
	return bd, d.Err()
}
