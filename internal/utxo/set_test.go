package utxo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"icbtc/internal/btc"
)

func addrKey(seed byte) (string, []byte) {
	var h [20]byte
	h[0] = seed
	addr := btc.NewP2PKHAddress(h, btc.Regtest)
	return addr.String(), btc.PayToAddrScript(addr)
}

func mustAdd(t *testing.T, s *Set, op btc.OutPoint, value int64, script []byte, height int64) {
	t.Helper()
	if err := s.Add(op, btc.TxOut{Value: value, PkScript: script}, height); err != nil {
		t.Fatal(err)
	}
}

func op(n byte, vout uint32) btc.OutPoint {
	var h btc.Hash
	h[0] = n
	return btc.OutPoint{TxID: h, Vout: vout}
}

func TestAddRemoveBalance(t *testing.T) {
	s := New(btc.Regtest)
	key, script := addrKey(1)
	mustAdd(t, s, op(1, 0), 100, script, 5)
	mustAdd(t, s, op(1, 1), 250, script, 6)

	if got := s.Balance(key); got != 350 {
		t.Fatalf("balance %d, want 350", got)
	}
	if s.Len() != 2 || s.AddressCount() != 1 {
		t.Fatalf("len=%d addrs=%d", s.Len(), s.AddressCount())
	}

	removed, err := s.Remove(op(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if removed.Value != 100 || removed.Height != 5 {
		t.Fatalf("removed %+v", removed)
	}
	if got := s.Balance(key); got != 250 {
		t.Fatalf("balance after remove %d, want 250", got)
	}
	if _, err := s.Remove(op(1, 0)); err == nil {
		t.Fatal("double spend accepted")
	}
	if err := s.Add(op(1, 1), btc.TxOut{Value: 1, PkScript: script}, 7); err == nil {
		t.Fatal("duplicate outpoint accepted")
	}
}

func TestApproxBytesTracksContents(t *testing.T) {
	s := New(btc.Regtest)
	_, script := addrKey(2)
	if s.ApproxBytes() != 0 {
		t.Fatal("empty set has nonzero size")
	}
	mustAdd(t, s, op(2, 0), 1, script, 1)
	grown := s.ApproxBytes()
	if grown <= 0 {
		t.Fatal("size did not grow")
	}
	if _, err := s.Remove(op(2, 0)); err != nil {
		t.Fatal(err)
	}
	if s.ApproxBytes() != 0 {
		t.Fatalf("size %d after removing everything", s.ApproxBytes())
	}
}

func TestUTXOsForAddressSorted(t *testing.T) {
	s := New(btc.Regtest)
	key, script := addrKey(3)
	heights := []int64{3, 9, 1, 9, 5}
	for i, h := range heights {
		mustAdd(t, s, op(byte(10+i), 0), int64(i+1), script, h)
	}
	got := s.UTXOsForAddress(key)
	if len(got) != len(heights) {
		t.Fatalf("got %d UTXOs", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Height > got[i-1].Height {
			t.Fatal("not sorted by height descending")
		}
	}
	if s.UTXOsForAddress("unknown") != nil {
		t.Fatal("unknown address must return nil")
	}
}

// coinbaseTx builds a coinbase paying value to script.
func coinbaseTx(value int64, script []byte, salt byte) *btc.Transaction {
	return &btc.Transaction{
		Version: 2,
		Inputs: []btc.TxIn{{
			PreviousOutPoint: btc.OutPoint{TxID: btc.ZeroHash, Vout: 0xffffffff},
			SignatureScript:  []byte{salt},
		}},
		Outputs: []btc.TxOut{{Value: value, PkScript: script}},
	}
}

func spendTx(prev btc.OutPoint, value int64, script []byte) *btc.Transaction {
	return &btc.Transaction{
		Version: 2,
		Inputs:  []btc.TxIn{{PreviousOutPoint: prev, Sequence: 0xffffffff}},
		Outputs: []btc.TxOut{{Value: value, PkScript: script}},
	}
}

func TestApplyUnapplyBlock(t *testing.T) {
	s := New(btc.Regtest)
	keyA, scriptA := addrKey(4)
	keyB, scriptB := addrKey(5)

	cb := coinbaseTx(50, scriptA, 1)
	blk1 := &btc.Block{Transactions: []*btc.Transaction{cb}}
	undo1, stats1, err := s.ApplyBlock(blk1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats1.OutputsInserted != 1 || stats1.InputsRemoved != 0 {
		t.Fatalf("stats1 %+v", stats1)
	}
	if s.Balance(keyA) != 50 {
		t.Fatalf("balance A %d", s.Balance(keyA))
	}

	spend := spendTx(btc.OutPoint{TxID: cb.TxID(), Vout: 0}, 45, scriptB)
	blk2 := &btc.Block{Transactions: []*btc.Transaction{coinbaseTx(50, scriptA, 2), spend}}
	undo2, stats2, err := s.ApplyBlock(blk2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.OutputsInserted != 2 || stats2.InputsRemoved != 1 {
		t.Fatalf("stats2 %+v", stats2)
	}
	if s.Balance(keyA) != 50 || s.Balance(keyB) != 45 {
		t.Fatalf("balances A=%d B=%d", s.Balance(keyA), s.Balance(keyB))
	}

	// Undo block 2: A back to 50 (block1 coinbase), B to 0.
	if err := s.UnapplyBlock(undo2); err != nil {
		t.Fatal(err)
	}
	if s.Balance(keyA) != 50 || s.Balance(keyB) != 0 {
		t.Fatalf("after undo: A=%d B=%d", s.Balance(keyA), s.Balance(keyB))
	}
	if err := s.UnapplyBlock(undo1); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 || s.ApproxBytes() != 0 {
		t.Fatalf("set not empty after full undo: len=%d", s.Len())
	}
}

func TestApplyBlockMissingInputRollsBack(t *testing.T) {
	s := New(btc.Regtest)
	_, scriptA := addrKey(6)
	spend := spendTx(op(99, 0), 10, scriptA) // spends a nonexistent output
	blk := &btc.Block{Transactions: []*btc.Transaction{coinbaseTx(50, scriptA, 3), spend}}
	if _, _, err := s.ApplyBlock(blk, 1); err == nil {
		t.Fatal("missing input accepted")
	}
	if s.Len() != 0 {
		t.Fatalf("partial application leaked %d outputs", s.Len())
	}
}

func TestApplySpendWithinBlock(t *testing.T) {
	// A transaction may spend an output created earlier in the same block.
	s := New(btc.Regtest)
	keyA, scriptA := addrKey(7)
	keyB, scriptB := addrKey(8)
	cb := coinbaseTx(50, scriptA, 4)
	chained := spendTx(btc.OutPoint{TxID: cb.TxID(), Vout: 0}, 49, scriptB)
	blk := &btc.Block{Transactions: []*btc.Transaction{cb, chained}}
	if _, _, err := s.ApplyBlock(blk, 1); err != nil {
		t.Fatal(err)
	}
	if s.Balance(keyA) != 0 || s.Balance(keyB) != 49 {
		t.Fatalf("A=%d B=%d", s.Balance(keyA), s.Balance(keyB))
	}
}

func TestQuickApplyUnapplyIsIdentity(t *testing.T) {
	// Property: applying then unapplying a random block leaves the set
	// exactly as before (same length, size, and balances).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(btc.Regtest)
		_, scriptA := addrKey(9)
		// Seed the set with coinbases.
		var ops []btc.OutPoint
		for i := 0; i < 5; i++ {
			cb := coinbaseTx(int64(10+i), scriptA, byte(i))
			if _, _, err := s.ApplyBlock(&btc.Block{Transactions: []*btc.Transaction{cb}}, int64(i+1)); err != nil {
				return false
			}
			ops = append(ops, btc.OutPoint{TxID: cb.TxID(), Vout: 0})
		}
		lenBefore, bytesBefore := s.Len(), s.ApproxBytes()

		// Random spending block.
		txs := []*btc.Transaction{coinbaseTx(50, scriptA, 0xEE)}
		spendIdx := rng.Perm(len(ops))[:1+rng.Intn(len(ops)-1)]
		for _, i := range spendIdx {
			_, scriptX := addrKey(byte(100 + i))
			txs = append(txs, spendTx(ops[i], int64(1+rng.Intn(9)), scriptX))
		}
		undo, _, err := s.ApplyBlock(&btc.Block{Transactions: txs}, 10)
		if err != nil {
			return false
		}
		if err := s.UnapplyBlock(undo); err != nil {
			return false
		}
		return s.Len() == lenBefore && s.ApproxBytes() == bytesBefore
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestForEach(t *testing.T) {
	s := New(btc.Regtest)
	_, script := addrKey(10)
	for i := 0; i < 5; i++ {
		mustAdd(t, s, op(byte(i), 0), int64(i), script, int64(i))
	}
	count := 0
	s.ForEach(func(UTXO) bool { count++; return true })
	if count != 5 {
		t.Fatalf("visited %d", count)
	}
	count = 0
	s.ForEach(func(UTXO) bool { count++; return count < 2 })
	if count != 2 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestPagination(t *testing.T) {
	s := New(btc.Regtest)
	key, script := addrKey(11)
	const total = 57
	for i := 0; i < total; i++ {
		mustAdd(t, s, op(byte(i), uint32(i)), int64(i+1), script, int64(i%10))
	}
	sorted := s.UTXOsForAddress(key)

	var token PageToken
	var collected []UTXO
	pages := 0
	for {
		page, next, err := Page(sorted, token, 10)
		if err != nil {
			t.Fatal(err)
		}
		collected = append(collected, page...)
		pages++
		if next == nil {
			break
		}
		token = next
	}
	if pages != 6 {
		t.Fatalf("pages %d, want 6", pages)
	}
	if len(collected) != total {
		t.Fatalf("collected %d, want %d", len(collected), total)
	}
	// Pagination must preserve canonical order and completeness.
	for i := range collected {
		if collected[i].OutPoint != sorted[i].OutPoint || collected[i].Height != sorted[i].Height {
			t.Fatalf("page ordering broken at %d", i)
		}
	}
}

func TestPaginationStableUnderGrowth(t *testing.T) {
	// New UTXOs at greater heights sort before the cursor and must not
	// disturb resumption of an in-flight pagination.
	s := New(btc.Regtest)
	key, script := addrKey(12)
	for i := 0; i < 20; i++ {
		mustAdd(t, s, op(byte(i), 0), int64(i+1), script, int64(i))
	}
	sorted := s.UTXOsForAddress(key)
	first, token, err := Page(sorted, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 5 || token == nil {
		t.Fatal("first page wrong")
	}
	// New block adds UTXOs at height 100.
	mustAdd(t, s, op(200, 0), 999, script, 100)
	resorted := s.UTXOsForAddress(key)
	rest, _, err := Page(resorted, token, 100)
	if err != nil {
		t.Fatal(err)
	}
	// The rest must be exactly the remaining 15 original UTXOs.
	if len(rest) != 15 {
		t.Fatalf("rest %d, want 15", len(rest))
	}
	for _, u := range rest {
		if u.Height >= 15 && u.Height != int64(u.Value-1) {
			t.Fatalf("unexpected UTXO %+v in continuation", u)
		}
	}
}

func TestPageErrors(t *testing.T) {
	if _, _, err := Page(nil, nil, 0); err == nil {
		t.Fatal("zero limit accepted")
	}
	if _, _, err := Page(nil, PageToken{1, 2, 3}, 5); err == nil {
		t.Fatal("malformed token accepted")
	}
	page, next, err := Page(nil, nil, 5)
	if err != nil || len(page) != 0 || next != nil {
		t.Fatal("empty input paging wrong")
	}
}

func TestQuickPaginationComplete(t *testing.T) {
	// Property: for any UTXO population and page size, pagination visits
	// every UTXO exactly once.
	f := func(seed int64, limitRaw uint8) bool {
		limit := int(limitRaw%20) + 1
		rng := rand.New(rand.NewSource(seed))
		s := New(btc.Regtest)
		key, script := addrKey(13)
		n := rng.Intn(60)
		for i := 0; i < n; i++ {
			if err := s.Add(op(byte(i), uint32(i)), btc.TxOut{Value: int64(i + 1), PkScript: script}, int64(rng.Intn(8))); err != nil {
				return false
			}
		}
		sorted := s.UTXOsForAddress(key)
		seen := make(map[btc.OutPoint]int)
		var token PageToken
		for {
			page, next, err := Page(sorted, token, limit)
			if err != nil {
				return false
			}
			for _, u := range page {
				seen[u.OutPoint]++
			}
			if next == nil {
				break
			}
			token = next
		}
		if len(seen) != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
