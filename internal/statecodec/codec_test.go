package statecodec

import (
	"bytes"
	"errors"
	"testing"
)

const (
	testMagic   = "statecodec-test\n"
	testVersion = uint16(3)
)

func TestRoundTripPrimitives(t *testing.T) {
	e := NewEncoder(testMagic, testVersion, 64)
	e.U8(0xab)
	e.Bool(true)
	e.Bool(false)
	e.U16(0xbeef)
	e.U32(0xdeadbeef)
	e.U64(0x0123456789abcdef)
	e.I64(-42)
	e.Uvarint(0)
	e.Uvarint(300)
	e.Uvarint(1 << 40)
	e.Raw([]byte{1, 2, 3})
	e.Bytes([]byte("hello"))
	e.Bytes(nil)
	e.String("world")
	snap := e.Finish()

	d, err := NewDecoder(snap, testMagic, testVersion)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.U8(); got != 0xab {
		t.Fatalf("U8 = %#x", got)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("bools did not round-trip")
	}
	if got := d.U16(); got != 0xbeef {
		t.Fatalf("U16 = %#x", got)
	}
	if got := d.U32(); got != 0xdeadbeef {
		t.Fatalf("U32 = %#x", got)
	}
	if got := d.U64(); got != 0x0123456789abcdef {
		t.Fatalf("U64 = %#x", got)
	}
	if got := d.I64(); got != -42 {
		t.Fatalf("I64 = %d", got)
	}
	for _, want := range []uint64{0, 300, 1 << 40} {
		if got := d.Uvarint(); got != want {
			t.Fatalf("Uvarint = %d, want %d", got, want)
		}
	}
	if got := d.Raw(3); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("Raw = %v", got)
	}
	if got := d.Bytes(16); string(got) != "hello" {
		t.Fatalf("Bytes = %q", got)
	}
	if got := d.Bytes(16); len(got) != 0 {
		t.Fatalf("empty Bytes = %q", got)
	}
	if got := d.String(16); got != "world" {
		t.Fatalf("String = %q", got)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicEncoding(t *testing.T) {
	build := func() []byte {
		e := NewEncoder(testMagic, testVersion, 0)
		e.U64(7)
		e.String("same")
		return e.Finish()
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("two identical encodings differ")
	}
}

func TestRejectsBadMagic(t *testing.T) {
	snap := NewEncoder(testMagic, testVersion, 0).Finish()
	if _, err := NewDecoder(snap, "statecodec-othr\n", testVersion); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestRejectsWrongVersion(t *testing.T) {
	snap := NewEncoder(testMagic, testVersion, 0).Finish()
	if _, err := NewDecoder(snap, testMagic, testVersion+1); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestRejectsCorruption(t *testing.T) {
	e := NewEncoder(testMagic, testVersion, 0)
	e.U64(12345)
	snap := e.Finish()

	// Flip one payload byte: the checksum must catch it.
	bad := append([]byte(nil), snap...)
	bad[len(testMagic)+3] ^= 0x40
	if _, err := NewDecoder(bad, testMagic, testVersion); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("corrupted payload: err = %v, want ErrBadChecksum", err)
	}
	// Truncation below the minimum frame.
	if _, err := NewDecoder(snap[:8], testMagic, testVersion); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated: err = %v, want ErrTruncated", err)
	}
	// Dropping trailer bytes also breaks the checksum.
	if _, err := NewDecoder(snap[:len(snap)-1], testMagic, testVersion); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("short trailer: err = %v, want ErrBadChecksum", err)
	}
}

func TestStickyErrorAndOverread(t *testing.T) {
	e := NewEncoder(testMagic, testVersion, 0)
	e.U32(9)
	snap := e.Finish()
	d, err := NewDecoder(snap, testMagic, testVersion)
	if err != nil {
		t.Fatal(err)
	}
	d.U32()
	if got := d.U64(); got != 0 { // runs past the payload
		t.Fatalf("overread returned %d, want zero", got)
	}
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Fatalf("sticky err = %v, want ErrTruncated", d.Err())
	}
	// Later reads stay inert and Close reports the first error.
	if got := d.U8(); got != 0 {
		t.Fatalf("read after error returned %d", got)
	}
	if !errors.Is(d.Close(), ErrTruncated) {
		t.Fatalf("Close = %v, want ErrTruncated", d.Close())
	}
}

func TestCloseRejectsTrailingBytes(t *testing.T) {
	e := NewEncoder(testMagic, testVersion, 0)
	e.U32(1)
	e.U32(2)
	snap := e.Finish()
	d, err := NewDecoder(snap, testMagic, testVersion)
	if err != nil {
		t.Fatal(err)
	}
	d.U32()
	if !errors.Is(d.Close(), ErrTrailing) {
		t.Fatalf("Close = %v, want ErrTrailing", d.Close())
	}
}

func TestCountGuardsHostileLengths(t *testing.T) {
	e := NewEncoder(testMagic, testVersion, 0)
	e.Uvarint(1 << 30)
	snap := e.Finish()
	d, err := NewDecoder(snap, testMagic, testVersion)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Count(1 << 20); got != 0 {
		t.Fatalf("Count = %d, want 0 on limit breach", got)
	}
	if d.Err() == nil {
		t.Fatal("Count past limit did not set the sticky error")
	}
}

func TestBoolRejectsNonCanonicalBytes(t *testing.T) {
	e := NewEncoder(testMagic, testVersion, 0)
	e.U8(7)
	snap := e.Finish()
	d, err := NewDecoder(snap, testMagic, testVersion)
	if err != nil {
		t.Fatal(err)
	}
	d.Bool()
	if d.Err() == nil {
		t.Fatal("Bool accepted byte 7")
	}
}

func TestCountForBoundsAgainstRemainingBytes(t *testing.T) {
	// A tiny payload declaring a huge element count must fail at the count,
	// before any caller pre-allocates from it.
	e := NewEncoder(testMagic, testVersion, 0)
	e.Uvarint(1 << 27)
	snap := e.Finish()
	d, err := NewDecoder(snap, testMagic, testVersion)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.CountFor(1<<28, 53); got != 0 {
		t.Fatalf("CountFor = %d, want 0 for a count the payload cannot hold", got)
	}
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", d.Err())
	}

	// A count the payload CAN hold passes.
	e = NewEncoder(testMagic, testVersion, 0)
	e.Uvarint(3)
	e.Raw(make([]byte, 3*10))
	snap = e.Finish()
	if d, err = NewDecoder(snap, testMagic, testVersion); err != nil {
		t.Fatal(err)
	}
	if got := d.CountFor(1<<28, 10); got != 3 {
		t.Fatalf("CountFor = %d, want 3", got)
	}
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
}
