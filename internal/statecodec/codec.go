// Package statecodec implements the deterministic, versioned binary
// encoding the canister state snapshots are written in. The production
// Bitcoin canister keeps its UTXO set and header tree in stable memory so
// the state survives canister upgrades and lets fresh replicas state-sync
// instead of re-ingesting the chain; this package is the serialization
// substrate for the equivalent capability here.
//
// Format invariants every user of the package relies on:
//
//   - Determinism: the encoding of a value is a pure function of the value.
//     Callers must serialize map-backed containers in an explicit canonical
//     order (the codecs in utxo and canister sort by key); the primitives
//     here never introduce nondeterminism.
//   - Versioning: a snapshot opens with a magic string and a uint16 format
//     version. Decoders reject unknown magics and versions up front, so a
//     codec change is an explicit version bump, caught by the golden-fixture
//     compatibility test in CI rather than by silent misdecoding.
//   - Integrity: the payload is followed by a CRC-32C (Castagnoli)
//     checksum over everything before it — the storage-engine standard,
//     hardware-accelerated, so integrity costs ~nothing on the restore
//     path. A truncated or corrupted snapshot fails fast instead of
//     restoring partial state. (The trailer is corruption detection, not
//     authentication: anyone can compute it, so decoders treat snapshot
//     contents as untrusted input regardless — see Count/CountFor.)
//
// Both Encoder and Decoder carry a sticky error: after the first failure
// every subsequent operation is a no-op, so codec code can be written as a
// straight-line sequence with a single error check at the end.
package statecodec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Well-known decode errors.
var (
	ErrBadMagic    = errors.New("statecodec: bad snapshot magic")
	ErrBadVersion  = errors.New("statecodec: unsupported snapshot version")
	ErrBadChecksum = errors.New("statecodec: snapshot checksum mismatch")
	ErrTruncated   = errors.New("statecodec: truncated snapshot")
	ErrTrailing    = errors.New("statecodec: trailing bytes after snapshot payload")
)

// checksumSize is the length of the CRC-32C trailer.
const checksumSize = 4

// crcTable is the Castagnoli polynomial table (hardware CRC32 on amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Encoder builds a snapshot payload. Create one with NewEncoder, write the
// payload with the typed appenders, and seal it with Finish.
type Encoder struct {
	buf []byte
}

// NewEncoder starts a snapshot with the given magic string and format
// version, pre-allocating capacity for sizeHint payload bytes.
func NewEncoder(magic string, version uint16, sizeHint int) *Encoder {
	e := &Encoder{buf: make([]byte, 0, len(magic)+2+sizeHint+checksumSize)}
	e.buf = append(e.buf, magic...)
	e.U16(version)
	return e
}

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a boolean as one byte (0 or 1).
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U16 appends a little-endian uint16.
func (e *Encoder) U16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends a little-endian int64 (two's complement).
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Uvarint appends an unsigned LEB128 varint — the encoding for counts and
// small indices.
func (e *Encoder) Uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// Raw appends bytes verbatim (fixed-width fields like hashes and headers).
func (e *Encoder) Raw(b []byte) { e.buf = append(e.buf, b...) }

// Bytes appends a Uvarint length prefix followed by the bytes.
func (e *Encoder) Bytes(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.Raw(b)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Len returns the number of payload bytes written so far (header included).
func (e *Encoder) Len() int { return len(e.buf) }

// Finish seals the snapshot: it appends the CRC-32C checksum over the
// entire header+payload and returns the completed byte slice. The encoder
// must not be used afterwards.
func (e *Encoder) Finish() []byte {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, crc32.Checksum(e.buf, crcTable))
	return e.buf
}

// Decoder reads a snapshot produced by Encoder. Create one with NewDecoder
// (which verifies magic, version, and checksum), read with the typed
// accessors, and call Close to assert full consumption.
type Decoder struct {
	buf []byte // payload only (magic/version consumed, checksum stripped)
	off int
	err error
}

// NewDecoder verifies the snapshot framing — magic string, format version,
// and trailing checksum — and positions the decoder at the first payload
// byte. version is the single format version the caller supports; older or
// newer snapshots are rejected with ErrBadVersion (the version that was
// found is included in the error).
func NewDecoder(data []byte, magic string, version uint16) (*Decoder, error) {
	if len(data) < len(magic)+2+checksumSize {
		return nil, ErrTruncated
	}
	if string(data[:len(magic)]) != magic {
		return nil, ErrBadMagic
	}
	body, trailer := data[:len(data)-checksumSize], data[len(data)-checksumSize:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(trailer) {
		return nil, ErrBadChecksum
	}
	got := binary.LittleEndian.Uint16(data[len(magic):])
	if got != version {
		return nil, fmt.Errorf("%w: snapshot is v%d, decoder supports v%d", ErrBadVersion, got, version)
	}
	return &Decoder{buf: body[len(magic)+2:]}, nil
}

// Err returns the sticky decode error, if any.
func (d *Decoder) Err() error { return d.err }

// fail records the first error; later reads become no-ops returning zeros.
func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// take returns the next n payload bytes without copying, or nil after an
// error (including running out of input).
func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.fail(fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrTruncated, n, d.off, len(d.buf)))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean, rejecting values other than 0 and 1 (a corrupt flag
// would otherwise decode as "true" silently).
func (d *Decoder) Bool() bool {
	switch v := d.U8(); v {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail(fmt.Errorf("statecodec: invalid bool byte 0x%02x", v))
		return false
	}
}

// U16 reads a little-endian uint16.
func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Uvarint reads an unsigned LEB128 varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail(fmt.Errorf("%w: bad uvarint at offset %d", ErrTruncated, d.off))
		return 0
	}
	d.off += n
	return v
}

// Count reads a Uvarint bounded by max — the guard every repeated-element
// loop uses so a hostile length prefix cannot drive allocation.
func (d *Decoder) Count(max uint64) int {
	v := d.Uvarint()
	if d.err == nil && v > max {
		d.fail(fmt.Errorf("statecodec: count %d exceeds limit %d", v, max))
		return 0
	}
	return int(v)
}

// CountFor reads a count of items that each occupy at least itemBytes of
// payload, bounding it by max AND by what the remaining input could
// possibly hold. Decoders pre-allocate from declared counts; without the
// remaining-bytes bound, a tiny crafted snapshot declaring 2^28 entries
// would drive a multi-GiB allocation before the first entry is read (the
// checksum is integrity-only — anyone can compute it, so a peer-supplied
// fast-sync snapshot is untrusted input).
func (d *Decoder) CountFor(max uint64, itemBytes int) int {
	v := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if v > max {
		d.fail(fmt.Errorf("statecodec: count %d exceeds limit %d", v, max))
		return 0
	}
	if itemBytes > 0 && v > uint64(d.Remaining())/uint64(itemBytes) {
		d.fail(fmt.Errorf("%w: count %d items of >=%d bytes exceeds %d remaining",
			ErrTruncated, v, itemBytes, d.Remaining()))
		return 0
	}
	return int(v)
}

// Raw reads n bytes. The returned slice aliases the snapshot buffer; copy
// it if it must outlive the snapshot bytes.
func (d *Decoder) Raw(n int) []byte { return d.take(n) }

// Bytes reads a length-prefixed byte slice of at most maxLen bytes. The
// returned slice aliases the snapshot buffer.
func (d *Decoder) Bytes(maxLen uint64) []byte {
	n := d.Count(maxLen)
	return d.take(n)
}

// String reads a length-prefixed string (copied out of the buffer).
func (d *Decoder) String(maxLen uint64) string { return string(d.Bytes(maxLen)) }

// Remaining returns the number of unread payload bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Offset returns the current payload offset — together with Window, the
// basis for sharded decoding: a scan pass records section boundaries by
// offset, then parallel workers decode disjoint windows.
func (d *Decoder) Offset() int { return d.off }

// Skip advances past n payload bytes without reading them (the scan pass
// of a sharded decode steps over fixed-width fields this way).
func (d *Decoder) Skip(n int) { d.take(n) }

// Window returns an independent sub-decoder over payload bytes
// [start, end): same buffer (no copy), own offset and sticky error, no
// magic/version/checksum framing (the parent already verified those).
// Disjoint windows may be decoded concurrently; the parent must not be
// advanced past outstanding windows' bytes by anything but Skip. Close on
// the window asserts the window was fully consumed.
func (d *Decoder) Window(start, end int) (*Decoder, error) {
	if start < 0 || end < start || end > len(d.buf) {
		return nil, fmt.Errorf("statecodec: window [%d,%d) out of payload bounds %d", start, end, len(d.buf))
	}
	return &Decoder{buf: d.buf[:end], off: start}, nil
}

// Close asserts the payload was fully consumed and returns the sticky
// error, or ErrTrailing when bytes remain.
func (d *Decoder) Close() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d bytes left", ErrTrailing, len(d.buf)-d.off)
	}
	return nil
}
