package btcnode

import (
	"errors"
	"fmt"

	"icbtc/internal/btc"
	"icbtc/internal/chain"
	"icbtc/internal/secp256k1"
)

// Miner builds and proof-of-work-mines blocks on top of a node's best chain.
// The simulation uses easy targets (see btc.Params), so grinding a nonce is
// a handful of hash attempts rather than exahashes — but the PoW check is
// the real double-SHA256 target comparison.
type Miner struct {
	node *Node
	// payoutScript receives coinbase rewards.
	payoutScript []byte
	// extraNonce distinguishes coinbases of otherwise identical blocks.
	extraNonce uint64
}

// NewMiner creates a miner paying rewards to payoutScript.
func NewMiner(node *Node, payoutScript []byte) *Miner {
	return &Miner{node: node, payoutScript: payoutScript}
}

// NewMinerWithKey creates a miner paying to a fresh P2PKH address derived
// from the given key.
func NewMinerWithKey(node *Node, key *secp256k1.PrivateKey) *Miner {
	addr := btc.AddressFromPubKey(key.PubKey().SerializeCompressed(), node.params.Network)
	return NewMiner(node, btc.PayToAddrScript(addr))
}

// maxNonceAttempts bounds PoW grinding; with simulation targets the expected
// number of attempts is tiny, so hitting this indicates a bug.
const maxNonceAttempts = 1 << 22

// BuildBlockOn assembles a block on the given parent including up to maxTxs
// transactions from the node's mempool (0 means no limit). The block is
// mined (nonce ground) before being returned.
func (m *Miner) BuildBlockOn(parent *chain.Node, maxTxs int) (*btc.Block, error) {
	if parent == nil {
		return nil, errors.New("btcnode: nil parent")
	}
	m.extraNonce++
	coinbase := &btc.Transaction{
		Version: 2,
		Inputs: []btc.TxIn{{
			PreviousOutPoint: btc.OutPoint{TxID: btc.ZeroHash, Vout: 0xffffffff},
			SignatureScript:  coinbaseScript(parent.Height+1, m.extraNonce),
		}},
		Outputs: []btc.TxOut{{Value: m.node.params.BlockSubsidy, PkScript: m.payoutScript}},
	}
	txs := []*btc.Transaction{coinbase}
	for _, tx := range m.node.MempoolTxs() {
		if maxTxs > 0 && len(txs)-1 >= maxTxs {
			break
		}
		txs = append(txs, tx)
	}
	block := &btc.Block{
		Header: btc.BlockHeader{
			Version:   1,
			PrevBlock: parent.Hash,
			Timestamp: uint32(m.node.net.Scheduler().Now().Unix()),
			Bits:      chain.ExpectedBits(parent, m.node.params),
		},
		Transactions: txs,
	}
	// The timestamp must be strictly after the parent's median time past.
	if mtp := parentMTP(parent); block.Header.Timestamp <= mtp {
		block.Header.Timestamp = mtp + 1
	}
	block.Header.MerkleRoot = block.MerkleRoot()
	if err := grind(&block.Header); err != nil {
		return nil, err
	}
	return block, nil
}

// Mine builds a block on the node's best tip, submits it to the node, and
// relays it to peers. It returns the mined block.
func (m *Miner) Mine(maxTxs int) (*btc.Block, error) {
	block, err := m.BuildBlockOn(m.node.BestTip(), maxTxs)
	if err != nil {
		return nil, err
	}
	if _, err := m.node.AcceptBlock(block); err != nil {
		return nil, fmt.Errorf("btcnode: own block rejected: %w", err)
	}
	m.node.relayBlock(block.BlockHash(), m.node.ID)
	return block, nil
}

// MineChain mines count blocks in sequence on the best chain.
func (m *Miner) MineChain(count, maxTxsPerBlock int) ([]*btc.Block, error) {
	out := make([]*btc.Block, 0, count)
	for i := 0; i < count; i++ {
		b, err := m.Mine(maxTxsPerBlock)
		if err != nil {
			return out, err
		}
		out = append(out, b)
	}
	return out, nil
}

// grind searches a nonce satisfying the header's target.
func grind(h *btc.BlockHeader) error {
	for nonce := uint32(0); nonce < maxNonceAttempts; nonce++ {
		h.Nonce = nonce
		if btc.HashMeetsTarget(h.BlockHash(), h.Bits) {
			return nil
		}
	}
	return errors.New("btcnode: proof-of-work search exhausted")
}

// coinbaseScript encodes height and extra nonce (BIP34-flavored) so every
// coinbase transaction is unique.
func coinbaseScript(height int64, extra uint64) []byte {
	return []byte{
		byte(height), byte(height >> 8), byte(height >> 16), byte(height >> 24),
		byte(extra), byte(extra >> 8), byte(extra >> 16), byte(extra >> 24),
		byte(extra >> 32), byte(extra >> 40), byte(extra >> 48), byte(extra >> 56),
	}
}

func parentMTP(parent *chain.Node) uint32 {
	var ts []uint32
	for cur := parent; cur != nil && len(ts) < 11; cur = cur.Parent() {
		ts = append(ts, cur.Header.Timestamp)
	}
	for i, j := 0, len(ts)-1; i < j; i, j = i+1, j-1 {
		ts[i], ts[j] = ts[j], ts[i]
	}
	return btc.MedianTimePast(ts)
}
