package btcnode

import (
	"fmt"
	"sort"

	"icbtc/internal/btc"
	"icbtc/internal/chain"
	"icbtc/internal/simnet"
	"icbtc/internal/utxo"
)

// Node is a simulated Bitcoin full node. It maintains a header tree rooted
// at genesis, a block store, a UTXO view of the current best chain (with
// undo data for reorgs), and a mempool, and it gossips blocks and
// transactions with its peers.
type Node struct {
	ID      simnet.NodeID
	net     *simnet.Network
	params  *btc.Params
	tree    *chain.Tree
	blocks  map[btc.Hash]*btc.Block
	mempool map[btc.Hash]*btc.Transaction

	// utxoView tracks the UTXO set along the active chain; undoStack holds
	// per-block undo data aligned with activeChain[1:].
	utxoView    *utxo.Set
	activeTip   *chain.Node
	undoByBlock map[btc.Hash]*utxo.BlockUndo

	// orphans holds blocks whose parent is not yet known, keyed by the
	// missing parent hash; they are retried when the parent arrives.
	orphans map[btc.Hash][]*btc.Block

	// peers this node gossips with (its outbound+inbound connections).
	peers map[simnet.NodeID]bool
	// knownAddrs is the node's address book, served in MsgAddr replies.
	knownAddrs []string

	// ValidateScripts controls whether transaction input scripts are
	// verified when accepting mempool transactions. Honest nodes verify;
	// tests can disable to inject invalid-but-mined transactions.
	ValidateScripts bool

	// Stats
	blocksAccepted int
	reorgs         int
}

// NewNode creates a node with the network's genesis chain.
func NewNode(id simnet.NodeID, net *simnet.Network, params *btc.Params) *Node {
	n := &Node{
		ID:              id,
		net:             net,
		params:          params,
		tree:            chain.NewTree(params.GenesisHeader, 0),
		blocks:          make(map[btc.Hash]*btc.Block),
		mempool:         make(map[btc.Hash]*btc.Transaction),
		utxoView:        utxo.New(params.Network),
		undoByBlock:     make(map[btc.Hash]*utxo.BlockUndo),
		orphans:         make(map[btc.Hash][]*btc.Block),
		peers:           make(map[simnet.NodeID]bool),
		ValidateScripts: true,
	}
	n.activeTip = n.tree.Root()
	// Store a synthetic genesis block (empty) so getdata for genesis works.
	n.blocks[n.tree.Root().Hash] = &btc.Block{Header: params.GenesisHeader}
	net.Register(id, n)
	return n
}

// Params returns the node's network parameters.
func (n *Node) Params() *btc.Params { return n.params }

// Tree exposes the node's header tree (read-only use by tests and miners).
func (n *Node) Tree() *chain.Tree { return n.tree }

// BestTip returns the tip of the node's active chain.
func (n *Node) BestTip() *chain.Node { return n.activeTip }

// Height returns the active chain height.
func (n *Node) Height() int64 { return n.activeTip.Height }

// UTXOView returns the node's UTXO set along the active chain.
func (n *Node) UTXOView() *utxo.Set { return n.utxoView }

// MempoolSize returns the number of transactions waiting to be mined.
func (n *Node) MempoolSize() int { return len(n.mempool) }

// MempoolHas reports whether the node's mempool holds txid.
func (n *Node) MempoolHas(txid btc.Hash) bool { return n.mempool[txid] != nil }

// Reorgs returns how many chain reorganizations the node performed.
func (n *Node) Reorgs() int { return n.reorgs }

// AddPeer connects this node to a peer (one direction; callers typically
// call Connect on both).
func (n *Node) AddPeer(peer simnet.NodeID) {
	if peer != n.ID {
		n.peers[peer] = true
	}
}

// Connect links two nodes symmetrically.
func Connect(a, b *Node) {
	a.AddPeer(b.ID)
	b.AddPeer(a.ID)
}

// SetAddressBook installs the addresses this node serves to MsgGetAddr.
func (n *Node) SetAddressBook(addrs []string) {
	n.knownAddrs = append([]string(nil), addrs...)
}

// GetBlock returns a stored block.
func (n *Node) GetBlock(h btc.Hash) (*btc.Block, bool) {
	b, ok := n.blocks[h]
	return b, ok
}

// Receive implements simnet.Endpoint, dispatching on message type.
func (n *Node) Receive(from simnet.NodeID, msg any) {
	switch m := msg.(type) {
	case MsgGetAddr:
		n.net.Send(n.ID, from, MsgAddr{Addrs: append([]string(nil), n.knownAddrs...)})
	case MsgGetHeaders:
		n.handleGetHeaders(from, m)
	case MsgGetData:
		n.handleGetData(from, m)
	case MsgHeaders:
		n.handleHeaders(from, m)
	case MsgBlock:
		n.handleBlock(from, m)
	case MsgInvBlock:
		if !n.tree.Contains(m.Hash) {
			n.net.Send(n.ID, from, MsgGetData{BlockHashes: []btc.Hash{m.Hash}})
		}
	case MsgInvTx:
		if n.mempool[m.TxID] == nil {
			n.net.Send(n.ID, from, MsgGetTx{TxID: m.TxID})
		}
	case MsgGetTx:
		if tx := n.mempool[m.TxID]; tx != nil {
			n.net.Send(n.ID, from, MsgTx{Tx: tx})
		} else {
			n.net.Send(n.ID, from, MsgNotFound{Hashes: []btc.Hash{m.TxID}})
		}
	case MsgTx:
		n.AcceptTx(m.Tx)
	case MsgAddr, MsgNotFound:
		// Nodes do not act on these; adapters do.
	}
}

// handleGetHeaders serves headers from the best chain after the locator.
// As in Bitcoin, the starting point is the first locator hash that lies on
// the responder's CURRENT chain — a locator entry on a stale branch must
// not anchor the response, or a freshly reorged peer would be served
// orphans.
func (n *Node) handleGetHeaders(from simnet.NodeID, m MsgGetHeaders) {
	cur := n.tree.CurrentChain()
	onChain := make(map[btc.Hash]bool, len(cur))
	for _, node := range cur {
		onChain[node.Hash] = true
	}
	start := n.tree.Root()
	for _, h := range m.Locator {
		if node := n.tree.Get(h); node != nil && onChain[h] {
			start = node
			break
		}
	}
	// Serve headers along the current best chain strictly after start, plus
	// headers on other branches at those heights (SPV clients see forks).
	var out []btc.BlockHeader
	for _, node := range cur {
		if node.Height <= start.Height {
			continue
		}
		out = append(out, node.Header)
		if len(out) >= MaxHeadersPerMsg {
			break
		}
		if !m.Stop.IsZero() && node.Hash == m.Stop {
			break
		}
	}
	// Include fork headers above the locator point so peers can track forks.
	if len(out) < MaxHeadersPerMsg {
		for h := start.Height + 1; h <= n.tree.MaxHeight() && len(out) < MaxHeadersPerMsg; h++ {
			for _, node := range n.tree.AtHeight(h) {
				if !onChain[node.Hash] {
					out = append(out, node.Header)
				}
			}
		}
	}
	n.net.Send(n.ID, from, MsgHeaders{Headers: out})
}

// handleGetData serves requested blocks; unknown hashes get MsgNotFound.
func (n *Node) handleGetData(from simnet.NodeID, m MsgGetData) {
	var missing []btc.Hash
	for _, h := range m.BlockHashes {
		if b, ok := n.blocks[h]; ok {
			n.net.Send(n.ID, from, MsgBlock{Block: b})
		} else {
			missing = append(missing, h)
		}
	}
	if len(missing) > 0 {
		n.net.Send(n.ID, from, MsgNotFound{Hashes: missing})
	}
}

// handleHeaders records announced headers and requests unknown blocks.
func (n *Node) handleHeaders(from simnet.NodeID, m MsgHeaders) {
	var want []btc.Hash
	for i := range m.Headers {
		h := m.Headers[i]
		hash := h.BlockHash()
		if n.tree.Contains(hash) {
			continue
		}
		parent := n.tree.Get(h.PrevBlock)
		if parent == nil {
			continue // orphan; will be fetched on a later sync round
		}
		if err := chain.ValidateHeader(&h, parent, n.params, n.net.Scheduler().Now()); err != nil {
			continue
		}
		if _, err := n.tree.Insert(h); err != nil {
			continue
		}
		want = append(want, hash)
	}
	if len(want) > 0 {
		n.net.Send(n.ID, from, MsgGetData{BlockHashes: want})
	}
}

// maxOrphans bounds the orphan pool.
const maxOrphans = 256

// handleBlock validates and connects a received block, then relays it.
// Blocks whose parent is unknown are parked in the orphan pool and a
// header catch-up is requested from the sender.
func (n *Node) handleBlock(from simnet.NodeID, m MsgBlock) {
	if m.Block == nil {
		return
	}
	prev := m.Block.Header.PrevBlock
	if !n.tree.Contains(prev) {
		if n.orphanCount() < maxOrphans {
			n.orphans[prev] = append(n.orphans[prev], m.Block)
		}
		n.net.Send(n.ID, from, MsgGetHeaders{Locator: n.Locator()})
		return
	}
	if accepted, _ := n.AcceptBlock(m.Block); accepted {
		n.relayBlock(m.Block.BlockHash(), from)
		n.adoptOrphansOf(m.Block.BlockHash(), from)
	}
}

// adoptOrphansOf recursively connects orphans that were waiting for hash.
func (n *Node) adoptOrphansOf(hash btc.Hash, from simnet.NodeID) {
	waiting := n.orphans[hash]
	if len(waiting) == 0 {
		return
	}
	delete(n.orphans, hash)
	for _, blk := range waiting {
		if accepted, _ := n.AcceptBlock(blk); accepted {
			n.relayBlock(blk.BlockHash(), from)
			n.adoptOrphansOf(blk.BlockHash(), from)
		}
	}
}

func (n *Node) orphanCount() int {
	total := 0
	for _, v := range n.orphans {
		total += len(v)
	}
	return total
}

// Locator builds a block locator for getheaders: hashes along the active
// chain, dense near the tip then exponentially sparser, ending at genesis.
func (n *Node) Locator() []btc.Hash {
	var locator []btc.Hash
	step := int64(1)
	cur := n.activeTip
	for cur != nil {
		locator = append(locator, cur.Hash)
		if cur.Parent() == nil {
			break
		}
		if len(locator) >= 10 {
			step *= 2
		}
		for i := int64(0); i < step && cur.Parent() != nil; i++ {
			cur = cur.Parent()
		}
	}
	return locator
}

// peersSorted returns the peer set in sorted order. Relay loops must not
// iterate the map directly: every send consumes scheduler RNG (latency and
// loss draws), so map iteration order would leak real-process
// nondeterminism into the seeded simulation.
func (n *Node) peersSorted() []simnet.NodeID {
	out := make([]simnet.NodeID, 0, len(n.peers))
	for p := range n.peers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// relayBlock announces a block to all peers except skip.
func (n *Node) relayBlock(hash btc.Hash, skip simnet.NodeID) {
	for _, p := range n.peersSorted() {
		if p != skip {
			n.net.Send(n.ID, p, MsgInvBlock{Hash: hash})
		}
	}
}

// AcceptBlock validates a block and connects it to the node's chain state.
// It returns (accepted, error); a false/nil return means the block was a
// duplicate. Accepting a block may trigger a reorganization when the block
// extends a branch with more cumulative work than the active chain.
func (n *Node) AcceptBlock(block *btc.Block) (bool, error) {
	hash := block.BlockHash()
	if _, have := n.blocks[hash]; have {
		return false, nil
	}
	parent := n.tree.Get(block.Header.PrevBlock)
	if parent == nil {
		return false, fmt.Errorf("btcnode: orphan block %s", hash)
	}
	node := n.tree.Get(hash)
	if node == nil {
		if err := chain.ValidateHeader(&block.Header, parent, n.params, n.net.Scheduler().Now()); err != nil {
			return false, fmt.Errorf("btcnode: invalid header: %w", err)
		}
		var err error
		node, err = n.tree.Insert(block.Header)
		if err != nil {
			return false, fmt.Errorf("btcnode: inserting header: %w", err)
		}
	}
	if err := chain.ValidateBlock(block); err != nil {
		return false, fmt.Errorf("btcnode: invalid block: %w", err)
	}
	n.blocks[hash] = block
	n.blocksAccepted++

	// Adopt the branch with the most cumulative work among branches whose
	// blocks are all available.
	best := n.bestAvailableTip()
	if best != nil && best != n.activeTip {
		if err := n.reorganizeTo(best); err != nil {
			return false, fmt.Errorf("btcnode: reorg: %w", err)
		}
	}
	// Drop mined transactions from the mempool.
	for _, tx := range block.Transactions {
		delete(n.mempool, tx.TxID())
	}
	return true, nil
}

// bestAvailableTip finds the leaf with maximal cumulative work whose whole
// path from the root has blocks available.
func (n *Node) bestAvailableTip() *chain.Node {
	var best *chain.Node
	for _, tip := range n.tree.Tips() {
		if !n.branchAvailable(tip) {
			continue
		}
		if best == nil || tip.CumulativeWork.Cmp(best.CumulativeWork) > 0 {
			best = tip
		}
	}
	return best
}

func (n *Node) branchAvailable(tip *chain.Node) bool {
	for cur := tip; cur != nil; cur = cur.Parent() {
		if _, ok := n.blocks[cur.Hash]; !ok {
			return false
		}
	}
	return true
}

// reorganizeTo switches the active chain to the branch ending at newTip,
// unapplying blocks back to the fork point and applying the new branch.
func (n *Node) reorganizeTo(newTip *chain.Node) error {
	// Find the fork point: walk both branches to equal height, then in step.
	oldBranch := map[btc.Hash]bool{}
	for cur := n.activeTip; cur != nil; cur = cur.Parent() {
		oldBranch[cur.Hash] = true
	}
	forkPoint := newTip
	for !oldBranch[forkPoint.Hash] {
		forkPoint = forkPoint.Parent()
	}
	// Unapply old blocks above the fork point (tip-first).
	detached := 0
	for cur := n.activeTip; cur != forkPoint; cur = cur.Parent() {
		undo := n.undoByBlock[cur.Hash]
		if undo == nil {
			return fmt.Errorf("btcnode: missing undo data for %s", cur.Hash)
		}
		if err := n.utxoView.UnapplyBlock(undo); err != nil {
			return err
		}
		delete(n.undoByBlock, cur.Hash)
		// Return the block's non-coinbase transactions to the mempool.
		if blk := n.blocks[cur.Hash]; blk != nil {
			for _, tx := range blk.Transactions {
				if !tx.IsCoinbase() {
					n.mempool[tx.TxID()] = tx
				}
			}
		}
		detached++
	}
	// Apply new branch blocks (fork-point first).
	var toApply []*chain.Node
	for cur := newTip; cur != forkPoint; cur = cur.Parent() {
		toApply = append(toApply, cur)
	}
	for i := len(toApply) - 1; i >= 0; i-- {
		node := toApply[i]
		blk := n.blocks[node.Hash]
		if blk == nil {
			return fmt.Errorf("btcnode: missing block %s during reorg", node.Hash)
		}
		undo, _, err := n.utxoView.ApplyBlock(blk, node.Height)
		if err != nil {
			return fmt.Errorf("btcnode: connect %s: %w", node.Hash, err)
		}
		n.undoByBlock[node.Hash] = undo
	}
	if detached > 0 {
		n.reorgs++
	}
	n.activeTip = newTip
	return nil
}

// AcceptTx validates a transaction against the node's UTXO view and adds it
// to the mempool, relaying an inventory announcement to peers. Returns true
// if the transaction was newly accepted.
func (n *Node) AcceptTx(tx *btc.Transaction) bool {
	if tx == nil {
		return false
	}
	txid := tx.TxID()
	if n.mempool[txid] != nil {
		return false
	}
	if err := tx.CheckSanity(); err != nil {
		return false
	}
	if tx.IsCoinbase() {
		return false
	}
	// Inputs must exist, be mature if coinbases, and cover outputs; scripts
	// must verify when enabled.
	var inValue, outValue int64
	for i := range tx.Inputs {
		prev, ok := n.utxoView.Get(tx.Inputs[i].PreviousOutPoint)
		if !ok {
			return false
		}
		// Coinbase maturity: outputs minted at height h spend only after
		// CoinbaseMaturity confirmations. The view records creation height;
		// coinbase outputs are identifiable as vout of a coinbase txid,
		// which the node tracks via the block at that height.
		if n.isCoinbaseOutput(tx.Inputs[i].PreviousOutPoint) {
			confirmations := n.activeTip.Height - prev.Height + 1
			if confirmations < int64(n.params.CoinbaseMaturity) {
				return false
			}
		}
		inValue += prev.Value
		if n.ValidateScripts {
			if err := btc.VerifyInput(tx, i, prev.PkScript); err != nil {
				return false
			}
		}
	}
	for i := range tx.Outputs {
		outValue += tx.Outputs[i].Value
	}
	if outValue > inValue {
		return false
	}
	n.mempool[txid] = tx
	for _, p := range n.peersSorted() {
		n.net.Send(n.ID, p, MsgInvTx{TxID: txid})
	}
	return true
}

// isCoinbaseOutput reports whether an outpoint was created by a coinbase
// transaction on the active chain.
func (n *Node) isCoinbaseOutput(op btc.OutPoint) bool {
	u, ok := n.utxoView.Get(op)
	if !ok {
		return false
	}
	node := n.nodeAtActiveHeight(u.Height)
	if node == nil {
		return false
	}
	blk := n.blocks[node.Hash]
	if blk == nil || len(blk.Transactions) == 0 {
		return false
	}
	return blk.Transactions[0].TxID() == op.TxID
}

// nodeAtActiveHeight walks the active chain to the node at a height.
func (n *Node) nodeAtActiveHeight(h int64) *chain.Node {
	cur := n.activeTip
	for cur != nil && cur.Height > h {
		cur = cur.Parent()
	}
	if cur != nil && cur.Height == h {
		return cur
	}
	return nil
}

// MempoolTxs returns the mempool contents in deterministic (txid) order.
func (n *Node) MempoolTxs() []*btc.Transaction {
	txs := make([]*btc.Transaction, 0, len(n.mempool))
	ids := make([]btc.Hash, 0, len(n.mempool))
	for id := range n.mempool {
		ids = append(ids, id)
	}
	sortHashes(ids)
	for _, id := range ids {
		txs = append(txs, n.mempool[id])
	}
	return txs
}

func sortHashes(hs []btc.Hash) {
	for i := 1; i < len(hs); i++ {
		for j := i; j > 0 && lessHash(hs[j], hs[j-1]); j-- {
			hs[j], hs[j-1] = hs[j-1], hs[j]
		}
	}
}

func lessHash(a, b btc.Hash) bool {
	for i := btc.HashSize - 1; i >= 0; i-- {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
