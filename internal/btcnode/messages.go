// Package btcnode implements the simulated Bitcoin peer-to-peer network the
// Bitcoin adapter connects to: full nodes (header tree, block store, UTXO
// view with reorg handling, mempool, gossip), miners performing real
// proof-of-work at simulation-scale difficulty, a DNS-seed-style address
// directory for peer discovery, and adversarial node variants used by the
// security experiments (§IV-A).
package btcnode

import (
	"icbtc/internal/btc"
)

// The message vocabulary mirrors the parts of the Bitcoin P2P protocol the
// integration exercises. Messages are plain values delivered over simnet.

// MsgGetAddr requests peer addresses (DNS-seed / addr gossip discovery).
type MsgGetAddr struct{}

// MsgAddr answers MsgGetAddr with known node addresses.
type MsgAddr struct {
	Addrs []string
}

// MsgGetHeaders requests headers after the best locator match, as in the
// Bitcoin getheaders message.
type MsgGetHeaders struct {
	// Locator is a list of block hashes, newest first, that the requester
	// already has; the responder finds the first one it knows.
	Locator []btc.Hash
	// Stop, when non-zero, limits the response to headers up to that hash.
	Stop btc.Hash
}

// MaxHeadersPerMsg matches Bitcoin's 2000-header limit.
const MaxHeadersPerMsg = 2000

// MsgHeaders carries block headers.
type MsgHeaders struct {
	Headers []btc.BlockHeader
}

// MsgGetData requests full blocks by hash.
type MsgGetData struct {
	BlockHashes []btc.Hash
}

// MsgBlock carries one full block.
type MsgBlock struct {
	Block *btc.Block
}

// MsgInvBlock announces a new block by hash.
type MsgInvBlock struct {
	Hash btc.Hash
}

// MsgInvTx announces a transaction by ID.
type MsgInvTx struct {
	TxID btc.Hash
}

// MsgGetTx requests an announced transaction.
type MsgGetTx struct {
	TxID btc.Hash
}

// MsgTx carries one transaction.
type MsgTx struct {
	Tx *btc.Transaction
}

// MsgNotFound reports that requested data is unavailable.
type MsgNotFound struct {
	Hashes []btc.Hash
}
