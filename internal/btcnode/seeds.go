package btcnode

import (
	"sort"

	"icbtc/internal/simnet"
)

// SeedDirectory plays the role of the hard-coded DNS seed nodes bitcoind
// (and the Bitcoin adapter, §III-B) bootstraps from: it maps a handful of
// well-known seed identities to node addresses. In the simulation a seed is
// simply a node that answers MsgGetAddr with its address book.
type SeedDirectory struct {
	seeds []simnet.NodeID
	addrs map[string]simnet.NodeID
}

// NewSeedDirectory creates an empty directory.
func NewSeedDirectory() *SeedDirectory {
	return &SeedDirectory{addrs: make(map[string]simnet.NodeID)}
}

// AddSeed registers a seed node identity.
func (d *SeedDirectory) AddSeed(id simnet.NodeID) {
	d.seeds = append(d.seeds, id)
}

// Seeds returns the seed identities (the adapter's hard-coded list).
func (d *SeedDirectory) Seeds() []simnet.NodeID {
	out := make([]simnet.NodeID, len(d.seeds))
	copy(out, d.seeds)
	return out
}

// AddNode registers a reachable node address.
func (d *SeedDirectory) AddNode(addr string, id simnet.NodeID) {
	d.addrs[addr] = id
}

// Resolve maps an address string to a node ID.
func (d *SeedDirectory) Resolve(addr string) (simnet.NodeID, bool) {
	id, ok := d.addrs[addr]
	return id, ok
}

// AllAddrs returns every registered address, sorted for determinism.
func (d *SeedDirectory) AllAddrs() []string {
	out := make([]string, 0, len(d.addrs))
	for a := range d.addrs {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}
