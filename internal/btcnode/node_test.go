package btcnode

import (
	"math/rand"
	"testing"

	"icbtc/internal/btc"
	"icbtc/internal/secp256k1"
	"icbtc/internal/simnet"
)

func newTestNet(t *testing.T, seed int64) (*simnet.Scheduler, *simnet.Network, *btc.Params) {
	t.Helper()
	s := simnet.NewScheduler(seed)
	n := simnet.NewNetwork(s)
	return s, n, btc.RegtestParams()
}

func testKey(t *testing.T, seed int64) *secp256k1.PrivateKey {
	t.Helper()
	key, err := secp256k1.GeneratePrivateKey(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return key
}

func TestMineAndAccept(t *testing.T) {
	_, net, params := newTestNet(t, 1)
	node := NewNode("btc/0", net, params)
	miner := NewMinerWithKey(node, testKey(t, 1))

	blocks, err := miner.MineChain(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 5 || node.Height() != 5 {
		t.Fatalf("height %d", node.Height())
	}
	// Every block must satisfy its PoW target.
	for _, b := range blocks {
		if !btc.HashMeetsTarget(b.BlockHash(), b.Header.Bits) {
			t.Fatal("mined block fails its own target")
		}
	}
	// Coinbase rewards accumulate in the UTXO view.
	if node.UTXOView().Len() != 5 {
		t.Fatalf("utxo count %d", node.UTXOView().Len())
	}
}

func TestDuplicateBlockIgnored(t *testing.T) {
	_, net, params := newTestNet(t, 2)
	node := NewNode("btc/0", net, params)
	miner := NewMinerWithKey(node, testKey(t, 2))
	blk, err := miner.Mine(0)
	if err != nil {
		t.Fatal(err)
	}
	accepted, err := node.AcceptBlock(blk)
	if err != nil || accepted {
		t.Fatalf("duplicate: accepted=%v err=%v", accepted, err)
	}
}

func TestOrphanBlockRejected(t *testing.T) {
	_, net, params := newTestNet(t, 3)
	node := NewNode("btc/0", net, params)
	other := NewNode("btc/1", net, params)
	m := NewMinerWithKey(other, testKey(t, 3))
	if _, err := m.MineChain(2, 0); err != nil {
		t.Fatal(err)
	}
	tip, _ := other.GetBlock(other.BestTip().Hash)
	if _, err := node.AcceptBlock(tip); err == nil {
		t.Fatal("orphan accepted")
	}
}

func TestGossipPropagatesBlocks(t *testing.T) {
	s, net, params := newTestNet(t, 4)
	a := NewNode("btc/0", net, params)
	b := NewNode("btc/1", net, params)
	c := NewNode("btc/2", net, params)
	Connect(a, b)
	Connect(b, c)

	miner := NewMinerWithKey(a, testKey(t, 4))
	if _, err := miner.MineChain(3, 0); err != nil {
		t.Fatal(err)
	}
	s.Drain(10_000)
	if b.Height() != 3 || c.Height() != 3 {
		t.Fatalf("heights b=%d c=%d", b.Height(), c.Height())
	}
	if b.BestTip().Hash != a.BestTip().Hash || c.BestTip().Hash != a.BestTip().Hash {
		t.Fatal("tips diverged")
	}
}

func TestTransactionPropagationAndMining(t *testing.T) {
	s, net, params := newTestNet(t, 5)
	a := NewNode("btc/0", net, params)
	b := NewNode("btc/1", net, params)
	Connect(a, b)

	key := testKey(t, 5)
	miner := NewMinerWithKey(a, key)
	if _, err := miner.MineChain(1, 0); err != nil {
		t.Fatal(err)
	}
	s.Drain(10_000)

	// Spend the coinbase to a new address.
	addr := btc.AddressFromPubKey(key.PubKey().SerializeCompressed(), params.Network)
	utxos := a.UTXOView().UTXOsForAddress(addr.String())
	if len(utxos) != 1 {
		t.Fatalf("utxos %d", len(utxos))
	}
	destKey := testKey(t, 6)
	dest := btc.AddressFromPubKey(destKey.PubKey().SerializeCompressed(), params.Network)
	tx := &btc.Transaction{
		Version: 2,
		Inputs:  []btc.TxIn{{PreviousOutPoint: utxos[0].OutPoint, Sequence: 0xffffffff}},
		Outputs: []btc.TxOut{{Value: utxos[0].Value - 1000, PkScript: btc.PayToAddrScript(dest)}},
	}
	if err := btc.SignInput(tx, 0, utxos[0].PkScript, key); err != nil {
		t.Fatal(err)
	}
	if !a.AcceptTx(tx) {
		t.Fatal("valid tx rejected")
	}
	s.Drain(10_000)
	if !b.MempoolHas(tx.TxID()) {
		t.Fatal("tx did not propagate")
	}

	// Mine it; both nodes should see the spend.
	if _, err := miner.Mine(0); err != nil {
		t.Fatal(err)
	}
	s.Drain(10_000)
	if a.MempoolSize() != 0 || b.MempoolSize() != 0 {
		t.Fatal("mempool not cleared after mining")
	}
	if got := b.UTXOView().Balance(dest.String()); got != utxos[0].Value-1000 {
		t.Fatalf("dest balance %d", got)
	}
}

func TestRejectsInvalidTx(t *testing.T) {
	_, net, params := newTestNet(t, 7)
	node := NewNode("btc/0", net, params)
	key := testKey(t, 7)
	miner := NewMinerWithKey(node, key)
	if _, err := miner.Mine(0); err != nil {
		t.Fatal(err)
	}
	addr := btc.AddressFromPubKey(key.PubKey().SerializeCompressed(), params.Network)
	utxos := node.UTXOView().UTXOsForAddress(addr.String())

	// Unsigned spend must be rejected.
	unsigned := &btc.Transaction{
		Version: 2,
		Inputs:  []btc.TxIn{{PreviousOutPoint: utxos[0].OutPoint}},
		Outputs: []btc.TxOut{{Value: 1, PkScript: utxos[0].PkScript}},
	}
	if node.AcceptTx(unsigned) {
		t.Fatal("unsigned tx accepted")
	}
	// Overspending must be rejected even with a valid signature.
	over := &btc.Transaction{
		Version: 2,
		Inputs:  []btc.TxIn{{PreviousOutPoint: utxos[0].OutPoint}},
		Outputs: []btc.TxOut{{Value: utxos[0].Value + 1, PkScript: utxos[0].PkScript}},
	}
	if err := btc.SignInput(over, 0, utxos[0].PkScript, key); err != nil {
		t.Fatal(err)
	}
	if node.AcceptTx(over) {
		t.Fatal("overspend accepted")
	}
	// Spending a nonexistent output must be rejected.
	ghost := &btc.Transaction{
		Version: 2,
		Inputs:  []btc.TxIn{{PreviousOutPoint: btc.OutPoint{TxID: btc.DoubleSHA256([]byte("ghost"))}}},
		Outputs: []btc.TxOut{{Value: 1, PkScript: utxos[0].PkScript}},
	}
	if node.AcceptTx(ghost) {
		t.Fatal("ghost spend accepted")
	}
	// Coinbase via AcceptTx must be rejected.
	cb := &btc.Transaction{
		Inputs:  []btc.TxIn{{PreviousOutPoint: btc.OutPoint{TxID: btc.ZeroHash, Vout: 0xffffffff}}},
		Outputs: []btc.TxOut{{Value: 1, PkScript: utxos[0].PkScript}},
	}
	if node.AcceptTx(cb) {
		t.Fatal("coinbase accepted into mempool")
	}
}

func TestReorgSwitchesToHeavierChain(t *testing.T) {
	s, net, params := newTestNet(t, 8)
	a := NewNode("btc/0", net, params)
	b := NewNode("btc/1", net, params)
	// NOT connected yet: they build competing chains.
	minerA := NewMinerWithKey(a, testKey(t, 8))
	minerB := NewMinerWithKey(b, testKey(t, 9))

	if _, err := minerA.MineChain(2, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := minerB.MineChain(4, 0); err != nil {
		t.Fatal(err)
	}
	if a.Height() != 2 || b.Height() != 4 {
		t.Fatalf("pre-reorg heights %d/%d", a.Height(), b.Height())
	}

	// Connect and let B's longer chain win on A.
	Connect(a, b)
	// Trigger sync by announcing B's tip.
	net.Send(b.ID, a.ID, MsgInvBlock{Hash: b.BestTip().Hash})
	// A requests the block, gets it, but it's an orphan... it needs headers
	// first. Send headers explicitly (the adapter protocol does this; nodes
	// use inv+getdata cascades).
	var headers []btc.BlockHeader
	for _, n := range b.Tree().CurrentChain()[1:] {
		headers = append(headers, n.Header)
	}
	net.Send(b.ID, a.ID, MsgHeaders{Headers: headers})
	s.Drain(100_000)

	if a.BestTip().Hash != b.BestTip().Hash {
		t.Fatalf("a did not reorg: height %d vs %d", a.Height(), b.Height())
	}
	if a.Reorgs() == 0 {
		t.Fatal("no reorg recorded")
	}
	// A's coinbase UTXOs from the abandoned branch must be gone.
	if a.UTXOView().Len() != 4 {
		t.Fatalf("utxo count %d after reorg, want 4", a.UTXOView().Len())
	}
}

func TestReorgReturnsTxsToMempool(t *testing.T) {
	s, net, params := newTestNet(t, 10)
	a := NewNode("btc/0", net, params)
	key := testKey(t, 10)
	minerA := NewMinerWithKey(a, key)
	if _, err := minerA.Mine(0); err != nil {
		t.Fatal(err)
	}
	addr := btc.AddressFromPubKey(key.PubKey().SerializeCompressed(), params.Network)
	utxos := a.UTXOView().UTXOsForAddress(addr.String())
	tx := &btc.Transaction{
		Version: 2,
		Inputs:  []btc.TxIn{{PreviousOutPoint: utxos[0].OutPoint}},
		Outputs: []btc.TxOut{{Value: utxos[0].Value - 500, PkScript: utxos[0].PkScript}},
	}
	if err := btc.SignInput(tx, 0, utxos[0].PkScript, key); err != nil {
		t.Fatal(err)
	}
	if !a.AcceptTx(tx) {
		t.Fatal("tx rejected")
	}
	// Mine it into block 2 on branch X.
	if _, err := minerA.Mine(0); err != nil {
		t.Fatal(err)
	}
	if a.MempoolSize() != 0 {
		t.Fatal("tx not mined")
	}

	// Build a heavier competing branch from block 1 on another node sharing
	// the same block-1 (replay A's first block into B).
	b := NewNode("btc/1", net, params)
	blk1, _ := a.GetBlock(a.Tree().AtHeight(1)[0].Hash)
	if _, err := b.AcceptBlock(blk1); err != nil {
		t.Fatal(err)
	}
	minerB := NewMinerWithKey(b, testKey(t, 11))
	if _, err := minerB.MineChain(2, 0); err != nil {
		t.Fatal(err)
	}

	// Feed B's branch to A: headers then blocks.
	var headers []btc.BlockHeader
	for _, n := range b.Tree().CurrentChain()[2:] { // skip genesis and shared block 1
		headers = append(headers, n.Header)
	}
	Connect(a, b)
	net.Send(b.ID, a.ID, MsgHeaders{Headers: headers})
	s.Drain(100_000)

	if a.BestTip().Hash != b.BestTip().Hash {
		t.Fatalf("no reorg: %d vs %d", a.Height(), b.Height())
	}
	// The displaced spend must be back in the mempool.
	if !a.MempoolHas(tx.TxID()) {
		t.Fatal("displaced tx not restored to mempool")
	}
}

func TestBuildHonestNetworkConverges(t *testing.T) {
	s, net, params := newTestNet(t, 12)
	_ = s
	sn := BuildHonestNetwork(net, params, 8)
	if len(sn.Nodes) != 8 {
		t.Fatal("node count")
	}
	miner := NewMinerWithKey(sn.Nodes[0], testKey(t, 12))
	if _, err := miner.MineChain(6, 0); err != nil {
		t.Fatal(err)
	}
	h, err := sn.SyncAll(500_000)
	if err != nil {
		t.Fatal(err)
	}
	if h != 6 {
		t.Fatalf("converged height %d", h)
	}
}

func TestSeedDirectory(t *testing.T) {
	d := NewSeedDirectory()
	d.AddNode("addr1", "btc/1")
	d.AddNode("addr0", "btc/0")
	d.AddSeed("btc/0")
	if id, ok := d.Resolve("addr1"); !ok || id != "btc/1" {
		t.Fatal("resolve failed")
	}
	if _, ok := d.Resolve("nope"); ok {
		t.Fatal("phantom resolve")
	}
	addrs := d.AllAddrs()
	if len(addrs) != 2 || addrs[0] != "addr0" {
		t.Fatalf("addrs %v", addrs)
	}
	if len(d.Seeds()) != 1 {
		t.Fatal("seeds")
	}
}

func TestAdversaryPrivateForkAndServing(t *testing.T) {
	s, net, params := newTestNet(t, 13)
	sn := BuildHonestNetwork(net, params, 3)
	miner := NewMinerWithKey(sn.Nodes[0], testKey(t, 13))
	if _, err := miner.MineChain(3, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sn.SyncAll(200_000); err != nil {
		t.Fatal(err)
	}

	sn.AddAdversaries(1)
	adv := sn.Adversaries[0]
	s.Drain(200_000) // let the adversary sync the honest chain
	// Sync adversary manually if gossip missed it.
	for _, n := range sn.Nodes[0].Tree().CurrentChain()[1:] {
		blk, _ := sn.Nodes[0].GetBlock(n.Hash)
		_, _ = adv.Node.AcceptBlock(blk)
	}
	if adv.Node.Height() != 3 {
		t.Fatalf("adversary height %d", adv.Node.Height())
	}

	// Mine a 2-block private fork from height 1.
	base := adv.Node.Tree().AtHeight(1)[0].Hash
	if err := adv.MinePrivateFork(base, 2, nil); err != nil {
		t.Fatal(err)
	}
	if len(adv.Fork()) != 2 {
		t.Fatal("fork length")
	}
	// Honest nodes must not have seen fork blocks (not relayed).
	forkTip := adv.Fork()[1].BlockHash()
	for _, n := range sn.Nodes {
		if n.Tree().Contains(forkTip) {
			t.Fatal("private fork leaked")
		}
	}

	// Fork-only serving: a getheaders must return only fork headers.
	adv.SetServeForkOnly(true)
	probe := &recorderEndpoint{}
	net.Register("probe", probe)
	net.Send("probe", adv.Node.ID, MsgGetHeaders{})
	s.Drain(10_000)
	if len(probe.headers) != 2 {
		t.Fatalf("fork-only served %d headers", len(probe.headers))
	}

	// Silent mode: no response at all.
	adv.SetSilent(true)
	probe.headers = nil
	net.Send("probe", adv.Node.ID, MsgGetHeaders{})
	s.Drain(10_000)
	if probe.headers != nil {
		t.Fatal("silent adversary answered")
	}
}

type recorderEndpoint struct {
	headers []btc.BlockHeader
}

func (r *recorderEndpoint) Receive(_ simnet.NodeID, msg any) {
	if m, ok := msg.(MsgHeaders); ok {
		r.headers = append(r.headers, m.Headers...)
	}
}

func TestAdversaryInjectedTransaction(t *testing.T) {
	_, net, params := newTestNet(t, 14)
	adv := NewAdversary("btcadv/0", net, params)
	// Inject a transaction spending a nonexistent output — valid-looking
	// but unbacked (the Lemma IV.2 "corrupting transaction").
	fake := &btc.Transaction{
		Version: 2,
		Inputs:  []btc.TxIn{{PreviousOutPoint: btc.OutPoint{TxID: btc.DoubleSHA256([]byte("loot"))}}},
		Outputs: []btc.TxOut{{Value: 99, PkScript: btc.PayToPubKeyHashScript([20]byte{1})}},
	}
	genesis := adv.Node.Tree().Root().Hash
	if err := adv.MinePrivateFork(genesis, 3, []*btc.Transaction{fake}); err != nil {
		t.Fatal(err)
	}
	// The injected tx must be inside the first fork block with valid PoW
	// and a correct Merkle root.
	first := adv.Fork()[0]
	found := false
	for _, tx := range first.Transactions {
		if tx.TxID() == fake.TxID() {
			found = true
		}
	}
	if !found {
		t.Fatal("injected tx missing")
	}
	if first.MerkleRoot() != first.Header.MerkleRoot {
		t.Fatal("fork block merkle root stale")
	}
	if !btc.HashMeetsTarget(first.BlockHash(), first.Header.Bits) {
		t.Fatal("fork block fails PoW")
	}
}

func TestCoinbaseMaturityEnforced(t *testing.T) {
	_, net, _ := newTestNet(t, 60)
	params := btc.RegtestParams()
	params.CoinbaseMaturity = 5
	node := NewNode("btc/0", net, params)
	key := testKey(t, 60)
	miner := NewMinerWithKey(node, key)
	if _, err := miner.MineChain(2, 0); err != nil {
		t.Fatal(err)
	}
	addr := btc.AddressFromPubKey(key.PubKey().SerializeCompressed(), params.Network)
	utxos := node.UTXOView().UTXOsForAddress(addr.String())
	// The height-1 coinbase has 2 confirmations < 5: spending must fail.
	young := utxos[len(utxos)-1] // lowest height last (sorted desc)
	spend := &btc.Transaction{
		Version: 2,
		Inputs:  []btc.TxIn{{PreviousOutPoint: young.OutPoint, Sequence: 0xffffffff}},
		Outputs: []btc.TxOut{{Value: young.Value - 1000, PkScript: young.PkScript}},
	}
	if err := btc.SignInput(spend, 0, young.PkScript, key); err != nil {
		t.Fatal(err)
	}
	if node.AcceptTx(spend) {
		t.Fatal("immature coinbase spend accepted")
	}
	// After enough blocks it matures.
	if _, err := miner.MineChain(4, 0); err != nil {
		t.Fatal(err)
	}
	if !node.AcceptTx(spend) {
		t.Fatal("mature coinbase spend rejected")
	}
}
