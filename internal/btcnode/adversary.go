package btcnode

import (
	"fmt"
	"time"

	"icbtc/internal/btc"
	"icbtc/internal/chain"
	"icbtc/internal/simnet"
)

// Adversary models the attacker of §IV-A: it controls a set of Bitcoin
// nodes and has hash power to mine private forks at the honest difficulty
// target (Definition IV.2 bounds how far ahead it can get; the experiments
// sweep that bound).
//
// An adversarial node behaves like a regular node toward its peers but can
// (a) build a private fork off any block and (b) selectively serve only the
// fork ("fork feeding") or serve nothing ("eclipse"), the behaviors used in
// the Lemma IV.2 and IV.3 experiments.
type Adversary struct {
	Node  *Node
	miner *Miner
	// fork holds the privately mined chain, oldest first.
	fork []*btc.Block
	// serveForkOnly, when set, makes the node answer header/data requests
	// exclusively from the private fork.
	serveForkOnly bool
	// silent, when set, makes the node ignore all requests (eclipse).
	silent bool
	// withholdData, when set, answers header requests normally but drops
	// getdata: peers learn of blocks they can never download (withholding).
	withholdData bool
	// corruptBlocks, when set, serves blocks whose transaction list has been
	// tampered with after sealing, so the merkle root no longer matches.
	corruptBlocks bool
	// frozen, when set, drops all announcements (headers/inv/blocks/addr
	// pushes) while still answering explicit requests: the node serves an
	// ever-staler view of the chain.
	frozen bool
	// slowDrip, when > 0, delays the handling of every incoming message by
	// that much virtual time — a slowloris peer that eventually answers
	// everything, but far too late for any request deadline.
	slowDrip time.Duration
}

// NewAdversary wraps a node with adversarial behaviors. The node's script
// validation is disabled: the attacker may include invalid transactions in
// its blocks ("the Bitcoin canister does not verify that the spending
// conditions of transactions are satisfied", §IV-A).
func NewAdversary(id simnet.NodeID, net *simnet.Network, params *btc.Params) *Adversary {
	n := NewNode(id, net, params)
	n.ValidateScripts = false
	a := &Adversary{Node: n}
	a.miner = NewMiner(n, btc.PayToPubKeyHashScript([20]byte{0xEE}))
	// The adversary intercepts its node's message handling.
	net.Register(id, a)
	return a
}

// SetServeForkOnly toggles fork-only serving.
func (a *Adversary) SetServeForkOnly(v bool) { a.serveForkOnly = v }

// SetSilent toggles eclipse mode (no responses at all).
func (a *Adversary) SetSilent(v bool) { a.silent = v }

// SetWithholdData toggles block withholding: headers are announced and
// served, but getdata requests are silently dropped, starving the
// requester's block download while its header tree keeps growing.
func (a *Adversary) SetWithholdData(v bool) { a.withholdData = v }

// SetCorruptBlocks toggles invalid-block serving: every block served via
// getdata has a junk transaction appended after the header was sealed, so
// the merkle root check on the receiving side must reject it.
func (a *Adversary) SetCorruptBlocks(v bool) { a.corruptBlocks = v }

// SetFrozen toggles stale serving: the node stops processing announcements
// (its view of the chain freezes) but keeps answering explicit requests
// from that stale view.
func (a *Adversary) SetFrozen(v bool) { a.frozen = v }

// SetSlowDrip turns the node into a slowloris peer: every incoming message
// is processed — and therefore answered — only after d of virtual time.
// Unlike silence, the peer never stops responding entirely; it is simply too
// slow for any deadline, which is exactly what per-request timeouts and peer
// scoring must catch. Zero disables the delay (messages already in the drip
// still arrive late).
func (a *Adversary) SetSlowDrip(d time.Duration) { a.slowDrip = d }

// Fork returns the private fork blocks, oldest first.
func (a *Adversary) Fork() []*btc.Block { return a.fork }

// MinePrivateFork mines length blocks starting from the block with the
// given hash (which must be in the adversary's tree), without relaying
// them. Transactions can be injected into the first fork block to model a
// "corrupting transaction in a block b' on a forked chain" (Lemma IV.2).
func (a *Adversary) MinePrivateFork(from btc.Hash, length int, inject []*btc.Transaction) error {
	start := a.Node.tree.Get(from)
	if start == nil {
		return fmt.Errorf("btcnode: fork base %s unknown", from)
	}
	a.fork = nil
	parent := start
	for i := 0; i < length; i++ {
		blk, err := a.miner.BuildBlockOn(parent, 0)
		if err != nil {
			return err
		}
		if i == 0 && len(inject) > 0 {
			// Re-assemble rather than mutate: a sealed block's TxIDs are
			// memoized, so amending its transaction list requires a fresh
			// Block value before resealing the header.
			blk = &btc.Block{
				Header:       blk.Header,
				Transactions: append(blk.Transactions[:len(blk.Transactions):len(blk.Transactions)], inject...),
			}
			blk.Header.MerkleRoot = blk.MerkleRoot()
			if err := regrind(&blk.Header); err != nil {
				return err
			}
		}
		// Insert into the adversary's private view without relaying.
		node, err := a.Node.tree.Insert(blk.Header)
		if err != nil {
			return fmt.Errorf("btcnode: private fork insert: %w", err)
		}
		a.Node.blocks[blk.BlockHash()] = blk
		a.fork = append(a.fork, blk)
		parent = node
	}
	return nil
}

func regrind(h *btc.BlockHeader) error {
	for nonce := uint32(0); nonce < maxNonceAttempts; nonce++ {
		h.Nonce = nonce
		if btc.HashMeetsTarget(h.BlockHash(), h.Bits) {
			return nil
		}
	}
	return fmt.Errorf("btcnode: regrind exhausted")
}

// corruptBlockCopy returns a copy of blk with a junk transaction appended
// but the sealed header untouched: the block hash still matches the
// announced header while the merkle root no longer covers the transactions.
func corruptBlockCopy(blk *btc.Block) *btc.Block {
	junk := &btc.Transaction{
		Inputs:  []btc.TxIn{{PreviousOutPoint: btc.OutPoint{Vout: 0xFFFF_FFFE}}},
		Outputs: []btc.TxOut{{Value: 1, PkScript: btc.PayToPubKeyHashScript([20]byte{0xBA, 0xD0})}},
	}
	return &btc.Block{
		Header:       blk.Header,
		Transactions: append(blk.Transactions[:len(blk.Transactions):len(blk.Transactions)], junk),
	}
}

// Receive implements simnet.Endpoint with adversarial request handling.
func (a *Adversary) Receive(from simnet.NodeID, msg any) {
	if a.slowDrip > 0 {
		a.Node.net.Scheduler().After(a.slowDrip, func() { a.handle(from, msg) })
		return
	}
	a.handle(from, msg)
}

// handle applies the active adversarial behaviors to one message.
func (a *Adversary) handle(from simnet.NodeID, msg any) {
	if a.silent {
		return
	}
	if a.withholdData {
		if _, ok := msg.(MsgGetData); ok {
			return
		}
	}
	if a.frozen {
		switch msg.(type) {
		case MsgHeaders, MsgInvBlock, MsgBlock, MsgInvTx, MsgTx, MsgAddr:
			return
		}
	}
	if a.corruptBlocks {
		if m, ok := msg.(MsgGetData); ok {
			var missing []btc.Hash
			for _, h := range m.BlockHashes {
				if blk := a.Node.blocks[h]; blk != nil {
					a.Node.net.Send(a.Node.ID, from, MsgBlock{Block: corruptBlockCopy(blk)})
				} else {
					missing = append(missing, h)
				}
			}
			if len(missing) > 0 {
				a.Node.net.Send(a.Node.ID, from, MsgNotFound{Hashes: missing})
			}
			return
		}
	}
	if !a.serveForkOnly {
		a.Node.Receive(from, msg)
		return
	}
	// Fork-only mode: answer header and block requests from the fork,
	// pretend to know nothing else.
	switch m := msg.(type) {
	case MsgGetHeaders:
		known := make(map[btc.Hash]bool)
		for _, h := range m.Locator {
			known[h] = true
		}
		var out []btc.BlockHeader
		for _, blk := range a.fork {
			if !known[blk.BlockHash()] {
				out = append(out, blk.Header)
			}
		}
		a.Node.net.Send(a.Node.ID, from, MsgHeaders{Headers: out})
	case MsgGetData:
		forkByHash := make(map[btc.Hash]*btc.Block, len(a.fork))
		for _, blk := range a.fork {
			forkByHash[blk.BlockHash()] = blk
		}
		var missing []btc.Hash
		for _, h := range m.BlockHashes {
			if blk := forkByHash[h]; blk != nil {
				a.Node.net.Send(a.Node.ID, from, MsgBlock{Block: blk})
			} else {
				missing = append(missing, h)
			}
		}
		if len(missing) > 0 {
			a.Node.net.Send(a.Node.ID, from, MsgNotFound{Hashes: missing})
		}
	case MsgGetAddr:
		a.Node.net.Send(a.Node.ID, from, MsgAddr{Addrs: a.Node.knownAddrs})
	default:
		// Swallow everything else.
	}
}

// ForkTip returns the chain node of the fork's last block, or nil.
func (a *Adversary) ForkTip() *chain.Node {
	if len(a.fork) == 0 {
		return nil
	}
	return a.Node.tree.Get(a.fork[len(a.fork)-1].BlockHash())
}
