package btcnode

import (
	"fmt"

	"icbtc/internal/btc"
	"icbtc/internal/simnet"
)

// SimNetwork bundles a population of honest Bitcoin nodes, their seed
// directory, and optional adversaries — the "Bitcoin network" side of
// Figure 1.
type SimNetwork struct {
	Net         *simnet.Network
	Params      *btc.Params
	Nodes       []*Node
	Directory   *SeedDirectory
	Adversaries []*Adversary
}

// BuildHonestNetwork creates count honest nodes wired into a ring-plus-
// chords topology (every node connects to its ring neighbors and a few
// deterministic chords), registers all addresses in a seed directory, and
// fills each node's address book with every known address (so any node can
// serve discovery requests, like a dual-stacked Bitcoin node answering
// getaddr).
func BuildHonestNetwork(net *simnet.Network, params *btc.Params, count int) *SimNetwork {
	sn := &SimNetwork{Net: net, Params: params, Directory: NewSeedDirectory()}
	for i := 0; i < count; i++ {
		id := simnet.NodeID(fmt.Sprintf("btc/%d", i))
		node := NewNode(id, net, params)
		sn.Nodes = append(sn.Nodes, node)
		sn.Directory.AddNode(string(id), id)
	}
	// Ring + chords.
	for i, node := range sn.Nodes {
		Connect(node, sn.Nodes[(i+1)%count])
		if count > 4 {
			Connect(node, sn.Nodes[(i+count/2)%count])
		}
	}
	// Address books: every node knows every address.
	addrs := sn.Directory.AllAddrs()
	for _, node := range sn.Nodes {
		node.SetAddressBook(addrs)
	}
	// First node doubles as the DNS seed.
	if count > 0 {
		sn.Directory.AddSeed(sn.Nodes[0].ID)
	}
	return sn
}

// AddAdversaries attaches count adversarial nodes to the network and
// registers their addresses in the directory (so adapters may discover and
// connect to them, which is the attack surface §IV-A analyzes).
func (sn *SimNetwork) AddAdversaries(count int) {
	base := len(sn.Adversaries)
	for i := 0; i < count; i++ {
		id := simnet.NodeID(fmt.Sprintf("btcadv/%d", base+i))
		adv := NewAdversary(id, sn.Net, sn.Params)
		// Adversaries peer with a couple of honest nodes to stay synced.
		if len(sn.Nodes) > 0 {
			Connect(adv.Node, sn.Nodes[i%len(sn.Nodes)])
		}
		sn.Adversaries = append(sn.Adversaries, adv)
		sn.Directory.AddNode(string(id), id)
	}
	// Refresh address books to include adversarial addresses.
	addrs := sn.Directory.AllAddrs()
	for _, node := range sn.Nodes {
		node.SetAddressBook(addrs)
	}
	for _, adv := range sn.Adversaries {
		adv.Node.SetAddressBook(addrs)
	}
}

// SyncAll lets gossip settle by draining the scheduler for a bounded number
// of events, then verifies all honest nodes share the same best tip. It
// returns the common height or an error describing the divergence.
func (sn *SimNetwork) SyncAll(maxEvents int) (int64, error) {
	sn.Net.Scheduler().Drain(maxEvents)
	if len(sn.Nodes) == 0 {
		return 0, nil
	}
	want := sn.Nodes[0].BestTip().Hash
	for _, n := range sn.Nodes[1:] {
		if n.BestTip().Hash != want {
			return 0, fmt.Errorf("btcnode: nodes diverged: %s at %d vs %s at %d",
				sn.Nodes[0].ID, sn.Nodes[0].Height(), n.ID, n.Height())
		}
	}
	return sn.Nodes[0].Height(), nil
}
