package tecdsa

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"icbtc/internal/secp256k1"
)

// Committee is a t-of-n threshold signing committee. Each party holds a
// share of the long-lived private key; the key itself never exists in one
// place. The Committee type orchestrates the message flow of the protocol
// in-process; each party's local computation is confined to party methods,
// so the data-flow boundaries match a distributed deployment.
type Committee struct {
	n, t    int
	parties []*party
	pubKey  *secp256k1.PublicKey
	keyCom  FeldmanCommitment
	rng     io.Reader
}

// party holds one signer's private state.
type party struct {
	index    int
	keyShare Share
}

// NewCommittee runs dealerless distributed key generation among n parties
// with threshold t (any t+1 can sign; up to t shares reveal nothing).
// For an IC subnet with n = 3f+1 replicas, t = f.
func NewCommittee(n, t int, rng io.Reader) (*Committee, error) {
	if n <= 0 || t < 0 || n < 2*t+1 {
		return nil, fmt.Errorf("tecdsa: committee needs n >= 2t+1, got n=%d t=%d", n, t)
	}
	c := &Committee{n: n, t: t, rng: rng}
	// Each party deals a random sharing; the key is the sum of all dealt
	// secrets, and each party's share is the sum of the shares it received.
	sumShares := make([]*big.Int, n)
	for i := range sumShares {
		sumShares[i] = new(big.Int)
	}
	var sumCommit FeldmanCommitment
	order := secp256k1.N()
	for dealer := 0; dealer < n; dealer++ {
		secret, err := randScalar(rng)
		if err != nil {
			return nil, err
		}
		shares, commit, err := ShareSecretVerifiable(secret, n, t, rng)
		if err != nil {
			return nil, err
		}
		// Every recipient verifies its share against the dealer's
		// commitment before accepting it.
		for i, s := range shares {
			if !VerifyShare(s, commit) {
				return nil, fmt.Errorf("tecdsa: dealer %d produced invalid share for party %d", dealer, i)
			}
			sumShares[i].Add(sumShares[i], s.Value)
			sumShares[i].Mod(sumShares[i], order)
		}
		sumCommit = AddCommitments(sumCommit, commit)
	}
	c.keyCom = sumCommit
	pub := sumCommit.PublicPoint()
	if pub.Infinity() {
		return nil, errors.New("tecdsa: degenerate aggregate key")
	}
	c.pubKey = &secp256k1.PublicKey{Point: pub}
	c.parties = make([]*party, n)
	for i := 0; i < n; i++ {
		c.parties[i] = &party{
			index:    i + 1,
			keyShare: Share{Index: i + 1, Value: sumShares[i]},
		}
	}
	return c, nil
}

// N returns the committee size.
func (c *Committee) N() int { return c.n }

// T returns the threshold (degree of the key sharing).
func (c *Committee) T() int { return c.t }

// PublicKey returns the committee's aggregate public key.
func (c *Committee) PublicKey() *secp256k1.PublicKey { return c.pubKey }

// jointSharing has every party deal a random value; the aggregate secret is
// the sum. Returns each party's aggregate share and the aggregate public
// point (secret·G) derived from the Feldman commitments.
func (c *Committee) jointSharing() ([]Share, secp256k1.Point, error) {
	order := secp256k1.N()
	sum := make([]*big.Int, c.n)
	for i := range sum {
		sum[i] = new(big.Int)
	}
	var sumCommit FeldmanCommitment
	for dealer := 0; dealer < c.n; dealer++ {
		secret, err := randScalar(c.rng)
		if err != nil {
			return nil, secp256k1.Point{}, err
		}
		shares, commit, err := ShareSecretVerifiable(secret, c.n, c.t, c.rng)
		if err != nil {
			return nil, secp256k1.Point{}, err
		}
		for i, s := range shares {
			if !VerifyShare(s, commit) {
				return nil, secp256k1.Point{}, fmt.Errorf("tecdsa: invalid dealing from %d", dealer)
			}
			sum[i].Add(sum[i], s.Value)
			sum[i].Mod(sum[i], order)
		}
		sumCommit = AddCommitments(sumCommit, commit)
	}
	out := make([]Share, c.n)
	for i := range out {
		out[i] = Share{Index: i + 1, Value: sum[i]}
	}
	return out, sumCommit.PublicPoint(), nil
}

// openProduct has each party publish the local product of its two shares;
// the product polynomial has degree 2t, so 2t+1 contributions reconstruct
// the product of the two shared secrets. (This "multiply then open" step is
// the passively-secure core of the Bar-Ilan–Beaver inversion.)
func (c *Committee) openProduct(a, b []Share) (*big.Int, error) {
	order := secp256k1.N()
	prodShares := make([]Share, c.n)
	for i := 0; i < c.n; i++ {
		v := new(big.Int).Mul(a[i].Value, b[i].Value)
		v.Mod(v, order)
		prodShares[i] = Share{Index: i + 1, Value: v}
	}
	return Reconstruct(prodShares, 2*c.t)
}

// Sign produces a standard low-S ECDSA signature over a 32-byte digest.
// The signing equation s = k⁻¹(z + r·x) is evaluated on shares:
//
//	s_i = w_i·z + r·(w_i · x_i)
//
// where w_i are degree-t shares of k⁻¹. The w·x term makes s_i a degree-2t
// sharing, reconstructed from 2t+1 < n contributions.
func (c *Committee) Sign(digest []byte) (*secp256k1.Signature, error) {
	if len(digest) != 32 {
		return nil, fmt.Errorf("tecdsa: digest must be 32 bytes, got %d", len(digest))
	}
	order := secp256k1.N()
	z := hashToScalar(digest)
	for attempt := 0; attempt < 8; attempt++ {
		// 1. Joint random nonce k (shared, never reconstructed) and R = k·G.
		kShares, rPoint, err := c.jointSharing()
		if err != nil {
			return nil, err
		}
		if rPoint.Infinity() {
			continue
		}
		r := new(big.Int).Mod(rPoint.X, order)
		if r.Sign() == 0 {
			continue
		}
		// 2. Random blinding a; open u = k·a; w_i = a_i·u⁻¹ are shares of k⁻¹.
		aShares, _, err := c.jointSharing()
		if err != nil {
			return nil, err
		}
		u, err := c.openProduct(kShares, aShares)
		if err != nil {
			return nil, err
		}
		if u.Sign() == 0 {
			continue
		}
		uInv := new(big.Int).ModInverse(u, order)
		// 3. Each party computes its signature share locally.
		sigShares := make([]Share, c.n)
		for i, p := range c.parties {
			w := new(big.Int).Mul(aShares[i].Value, uInv)
			w.Mod(w, order)
			term := new(big.Int).Mul(w, z) // w_i·z   (degree t)
			wx := new(big.Int).Mul(w, p.keyShare.Value)
			wx.Mod(wx, order)
			wx.Mul(wx, r) // r·w_i·x_i (degree 2t)
			term.Add(term, wx)
			term.Mod(term, order)
			sigShares[i] = Share{Index: p.index, Value: term}
		}
		s, err := Reconstruct(sigShares, 2*c.t)
		if err != nil {
			return nil, err
		}
		if s.Sign() == 0 {
			continue
		}
		sig := &secp256k1.Signature{R: r, S: s}
		normalizeLowS(sig)
		if !sig.Verify(digest, c.pubKey) {
			return nil, errors.New("tecdsa: produced signature failed verification")
		}
		return sig, nil
	}
	return nil, errors.New("tecdsa: signing failed after retries")
}

// SignSchnorr produces a BIP340-style threshold Schnorr signature over a
// 32-byte message. Schnorr's linear equation s = k + e·x means signature
// shares are degree-t and t+1 parties suffice.
func (c *Committee) SignSchnorr(msg []byte) (*secp256k1.SchnorrSignature, error) {
	if len(msg) != 32 {
		return nil, fmt.Errorf("tecdsa: schnorr message must be 32 bytes, got %d", len(msg))
	}
	order := secp256k1.N()
	// BIP340 requires an even-Y public key; negate key shares virtually if
	// needed (x → n−x flips the point's Y parity).
	pub := c.pubKey.Point
	negateKey := pub.Y.Bit(0) == 1
	for attempt := 0; attempt < 8; attempt++ {
		kShares, rPoint, err := c.jointSharing()
		if err != nil {
			return nil, err
		}
		if rPoint.Infinity() {
			continue
		}
		negateNonce := rPoint.Y.Bit(0) == 1
		e := schnorrChallenge(rPoint.X, pub.X, msg)
		sigShares := make([]Share, c.n)
		for i, p := range c.parties {
			k := new(big.Int).Set(kShares[i].Value)
			if negateNonce {
				k.Sub(order, k)
			}
			x := new(big.Int).Set(p.keyShare.Value)
			if negateKey {
				x.Sub(order, x)
			}
			v := new(big.Int).Mul(e, x)
			v.Add(v, k)
			v.Mod(v, order)
			sigShares[i] = Share{Index: p.index, Value: v}
		}
		s, err := Reconstruct(sigShares, c.t)
		if err != nil {
			return nil, err
		}
		sig := &secp256k1.SchnorrSignature{RX: new(big.Int).Set(rPoint.X), S: s}
		px := new(big.Int).SetBytes(c.pubKey.XOnlyPubKey())
		if !secp256k1.SchnorrVerify(sig, msg, px) {
			continue
		}
		return sig, nil
	}
	return nil, errors.New("tecdsa: schnorr signing failed after retries")
}

// KeyShareOf exposes a party's key share for tests that verify no single
// share reveals the key. It must never be used outside tests.
func (c *Committee) KeyShareOf(i int) Share {
	p := c.parties[i]
	return Share{Index: p.index, Value: new(big.Int).Set(p.keyShare.Value)}
}

// --- helpers mirroring the single-signer implementations ---

func hashToScalar(digest []byte) *big.Int {
	z := new(big.Int).SetBytes(digest)
	n := secp256k1.N()
	excess := len(digest)*8 - n.BitLen()
	if excess > 0 {
		z.Rsh(z, uint(excess))
	}
	return z.Mod(z, n)
}

func normalizeLowS(sig *secp256k1.Signature) {
	n := secp256k1.N()
	half := new(big.Int).Rsh(n, 1)
	if sig.S.Cmp(half) > 0 {
		sig.S = new(big.Int).Sub(n, sig.S)
	}
}

// schnorrChallenge recomputes the BIP340 challenge; it must match the
// verifier in internal/secp256k1.
func schnorrChallenge(rx, px *big.Int, msg []byte) *big.Int {
	return secp256k1.SchnorrChallenge(rx, px, msg)
}
