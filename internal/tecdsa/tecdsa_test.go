package tecdsa

import (
	"crypto/sha256"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"icbtc/internal/secp256k1"
)

func TestShareReconstructRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	secret := big.NewInt(123456789)
	shares, err := ShareSecret(secret, 7, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != 7 {
		t.Fatalf("shares %d", len(shares))
	}
	got, err := Reconstruct(shares[:3], 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(secret) != 0 {
		t.Fatalf("reconstructed %v", got)
	}
	// A different subset must give the same secret.
	got2, err := Reconstruct([]Share{shares[6], shares[1], shares[4]}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Cmp(secret) != 0 {
		t.Fatal("subset reconstruction differs")
	}
}

func TestReconstructErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	shares, _ := ShareSecret(big.NewInt(5), 4, 2, rng)
	if _, err := Reconstruct(shares[:2], 2); err == nil {
		t.Fatal("too few shares accepted")
	}
	dup := []Share{shares[0], shares[0], shares[1]}
	if _, err := Reconstruct(dup, 2); err == nil {
		t.Fatal("duplicate indices accepted")
	}
	bad := []Share{{Index: 0, Value: big.NewInt(1)}, shares[0], shares[1]}
	if _, err := Reconstruct(bad, 2); err == nil {
		t.Fatal("index 0 accepted")
	}
}

func TestShareSecretParams(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, err := ShareSecret(big.NewInt(1), 2, 2, rng); err == nil {
		t.Fatal("n < t+1 accepted")
	}
	if _, err := ShareSecret(big.NewInt(1), 1, -1, rng); err == nil {
		t.Fatal("negative t accepted")
	}
}

func TestQuickShareReconstruct(t *testing.T) {
	f := func(seed int64, secretRaw int64) bool {
		rng := rand.New(rand.NewSource(seed))
		secret := new(big.Int).SetInt64(secretRaw)
		secret.Mod(secret, secp256k1.N())
		shares, err := ShareSecret(secret, 9, 3, rng)
		if err != nil {
			return false
		}
		// Random subset of size 4.
		perm := rand.New(rand.NewSource(seed + 1)).Perm(9)[:4]
		subset := make([]Share, 4)
		for i, p := range perm {
			subset[i] = shares[p]
		}
		got, err := Reconstruct(subset, 3)
		return err == nil && got.Cmp(secret) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFeldmanVerification(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	secret := big.NewInt(424242)
	shares, commit, err := ShareSecretVerifiable(secret, 5, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range shares {
		if !VerifyShare(s, commit) {
			t.Fatalf("valid share %d rejected", s.Index)
		}
	}
	// Tampered share must fail.
	bad := Share{Index: shares[0].Index, Value: new(big.Int).Add(shares[0].Value, big.NewInt(1))}
	if VerifyShare(bad, commit) {
		t.Fatal("tampered share accepted")
	}
	// Wrong index must fail.
	wrongIdx := Share{Index: shares[0].Index + 1, Value: shares[0].Value}
	if VerifyShare(wrongIdx, commit) {
		t.Fatal("wrong-index share accepted")
	}
	// Commitment's public point is secret·G.
	if !commit.PublicPoint().Equal(secp256k1.ScalarBaseMult(secret)) {
		t.Fatal("public point mismatch")
	}
}

func TestInterpolatePoints(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	secret := big.NewInt(987654321)
	shares, err := ShareSecret(secret, 5, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	points := map[int]secp256k1.Point{}
	for _, s := range shares[:3] {
		points[s.Index] = secp256k1.ScalarBaseMult(s.Value)
	}
	got, err := InterpolatePoints(points)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(secp256k1.ScalarBaseMult(secret)) {
		t.Fatal("exponent interpolation mismatch")
	}
	if _, err := InterpolatePoints(nil); err == nil {
		t.Fatal("empty interpolation accepted")
	}
}

func TestCommitteeDKG(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// n=13, t=4 matches the paper's subnet parameters (n = 3f+1, f = 4).
	c, err := NewCommittee(13, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 13 || c.T() != 4 {
		t.Fatal("params")
	}
	// Reconstructing the key from t+1 shares must match the public key.
	shares := make([]Share, 5)
	for i := range shares {
		shares[i] = c.KeyShareOf(i)
	}
	key, err := Reconstruct(shares, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !secp256k1.ScalarBaseMult(key).Equal(c.PublicKey().Point) {
		t.Fatal("reconstructed key does not match public key")
	}
}

func TestCommitteeParams(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if _, err := NewCommittee(4, 2, rng); err == nil {
		t.Fatal("n < 2t+1 accepted (product opening would be impossible)")
	}
	if _, err := NewCommittee(0, 0, rng); err == nil {
		t.Fatal("empty committee accepted")
	}
}

func TestThresholdECDSA(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	c, err := NewCommittee(7, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		digest := sha256.Sum256([]byte{byte(i), 0xAB})
		sig, err := c.Sign(digest[:])
		if err != nil {
			t.Fatalf("sign %d: %v", i, err)
		}
		if !sig.Verify(digest[:], c.PublicKey()) {
			t.Fatal("threshold signature invalid")
		}
		// Must be low-S (Bitcoin standardness).
		half := new(big.Int).Rsh(secp256k1.N(), 1)
		if sig.S.Cmp(half) > 0 {
			t.Fatal("signature not low-S")
		}
		// DER round trip (what goes into a Bitcoin transaction).
		if _, err := secp256k1.ParseDERSignature(sig.SerializeDER()); err != nil {
			t.Fatalf("DER: %v", err)
		}
	}
}

func TestThresholdECDSARejectsBadDigest(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c, _ := NewCommittee(4, 1, rng)
	if _, err := c.Sign([]byte("short")); err == nil {
		t.Fatal("bad digest accepted")
	}
	if _, err := c.SignSchnorr([]byte("short")); err == nil {
		t.Fatal("bad schnorr message accepted")
	}
}

func TestThresholdSchnorr(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	c, err := NewCommittee(7, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		msg := sha256.Sum256([]byte{0xCD, byte(i)})
		sig, err := c.SignSchnorr(msg[:])
		if err != nil {
			t.Fatalf("schnorr sign %d: %v", i, err)
		}
		px := new(big.Int).SetBytes(c.PublicKey().XOnlyPubKey())
		if !secp256k1.SchnorrVerify(sig, msg[:], px) {
			t.Fatal("threshold schnorr invalid")
		}
		// Wrong message must fail.
		other := sha256.Sum256([]byte{0xEF, byte(i)})
		if secp256k1.SchnorrVerify(sig, other[:], px) {
			t.Fatal("schnorr verified wrong message")
		}
	}
}

func TestSingleShareRevealsNothingStructurally(t *testing.T) {
	// With t=2, two shares must not determine the key: reconstructing from
	// 2 shares with an assumed degree of 1 must give a different key than
	// the real one (overwhelmingly).
	rng := rand.New(rand.NewSource(11))
	c, _ := NewCommittee(7, 2, rng)
	shares := []Share{c.KeyShareOf(0), c.KeyShareOf(1)}
	guess, err := Reconstruct(shares, 1)
	if err != nil {
		t.Fatal(err)
	}
	if secp256k1.ScalarBaseMult(guess).Equal(c.PublicKey().Point) {
		t.Fatal("2 shares at t=2 determined the key")
	}
}

func TestThresholdSignaturesAreIndependentAcrossMessages(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	c, _ := NewCommittee(4, 1, rng)
	d1 := sha256.Sum256([]byte("m1"))
	d2 := sha256.Sum256([]byte("m2"))
	s1, err := c.Sign(d1[:])
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.Sign(d2[:])
	if err != nil {
		t.Fatal(err)
	}
	if s1.R.Cmp(s2.R) == 0 {
		t.Fatal("nonce reuse across messages")
	}
}

func TestReshareKeepsPublicKey(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	old, err := NewCommittee(7, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Grow the committee 7 → 13 (the paper's subnet size) at threshold 4.
	grown, err := old.Reshare(13, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !grown.PublicKey().Point.Equal(old.PublicKey().Point) {
		t.Fatal("public key changed")
	}
	// The new committee signs; the signature verifies under the OLD key.
	digest := sha256.Sum256([]byte("post-reshare"))
	sig, err := grown.Sign(digest[:])
	if err != nil {
		t.Fatal(err)
	}
	if !sig.Verify(digest[:], old.PublicKey()) {
		t.Fatal("post-reshare signature invalid under original key")
	}
	// Shrink back 13 → 4 at threshold 1.
	shrunk, err := grown.Reshare(4, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	sig2, err := shrunk.SignSchnorr(digest[:])
	if err != nil {
		t.Fatal(err)
	}
	px := new(big.Int).SetBytes(old.PublicKey().XOnlyPubKey())
	if !secp256k1.SchnorrVerify(sig2, digest[:], px) {
		t.Fatal("post-shrink schnorr invalid")
	}
}

func TestReshareNewSharesAreFresh(t *testing.T) {
	// Resharing to the same (n, t) must produce different shares (the old
	// shares become useless — proactive security).
	rng := rand.New(rand.NewSource(21))
	old, _ := NewCommittee(5, 2, rng)
	renewed, err := old.Reshare(5, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := 0; i < 5; i++ {
		if old.KeyShareOf(i).Value.Cmp(renewed.KeyShareOf(i).Value) == 0 {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("%d shares unchanged after resharing", same)
	}
	// And the reconstructed secret is identical.
	oldKey, _ := Reconstruct([]Share{old.KeyShareOf(0), old.KeyShareOf(1), old.KeyShareOf(2)}, 2)
	newKey, _ := Reconstruct([]Share{renewed.KeyShareOf(0), renewed.KeyShareOf(1), renewed.KeyShareOf(2)}, 2)
	if oldKey.Cmp(newKey) != 0 {
		t.Fatal("secret changed across resharing")
	}
}

func TestReshareParamValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	c, _ := NewCommittee(4, 1, rng)
	if _, err := c.Reshare(4, 2, rng); err == nil {
		t.Fatal("n < 2t+1 accepted")
	}
	if _, err := c.Reshare(0, 0, rng); err == nil {
		t.Fatal("empty committee accepted")
	}
}
