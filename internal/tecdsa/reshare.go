package tecdsa

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"icbtc/internal/secp256k1"
)

// Key resharing: the IC reshares its threshold keys when subnet membership
// changes (node replacement, subnet growth) without ever reconstructing the
// key and without changing the public key — the property that keeps a
// canister's Bitcoin address stable across subnet reconfigurations.
//
// The protocol is the standard Shamir resharing: each party of the old
// committee deals a fresh degree-t' sharing of its own key share to the new
// committee; a new party's share is the Lagrange-weighted sum of the
// sub-shares it received. Feldman commitments let recipients verify every
// dealing against the dealer's original share commitment.

// Reshare produces a new committee of size newN with threshold newT holding
// shares of the SAME secret key; the public key is unchanged. At least
// oldT+1 parties of the old committee participate (here: the first oldT+1,
// which suffices for the passively-secure setting).
func (c *Committee) Reshare(newN, newT int, rng io.Reader) (*Committee, error) {
	if newN <= 0 || newT < 0 || newN < 2*newT+1 {
		return nil, fmt.Errorf("tecdsa: reshare needs n >= 2t+1, got n=%d t=%d", newN, newT)
	}
	order := secp256k1.N()
	dealers := c.parties[:c.t+1]
	indices := make([]int, len(dealers))
	for i, p := range dealers {
		indices[i] = p.index
	}

	// Each dealer shares λ_i · x_i (its Lagrange-weighted key share); the
	// sum of the dealt secrets is Σ λ_i x_i = x, so summing received
	// sub-shares yields a fresh degree-newT sharing of x.
	newShares := make([]*big.Int, newN)
	for i := range newShares {
		newShares[i] = new(big.Int)
	}
	var sumCommit FeldmanCommitment
	for di, dealer := range dealers {
		lambda := lagrangeCoefficient(dealer.index, indices)
		weighted := new(big.Int).Mul(lambda, dealer.keyShare.Value)
		weighted.Mod(weighted, order)
		shares, commit, err := ShareSecretVerifiable(weighted, newN, newT, rng)
		if err != nil {
			return nil, fmt.Errorf("tecdsa: dealer %d resharing: %w", di, err)
		}
		for i, s := range shares {
			if !VerifyShare(s, commit) {
				return nil, fmt.Errorf("tecdsa: invalid reshare dealing from %d", di)
			}
			newShares[i].Add(newShares[i], s.Value)
			newShares[i].Mod(newShares[i], order)
		}
		sumCommit = AddCommitments(sumCommit, commit)
	}
	// The aggregate commitment's constant term must equal the old public
	// key — recipients use this to verify the key survived intact.
	if !sumCommit.PublicPoint().Equal(c.pubKey.Point) {
		return nil, errors.New("tecdsa: reshare changed the public key")
	}
	nc := &Committee{
		n:      newN,
		t:      newT,
		pubKey: c.pubKey,
		keyCom: sumCommit,
		rng:    rng,
	}
	nc.parties = make([]*party, newN)
	for i := 0; i < newN; i++ {
		nc.parties[i] = &party{
			index:    i + 1,
			keyShare: Share{Index: i + 1, Value: newShares[i]},
		}
	}
	return nc, nil
}
