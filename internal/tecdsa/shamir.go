// Package tecdsa implements the threshold signature service the IC exposes
// to canisters (§I: "The IC implements both threshold ECDSA and threshold
// Schnorr protocols ... providing canisters with public keys for both
// schemes and the ability to sign arbitrary data under those keys").
//
// The implementation is an honest-majority, passively-secure multi-party
// computation over the secp256k1 scalar field:
//
//   - Shamir secret sharing with Feldman verifiable-secret-sharing
//     commitments,
//   - dealerless distributed key generation (sum of random dealings),
//   - nonce generation and inversion via the Bar-Ilan–Beaver trick
//     (open k·a for a random blinding a, then k⁻¹ = a·(k·a)⁻¹),
//   - threshold ECDSA following the s = k⁻¹(z + r·x) equation on
//     degree-2t product sharings, and
//   - threshold Schnorr (BIP340-style), which is linear and therefore
//     needs only degree-t interpolation.
//
// Substitution note (documented in DESIGN.md): the paper's production
// protocol [Groth–Shoup 2022] is actively secure against f < n/3 Byzantine
// signers under asynchrony; this reproduction provides the same interface
// and signature artifacts with passive security, which suffices for every
// experiment in the paper's evaluation.
package tecdsa

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"icbtc/internal/secp256k1"
)

// Share is one party's Shamir share: the evaluation of a secret polynomial
// at x = Index (1-based; index 0 would reveal the secret).
type Share struct {
	Index int
	Value *big.Int
}

// randScalar samples a uniform nonzero scalar from r.
func randScalar(r io.Reader) (*big.Int, error) {
	buf := make([]byte, 32)
	for {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("tecdsa: sampling scalar: %w", err)
		}
		v := new(big.Int).SetBytes(buf)
		v.Mod(v, secp256k1.N())
		if v.Sign() != 0 {
			return v, nil
		}
	}
}

// polynomial holds coefficients a0..at of a degree-t polynomial over the
// scalar field; a0 is the shared secret.
type polynomial struct {
	coeffs []*big.Int
}

func newPolynomial(secret *big.Int, degree int, rng io.Reader) (*polynomial, error) {
	p := &polynomial{coeffs: make([]*big.Int, degree+1)}
	p.coeffs[0] = new(big.Int).Mod(secret, secp256k1.N())
	for i := 1; i <= degree; i++ {
		c, err := randScalar(rng)
		if err != nil {
			return nil, err
		}
		p.coeffs[i] = c
	}
	return p, nil
}

// eval computes p(x) mod n via Horner's rule.
func (p *polynomial) eval(x int64) *big.Int {
	n := secp256k1.N()
	acc := new(big.Int)
	for i := len(p.coeffs) - 1; i >= 0; i-- {
		acc.Mul(acc, big.NewInt(x))
		acc.Add(acc, p.coeffs[i])
		acc.Mod(acc, n)
	}
	return acc
}

// ShareSecret splits secret into n shares with reconstruction threshold
// t+1 (degree-t polynomial).
func ShareSecret(secret *big.Int, n, t int, rng io.Reader) ([]Share, error) {
	if t < 0 || n < t+1 {
		return nil, fmt.Errorf("tecdsa: invalid sharing parameters n=%d t=%d", n, t)
	}
	poly, err := newPolynomial(secret, t, rng)
	if err != nil {
		return nil, err
	}
	shares := make([]Share, n)
	for i := 0; i < n; i++ {
		shares[i] = Share{Index: i + 1, Value: poly.eval(int64(i + 1))}
	}
	return shares, nil
}

// lagrangeCoefficient computes the Lagrange basis value λ_i(0) for the set
// of share indices, i.e. the weight of share idx when interpolating at 0.
func lagrangeCoefficient(idx int, indices []int) *big.Int {
	n := secp256k1.N()
	num := big.NewInt(1)
	den := big.NewInt(1)
	xi := big.NewInt(int64(idx))
	for _, j := range indices {
		if j == idx {
			continue
		}
		xj := big.NewInt(int64(j))
		// num *= (0 - xj) = -xj ; den *= (xi - xj)
		num.Mul(num, new(big.Int).Neg(xj))
		num.Mod(num, n)
		den.Mul(den, new(big.Int).Sub(xi, xj))
		den.Mod(den, n)
	}
	den.ModInverse(den, n)
	num.Mul(num, den)
	return num.Mod(num, n)
}

// Reconstruct interpolates the secret from at least degree+1 shares of a
// degree-`degree` sharing.
func Reconstruct(shares []Share, degree int) (*big.Int, error) {
	if len(shares) < degree+1 {
		return nil, fmt.Errorf("tecdsa: need %d shares for degree %d, have %d", degree+1, degree, len(shares))
	}
	use := shares[:degree+1]
	indices := make([]int, len(use))
	seen := make(map[int]bool, len(use))
	for i, s := range use {
		if s.Index <= 0 {
			return nil, fmt.Errorf("tecdsa: invalid share index %d", s.Index)
		}
		if seen[s.Index] {
			return nil, fmt.Errorf("tecdsa: duplicate share index %d", s.Index)
		}
		seen[s.Index] = true
		indices[i] = s.Index
	}
	n := secp256k1.N()
	secret := new(big.Int)
	for _, s := range use {
		lambda := lagrangeCoefficient(s.Index, indices)
		term := new(big.Int).Mul(lambda, s.Value)
		secret.Add(secret, term)
		secret.Mod(secret, n)
	}
	return secret, nil
}

// InterpolatePoints interpolates P(0) "in the exponent": given points
// V_i = p(i)·G for share indices i, it returns p(0)·G. Used to compute the
// nonce point R = k·G without any party learning k.
func InterpolatePoints(points map[int]secp256k1.Point) (secp256k1.Point, error) {
	if len(points) == 0 {
		return secp256k1.Point{}, errors.New("tecdsa: no points to interpolate")
	}
	indices := make([]int, 0, len(points))
	for i := range points {
		indices = append(indices, i)
	}
	acc := secp256k1.Point{}
	for i, pt := range points {
		lambda := lagrangeCoefficient(i, indices)
		acc = secp256k1.Add(acc, secp256k1.ScalarMult(pt, lambda))
	}
	return acc, nil
}

// FeldmanCommitment is the public commitment to a sharing polynomial:
// C_j = a_j·G for each coefficient. Any party can verify its share against
// the commitment without learning the polynomial.
type FeldmanCommitment struct {
	Points []secp256k1.Point
}

// CommitPolynomial builds the Feldman commitment for the polynomial that
// produced the given shares. Dealers call this at sharing time.
func commitPolynomial(p *polynomial) FeldmanCommitment {
	c := FeldmanCommitment{Points: make([]secp256k1.Point, len(p.coeffs))}
	for i, a := range p.coeffs {
		c.Points[i] = secp256k1.ScalarBaseMult(a)
	}
	return c
}

// ShareSecretVerifiable is ShareSecret plus a Feldman commitment.
func ShareSecretVerifiable(secret *big.Int, n, t int, rng io.Reader) ([]Share, FeldmanCommitment, error) {
	if t < 0 || n < t+1 {
		return nil, FeldmanCommitment{}, fmt.Errorf("tecdsa: invalid sharing parameters n=%d t=%d", n, t)
	}
	poly, err := newPolynomial(secret, t, rng)
	if err != nil {
		return nil, FeldmanCommitment{}, err
	}
	shares := make([]Share, n)
	for i := 0; i < n; i++ {
		shares[i] = Share{Index: i + 1, Value: poly.eval(int64(i + 1))}
	}
	return shares, commitPolynomial(poly), nil
}

// VerifyShare checks share s against a Feldman commitment:
// s.Value·G == Σ_j C_j · s.Index^j.
func VerifyShare(s Share, c FeldmanCommitment) bool {
	if s.Index <= 0 || s.Value == nil || len(c.Points) == 0 {
		return false
	}
	lhs := secp256k1.ScalarBaseMult(s.Value)
	rhs := secp256k1.Point{}
	xPow := big.NewInt(1)
	x := big.NewInt(int64(s.Index))
	n := secp256k1.N()
	for _, cj := range c.Points {
		rhs = secp256k1.Add(rhs, secp256k1.ScalarMult(cj, xPow))
		xPow = new(big.Int).Mul(xPow, x)
		xPow.Mod(xPow, n)
	}
	return lhs.Equal(rhs)
}

// PublicPoint returns the committed secret's public point C_0 = secret·G.
func (c FeldmanCommitment) PublicPoint() secp256k1.Point {
	if len(c.Points) == 0 {
		return secp256k1.Point{}
	}
	return c.Points[0]
}

// AddCommitments adds two commitments coefficient-wise, the commitment of
// the summed polynomials (used by the dealerless DKG).
func AddCommitments(a, b FeldmanCommitment) FeldmanCommitment {
	if len(a.Points) == 0 {
		return b
	}
	if len(b.Points) == 0 {
		return a
	}
	size := len(a.Points)
	if len(b.Points) > size {
		size = len(b.Points)
	}
	out := FeldmanCommitment{Points: make([]secp256k1.Point, size)}
	for i := 0; i < size; i++ {
		var pa, pb secp256k1.Point
		if i < len(a.Points) {
			pa = a.Points[i]
		}
		if i < len(b.Points) {
			pb = b.Points[i]
		}
		out.Points[i] = secp256k1.Add(pa, pb)
	}
	return out
}
