package canister

import (
	"os"
	"strings"
	"testing"

	"icbtc/internal/btc"
	"icbtc/internal/ic"
	"icbtc/internal/utxo"
)

// TestRegistryCoversDispatch asserts the registry kinds exactly cover both
// dispatch paths: every registered method is reachable through Update,
// read-only methods (and only those) are reachable through Query, and
// unknown names fail on both — so no hand-maintained switch can drift from
// the table again.
func TestRegistryCoversDispatch(t *testing.T) {
	r := newRig(t, 1)
	if _, err := r.miner.MineChain(10, 0); err != nil {
		t.Fatal(err)
	}
	r.feedChain()

	for _, m := range Methods() {
		arg := validArgFor(t, m.Name)
		if _, err := r.can.Update(r.ctx(), m.Name, arg); err != nil &&
			strings.Contains(err.Error(), "no update method") {
			t.Errorf("Update(%s) not dispatched: %v", m.Name, err)
		}
		qctx := r.ctx()
		qctx.Kind = ic.KindQuery
		_, err := r.can.Query(qctx, m.Name, arg)
		servable := err == nil || !strings.Contains(err.Error(), "no query method")
		if want := m.Kind == MethodReadOnly; servable != want {
			t.Errorf("Query(%s): servable=%v, registry kind %v wants %v", m.Name, servable, m.Kind, want)
		}
	}
	if _, err := r.can.Update(r.ctx(), "no_such_method", nil); err == nil ||
		!strings.Contains(err.Error(), "no update method") {
		t.Errorf("Update(no_such_method) = %v, want canonical dispatch error", err)
	}
	if _, err := r.can.Query(r.ctx(), "no_such_method", nil); err == nil ||
		!strings.Contains(err.Error(), "no query method") {
		t.Errorf("Query(no_such_method) = %v, want canonical dispatch error", err)
	}

	// QueryMethodNames must be exactly the read-only subset, in table order.
	var want []string
	for _, m := range Methods() {
		if m.Kind == MethodReadOnly {
			want = append(want, m.Name)
		}
	}
	got := QueryMethodNames()
	if len(got) != len(want) {
		t.Fatalf("QueryMethodNames() = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("QueryMethodNames() = %v, want %v", got, want)
		}
	}
}

// validArgFor returns a well-typed argument for each registered method; the
// test fails if the registry gains a method this helper does not know,
// forcing new endpoints to extend the coverage test.
func validArgFor(t *testing.T, method string) any {
	t.Helper()
	switch method {
	case "get_utxos":
		return GetUTXOsArgs{Address: "addr"}
	case "get_balance":
		return GetBalanceArgs{Address: "addr"}
	case "get_block_headers":
		return GetBlockHeadersArgs{StartHeight: 0, EndHeight: 1}
	case "send_transaction":
		return SendTransactionArgs{RawTx: []byte{0x01}}
	case "get_current_fee_percentiles", "get_tip", "get_health", "get_metrics":
		return nil
	default:
		t.Fatalf("registry method %q has no test argument; extend validArgFor", method)
		return nil
	}
}

// TestMethodSpecMatchesRegistry pins the ic.MethodTable implementation to
// the registry: every method routes as its kind declares, unknown names do
// not resolve.
func TestMethodSpecMatchesRegistry(t *testing.T) {
	can := New(DefaultConfig(btc.Regtest))
	for _, m := range Methods() {
		spec, ok := can.MethodSpec(m.Name)
		if !ok {
			t.Fatalf("MethodSpec(%s) not found", m.Name)
		}
		if !spec.Update {
			t.Errorf("MethodSpec(%s).Update = false; every registered method is update-servable", m.Name)
		}
		if want := m.Kind == MethodReadOnly; spec.Query != want {
			t.Errorf("MethodSpec(%s).Query = %v, want %v", m.Name, spec.Query, want)
		}
	}
	if _, ok := can.MethodSpec("no_such_method"); ok {
		t.Error("MethodSpec(no_such_method) resolved")
	}
}

// TestRequestKeyProperties is the cache-key property test: equal requests
// encode to equal keys, and any differing argument field — address, network,
// min_confirmations, page cursor, limit — or a different method name changes
// the key.
func TestRequestKeyProperties(t *testing.T) {
	utxos, _ := MethodByName("get_utxos")
	balance, _ := MethodByName("get_balance")
	headers, _ := MethodByName("get_block_headers")
	fees, _ := MethodByName("get_current_fee_percentiles")
	tip, _ := MethodByName("get_tip")

	base := GetUTXOsArgs{Address: "addr-a", Network: btc.Regtest, MinConfirmations: 2, Page: utxo.PageToken{0x01, 0x02}, Limit: 10}
	equal := GetUTXOsArgs{Address: "addr-a", Network: btc.Regtest, MinConfirmations: 2, Page: utxo.PageToken{0x01, 0x02}, Limit: 10}

	key := func(m *MethodDesc, arg any) [32]byte {
		t.Helper()
		k, err := m.RequestKey(arg)
		if err != nil {
			t.Fatalf("RequestKey(%s, %+v): %v", m.Name, arg, err)
		}
		return k
	}

	baseKey := key(utxos, base)
	if key(utxos, equal) != baseKey {
		t.Fatal("equal get_utxos requests produced different keys")
	}

	// Every single-field variation must move the key — and all variants
	// must be pairwise distinct.
	variants := map[string]any{
		"address":           GetUTXOsArgs{Address: "addr-b", Network: btc.Regtest, MinConfirmations: 2, Page: utxo.PageToken{0x01, 0x02}, Limit: 10},
		"network":           GetUTXOsArgs{Address: "addr-a", Network: btc.Mainnet, MinConfirmations: 2, Page: utxo.PageToken{0x01, 0x02}, Limit: 10},
		"min_confirmations": GetUTXOsArgs{Address: "addr-a", Network: btc.Regtest, MinConfirmations: 3, Page: utxo.PageToken{0x01, 0x02}, Limit: 10},
		"page":              GetUTXOsArgs{Address: "addr-a", Network: btc.Regtest, MinConfirmations: 2, Page: utxo.PageToken{0x01, 0x03}, Limit: 10},
		"page_empty":        GetUTXOsArgs{Address: "addr-a", Network: btc.Regtest, MinConfirmations: 2, Limit: 10},
		"limit":             GetUTXOsArgs{Address: "addr-a", Network: btc.Regtest, MinConfirmations: 2, Page: utxo.PageToken{0x01, 0x02}, Limit: 11},
	}
	seen := map[[32]byte]string{baseKey: "base"}
	for name, arg := range variants {
		k := key(utxos, arg)
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %q collides with %q", name, prev)
		}
		seen[k] = name
	}

	// Same-shaped args under a different method must not collide (the key
	// binds the method name).
	if key(balance, GetBalanceArgs{Address: "addr-a", Network: btc.Regtest, MinConfirmations: 2}) == baseKey {
		t.Error("get_balance key collides with get_utxos key")
	}
	if key(headers, GetBlockHeadersArgs{}) == key(fees, nil) {
		t.Error("get_block_headers zero-args key collides with get_current_fee_percentiles")
	}
	if key(fees, nil) == key(tip, nil) {
		t.Error("nullary methods get_current_fee_percentiles and get_tip collide")
	}

	// A wrong-typed argument is rejected with the handler's own error.
	if _, err := utxos.RequestKey(GetBalanceArgs{}); err == nil ||
		!strings.Contains(err.Error(), "wants") {
		t.Errorf("RequestKey with wrong arg type = %v, want typed-arg error", err)
	}
}

// TestAPIReferenceInREADME pins the README's API reference table to the
// registry's generated output (regenerate with `go run ./cmd/apidoc`).
func TestAPIReferenceInREADME(t *testing.T) {
	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatalf("read README.md: %v", err)
	}
	table := APIReferenceMarkdown()
	if !strings.Contains(string(readme), table) {
		t.Fatalf("README.md does not contain the registry-generated API reference table; regenerate with `go run ./cmd/apidoc` and paste it under the API reference heading:\n%s", table)
	}
}
