package canister_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"icbtc/internal/adapter"
	"icbtc/internal/btc"
	"icbtc/internal/canister"
	"icbtc/internal/difftest"
	"icbtc/internal/experiments"
	"icbtc/internal/ic"
	"icbtc/internal/simnet"
)

// updateGolden regenerates the checked-in golden snapshot fixture. Run
//
//	go test ./internal/canister -run TestGoldenSnapshot -update-golden
//
// after an intentional format change (which must also bump
// canister.SnapshotVersion) and commit the new file.
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden snapshot fixtures")

// buildSnapshotState assembles a deterministic canister state that touches
// every serialized component: multiple advanced anchors, deep stable
// buckets with spends (interned scripts with varying refcounts), an
// unstable suffix with per-block deltas, a header-only tree node, and a
// pending outbound transaction. The golden fixture is generated from
// exactly this state, so the construction must stay byte-reproducible; do
// not change it without bumping the snapshot version and regenerating.
func buildSnapshotState(t testing.TB) (*canister.BitcoinCanister, []string) {
	t.Helper()
	f := experiments.NewFeeder(btc.Regtest, 6, 21)
	addrs := make([]string, 4)
	scripts := make([][]byte, 4)
	for i := range addrs {
		var h [20]byte
		h[0] = byte(0x30 + i)
		a := btc.NewP2PKHAddress(h, btc.Regtest)
		addrs[i] = a.String()
		scripts[i] = btc.PayToAddrScript(a)
	}
	// Funding blocks (become stable), then churn with spends.
	for i := 0; i < 4; i++ {
		specs := []experiments.TxSpec{
			{Outputs: experiments.PayN(scripts[i%len(scripts)], 30, 546+int64(i))},
			{Inputs: 1, Outputs: experiments.PayN(scripts[(i+1)%len(scripts)], 2, 9_000)},
		}
		if _, err := f.FeedBlock(specs); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.FeedEmpty(7); err != nil {
		t.Fatal(err)
	}
	// Unstable suffix with cross-address spends, below δ so it stays
	// unstable (per-node deltas survive in the snapshot).
	for i := 0; i < 3; i++ {
		specs := []experiments.TxSpec{
			{Inputs: 2, Outputs: experiments.PayN(scripts[i%len(scripts)], 3, 1_200+int64(i))},
		}
		if _, err := f.FeedBlock(specs); err != nil {
			t.Fatal(err)
		}
	}
	// A pending outbound transaction (survives the upgrade in the real
	// canister's stable memory).
	raw := (&btc.Transaction{
		Version: 2,
		Inputs:  []btc.TxIn{{PreviousOutPoint: btc.OutPoint{TxID: btc.DoubleSHA256([]byte("pending")), Vout: 1}}},
		Outputs: []btc.TxOut{{Value: 700, PkScript: scripts[0]}},
	}).Bytes()
	ctx := ic.NewCallContext(ic.KindUpdate, time.Unix(1_700_000_900, 0).UTC())
	if err := f.Canister.SendTransaction(ctx, canister.SendTransactionArgs{RawTx: raw}); err != nil {
		t.Fatal(err)
	}
	return f.Canister, addrs
}

// queryBytes serializes every read endpoint's answer for one address so two
// canisters can be compared byte for byte.
func queryBytes(t *testing.T, c *canister.BitcoinCanister, addr string) []byte {
	t.Helper()
	var buf bytes.Buffer
	now := time.Unix(1_700_001_000, 0).UTC()
	var token []byte
	for {
		res, err := c.GetUTXOs(ic.NewCallContext(ic.KindQuery, now), canister.GetUTXOsArgs{
			Address: addr, Limit: 7, Page: token,
		})
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(difftest.EncodeUTXOsResult(res))
		if res.NextPage == nil {
			break
		}
		token = res.NextPage
	}
	for _, minConf := range []int64{0, 1, 3, 6} {
		bal, err := c.GetBalance(ic.NewCallContext(ic.KindQuery, now), canister.GetBalanceArgs{
			Address: addr, MinConfirmations: minConf,
		})
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&buf, "%s|%d|%d;", addr, minConf, bal)
	}
	return buf.Bytes()
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	c, addrs := buildSnapshotState(t)
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := canister.RestoreSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}

	// encode→decode→encode must be byte-identical (determinism).
	again, err := restored.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap, again) {
		t.Fatalf("snapshot not byte-stable across restore: %d vs %d bytes", len(snap), len(again))
	}

	// State probes and every read endpoint must agree.
	if restored.TipHeight() != c.TipHeight() || restored.AnchorHeight() != c.AnchorHeight() ||
		restored.StableUTXOCount() != c.StableUTXOCount() ||
		restored.UnstableBlockCount() != c.UnstableBlockCount() ||
		restored.IngestedBlocks() != c.IngestedBlocks() ||
		restored.Synced() != c.Synced() ||
		restored.AvailableHeight() != c.AvailableHeight() ||
		restored.PendingTransactions() != c.PendingTransactions() ||
		restored.StableStorageBytes() != c.StableStorageBytes() {
		t.Fatal("restored canister state probes diverged")
	}
	for _, addr := range addrs {
		if !bytes.Equal(queryBytes(t, c, addr), queryBytes(t, restored, addr)) {
			t.Fatalf("responses for %s diverged after restore", addr)
		}
	}

	// The adapter request (anchor, Have set, pending txs) must match too —
	// a restored replica resumes syncing from exactly where it stopped.
	reqA, reqB := c.CurrentRequest(), restored.CurrentRequest()
	if reqA.Anchor != reqB.Anchor || reqA.AnchorHeight != reqB.AnchorHeight ||
		len(reqA.Have) != len(reqB.Have) || len(reqA.Txs) != len(reqB.Txs) {
		t.Fatal("restored CurrentRequest diverged")
	}
	for i := range reqA.Have {
		if reqA.Have[i] != reqB.Have[i] {
			t.Fatalf("Have[%d] diverged", i)
		}
	}
	for i := range reqA.Txs {
		if !bytes.Equal(reqA.Txs[i], reqB.Txs[i]) {
			t.Fatalf("pending tx %d diverged", i)
		}
	}
}

// TestSnapshotRestoreContinuesIngestion: a restored canister must keep
// processing payloads identically — including advancing the anchor over
// blocks it only knew as unstable state in the snapshot.
func TestSnapshotRestoreContinuesIngestion(t *testing.T) {
	f := experiments.NewFeeder(btc.Regtest, 6, 33)
	script := btc.PayToAddrScript(btc.NewP2PKHAddress([20]byte{0x77}, btc.Regtest))
	for i := 0; i < 5; i++ {
		if _, err := f.FeedBlock([]experiments.TxSpec{{Outputs: experiments.PayN(script, 10, 800)}}); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := f.Canister.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := canister.RestoreSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	// Feed the same continuation to both.
	now := time.Unix(1_700_002_000, 0).UTC()
	for i := 0; i < 10; i++ {
		blk, err := f.Builder.NextBlock([]experiments.TxSpec{{Inputs: 1, Outputs: experiments.PayN(script, 4, 900)}})
		if err != nil {
			t.Fatal(err)
		}
		payload := adapter.Response{Blocks: []adapter.BlockWithHeader{{Block: blk, Header: blk.Header}}}
		now = now.Add(time.Second)
		if err := f.Canister.ProcessPayload(ic.NewCallContext(ic.KindUpdate, now), payload); err != nil {
			t.Fatal(err)
		}
		if err := restored.ProcessPayload(ic.NewCallContext(ic.KindUpdate, now), payload); err != nil {
			t.Fatal(err)
		}
	}
	snapA, err := f.Canister.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snapB, err := restored.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapA, snapB) {
		t.Fatal("original and restored canisters diverged after further ingestion")
	}
	if restored.AnchorHeight() <= 5-6 {
		t.Fatalf("anchor never advanced after restore: %d", restored.AnchorHeight())
	}
}

// TestSubnetUpgradeRound reinstalls the Bitcoin canister from its own
// snapshot in the middle of a consensus-driven run — the paper's canister-
// upgrade scenario: stable memory carries U and T across the swap, and the
// upgraded canister finishes the chain exactly like an uninterrupted one.
func TestSubnetUpgradeRound(t *testing.T) {
	params := btc.RegtestParams()
	builder := experiments.NewBlockBuilder(params, 5)
	script := btc.PayToAddrScript(btc.NewP2PKHAddress([20]byte{0x66}, btc.Regtest))
	var blocks []*btc.Block
	for i := 0; i < 24; i++ {
		blk, err := builder.NextBlock([]experiments.TxSpec{
			{Outputs: experiments.PayN(script, 5, 546)},
			{Inputs: 1, Outputs: experiments.PayN(script, 1, 2_000)},
		})
		if err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, blk)
	}

	sched := simnet.NewScheduler(3)
	cfg := ic.DefaultConfig()
	cfg.DisableThresholdKeys = true
	cfg.DegradedRoundProb = 0
	sub, err := ic.NewSubnet(sched, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub.InstallCanister("bitcoin", canister.New(canister.DefaultConfig(btc.Regtest)))
	// One block per round, shared queue: only the round's block maker calls
	// its builder, so the queue drains in consensus order on every replica.
	queue := blocks
	for _, r := range sub.Replicas() {
		r.SetPayloadBuilder("bitcoin", ic.PayloadBuilderFunc(func() any {
			if len(queue) == 0 {
				return nil
			}
			b := queue[0]
			queue = queue[1:]
			return adapter.Response{Blocks: []adapter.BlockWithHeader{{Block: b, Header: b.Header}}}
		}))
	}
	sub.Start()
	sched.RunFor(12 * time.Second) // roughly half the chain

	mid := sub.Canister("bitcoin").(*canister.BitcoinCanister)
	if mid.IngestedBlocks() == 0 || mid.IngestedBlocks() >= len(blocks) {
		t.Fatalf("upgrade point not mid-run: %d of %d blocks ingested", mid.IngestedBlocks(), len(blocks))
	}
	if err := sub.UpgradeCanister("bitcoin", func(snapshot []byte) (ic.Canister, error) {
		return canister.RestoreSnapshot(snapshot)
	}); err != nil {
		t.Fatal(err)
	}
	if sub.Canister("bitcoin") == ic.Canister(mid) {
		t.Fatal("upgrade did not replace the canister instance")
	}

	for i := 0; len(queue) > 0 && i < 120; i++ {
		sched.RunFor(time.Second)
	}
	sched.RunFor(5 * time.Second) // let the last finalization land
	upgraded := sub.Canister("bitcoin").(*canister.BitcoinCanister)
	if upgraded.IngestedBlocks() != len(blocks) {
		t.Fatalf("upgraded canister ingested %d of %d blocks", upgraded.IngestedBlocks(), len(blocks))
	}

	// Control: the same blocks processed by one canister that never
	// restarted, one payload per block — the final stable state must be
	// byte-identical.
	control := canister.New(canister.DefaultConfig(btc.Regtest))
	now := time.Unix(1_700_000_000, 0).UTC()
	for _, b := range blocks {
		now = now.Add(time.Second)
		payload := adapter.Response{Blocks: []adapter.BlockWithHeader{{Block: b, Header: b.Header}}}
		if err := control.ProcessPayload(ic.NewCallContext(ic.KindUpdate, now), payload); err != nil {
			t.Fatal(err)
		}
	}
	snapA, err := upgraded.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snapB, err := control.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapA, snapB) {
		t.Fatal("upgraded canister state diverged from the uninterrupted control")
	}
}

func TestRestoreRejectsCorruptedSnapshot(t *testing.T) {
	c, _ := buildSnapshotState(t)
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), snap...)
	bad[len(bad)/2] ^= 0x01
	if _, err := canister.RestoreSnapshot(bad); err == nil {
		t.Fatal("restore accepted a corrupted snapshot")
	}
	if _, err := canister.RestoreSnapshot(snap[:len(snap)/2]); err == nil {
		t.Fatal("restore accepted a truncated snapshot")
	}
	if _, err := canister.RestoreSnapshot([]byte("not a snapshot")); err == nil {
		t.Fatal("restore accepted garbage")
	}
}

// TestGoldenSnapshotCompatibility is the CI compatibility gate: the
// checked-in fixture must (a) still decode, (b) re-encode byte-identically
// (decode/encode determinism against historic bytes), and (c) match what
// the current encoder produces for the same seeded state — so any codec
// change is forced through an explicit SnapshotVersion bump plus fixture
// regeneration (-update-golden) instead of silently orphaning deployed
// snapshots.
func TestGoldenSnapshotCompatibility(t *testing.T) {
	c, _ := buildSnapshotState(t)
	current, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden_snapshot_v1.bin")
	if *updateGolden {
		if err := os.WriteFile(path, current, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(current))
	}
	golden, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden fixture (regenerate with -update-golden after a version bump): %v", err)
	}
	if !bytes.Equal(golden, current) {
		t.Fatalf("current encoder no longer reproduces the v%d golden fixture (%d vs %d bytes); "+
			"if the format change is intentional, bump canister.SnapshotVersion and regenerate with -update-golden",
			canister.SnapshotVersion, len(golden), len(current))
	}
	restored, err := canister.RestoreSnapshot(golden)
	if err != nil {
		t.Fatalf("current decoder cannot read the v%d golden fixture: %v", canister.SnapshotVersion, err)
	}
	again, err := restored.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(golden, again) {
		t.Fatal("re-encoding the restored golden state changed bytes (non-determinism)")
	}
}

// TestSnapshotRestoreAllocations pins the restore hot path at the canister
// level: O(bytes) work, a small constant number of allocations per stable
// UTXO — no ScriptID re-derivation, no bucket re-sorting, no header
// re-validation.
func TestSnapshotRestoreAllocations(t *testing.T) {
	f := experiments.NewFeeder(btc.Regtest, 6, 13)
	script := btc.PayToAddrScript(btc.NewP2PKHAddress([20]byte{0x55}, btc.Regtest))
	if _, err := f.FeedBlock([]experiments.TxSpec{{Outputs: experiments.PayN(script, 2000, 546)}}); err != nil {
		t.Fatal(err)
	}
	if err := f.FeedEmpty(8); err != nil {
		t.Fatal(err)
	}
	snap, err := f.Canister.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	n := f.Canister.StableUTXOCount()
	avg := testing.AllocsPerRun(10, func() {
		if _, err := canister.RestoreSnapshot(snap); err != nil {
			t.Fatal(err)
		}
	})
	if perUTXO := avg / float64(n); perUTXO > 4 {
		t.Fatalf("restore allocates %.2f per stable UTXO (%.0f total for %d), budget is 4", perUTXO, avg, n)
	}
}
