package canister

import (
	"icbtc/internal/ic"
	"icbtc/internal/obs"
)

// canisterMetrics is the canister's obs instrumentation: per-method call and
// metered-instruction counters precomputed from the method registry (so the
// dispatch hot path is a map hit, not a lock), payload/fold/snapshot
// timings, and the frame-stream counters. All names carry the canister_
// prefix so merged snapshots (chaos, bench) stay collision-free.
type canisterMetrics struct {
	reg *obs.Registry

	// Per-method, precomputed from methodTable at construction.
	calls        map[string]*obs.Counter
	instructions map[string]*obs.Counter

	payloads        *obs.Counter
	payloadDuration *obs.Histogram
	blocksIngested  *obs.Counter
	blocksRejected  *obs.Counter
	headersRejected *obs.Counter
	anchorAdvances  *obs.Counter

	framesPublished *obs.Counter
	framesApplied   *obs.Counter
	frameApplyNanos *obs.Histogram
	applyErrors     *obs.Counter

	snapshotNanos *obs.Histogram
	restores      *obs.Counter
	snapshotBytes *obs.Gauge
}

func newCanisterMetrics() *canisterMetrics {
	r := obs.NewRegistry()
	m := &canisterMetrics{
		reg:          r,
		calls:        make(map[string]*obs.Counter, len(methodTable)),
		instructions: make(map[string]*obs.Counter, len(methodTable)),

		payloads:        r.Counter("canister_payloads_total"),
		payloadDuration: r.Histogram("canister_payload_duration_ns", obs.DurationBuckets),
		blocksIngested:  r.Counter("canister_blocks_ingested_total"),
		blocksRejected:  r.Counter("canister_blocks_rejected_total"),
		headersRejected: r.Counter("canister_headers_rejected_total"),
		anchorAdvances:  r.Counter("canister_anchor_advances_total"),

		framesPublished: r.Counter("canister_frames_published_total"),
		framesApplied:   r.Counter("canister_frames_applied_total"),
		frameApplyNanos: r.Histogram("canister_frame_apply_duration_ns", obs.DurationBuckets),
		applyErrors:     r.Counter("canister_apply_errors_total"),

		snapshotNanos: r.Histogram("canister_snapshot_duration_ns", obs.DurationBuckets),
		// Restores are counted, not timed: a restore runs before any driver
		// can install a virtual clock on the fresh canister's registry, so a
		// wall-clock duration histogram here would break the seeded harnesses'
		// bit-identical-snapshot guarantee.
		restores:      r.Counter("canister_restores_total"),
		snapshotBytes: r.Gauge("canister_snapshot_bytes"),
	}
	callFam := r.Family("canister_method_calls_total", "method")
	instrFam := r.Family("canister_method_instructions_total", "method")
	for _, desc := range methodTable {
		m.calls[desc.Name] = callFam.With(desc.Name)
		m.instructions[desc.Name] = instrFam.With(desc.Name)
	}
	return m
}

// Metrics returns the canister's obs registry. Seeded drivers install the
// scheduler clock on it (SetClock) so instrumentation timing is virtual and
// same-seed runs produce bit-identical snapshots.
func (c *BitcoinCanister) Metrics() *obs.Registry { return c.met.reg }

// recordDispatch bumps the per-method call counter and, after the handler
// ran, attributes the metered instructions the call charged. Lock-free:
// both counters were precomputed from the registry table.
func (c *BitcoinCanister) recordDispatch(method string, meter *ic.Meter, before uint64) {
	c.met.calls[method].Inc()
	if meter != nil {
		c.met.instructions[method].Add(meter.Total() - before)
	}
}

// MetricsResult is the get_metrics response: the canister's obs snapshot in
// its canonical statecodec encoding (obs.DecodeSnapshot parses it). Shipping
// the encoded form keeps the response digest — and therefore the certified
// envelope — a pure function of the metric values.
type MetricsResult struct {
	Encoded []byte
}

// GetMetrics serves the get_metrics endpoint. Like get_health it skips
// checkServable — telemetry must remain readable exactly when the canister
// is unhealthy. Chain-position gauges are stamped from live state at serve
// time, so two replicas at the same frame report identical values for them
// (the subset the differential harness compares).
func (c *BitcoinCanister) GetMetrics(ctx *ic.CallContext) (*MetricsResult, error) {
	ctx.Meter.Charge(ic.CostRequestBase, "request_base")
	r := c.met.reg
	r.Gauge("canister_tip_height").Set(c.tipNode().Height)
	r.Gauge("canister_anchor_height").Set(c.tree.Root().Height)
	r.Gauge("canister_available_height").Set(c.availableHeight)
	r.Gauge("canister_stable_utxos").Set(int64(c.stable.Len()))
	r.Gauge("canister_unstable_blocks").Set(int64(len(c.blocks)))
	synced := int64(0)
	if c.synced {
		synced = 1
	}
	r.Gauge("canister_synced").Set(synced)
	return &MetricsResult{Encoded: r.Snapshot().Encode()}, nil
}

// DeterministicMetricGauges is the subset of get_metrics gauge names that
// are pure functions of the applied chain state: equal for any two replicas
// (or the replay oracle) at the same frame, regardless of request history,
// hydration point, or scheduling. The differential harness restricts its
// oracle-vs-subject metrics comparison to this set.
var DeterministicMetricGauges = []string{
	"canister_anchor_height",
	"canister_available_height",
	"canister_stable_utxos",
	"canister_synced",
	"canister_tip_height",
	"canister_unstable_blocks",
}
