package canister

import (
	"fmt"

	"icbtc/internal/btc"
	"icbtc/internal/chain"
	"icbtc/internal/ingest"
	"icbtc/internal/statecodec"
	"icbtc/internal/utxo"
)

// Snapshot / Restore: the deterministic serialization of the complete
// canister state. The production Bitcoin canister keeps U and T in stable
// memory, which is what lets it survive canister upgrades and lets replicas
// state-sync instead of re-ingesting the chain; Snapshot captures the
// equivalent here — the stable UTXO set (ordered index, running balances,
// and interned script table included), the header tree with its per-node
// unstable deltas and the root's median-time-past window, the unstable
// blocks, the anchor history, pending outbound transactions, and the
// counters — as one versioned, checksummed byte string.
//
// Determinism: two canisters holding identical state produce identical
// snapshots, and encode→decode→encode is byte-stable (the golden-fixture CI
// job pins both properties). Restore is O(snapshot bytes): no ScriptID is
// re-derived, no index bucket re-sorted, no header re-validated — derived
// state (the have list, sync flag, caches) is rebuilt in single passes.

const (
	// snapshotMagic brands canister snapshots; a foreign byte string is
	// rejected before any state is built.
	snapshotMagic = "icbtc/canister-snapshot\n"
	// SnapshotVersion is the current snapshot format version. Any change to
	// the layout below (or to the codecs it composes) must bump this and
	// regenerate the golden fixture — CI fails otherwise.
	SnapshotVersion uint16 = 1
)

// Decode guards for repeated elements.
const (
	maxSnapshotHeaders = 1 << 24
	maxSnapshotBlocks  = 1 << 20
	maxSnapshotTxs     = 1 << 20
	maxBlockWireBytes  = 1 << 25
	maxTxWireBytes     = 1 << 22

	// Minimum encoded sizes for count-vs-remaining-bytes bounds
	// (statecodec.Decoder.CountFor): a header is 80 wire bytes; an outgoing
	// transaction carries at least a length prefix, its txid, and rounds.
	headerWireBytes    = 80
	minOutgoingTxBytes = 1 + btc.HashSize + 8
)

// encodeHeader appends a block header's 80-byte wire form field by field
// (no intermediate buffer, so header-heavy snapshots stay allocation-lean).
func encodeHeader(e *statecodec.Encoder, h *btc.BlockHeader) {
	e.U32(h.Version)
	e.Raw(h.PrevBlock[:])
	e.Raw(h.MerkleRoot[:])
	e.U32(h.Timestamp)
	e.U32(h.Bits)
	e.U32(h.Nonce)
}

// decodeHeader reads a header written by encodeHeader.
func decodeHeader(d *statecodec.Decoder) btc.BlockHeader {
	var h btc.BlockHeader
	h.Version = d.U32()
	copy(h.PrevBlock[:], d.Raw(btc.HashSize))
	copy(h.MerkleRoot[:], d.Raw(btc.HashSize))
	h.Timestamp = d.U32()
	h.Bits = d.U32()
	h.Nonce = d.U32()
	return h
}

// Snapshot serializes the complete canister state deterministically.
func (c *BitcoinCanister) Snapshot() ([]byte, error) {
	start := c.met.reg.Now()
	hint := c.stable.Len()*60 + len(c.blocks)*(2<<10) + len(c.stableHeaders)*80 + 1024
	e := statecodec.NewEncoder(snapshotMagic, SnapshotVersion, hint)

	// Configuration: a restored canister must run the identical state
	// machine (δ, τ, page limit) and read path.
	e.U8(uint8(c.cfg.Network))
	e.I64(c.cfg.StabilityThreshold)
	e.I64(c.cfg.SyncSlack)
	e.I64(int64(c.cfg.PageLimit))
	e.I64(int64(c.cfg.TxRebroadcastRounds))
	e.U8(uint8(c.cfg.ReadPath))

	// Counters (observability must survive an upgrade, and serializing them
	// keeps a restored canister's snapshot byte-identical to the original's).
	e.I64(int64(c.ingestedBlocks))
	e.I64(int64(c.rejectedBlocks))
	e.I64(int64(c.rejectedHeaders))
	e.I64(c.anchorHeight)
	e.I64(int64(c.applyErrors))

	// Anchor history ("block headers are kept forever").
	e.Uvarint(uint64(len(c.stableHeaders)))
	for i := range c.stableHeaders {
		encodeHeader(e, &c.stableHeaders[i])
	}

	// U, the stable UTXO set.
	c.stable.EncodeTo(e)

	// T, the header tree: the root with its height and median-time-past
	// window (which spans pruned ancestors), then every other node's header
	// in deterministic BFS order — parents always precede children, so
	// restore is a sequence of plain inserts.
	root := c.tree.Root()
	e.I64(root.Height)
	encodeHeader(e, &root.Header)
	win := root.TimestampWindow()
	e.Uvarint(uint64(len(win)))
	for _, ts := range win {
		e.U32(ts)
	}
	var order []*chain.Node
	c.tree.BFSFrom(root, func(n *chain.Node) bool {
		if n != root {
			order = append(order, n)
		}
		return true
	})
	e.Uvarint(uint64(len(order)))
	for _, n := range order {
		encodeHeader(e, &n.Header)
	}
	// Per-node unstable deltas, in the same BFS order (the root's aux is
	// always nil — advanceAnchor clears it when a block stabilizes).
	for _, n := range order {
		if delta, ok := n.Aux().(*utxo.BlockDelta); ok && delta != nil {
			e.Bool(true)
			utxo.EncodeBlockDelta(e, delta)
		} else {
			e.Bool(false)
		}
	}

	// Unstable blocks, written in the have list's (height, hash) order so
	// restore rebuilds the sorted list by appending.
	e.Uvarint(uint64(len(c.have)))
	for i := range c.have {
		block := c.blocks[c.have[i].hash]
		if block == nil {
			return nil, fmt.Errorf("canister: snapshot: have entry %s has no stored block", c.have[i].hash)
		}
		e.Bytes(block.Bytes())
	}

	// Pending outbound transactions, with their memoized txids so restore
	// does not re-hash.
	e.Uvarint(uint64(len(c.outgoing)))
	for i := range c.outgoing {
		e.Bytes(c.outgoing[i].raw)
		e.Raw(c.outgoing[i].txid[:])
		e.I64(int64(c.outgoing[i].rounds))
	}
	out := e.Finish()
	c.met.snapshotNanos.ObserveDuration(c.met.reg.Now().Sub(start))
	c.met.snapshotBytes.Set(int64(len(out)))
	return out, nil
}

// RestoreStage names the section boundaries of a snapshot restore, in
// order. Crash injection (RestoreSnapshotCrashing) kills the restore at one
// of these boundaries, modeling a process death partway through an install.
type RestoreStage int

const (
	// restoreStageNone disables crash injection (the normal path).
	restoreStageNone RestoreStage = iota
	// RestoreStageConfig: configuration and counters decoded.
	RestoreStageConfig
	// RestoreStageHeaders: anchor history decoded.
	RestoreStageHeaders
	// RestoreStageStableSet: stable UTXO set decoded.
	RestoreStageStableSet
	// RestoreStageTree: header tree and per-node deltas decoded.
	RestoreStageTree
	// RestoreStageBlocks: unstable blocks decoded and attached.
	RestoreStageBlocks
	// RestoreStageOutgoing: pending outbound transactions decoded — the
	// last boundary before the decoder's Close (checksum/trailing check)
	// would complete the restore.
	RestoreStageOutgoing
)

// ErrRestoreCrash is returned by RestoreSnapshotCrashing at the armed stage
// boundary: the injected process death. The partially built canister is
// discarded — exactly what a real crash leaves behind (nothing but the
// on-disk image and its missing completion marker).
var ErrRestoreCrash = fmt.Errorf("canister: restore: injected crash")

// RestoreSnapshot reconstructs a canister from a snapshot produced by
// Snapshot. The restored canister is byte-for-byte equivalent: it answers
// every request identically to the canister the snapshot was taken from,
// and re-snapshotting it reproduces the input bytes.
func RestoreSnapshot(data []byte) (*BitcoinCanister, error) {
	return restoreSnapshot(data, 1, restoreStageNone)
}

// RestoreSnapshotCrashing is RestoreSnapshot with a crash armed at a stage
// boundary: the restore proceeds normally until the named section has been
// decoded, then dies with ErrRestoreCrash. Chaos scenarios use it as the
// reinstall step of a CrashMidRestore upgrade.
func RestoreSnapshotCrashing(data []byte, stage RestoreStage) (*BitcoinCanister, error) {
	return restoreSnapshot(data, 1, stage)
}

// RestoreSnapshotParallel is RestoreSnapshot with the two decode-dominant
// sections sharded across workers: the UTXO set's script table and address
// buckets (utxo.DecodeSetParallel) and the unstable blocks' wire parsing
// (zero-copy, txids hashed off the spans — which also pre-warms the memos
// WarmQueryState would otherwise compute). Merging is deterministic; the
// restored canister is identical to RestoreSnapshot's, including its
// re-snapshot bytes. Replica fast-sync hydration uses this. The restored
// blocks alias data, which must stay immutable.
func RestoreSnapshotParallel(data []byte, cfg ingest.Config) (*BitcoinCanister, error) {
	workers := cfg.NormalizedWorkers()
	return restoreSnapshot(data, workers, restoreStageNone)
}

func restoreSnapshot(data []byte, workers int, crashAt RestoreStage) (*BitcoinCanister, error) {
	d, err := statecodec.NewDecoder(data, snapshotMagic, SnapshotVersion)
	if err != nil {
		return nil, fmt.Errorf("canister: restore: %w", err)
	}

	cfg := Config{
		Network:             btc.Network(d.U8()),
		StabilityThreshold:  d.I64(),
		SyncSlack:           d.I64(),
		PageLimit:           int(d.I64()),
		TxRebroadcastRounds: int(d.I64()),
		ReadPath:            ReadPath(d.U8()),
	}
	c := &BitcoinCanister{
		cfg:          cfg,
		params:       btc.ParamsForNetwork(cfg.Network),
		blocks:       make(map[btc.Hash]*btc.Block),
		scriptIDs:    btc.NewScriptIDCache(cfg.Network),
		balanceCache: make(map[balanceKey]int64),
		met:          newCanisterMetrics(),
	}
	c.ingestedBlocks = int(d.I64())
	c.rejectedBlocks = int(d.I64())
	c.rejectedHeaders = int(d.I64())
	c.anchorHeight = d.I64()
	c.applyErrors = int(d.I64())
	if crashAt == RestoreStageConfig {
		return nil, ErrRestoreCrash
	}

	nHeaders := d.CountFor(maxSnapshotHeaders, headerWireBytes)
	c.stableHeaders = make([]btc.BlockHeader, 0, nHeaders)
	for i := 0; i < nHeaders; i++ {
		c.stableHeaders = append(c.stableHeaders, decodeHeader(d))
	}
	if d.Err() != nil {
		return nil, fmt.Errorf("canister: restore: %w", d.Err())
	}
	if crashAt == RestoreStageHeaders {
		return nil, ErrRestoreCrash
	}

	if c.stable, err = utxo.DecodeSetParallel(d, workers); err != nil {
		return nil, fmt.Errorf("canister: restore: %w", err)
	}
	if c.stable.Network() != cfg.Network {
		return nil, fmt.Errorf("canister: restore: UTXO set network %v does not match config %v",
			c.stable.Network(), cfg.Network)
	}
	if crashAt == RestoreStageStableSet {
		return nil, ErrRestoreCrash
	}

	// Header tree. Parents precede children in the stored order, so every
	// insert finds its predecessor; Insert recomputes work, cumulative work,
	// and timestamp windows deterministically from the restored root.
	rootHeight := d.I64()
	rootHeader := decodeHeader(d)
	nWin := d.Count(11)
	window := make([]uint32, 0, nWin)
	for i := 0; i < nWin; i++ {
		window = append(window, d.U32())
	}
	if d.Err() != nil {
		return nil, fmt.Errorf("canister: restore: %w", d.Err())
	}
	if n := len(c.stableHeaders); n == 0 || c.stableHeaders[n-1].BlockHash() != rootHeader.BlockHash() {
		return nil, fmt.Errorf("canister: restore: tree root is not the last stable header")
	}
	c.tree = chain.NewTreeWithWindow(rootHeader, rootHeight, window)
	nNodes := d.CountFor(maxSnapshotHeaders, headerWireBytes)
	order := make([]*chain.Node, 0, nNodes)
	for i := 0; i < nNodes; i++ {
		h := decodeHeader(d)
		if d.Err() != nil {
			return nil, fmt.Errorf("canister: restore: %w", d.Err())
		}
		node, err := c.tree.Insert(h)
		if err != nil {
			return nil, fmt.Errorf("canister: restore: tree node %d: %w", i, err)
		}
		order = append(order, node)
	}
	for _, node := range order {
		if d.Bool() {
			delta, err := utxo.DecodeBlockDelta(d)
			if err != nil {
				return nil, fmt.Errorf("canister: restore: delta for %s: %w", node.Hash, err)
			}
			if delta.Height() != node.Height {
				return nil, fmt.Errorf("canister: restore: delta height %d on node at height %d",
					delta.Height(), node.Height)
			}
			node.SetAux(delta)
		}
	}
	if crashAt == RestoreStageTree {
		return nil, ErrRestoreCrash
	}

	// Unstable blocks arrive in have order; appending keeps the list sorted.
	// With workers, the wire slices are collected in one scan and parsed on
	// the pipeline (zero-copy, txid memos sealed from the spans) while this
	// goroutine attaches them in order.
	nBlocks := d.CountFor(maxSnapshotBlocks, headerWireBytes+1)
	c.have = make([]haveEntry, 0, nBlocks)
	attach := func(i int, block *btc.Block, err error) error {
		if err != nil {
			return fmt.Errorf("canister: restore: block %d: %w", i, err)
		}
		hash := block.BlockHash()
		node := c.tree.Get(hash)
		if node == nil {
			return fmt.Errorf("canister: restore: block %s has no tree node", hash)
		}
		if c.blocks[hash] != nil {
			return fmt.Errorf("canister: restore: block %s duplicated", hash)
		}
		entry := haveEntry{height: node.Height, hash: hash}
		if i > 0 && !haveLess(c.have[i-1], entry) {
			return fmt.Errorf("canister: restore: blocks not in have order at %d", i)
		}
		c.blocks[hash] = block
		c.have = append(c.have, entry)
		return nil
	}
	if workers <= 1 {
		for i := 0; i < nBlocks; i++ {
			raw := d.Bytes(maxBlockWireBytes)
			if d.Err() != nil {
				return nil, fmt.Errorf("canister: restore: %w", d.Err())
			}
			block, err := btc.ParseBlock(raw)
			if err := attach(i, block, err); err != nil {
				return nil, err
			}
		}
	} else {
		raws := make([][]byte, 0, nBlocks)
		for i := 0; i < nBlocks; i++ {
			raws = append(raws, d.Bytes(maxBlockWireBytes))
			if d.Err() != nil {
				return nil, fmt.Errorf("canister: restore: %w", d.Err())
			}
		}
		type parsed struct {
			block *btc.Block
			err   error
		}
		if err := ingest.Map(nBlocks, ingest.Config{Workers: workers},
			func(_, i int) parsed {
				b, err := btc.ParseBlockFast(raws[i])
				return parsed{block: b, err: err}
			},
			func(i int, p parsed) error { return attach(i, p.block, p.err) },
		); err != nil {
			return nil, err
		}
	}
	if crashAt == RestoreStageBlocks {
		return nil, ErrRestoreCrash
	}

	nTxs := d.CountFor(maxSnapshotTxs, minOutgoingTxBytes)
	for i := 0; i < nTxs; i++ {
		raw := d.Bytes(maxTxWireBytes)
		var txid btc.Hash
		copy(txid[:], d.Raw(btc.HashSize))
		rounds := int(d.I64())
		if d.Err() != nil {
			return nil, fmt.Errorf("canister: restore: %w", d.Err())
		}
		// The stored txid is a memoization, not an assertion the decoder
		// trusts: SendTransaction's parser only admits canonical encodings,
		// so the raw bytes re-serialize identically and one DoubleSHA256
		// checks the stored value (a mismatched txid would silently defeat
		// the outbound-queue dedup).
		if btc.DoubleSHA256(raw) != txid {
			return nil, fmt.Errorf("canister: restore: outgoing tx %d txid does not match its bytes", i)
		}
		cp := make([]byte, len(raw))
		copy(cp, raw)
		c.outgoing = append(c.outgoing, outgoingTx{raw: cp, txid: txid, rounds: rounds})
	}
	if crashAt == RestoreStageOutgoing {
		return nil, ErrRestoreCrash
	}

	if err := d.Close(); err != nil {
		return nil, fmt.Errorf("canister: restore: %w", err)
	}
	// Derived state: the sync flag and available height fall out of the
	// restored tree and have list exactly as after a processed payload.
	c.updateSynced()
	c.met.restores.Inc()
	return c, nil
}
