package canister

import (
	"errors"
	"fmt"
	"time"

	"icbtc/internal/adapter"
	"icbtc/internal/btc"
	"icbtc/internal/ic"
	"icbtc/internal/ingest"
	"icbtc/internal/statecodec"
	"icbtc/internal/utxo"
)

// The per-block delta stream: the feed that keeps read replicas fresh.
//
// A canister with a stream sink installed publishes one Frame per processed
// payload, carrying exactly the mutations Algorithm 2 *accepted*, in
// application order: blocks attached to the header tree (with their wire
// bytes and the address-indexed BlockDelta already computed at acceptance),
// upcoming headers, and anchor advances. Rejected blocks and headers never
// appear — a consumer needs no validation logic, it replays decisions.
//
// A replica hydrated from a Snapshot at frame S and fed frames S+1.. holds,
// after each frame, a state that answers every read endpoint byte-for-byte
// identically to the authoritative canister at that frame (the differential
// harness in internal/difftest enforces this across random lags, reorgs,
// and mid-workload re-hydrations). Frames are self-contained byte strings
// (statecodec framing, versioned and checksummed), so they can cross a
// process boundary; decoding shares nothing with the producer, which is
// what lets every replica consume its own copy without synchronization.

const (
	// frameMagic brands delta-stream frames.
	frameMagic = "icbtc/delta-frame\n"
	// FrameVersion is the current frame format version. Version 2 added the
	// adapter health report after the anchor height.
	FrameVersion uint16 = 2

	// maxFrameEvents bounds the per-frame event count a decoder accepts.
	maxFrameEvents = 1 << 20
)

// StreamEventKind discriminates stream events.
type StreamEventKind uint8

// Stream event kinds, in the order Algorithm 2 produces them.
const (
	// EventBlockAttached: a validated block joined the header tree; carries
	// the header, the block's wire bytes, and its BlockDelta.
	EventBlockAttached StreamEventKind = iota + 1
	// EventHeaderAttached: a validated upcoming header joined the tree.
	EventHeaderAttached
	// EventAnchorAdvanced: the block identified by Hash became δ-stable and
	// was folded into U; the tree re-rooted at it.
	EventAnchorAdvanced
)

// StreamEvent is one accepted mutation.
type StreamEvent struct {
	Kind StreamEventKind
	// Header is set for EventBlockAttached and EventHeaderAttached.
	Header btc.BlockHeader
	// RawBlock is the block's wire bytes (EventBlockAttached).
	RawBlock []byte
	// Delta is the block's address-indexed delta (EventBlockAttached),
	// computed once by the authoritative canister so replicas skip the
	// owner-resolution pass entirely.
	Delta *utxo.BlockDelta
	// Hash identifies the stabilized block (EventAnchorAdvanced).
	Hash btc.Hash

	// block caches the parsed RawBlock when Frame.Prepare ran; ApplyFrame
	// uses it instead of re-parsing. Never serialized.
	block *btc.Block
}

// Frame is the batch of events one processed payload produced, plus the
// authoritative chain position after it — what staleness bounds are
// measured against.
type Frame struct {
	// Seq is the frame's position in the stream (assigned by the
	// distributor; 0 while unassigned).
	Seq uint64
	// TipHeight/AnchorHeight are the authoritative canister's considered
	// tip and anchor after applying this frame.
	TipHeight    int64
	AnchorHeight int64
	// Health is the adapter self-report the authoritative canister held
	// after this frame's payload — how replicas learn the chain feed is
	// degraded (and annotate their answers) without seeing payloads.
	Health adapter.Health
	Events []StreamEvent
}

// SetStreamSink installs (or, with nil, removes) the frame consumer. The
// sink is invoked synchronously at the end of every ProcessPayload that
// accepted at least one mutation.
func (c *BitcoinCanister) SetStreamSink(fn func(*Frame)) { c.stream = fn }

// emit buffers one event for the current payload's frame. No-op without a
// sink, so the authoritative canister pays nothing when no fleet listens.
func (c *BitcoinCanister) emit(ev StreamEvent) {
	if c.stream != nil {
		c.events = append(c.events, ev)
	}
}

// flushFrame hands the accumulated events of one payload to the sink. A
// payload that accepted nothing still produces a frame when the adapter's
// health report changed — degradation (and recovery) must reach replicas
// even when no chain data flows, which is exactly when it matters.
func (c *BitcoinCanister) flushFrame() {
	if c.stream == nil {
		c.events = nil
		return
	}
	if len(c.events) == 0 && c.adapterHealth == c.lastSentHealth {
		return
	}
	f := &Frame{
		TipHeight:    c.tipNode().Height,
		AnchorHeight: c.tree.Root().Height,
		Health:       c.adapterHealth,
		Events:       c.events,
	}
	c.events = nil
	c.lastSentHealth = c.adapterHealth
	c.met.framesPublished.Inc()
	c.stream(f)
}

// EncodeFrame serializes a frame deterministically.
func EncodeFrame(f *Frame) []byte {
	hint := 64
	for i := range f.Events {
		hint += 128 + len(f.Events[i].RawBlock)
	}
	e := statecodec.NewEncoder(frameMagic, FrameVersion, hint)
	e.U64(f.Seq)
	e.I64(f.TipHeight)
	e.I64(f.AnchorHeight)
	e.U8(uint8(f.Health.State))
	e.I64(f.Health.Height)
	e.Uvarint(uint64(f.Health.PendingBlocks))
	e.Uvarint(uint64(f.Health.Peers))
	e.Uvarint(uint64(len(f.Events)))
	for i := range f.Events {
		ev := &f.Events[i]
		e.U8(uint8(ev.Kind))
		switch ev.Kind {
		case EventBlockAttached:
			encodeHeader(e, &ev.Header)
			e.Bytes(ev.RawBlock)
			utxo.EncodeBlockDelta(e, ev.Delta)
		case EventHeaderAttached:
			encodeHeader(e, &ev.Header)
		case EventAnchorAdvanced:
			e.Raw(ev.Hash[:])
		}
	}
	return e.Finish()
}

// DecodeFrame parses a frame produced by EncodeFrame. The returned frame
// shares nothing with the producer's state: blocks arrive as wire bytes
// (parsed by the consumer) and deltas are decoded into fresh maps.
func DecodeFrame(data []byte) (*Frame, error) {
	d, err := statecodec.NewDecoder(data, frameMagic, FrameVersion)
	if err != nil {
		return nil, fmt.Errorf("canister: frame: %w", err)
	}
	f := &Frame{
		Seq:          d.U64(),
		TipHeight:    d.I64(),
		AnchorHeight: d.I64(),
	}
	f.Health.State = adapter.State(d.U8())
	f.Health.Height = d.I64()
	f.Health.PendingBlocks = int(d.Uvarint())
	f.Health.Peers = int(d.Uvarint())
	n := d.CountFor(maxFrameEvents, 1)
	for i := 0; i < n; i++ {
		var ev StreamEvent
		ev.Kind = StreamEventKind(d.U8())
		switch ev.Kind {
		case EventBlockAttached:
			ev.Header = decodeHeader(d)
			raw := d.Bytes(maxBlockWireBytes)
			ev.RawBlock = append([]byte(nil), raw...)
			if d.Err() != nil {
				return nil, fmt.Errorf("canister: frame event %d: %w", i, d.Err())
			}
			delta, err := utxo.DecodeBlockDelta(d)
			if err != nil {
				return nil, fmt.Errorf("canister: frame event %d delta: %w", i, err)
			}
			ev.Delta = delta
		case EventHeaderAttached:
			ev.Header = decodeHeader(d)
		case EventAnchorAdvanced:
			copy(ev.Hash[:], d.Raw(btc.HashSize))
		default:
			return nil, fmt.Errorf("canister: frame event %d: unknown kind %d", i, ev.Kind)
		}
		if d.Err() != nil {
			return nil, fmt.Errorf("canister: frame event %d: %w", i, d.Err())
		}
		f.Events = append(f.Events, ev)
	}
	if err := d.Close(); err != nil {
		return nil, fmt.Errorf("canister: frame: %w", err)
	}
	return f, nil
}

// ErrFrameOutOfOrder reports a frame that does not apply to the replica's
// current state (a gap or reordering in the stream).
var ErrFrameOutOfOrder = errors.New("canister: stream frame does not apply to current state")

// Prepare runs the frame's CPU-bound work ahead of ApplyFrame: every block
// event's wire bytes are parsed (zero-copy, txid memos sealed off the
// spans) on the pipeline, so frame application under the replica's write
// lock is left with pure state mutation. A parse failure is deferred —
// ApplyFrame re-parses and reports it at the failing event, exactly as the
// unprepared path would. Prepare is idempotent; the parsed blocks alias
// the frame's RawBlock bytes.
func (f *Frame) Prepare(cfg ingest.Config) {
	var blockEvents []int
	for i := range f.Events {
		if f.Events[i].Kind == EventBlockAttached && f.Events[i].block == nil {
			blockEvents = append(blockEvents, i)
		}
	}
	if len(blockEvents) == 0 {
		return
	}
	_ = ingest.Map(len(blockEvents), cfg,
		func(_, j int) *btc.Block {
			b, err := btc.ParseBlockFast(f.Events[blockEvents[j]].RawBlock)
			if err != nil {
				return nil // ApplyFrame re-parses and surfaces the error
			}
			return b
		},
		func(j int, b *btc.Block) error {
			f.Events[blockEvents[j]].block = b
			return nil
		})
}

// ApplyFrame replays one frame's accepted mutations on a replica canister.
// The replica performs no re-validation (the authoritative canister already
// validated everything it accepted) and rebuilds derived state exactly as
// a processed payload would, ending with the query caches warmed so
// concurrent readers never race on lazy initialization.
//
// ApplyFrame must be called with frames in stream order, without gaps,
// starting from the state the replica was hydrated at. It is NOT safe for
// concurrent use with queries; the caller (the fleet replica) serializes
// frame application behind its write lock.
func (c *BitcoinCanister) ApplyFrame(f *Frame) error {
	start := c.met.reg.Now()
	ctx := ic.NewCallContext(ic.KindUpdate, time0)
	for i := range f.Events {
		ev := &f.Events[i]
		switch ev.Kind {
		case EventHeaderAttached:
			if err := c.applyHeaderEvent(ev); err != nil {
				c.met.applyErrors.Inc()
				return err
			}
		case EventBlockAttached:
			if err := c.applyBlockEvent(ev); err != nil {
				c.met.applyErrors.Inc()
				return err
			}
		case EventAnchorAdvanced:
			if err := c.applyAnchorEvent(ctx, ev); err != nil {
				c.met.applyErrors.Inc()
				return err
			}
		default:
			c.met.applyErrors.Inc()
			return fmt.Errorf("canister: apply frame: unknown event kind %d", ev.Kind)
		}
	}
	c.adapterHealth = f.Health
	c.lastSentHealth = f.Health
	c.updateSynced()
	c.WarmQueryState()
	c.met.framesApplied.Inc()
	c.met.frameApplyNanos.ObserveDuration(c.met.reg.Now().Sub(start))
	return nil
}

// applyHeaderEvent inserts an accepted upcoming header.
func (c *BitcoinCanister) applyHeaderEvent(ev *StreamEvent) error {
	hash := ev.Header.BlockHash()
	if c.tree.Contains(hash) {
		return nil // also emitted by the block path; attach is idempotent
	}
	if _, err := c.tree.Insert(ev.Header); err != nil {
		return fmt.Errorf("%w: header %s: %v", ErrFrameOutOfOrder, hash, err)
	}
	c.invalidateChain()
	c.invalidateReadCaches()
	return nil
}

// applyBlockEvent attaches an accepted block with its precomputed delta.
func (c *BitcoinCanister) applyBlockEvent(ev *StreamEvent) error {
	hash := ev.Header.BlockHash()
	if c.blocks[hash] != nil {
		return nil // duplicate delivery is harmless, as on the write path
	}
	block := ev.block // parsed ahead by Frame.Prepare, when it ran
	if block == nil {
		var err error
		block, err = btc.ParseBlock(ev.RawBlock)
		if err != nil {
			return fmt.Errorf("canister: apply frame: block %s: %w", hash, err)
		}
	}
	if block.BlockHash() != hash {
		return fmt.Errorf("canister: apply frame: block bytes do not match header %s", hash)
	}
	if !c.tree.Contains(hash) {
		if _, err := c.tree.Insert(ev.Header); err != nil {
			return fmt.Errorf("%w: block header %s: %v", ErrFrameOutOfOrder, hash, err)
		}
	}
	node := c.tree.Get(hash)
	if ev.Delta == nil || ev.Delta.Height() != node.Height {
		return fmt.Errorf("canister: apply frame: block %s delta height mismatch", hash)
	}
	// Warm the block's txid memo now, under the appliers' exclusive lock:
	// fee-percentile queries walk transactions concurrently later.
	block.TxIDs()
	c.storeBlock(node, block)
	node.SetAux(ev.Delta)
	c.ingestedBlocks++
	c.met.blocksIngested.Inc()
	c.invalidateChain()
	c.invalidateReadCaches()
	return nil
}

// applyAnchorEvent re-executes an anchor advance the authoritative
// canister performed.
func (c *BitcoinCanister) applyAnchorEvent(ctx *ic.CallContext, ev *StreamEvent) error {
	node := c.tree.Get(ev.Hash)
	if node == nil {
		return fmt.Errorf("%w: anchor %s not in tree", ErrFrameOutOfOrder, ev.Hash)
	}
	if node.Height != c.tree.Root().Height+1 {
		return fmt.Errorf("%w: anchor %s at height %d, root at %d",
			ErrFrameOutOfOrder, ev.Hash, node.Height, c.tree.Root().Height)
	}
	if c.blocks[node.Hash] == nil {
		return fmt.Errorf("%w: anchor %s has no stored block", ErrFrameOutOfOrder, ev.Hash)
	}
	return c.stabilizeNode(ctx, node)
}

// WarmQueryState materializes every lazily computed structure queries
// touch — the cached current chain and the per-block txid memos — so that
// concurrent read-only queries (the fleet replica's serving mode) perform
// no writes outside the queryMu-guarded caches. Called automatically at the
// end of ApplyFrame; call it once after RestoreSnapshot when hydrating a
// replica.
func (c *BitcoinCanister) WarmQueryState() {
	c.currentChain()
	for _, b := range c.blocks {
		b.TxIDs()
	}
}

// StreamPosition reports the canister's current chain position in frame
// terms (the values a frame would carry), for hydration bookkeeping.
func (c *BitcoinCanister) StreamPosition() (tipHeight, anchorHeight int64) {
	return c.tipNode().Height, c.tree.Root().Height
}

// time0 is the zero time used for replica-side frame application: replayed
// mutations were already validated against real timestamps by the
// authoritative canister, and nothing in the apply path reads the clock.
var time0 time.Time
