package canister

import (
	"bytes"
	"testing"

	"icbtc/internal/ic"
)

// collectFrames installs a sink that wire-encodes every frame (asserting
// codec determinism on the way) and returns the decoded copies a consumer
// would see.
func collectFrames(t *testing.T, c *BitcoinCanister) *[]*Frame {
	t.Helper()
	frames := &[]*Frame{}
	seq := uint64(0)
	c.SetStreamSink(func(f *Frame) {
		seq++
		f.Seq = seq
		raw := EncodeFrame(f)
		decoded, err := DecodeFrame(raw)
		if err != nil {
			t.Fatalf("frame %d: decode: %v", seq, err)
		}
		if again := EncodeFrame(decoded); !bytes.Equal(raw, again) {
			t.Fatalf("frame %d: encode→decode→encode changed %d -> %d bytes", seq, len(raw), len(again))
		}
		if decoded.Seq != f.Seq || decoded.TipHeight != f.TipHeight ||
			decoded.AnchorHeight != f.AnchorHeight || len(decoded.Events) != len(f.Events) {
			t.Fatalf("frame %d: decoded envelope mismatch: %+v vs %+v", seq, decoded, f)
		}
		*frames = append(*frames, decoded)
	})
	return frames
}

// queryProbeDigests summarizes the full read API of a canister for one
// address as canonical digests, so two canisters can be compared exactly.
func queryProbeDigests(t *testing.T, c *BitcoinCanister, address string) [][32]byte {
	t.Helper()
	ctx := func() *ic.CallContext { return ic.NewCallContext(ic.KindQuery, time0) }
	var out [][32]byte
	v, err := c.GetUTXOs(ctx(), GetUTXOsArgs{Address: address})
	out = append(out, ic.ResponseDigest(v, err))
	bal, err := c.GetBalance(ctx(), GetBalanceArgs{Address: address})
	out = append(out, ic.ResponseDigest(bal, err))
	fees, err := c.GetCurrentFeePercentiles(ctx())
	out = append(out, ic.ResponseDigest(fees, err))
	hdrs, err := c.GetBlockHeaders(ctx(), GetBlockHeadersArgs{})
	out = append(out, ic.ResponseDigest(hdrs, err))
	return out
}

// TestStreamReplicaFollowsAuthoritative hydrates a replica from a genesis
// snapshot and feeds it the authoritative canister's delta frames payload
// by payload: after every frame the replica must answer the whole read API
// identically to the authoritative canister, through anchor advances
// included.
func TestStreamReplicaFollowsAuthoritative(t *testing.T) {
	r := newRig(t, 71)
	frames := collectFrames(t, r.can)

	snap, err := r.can.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	replica, err := RestoreSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	replica.WarmQueryState()

	addr := r.minerAddr().String()
	applied := 0
	// Mine in bursts so individual payloads carry multiple blocks and
	// anchor advances interleave with block attachment.
	for _, n := range []int{3, 5, 4, 8} {
		if _, err := r.miner.MineChain(n, 0); err != nil {
			t.Fatal(err)
		}
		r.feedChain()
		for ; applied < len(*frames); applied++ {
			f := (*frames)[applied]
			if err := replica.ApplyFrame(f); err != nil {
				t.Fatalf("apply frame %d: %v", f.Seq, err)
			}
			if got, want := replica.TipHeight(), r.can.TipHeight(); applied == len(*frames)-1 && got != want {
				t.Fatalf("frame %d: replica tip %d, authoritative %d", f.Seq, got, want)
			}
		}
		a := queryProbeDigests(t, r.can, addr)
		b := queryProbeDigests(t, replica, addr)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("after %d blocks: probe %d diverged between authoritative and replica", n, i)
			}
		}
		if replica.AnchorHeight() != r.can.AnchorHeight() {
			t.Fatalf("anchor: replica %d, authoritative %d", replica.AnchorHeight(), r.can.AnchorHeight())
		}
		if replica.StableUTXOCount() != r.can.StableUTXOCount() {
			t.Fatalf("stable set: replica %d, authoritative %d", replica.StableUTXOCount(), r.can.StableUTXOCount())
		}
		if replica.UnstableBlockCount() != r.can.UnstableBlockCount() {
			t.Fatalf("unstable blocks: replica %d, authoritative %d", replica.UnstableBlockCount(), r.can.UnstableBlockCount())
		}
	}
	if r.can.AnchorHeight() == 0 {
		t.Fatal("workload never advanced the anchor; test is vacuous")
	}
	if applied == 0 {
		t.Fatal("no frames were published")
	}
}

// TestStreamFrameOutOfOrder asserts that a replica rejects a frame whose
// events do not apply to its current state (a gap in the stream) instead of
// silently corrupting itself.
func TestStreamFrameOutOfOrder(t *testing.T) {
	r := newRig(t, 72)
	frames := collectFrames(t, r.can)
	snap, err := r.can.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	replica, err := RestoreSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.miner.MineChain(4, 0); err != nil {
		t.Fatal(err)
	}
	r.feedChain()
	if len(*frames) < 2 {
		t.Fatalf("want >= 2 frames, got %d", len(*frames))
	}
	// Skipping frame 0 leaves frame 1's parent missing.
	if err := replica.ApplyFrame((*frames)[1]); err == nil {
		t.Fatal("gap in the stream applied without error")
	}
	// The in-order stream still applies.
	for _, f := range *frames {
		if err := replica.ApplyFrame(f); err != nil {
			t.Fatalf("in-order apply of frame %d: %v", f.Seq, err)
		}
	}
}

// TestStreamNoSinkNoOverhead pins that a canister without a sink neither
// buffers events nor publishes frames.
func TestStreamNoSinkNoOverhead(t *testing.T) {
	r := newRig(t, 73)
	if _, err := r.miner.MineChain(3, 0); err != nil {
		t.Fatal(err)
	}
	r.feedChain()
	if len(r.can.events) != 0 {
		t.Fatalf("events buffered without a sink: %d", len(r.can.events))
	}
}
