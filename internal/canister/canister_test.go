package canister

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"icbtc/internal/adapter"
	"icbtc/internal/btc"
	"icbtc/internal/btcnode"
	"icbtc/internal/ic"
	"icbtc/internal/secp256k1"
	"icbtc/internal/simnet"
)

// rig drives a BitcoinCanister directly with payloads built from a local
// simulated Bitcoin node — no IC subnet, pure Algorithm 2 unit testing.
type rig struct {
	t      *testing.T
	sched  *simnet.Scheduler
	net    *simnet.Network
	params *btc.Params
	node   *btcnode.Node
	miner  *btcnode.Miner
	key    *secp256k1.PrivateKey
	can    *BitcoinCanister
}

func newRig(t *testing.T, seed int64) *rig {
	t.Helper()
	sched := simnet.NewScheduler(seed)
	net := simnet.NewNetwork(sched)
	params := btc.RegtestParams()
	node := btcnode.NewNode("btc/0", net, params)
	key, err := secp256k1.GeneratePrivateKey(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return &rig{
		t:      t,
		sched:  sched,
		net:    net,
		params: params,
		node:   node,
		miner:  btcnode.NewMinerWithKey(node, key),
		key:    key,
		can:    New(DefaultConfig(btc.Regtest)),
	}
}

func (r *rig) ctx() *ic.CallContext {
	return &ic.CallContext{
		Meter: ic.NewMeter(),
		Time:  r.sched.Now(),
		Kind:  ic.KindUpdate,
	}
}

// feedChain delivers the node's current chain to the canister as a series
// of single-block payloads (the near-tip adapter behavior), with headers of
// everything above as N.
func (r *rig) feedChain() {
	for {
		req := r.can.CurrentRequest()
		resp := r.buildResponse(req)
		if len(resp.Blocks) == 0 && len(resp.Next) == 0 {
			return
		}
		if err := r.can.ProcessPayload(r.ctx(), resp); err != nil {
			r.t.Fatalf("process payload: %v", err)
		}
		if len(resp.Blocks) == 0 {
			// Only headers were delivered; blocks all synced already.
			return
		}
	}
}

// buildResponse plays honest adapter: serve the next missing block on the
// node's best chain (one at a time) plus all upcoming headers.
func (r *rig) buildResponse(req adapter.Request) adapter.Response {
	have := map[btc.Hash]bool{req.Anchor.BlockHash(): true}
	for _, h := range req.Have {
		have[h] = true
	}
	var resp adapter.Response
	for _, n := range r.node.Tree().CurrentChain() {
		if n.Height <= req.AnchorHeight || have[n.Hash] {
			continue
		}
		if len(resp.Blocks) == 0 && (have[n.Header.PrevBlock] || n.Header.PrevBlock == req.Anchor.BlockHash()) {
			blk, ok := r.node.GetBlock(n.Hash)
			if !ok {
				r.t.Fatalf("node missing block %s", n.Hash)
			}
			resp.Blocks = append(resp.Blocks, adapter.BlockWithHeader{Block: blk, Header: n.Header})
			continue
		}
		resp.Next = append(resp.Next, n.Header)
	}
	return resp
}

func (r *rig) minerAddr() btc.Address {
	return btc.AddressFromPubKey(r.key.PubKey().SerializeCompressed(), r.params.Network)
}

func TestAnchorAdvancesAtDelta(t *testing.T) {
	r := newRig(t, 1)
	// δ = 6 (regtest default). Mining 10 blocks: blocks at depth ≥ 6 from
	// the tip become stable, leaving the anchor at height 10-6+1 = 5.
	if _, err := r.miner.MineChain(10, 0); err != nil {
		t.Fatal(err)
	}
	r.feedChain()
	if got := r.can.AnchorHeight(); got != 5 {
		t.Fatalf("anchor height %d, want 5", got)
	}
	// U must contain exactly the coinbases of blocks 1..5.
	if got := r.can.StableUTXOCount(); got != 5 {
		t.Fatalf("stable UTXOs %d, want 5", got)
	}
	// Blocks above the anchor are stored, not folded.
	if got := r.can.UnstableBlockCount(); got != 5 {
		t.Fatalf("unstable blocks %d, want 5", got)
	}
	if !r.can.Synced() {
		t.Fatal("canister not synced after full feed")
	}
	if r.can.TipHeight() != 10 {
		t.Fatalf("tip %d", r.can.TipHeight())
	}
}

func TestSyncedFlagTau(t *testing.T) {
	r := newRig(t, 2)
	if _, err := r.miner.MineChain(6, 0); err != nil {
		t.Fatal(err)
	}
	// Deliver only headers (no blocks): canister learns of 6 upcoming
	// blocks but has none → lag 6 > τ=2 → not synced.
	var headers []btc.BlockHeader
	for _, n := range r.node.Tree().CurrentChain()[1:] {
		headers = append(headers, n.Header)
	}
	if err := r.can.ProcessPayload(r.ctx(), adapter.Response{Next: headers}); err != nil {
		t.Fatal(err)
	}
	if r.can.Synced() {
		t.Fatal("synced despite 6-block lag")
	}
	// get_utxos / get_balance must refuse.
	_, err := r.can.GetBalance(r.ctx(), GetBalanceArgs{Address: r.minerAddr().String()})
	if !errors.Is(err, ErrNotSynced) {
		t.Fatalf("want ErrNotSynced, got %v", err)
	}
	// Deliver blocks; synced returns.
	r.feedChain()
	if !r.can.Synced() {
		t.Fatal("not synced after blocks delivered")
	}
	if _, err := r.can.GetBalance(r.ctx(), GetBalanceArgs{Address: r.minerAddr().String()}); err != nil {
		t.Fatalf("balance after sync: %v", err)
	}
}

func TestGetBalanceAndUTXOs(t *testing.T) {
	r := newRig(t, 3)
	if _, err := r.miner.MineChain(8, 0); err != nil {
		t.Fatal(err)
	}
	r.feedChain()
	addr := r.minerAddr().String()

	bal, err := r.can.GetBalance(r.ctx(), GetBalanceArgs{Address: addr})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(8) * r.params.BlockSubsidy; bal != want {
		t.Fatalf("balance %d, want %d", bal, want)
	}

	res, err := r.can.GetUTXOs(r.ctx(), GetUTXOsArgs{Address: addr})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.UTXOs) != 8 {
		t.Fatalf("utxos %d, want 8", len(res.UTXOs))
	}
	// Height-descending order.
	for i := 1; i < len(res.UTXOs); i++ {
		if res.UTXOs[i].Height > res.UTXOs[i-1].Height {
			t.Fatal("not height-descending")
		}
	}
	if res.TipHeight != 8 {
		t.Fatalf("tip height %d", res.TipHeight)
	}
	// Anchor at height 3 (the deepest block with d_c ≥ δ=6 given an 8-block
	// chain): 3 stable coinbases + 5 unstable.
	if res.StableCount != 3 || res.UnstableCount != 5 {
		t.Fatalf("stable=%d unstable=%d", res.StableCount, res.UnstableCount)
	}
	// Unknown address: zero balance, no UTXOs.
	bal, err = r.can.GetBalance(r.ctx(), GetBalanceArgs{Address: "unknown"})
	if err != nil || bal != 0 {
		t.Fatalf("unknown address: %d %v", bal, err)
	}
}

func TestMinConfirmationsFilter(t *testing.T) {
	r := newRig(t, 4)
	if _, err := r.miner.MineChain(8, 0); err != nil {
		t.Fatal(err)
	}
	r.feedChain()
	addr := r.minerAddr().String()

	// The tip block's coinbase has 1 confirmation. With c=1 all 8 UTXOs are
	// visible; with c=4 only blocks 1..5 qualify (depth ≥ 4).
	res, err := r.can.GetUTXOs(r.ctx(), GetUTXOsArgs{Address: addr, MinConfirmations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.UTXOs) != 8 {
		t.Fatalf("c=1: %d UTXOs", len(res.UTXOs))
	}
	res, err = r.can.GetUTXOs(r.ctx(), GetUTXOsArgs{Address: addr, MinConfirmations: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.UTXOs) != 5 {
		t.Fatalf("c=4: %d UTXOs, want 5", len(res.UTXOs))
	}
	if res.TipHeight != 5 {
		t.Fatalf("c=4 tip height %d, want 5", res.TipHeight)
	}
	// c > δ must be rejected.
	if _, err := r.can.GetUTXOs(r.ctx(), GetUTXOsArgs{Address: addr, MinConfirmations: 7}); !errors.Is(err, ErrTooManyConfirmations) {
		t.Fatalf("c>δ: %v", err)
	}
}

func TestSpendVisibleInUnstableBlocks(t *testing.T) {
	r := newRig(t, 5)
	if _, err := r.miner.MineChain(3, 0); err != nil {
		t.Fatal(err)
	}
	// Spend block 1's coinbase to a fresh address inside block 4.
	addr := r.minerAddr()
	utxos := r.node.UTXOView().UTXOsForAddress(addr.String())
	destKey, _ := secp256k1.GeneratePrivateKey(rand.New(rand.NewSource(55)))
	dest := btc.AddressFromPubKey(destKey.PubKey().SerializeCompressed(), r.params.Network)
	tx := &btc.Transaction{
		Version: 2,
		Inputs:  []btc.TxIn{{PreviousOutPoint: utxos[len(utxos)-1].OutPoint, Sequence: 0xffffffff}},
		Outputs: []btc.TxOut{{Value: utxos[len(utxos)-1].Value - 100, PkScript: btc.PayToAddrScript(dest)}},
	}
	if err := btc.SignInput(tx, 0, utxos[len(utxos)-1].PkScript, r.key); err != nil {
		t.Fatal(err)
	}
	if !r.node.AcceptTx(tx) {
		t.Fatal("tx rejected by node")
	}
	if _, err := r.miner.Mine(0); err != nil {
		t.Fatal(err)
	}
	r.feedChain()

	// Destination sees the unstable output.
	bal, err := r.can.GetBalance(r.ctx(), GetBalanceArgs{Address: dest.String()})
	if err != nil {
		t.Fatal(err)
	}
	if want := utxos[len(utxos)-1].Value - 100; bal != want {
		t.Fatalf("dest balance %d, want %d", bal, want)
	}
	// The spent coinbase is no longer in the miner's balance.
	minerBal, err := r.can.GetBalance(r.ctx(), GetBalanceArgs{Address: addr.String()})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(4) * r.params.BlockSubsidy; minerBal != want-100-(r.params.BlockSubsidy-utxos[len(utxos)-1].Value)-utxos[len(utxos)-1].Value+r.params.BlockSubsidy-r.params.BlockSubsidy {
		// Simplify: 4 coinbases mined, one spent away: 3 coinbases remain.
		if minerBal != 3*r.params.BlockSubsidy {
			t.Fatalf("miner balance %d", minerBal)
		}
	}
}

func TestForkResolutionAboveAnchor(t *testing.T) {
	r := newRig(t, 6)
	if _, err := r.miner.MineChain(3, 0); err != nil {
		t.Fatal(err)
	}
	r.feedChain()

	// Build a competing branch from height 2 that becomes heavier.
	fork := btcnode.NewNode("btc/fork", r.net, r.params)
	for _, n := range r.node.Tree().CurrentChain()[1:3] {
		blk, _ := r.node.GetBlock(n.Hash)
		if _, err := fork.AcceptBlock(blk); err != nil {
			t.Fatal(err)
		}
	}
	forkKey, _ := secp256k1.GeneratePrivateKey(rand.New(rand.NewSource(66)))
	forkMiner := btcnode.NewMinerWithKey(fork, forkKey)
	if _, err := forkMiner.MineChain(3, 0); err != nil { // fork is height 5 > 3
		t.Fatal(err)
	}

	// Feed the fork to the canister: headers first, then blocks one by one.
	var forkNodes []adapter.BlockWithHeader
	for _, n := range fork.Tree().CurrentChain()[3:] {
		blk, _ := fork.GetBlock(n.Hash)
		forkNodes = append(forkNodes, adapter.BlockWithHeader{Block: blk, Header: n.Header})
	}
	for _, bw := range forkNodes {
		if err := r.can.ProcessPayload(r.ctx(), adapter.Response{Blocks: []adapter.BlockWithHeader{bw}}); err != nil {
			t.Fatal(err)
		}
	}
	// The canister's current chain must now follow the heavier fork.
	if r.can.TipHeight() != 5 {
		t.Fatalf("tip height %d, want 5", r.can.TipHeight())
	}
	forkAddr := btc.AddressFromPubKey(forkKey.PubKey().SerializeCompressed(), r.params.Network)
	bal, err := r.can.GetBalance(r.ctx(), GetBalanceArgs{Address: forkAddr.String()})
	if err != nil {
		t.Fatal(err)
	}
	if bal != 3*r.params.BlockSubsidy {
		t.Fatalf("fork miner balance %d", bal)
	}
	// The displaced tip block's coinbase (height 3, old branch) must be
	// excluded from the current chain view.
	oldAddr := r.minerAddr()
	oldBal, err := r.can.GetBalance(r.ctx(), GetBalanceArgs{Address: oldAddr.String()})
	if err != nil {
		t.Fatal(err)
	}
	if oldBal != 2*r.params.BlockSubsidy {
		t.Fatalf("old miner balance %d, want 2 subsidies (heights 1,2)", oldBal)
	}
}

func TestAnchorAdvancePrunesCompetingBranch(t *testing.T) {
	r := newRig(t, 7)
	// Two blocks at height 1: one on the eventually-stable chain, one fork.
	if _, err := r.miner.MineChain(1, 0); err != nil {
		t.Fatal(err)
	}
	fork := btcnode.NewNode("btc/fork", r.net, r.params)
	forkKey, _ := secp256k1.GeneratePrivateKey(rand.New(rand.NewSource(77)))
	forkMiner := btcnode.NewMinerWithKey(fork, forkKey)
	forkBlocks, err := forkMiner.MineChain(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Deliver both height-1 blocks.
	r.feedChain()
	if err := r.can.ProcessPayload(r.ctx(), adapter.Response{Blocks: []adapter.BlockWithHeader{
		{Block: forkBlocks[0], Header: forkBlocks[0].Header},
	}}); err != nil {
		t.Fatal(err)
	}
	if got := len(r.can.tree.AtHeight(1)); got != 2 {
		t.Fatalf("height 1 has %d headers", got)
	}
	// Extend the main chain until height 1 stabilizes (δ=6 plus dominance
	// over the fork block: need depth gap ≥ 6, so 7 more blocks).
	if _, err := r.miner.MineChain(7, 0); err != nil {
		t.Fatal(err)
	}
	r.feedChain()
	if r.can.AnchorHeight() < 1 {
		t.Fatalf("anchor did not advance: %d", r.can.AnchorHeight())
	}
	// The fork block must be pruned.
	if r.can.tree.Contains(forkBlocks[0].BlockHash()) {
		t.Fatal("competing branch survived anchor advance")
	}
	forkAddr := btc.AddressFromPubKey(forkKey.PubKey().SerializeCompressed(), r.params.Network)
	bal, err := r.can.GetBalance(r.ctx(), GetBalanceArgs{Address: forkAddr.String()})
	if err != nil {
		t.Fatal(err)
	}
	if bal != 0 {
		t.Fatalf("pruned fork coinbase still visible: %d", bal)
	}
}

func TestPaginationAcrossStableAndUnstable(t *testing.T) {
	r := newRig(t, 8)
	if _, err := r.miner.MineChain(12, 0); err != nil {
		t.Fatal(err)
	}
	r.feedChain()
	addr := r.minerAddr().String()

	var all []btc.OutPoint
	var token []byte
	for {
		res, err := r.can.GetUTXOs(r.ctx(), GetUTXOsArgs{Address: addr, Page: token, Limit: 5})
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range res.UTXOs {
			all = append(all, u.OutPoint)
		}
		if res.NextPage == nil {
			break
		}
		token = res.NextPage
	}
	if len(all) != 12 {
		t.Fatalf("paginated %d UTXOs, want 12", len(all))
	}
	seen := map[btc.OutPoint]bool{}
	for _, op := range all {
		if seen[op] {
			t.Fatal("duplicate across pages")
		}
		seen[op] = true
	}
}

func TestSendTransactionQueue(t *testing.T) {
	r := newRig(t, 9)
	if _, err := r.miner.MineChain(1, 0); err != nil {
		t.Fatal(err)
	}
	addr := r.minerAddr()
	utxos := r.node.UTXOView().UTXOsForAddress(addr.String())
	tx := &btc.Transaction{
		Version: 2,
		Inputs:  []btc.TxIn{{PreviousOutPoint: utxos[0].OutPoint, Sequence: 0xffffffff}},
		Outputs: []btc.TxOut{{Value: utxos[0].Value - 50, PkScript: utxos[0].PkScript}},
	}
	if err := btc.SignInput(tx, 0, utxos[0].PkScript, r.key); err != nil {
		t.Fatal(err)
	}

	if err := r.can.SendTransaction(r.ctx(), SendTransactionArgs{RawTx: tx.Bytes()}); err != nil {
		t.Fatal(err)
	}
	if r.can.PendingTransactions() != 1 {
		t.Fatal("tx not queued")
	}
	// Duplicate submission is idempotent.
	if err := r.can.SendTransaction(r.ctx(), SendTransactionArgs{RawTx: tx.Bytes()}); err != nil {
		t.Fatal(err)
	}
	if r.can.PendingTransactions() != 1 {
		t.Fatal("duplicate queued")
	}
	// The tx rides along in CurrentRequest.
	req := r.can.CurrentRequest()
	if len(req.Txs) != 1 {
		t.Fatalf("request carries %d txs", len(req.Txs))
	}
	// After TxRebroadcastRounds payloads it ages out.
	for i := 0; i < DefaultConfig(btc.Regtest).TxRebroadcastRounds; i++ {
		if err := r.can.ProcessPayload(r.ctx(), adapter.Response{}); err != nil {
			t.Fatal(err)
		}
	}
	if r.can.PendingTransactions() != 0 {
		t.Fatalf("tx did not age out: %d", r.can.PendingTransactions())
	}

	// Malformed and insane transactions are rejected.
	if err := r.can.SendTransaction(r.ctx(), SendTransactionArgs{RawTx: []byte{1, 2, 3}}); err == nil {
		t.Fatal("malformed tx accepted")
	}
	noOut := &btc.Transaction{Inputs: tx.Inputs}
	if err := r.can.SendTransaction(r.ctx(), SendTransactionArgs{RawTx: noOut.Bytes()}); err == nil {
		t.Fatal("tx without outputs accepted")
	}
}

func TestRejectsWrongNetwork(t *testing.T) {
	r := newRig(t, 10)
	if _, err := r.can.GetBalance(r.ctx(), GetBalanceArgs{Address: "x", Network: btc.Mainnet}); err == nil {
		t.Fatal("wrong network accepted")
	}
	if err := r.can.SendTransaction(r.ctx(), SendTransactionArgs{RawTx: []byte{1}, Network: btc.Mainnet}); err == nil {
		t.Fatal("wrong network tx accepted")
	}
}

func TestRejectsInvalidBlocks(t *testing.T) {
	r := newRig(t, 11)
	if _, err := r.miner.MineChain(2, 0); err != nil {
		t.Fatal(err)
	}
	chainNodes := r.node.Tree().CurrentChain()
	blk1, _ := r.node.GetBlock(chainNodes[1].Hash)
	blk2, _ := r.node.GetBlock(chainNodes[2].Hash)

	// Block 2 without block 1: predecessor block unavailable.
	if err := r.can.ProcessPayload(r.ctx(), adapter.Response{Blocks: []adapter.BlockWithHeader{
		{Block: blk2, Header: blk2.Header},
	}}); err != nil {
		t.Fatal(err)
	}
	if r.can.IngestedBlocks() != 0 {
		t.Fatal("out-of-order block accepted")
	}

	// Tampered merkle root: re-assemble rather than copy the sealed block,
	// so the tampered instance carries fresh (unpoisoned) memos.
	bad := &btc.Block{Header: blk1.Header, Transactions: blk1.Transactions}
	bad.Header.MerkleRoot = btc.DoubleSHA256([]byte("wrong"))
	if err := r.can.ProcessPayload(r.ctx(), adapter.Response{Blocks: []adapter.BlockWithHeader{
		{Block: bad, Header: bad.Header},
	}}); err != nil {
		t.Fatal(err)
	}
	if r.can.IngestedBlocks() != 0 {
		t.Fatal("tampered block accepted")
	}

	// Header/block mismatch.
	if err := r.can.ProcessPayload(r.ctx(), adapter.Response{Blocks: []adapter.BlockWithHeader{
		{Block: blk1, Header: blk2.Header},
	}}); err != nil {
		t.Fatal(err)
	}
	if r.can.IngestedBlocks() != 0 {
		t.Fatal("mismatched block accepted")
	}

	// The genuine article goes through.
	if err := r.can.ProcessPayload(r.ctx(), adapter.Response{Blocks: []adapter.BlockWithHeader{
		{Block: blk1, Header: blk1.Header},
	}}); err != nil {
		t.Fatal(err)
	}
	if r.can.IngestedBlocks() != 1 {
		t.Fatal("valid block rejected")
	}
}

func TestIngestionMeterCategories(t *testing.T) {
	r := newRig(t, 12)
	// Mine blocks with spends so both inserts and removals occur.
	if _, err := r.miner.MineChain(10, 0); err != nil {
		t.Fatal(err)
	}
	ctx := r.ctx()
	// Feed everything through one context to accumulate the meter.
	for {
		req := r.can.CurrentRequest()
		resp := r.buildResponse(req)
		if len(resp.Blocks) == 0 && len(resp.Next) == 0 {
			break
		}
		if err := r.can.ProcessPayload(ctx, resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Blocks) == 0 {
			break
		}
	}
	if ctx.Meter.Category("insert_outputs") == 0 {
		t.Fatal("no insert_outputs charged")
	}
	if ctx.Meter.Category("block_overhead") == 0 {
		t.Fatal("no block overhead charged")
	}
	if ctx.Meter.Total() == 0 {
		t.Fatal("meter empty")
	}
}

func TestUpdateQueryDispatch(t *testing.T) {
	r := newRig(t, 13)
	if _, err := r.miner.MineChain(8, 0); err != nil {
		t.Fatal(err)
	}
	r.feedChain()
	addr := r.minerAddr().String()

	// Update dispatch.
	v, err := r.can.Update(r.ctx(), "get_balance", GetBalanceArgs{Address: addr})
	if err != nil {
		t.Fatal(err)
	}
	if v.(int64) != 8*r.params.BlockSubsidy {
		t.Fatalf("balance %v", v)
	}
	// Query dispatch (same endpoints).
	if _, err := r.can.Query(r.ctx(), "get_utxos", GetUTXOsArgs{Address: addr}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.can.Query(r.ctx(), "get_tip", nil); err != nil {
		t.Fatal(err)
	}
	// Bad argument types and unknown methods error.
	if _, err := r.can.Update(r.ctx(), "get_balance", 42); err == nil {
		t.Fatal("bad arg type accepted")
	}
	if _, err := r.can.Update(r.ctx(), "nope", nil); err == nil {
		t.Fatal("unknown method accepted")
	}
	if _, err := r.can.Query(r.ctx(), "send_transaction", SendTransactionArgs{}); err == nil {
		t.Fatal("send_transaction allowed as query")
	}
}

func TestLemmaIV2ForkWithFewerConfirmations(t *testing.T) {
	// Lemma IV.2: a corrupting transaction on an attacker fork whose chain
	// is shorter than the real chain never reaches c* confirmations, and a
	// lighter fork is never the current chain.
	r := newRig(t, 14)
	if _, err := r.miner.MineChain(6, 0); err != nil {
		t.Fatal(err)
	}
	r.feedChain()

	// Attacker builds a 4-block fork from height 2 with a corrupting tx.
	adv := btcnode.NewAdversary("btcadv/0", r.net, r.params)
	for _, n := range r.node.Tree().CurrentChain()[1:3] {
		blk, _ := r.node.GetBlock(n.Hash)
		if _, err := adv.Node.AcceptBlock(blk); err != nil {
			t.Fatal(err)
		}
	}
	loot := btc.PayToPubKeyHashScript([20]byte{0xBA, 0xD0})
	corrupt := &btc.Transaction{
		Version: 2,
		Inputs:  []btc.TxIn{{PreviousOutPoint: btc.OutPoint{TxID: btc.DoubleSHA256([]byte("stolen"))}}},
		Outputs: []btc.TxOut{{Value: 1000, PkScript: loot}},
	}
	base := adv.Node.Tree().CurrentChain()[2].Hash
	if err := adv.MinePrivateFork(base, 4, []*btc.Transaction{corrupt}); err != nil {
		t.Fatal(err)
	}
	// Feed the whole fork to the canister (attacker "has the means to send
	// any valid block").
	for _, blk := range adv.Fork() {
		if err := r.can.ProcessPayload(r.ctx(), adapter.Response{Blocks: []adapter.BlockWithHeader{
			{Block: blk, Header: blk.Header},
		}}); err != nil {
			t.Fatal(err)
		}
	}
	// Real chain: height 6; fork reaches height 2+4=6 — equal work, so the
	// canister's deterministic tie-break holds; the corrupting tx's address
	// must never appear with ≥ c* = 2 confirmations.
	lootAddr, ok := btc.ExtractAddress(loot, r.params.Network)
	if !ok {
		t.Fatal("bad loot script")
	}
	res, err := r.can.GetUTXOs(r.ctx(), GetUTXOsArgs{Address: lootAddr.String(), MinConfirmations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.UTXOs) != 0 {
		t.Fatal("corrupting transaction visible with 2 confirmations")
	}
	// Extend the honest chain: the fork falls behind and even c=1 hides it.
	if _, err := r.miner.MineChain(2, 0); err != nil {
		t.Fatal(err)
	}
	r.feedChain()
	res, err = r.can.GetUTXOs(r.ctx(), GetUTXOsArgs{Address: lootAddr.String(), MinConfirmations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.UTXOs) != 0 {
		t.Fatal("corrupting transaction on lighter fork visible")
	}
}

func TestCanisterTimeAdvances(t *testing.T) {
	// Block timestamps must be acceptable as virtual time advances.
	r := newRig(t, 15)
	for i := 0; i < 3; i++ {
		r.sched.RunFor(10 * time.Minute)
		if _, err := r.miner.Mine(0); err != nil {
			t.Fatal(err)
		}
	}
	r.feedChain()
	if r.can.TipHeight() != 3 {
		t.Fatalf("tip %d", r.can.TipHeight())
	}
}

func TestFeePercentiles(t *testing.T) {
	r := newRig(t, 16)
	if _, err := r.miner.MineChain(1, 0); err != nil {
		t.Fatal(err)
	}
	// Build three spends with distinct fees: 500, 1500, 4500 sat.
	addr := r.minerAddr()
	utxos := r.node.UTXOView().UTXOsForAddress(addr.String())
	fees := []int64{500, 1500, 4500}
	// Only one coinbase so far; mine more to have three inputs.
	if _, err := r.miner.MineChain(2, 0); err != nil {
		t.Fatal(err)
	}
	utxos = r.node.UTXOView().UTXOsForAddress(addr.String())
	if len(utxos) < 3 {
		t.Fatalf("miner has %d utxos", len(utxos))
	}
	for i, fee := range fees {
		tx := &btc.Transaction{
			Version: 2,
			Inputs:  []btc.TxIn{{PreviousOutPoint: utxos[i].OutPoint, Sequence: 0xffffffff}},
			Outputs: []btc.TxOut{{Value: utxos[i].Value - fee, PkScript: utxos[i].PkScript}},
		}
		if err := btc.SignInput(tx, 0, utxos[i].PkScript, r.key); err != nil {
			t.Fatal(err)
		}
		if !r.node.AcceptTx(tx) {
			t.Fatalf("fee tx %d rejected", i)
		}
	}
	if _, err := r.miner.Mine(0); err != nil {
		t.Fatal(err)
	}
	r.feedChain()

	v, err := r.can.Query(r.ctx(), "get_current_fee_percentiles", nil)
	if err != nil {
		t.Fatal(err)
	}
	pct := v.([]int64)
	if len(pct) != FeePercentilesCount {
		t.Fatalf("%d percentiles", len(pct))
	}
	// Percentiles must be non-decreasing and span the fee range.
	for i := 1; i < len(pct); i++ {
		if pct[i] < pct[i-1] {
			t.Fatal("percentiles not sorted")
		}
	}
	if pct[0] <= 0 {
		t.Fatalf("p0 = %d, want positive fee rate", pct[0])
	}
	if pct[100] <= pct[0] {
		t.Fatalf("p100 %d not above p0 %d (distinct fees present)", pct[100], pct[0])
	}
}

func TestFeePercentilesEmptyAndUnsynced(t *testing.T) {
	r := newRig(t, 17)
	// Fresh canister: synced, no transactions → all-zero percentiles.
	v, err := r.can.GetCurrentFeePercentiles(r.ctx())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range v {
		if p != 0 {
			t.Fatal("nonzero percentile with no traffic")
		}
	}
	// Unsynced canister refuses.
	if _, err := r.miner.MineChain(6, 0); err != nil {
		t.Fatal(err)
	}
	var headers []btc.BlockHeader
	for _, n := range r.node.Tree().CurrentChain()[1:] {
		headers = append(headers, n.Header)
	}
	if err := r.can.ProcessPayload(r.ctx(), adapter.Response{Next: headers}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.can.GetCurrentFeePercentiles(r.ctx()); !errors.Is(err, ErrNotSynced) {
		t.Fatalf("want ErrNotSynced, got %v", err)
	}
}

func TestGetBlockHeaders(t *testing.T) {
	r := newRig(t, 18)
	if _, err := r.miner.MineChain(10, 0); err != nil {
		t.Fatal(err)
	}
	r.feedChain()
	// Anchor at 5: heights 0..4 served from stable history, 5..10 from the
	// unstable tree.
	v, err := r.can.Query(r.ctx(), "get_block_headers", GetBlockHeadersArgs{StartHeight: 0})
	if err != nil {
		t.Fatal(err)
	}
	res := v.(*GetBlockHeadersResult)
	if res.TipHeight != 10 {
		t.Fatalf("tip %d", res.TipHeight)
	}
	if len(res.Headers) != 11 {
		t.Fatalf("headers %d, want 11 (genesis..10)", len(res.Headers))
	}
	// Headers must chain: each PrevBlock is the previous header's hash.
	for i := 1; i < len(res.Headers); i++ {
		if res.Headers[i].PrevBlock != res.Headers[i-1].BlockHash() {
			t.Fatalf("headers do not chain at %d", i)
		}
	}
	// Sub-range.
	v, err = r.can.Query(r.ctx(), "get_block_headers", GetBlockHeadersArgs{StartHeight: 3, EndHeight: 7})
	if err != nil {
		t.Fatal(err)
	}
	res = v.(*GetBlockHeadersResult)
	if len(res.Headers) != 5 {
		t.Fatalf("range headers %d, want 5", len(res.Headers))
	}
	// Bad range.
	if _, err := r.can.GetBlockHeaders(r.ctx(), GetBlockHeadersArgs{StartHeight: 9, EndHeight: 3}); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := r.can.GetBlockHeaders(r.ctx(), GetBlockHeadersArgs{StartHeight: -1}); err == nil {
		t.Fatal("negative start accepted")
	}
}
