package canister

import (
	"crypto/sha256"
	"fmt"
	"strings"

	"icbtc/internal/ic"
	"icbtc/internal/statecodec"
)

// The typed method registry is the single source of truth for the
// canister's API surface. Every endpoint is one MethodDesc: its name, its
// dispatch kind (read-only endpoints serve on both the replicated and the
// query path; mutating ones on the replicated path only), its admission
// cost class, a typed argument codec over statecodec (the canonical
// request-key encoder the fleet's coalescer and hot-response cache key on),
// and its handler. Update/Query dispatch, the query-method list, the
// subnet's routing table (ic.MethodTable), the fleet's serving layers, and
// the README API reference all derive from this table — the stringly-typed
// switches it replaced could (and did) drift apart.

// MethodKind classifies how a method may be dispatched.
type MethodKind uint8

const (
	// MethodReadOnly methods serve on both execution paths: replicated
	// calls (certified, slow) and non-replicated queries (fast).
	MethodReadOnly MethodKind = iota
	// MethodUpdateOnly methods mutate state and serve on the replicated
	// path exclusively.
	MethodUpdateOnly
)

// String renders the kind for the generated API reference.
func (k MethodKind) String() string {
	switch k {
	case MethodReadOnly:
		return "query+update"
	case MethodUpdateOnly:
		return "update"
	default:
		return fmt.Sprintf("MethodKind(%d)", uint8(k))
	}
}

// CostClass groups methods by execution cost for the fleet's admission
// control: each class gets its own budget, so a flood in one class (e.g.
// paginated get_utxos scans) cannot starve another (get_balance lookups).
type CostClass uint8

const (
	// CostCheap: O(1)-ish lookups off maintained state.
	CostCheap CostClass = iota
	// CostScan: work proportional to a page, a range, or the unstable
	// suffix.
	CostScan
	// CostWrite: state-mutating calls on the replicated path.
	CostWrite
)

// String renders the cost class for budgets, errors, and the API reference.
func (c CostClass) String() string {
	switch c {
	case CostCheap:
		return "cheap"
	case CostScan:
		return "scan"
	case CostWrite:
		return "write"
	default:
		return fmt.Sprintf("CostClass(%d)", uint8(c))
	}
}

// MethodDesc describes one canister endpoint.
type MethodDesc struct {
	// Name is the wire-level method name.
	Name string
	// Kind selects the dispatch paths the method serves on.
	Kind MethodKind
	// Cost is the admission-control cost class.
	Cost CostClass
	// Cacheable marks responses servable from the fleet's certified
	// hot-response cache keyed by (method, canonical args, tip). Only pure
	// functions of the chain state qualify; get_health is live telemetry
	// and stays uncached.
	Cacheable bool
	// ArgsDoc/ResultDoc name the typed argument and result shapes for the
	// generated API reference ("-" when none).
	ArgsDoc, ResultDoc string

	// encodeArgs appends the canonical statecodec encoding of a typed
	// argument value — the request-key payload. It rejects wrong-typed
	// arguments with the same error the handler would.
	encodeArgs func(e *statecodec.Encoder, arg any) error
	// handle executes the endpoint.
	handle func(c *BitcoinCanister, ctx *ic.CallContext, arg any) (any, error)
}

// requestKeyMagic versions the canonical request-key encoding.
const requestKeyMagic = "icbtc-reqkey"

// RequestKey computes the canonical key of one request: a SHA-256 over the
// method name and the statecodec encoding of the typed arguments. Equal
// requests always produce equal keys; any differing argument field (page
// cursor, min_confirmations, address, ...) produces a different key — the
// property the fleet's coalescer and response cache rely on. A wrong-typed
// argument is rejected with the handler's own error.
func (m *MethodDesc) RequestKey(arg any) ([32]byte, error) {
	e := statecodec.NewEncoder(requestKeyMagic, 1, 64)
	e.String(m.Name)
	if err := m.encodeArgs(e, arg); err != nil {
		return [32]byte{}, err
	}
	return sha256.Sum256(e.Finish()), nil
}

// typedMethod builds a MethodDesc whose argument codec and handler share
// one typed coercion, so the request-key encoder and the dispatch path can
// never disagree about what arguments a method takes.
func typedMethod[A any](
	name string, kind MethodKind, cost CostClass, cacheable bool,
	argsDoc, resultDoc string,
	encode func(e *statecodec.Encoder, args A),
	handle func(c *BitcoinCanister, ctx *ic.CallContext, args A) (any, error),
) *MethodDesc {
	coerce := func(arg any) (A, error) {
		args, ok := arg.(A)
		if !ok {
			var zero A
			return zero, fmt.Errorf("canister: %s wants %T, got %T", name, zero, arg)
		}
		return args, nil
	}
	return &MethodDesc{
		Name: name, Kind: kind, Cost: cost, Cacheable: cacheable,
		ArgsDoc: argsDoc, ResultDoc: resultDoc,
		encodeArgs: func(e *statecodec.Encoder, arg any) error {
			args, err := coerce(arg)
			if err != nil {
				return err
			}
			encode(e, args)
			return nil
		},
		handle: func(c *BitcoinCanister, ctx *ic.CallContext, arg any) (any, error) {
			args, err := coerce(arg)
			if err != nil {
				return nil, err
			}
			return handle(c, ctx, args)
		},
	}
}

// nullaryMethod builds a MethodDesc for an endpoint without arguments; the
// argument value is ignored (callers pass nil), and the request key is a
// function of the method name alone.
func nullaryMethod(
	name string, kind MethodKind, cost CostClass, cacheable bool, resultDoc string,
	handle func(c *BitcoinCanister, ctx *ic.CallContext) (any, error),
) *MethodDesc {
	return &MethodDesc{
		Name: name, Kind: kind, Cost: cost, Cacheable: cacheable,
		ArgsDoc: "-", ResultDoc: resultDoc,
		encodeArgs: func(e *statecodec.Encoder, arg any) error { return nil },
		handle: func(c *BitcoinCanister, ctx *ic.CallContext, arg any) (any, error) {
			return handle(c, ctx)
		},
	}
}

// methodTable is the registry, in API-reference order.
var methodTable = []*MethodDesc{
	typedMethod("get_utxos", MethodReadOnly, CostScan, true,
		"GetUTXOsArgs", "*GetUTXOsResult",
		func(e *statecodec.Encoder, a GetUTXOsArgs) {
			e.String(a.Address)
			e.I64(int64(a.Network))
			e.I64(a.MinConfirmations)
			e.Bytes(a.Page)
			e.I64(int64(a.Limit))
		},
		func(c *BitcoinCanister, ctx *ic.CallContext, a GetUTXOsArgs) (any, error) {
			return c.GetUTXOs(ctx, a)
		}),
	typedMethod("get_balance", MethodReadOnly, CostCheap, true,
		"GetBalanceArgs", "int64",
		func(e *statecodec.Encoder, a GetBalanceArgs) {
			e.String(a.Address)
			e.I64(int64(a.Network))
			e.I64(a.MinConfirmations)
		},
		func(c *BitcoinCanister, ctx *ic.CallContext, a GetBalanceArgs) (any, error) {
			return c.GetBalance(ctx, a)
		}),
	typedMethod("get_block_headers", MethodReadOnly, CostScan, true,
		"GetBlockHeadersArgs", "*GetBlockHeadersResult",
		func(e *statecodec.Encoder, a GetBlockHeadersArgs) {
			e.I64(a.StartHeight)
			e.I64(a.EndHeight)
		},
		func(c *BitcoinCanister, ctx *ic.CallContext, a GetBlockHeadersArgs) (any, error) {
			return c.GetBlockHeaders(ctx, a)
		}),
	nullaryMethod("get_current_fee_percentiles", MethodReadOnly, CostScan, true,
		"[]int64",
		func(c *BitcoinCanister, ctx *ic.CallContext) (any, error) {
			return c.GetCurrentFeePercentiles(ctx)
		}),
	nullaryMethod("get_tip", MethodReadOnly, CostCheap, true,
		"btc.Hash",
		func(c *BitcoinCanister, ctx *ic.CallContext) (any, error) {
			return c.tipNode().Hash, nil
		}),
	nullaryMethod("get_health", MethodReadOnly, CostCheap, false,
		"*HealthStatus",
		func(c *BitcoinCanister, ctx *ic.CallContext) (any, error) {
			return c.GetHealth(ctx)
		}),
	nullaryMethod("get_metrics", MethodReadOnly, CostCheap, false,
		"*MetricsResult",
		func(c *BitcoinCanister, ctx *ic.CallContext) (any, error) {
			return c.GetMetrics(ctx)
		}),
	typedMethod("send_transaction", MethodUpdateOnly, CostWrite, false,
		"SendTransactionArgs", "-",
		func(e *statecodec.Encoder, a SendTransactionArgs) {
			e.Bytes(a.RawTx)
			e.I64(int64(a.Network))
		},
		func(c *BitcoinCanister, ctx *ic.CallContext, a SendTransactionArgs) (any, error) {
			return nil, c.SendTransaction(ctx, a)
		}),
}

// methodByName indexes the registry.
var methodByName = func() map[string]*MethodDesc {
	idx := make(map[string]*MethodDesc, len(methodTable))
	for _, m := range methodTable {
		if _, dup := idx[m.Name]; dup {
			panic("canister: duplicate method " + m.Name)
		}
		idx[m.Name] = m
	}
	return idx
}()

// Methods returns the registry in API-reference order. The returned slice
// must not be mutated.
func Methods() []*MethodDesc { return methodTable }

// MethodByName looks one method up.
func MethodByName(name string) (*MethodDesc, bool) {
	m, ok := methodByName[name]
	return m, ok
}

// QueryMethodNames returns the names servable on the query path, derived
// from the registry (the hardcoded string list this replaced once drifted
// one endpoint behind the Update switch).
func QueryMethodNames() []string {
	names := make([]string, 0, len(methodTable))
	for _, m := range methodTable {
		if m.Kind == MethodReadOnly {
			names = append(names, m.Name)
		}
	}
	return names
}

// MethodSpec implements ic.MethodTable: the subnet's routing layer rejects
// calls on a dispatch path the registry does not declare, before any
// execution resources are spent.
func (c *BitcoinCanister) MethodSpec(method string) (ic.MethodSpec, bool) {
	m, ok := methodByName[method]
	if !ok {
		return ic.MethodSpec{}, false
	}
	return ic.MethodSpec{Query: m.Kind == MethodReadOnly, Update: true}, true
}

// APIReferenceMarkdown renders the registry as the README's API reference
// table (cmd/apidoc regenerates it; a canister test pins the README copy to
// this output so the docs cannot drift from the code).
func APIReferenceMarkdown() string {
	var b strings.Builder
	b.WriteString("| method | kind | args | result | cost class | cacheable |\n")
	b.WriteString("|---|---|---|---|---|---|\n")
	for _, m := range methodTable {
		cacheable := "no"
		if m.Cacheable {
			cacheable = "yes"
		}
		fmt.Fprintf(&b, "| `%s` | %s | `%s` | `%s` | %s | %s |\n",
			m.Name, m.Kind, m.ArgsDoc, m.ResultDoc, m.Cost, cacheable)
	}
	return b.String()
}
