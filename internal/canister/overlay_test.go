package canister

import (
	"errors"
	"testing"
	"time"

	"icbtc/internal/adapter"
	"icbtc/internal/btc"
	"icbtc/internal/ic"
)

// forge mines valid blocks on arbitrary parents WITHOUT any transaction
// validation, which btcnode's miner would enforce — needed to exercise the
// canister's tolerance of spends referencing outputs from losing branches.
type forge struct {
	t      *testing.T
	params *btc.Params
	window map[btc.Hash][]uint32
	extra  uint64
}

func newForge(t *testing.T) *forge {
	params := btc.RegtestParams()
	g := params.GenesisHeader
	return &forge{
		t:      t,
		params: params,
		window: map[btc.Hash][]uint32{g.BlockHash(): {g.Timestamp}},
	}
}

func (f *forge) block(parent btc.Hash, height int64, payout []byte, txs ...*btc.Transaction) *btc.Block {
	f.t.Helper()
	pw, ok := f.window[parent]
	if !ok {
		f.t.Fatalf("forge: unknown parent %s", parent)
	}
	f.extra++
	coinbase := &btc.Transaction{
		Version: 2,
		Inputs: []btc.TxIn{{
			PreviousOutPoint: btc.OutPoint{TxID: btc.ZeroHash, Vout: 0xffffffff},
			SignatureScript:  []byte{byte(height), byte(f.extra), byte(f.extra >> 8)},
		}},
		Outputs: []btc.TxOut{{Value: f.params.BlockSubsidy, PkScript: payout}},
	}
	blk := &btc.Block{
		Header: btc.BlockHeader{
			Version:   1,
			PrevBlock: parent,
			Timestamp: btc.MedianTimePast(pw) + 30,
			Bits:      f.params.GenesisHeader.Bits,
		},
		Transactions: append([]*btc.Transaction{coinbase}, txs...),
	}
	blk.Header.MerkleRoot = blk.MerkleRoot()
	for nonce := uint32(0); ; nonce++ {
		blk.Header.Nonce = nonce
		if btc.HashMeetsTarget(blk.BlockHash(), blk.Header.Bits) {
			break
		}
		if nonce > 1<<24 {
			f.t.Fatal("forge: PoW exhausted")
		}
	}
	w := append(append([]uint32{}, pw...), blk.Header.Timestamp)
	if len(w) > 11 {
		w = w[len(w)-11:]
	}
	f.window[blk.BlockHash()] = w
	return blk
}

// overlayPair builds one canister per read path plus a payload pump that
// feeds both identically.
type overlayPair struct {
	t               *testing.T
	overlay, replay *BitcoinCanister
	now             time.Time
}

func newOverlayPair(t *testing.T) *overlayPair {
	mk := func(rp ReadPath) *BitcoinCanister {
		cfg := DefaultConfig(btc.Regtest) // δ = 6
		cfg.ReadPath = rp
		return New(cfg)
	}
	g := btc.RegtestParams().GenesisHeader
	return &overlayPair{
		t:       t,
		overlay: mk(ReadPathOverlay),
		replay:  mk(ReadPathReplay),
		now:     time.Unix(int64(g.Timestamp), 0).Add(time.Hour),
	}
}

func (p *overlayPair) ctx(kind ic.CallKind) *ic.CallContext {
	return &ic.CallContext{Meter: ic.NewMeter(), Time: p.now, Kind: kind}
}

func (p *overlayPair) deliver(blocks ...*btc.Block) {
	p.t.Helper()
	p.now = p.now.Add(time.Duration(len(blocks)) * time.Minute)
	resp := adapter.Response{}
	for _, b := range blocks {
		resp.Blocks = append(resp.Blocks, adapter.BlockWithHeader{Block: b, Header: b.Header})
	}
	before := p.overlay.IngestedBlocks()
	if err := p.overlay.ProcessPayload(p.ctx(ic.KindUpdate), resp); err != nil {
		p.t.Fatal(err)
	}
	if err := p.replay.ProcessPayload(p.ctx(ic.KindUpdate), resp); err != nil {
		p.t.Fatal(err)
	}
	if got := p.overlay.IngestedBlocks() - before; got != len(blocks) {
		p.t.Fatalf("ingested %d of %d delivered blocks", got, len(blocks))
	}
}

// balances asserts both read paths agree and match the expected value.
func (p *overlayPair) balance(addr string, minConf int64) int64 {
	p.t.Helper()
	a, errA := p.overlay.GetBalance(p.ctx(ic.KindQuery), GetBalanceArgs{Address: addr, MinConfirmations: minConf})
	b, errB := p.replay.GetBalance(p.ctx(ic.KindQuery), GetBalanceArgs{Address: addr, MinConfirmations: minConf})
	if errA != nil || errB != nil {
		p.t.Fatalf("balance(%s, c=%d): overlay err %v, replay err %v", addr, minConf, errA, errB)
	}
	if a != b {
		p.t.Fatalf("balance(%s, c=%d): overlay %d != replay %d", addr, minConf, a, b)
	}
	return a
}

func testAddr(b byte) (string, []byte) {
	var h [20]byte
	h[0] = b
	a := btc.NewP2PKHAddress(h, btc.Regtest)
	return a.String(), btc.PayToAddrScript(a)
}

// TestReorgSpendOfLosingBranchOutput exercises the satellite edge case: a
// winning fork contains a transaction spending an output that was created
// only on the branch it displaced. The canister does not validate spends,
// so the block is accepted; the spend must be a no-op for every address
// view on the new chain — on both read paths.
func TestReorgSpendOfLosingBranchOutput(t *testing.T) {
	f := newForge(t)
	p := newOverlayPair(t)
	genesis := f.params.GenesisHeader.BlockHash()
	_, minerScript := testAddr(0xAA)
	addrP, scriptP := testAddr(0xBB)

	// Branch A: block 1, then block A2 creating output X for address P.
	b1 := f.block(genesis, 1, minerScript)
	fund := &btc.Transaction{
		Version: 2,
		Inputs:  []btc.TxIn{{PreviousOutPoint: btc.OutPoint{TxID: btc.DoubleSHA256([]byte("external")), Vout: 0}}},
		Outputs: []btc.TxOut{{Value: 7_000, PkScript: scriptP}},
	}
	a2 := f.block(b1.BlockHash(), 2, minerScript, fund)
	p.deliver(b1, a2)
	if got := p.balance(addrP, 0); got != 7_000 {
		t.Fatalf("pre-reorg balance %d, want 7000", got)
	}
	outX := btc.OutPoint{TxID: fund.TxID(), Vout: 0}

	// Branch B from block 1: B2 funds P with output Y, B3 spends X — an
	// output that exists only on branch A — and B4 seals the reorg.
	fundY := &btc.Transaction{
		Version: 2,
		Inputs:  []btc.TxIn{{PreviousOutPoint: btc.OutPoint{TxID: btc.DoubleSHA256([]byte("other")), Vout: 0}}},
		Outputs: []btc.TxOut{{Value: 1_100, PkScript: scriptP}},
	}
	spendX := &btc.Transaction{
		Version: 2,
		Inputs:  []btc.TxIn{{PreviousOutPoint: outX}},
		Outputs: []btc.TxOut{{Value: 6_500, PkScript: minerScript}},
	}
	b2 := f.block(b1.BlockHash(), 2, minerScript, fundY)
	b3 := f.block(b2.BlockHash(), 3, minerScript, spendX)
	b4 := f.block(b3.BlockHash(), 4, minerScript)
	p.deliver(b2, b3, b4)

	if got := p.overlay.TipHeight(); got != 4 {
		t.Fatalf("tip %d, want 4 (reorg to branch B)", got)
	}
	// On the current chain X never existed: the spend in B3 is a no-op and
	// P's view is exactly {Y}.
	if got := p.balance(addrP, 0); got != 1_100 {
		t.Fatalf("post-reorg balance %d, want 1100 (Y only)", got)
	}
	res, err := p.overlay.GetUTXOs(p.ctx(ic.KindQuery), GetUTXOsArgs{Address: addrP})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.UTXOs) != 1 || res.UTXOs[0].OutPoint.TxID != fundY.TxID() {
		t.Fatalf("post-reorg view %+v, want exactly Y", res.UTXOs)
	}

	// Branch A overtakes again (A3..A5): X is visible once more, and the
	// winning-branch-only spend of it is gone from the considered chain.
	a3 := f.block(a2.BlockHash(), 3, minerScript)
	a4 := f.block(a3.BlockHash(), 4, minerScript)
	a5 := f.block(a4.BlockHash(), 5, minerScript)
	p.deliver(a3, a4, a5)
	if got := p.balance(addrP, 0); got != 7_000 {
		t.Fatalf("re-reorg balance %d, want 7000 (X restored, Y gone)", got)
	}
}

// TestGetBalanceAtExactlyDeltaConfirmations pins the minConfirmations == δ
// boundary: the filter admits only count-δ-stable unstable blocks, which
// with equal-work blocks is the empty set at the tip — the answer is the
// stable set alone — while δ+1 is rejected outright.
func TestGetBalanceAtExactlyDeltaConfirmations(t *testing.T) {
	f := newForge(t)
	p := newOverlayPair(t)
	addrM, scriptM := testAddr(0xCC)
	const delta = 6 // regtest default

	parent := f.params.GenesisHeader.BlockHash()
	for h := int64(1); h <= 12; h++ {
		b := f.block(parent, h, scriptM)
		p.deliver(b)
		parent = b.BlockHash()
	}
	if got := p.overlay.AnchorHeight(); got != 7 {
		t.Fatalf("anchor %d, want 7", got)
	}
	subsidy := f.params.BlockSubsidy

	// c = δ: no unstable block has δ confirmations yet (the deepest has
	// δ−1), so exactly the 7 folded coinbases answer.
	if got := p.balance(addrM, delta); got != 7*subsidy {
		t.Fatalf("balance at c=δ: %d, want %d", got, 7*subsidy)
	}
	// c = δ−1 admits exactly one unstable block.
	if got := p.balance(addrM, delta-1); got != 8*subsidy {
		t.Fatalf("balance at c=δ-1: %d, want %d", got, 8*subsidy)
	}
	// c = 1 sees everything; c = 0 is the unfiltered view.
	if got := p.balance(addrM, 1); got != 12*subsidy {
		t.Fatalf("balance at c=1: %d, want %d", got, 12*subsidy)
	}
	// c = δ+1 must be rejected by both paths.
	for _, can := range []*BitcoinCanister{p.overlay, p.replay} {
		if _, err := can.GetBalance(p.ctx(ic.KindQuery), GetBalanceArgs{Address: addrM, MinConfirmations: delta + 1}); !errors.Is(err, ErrTooManyConfirmations) {
			t.Fatalf("c=δ+1: got %v, want ErrTooManyConfirmations", err)
		}
	}
}

// TestBalanceCacheCoherence verifies the overlay's balance cache is
// invalidated by every tree mutation and cleared deltas on anchor advance.
func TestBalanceCacheCoherence(t *testing.T) {
	f := newForge(t)
	p := newOverlayPair(t)
	addrM, scriptM := testAddr(0xDD)

	parent := f.params.GenesisHeader.BlockHash()
	b1 := f.block(parent, 1, scriptM)
	p.deliver(b1)

	// First query misses, second hits the cache.
	if got := p.balance(addrM, 0); got != f.params.BlockSubsidy {
		t.Fatalf("balance %d", got)
	}
	if p.overlay.BalanceCacheSize() == 0 {
		t.Fatal("query did not populate the balance cache")
	}
	hit := p.ctx(ic.KindQuery)
	if _, err := p.overlay.GetBalance(hit, GetBalanceArgs{Address: addrM}); err != nil {
		t.Fatal(err)
	}
	if hit.Meter.Category("balance_cache_hit") == 0 {
		t.Fatal("repeat query did not hit the cache")
	}

	// A new block must invalidate and the next answer must be fresh.
	b2 := f.block(b1.BlockHash(), 2, scriptM)
	p.deliver(b2)
	if p.overlay.BalanceCacheSize() != 0 {
		t.Fatal("cache survived a tree mutation")
	}
	if got := p.balance(addrM, 0); got != 2*f.params.BlockSubsidy {
		t.Fatalf("post-mutation balance %d", got)
	}

	// Drive the anchor forward; the new root's delta attachment must be
	// cleared (its effects now live in the stable set).
	parent = b2.BlockHash()
	for h := int64(3); h <= 9; h++ {
		b := f.block(parent, h, scriptM)
		p.deliver(b)
		parent = b.BlockHash()
	}
	if p.overlay.AnchorHeight() == 0 {
		t.Fatal("anchor did not advance")
	}
	if p.overlay.tree.Root().Aux() != nil {
		t.Fatal("anchor node still carries a block delta")
	}
	if got := p.balance(addrM, 0); got != 9*f.params.BlockSubsidy {
		t.Fatalf("post-advance balance %d", got)
	}
}
