// Package canister implements the Bitcoin canister of §III-C: the smart
// contract that maintains the Bitcoin blockchain state on the IC.
//
// The canister stores the UTXO set U up to and including the anchor β* (the
// greatest stable height), the header tree T rooted at the anchor, and the
// blocks for all headers above the anchor. Algorithm 2 processes adapter
// responses delivered in IC blocks: valid blocks are attached to the tree,
// and whenever a block at height h(β*)+1 becomes difficulty-based δ-stable
// with respect to the anchor's work, the anchor advances — its transactions
// are folded into U, its block is discarded, and competing headers at the
// stabilized height are pruned.
//
// The read/write API is the paper's: get_utxos (with confirmations filter
// and pagination), get_balance, and send_transaction. Requests are rejected
// while the canister is more than τ blocks behind the headers it knows
// about ("it is risky to provide outdated information").
package canister

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"

	"icbtc/internal/adapter"
	"icbtc/internal/btc"
	"icbtc/internal/chain"
	"icbtc/internal/ic"
	"icbtc/internal/utxo"
)

// ReadPath selects the implementation behind get_utxos/get_balance.
type ReadPath int

const (
	// ReadPathOverlay (the default) merges the stable set with per-block
	// address-indexed deltas computed once at block acceptance, so request
	// cost no longer grows linearly with δ.
	ReadPathOverlay ReadPath = iota
	// ReadPathReplay is the naive §III-C behavior: rescan every unstable
	// block of the considered chain on every request. Retained as the
	// oracle the differential test harness (internal/difftest) and the
	// read-path benchmark compare the overlay against.
	ReadPathReplay
)

// Config parameterizes the canister.
type Config struct {
	// Network selects address encoding and chain parameters.
	Network btc.Network
	// StabilityThreshold is δ: a block at anchor height+1 must be
	// difficulty-based δ-stable w.r.t. the anchor's work to become the new
	// anchor (144 on mainnet ≈ one day of blocks).
	StabilityThreshold int64
	// SyncSlack is τ: the canister answers requests only while
	// maxHeight(T) − maxHeight(A) ≤ τ (2 in production).
	SyncSlack int64
	// PageLimit is the maximum UTXOs per get_utxos page.
	PageLimit int
	// TxRebroadcastRounds is how many adapter request rounds an outbound
	// transaction stays in the forwarding queue.
	TxRebroadcastRounds int
	// ReadPath selects the read-path implementation (overlay by default).
	ReadPath ReadPath
}

// DefaultConfig returns production-flavored parameters for a network
// (δ=144, τ=2), with a small δ for regtest so tests stabilize quickly.
func DefaultConfig(network btc.Network) Config {
	cfg := Config{
		Network:             network,
		StabilityThreshold:  144,
		SyncSlack:           2,
		PageLimit:           1000,
		TxRebroadcastRounds: 5,
	}
	if network == btc.Regtest {
		cfg.StabilityThreshold = 6
	}
	return cfg
}

// ErrNotSynced is returned for requests while the canister lags the network
// by more than τ blocks.
var ErrNotSynced = errors.New("canister: not synced with the Bitcoin network")

// ErrTooManyConfirmations rejects confirmation filters above δ ("requests
// for c > δ are rejected as the returned set of UTXOs may not be correct").
var ErrTooManyConfirmations = errors.New("canister: requested confirmations exceed stability threshold")

// outgoingTx is an outbound transaction waiting to be forwarded.
type outgoingTx struct {
	raw    []byte
	txid   btc.Hash
	rounds int
}

// haveEntry is one stored unstable block in the canister's incrementally
// maintained Have list, kept sorted by (height, hash) so every replica
// derives the identical adapter request without walking the header tree.
type haveEntry struct {
	height int64
	hash   btc.Hash
}

// BitcoinCanister is the Bitcoin canister state machine. All methods are
// deterministic; the subnet executes them identically on every replica.
type BitcoinCanister struct {
	cfg    Config
	params *btc.Params

	// stable is U, the UTXO set up to and including the anchor.
	stable *utxo.Set
	// tree is T, rooted at the anchor β*.
	tree *chain.Tree
	// blocks holds b(β) for headers above the anchor.
	blocks map[btc.Hash]*btc.Block
	// have mirrors blocks as a (height, hash)-sorted slice: the Have set of
	// CurrentRequest and the source of availableHeight, both maintained
	// incrementally as blocks are stored and pruned instead of BFS-walking
	// the whole header tree every payload round.
	have []haveEntry
	// stableHeaders records every anchor in order ("block headers are kept
	// forever").
	stableHeaders []btc.BlockHeader

	// scriptIDs memoizes script → address-key derivations shared by delta
	// building and owner resolution.
	scriptIDs *btc.ScriptIDCache

	// queryMu guards the per-replica read caches (balanceCache, feeCache).
	// On the authoritative canister everything runs on the simulation
	// goroutine and the mutex is uncontended; on a query-fleet replica many
	// queries execute concurrently under the replica's read lock, and the
	// caches are the only state they mutate.
	queryMu sync.Mutex
	// balanceCache memoizes get_balance results for the overlay read path,
	// keyed by (address, tip, minConfirmations). Any tree mutation — a new
	// block or header, an anchor advance, a reorg — clears it; within one
	// tree state the merged view is immutable, so entries stay coherent.
	balanceCache map[balanceKey]int64
	// feeCache memoizes get_current_fee_percentiles for the overlay read
	// path, keyed by (tip, anchor height): the percentiles are a function of
	// the unstable suffix, which changes identity when either moves. Cleared
	// together with the balance cache on every tree mutation.
	feeCache feeCacheEntry

	// stream, when set, receives one Frame per processed payload carrying
	// the accepted mutations (blocks with their deltas, headers, anchor
	// advances) — the feed the read-replica query fleet stays fresh from.
	stream func(*Frame)
	// events accumulates the current payload's stream events (only while a
	// sink is installed).
	events []StreamEvent
	// curChain caches tree.CurrentChain(); any tree mutation clears it.
	// Queries between payloads share one chain walk instead of re-deriving
	// the tip per request.
	curChain []*chain.Node

	outgoing []outgoingTx
	synced   bool
	// availableHeight is the greatest height for which a block (not just a
	// header) is present, maintained by updateSynced from the have list.
	availableHeight int64

	// adapterHealth is the adapter's latest self-report, recorded off each
	// processed payload (or applied frame, on a replica) and served by
	// get_health. Transient operational state: deliberately NOT part of the
	// snapshot — a restored canister starts at StateUnknown until its first
	// payload.
	adapterHealth adapter.Health
	// lastSentHealth is the health carried on the last published stream
	// frame; a change forces a frame even when a payload accepted nothing,
	// so replicas learn about degradation (and recovery) promptly.
	lastSentHealth adapter.Health

	// stats
	ingestedBlocks  int
	rejectedBlocks  int
	rejectedHeaders int
	anchorHeight    int64
	applyErrors     int

	// met is the obs instrumentation (registry plus precomputed counters).
	// Like adapterHealth it is operational state, not chain state: excluded
	// from the snapshot and reset by restore.
	met *canisterMetrics
}

// New creates a canister anchored at the network genesis.
func New(cfg Config) *BitcoinCanister {
	params := btc.ParamsForNetwork(cfg.Network)
	c := &BitcoinCanister{
		cfg:          cfg,
		params:       params,
		stable:       utxo.New(cfg.Network),
		tree:         chain.NewTree(params.GenesisHeader, 0),
		blocks:       make(map[btc.Hash]*btc.Block),
		scriptIDs:    btc.NewScriptIDCache(cfg.Network),
		balanceCache: make(map[balanceKey]int64),
		met:          newCanisterMetrics(),
	}
	c.stableHeaders = append(c.stableHeaders, params.GenesisHeader)
	// A fresh canister is trivially synced (maxHeight(T) == anchor height);
	// the flag is recomputed after every processed payload.
	c.synced = true
	return c
}

// Anchor returns the current anchor header β* and its height.
func (c *BitcoinCanister) Anchor() (btc.BlockHeader, int64) {
	root := c.tree.Root()
	return root.Header, root.Height
}

// AnchorHeight returns h(β*).
func (c *BitcoinCanister) AnchorHeight() int64 { return c.tree.Root().Height }

// Synced reports whether the canister currently answers requests.
func (c *BitcoinCanister) Synced() bool { return c.synced }

// StableUTXOCount returns |U|.
func (c *BitcoinCanister) StableUTXOCount() int { return c.stable.Len() }

// StableStorageBytes approximates the canister's UTXO storage footprint.
func (c *BitcoinCanister) StableStorageBytes() int64 { return c.stable.ApproxBytes() }

// UnstableBlockCount returns the number of blocks stored above the anchor.
func (c *BitcoinCanister) UnstableBlockCount() int { return len(c.blocks) }

// IngestedBlocks returns how many blocks Algorithm 2 accepted.
func (c *BitcoinCanister) IngestedBlocks() int { return c.ingestedBlocks }

// TipHeight returns the height of the current chain tip (max d_w path).
func (c *BitcoinCanister) TipHeight() int64 { return c.tipNode().Height }

// CurrentRequest builds the canister's update request for the adapter: the
// anchor, the header hashes above the anchor whose blocks are present (A),
// and pending outbound transactions (T). The Have set is the incrementally
// maintained (height, hash)-sorted block list — a straight copy, no tree
// walk — and deterministic, so every replica derives the identical request.
func (c *BitcoinCanister) CurrentRequest() adapter.Request {
	root := c.tree.Root()
	req := adapter.Request{
		Anchor:       root.Header,
		AnchorHeight: root.Height,
	}
	if len(c.have) > 0 {
		req.Have = make([]btc.Hash, len(c.have))
		for i := range c.have {
			req.Have[i] = c.have[i].hash
		}
	}
	for _, tx := range c.outgoing {
		req.Txs = append(req.Txs, tx.raw)
	}
	return req
}

// haveLess orders the have list by height, then hash bytes.
func haveLess(a, b haveEntry) bool {
	if a.height != b.height {
		return a.height < b.height
	}
	return bytes.Compare(a.hash[:], b.hash[:]) < 0
}

// storeBlock records a validated block for a tree node: the blocks map and
// the sorted have list stay in lockstep.
func (c *BitcoinCanister) storeBlock(node *chain.Node, block *btc.Block) {
	c.blocks[node.Hash] = block
	e := haveEntry{height: node.Height, hash: node.Hash}
	i := sort.Search(len(c.have), func(i int) bool { return haveLess(e, c.have[i]) })
	c.have = append(c.have, haveEntry{})
	copy(c.have[i+1:], c.have[i:])
	c.have[i] = e
}

// dropBlock discards a stored block (anchor advance or branch pruning),
// keeping the have list consistent.
func (c *BitcoinCanister) dropBlock(node *chain.Node) {
	if c.blocks[node.Hash] == nil {
		return
	}
	delete(c.blocks, node.Hash)
	e := haveEntry{height: node.Height, hash: node.Hash}
	i := sort.Search(len(c.have), func(i int) bool { return !haveLess(c.have[i], e) })
	if i < len(c.have) && c.have[i].hash == node.Hash {
		c.have = append(c.have[:i], c.have[i+1:]...)
	}
}

// invalidateChain drops the cached current chain after a tree mutation.
func (c *BitcoinCanister) invalidateChain() { c.curChain = nil }

// currentChain returns the cached root-to-tip path of the current chain,
// recomputing it only after a tree mutation.
func (c *BitcoinCanister) currentChain() []*chain.Node {
	if c.curChain == nil {
		c.curChain = c.tree.CurrentChain()
	}
	return c.curChain
}

// tipNode returns the current chain's tip from the cache.
func (c *BitcoinCanister) tipNode() *chain.Node {
	cc := c.currentChain()
	return cc[len(cc)-1]
}

// ProcessPayload implements ic.PayloadProcessor: it applies Algorithm 2 to
// an adapter response contained in a finalized IC block.
func (c *BitcoinCanister) ProcessPayload(ctx *ic.CallContext, payload any) error {
	resp, ok := payload.(adapter.Response)
	if !ok {
		return fmt.Errorf("canister: unexpected payload type %T", payload)
	}
	start := c.met.reg.Now()
	defer func() {
		c.met.payloads.Inc()
		d := c.met.reg.Now().Sub(start)
		c.met.payloadDuration.ObserveDuration(d)
		c.met.reg.Trace("canister.payload", d.String())
	}()
	c.ageOutgoing()
	c.adapterHealth = resp.Health
	// Anything in the payload can change the considered chain (new blocks,
	// upcoming headers shifting the tip, an anchor advance), so drop the
	// memoized balances and fee percentiles up front; they are cheap to
	// rebuild from deltas.
	if len(resp.Blocks) > 0 || len(resp.Next) > 0 {
		c.invalidateReadCaches()
	}

	// Lines 1-15: validate and attach each (b, β), then advance the anchor
	// while the next block is δ-stable.
	for _, bw := range resp.Blocks {
		if err := c.acceptBlock(ctx, bw, nil); err != nil {
			c.rejectedBlocks++
			c.met.blocksRejected.Inc()
			continue
		}
		c.advanceAnchor(ctx)
	}
	// Lines 16-20: append validated upcoming headers.
	for i := range resp.Next {
		h := resp.Next[i]
		if err := c.acceptHeader(ctx, h); err != nil {
			c.rejectedHeaders++
			c.met.headersRejected.Inc()
		}
	}
	// Lines 21-22: recompute the synced flag.
	c.updateSynced()
	c.flushFrame()
	return nil
}

// acceptHeader validates a header against the tree (the same §III-B checks
// the adapter performs) and inserts it.
func (c *BitcoinCanister) acceptHeader(ctx *ic.CallContext, h btc.BlockHeader) error {
	ctx.Meter.Charge(ic.CostPerHeaderValidation, "validate_headers")
	hash := h.BlockHash()
	if c.tree.Contains(hash) {
		return nil // already known: not an error, nothing to do
	}
	parent := c.tree.Get(h.PrevBlock)
	if parent == nil {
		return chain.ErrOrphan
	}
	if err := chain.ValidateHeader(&h, parent, c.params, ctx.Time); err != nil {
		return err
	}
	if _, err := c.tree.Insert(h); err != nil {
		return err
	}
	c.invalidateChain()
	c.emit(StreamEvent{Kind: EventHeaderAttached, Header: h})
	return nil
}

// acceptBlock validates a (block, header) pair per §III-C — header checks,
// well-formedness, predecessor availability, Merkle root — and stores it.
// Transaction spending conditions are intentionally NOT validated.
//
// pre, when non-nil and built at the node's actual height, is the
// pipeline's prebuilt state-independent delta half: Finish binds it to the
// live state, producing exactly what BuildBlockDelta would. A nil or
// mispredicted pre falls back to the full serial build, so the resulting
// state is identical either way.
func (c *BitcoinCanister) acceptBlock(ctx *ic.CallContext, bw adapter.BlockWithHeader, pre *utxo.PreparedDelta) error {
	if bw.Block == nil {
		return errors.New("canister: nil block")
	}
	hash := bw.Header.BlockHash()
	if bw.Block.BlockHash() != hash {
		return errors.New("canister: block does not match header")
	}
	if c.blocks[hash] != nil {
		return nil // duplicate delivery is harmless
	}
	// The predecessor's block must be available (or be the anchor itself).
	prev := c.tree.Get(bw.Header.PrevBlock)
	if prev == nil {
		return chain.ErrOrphan
	}
	if prev != c.tree.Root() && c.blocks[prev.Hash] == nil {
		return errors.New("canister: predecessor block not available")
	}
	if err := c.acceptHeader(ctx, bw.Header); err != nil {
		return err
	}
	if err := chain.ValidateBlock(bw.Block); err != nil {
		return err
	}
	node := c.tree.Get(hash)
	c.storeBlock(node, bw.Block)
	c.ingestedBlocks++
	c.met.blocksIngested.Inc()
	// Compute the block's address-indexed delta once, now, and attach it to
	// the tree node: the overlay read path merges these instead of
	// rescanning blocks, and pruning (reorg, anchor advance) discards them
	// together with their nodes.
	ctx.Meter.Charge(uint64(len(bw.Block.Transactions))*ic.CostPerDeltaBuildTx, "build_delta")
	var delta *utxo.BlockDelta
	if pre != nil && pre.Height() == node.Height {
		delta = pre.Finish(c.resolveOwner(node))
	} else {
		delta = utxo.BuildBlockDelta(bw.Block, node.Height, c.scriptIDs, c.resolveOwner(node))
	}
	node.SetAux(delta)
	if c.stream != nil {
		c.emit(StreamEvent{
			Kind:     EventBlockAttached,
			Header:   bw.Header,
			RawBlock: bw.Block.Bytes(),
			Delta:    delta,
		})
	}
	return nil
}

// resolveOwner attributes an outpoint spent by a block attached at node to
// the address keys whose merged views may contain it: creators among the
// node's unstable ancestors plus the stable set's entry. An unresolvable
// outpoint (an alien input the canister never tracked, or one created on a
// competing branch) yields no owners — the spend is a no-op for every view,
// exactly as the naive replay's unconditional delete would be.
func (c *BitcoinCanister) resolveOwner(node *chain.Node) utxo.OwnerResolver {
	return func(op btc.OutPoint) []utxo.OwnedOutput {
		var owners []utxo.OwnedOutput
		seen := make(map[string]bool, 2)
		for anc := node.Parent(); anc != nil; anc = anc.Parent() {
			d, _ := anc.Aux().(*utxo.BlockDelta)
			if d == nil {
				continue
			}
			if u, ok := d.CreatedOutput(op); ok {
				key := c.scriptIDs.ID(u.PkScript)
				if !seen[key] {
					seen[key] = true
					owners = append(owners, utxo.OwnedOutput{AddressKey: key, Value: u.Value})
				}
			}
		}
		if u, ok := c.stable.Get(op); ok {
			// The stable set stores each entry's derived key; no re-derive.
			if key, ok := c.stable.AddressKeyOf(op); ok && !seen[key] {
				owners = append(owners, utxo.OwnedOutput{AddressKey: key, Value: u.Value})
			}
		}
		return owners
	}
}

// advanceAnchor implements the while-loop of Algorithm 2 (lines 5-13): as
// long as some available block at height h(β*)+1 is difficulty-based
// δ-stable with respect to w(β*), fold it into U and re-root the tree.
func (c *BitcoinCanister) advanceAnchor(ctx *ic.CallContext) {
	for {
		root := c.tree.Root()
		candidates := c.tree.AtHeight(root.Height + 1)
		var next *chain.Node
		for _, cand := range candidates {
			if c.blocks[cand.Hash] == nil {
				continue
			}
			if next == nil || c.tree.DepthByWork(cand).Cmp(c.tree.DepthByWork(next)) > 0 {
				next = cand
			}
		}
		if next == nil {
			return
		}
		if !c.tree.IsWorkStable(next, c.cfg.StabilityThreshold, root.Work) {
			return
		}
		if err := c.stabilizeNode(ctx, next); err != nil {
			return
		}
	}
}

// stabilizeNode folds one δ-stable block into U and re-roots the tree at
// it: ingest the block, discard its stored bytes, prune competing branches
// at the stabilized height, and record the new anchor. Shared between
// advanceAnchor (which decides *when* a block is stable) and ApplyFrame
// (where a replica re-executes the authoritative canister's decision).
func (c *BitcoinCanister) stabilizeNode(ctx *ic.CallContext, next *chain.Node) error {
	root := c.tree.Root()
	block := c.blocks[next.Hash]
	c.ingestStableBlock(ctx, block, next.Height)
	c.dropBlock(next)
	// Prune competing branches (and their stored blocks) below the new
	// anchor; "all but the single stable block header are removed".
	for _, other := range c.tree.AtHeight(root.Height + 1) {
		if other != next {
			c.dropSubtreeBlocks(other)
		}
	}
	if err := c.tree.Reroot(next); err != nil {
		// Cannot happen: next is in the tree. Record and stop.
		c.applyErrors++
		c.met.applyErrors.Inc()
		return err
	}
	// The new anchor's transactions now live in the stable set; its delta
	// (and the read caches derived from the old view) must not be consulted
	// again.
	next.SetAux(nil)
	c.invalidateReadCaches()
	c.invalidateChain()
	c.stableHeaders = append(c.stableHeaders, next.Header)
	c.anchorHeight = next.Height
	c.met.anchorAdvances.Inc()
	c.emit(StreamEvent{Kind: EventAnchorAdvanced, Hash: next.Hash})
	return nil
}

// dropSubtreeBlocks removes stored blocks for an entire pruned branch.
func (c *BitcoinCanister) dropSubtreeBlocks(n *chain.Node) {
	c.dropBlock(n)
	for _, child := range n.Children() {
		c.dropSubtreeBlocks(child)
	}
}

// ingestStableBlock folds a stable block's transactions into U through the
// batched tolerant apply (one staged replay, removals then one ordered
// merge per touched address bucket) and meters the work from its stats —
// charge for charge what the per-entry loop charged (the Fig 6 cost
// breakdown): every removal attempt, and every output priced by whether
// its script was interned at the moment that output was processed. Missing
// inputs and duplicate outputs are tolerated — the canister trusts proof
// of work, not transaction validity.
func (c *BitcoinCanister) ingestStableBlock(ctx *ic.CallContext, block *btc.Block, height int64) {
	ctx.Meter.Charge(ic.CostBlockOverhead, "block_overhead")
	ctx.Meter.Charge(uint64(len(block.Transactions))*ic.CostPerTxOverhead, "block_overhead")
	st := c.stable.ApplyBlockIngest(block, height)
	ctx.Meter.Charge(uint64(st.InputsRemoved)*ic.CostPerInputRemove, "remove_inputs")
	ctx.Meter.Charge(uint64(st.OutputsInterned)*ic.CostPerOutputInsertInterned, "insert_outputs")
	ctx.Meter.Charge(uint64(st.OutputsFresh)*ic.CostPerOutputInsert, "insert_outputs")
	c.applyErrors += st.Errors
	c.met.applyErrors.Add(uint64(st.Errors))
}

// ageOutgoing decrements rebroadcast budgets and drops exhausted entries.
func (c *BitcoinCanister) ageOutgoing() {
	kept := c.outgoing[:0]
	for _, tx := range c.outgoing {
		tx.rounds--
		if tx.rounds > 0 {
			kept = append(kept, tx)
		}
	}
	c.outgoing = kept
}

// updateSynced recomputes the τ condition of Algorithm 2 (lines 21-22).
// The available height is read off the incrementally maintained have list
// (sorted by height, so the maximum is its last entry) — the old BFS over
// the whole header tree per payload round is gone.
func (c *BitcoinCanister) updateSynced() {
	maxT := c.tree.MaxHeight()
	maxA := c.tree.Root().Height
	if n := len(c.have); n > 0 && c.have[n-1].height > maxA {
		maxA = c.have[n-1].height
	}
	c.availableHeight = maxA
	c.synced = maxT-maxA <= c.cfg.SyncSlack
}

// AvailableHeight returns the greatest height for which the canister holds
// the block itself (headers may extend further, bounded by τ).
func (c *BitcoinCanister) AvailableHeight() int64 {
	if c.availableHeight < c.tree.Root().Height {
		return c.tree.Root().Height
	}
	return c.availableHeight
}
