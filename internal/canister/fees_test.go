package canister

import (
	"testing"
	"time"

	"icbtc/internal/adapter"
	"icbtc/internal/btc"
	"icbtc/internal/ic"
)

// feeMiner mines valid blocks (real PoW at regtest targets, correct Merkle
// roots, MTP-respecting timestamps) containing arbitrary transactions — no
// validation, so fee tests can include alien inputs and fork branches.
type feeMiner struct {
	params *btc.Params
	byHash map[btc.Hash]*feeMinedHeader
	extra  uint64
}

type feeMinedHeader struct {
	height   int64
	header   btc.BlockHeader
	tsWindow []uint32
}

func newFeeMiner(params *btc.Params) *feeMiner {
	g := params.GenesisHeader
	m := &feeMiner{params: params, byHash: make(map[btc.Hash]*feeMinedHeader)}
	m.byHash[g.BlockHash()] = &feeMinedHeader{header: g, tsWindow: []uint32{g.Timestamp}}
	return m
}

func (m *feeMiner) mine(t *testing.T, parent btc.Hash, txs ...*btc.Transaction) *btc.Block {
	t.Helper()
	p := m.byHash[parent]
	if p == nil {
		t.Fatalf("mining on unknown parent %s", parent)
	}
	m.extra++
	height := p.height + 1
	coinbase := &btc.Transaction{
		Version: 2,
		Inputs: []btc.TxIn{{
			PreviousOutPoint: btc.OutPoint{TxID: btc.ZeroHash, Vout: 0xffffffff},
			SignatureScript: []byte{
				byte(height), byte(height >> 8), byte(height >> 16), byte(height >> 24),
				byte(m.extra), byte(m.extra >> 8), byte(m.extra >> 16), byte(m.extra >> 24),
			},
		}},
		Outputs: []btc.TxOut{{Value: m.params.BlockSubsidy, PkScript: btc.PayToPubKeyHashScript([20]byte{0xFE, 0xE5})}},
	}
	block := &btc.Block{
		Header: btc.BlockHeader{
			Version:   1,
			PrevBlock: parent,
			Timestamp: btc.MedianTimePast(p.tsWindow) + 30,
			Bits:      p.header.Bits,
		},
		Transactions: append([]*btc.Transaction{coinbase}, txs...),
	}
	block.Header.MerkleRoot = block.MerkleRoot()
	for nonce := uint32(0); ; nonce++ {
		block.Header.Nonce = nonce
		if btc.HashMeetsTarget(block.BlockHash(), block.Header.Bits) {
			break
		}
		if nonce == 1<<24 {
			t.Fatal("proof-of-work search exhausted")
		}
	}
	window := append([]uint32(nil), p.tsWindow...)
	if len(window) >= 11 {
		window = window[len(window)-10:]
	}
	window = append(window, block.Header.Timestamp)
	m.byHash[block.BlockHash()] = &feeMinedHeader{height: height, header: block.Header, tsWindow: window}
	return block
}

// feeRig pairs a canister with the permissive miner.
type feeRig struct {
	t     *testing.T
	miner *feeMiner
	can   *BitcoinCanister
	now   time.Time
	tip   btc.Hash
}

func newFeeRig(t *testing.T, readPath ReadPath) *feeRig {
	params := btc.RegtestParams()
	cfg := DefaultConfig(btc.Regtest)
	cfg.ReadPath = readPath
	return &feeRig{
		t:     t,
		miner: newFeeMiner(params),
		can:   New(cfg),
		now:   time.Unix(int64(params.GenesisHeader.Timestamp), 0).Add(time.Hour),
		tip:   params.GenesisHeader.BlockHash(),
	}
}

func (r *feeRig) ctx(kind ic.CallKind) *ic.CallContext {
	r.now = r.now.Add(time.Minute)
	return ic.NewCallContext(kind, r.now)
}

// extend mines one block of txs on the rig's tip and delivers it.
func (r *feeRig) extend(txs ...*btc.Transaction) *btc.Block {
	b := r.miner.mine(r.t, r.tip, txs...)
	r.tip = b.BlockHash()
	r.deliver(b)
	return b
}

func (r *feeRig) deliver(blocks ...*btc.Block) {
	resp := adapter.Response{}
	for _, b := range blocks {
		resp.Blocks = append(resp.Blocks, adapter.BlockWithHeader{Block: b, Header: b.Header})
	}
	if err := r.can.ProcessPayload(r.ctx(ic.KindUpdate), resp); err != nil {
		r.t.Fatal(err)
	}
}

func (r *feeRig) percentiles(kind ic.CallKind) ([]int64, *ic.CallContext) {
	ctx := r.ctx(kind)
	p, err := r.can.GetCurrentFeePercentiles(ctx)
	if err != nil {
		r.t.Fatal(err)
	}
	return p, ctx
}

// spendOf builds a transaction consuming one output of a previous tx with
// the given output value; the difference is the fee.
func spendOf(prev *btc.Transaction, vout uint32, outValue int64) *btc.Transaction {
	return &btc.Transaction{
		Version: 2,
		Inputs:  []btc.TxIn{{PreviousOutPoint: btc.OutPoint{TxID: prev.TxID(), Vout: vout}, Sequence: 0xffffffff}},
		Outputs: []btc.TxOut{{Value: outValue, PkScript: btc.PayToPubKeyHashScript([20]byte{0x77})}},
	}
}

func rateOf(tx *btc.Transaction, fee int64) int64 {
	return fee * 1000 / int64(tx.SerializedSize())
}

// TestFeePercentilesKnownRates pins the percentile arithmetic with
// hand-built fees: one priced transaction yields a flat vector at its rate;
// a second, cheaper one splits the distribution.
func TestFeePercentilesKnownRates(t *testing.T) {
	r := newFeeRig(t, ReadPathOverlay)
	b1 := r.extend() // coinbase to spend
	tx1 := spendOf(b1.Transactions[0], 0, r.miner.params.BlockSubsidy-9_000)
	r.extend(tx1)
	p, _ := r.percentiles(ic.KindQuery)
	if len(p) != FeePercentilesCount {
		t.Fatalf("got %d percentiles, want %d", len(p), FeePercentilesCount)
	}
	want1 := rateOf(tx1, 9_000)
	for i, v := range p {
		if v != want1 {
			t.Fatalf("p%d = %d, want flat %d", i, v, want1)
		}
	}
	// A second transaction at a lower rate becomes the low percentiles.
	tx2 := spendOf(tx1, 0, tx1.Outputs[0].Value-1_000)
	r.extend(tx2)
	want2 := rateOf(tx2, 1_000)
	if want2 >= want1 {
		t.Fatalf("test fees not ordered: %d >= %d", want2, want1)
	}
	p, _ = r.percentiles(ic.KindQuery)
	if p[0] != want2 || p[100] != want1 {
		t.Fatalf("p0=%d p100=%d, want %d and %d", p[0], p[100], want2, want1)
	}
}

// TestFeePercentilesAlienInputSkipped: a transaction spending an outpoint
// the canister never tracked cannot be priced and must be skipped, leaving
// the distribution to the resolvable traffic only.
func TestFeePercentilesAlienInputSkipped(t *testing.T) {
	r := newFeeRig(t, ReadPathOverlay)
	b1 := r.extend()
	alien := &btc.Transaction{
		Version: 2,
		Inputs: []btc.TxIn{{
			PreviousOutPoint: btc.OutPoint{TxID: btc.DoubleSHA256([]byte("alien")), Vout: 3},
			Sequence:         0xffffffff,
		}},
		Outputs: []btc.TxOut{{Value: 123, PkScript: btc.PayToPubKeyHashScript([20]byte{0x01})}},
	}
	// Only alien traffic: every transaction is skipped, percentiles all 0.
	r.extend(alien)
	p, _ := r.percentiles(ic.KindQuery)
	for i, v := range p {
		if v != 0 {
			t.Fatalf("p%d = %d with only unpriceable traffic, want 0", i, v)
		}
	}
	// Alien + priceable in one block: only the priceable one counts.
	tx := spendOf(b1.Transactions[0], 0, r.miner.params.BlockSubsidy-7_000)
	alien2 := *alien
	alien2.Outputs = []btc.TxOut{{Value: 321, PkScript: btc.PayToPubKeyHashScript([20]byte{0x02})}}
	r.extend(tx, &alien2)
	p, _ = r.percentiles(ic.KindQuery)
	want := rateOf(tx, 7_000)
	for i, v := range p {
		if v != want {
			t.Fatalf("p%d = %d, want %d (alien tx must not contribute)", i, v, want)
		}
	}
}

// TestFeePercentilesAcrossReorg: after a heavier branch displaces the
// chain, the distribution must reflect the new current chain's
// transactions only.
func TestFeePercentilesAcrossReorg(t *testing.T) {
	r := newFeeRig(t, ReadPathOverlay)
	b1 := r.extend()
	forkPoint := r.tip
	tx1 := spendOf(b1.Transactions[0], 0, r.miner.params.BlockSubsidy-9_000)
	r.extend(tx1)
	p, _ := r.percentiles(ic.KindQuery)
	if want := rateOf(tx1, 9_000); p[50] != want {
		t.Fatalf("pre-reorg p50 = %d, want %d", p[50], want)
	}

	// Heavier branch from the fork point carrying a different fee.
	tx2 := spendOf(b1.Transactions[0], 0, r.miner.params.BlockSubsidy-2_000)
	c2 := r.miner.mine(t, forkPoint, tx2)
	c3 := r.miner.mine(t, c2.BlockHash())
	r.deliver(c2, c3)
	if r.can.TipHeight() != 3 {
		t.Fatalf("tip height %d after reorg, want 3", r.can.TipHeight())
	}
	r.tip = c3.BlockHash()
	p, _ = r.percentiles(ic.KindQuery)
	want2 := rateOf(tx2, 2_000)
	for i, v := range p {
		if v != want2 {
			t.Fatalf("post-reorg p%d = %d, want %d (losing branch must not contribute)", i, v, want2)
		}
	}
}

// TestFeePercentilesCacheCoherence: the overlay path must serve repeat fee
// queries from the per-tip cache (cheaper, identical values), recompute
// after every tree change, and stay equal to the uncached replay oracle
// throughout. Update executions never touch the cache — replicated
// execution stays deterministic regardless of query history.
func TestFeePercentilesCacheCoherence(t *testing.T) {
	overlay := newFeeRig(t, ReadPathOverlay)
	replay := newFeeRig(t, ReadPathReplay)
	// Drive both canisters with the identical chain: mine on the overlay
	// rig and replicate delivery to the replay rig.
	mirror := func(blocks ...*btc.Block) {
		replay.deliver(blocks...)
	}

	b1 := overlay.extend()
	mirror(b1)
	tx := spendOf(b1.Transactions[0], 0, overlay.miner.params.BlockSubsidy-5_000)
	b2 := overlay.extend(tx)
	mirror(b2)

	cold, coldCtx := overlay.percentiles(ic.KindQuery)
	if coldCtx.Meter.Category("fee_cache_hit") != 0 {
		t.Fatal("first query claimed a cache hit")
	}
	warm, warmCtx := overlay.percentiles(ic.KindQuery)
	if warmCtx.Meter.Category("fee_cache_hit") == 0 {
		t.Fatal("second query at the same tip missed the cache")
	}
	if warmCtx.Meter.Total() >= coldCtx.Meter.Total() {
		t.Fatalf("cache hit cost %d >= cold cost %d", warmCtx.Meter.Total(), coldCtx.Meter.Total())
	}
	oracle, _ := replay.percentiles(ic.KindQuery)
	for i := range cold {
		if cold[i] != warm[i] || cold[i] != oracle[i] {
			t.Fatalf("p%d: cold %d warm %d oracle %d", i, cold[i], warm[i], oracle[i])
		}
	}
	// The cached slice must be insulated from caller mutation.
	warm[13] = -1
	again, _ := overlay.percentiles(ic.KindQuery)
	if again[13] == -1 {
		t.Fatal("cache returned a caller-mutable shared slice")
	}

	// A new block moves the tip: the cache must invalidate.
	b3 := overlay.extend(spendOf(tx, 0, tx.Outputs[0].Value-1_500))
	mirror(b3)
	fresh, freshCtx := overlay.percentiles(ic.KindQuery)
	if freshCtx.Meter.Category("fee_cache_hit") != 0 {
		t.Fatal("query after a tree change was served from the stale cache")
	}
	oracle, _ = replay.percentiles(ic.KindQuery)
	for i := range fresh {
		if fresh[i] != oracle[i] {
			t.Fatalf("post-invalidation p%d: overlay %d oracle %d", i, fresh[i], oracle[i])
		}
	}
	// Update executions bypass the cache entirely.
	_, updCtx := overlay.percentiles(ic.KindUpdate)
	if updCtx.Meter.Category("fee_cache_hit") != 0 {
		t.Fatal("update execution read the query cache")
	}
}

// TestGetBlockHeadersRangeValidation covers the endpoint's range handling:
// rejections for inverted and beyond-tip ranges, clamping, and the
// stable/unstable join at the anchor boundary.
func TestGetBlockHeadersRangeValidation(t *testing.T) {
	r := newFeeRig(t, ReadPathOverlay)
	headers := []btc.BlockHeader{r.miner.params.GenesisHeader}
	for i := 0; i < 10; i++ {
		headers = append(headers, r.extend().Header)
	}
	tip := r.can.TipHeight()       // 10
	anchor := r.can.AnchorHeight() // 4 with δ=6
	if anchor == 0 || anchor >= tip {
		t.Fatalf("degenerate topology: anchor %d tip %d", anchor, tip)
	}

	q := func(start, end int64) (*GetBlockHeadersResult, error) {
		return r.can.GetBlockHeaders(r.ctx(ic.KindQuery), GetBlockHeadersArgs{StartHeight: start, EndHeight: end})
	}

	// start beyond the tip (end defaulting to the tip) is rejected.
	if _, err := q(tip+1, 0); err == nil {
		t.Fatal("start > tip accepted")
	}
	// Inverted range is rejected.
	if _, err := q(5, 3); err == nil {
		t.Fatal("inverted range accepted")
	}
	// Negative start is rejected.
	if _, err := q(-1, 3); err == nil {
		t.Fatal("negative start accepted")
	}
	// end beyond the tip clamps to the tip.
	res, err := q(tip-1, tip+100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Headers) != 2 || res.TipHeight != tip {
		t.Fatalf("clamped range returned %d headers, tip %d", len(res.Headers), res.TipHeight)
	}

	// A range spanning the anchor boundary joins the stable history and the
	// unstable tree seamlessly: heights start..end, no gap, no duplicate.
	res, err = q(anchor-1, anchor+2)
	if err != nil {
		t.Fatal(err)
	}
	if want := int(4); len(res.Headers) != want {
		t.Fatalf("anchor-spanning range returned %d headers, want %d", len(res.Headers), want)
	}
	for i, h := range res.Headers {
		wantHeight := anchor - 1 + int64(i)
		if h.BlockHash() != headers[wantHeight].BlockHash() {
			t.Fatalf("header %d of the anchor-spanning range is not the chain header at height %d", i, wantHeight)
		}
	}

	// The full range returns every header from genesis to the tip.
	res, err = q(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Headers) != int(tip)+1 {
		t.Fatalf("full range returned %d headers, want %d", len(res.Headers), tip+1)
	}
	for i, h := range res.Headers {
		if h.BlockHash() != headers[i].BlockHash() {
			t.Fatalf("full-range header %d mismatches chain height %d", i, i)
		}
	}
	// Single-height range at the exact anchor.
	res, err = q(anchor, anchor)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Headers) != 1 || res.Headers[0].BlockHash() != headers[anchor].BlockHash() {
		t.Fatalf("anchor-only range wrong: %d headers", len(res.Headers))
	}
}
