package canister

import (
	"fmt"

	"icbtc/internal/adapter"
	"icbtc/internal/btc"
	"icbtc/internal/chain"
	"icbtc/internal/ic"
	"icbtc/internal/utxo"
)

// GetUTXOsArgs are the parameters of the get_utxos endpoint: a Bitcoin
// address, the network, and an optional filter — either a minimum number of
// confirmations or a page reference (§III-C).
type GetUTXOsArgs struct {
	Address string
	Network btc.Network
	// MinConfirmations, when > 0, restricts the view to confirmation-based
	// c-stable blocks. Values above δ are rejected.
	MinConfirmations int64
	// Page resumes a paginated retrieval.
	Page utxo.PageToken
	// Limit caps the page size (0 = canister default).
	Limit int
}

// GetUTXOsResult is the get_utxos response: the UTXOs, the tip of the
// considered chain, and a next-page reference when the response is partial.
type GetUTXOsResult struct {
	UTXOs     []utxo.UTXO
	TipHash   btc.Hash
	TipHeight int64
	NextPage  utxo.PageToken
	// StableCount/UnstableCount report where the UTXOs came from (drives
	// the Fig 7 bifurcation).
	StableCount, UnstableCount int
}

// GetBalanceArgs are the parameters of the get_balance endpoint.
type GetBalanceArgs struct {
	Address          string
	Network          btc.Network
	MinConfirmations int64
}

// SendTransactionArgs are the parameters of send_transaction: a serialized
// Bitcoin transaction and the target network.
type SendTransactionArgs struct {
	RawTx   []byte
	Network btc.Network
}

// HealthStatus is the get_health response: the canister's sync position and
// the Bitcoin adapter's last self-report. Unlike the data endpoints it is
// served even while the canister is out of sync — its whole purpose is to
// explain WHY answers are stale (or absent) when the chain feed degrades.
type HealthStatus struct {
	// AdapterState is the adapter's coarse state from its last report
	// (unknown until the first processed payload).
	AdapterState adapter.State
	// AdapterHeight is the adapter's best known header height.
	AdapterHeight int64
	// TipHeight/AnchorHeight locate the considered chain.
	TipHeight    int64
	AnchorHeight int64
	// AvailableHeight is the greatest height with a full block present.
	AvailableHeight int64
	// TipLag is how many blocks the served state trails the adapter's best
	// header (0 when caught up).
	TipLag int64
	// Synced mirrors the τ condition gating the data endpoints.
	Synced bool
	// Degraded is true when the adapter's stall detector fired: served data
	// may be arbitrarily stale.
	Degraded bool
}

// Update implements ic.Canister for replicated calls. Dispatch derives from
// the typed method registry (registry.go) — every registered method is
// servable on the replicated path.
func (c *BitcoinCanister) Update(ctx *ic.CallContext, method string, arg any) (any, error) {
	m, ok := methodByName[method]
	if !ok {
		return nil, fmt.Errorf("canister: no update method %q", method)
	}
	before := ctx.Meter.Total()
	out, err := m.handle(c, ctx, arg)
	c.recordDispatch(method, ctx.Meter, before)
	return out, err
}

// Query implements ic.Canister for non-replicated calls. The servable set —
// formerly a hand-maintained string list mirroring the Update switch — is
// the registry's read-only methods.
func (c *BitcoinCanister) Query(ctx *ic.CallContext, method string, arg any) (any, error) {
	m, ok := methodByName[method]
	if !ok || m.Kind != MethodReadOnly {
		return nil, fmt.Errorf("canister: no query method %q", method)
	}
	before := ctx.Meter.Total()
	out, err := m.handle(c, ctx, arg)
	c.recordDispatch(method, ctx.Meter, before)
	return out, err
}

// GetHealth serves the get_health endpoint. It deliberately skips
// checkServable: an out-of-sync or degraded canister must still explain
// itself — that is the endpoint's job.
func (c *BitcoinCanister) GetHealth(ctx *ic.CallContext) (*HealthStatus, error) {
	ctx.Meter.Charge(ic.CostRequestBase, "request_base")
	h := &HealthStatus{
		AdapterState:    c.adapterHealth.State,
		AdapterHeight:   c.adapterHealth.Height,
		TipHeight:       c.tipNode().Height,
		AnchorHeight:    c.tree.Root().Height,
		AvailableHeight: c.availableHeight,
		Synced:          c.synced,
		Degraded:        c.adapterHealth.State == adapter.StateDegraded,
	}
	if lag := h.AdapterHeight - h.AvailableHeight; lag > 0 {
		h.TipLag = lag
	}
	return h, nil
}

// checkServable rejects requests on the wrong network or while out of sync.
func (c *BitcoinCanister) checkServable(network btc.Network) error {
	if network != 0 && network != c.cfg.Network {
		return fmt.Errorf("canister: serves %v, request for %v", c.cfg.Network, network)
	}
	if !c.synced {
		return ErrNotSynced
	}
	return nil
}

// consideredChain returns the unstable blocks (anchor excluded) along the
// current chain — the d_w-maximal path — restricted, when minConf > 0, to
// confirmation-based minConf-stable blocks. The chain itself is cached
// between tree mutations; the unfiltered return value is shared and must
// not be mutated.
func (c *BitcoinCanister) consideredChain(minConf int64) ([]*chain.Node, error) {
	if minConf > c.cfg.StabilityThreshold {
		return nil, fmt.Errorf("%w: %d > δ=%d", ErrTooManyConfirmations, minConf, c.cfg.StabilityThreshold)
	}
	full := c.currentChain()
	nodes := full[1:] // skip the anchor (already folded into U)
	if minConf <= 0 {
		return nodes, nil
	}
	var out []*chain.Node
	for _, n := range nodes {
		if !c.tree.IsCountStable(n, minConf) {
			break // stability is monotone along the chain
		}
		out = append(out, n)
	}
	return out, nil
}

// GetUTXOs serves the get_utxos endpoint: the union of the stable set and
// the unstable blocks of the considered chain, height-descending, paginated.
//
// On the default (indexed) read path the page streams directly off the
// ordered address index merged with the unstable deltas: the cursor is
// located by binary search and only the page is copied — no per-request
// sort, no full-bucket copy. The replay oracle retains the naive §III-C
// materialize-and-sort flow; the differential harness asserts both produce
// byte-identical responses.
func (c *BitcoinCanister) GetUTXOs(ctx *ic.CallContext, args GetUTXOsArgs) (*GetUTXOsResult, error) {
	ctx.Meter.Charge(ic.CostRequestBase, "request_base")
	if err := c.checkServable(args.Network); err != nil {
		return nil, err
	}
	limit := args.Limit
	if limit <= 0 || limit > c.cfg.PageLimit {
		limit = c.cfg.PageLimit
	}
	if c.cfg.ReadPath == ReadPathReplay {
		return c.getUTXOsReplay(ctx, args, limit)
	}

	nodes, err := c.consideredChain(args.MinConfirmations)
	if err != nil {
		return nil, err
	}
	tip := c.consideredTip(nodes)
	eff := c.unstableEffectFor(ctx, args.Address, nodes)
	ctx.Meter.Charge(ic.CostPerIndexSeek, "page_seek")
	page, unstable, next, err := c.stable.MergedPage(args.Address, eff.created, eff.suppress, args.Page, limit)
	if err != nil {
		return nil, err
	}
	// Metering is per returned UTXO: the pagination limit caps the cost of
	// one request (the ceiling visible in Fig 7 right), and UTXOs served
	// from unstable blocks are cheaper than ones streamed off the stable
	// index (the figure's bifurcation).
	stable := len(page) - unstable
	if stable > 0 {
		ctx.Meter.Charge(uint64(stable)*ic.CostPerUTXOStableIndexed, "fetch_stable")
	}
	if unstable > 0 {
		ctx.Meter.Charge(uint64(unstable)*ic.CostPerUTXOUnstable, "fetch_unstable")
	}
	return &GetUTXOsResult{
		UTXOs:         page,
		TipHash:       tip.Hash,
		TipHeight:     tip.Height,
		NextPage:      next,
		StableCount:   stable,
		UnstableCount: unstable,
	}, nil
}

// getUTXOsReplay is the naive read path retained as the differential
// oracle: materialize the full merged view, sort it, page into it.
func (c *BitcoinCanister) getUTXOsReplay(ctx *ic.CallContext, args GetUTXOsArgs, limit int) (*GetUTXOsResult, error) {
	view, tip, err := c.addressViewReplay(ctx, args.Address, args.MinConfirmations)
	if err != nil {
		return nil, err
	}
	page, next, err := utxo.Page(view.utxos, args.Page, limit)
	if err != nil {
		return nil, err
	}
	result := &GetUTXOsResult{
		UTXOs:     page,
		TipHash:   tip.Hash,
		TipHeight: tip.Height,
		NextPage:  next,
	}
	for i := range page {
		if view.unstable[page[i].OutPoint] {
			ctx.Meter.Charge(ic.CostPerUTXOUnstable, "fetch_unstable")
			result.UnstableCount++
		} else {
			ctx.Meter.Charge(ic.CostPerUTXOStable, "fetch_stable")
			result.StableCount++
		}
	}
	return result, nil
}

// balanceKey identifies one memoizable get_balance computation: the merged
// view depends only on the address, the tree state (identified by the tip
// hash and invalidated wholesale on any tree mutation), and the
// confirmations filter.
type balanceKey struct {
	address string
	tip     btc.Hash
	minConf int64
}

// invalidateReadCaches drops all memoized balances and fee percentiles.
// Called on every tree mutation (new blocks or headers, anchor advance) —
// the overlay's cache coherence rule.
func (c *BitcoinCanister) invalidateReadCaches() {
	c.queryMu.Lock()
	if len(c.balanceCache) > 0 {
		c.balanceCache = make(map[balanceKey]int64)
	}
	c.feeCache = feeCacheEntry{}
	c.queryMu.Unlock()
}

// BalanceCacheSize returns the number of memoized balances (observability).
func (c *BitcoinCanister) BalanceCacheSize() int {
	c.queryMu.Lock()
	defer c.queryMu.Unlock()
	return len(c.balanceCache)
}

// GetBalance serves the get_balance convenience endpoint. On the overlay
// read path results are memoized per (address, tip, minConfirmations); the
// cache is kept coherent by invalidation on every tree mutation.
func (c *BitcoinCanister) GetBalance(ctx *ic.CallContext, args GetBalanceArgs) (int64, error) {
	ctx.Meter.Charge(ic.CostRequestBase, "request_base")
	if err := c.checkServable(args.Network); err != nil {
		return 0, err
	}
	// The cache serves non-replicated executions only: on the real IC a
	// query cannot persist canister state, but a per-replica read cache is
	// fair game — and it keeps replicated execution deterministic no matter
	// what queries ran before it.
	useCache := c.cfg.ReadPath == ReadPathOverlay && ctx.Kind == ic.KindQuery
	var key balanceKey
	if useCache {
		key = balanceKey{address: args.Address, tip: c.tipNode().Hash, minConf: args.MinConfirmations}
		c.queryMu.Lock()
		total, ok := c.balanceCache[key]
		c.queryMu.Unlock()
		if ok {
			ctx.Meter.Charge(ic.CostBalanceCacheHit, "balance_cache_hit")
			return total, nil
		}
	}
	var total int64
	if c.cfg.ReadPath == ReadPathReplay {
		view, _, err := c.addressViewReplay(ctx, args.Address, args.MinConfirmations)
		if err != nil {
			return 0, err
		}
		for _, u := range view.utxos {
			ctx.Meter.Charge(ic.CostPerBalanceUTXO, "sum_balance")
			total += u.Value
		}
	} else {
		var err error
		if total, err = c.balanceIndexed(ctx, args.Address, args.MinConfirmations); err != nil {
			return 0, err
		}
	}
	if useCache {
		c.queryMu.Lock()
		c.balanceCache[key] = total
		c.queryMu.Unlock()
	}
	return total, nil
}

// balanceIndexed computes a balance off the ordered index without
// materializing the merged view: the bucket's O(1) running total, minus the
// value of stable outpoints the unstable chain spent, plus the surviving
// unstable creations. Charged per merged UTXO exactly like the replay sum,
// so both paths meter identically whenever the unstable suffix is empty.
func (c *BitcoinCanister) balanceIndexed(ctx *ic.CallContext, address string, minConf int64) (int64, error) {
	nodes, err := c.consideredChain(minConf)
	if err != nil {
		return 0, err
	}
	eff := c.unstableEffectFor(ctx, address, nodes)
	total := c.stable.Balance(address)
	count := c.stable.AddressUTXOCount(address)
	for op := range eff.suppress {
		// Only outpoints actually present in the stable set affect the
		// merged view (the replay's map delete of an absent key is a no-op);
		// a suppressed outpoint that is present always belongs to this
		// address, since spends are attributed by script.
		if u, ok := c.stable.Get(op); ok {
			total -= u.Value
			count--
		}
	}
	for i := range eff.created {
		total += eff.created[i].Value
		count++
	}
	if count > 0 {
		ctx.Meter.Charge(uint64(count)*ic.CostPerBalanceUTXO, "sum_balance")
	}
	return total, nil
}

// consideredTip returns the tip of a considered chain: its last unstable
// node, or the anchor when the confirmations filter (or an empty suffix)
// leaves no unstable blocks. Both read paths must report the same tip for
// the differential oracle to stay byte-identical.
func (c *BitcoinCanister) consideredTip(nodes []*chain.Node) *chain.Node {
	if len(nodes) > 0 {
		return nodes[len(nodes)-1]
	}
	return c.tree.Root()
}

// unstableEffect is the net effect of the considered chain's unstable
// blocks on one address: the surviving creations in canonical order, and
// the set of outpoints to suppress from the stable stream (everything the
// chain spent, plus every created outpoint — a creation overrides a
// same-outpoint stable entry exactly as the replay's map overwrite does).
type unstableEffect struct {
	created  []utxo.UTXO
	suppress map[btc.OutPoint]bool
}

// unstableEffectFor folds the per-block deltas along the considered chain,
// in chain order, into one address's unstable effect. Per block the work is
// a delta lookup plus the handful of entries touching the queried address —
// the linear-in-δ full-block rescans of §III-C are gone; metering charges
// per delta lookup and entry accordingly. An address untouched by the
// unstable suffix allocates nothing.
func (c *BitcoinCanister) unstableEffectFor(ctx *ic.CallContext, address string, nodes []*chain.Node) unstableEffect {
	var createdSet map[btc.OutPoint]utxo.UTXO
	var suppress map[btc.OutPoint]bool
	for _, node := range nodes {
		ctx.Meter.Charge(ic.CostPerDeltaLookup, "delta_lookup")
		delta, _ := node.Aux().(*utxo.BlockDelta)
		if delta == nil {
			continue // header-only node (no block yet), same as replay's skip
		}
		if n := delta.EntriesFor(address); n > 0 {
			ctx.Meter.Charge(uint64(n)*ic.CostPerDeltaEntry, "delta_apply")
		}
		for _, sp := range delta.SpentFor(address) {
			delete(createdSet, sp.OutPoint)
			if suppress == nil {
				suppress = make(map[btc.OutPoint]bool, 8)
			}
			suppress[sp.OutPoint] = true
		}
		for _, u := range delta.CreatedFor(address) {
			if createdSet == nil {
				createdSet = make(map[btc.OutPoint]utxo.UTXO, 8)
			}
			createdSet[u.OutPoint] = u
		}
	}
	if len(createdSet) == 0 {
		return unstableEffect{suppress: suppress}
	}
	created := make([]utxo.UTXO, 0, len(createdSet))
	if suppress == nil {
		suppress = make(map[btc.OutPoint]bool, len(createdSet))
	}
	for _, u := range createdSet {
		created = append(created, u)
		suppress[u.OutPoint] = true
	}
	utxo.SortUTXOs(created)
	return unstableEffect{created: created, suppress: suppress}
}

// addressUTXOView is the merged stable+unstable view of one address.
type addressUTXOView struct {
	utxos []utxo.UTXO
	// unstable marks outpoints that came from unstable blocks.
	unstable map[btc.OutPoint]bool
}

// addressViewReplay merges the stable UTXO set with the unstable chain's
// effects for one address by rescanning blocks. Scanning the unstable
// blocks costs work proportional to δ ("the computational complexity ...
// grows linearly with the parameter δ", §III-C), charged here per block
// scanned. Retained as the oracle for the differential harness and the
// read-path benchmark.
func (c *BitcoinCanister) addressViewReplay(ctx *ic.CallContext, address string, minConf int64) (*addressUTXOView, *chain.Node, error) {
	nodes, err := c.consideredChain(minConf)
	if err != nil {
		return nil, nil, err
	}
	tip := c.consideredTip(nodes)

	view := &addressUTXOView{unstable: make(map[btc.OutPoint]bool)}
	present := make(map[btc.OutPoint]utxo.UTXO)
	for _, u := range c.stable.UTXOsForAddress(address) {
		present[u.OutPoint] = u
	}
	// Replay unstable blocks on the considered chain.
	for _, node := range nodes {
		ctx.Meter.Charge(ic.CostPerUnstableBlockScan, "scan_unstable")
		block := c.blocks[node.Hash]
		if block == nil {
			continue
		}
		txids := block.TxIDs()
		for ti, tx := range block.Transactions {
			if !tx.IsCoinbase() {
				for i := range tx.Inputs {
					delete(present, tx.Inputs[i].PreviousOutPoint)
				}
			}
			txid := txids[ti]
			for vout := range tx.Outputs {
				out := tx.Outputs[vout]
				if btc.ScriptID(out.PkScript, c.cfg.Network) != address {
					continue
				}
				op := btc.OutPoint{TxID: txid, Vout: uint32(vout)}
				present[op] = utxo.UTXO{
					OutPoint: op,
					Value:    out.Value,
					PkScript: out.PkScript,
					Height:   node.Height,
				}
				view.unstable[op] = true
			}
		}
	}
	view.utxos = make([]utxo.UTXO, 0, len(present))
	for _, u := range present {
		view.utxos = append(view.utxos, u)
	}
	utxo.SortUTXOs(view.utxos)
	return view, tip, nil
}

// SendTransaction serves send_transaction: syntax-check the bytes and queue
// them for forwarding to the Bitcoin adapter with the next update requests.
func (c *BitcoinCanister) SendTransaction(ctx *ic.CallContext, args SendTransactionArgs) error {
	ctx.Meter.Charge(ic.CostRequestBase, "request_base")
	if args.Network != 0 && args.Network != c.cfg.Network {
		return fmt.Errorf("canister: serves %v, transaction for %v", c.cfg.Network, args.Network)
	}
	tx, err := btc.ParseTransaction(args.RawTx)
	if err != nil {
		return fmt.Errorf("canister: malformed transaction: %w", err)
	}
	if err := tx.CheckSanity(); err != nil {
		return fmt.Errorf("canister: rejected transaction: %w", err)
	}
	txid := tx.TxID()
	for _, pending := range c.outgoing {
		if pending.txid == txid {
			return nil // already queued
		}
	}
	raw := make([]byte, len(args.RawTx))
	copy(raw, args.RawTx)
	c.outgoing = append(c.outgoing, outgoingTx{
		raw:    raw,
		txid:   txid,
		rounds: c.cfg.TxRebroadcastRounds,
	})
	return nil
}

// PendingTransactions returns the number of queued outbound transactions.
func (c *BitcoinCanister) PendingTransactions() int { return len(c.outgoing) }

// Compile-time interface checks.
var (
	_ ic.Canister         = (*BitcoinCanister)(nil)
	_ ic.PayloadProcessor = (*BitcoinCanister)(nil)
	_ ic.Snapshotter      = (*BitcoinCanister)(nil)
	_ ic.MethodTable      = (*BitcoinCanister)(nil)
)
