package canister

import (
	"fmt"

	"icbtc/internal/adapter"
	"icbtc/internal/btc"
	"icbtc/internal/ic"
	"icbtc/internal/ingest"
)

// Pipelined ingest: the canister's write path run through internal/ingest.
// The CPU-bound per-block work — wire decode, txid/Merkle double-hashing,
// script-ID derivation, delta prebuild — happens on pipeline workers over
// a bounded prefetch window, while Algorithm 2's state mutation (header
// validation against the tree, attach, anchor advance, stable fold) stays
// strictly sequential on the calling goroutine. Accept/reject decisions,
// counters, stream frames, and the resulting state are byte-identical to
// the serial ProcessPayload at every worker count; internal/difftest holds
// the serial path as the oracle and randomizes workers/windows to enforce
// exactly that.

// SyncStats summarizes one pipelined catch-up batch.
type SyncStats struct {
	// Accepted counts blocks attached to the tree; Rejected counts blocks
	// refused (validation failure, unavailable predecessor, undecodable
	// wire bytes).
	Accepted, Rejected int
}

// predictHeights computes, for each block in a batch, the height it would
// attach at: parent already in the tree → parent height + 1, parent
// earlier in the batch → its predicted height + 1, unknown parent → -1
// (the sequential applier will reject the orphan before needing a delta).
// Tree heights are immutable once a node is inserted, so predictions made
// before the pipeline starts stay correct for every block that is actually
// accepted.
func (c *BitcoinCanister) predictHeights(hashes, prevs []btc.Hash) []int64 {
	heights := make([]int64, len(hashes))
	batch := make(map[btc.Hash]int64, len(hashes))
	for i := range hashes {
		h := int64(-1)
		if ph, ok := batch[prevs[i]]; ok && ph >= 0 {
			h = ph + 1
		} else if node := c.tree.Get(prevs[i]); node != nil {
			h = node.Height + 1
		}
		heights[i] = h
		if _, dup := batch[hashes[i]]; !dup {
			batch[hashes[i]] = h
		}
	}
	return heights
}

// ProcessPayloadPipelined is ProcessPayload with the per-block CPU work
// fanned out across cfg.Workers: behaviorally identical (same accept and
// reject decisions, same metering, same stream frames, same state) for any
// worker count. With cfg.Workers <= 1 the pipeline degenerates to the
// serial loop.
func (c *BitcoinCanister) ProcessPayloadPipelined(ctx *ic.CallContext, payload any, cfg ingest.Config) error {
	resp, ok := payload.(adapter.Response)
	if !ok {
		return fmt.Errorf("canister: unexpected payload type %T", payload)
	}
	if cfg.Obs == nil {
		cfg.Obs = c.met.reg // pipeline stages land in the canister registry
	}
	c.ageOutgoing()
	c.adapterHealth = resp.Health
	if len(resp.Blocks) > 0 || len(resp.Next) > 0 {
		c.invalidateReadCaches()
	}

	if len(resp.Blocks) > 0 {
		hashes := make([]btc.Hash, len(resp.Blocks))
		prevs := make([]btc.Hash, len(resp.Blocks))
		for i := range resp.Blocks {
			hashes[i] = resp.Blocks[i].Header.BlockHash()
			prevs[i] = resp.Blocks[i].Header.PrevBlock
		}
		heights := c.predictHeights(hashes, prevs)
		workers := cfg.NormalizedWorkers()
		prep := ingest.NewPreparer(c.cfg.Network, workers)
		err := ingest.Map(len(resp.Blocks), cfg,
			func(worker, i int) ingest.PreparedBlock {
				if resp.Blocks[i].Block == nil {
					return ingest.PreparedBlock{} // acceptBlock rejects it
				}
				return prep.Prepare(worker, resp.Blocks[i].Block, heights[i])
			},
			func(i int, pb ingest.PreparedBlock) error {
				if err := c.acceptBlock(ctx, resp.Blocks[i], pb.Delta); err != nil {
					c.rejectedBlocks++
					return nil
				}
				c.advanceAnchor(ctx)
				return nil
			})
		if err != nil {
			return err // unreachable: the consumer never errors
		}
	}
	for i := range resp.Next {
		if err := c.acceptHeader(ctx, resp.Next[i]); err != nil {
			c.rejectedHeaders++
		}
	}
	c.updateSynced()
	c.flushFrame()
	return nil
}

// SyncWire ingests a batch of wire-encoded blocks through the pipeline —
// the catch-up path for a canister (or a bootstrapping replica) that is
// many blocks behind: workers decode, hash, and prebuild deltas over the
// prefetch window; the applier attaches and folds sequentially. The final
// state is byte-identical to parsing each block and feeding it through
// serial ProcessPayload. Undecodable entries count as rejected blocks.
func (c *BitcoinCanister) SyncWire(ctx *ic.CallContext, wire [][]byte, cfg ingest.Config) (SyncStats, error) {
	var stats SyncStats
	if len(wire) == 0 {
		return stats, nil
	}
	if cfg.Obs == nil {
		cfg.Obs = c.met.reg
	}
	c.ageOutgoing()
	c.invalidateReadCaches()

	// Height prediction needs only the 80-byte headers; parse them up
	// front (cheap) so workers know each block's attach height.
	hashes := make([]btc.Hash, len(wire))
	prevs := make([]btc.Hash, len(wire))
	bad := make([]bool, len(wire))
	for i := range wire {
		if len(wire[i]) < btc.BlockHeaderSize {
			bad[i] = true
			continue
		}
		hdr, err := btc.ParseBlockHeader(wire[i][:btc.BlockHeaderSize])
		if err != nil {
			bad[i] = true
			continue
		}
		hashes[i] = hdr.BlockHash()
		prevs[i] = hdr.PrevBlock
	}
	heights := c.predictHeights(hashes, prevs)

	workers := cfg.NormalizedWorkers()
	prep := ingest.NewPreparer(c.cfg.Network, workers)
	err := ingest.Map(len(wire), cfg,
		func(worker, i int) ingest.PreparedBlock {
			if bad[i] {
				return ingest.PreparedBlock{Err: fmt.Errorf("canister: sync block %d: undecodable header", i)}
			}
			return prep.PrepareWire(worker, wire[i], heights[i])
		},
		func(i int, pb ingest.PreparedBlock) error {
			if pb.Err != nil || pb.Block == nil {
				stats.Rejected++
				c.rejectedBlocks++
				return nil
			}
			bw := adapter.BlockWithHeader{Block: pb.Block, Header: pb.Block.Header}
			if err := c.acceptBlock(ctx, bw, pb.Delta); err != nil {
				stats.Rejected++
				c.rejectedBlocks++
				return nil
			}
			stats.Accepted++
			c.advanceAnchor(ctx)
			return nil
		})
	if err != nil {
		return stats, err // unreachable: the consumer never errors
	}
	c.updateSynced()
	c.flushFrame()
	return stats, nil
}
