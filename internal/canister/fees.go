package canister

import (
	"fmt"
	"sort"

	"icbtc/internal/btc"
	"icbtc/internal/ic"
)

// get_current_fee_percentiles: the production Bitcoin canister's companion
// endpoint (the paper's "API contains several additional functions"). It
// reports the fee-rate distribution, in millisatoshi per byte, over the
// transactions in the unstable blocks of the current chain — the most
// recent traffic the canister can price fees from.

// FeePercentilesCount is the number of percentiles returned (0..100).
const FeePercentilesCount = 101

// feeCacheEntry memoizes one computed percentile vector. The percentiles
// are a pure function of the unstable suffix of the current chain, which
// changes identity exactly when the tip hash or the anchor height moves —
// the key; every tree mutation additionally clears the entry outright
// (invalidateReadCaches), so the key is belt and braces.
type feeCacheEntry struct {
	valid       bool
	tip         btc.Hash
	anchor      int64
	percentiles []int64
}

// GetCurrentFeePercentiles computes the 101 fee-rate percentiles over
// recent transactions. Transactions whose inputs cannot be resolved
// against the canister's view (alien inputs the canister never tracked)
// are skipped, mirroring the production canister's best-effort fee index.
//
// On the overlay read path the result is memoized per (tip, anchor) for
// query executions and invalidated on every tree change, so repeated fee
// quotes between blocks stop rescanning every unstable block and
// re-resolving every input. The replay path always recomputes — it is the
// oracle the differential harness checks the cached path against.
func (c *BitcoinCanister) GetCurrentFeePercentiles(ctx *ic.CallContext) ([]int64, error) {
	ctx.Meter.Charge(ic.CostRequestBase, "request_base")
	if !c.synced {
		return nil, ErrNotSynced
	}
	useCache := c.cfg.ReadPath == ReadPathOverlay && ctx.Kind == ic.KindQuery
	tip := c.tipNode().Hash
	anchor := c.tree.Root().Height
	if useCache {
		c.queryMu.Lock()
		e := c.feeCache
		c.queryMu.Unlock()
		if e.valid && e.tip == tip && e.anchor == anchor {
			ctx.Meter.Charge(ic.CostFeeCacheHit, "fee_cache_hit")
			out := make([]int64, len(e.percentiles))
			copy(out, e.percentiles)
			return out, nil
		}
	}
	percentiles := c.computeFeePercentiles(ctx)
	if useCache {
		stored := make([]int64, len(percentiles))
		copy(stored, percentiles)
		c.queryMu.Lock()
		c.feeCache = feeCacheEntry{valid: true, tip: tip, anchor: anchor, percentiles: stored}
		c.queryMu.Unlock()
	}
	return percentiles, nil
}

// computeFeePercentiles is the uncached percentile computation: rescan the
// unstable blocks of the current chain, resolve every input, price every
// transaction.
func (c *BitcoinCanister) computeFeePercentiles(ctx *ic.CallContext) []int64 {
	full := c.currentChain()
	nodes := full[1:]

	// Resolve input values from the stable set plus outputs created earlier
	// in the unstable suffix.
	type outInfo struct{ value int64 }
	created := make(map[btc.OutPoint]outInfo)
	var rates []int64
	for _, node := range nodes {
		ctx.Meter.Charge(ic.CostPerUnstableBlockScan, "scan_unstable")
		block := c.blocks[node.Hash]
		if block == nil {
			continue
		}
		txids := block.TxIDs()
		for ti, tx := range block.Transactions {
			txid := txids[ti]
			for vout := range tx.Outputs {
				created[btc.OutPoint{TxID: txid, Vout: uint32(vout)}] = outInfo{value: tx.Outputs[vout].Value}
			}
			if tx.IsCoinbase() {
				continue
			}
			var inValue int64
			resolved := true
			for i := range tx.Inputs {
				op := tx.Inputs[i].PreviousOutPoint
				if info, ok := created[op]; ok {
					inValue += info.value
					continue
				}
				if u, ok := c.stable.Get(op); ok {
					inValue += u.Value
					continue
				}
				resolved = false
				break
			}
			if !resolved {
				continue
			}
			var outValue int64
			for i := range tx.Outputs {
				outValue += tx.Outputs[i].Value
			}
			fee := inValue - outValue
			if fee < 0 {
				continue // unpriceable (canister does not validate spends)
			}
			size := tx.SerializedSize()
			if size == 0 {
				continue
			}
			rates = append(rates, fee*1000/int64(size))
			ctx.Meter.Charge(ic.CostPerUTXOUnstable, "fee_index")
		}
	}
	percentiles := make([]int64, FeePercentilesCount)
	if len(rates) == 0 {
		return percentiles
	}
	sort.Slice(rates, func(i, j int) bool { return rates[i] < rates[j] })
	for p := 0; p < FeePercentilesCount; p++ {
		idx := p * (len(rates) - 1) / 100
		percentiles[p] = rates[idx]
	}
	return percentiles
}

// GetBlockHeadersArgs selects a height range for get_block_headers (the
// production canister's header endpoint). EndHeight 0 means "to the tip".
type GetBlockHeadersArgs struct {
	StartHeight int64
	EndHeight   int64
}

// GetBlockHeadersResult carries the headers of the current chain in the
// requested range plus the tip height, letting light clients verify chain
// state against the canister's certified responses.
type GetBlockHeadersResult struct {
	Headers   []btc.BlockHeader
	TipHeight int64
}

// GetBlockHeaders serves headers along the current chain. Heights below
// the anchor are served from the stable-header history; heights above it
// from the unstable tree.
func (c *BitcoinCanister) GetBlockHeaders(ctx *ic.CallContext, args GetBlockHeadersArgs) (*GetBlockHeadersResult, error) {
	ctx.Meter.Charge(ic.CostRequestBase, "request_base")
	if !c.synced {
		return nil, ErrNotSynced
	}
	tip := c.tipNode()
	end := args.EndHeight
	if end <= 0 || end > tip.Height {
		end = tip.Height
	}
	if args.StartHeight < 0 || args.StartHeight > end {
		return nil, fmt.Errorf("canister: bad header range [%d,%d]", args.StartHeight, end)
	}
	res := &GetBlockHeadersResult{TipHeight: tip.Height}
	anchorHeight := c.tree.Root().Height
	// Stable part: stableHeaders[i] is the anchor at height i (genesis = 0).
	for h := args.StartHeight; h <= end && h < anchorHeight; h++ {
		if h < int64(len(c.stableHeaders)) {
			ctx.Meter.Charge(ic.CostPerHeaderValidation, "serve_headers")
			res.Headers = append(res.Headers, c.stableHeaders[h])
		}
	}
	// Unstable part: walk the current chain.
	for _, n := range c.tree.CurrentChain() {
		if n.Height >= args.StartHeight && n.Height <= end {
			ctx.Meter.Charge(ic.CostPerHeaderValidation, "serve_headers")
			res.Headers = append(res.Headers, n.Header)
		}
	}
	return res, nil
}
