package canister

import (
	"testing"

	"icbtc/internal/adapter"
	"icbtc/internal/btc"
)

// TestGetHealthServesWhileUnsynced: get_health must answer — and explain —
// exactly when the data endpoints refuse.
func TestGetHealthServesWhileUnsynced(t *testing.T) {
	r := newRig(t, 41)

	// A fresh canister has seen no adapter report yet.
	v, err := r.can.Query(r.ctx(), "get_health", nil)
	if err != nil {
		t.Fatalf("get_health on fresh canister: %v", err)
	}
	h := v.(*HealthStatus)
	if h.AdapterState != adapter.StateUnknown || !h.Synced || h.Degraded {
		t.Fatalf("fresh canister health %+v", h)
	}

	// Headers-only payload from a degraded adapter: the canister learns of 6
	// blocks it doesn't have → unsynced, and the health report says why.
	if _, err := r.miner.MineChain(6, 0); err != nil {
		t.Fatal(err)
	}
	var headers []btc.BlockHeader
	for _, n := range r.node.Tree().CurrentChain()[1:] {
		headers = append(headers, n.Header)
	}
	resp := adapter.Response{
		Next:   headers,
		Health: adapter.Health{State: adapter.StateDegraded, Height: 6, Peers: 3},
	}
	if err := r.can.ProcessPayload(r.ctx(), resp); err != nil {
		t.Fatal(err)
	}
	if r.can.Synced() {
		t.Fatal("synced despite 6-block lag")
	}
	if _, err := r.can.GetBalance(r.ctx(), GetBalanceArgs{Address: r.minerAddr().String()}); err == nil {
		t.Fatal("get_balance served while unsynced")
	}
	v, err = r.can.Query(r.ctx(), "get_health", nil)
	if err != nil {
		t.Fatalf("get_health while unsynced: %v", err)
	}
	h = v.(*HealthStatus)
	if h.AdapterState != adapter.StateDegraded || !h.Degraded {
		t.Fatalf("degraded adapter not reflected: %+v", h)
	}
	if h.Synced {
		t.Fatal("health claims synced while the data endpoints refuse")
	}
	if h.AdapterHeight != 6 || h.AvailableHeight != 0 || h.TipLag != 6 {
		t.Fatalf("lag accounting wrong: %+v", h)
	}

	// Blocks arrive from a recovered adapter: back to normal.
	r.feedChain()
	if err := r.can.ProcessPayload(r.ctx(), adapter.Response{
		Health: adapter.Health{State: adapter.StateSyncing, Height: 6},
	}); err != nil {
		t.Fatal(err)
	}
	v, _ = r.can.Query(r.ctx(), "get_health", nil)
	h = v.(*HealthStatus)
	if h.Degraded || !h.Synced || h.TipLag != 0 {
		t.Fatalf("recovery not reflected: %+v", h)
	}
}

// TestHealthFramePropagation: a health change alone forces a stream frame
// (with zero events), the frame round-trips through the codec, and a replica
// applying it answers get_health like the authority — degradation is
// observable behind the fleet without any payload reaching the replica.
func TestHealthFramePropagation(t *testing.T) {
	r := newRig(t, 42)
	var frames []*Frame
	r.can.SetStreamSink(func(f *Frame) { frames = append(frames, f) })

	// An empty payload with unchanged (zero) health publishes nothing.
	if err := r.can.ProcessPayload(r.ctx(), adapter.Response{}); err != nil {
		t.Fatal(err)
	}
	if len(frames) != 0 {
		t.Fatalf("empty payload with unchanged health published %d frames", len(frames))
	}

	// A health flip with no chain data must publish a health-only frame.
	degraded := adapter.Health{State: adapter.StateDegraded, Height: 3, PendingBlocks: 2, Peers: 1}
	if err := r.can.ProcessPayload(r.ctx(), adapter.Response{Health: degraded}); err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 {
		t.Fatalf("health change published %d frames, want 1", len(frames))
	}
	if len(frames[0].Events) != 0 || frames[0].Health != degraded {
		t.Fatalf("health-only frame wrong: %d events, health %+v", len(frames[0].Events), frames[0].Health)
	}

	// The same health again: no new frame (no health-frame spam per payload).
	if err := r.can.ProcessPayload(r.ctx(), adapter.Response{Health: degraded}); err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 {
		t.Fatalf("unchanged health republished: %d frames", len(frames))
	}

	// Codec round-trip preserves the health report.
	decoded, err := DecodeFrame(EncodeFrame(frames[0]))
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Health != degraded {
		t.Fatalf("health lost in codec round-trip: %+v", decoded.Health)
	}

	// A replica applying the frame reports the degradation.
	replica := New(DefaultConfig(btc.Regtest))
	if err := replica.ApplyFrame(decoded); err != nil {
		t.Fatal(err)
	}
	v, err := replica.Query(r.ctx(), "get_health", nil)
	if err != nil {
		t.Fatal(err)
	}
	h := v.(*HealthStatus)
	if h.AdapterState != adapter.StateDegraded || !h.Degraded {
		t.Fatalf("replica missed the degradation: %+v", h)
	}

	// Recovery propagates the same way.
	if err := r.can.ProcessPayload(r.ctx(), adapter.Response{
		Health: adapter.Health{State: adapter.StateSyncing, Height: 3, Peers: 3},
	}); err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 {
		t.Fatalf("recovery frame missing: %d frames", len(frames))
	}
	if err := replica.ApplyFrame(frames[1]); err != nil {
		t.Fatal(err)
	}
	v, _ = replica.Query(r.ctx(), "get_health", nil)
	if h := v.(*HealthStatus); h.Degraded || h.AdapterState != adapter.StateSyncing {
		t.Fatalf("replica stuck degraded: %+v", h)
	}
}
