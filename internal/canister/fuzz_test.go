package canister_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"icbtc/internal/btc"
	"icbtc/internal/canister"
	"icbtc/internal/experiments"
)

// goldenSnapshotBytes loads the checked-in snapshot fixture as fuzz seed
// material (the richest known-valid input).
func goldenSnapshotBytes(f *testing.F) []byte {
	f.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "golden_snapshot_v1.bin"))
	if err != nil {
		f.Fatalf("reading golden snapshot fixture: %v", err)
	}
	return data
}

// FuzzStatecodecDecode drives RestoreSnapshot with arbitrary bytes: it must
// never panic, and it must never silently succeed — any accepted input must
// re-encode byte-identically (so a mutated-but-accepted snapshot, the torn
// state nightmare, is a fuzz failure, not a quiet divergence).
func FuzzStatecodecDecode(f *testing.F) {
	golden := goldenSnapshotBytes(f)
	f.Add(golden)
	f.Add(golden[:len(golden)/2]) // truncation
	flipped := append([]byte(nil), golden...)
	flipped[len(flipped)/3] ^= 0x10 // bit-flip
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte("icbtc/snapshot\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := canister.RestoreSnapshot(data)
		if err != nil {
			return // clean rejection is the expected path
		}
		again, err := c.Snapshot()
		if err != nil {
			t.Fatalf("restored canister cannot re-snapshot: %v", err)
		}
		if !bytes.Equal(again, data) {
			t.Fatalf("decoder silently accepted a non-canonical snapshot: %d bytes in, %d bytes back",
				len(data), len(again))
		}
	})
}

// capturedFrame builds one real delta-stream frame (block + delta + anchor
// events) through a feeder, as encoded seed material.
func capturedFrame(f *testing.F) []byte {
	f.Helper()
	feeder := experiments.NewFeeder(btc.Regtest, 2, 515)
	var raw []byte
	feeder.Canister.SetStreamSink(func(fr *canister.Frame) {
		fr.Seq = 1
		raw = canister.EncodeFrame(fr)
	})
	script := btc.PayToAddrScript(btc.NewP2PKHAddress([20]byte{0x31}, btc.Regtest))
	for i := 0; i < 4 && raw == nil; i++ {
		if _, err := feeder.FeedBlock([]experiments.TxSpec{{Outputs: experiments.PayN(script, 2, 600)}}); err != nil {
			f.Fatal(err)
		}
	}
	if raw == nil {
		f.Fatal("feeder produced no frame")
	}
	return raw
}

// FuzzFrameDecode drives DecodeFrame with arbitrary bytes: no panics, no
// silent acceptance — an accepted frame must re-encode byte-identically.
func FuzzFrameDecode(f *testing.F) {
	frame := capturedFrame(f)
	f.Add(frame)
	f.Add(frame[:len(frame)/2]) // truncation
	flipped := append([]byte(nil), frame...)
	flipped[len(flipped)/2] ^= 0x01 // bit-flip
	f.Add(flipped)
	f.Add([]byte{})
	f.Add(canister.EncodeFrame(&canister.Frame{Seq: 7, TipHeight: 3, AnchorHeight: 1}))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := canister.DecodeFrame(data)
		if err != nil {
			return
		}
		if !bytes.Equal(canister.EncodeFrame(fr), data) {
			t.Fatalf("frame decoder silently accepted a non-canonical frame (%d bytes)", len(data))
		}
	})
}

// TestRestoreSnapshotCrashing pins the crash-injection hook the torn-upgrade
// chaos scenario drives: every stage boundary kills the restore with
// ErrRestoreCrash and no canister, and the same bytes restore fine without
// the hook.
func TestRestoreSnapshotCrashing(t *testing.T) {
	c, _ := buildSnapshotState(t)
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	stages := []canister.RestoreStage{
		canister.RestoreStageConfig,
		canister.RestoreStageHeaders,
		canister.RestoreStageStableSet,
		canister.RestoreStageTree,
		canister.RestoreStageBlocks,
		canister.RestoreStageOutgoing,
	}
	for _, stage := range stages {
		got, err := canister.RestoreSnapshotCrashing(snap, stage)
		if !errors.Is(err, canister.ErrRestoreCrash) {
			t.Fatalf("stage %d: err %v, want ErrRestoreCrash", stage, err)
		}
		if got != nil {
			t.Fatalf("stage %d: crash returned a canister", stage)
		}
	}
	if _, err := canister.RestoreSnapshot(snap); err != nil {
		t.Fatalf("same bytes failed an uninjected restore: %v", err)
	}
}
