package canister

import (
	"bytes"
	"testing"

	"icbtc/internal/adapter"
	"icbtc/internal/btc"
	"icbtc/internal/ingest"
)

// chainWire mines a transaction-bearing chain on the rig's node and
// returns the blocks in wire form, root to tip.
func chainWire(t *testing.T, r *rig, n, txs int) ([][]byte, []*btc.Block) {
	t.Helper()
	blocks, err := r.miner.MineChain(n, txs)
	if err != nil {
		t.Fatal(err)
	}
	wire := make([][]byte, 0, len(blocks))
	for _, b := range blocks {
		wire = append(wire, b.Bytes())
	}
	return wire, blocks
}

func snapshotOf(t *testing.T, c *BitcoinCanister) []byte {
	t.Helper()
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestSyncWireMatchesSerial: catching up from wire bytes through the
// pipeline must leave the canister byte-identical (full snapshot,
// counters included) to parsing every block and processing them through
// the serial path in one payload — at every worker count and window.
func TestSyncWireMatchesSerial(t *testing.T) {
	r := newRig(t, 3)
	wire, _ := chainWire(t, r, 20, 5)

	serial := New(DefaultConfig(btc.Regtest))
	resp := adapter.Response{}
	for _, w := range wire {
		blk, err := btc.ParseBlock(w)
		if err != nil {
			t.Fatal(err)
		}
		resp.Blocks = append(resp.Blocks, adapter.BlockWithHeader{Block: blk, Header: blk.Header})
	}
	if err := serial.ProcessPayload(r.ctx(), resp); err != nil {
		t.Fatal(err)
	}
	want := snapshotOf(t, serial)

	for _, cfg := range []ingest.Config{
		{Workers: 1}, {Workers: 2, Window: 2}, {Workers: 4}, {Workers: 8, Window: 3}, {Workers: 8, Window: 32},
	} {
		pipelined := New(DefaultConfig(btc.Regtest))
		stats, err := pipelined.SyncWire(r.ctx(), wire, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Accepted != len(wire) || stats.Rejected != 0 {
			t.Fatalf("workers=%d: accepted %d rejected %d of %d", cfg.Workers, stats.Accepted, stats.Rejected, len(wire))
		}
		if !bytes.Equal(snapshotOf(t, pipelined), want) {
			t.Fatalf("workers=%d window=%d: pipelined state diverged from serial", cfg.Workers, cfg.Window)
		}
	}
}

// TestSyncWireRejectsLikeSerial: invalid entries — undecodable bytes, a
// tampered merkle root, an orphan — must be rejected without disturbing
// the rest of the batch, leaving the same state and reject counters the
// serial path reports.
func TestSyncWireRejectsLikeSerial(t *testing.T) {
	r := newRig(t, 5)
	wire, blocks := chainWire(t, r, 8, 3)

	// Tamper with block 3's merkle root (re-assembled, not copied), drop
	// block 5 (making 6 and 7 orphans), and append garbage.
	tampered := &btc.Block{Header: blocks[3].Header, Transactions: blocks[3].Transactions}
	tampered.Header.MerkleRoot = btc.DoubleSHA256([]byte("wrong"))
	batch := [][]byte{wire[0], wire[1], wire[2], tampered.Bytes(), wire[4][:40], wire[6], wire[7]}

	serial := New(DefaultConfig(btc.Regtest))
	resp := adapter.Response{}
	for _, w := range batch {
		blk, err := btc.ParseBlock(w)
		if err != nil {
			continue // the serial payload cannot carry undecodable bytes
		}
		resp.Blocks = append(resp.Blocks, adapter.BlockWithHeader{Block: blk, Header: blk.Header})
	}
	if err := serial.ProcessPayload(r.ctx(), resp); err != nil {
		t.Fatal(err)
	}

	pipelined := New(DefaultConfig(btc.Regtest))
	stats, err := pipelined.SyncWire(r.ctx(), batch, ingest.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Accepted != 3 {
		t.Fatalf("accepted %d, want 3 (blocks 0-2)", stats.Accepted)
	}
	// The truncated entry is a parse reject the serial payload never saw;
	// apart from that counter the states must agree.
	if stats.Rejected != 4 { // tampered, truncated, two orphans
		t.Fatalf("rejected %d, want 4", stats.Rejected)
	}
	if pipelined.TipHeight() != serial.TipHeight() || pipelined.IngestedBlocks() != serial.IngestedBlocks() {
		t.Fatalf("pipelined tip/ingested %d/%d, serial %d/%d",
			pipelined.TipHeight(), pipelined.IngestedBlocks(), serial.TipHeight(), serial.IngestedBlocks())
	}
}

// TestProcessPayloadPipelinedMatchesSerial drives two canisters payload by
// payload — blocks, upcoming headers, duplicates — asserting byte-equal
// snapshots after every payload.
func TestProcessPayloadPipelinedMatchesSerial(t *testing.T) {
	r := newRig(t, 7)
	_, blocks := chainWire(t, r, 12, 4)

	serial := New(DefaultConfig(btc.Regtest))
	pipelined := New(DefaultConfig(btc.Regtest))
	deliver := func(resp adapter.Response, workers int) {
		t.Helper()
		if err := serial.ProcessPayload(r.ctx(), resp); err != nil {
			t.Fatal(err)
		}
		if err := pipelined.ProcessPayloadPipelined(r.ctx(), resp, ingest.Config{Workers: workers}); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(snapshotOf(t, serial), snapshotOf(t, pipelined)) {
			t.Fatalf("workers=%d: states diverged", workers)
		}
	}

	// Header-first for the first half, then the blocks (some repeated),
	// then the rest in one batch.
	var hdrs []btc.BlockHeader
	for _, b := range blocks[:6] {
		hdrs = append(hdrs, b.Header)
	}
	deliver(adapter.Response{Next: hdrs}, 2)
	for i, b := range blocks[:6] {
		resp := adapter.Response{Blocks: []adapter.BlockWithHeader{{Block: b, Header: b.Header}}}
		if i%2 == 0 { // duplicate delivery is harmless
			resp.Blocks = append(resp.Blocks, resp.Blocks[0])
		}
		deliver(resp, 1+i%4)
	}
	var rest []adapter.BlockWithHeader
	for _, b := range blocks[6:] {
		rest = append(rest, adapter.BlockWithHeader{Block: b, Header: b.Header})
	}
	deliver(adapter.Response{Blocks: rest}, 8)
}

// TestRestoreSnapshotParallel: the sharded restore must reproduce the
// serial restore exactly — same re-snapshot bytes — at every worker count.
func TestRestoreSnapshotParallel(t *testing.T) {
	r := newRig(t, 11)
	wire, _ := chainWire(t, r, 15, 6)
	can := New(DefaultConfig(btc.Regtest))
	if _, err := can.SyncWire(r.ctx(), wire, ingest.Config{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	snap := snapshotOf(t, can)

	serialRestore, err := RestoreSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	want := snapshotOf(t, serialRestore)
	if !bytes.Equal(want, snap) {
		t.Fatal("serial restore is not byte-stable")
	}
	for _, workers := range []int{1, 2, 4, 8} {
		restored, err := RestoreSnapshotParallel(snap, ingest.Config{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(snapshotOf(t, restored), want) {
			t.Fatalf("workers=%d: parallel restore diverged", workers)
		}
	}
}

// TestFramePrepareEquivalence: applying prepared frames must produce the
// same replica state as applying raw frames, and a corrupt frame must
// surface the same error either way.
func TestFramePrepareEquivalence(t *testing.T) {
	r := newRig(t, 13)
	_, blocks := chainWire(t, r, 10, 4)

	authority := New(DefaultConfig(btc.Regtest))
	var frames [][]byte
	authority.SetStreamSink(func(f *Frame) { frames = append(frames, EncodeFrame(f)) })
	for _, b := range blocks {
		resp := adapter.Response{Blocks: []adapter.BlockWithHeader{{Block: b, Header: b.Header}}}
		if err := authority.ProcessPayload(r.ctx(), resp); err != nil {
			t.Fatal(err)
		}
	}
	if len(frames) == 0 {
		t.Fatal("no frames published")
	}

	plain := New(DefaultConfig(btc.Regtest))
	prepared := New(DefaultConfig(btc.Regtest))
	for i, raw := range frames {
		fa, err := DecodeFrame(raw)
		if err != nil {
			t.Fatal(err)
		}
		fb, err := DecodeFrame(raw)
		if err != nil {
			t.Fatal(err)
		}
		fb.Prepare(ingest.Config{Workers: 4})
		if err := plain.ApplyFrame(fa); err != nil {
			t.Fatal(err)
		}
		if err := prepared.ApplyFrame(fb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(snapshotOf(t, plain), snapshotOf(t, prepared)) {
			t.Fatalf("frame %d: prepared apply diverged", i)
		}
	}
	if !bytes.Equal(snapshotOf(t, plain), snapshotOf(t, authority)) {
		t.Fatal("replica did not converge to the authority")
	}
}
