package simnet

import (
	"fmt"
	"time"
)

// NodeID identifies an endpoint on the simulated network. IDs are free-form
// strings, conventionally "btc/3" for Bitcoin nodes, "ic/0" for IC replicas,
// "adapter/0" for Bitcoin adapters.
type NodeID string

// Endpoint receives messages delivered by the network.
type Endpoint interface {
	// Receive handles a message from another node. It runs on the
	// simulation goroutine; implementations must not block.
	Receive(from NodeID, msg any)
}

// LatencyModel samples a one-way message delay.
type LatencyModel struct {
	// Base is the minimum one-way latency.
	Base time.Duration
	// Jitter is the maximum additional uniformly distributed delay.
	Jitter time.Duration
}

// sample draws a delay using the scheduler's RNG.
func (l LatencyModel) sample(s *Scheduler) time.Duration {
	d := l.Base
	if l.Jitter > 0 {
		d += time.Duration(s.Rand().Int63n(int64(l.Jitter)))
	}
	return d
}

// Network is an in-process message-passing fabric with per-link latency,
// random loss, and partitions. All delivery happens via the scheduler, so a
// simulation remains fully deterministic.
type Network struct {
	sched     *Scheduler
	endpoints map[NodeID]Endpoint
	latency   LatencyModel
	// lossRate is the probability in [0,1) that a message is dropped.
	lossRate float64
	// partition maps a node to its partition group; nodes in different
	// groups cannot exchange messages. Empty string means the default group.
	partition map[NodeID]string
	// downNodes cannot send or receive (crash faults).
	downNodes map[NodeID]bool
	// links holds per-directed-link degradation profiles; links without an
	// entry use the uniform latency/lossRate defaults above.
	links map[linkKey]*link
	// stats
	sent      int64
	delivered int64
	dropped   int64
}

// NewNetwork creates a network on a scheduler with a default latency model
// (20ms base, 30ms jitter — a rough WAN profile).
func NewNetwork(s *Scheduler) *Network {
	return &Network{
		sched:     s,
		endpoints: make(map[NodeID]Endpoint),
		latency:   LatencyModel{Base: 20 * time.Millisecond, Jitter: 30 * time.Millisecond},
		partition: make(map[NodeID]string),
		downNodes: make(map[NodeID]bool),
	}
}

// Scheduler returns the scheduler the network delivers on.
func (n *Network) Scheduler() *Scheduler { return n.sched }

// SetLatency replaces the latency model.
func (n *Network) SetLatency(l LatencyModel) { n.latency = l }

// SetLossRate sets the uniform message-drop probability.
func (n *Network) SetLossRate(p float64) {
	if p < 0 {
		p = 0
	}
	if p >= 1 {
		p = 0.999
	}
	n.lossRate = p
}

// Register attaches an endpoint under an ID. Re-registering replaces the
// previous endpoint (used to simulate restarts).
func (n *Network) Register(id NodeID, ep Endpoint) {
	n.endpoints[id] = ep
}

// Unregister detaches an endpoint.
func (n *Network) Unregister(id NodeID) {
	delete(n.endpoints, id)
}

// SetDown marks a node as crashed (true) or recovered (false).
func (n *Network) SetDown(id NodeID, down bool) {
	if down {
		n.downNodes[id] = true
	} else {
		delete(n.downNodes, id)
	}
}

// IsDown reports whether a node is crashed.
func (n *Network) IsDown(id NodeID) bool { return n.downNodes[id] }

// SetPartition assigns a node to a partition group. Nodes only communicate
// within their group. The empty group is the default for all nodes.
func (n *Network) SetPartition(id NodeID, group string) {
	if group == "" {
		delete(n.partition, id)
	} else {
		n.partition[id] = group
	}
}

// HealPartitions returns every node to the default group.
func (n *Network) HealPartitions() {
	n.partition = make(map[NodeID]string)
}

// Send schedules delivery of msg from one node to another. Messages to
// unknown, crashed, or partitioned-away nodes are silently dropped, like
// packets on a real network.
func (n *Network) Send(from, to NodeID, msg any) {
	n.sent++
	if n.downNodes[from] || n.downNodes[to] {
		n.dropped++
		return
	}
	if n.partition[from] != n.partition[to] {
		n.dropped++
		return
	}
	var delay time.Duration
	if l := n.links[linkKey{from, to}]; l != nil {
		drop, d, dup, dupDelay := l.plan(n)
		if drop {
			n.dropped++
			return
		}
		delay = d
		if dup {
			// The duplicate is an extra message on the wire: count it as
			// sent so sent == delivered + dropped + in-flight holds.
			n.sent++
			n.scheduleDelivery(from, to, msg, dupDelay)
		}
	} else {
		if n.lossRate > 0 && n.sched.Rand().Float64() < n.lossRate {
			n.dropped++
			return
		}
		delay = n.latency.sample(n.sched)
	}
	n.scheduleDelivery(from, to, msg, delay)
}

// scheduleDelivery queues one delivery attempt after delay, re-checking
// liveness and partitions at delivery time.
func (n *Network) scheduleDelivery(from, to NodeID, msg any, delay time.Duration) {
	n.sched.After(delay, func() {
		ep := n.endpoints[to]
		if ep == nil || n.downNodes[to] {
			n.dropped++
			return
		}
		// Re-check the partition at delivery time: a partition raised while
		// the message was in flight cuts it off.
		if n.partition[from] != n.partition[to] {
			n.dropped++
			return
		}
		n.delivered++
		ep.Receive(from, msg)
	})
}

// Broadcast sends msg from one node to a list of peers.
func (n *Network) Broadcast(from NodeID, peers []NodeID, msg any) {
	for _, p := range peers {
		if p != from {
			n.Send(from, p, msg)
		}
	}
}

// Stats returns cumulative (sent, delivered, dropped) counters.
func (n *Network) Stats() (sent, delivered, dropped int64) {
	return n.sent, n.delivered, n.dropped
}

// String summarizes the network state for debugging.
func (n *Network) String() string {
	return fmt.Sprintf("simnet{nodes=%d sent=%d delivered=%d dropped=%d}",
		len(n.endpoints), n.sent, n.delivered, n.dropped)
}
