package simnet

import "time"

// LinkProfile describes the delivery behavior of one directed link,
// overriding the network-wide defaults set with SetLatency/SetLossRate.
// Profiles model *degraded* links — lossy, slow, bursty, flapping — as
// opposed to the binary up/down faults of SetDown/SetPartition. Because a
// profile is directed, asymmetric links (fast down, slow up) are expressed
// by installing different profiles for the two directions.
//
// All random draws come from the scheduler's seeded RNG, so runs with a
// profile installed stay fully deterministic.
type LinkProfile struct {
	// Latency overrides the network default when non-zero (Base or Jitter
	// set). A zero LatencyModel falls through to the network default.
	Latency LatencyModel
	// LossRate is the per-message drop probability in [0,1) for this link.
	// It replaces (not compounds with) the network-wide loss rate.
	LossRate float64

	// Latency-spike episodes: with probability SpikeRate per message, the
	// link enters an episode lasting SpikeDuration during which every
	// message's sampled delay is multiplied by SpikeFactor. Episodes model
	// bufferbloat / route-flap bursts rather than i.i.d. per-packet jitter.
	SpikeRate     float64
	SpikeFactor   float64
	SpikeDuration time.Duration

	// DuplicateRate is the probability a delivered message is delivered
	// twice (the copy is independently delayed). Duplicates count as an
	// extra sent+delivered pair in Stats so sent == delivered+dropped+inflight
	// stays an invariant.
	DuplicateRate float64

	// ReorderRate is the probability a message is held back by an extra
	// ReorderDelay, letting later sends overtake it.
	ReorderRate  float64
	ReorderDelay time.Duration

	// Link flapping: when FlapPeriod > 0 the link is down for FlapDown out
	// of every FlapPeriod, on a schedule offset drawn once (seeded) when the
	// profile is installed. Messages sent while the link is down are dropped.
	FlapPeriod time.Duration
	FlapDown   time.Duration
}

// linkKey identifies a directed link.
type linkKey struct {
	from, to NodeID
}

// link is the per-directed-link runtime state for an installed profile.
type link struct {
	profile LinkProfile
	// spikeUntil is the end of the current latency-spike episode.
	spikeUntil time.Time
	// flapOffset randomizes (deterministically) where in the flap cycle
	// this link starts, so several flapping links don't beat in sync.
	flapOffset time.Duration
}

// SetLinkProfile installs a profile on the directed link from→to. Passing
// nil removes the profile, returning the link to the network defaults. The
// flap-schedule offset is drawn from the scheduler RNG at install time.
func (n *Network) SetLinkProfile(from, to NodeID, p *LinkProfile) {
	if n.links == nil {
		n.links = make(map[linkKey]*link)
	}
	key := linkKey{from, to}
	if p == nil {
		delete(n.links, key)
		return
	}
	prof := *p
	if prof.LossRate < 0 {
		prof.LossRate = 0
	}
	if prof.LossRate >= 1 {
		prof.LossRate = 0.999
	}
	l := &link{profile: prof}
	if prof.FlapPeriod > 0 {
		l.flapOffset = time.Duration(n.sched.Rand().Int63n(int64(prof.FlapPeriod)))
	}
	n.links[key] = l
}

// ClearLinkProfiles removes every installed link profile (heal).
func (n *Network) ClearLinkProfiles() {
	n.links = nil
}

// LinkProfileCount returns the number of installed link profiles.
func (n *Network) LinkProfileCount() int { return len(n.links) }

// flapDown reports whether a flapping link is in the down part of its cycle
// at virtual time t. The schedule is a pure function of (t, offset), so no
// RNG is consumed by the check and delivery-time re-checks are consistent.
func (l *link) flapDown(t time.Time) bool {
	p := l.profile
	if p.FlapPeriod <= 0 || p.FlapDown <= 0 {
		return false
	}
	phase := (time.Duration(t.UnixNano()) + l.flapOffset) % p.FlapPeriod
	return phase < p.FlapDown
}

// plan computes the delivery plan for one message on this link: whether it
// is dropped, its total delay, and whether a duplicate copy (with its own
// delay) should be scheduled. All draws come from the scheduler RNG in a
// fixed order so equal seeds replay identically.
func (l *link) plan(n *Network) (drop bool, delay time.Duration, dup bool, dupDelay time.Duration) {
	p := l.profile
	now := n.sched.Now()
	rng := n.sched.Rand()

	if l.flapDown(now) {
		return true, 0, false, 0
	}
	if p.LossRate > 0 && rng.Float64() < p.LossRate {
		return true, 0, false, 0
	}

	lat := p.Latency
	if lat.Base == 0 && lat.Jitter == 0 {
		lat = n.latency
	}
	delay = lat.sample(n.sched)

	// Spike episodes: entering is a per-message draw; while inside one,
	// every message is stretched.
	if p.SpikeRate > 0 && p.SpikeFactor > 1 {
		if now.Before(l.spikeUntil) {
			delay = time.Duration(float64(delay) * p.SpikeFactor)
		} else if rng.Float64() < p.SpikeRate {
			l.spikeUntil = now.Add(p.SpikeDuration)
			delay = time.Duration(float64(delay) * p.SpikeFactor)
		}
	}

	if p.ReorderRate > 0 && p.ReorderDelay > 0 && rng.Float64() < p.ReorderRate {
		delay += p.ReorderDelay
	}

	if p.DuplicateRate > 0 && rng.Float64() < p.DuplicateRate {
		dup = true
		dupDelay = lat.sample(n.sched)
	}
	return false, delay, dup, dupDelay
}
