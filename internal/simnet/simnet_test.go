package simnet

import (
	"testing"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler(1)
	var order []int
	s.After(30*time.Millisecond, func() { order = append(order, 3) })
	s.After(10*time.Millisecond, func() { order = append(order, 1) })
	s.After(20*time.Millisecond, func() { order = append(order, 2) })
	s.Drain(100)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order %v", order)
	}
}

func TestSchedulerSameInstantFIFO(t *testing.T) {
	s := NewScheduler(1)
	var order []int
	at := s.Now().Add(time.Second)
	for i := 0; i < 5; i++ {
		i := i
		s.At(at, func() { order = append(order, i) })
	}
	s.Drain(100)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events out of order: %v", order)
		}
	}
}

func TestSchedulerClockAdvances(t *testing.T) {
	s := NewScheduler(1)
	start := s.Now()
	var at time.Time
	s.After(5*time.Second, func() { at = s.Now() })
	s.Drain(10)
	if got := at.Sub(start); got != 5*time.Second {
		t.Fatalf("event ran at +%v", got)
	}
	// Past-time scheduling clamps to now.
	ran := false
	s.At(start, func() { ran = true })
	s.Step()
	if !ran || s.Now().Before(at) {
		t.Fatal("past event handling wrong")
	}
}

func TestRunUntilAndRunFor(t *testing.T) {
	s := NewScheduler(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.After(time.Duration(i)*time.Second, func() { count++ })
	}
	n := s.RunFor(5 * time.Second)
	if n != 5 || count != 5 {
		t.Fatalf("n=%d count=%d", n, count)
	}
	// Clock must have advanced to the deadline even without events there.
	if s.Now().Sub(time.Unix(1_700_000_000, 0).UTC()) != 5*time.Second {
		t.Fatalf("clock at %v", s.Now())
	}
	s.RunFor(100 * time.Second)
	if count != 10 {
		t.Fatalf("count %d", count)
	}
}

func TestSchedulerDeterminism(t *testing.T) {
	run := func() []int64 {
		s := NewScheduler(42)
		var samples []int64
		for i := 0; i < 10; i++ {
			d := time.Duration(s.Rand().Int63n(int64(time.Second)))
			s.After(d, func() { samples = append(samples, s.Now().UnixNano()) })
		}
		s.Drain(100)
		return samples
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("runs differ")
		}
	}
}

type recorder struct {
	msgs []any
	from []NodeID
}

func (r *recorder) Receive(from NodeID, msg any) {
	r.msgs = append(r.msgs, msg)
	r.from = append(r.from, from)
}

func TestNetworkDelivery(t *testing.T) {
	s := NewScheduler(1)
	n := NewNetwork(s)
	a, b := &recorder{}, &recorder{}
	n.Register("a", a)
	n.Register("b", b)

	n.Send("a", "b", "hello")
	s.Drain(10)
	if len(b.msgs) != 1 || b.msgs[0] != "hello" || b.from[0] != "a" {
		t.Fatalf("b got %v", b.msgs)
	}
	if len(a.msgs) != 0 {
		t.Fatal("sender received its own message")
	}
	sent, delivered, dropped := n.Stats()
	if sent != 1 || delivered != 1 || dropped != 0 {
		t.Fatalf("stats %d/%d/%d", sent, delivered, dropped)
	}
}

func TestNetworkLatencyApplied(t *testing.T) {
	s := NewScheduler(1)
	n := NewNetwork(s)
	n.SetLatency(LatencyModel{Base: 100 * time.Millisecond})
	var deliveredAt time.Time
	n.Register("b", endpointFunc(func(NodeID, any) { deliveredAt = s.Now() }))
	start := s.Now()
	n.Send("a", "b", 1)
	s.Drain(10)
	if deliveredAt.Sub(start) != 100*time.Millisecond {
		t.Fatalf("delivered after %v", deliveredAt.Sub(start))
	}
}

type endpointFunc func(NodeID, any)

func (f endpointFunc) Receive(from NodeID, msg any) { f(from, msg) }

func TestNetworkDrops(t *testing.T) {
	s := NewScheduler(1)
	n := NewNetwork(s)
	r := &recorder{}
	n.Register("b", r)

	// Unknown destination: dropped.
	n.Send("a", "nobody", 1)
	// Crashed destination.
	n.SetDown("b", true)
	n.Send("a", "b", 2)
	n.SetDown("b", false)
	// Crashed sender.
	n.SetDown("a", true)
	n.Send("a", "b", 3)
	n.SetDown("a", false)
	s.Drain(10)
	if len(r.msgs) != 0 {
		t.Fatalf("messages leaked: %v", r.msgs)
	}
	_, _, dropped := n.Stats()
	if dropped != 3 {
		t.Fatalf("dropped %d, want 3", dropped)
	}
}

func TestNetworkPartition(t *testing.T) {
	s := NewScheduler(1)
	n := NewNetwork(s)
	b, c := &recorder{}, &recorder{}
	n.Register("b", b)
	n.Register("c", c)

	n.SetPartition("a", "east")
	n.SetPartition("b", "east")
	// c stays in the default group.
	n.Send("a", "b", "in-group")
	n.Send("a", "c", "cross-group")
	s.Drain(10)
	if len(b.msgs) != 1 {
		t.Fatalf("b got %d messages", len(b.msgs))
	}
	if len(c.msgs) != 0 {
		t.Fatal("partition leaked")
	}

	n.HealPartitions()
	n.Send("a", "c", "healed")
	s.Drain(10)
	if len(c.msgs) != 1 {
		t.Fatal("heal failed")
	}
}

func TestNetworkPartitionRaisedInFlight(t *testing.T) {
	s := NewScheduler(1)
	n := NewNetwork(s)
	n.SetLatency(LatencyModel{Base: time.Second})
	r := &recorder{}
	n.Register("b", r)
	n.Send("a", "b", 1)
	// Partition raised while the message is in flight.
	n.SetPartition("b", "island")
	s.Drain(10)
	if len(r.msgs) != 0 {
		t.Fatal("in-flight message crossed a partition")
	}
}

func TestNetworkLossRate(t *testing.T) {
	s := NewScheduler(7)
	n := NewNetwork(s)
	n.SetLatency(LatencyModel{})
	n.SetLossRate(0.5)
	r := &recorder{}
	n.Register("b", r)
	const total = 1000
	for i := 0; i < total; i++ {
		n.Send("a", "b", i)
	}
	s.Drain(total * 2)
	got := len(r.msgs)
	if got < total/3 || got > 2*total/3 {
		t.Fatalf("with 50%% loss, delivered %d of %d", got, total)
	}
	// Loss rate outside [0,1) is clamped.
	n.SetLossRate(-1)
	n.SetLossRate(2)
}

func TestBroadcastSkipsSelf(t *testing.T) {
	s := NewScheduler(1)
	n := NewNetwork(s)
	a, b := &recorder{}, &recorder{}
	n.Register("a", a)
	n.Register("b", b)
	n.Broadcast("a", []NodeID{"a", "b"}, "x")
	s.Drain(10)
	if len(a.msgs) != 0 || len(b.msgs) != 1 {
		t.Fatalf("a=%d b=%d", len(a.msgs), len(b.msgs))
	}
}
