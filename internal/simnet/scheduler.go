// Package simnet provides the deterministic simulation fabric the rest of
// the repository runs on: a discrete-event scheduler with a virtual clock,
// a seeded RNG, and an in-process message-passing network with configurable
// latency, loss, and partitions.
//
// Running on virtual time makes the latency experiments (Fig 7, the in-text
// latency distributions) deterministic and fast: a "10 second" replicated
// call completes in microseconds of wall-clock time while still measuring
// 10 seconds of simulated time.
package simnet

import (
	"container/heap"
	"math/rand"
	"time"
)

// Event is a scheduled callback.
type event struct {
	at  time.Time
	seq uint64 // tie-break so same-instant events run in schedule order
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Scheduler is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; the whole simulation runs on one goroutine, which is
// what makes runs reproducible.
type Scheduler struct {
	now   time.Time
	queue eventQueue
	seq   uint64
	rng   *rand.Rand
}

// NewScheduler creates a scheduler starting at a fixed epoch with a seeded
// RNG. All randomness in a simulation must come from Rand() to keep runs
// reproducible.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{
		now: time.Unix(1_700_000_000, 0).UTC(),
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Time { return s.now }

// Rand returns the simulation's deterministic RNG.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// After schedules fn to run after a virtual delay.
func (s *Scheduler) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now.Add(d), fn)
}

// At schedules fn at an absolute virtual time (clamped to now).
func (s *Scheduler) At(t time.Time, fn func()) {
	if t.Before(s.now) {
		t = s.now
	}
	s.seq++
	heap.Push(&s.queue, &event{at: t, seq: s.seq, fn: fn})
}

// Step runs the next event, advancing the clock. It reports whether an
// event was run.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*event)
	s.now = e.at
	e.fn()
	return true
}

// RunUntil processes events until the queue is empty or the virtual clock
// passes deadline. It returns the number of events processed.
func (s *Scheduler) RunUntil(deadline time.Time) int {
	n := 0
	for len(s.queue) > 0 && !s.queue[0].at.After(deadline) {
		s.Step()
		n++
	}
	if s.now.Before(deadline) {
		s.now = deadline
	}
	return n
}

// RunFor advances the simulation by a virtual duration.
func (s *Scheduler) RunFor(d time.Duration) int {
	return s.RunUntil(s.now.Add(d))
}

// Drain runs events until none remain or the safety cap is hit, returning
// the number processed. The cap guards against event loops that reschedule
// themselves forever.
func (s *Scheduler) Drain(maxEvents int) int {
	n := 0
	for n < maxEvents && s.Step() {
		n++
	}
	return n
}

// Pending returns the number of queued events.
func (s *Scheduler) Pending() int { return len(s.queue) }
