package simnet

import (
	"testing"
	"time"
)

func TestLatencyModelSampleBounds(t *testing.T) {
	s := NewScheduler(3)
	l := LatencyModel{Base: 40 * time.Millisecond, Jitter: 25 * time.Millisecond}
	for i := 0; i < 1000; i++ {
		d := l.sample(s)
		if d < l.Base || d >= l.Base+l.Jitter {
			t.Fatalf("sample %v outside [%v, %v)", d, l.Base, l.Base+l.Jitter)
		}
	}
	// Zero jitter is exactly Base, and must not consume RNG state.
	if (LatencyModel{Base: time.Second}).sample(s) != time.Second {
		t.Fatal("zero-jitter sample != Base")
	}
	a, b := NewScheduler(9), NewScheduler(9)
	(LatencyModel{Base: 7 * time.Millisecond}).sample(a)
	if a.Rand().Int63() != b.Rand().Int63() {
		t.Fatal("zero-jitter sample consumed RNG state")
	}
}

func TestLatencyModelSampleDeterminism(t *testing.T) {
	run := func() []time.Duration {
		s := NewScheduler(77)
		l := LatencyModel{Base: 10 * time.Millisecond, Jitter: 90 * time.Millisecond}
		out := make([]time.Duration, 200)
		for i := range out {
			out[i] = l.sample(s)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestNetworkStatsAccounting checks sent == delivered + dropped once the
// network quiesces, across loss, partitions, and crash faults.
func TestNetworkStatsAccounting(t *testing.T) {
	s := NewScheduler(11)
	n := NewNetwork(s)
	r := &recorder{}
	n.Register("a", &recorder{})
	n.Register("b", r)
	n.SetLossRate(0.3)

	const total = 500
	for i := 0; i < total; i++ {
		if i == 200 {
			n.SetPartition("b", "island")
		}
		if i == 300 {
			n.HealPartitions()
		}
		if i == 350 {
			n.SetDown("b", true)
		}
		if i == 400 {
			n.SetDown("b", false)
		}
		n.Send("a", "b", i)
	}
	s.Drain(total * 2)

	sent, delivered, dropped := n.Stats()
	if sent != total {
		t.Fatalf("sent %d, want %d", sent, total)
	}
	if delivered+dropped != sent {
		t.Fatalf("delivered(%d)+dropped(%d) != sent(%d)", delivered, dropped, sent)
	}
	if int(delivered) != len(r.msgs) {
		t.Fatalf("delivered counter %d != receives %d", delivered, len(r.msgs))
	}
	if delivered == 0 || dropped == 0 {
		t.Fatalf("degenerate run: delivered=%d dropped=%d", delivered, dropped)
	}
}

func TestLinkProfileOverridesDefaults(t *testing.T) {
	s := NewScheduler(5)
	n := NewNetwork(s)
	n.SetLatency(LatencyModel{Base: 10 * time.Millisecond})
	n.SetLossRate(0.999) // default path would drop nearly everything

	var at []time.Time
	n.Register("b", endpointFunc(func(NodeID, any) { at = append(at, s.Now()) }))
	n.SetLinkProfile("a", "b", &LinkProfile{
		Latency: LatencyModel{Base: 250 * time.Millisecond},
	})

	for i := 0; i < 50; i++ {
		n.Send("a", "b", i)
	}
	start := s.Now()
	s.Drain(200)
	// The profile replaces both the loss rate (0 here) and the latency.
	if len(at) != 50 {
		t.Fatalf("delivered %d of 50 over a lossless profiled link", len(at))
	}
	for _, d := range at {
		if d.Sub(start) != 250*time.Millisecond {
			t.Fatalf("delivery at +%v, want +250ms", d.Sub(start))
		}
	}

	// Removing the profile restores the defaults.
	n.SetLinkProfile("a", "b", nil)
	if n.LinkProfileCount() != 0 {
		t.Fatal("profile not removed")
	}
	at = nil
	for i := 0; i < 200; i++ {
		n.Send("a", "b", i)
	}
	s.Drain(500)
	if len(at) > 20 {
		t.Fatalf("default 0.999 loss delivered %d of 200", len(at))
	}
}

func TestLinkProfileDirected(t *testing.T) {
	s := NewScheduler(5)
	n := NewNetwork(s)
	n.SetLatency(LatencyModel{})
	a, b := &recorder{}, &recorder{}
	n.Register("a", a)
	n.Register("b", b)
	// Kill only the a→b direction; b→a stays clean.
	n.SetLinkProfile("a", "b", &LinkProfile{LossRate: 0.9999})
	for i := 0; i < 100; i++ {
		n.Send("a", "b", i)
		n.Send("b", "a", i)
	}
	s.Drain(500)
	if len(a.msgs) != 100 {
		t.Fatalf("reverse direction degraded: %d of 100", len(a.msgs))
	}
	if len(b.msgs) > 10 {
		t.Fatalf("lossy direction delivered %d of 100", len(b.msgs))
	}
}

func TestLinkProfileDuplication(t *testing.T) {
	s := NewScheduler(13)
	n := NewNetwork(s)
	n.SetLatency(LatencyModel{})
	r := &recorder{}
	n.Register("b", r)
	n.SetLinkProfile("a", "b", &LinkProfile{DuplicateRate: 0.5})
	const total = 400
	for i := 0; i < total; i++ {
		n.Send("a", "b", i)
	}
	s.Drain(total * 3)
	if len(r.msgs) <= total+total/4 {
		t.Fatalf("expected ~50%% duplicates, got %d deliveries of %d sends", len(r.msgs), total)
	}
	sent, delivered, dropped := n.Stats()
	if delivered+dropped != sent {
		t.Fatalf("stats broken under duplication: %d+%d != %d", delivered, dropped, sent)
	}
	if int(delivered) != len(r.msgs) {
		t.Fatalf("delivered %d != receives %d", delivered, len(r.msgs))
	}
}

func TestLinkProfileReordering(t *testing.T) {
	s := NewScheduler(21)
	n := NewNetwork(s)
	n.SetLatency(LatencyModel{Base: time.Millisecond})
	r := &recorder{}
	n.Register("b", r)
	n.SetLinkProfile("a", "b", &LinkProfile{
		Latency:      LatencyModel{Base: time.Millisecond},
		ReorderRate:  0.3,
		ReorderDelay: 50 * time.Millisecond,
	})
	const total = 100
	for i := 0; i < total; i++ {
		n.Send("a", "b", i)
		s.RunFor(2 * time.Millisecond)
	}
	s.Drain(total * 2)
	if len(r.msgs) != total {
		t.Fatalf("delivered %d of %d", len(r.msgs), total)
	}
	inversions := 0
	for i := 1; i < len(r.msgs); i++ {
		if r.msgs[i].(int) < r.msgs[i-1].(int) {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatal("no reordering observed at ReorderRate=0.3")
	}
}

func TestLinkProfileSpikeEpisodes(t *testing.T) {
	s := NewScheduler(31)
	n := NewNetwork(s)
	r := &recorder{}
	_ = r
	var delays []time.Duration
	n.Register("b", endpointFunc(func(_ NodeID, msg any) {
		delays = append(delays, s.Now().Sub(msg.(time.Time)))
	}))
	n.SetLinkProfile("a", "b", &LinkProfile{
		Latency:       LatencyModel{Base: 10 * time.Millisecond},
		SpikeRate:     0.1,
		SpikeFactor:   20,
		SpikeDuration: time.Second,
	})
	for i := 0; i < 200; i++ {
		n.Send("a", "b", s.Now())
		s.RunFor(20 * time.Millisecond)
	}
	s.Drain(500)
	spiked, normal := 0, 0
	for _, d := range delays {
		switch d {
		case 10 * time.Millisecond:
			normal++
		case 200 * time.Millisecond:
			spiked++
		default:
			t.Fatalf("unexpected delay %v", d)
		}
	}
	if spiked == 0 || normal == 0 {
		t.Fatalf("expected both spiked and normal deliveries, got %d/%d", spiked, normal)
	}
	// Episodes stretch runs of messages: with SpikeDuration=1s and a message
	// every 20ms, a single episode covers dozens of consecutive sends, so
	// spiked must exceed the per-message entry count implied by rate alone.
	if spiked < 20 {
		t.Fatalf("spike episodes too short: %d spiked deliveries", spiked)
	}
}

func TestLinkProfileFlapping(t *testing.T) {
	s := NewScheduler(41)
	n := NewNetwork(s)
	n.SetLatency(LatencyModel{})
	r := &recorder{}
	n.Register("b", r)
	n.SetLinkProfile("a", "b", &LinkProfile{
		FlapPeriod: 100 * time.Millisecond,
		FlapDown:   40 * time.Millisecond,
	})
	const total = 300
	for i := 0; i < total; i++ {
		n.Send("a", "b", i)
		s.RunFor(time.Millisecond)
	}
	s.Drain(total * 2)
	got := len(r.msgs)
	// ~60% of the cycle is up; allow a wide band.
	if got < total/3 || got > total*5/6 {
		t.Fatalf("flapping link delivered %d of %d", got, total)
	}
	// Down windows are contiguous: the drop pattern must contain a run of
	// ~40 consecutive losses, not i.i.d. noise.
	seen := make(map[int]bool, got)
	for _, m := range r.msgs {
		seen[m.(int)] = true
	}
	longestGap, gap := 0, 0
	for i := 0; i < total; i++ {
		if seen[i] {
			gap = 0
			continue
		}
		gap++
		if gap > longestGap {
			longestGap = gap
		}
	}
	if longestGap < 20 {
		t.Fatalf("losses not bursty (longest run %d); flapping not contiguous", longestGap)
	}
}

// TestLinkProfileDeterminism re-runs a degraded-link workload with equal
// seeds and requires identical delivery traces.
func TestLinkProfileDeterminism(t *testing.T) {
	run := func() []any {
		s := NewScheduler(99)
		n := NewNetwork(s)
		r := &recorder{}
		n.Register("b", r)
		n.SetLinkProfile("a", "b", &LinkProfile{
			Latency:       LatencyModel{Base: 5 * time.Millisecond, Jitter: 45 * time.Millisecond},
			LossRate:      0.2,
			SpikeRate:     0.05,
			SpikeFactor:   10,
			SpikeDuration: 300 * time.Millisecond,
			DuplicateRate: 0.1,
			ReorderRate:   0.2,
			ReorderDelay:  80 * time.Millisecond,
			FlapPeriod:    700 * time.Millisecond,
			FlapDown:      150 * time.Millisecond,
		})
		for i := 0; i < 300; i++ {
			n.Send("a", "b", i)
			s.RunFor(3 * time.Millisecond)
		}
		s.Drain(2000)
		return r.msgs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
