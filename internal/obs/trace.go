package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// defaultTraceCap bounds the tracer's event buffer. Events past the cap are
// counted (Dropped) rather than stored, so an enabled tracer can't grow
// without bound in a long soak.
const defaultTraceCap = 1 << 14

// Event is one tracer record: a timestamp from the owning registry's clock,
// a short name, and an optional detail string.
type Event struct {
	At     time.Time
	Name   string
	Detail string
}

// Tracer is a lightweight event recorder. It is disabled by default — Emit
// is a single atomic-free boolean check until SetEnabled(true) — so
// instrumented hot paths pay nothing when tracing is off. Like the registry
// it reads time through an injectable clock, so traces from seeded runs are
// deterministic.
type Tracer struct {
	mu      sync.Mutex
	enabled bool
	clock   func() time.Time
	cap     int
	events  []Event
	dropped uint64
}

// NewTracer returns a disabled tracer on the wall clock holding at most
// capacity events.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = defaultTraceCap
	}
	return &Tracer{clock: time.Now, cap: capacity}
}

// SetClock installs the tracer's time source (nil restores the wall clock).
func (t *Tracer) SetClock(now func() time.Time) {
	if t == nil {
		return
	}
	if now == nil {
		now = time.Now
	}
	t.mu.Lock()
	t.clock = now
	t.mu.Unlock()
}

// SetEnabled turns event recording on or off. Turning it on does not clear
// previously recorded events; use Reset for that.
func (t *Tracer) SetEnabled(on bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.enabled = on
	t.mu.Unlock()
}

// Enabled reports whether the tracer records events.
func (t *Tracer) Enabled() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.enabled
}

// Reset discards all recorded events and the dropped count.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = nil
	t.dropped = 0
	t.mu.Unlock()
}

// Emit records one event (no-op while disabled). Past the buffer cap the
// event is dropped and counted.
func (t *Tracer) Emit(name, detail string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.enabled {
		return
	}
	if len(t.events) >= t.cap {
		t.dropped++
		return
	}
	t.events = append(t.events, Event{At: t.clock(), Name: name, Detail: detail})
}

// Span records a begin event and returns a func recording the matching end
// event with the elapsed duration (per the tracer clock) in its detail.
// The returned func is safe to call on a nil or disabled tracer.
func (t *Tracer) Span(name string) func() {
	if t == nil || !t.Enabled() {
		return func() {}
	}
	t.mu.Lock()
	start := t.clock()
	t.mu.Unlock()
	t.Emit(name+":begin", "")
	return func() {
		t.mu.Lock()
		elapsed := t.clock().Sub(start)
		t.mu.Unlock()
		t.Emit(name+":end", elapsed.String())
	}
}

// Events copies out the recorded events and the dropped count.
func (t *Tracer) Events() ([]Event, uint64) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...), t.dropped
}

// WriteText renders the recorded events one per line
// ("<unix-nanos> <name> <detail>") plus a trailing dropped-count line when
// events were lost.
func (t *Tracer) WriteText(w io.Writer) error {
	events, dropped := t.Events()
	for _, ev := range events {
		if _, err := fmt.Fprintf(w, "%d %s %s\n", ev.At.UnixNano(), ev.Name, ev.Detail); err != nil {
			return err
		}
	}
	if dropped > 0 {
		if _, err := fmt.Fprintf(w, "# dropped %d events (buffer cap %d)\n", dropped, t.cap); err != nil {
			return err
		}
	}
	return nil
}
