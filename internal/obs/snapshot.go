package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"icbtc/internal/statecodec"
)

// Snapshot is a point-in-time copy of a registry's metrics, in sorted name
// (and label) order. Equal metric values always produce equal snapshots,
// and Encode renders equal snapshots as identical bytes — the property the
// chaos determinism test and the certified get_metrics endpoint rest on.
type Snapshot struct {
	Counters   []CounterPoint
	Gauges     []GaugePoint
	Histograms []HistogramPoint
	Families   []FamilyPoint
}

// CounterPoint is one counter's snapshot.
type CounterPoint struct {
	Name  string
	Value uint64
}

// GaugePoint is one gauge's snapshot.
type GaugePoint struct {
	Name  string
	Value int64
}

// HistogramPoint is one histogram's snapshot: the boundaries, the per-bucket
// counts (underflow first, overflow last — see Histogram), and the running
// count and sum.
type HistogramPoint struct {
	Name   string
	Bounds []int64
	Counts []uint64
	Count  uint64
	Sum    int64
}

// FamilyPoint is one labeled counter family's snapshot, children in sorted
// label order.
type FamilyPoint struct {
	Name   string
	Label  string
	Values []LabelValue
}

// LabelValue is one family child.
type LabelValue struct {
	Value string
	Count uint64
}

// Snapshot copies the registry's current metric values. Counters written
// concurrently with the snapshot land in it or in the next one; consumers
// needing a group-consistent view coordinate externally (queryfleet's
// Stats lock does).
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := append([]*Counter(nil), r.counters...)
	gauges := append([]*Gauge(nil), r.gauges...)
	hists := append([]*Histogram(nil), r.hists...)
	families := append([]*Family(nil), r.families...)
	r.mu.Unlock()

	for _, c := range counters {
		s.Counters = append(s.Counters, CounterPoint{Name: c.name, Value: c.Value()})
	}
	for _, g := range gauges {
		s.Gauges = append(s.Gauges, GaugePoint{Name: g.name, Value: g.Value()})
	}
	for _, h := range hists {
		p := HistogramPoint{
			Name:   h.name,
			Bounds: append([]int64(nil), h.bounds...),
			Counts: make([]uint64, len(h.counts)),
			Count:  h.count.Load(),
			Sum:    h.sum.Load(),
		}
		for i := range h.counts {
			p.Counts[i] = h.counts[i].Load()
		}
		s.Histograms = append(s.Histograms, p)
	}
	for _, f := range families {
		p := FamilyPoint{Name: f.name, Label: f.label}
		f.Do(func(value string, c *Counter) {
			p.Values = append(p.Values, LabelValue{Value: value, Count: c.Value()})
		})
		s.Families = append(s.Families, p)
	}
	s.sortByName()
	return s
}

// sortByName orders every section by metric name (family children are
// already label-sorted by Family.Do / Merge).
func (s *Snapshot) sortByName() {
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	sort.Slice(s.Families, func(i, j int) bool { return s.Families[i].Name < s.Families[j].Name })
}

// Quantile estimates the q = num/den quantile from the bucket counts with
// the nearest-rank rule (target index Count*num/den, matching the exact
// order-statistic formula in SummarizeDurations). The estimate is the
// containing bucket's boundary: the exclusive upper boundary for interior
// and underflow buckets, the top boundary for the overflow bucket — a
// deterministic, conservative-by-one-bucket figure.
func (p *HistogramPoint) Quantile(num, den int) int64 {
	if p == nil || p.Count == 0 || den <= 0 {
		return 0
	}
	target := p.Count * uint64(num) / uint64(den)
	var cum uint64
	for i, c := range p.Counts {
		cum += c
		if cum > target {
			if i >= len(p.Bounds) {
				return p.Bounds[len(p.Bounds)-1]
			}
			return p.Bounds[i]
		}
	}
	return p.Bounds[len(p.Bounds)-1]
}

// Mean returns the average observed value (0 when empty).
func (p *HistogramPoint) Mean() int64 {
	if p == nil || p.Count == 0 {
		return 0
	}
	return p.Sum / int64(p.Count)
}

// snapshotMagic brands (and versions) the canonical snapshot encoding.
const snapshotMagic = "icbtc/obs-snapshot\n"

// snapshotVersion is the current encoding version.
const snapshotVersion uint16 = 1

// Bounds on decoded section sizes — corrupt-input guards, far above any
// real registry.
const (
	maxSnapshotMetrics = 1 << 16
	maxSnapshotBuckets = 1 << 10
	maxMetricName      = 1 << 10
)

// Encode serializes the snapshot canonically via statecodec (versioned,
// checksummed, no map walks): equal snapshots encode to identical bytes, so
// the encoding is certifiable and comparable across runs.
func (s *Snapshot) Encode() []byte {
	e := statecodec.NewEncoder(snapshotMagic, snapshotVersion, 1024)
	e.Uvarint(uint64(len(s.Counters)))
	for _, c := range s.Counters {
		e.String(c.Name)
		e.U64(c.Value)
	}
	e.Uvarint(uint64(len(s.Gauges)))
	for _, g := range s.Gauges {
		e.String(g.Name)
		e.I64(g.Value)
	}
	e.Uvarint(uint64(len(s.Histograms)))
	for _, h := range s.Histograms {
		e.String(h.Name)
		e.Uvarint(uint64(len(h.Bounds)))
		for _, b := range h.Bounds {
			e.I64(b)
		}
		for _, c := range h.Counts {
			e.U64(c)
		}
		e.U64(h.Count)
		e.I64(h.Sum)
	}
	e.Uvarint(uint64(len(s.Families)))
	for _, f := range s.Families {
		e.String(f.Name)
		e.String(f.Label)
		e.Uvarint(uint64(len(f.Values)))
		for _, v := range f.Values {
			e.String(v.Value)
			e.U64(v.Count)
		}
	}
	return e.Finish()
}

// DecodeSnapshot parses an Encode output.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	d, err := statecodec.NewDecoder(data, snapshotMagic, snapshotVersion)
	if err != nil {
		return nil, fmt.Errorf("obs: snapshot: %w", err)
	}
	s := &Snapshot{}
	for i, n := 0, d.CountFor(maxSnapshotMetrics, 9); i < n; i++ {
		s.Counters = append(s.Counters, CounterPoint{Name: d.String(maxMetricName), Value: d.U64()})
	}
	for i, n := 0, d.CountFor(maxSnapshotMetrics, 9); i < n; i++ {
		s.Gauges = append(s.Gauges, GaugePoint{Name: d.String(maxMetricName), Value: d.I64()})
	}
	for i, n := 0, d.CountFor(maxSnapshotMetrics, 18); i < n; i++ {
		h := HistogramPoint{Name: d.String(maxMetricName)}
		nb := d.CountFor(maxSnapshotBuckets, 8)
		for j := 0; j < nb; j++ {
			h.Bounds = append(h.Bounds, d.I64())
		}
		h.Counts = make([]uint64, nb+1)
		for j := range h.Counts {
			h.Counts[j] = d.U64()
		}
		h.Count = d.U64()
		h.Sum = d.I64()
		s.Histograms = append(s.Histograms, h)
		if d.Err() != nil {
			return nil, fmt.Errorf("obs: snapshot histogram %d: %w", i, d.Err())
		}
	}
	for i, n := 0, d.CountFor(maxSnapshotMetrics, 3); i < n; i++ {
		f := FamilyPoint{Name: d.String(maxMetricName), Label: d.String(maxMetricName)}
		for j, nv := 0, d.CountFor(maxSnapshotMetrics, 9); j < nv; j++ {
			f.Values = append(f.Values, LabelValue{Value: d.String(maxMetricName), Count: d.U64()})
		}
		s.Families = append(s.Families, f)
		if d.Err() != nil {
			return nil, fmt.Errorf("obs: snapshot family %d: %w", i, d.Err())
		}
	}
	if err := d.Close(); err != nil {
		return nil, fmt.Errorf("obs: snapshot: %w", err)
	}
	return s, nil
}

// Merge combines snapshots (typically one per subsystem registry) into one:
// counters, histogram buckets, and family children with equal names sum;
// gauges sum as well (subsystems prefix their names, so same-name gauges
// only meet when they mean the same quantity). Merging is commutative —
// any permutation of the inputs encodes to identical bytes. Histograms
// sharing a name must share boundaries.
func Merge(snaps ...*Snapshot) (*Snapshot, error) {
	counters := map[string]uint64{}
	gauges := map[string]int64{}
	hists := map[string]*HistogramPoint{}
	families := map[string]*FamilyPoint{}
	for _, s := range snaps {
		if s == nil {
			continue
		}
		for _, c := range s.Counters {
			counters[c.Name] += c.Value
		}
		for _, g := range s.Gauges {
			gauges[g.Name] += g.Value
		}
		for _, h := range s.Histograms {
			prev, ok := hists[h.Name]
			if !ok {
				cp := h
				cp.Bounds = append([]int64(nil), h.Bounds...)
				cp.Counts = append([]uint64(nil), h.Counts...)
				hists[h.Name] = &cp
				continue
			}
			if len(prev.Bounds) != len(h.Bounds) {
				return nil, fmt.Errorf("obs: merge: histogram %s boundary mismatch", h.Name)
			}
			for i := range prev.Bounds {
				if prev.Bounds[i] != h.Bounds[i] {
					return nil, fmt.Errorf("obs: merge: histogram %s boundary mismatch", h.Name)
				}
			}
			for i := range prev.Counts {
				prev.Counts[i] += h.Counts[i]
			}
			prev.Count += h.Count
			prev.Sum += h.Sum
		}
		for _, f := range s.Families {
			prev, ok := families[f.Name]
			if !ok {
				cp := FamilyPoint{Name: f.Name, Label: f.Label}
				cp.Values = append(cp.Values, f.Values...)
				families[f.Name] = &cp
				continue
			}
			for _, v := range f.Values {
				found := false
				for i := range prev.Values {
					if prev.Values[i].Value == v.Value {
						prev.Values[i].Count += v.Count
						found = true
						break
					}
				}
				if !found {
					prev.Values = append(prev.Values, v)
				}
			}
		}
	}
	out := &Snapshot{}
	for name, v := range counters {
		out.Counters = append(out.Counters, CounterPoint{Name: name, Value: v})
	}
	for name, v := range gauges {
		out.Gauges = append(out.Gauges, GaugePoint{Name: name, Value: v})
	}
	for _, h := range hists {
		out.Histograms = append(out.Histograms, *h)
	}
	for _, f := range families {
		sort.Slice(f.Values, func(i, j int) bool { return f.Values[i].Value < f.Values[j].Value })
		out.Families = append(out.Families, *f)
	}
	out.sortByName()
	return out, nil
}

// WriteProm renders the snapshot as Prometheus text exposition (counters,
// gauges, and cumulative histogram buckets with le labels), in snapshot
// order — sorted, so the output is deterministic too.
func (s *Snapshot) WriteProm(w io.Writer) error {
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", c.Name, c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, f := range s.Families {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", f.Name); err != nil {
			return err
		}
		for _, v := range f.Values {
			if _, err := fmt.Fprintf(w, "%s{%s=%q} %d\n", f.Name, f.Label, v.Value, v.Count); err != nil {
				return err
			}
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", g.Name, g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", h.Name); err != nil {
			return err
		}
		var cum uint64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = strconv.FormatInt(h.Bounds[i], 10)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.Name, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", h.Name, h.Sum, h.Name, h.Count); err != nil {
			return err
		}
	}
	return nil
}
