package obs

import (
	"sort"
	"time"
)

// DurationSummary is an exact order-statistic summary of a duration sample
// set. Unlike HistogramPoint.Quantile (bucketed, streaming), this is
// computed from the full retained sample slice — the shape the experiment
// reports need, where samples are small and exactness matters because the
// figures are compared against pinned baselines.
type DurationSummary struct {
	N    int
	Min  time.Duration
	Mean time.Duration
	P50  time.Duration
	P90  time.Duration
	P99  time.Duration
	P999 time.Duration
	Max  time.Duration
}

// SummarizeDurations sorts samples in place and returns the summary. The
// percentile rule is the nearest-rank index formula s[n*k/100] that the
// experiment reports have always used (P50 = s[n/2], P90 = s[n*9/10],
// P99 = s[n*99/100], P999 = s[n*999/1000]), kept verbatim so deduplicating
// the three hand-rolled copies onto this helper moves no reported value.
func SummarizeDurations(samples []time.Duration) DurationSummary {
	n := len(samples)
	if n == 0 {
		return DurationSummary{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum time.Duration
	for _, d := range samples {
		sum += d
	}
	return DurationSummary{
		N:    n,
		Min:  samples[0],
		Mean: sum / time.Duration(n),
		P50:  samples[n/2],
		P90:  samples[n*9/10],
		P99:  samples[n*99/100],
		P999: samples[n*999/1000],
		Max:  samples[n-1],
	}
}

// MedianU64 sorts samples in place and returns s[n/2] (0 when empty) — the
// same rule fig7's medianU64 used.
func MedianU64(samples []uint64) uint64 {
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[len(samples)/2]
}
