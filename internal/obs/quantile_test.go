package obs

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestSummarizeDurationsMatchesLegacyFormulas pins SummarizeDurations to the
// exact integer-index percentile formulas the experiment reports used before
// deduplicating onto this helper (latency.go stats(), fleetload.go and the
// queryfleet experiment's percentile blocks, fig7.go medianDur). If this
// test fails, reported figure values have moved.
func TestSummarizeDurationsMatchesLegacyFormulas(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, n := range []int{1, 2, 7, 100, 1234, 5000} {
		samples := make([]time.Duration, n)
		for i := range samples {
			samples[i] = time.Duration(rng.Int63n(int64(3 * time.Second)))
		}

		// The legacy computation, inlined verbatim.
		legacy := append([]time.Duration(nil), samples...)
		sort.Slice(legacy, func(i, j int) bool { return legacy[i] < legacy[j] })
		var sum time.Duration
		for _, d := range legacy {
			sum += d
		}
		wantMin := legacy[0]
		wantMean := sum / time.Duration(n)
		wantP50 := legacy[n/2]
		wantP90 := legacy[n*9/10]
		wantP99 := legacy[n*99/100]
		wantP999 := legacy[n*999/1000]
		wantMax := legacy[n-1]

		got := SummarizeDurations(samples)
		if got.N != n || got.Min != wantMin || got.Mean != wantMean ||
			got.P50 != wantP50 || got.P90 != wantP90 ||
			got.P99 != wantP99 || got.P999 != wantP999 || got.Max != wantMax {
			t.Fatalf("n=%d: got %+v want min=%v mean=%v p50=%v p90=%v p99=%v p999=%v max=%v",
				n, got, wantMin, wantMean, wantP50, wantP90, wantP99, wantP999, wantMax)
		}
	}

	if got := SummarizeDurations(nil); got != (DurationSummary{}) {
		t.Fatalf("empty: got %+v", got)
	}
}

func TestMedianU64MatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 5, 100} {
		samples := make([]uint64, n)
		for i := range samples {
			samples[i] = rng.Uint64() % 1000
		}
		legacy := append([]uint64(nil), samples...)
		sort.Slice(legacy, func(i, j int) bool { return legacy[i] < legacy[j] })
		want := legacy[n/2]
		if got := MedianU64(samples); got != want {
			t.Fatalf("n=%d: got %d want %d", n, got, want)
		}
	}
	if MedianU64(nil) != 0 {
		t.Fatal("empty: want 0")
	}
}
