// Package obs is the deterministic observability layer: a typed,
// allocation-conscious metrics registry (monotonic counters, gauges,
// fixed-bucket histograms, labeled counter families) plus a lightweight
// event tracer.
//
// Determinism is the design constraint the usual metrics libraries don't
// have: the chaos and differential harnesses assert on telemetry itself, so
// two same-seed runs must produce bit-identical encoded snapshots. Three
// rules make that hold:
//
//   - Every time read goes through the registry clock (SetClock). Seeded
//     drivers (simnet/chaos/difftest) install the scheduler's virtual
//     clock, so durations are virtual-time deltas — identical per seed.
//     Unseeded drivers keep the wall-clock default.
//   - Snapshots iterate every metric in sorted name (and label) order, and
//     the statecodec encoding (snapshot.go) has no map walks — byte output
//     is a pure function of the metric values.
//   - Nothing samples goroutine-scheduling state (queue depths observed
//     from channel lengths, and the like): a metric whose value depends on
//     the schedule can never be bit-identical across runs.
//
// Hot-path cost: Counter.Add is one atomic add; Histogram.Observe is a
// short binary search plus three atomic adds. Both are pinned by benchmarks
// gated in CI (BenchmarkObsCounterAdd, BenchmarkObsHistogramObserve). Every
// type is nil-receiver safe, so optional instrumentation needs no guards.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds one subsystem's metrics. Each instrumented component
// (canister, adapter, fleet) owns its own registry — a fresh registry per
// instance is what keeps seeded runs independent of test ordering — and
// prefixes its metric names (canister_*, adapter_*, fleet_*) so snapshots
// merge without collisions.
type Registry struct {
	clock  atomic.Value // func() time.Time
	tracer *Tracer

	mu     sync.Mutex
	byName map[string]any // registration index (duplicate-name guard)

	counters []*Counter
	gauges   []*Gauge
	hists    []*Histogram
	families []*Family
}

// NewRegistry returns an empty registry on the wall clock, with a disabled
// tracer attached.
func NewRegistry() *Registry {
	r := &Registry{byName: make(map[string]any), tracer: NewTracer(defaultTraceCap)}
	r.clock.Store(time.Now)
	return r
}

// SetClock installs the registry's (and its tracer's) time source — the
// seeded scheduler's Now in deterministic runs. nil restores the wall clock.
func (r *Registry) SetClock(now func() time.Time) {
	if r == nil {
		return
	}
	if now == nil {
		now = time.Now
	}
	r.clock.Store(now)
	r.tracer.SetClock(now)
}

// Now reads the registry clock. All instrumentation timing must use it —
// never time.Now directly — so seeded runs stay deterministic.
func (r *Registry) Now() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.clock.Load().(func() time.Time)()
}

// Tracer returns the registry's event tracer.
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// Trace emits one tracer event (no-op unless the tracer is enabled).
func (r *Registry) Trace(name, detail string) { r.Tracer().Emit(name, detail) }

// register indexes a new metric under its name, panicking on duplicates —
// a duplicate registration is a wiring bug, not a runtime condition.
func (r *Registry) register(name string, m any) {
	if _, dup := r.byName[name]; dup {
		panic("obs: duplicate metric " + name)
	}
	r.byName[name] = m
}

// Counter returns the registered counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		return m.(*Counter)
	}
	c := &Counter{name: name}
	r.register(name, c)
	r.counters = append(r.counters, c)
	return c
}

// Gauge returns the registered gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		return m.(*Gauge)
	}
	g := &Gauge{name: name}
	r.register(name, g)
	r.gauges = append(r.gauges, g)
	return g
}

// Histogram returns the registered histogram, creating it with the given
// bucket boundaries on first use (later calls ignore bounds). Boundaries
// must be strictly ascending; see NewHistogramBuckets for the semantics.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		return m.(*Histogram)
	}
	h := newHistogram(name, bounds)
	r.register(name, h)
	r.hists = append(r.hists, h)
	return h
}

// Family returns the registered labeled counter family, creating it on
// first use. label is the single label key (e.g. "method", "class").
func (r *Registry) Family(name, label string) *Family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		return m.(*Family)
	}
	f := &Family{name: name, label: label, children: make(map[string]*Counter)}
	r.register(name, f)
	r.families = append(r.families, f)
	return f
}

// Counter is a monotonic uint64 counter. Add is one atomic add.
type Counter struct {
	v    atomic.Uint64
	name string
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 value.
type Gauge struct {
	v    atomic.Int64
	name string
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram over int64 values (durations are
// observed as nanoseconds). Boundaries B0 < B1 < ... < B(m-1) define m+1
// buckets:
//
//	counts[0]   — the underflow bucket, v < B0
//	counts[i]   — B(i-1) <= v < B(i)   (boundary values round DOWN-bucket:
//	              an observation exactly at B(i) lands in the bucket whose
//	              lower bound it is)
//	counts[m]   — the overflow bucket, v >= B(m-1)
//
// Observe is allocation-free: a binary search over the boundaries plus
// three atomic adds.
type Histogram struct {
	name   string
	bounds []int64
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
}

func newHistogram(name string, bounds []int64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram " + name + " needs at least one bucket boundary")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram " + name + " boundaries must be strictly ascending")
		}
	}
	return &Histogram{
		name:   name,
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// First i with v < bounds[i]: 0 is the underflow bucket, len(bounds)
	// the overflow bucket.
	i := sort.Search(len(h.bounds), func(i int) bool { return v < h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Family is a set of counters sharing one metric name, distinguished by a
// single label. Children are created on first use; iteration (and the
// snapshot) is always in sorted label order, regardless of insertion order.
type Family struct {
	name, label string

	mu       sync.RWMutex
	children map[string]*Counter
}

// With returns the child counter for one label value, creating it on first
// use. The read path is an RLock map hit.
func (f *Family) With(value string) *Counter {
	if f == nil {
		return nil
	}
	f.mu.RLock()
	c := f.children[value]
	f.mu.RUnlock()
	if c != nil {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c := f.children[value]; c != nil {
		return c
	}
	c = &Counter{name: f.name + "{" + f.label + "=" + value + "}"}
	f.children[value] = c
	return c
}

// Do calls fn for every child in sorted label order — the deterministic
// iteration every consumer (snapshot, exposition) goes through.
func (f *Family) Do(fn func(value string, c *Counter)) {
	if f == nil {
		return
	}
	f.mu.RLock()
	labels := make([]string, 0, len(f.children))
	for v := range f.children {
		labels = append(labels, v)
	}
	f.mu.RUnlock()
	sort.Strings(labels)
	for _, v := range labels {
		f.mu.RLock()
		c := f.children[v]
		f.mu.RUnlock()
		fn(v, c)
	}
}

// DurationBuckets are the default boundaries for duration histograms, in
// nanoseconds: 100µs to 10s, roughly 3x apart. The underflow bucket absorbs
// sub-100µs observations — including the all-zero durations a virtual clock
// produces in seeded runs.
var DurationBuckets = []int64{
	100_000, 300_000, // 100µs, 300µs
	1_000_000, 3_000_000, // 1ms, 3ms
	10_000_000, 30_000_000, // 10ms, 30ms
	100_000_000, 300_000_000, // 100ms, 300ms
	1_000_000_000, 3_000_000_000, 10_000_000_000, // 1s, 3s, 10s
}
