package obs

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketEdges(t *testing.T) {
	bounds := []int64{10, 20, 40}
	h := newHistogram("h", bounds)

	// Underflow: strictly below the first boundary.
	h.Observe(-5)
	h.Observe(0)
	h.Observe(9)
	// Exact boundary values land in the bucket whose LOWER bound they are.
	h.Observe(10)
	h.Observe(19)
	h.Observe(20)
	h.Observe(39)
	// Overflow: at or above the last boundary.
	h.Observe(40)
	h.Observe(1 << 40)

	want := []uint64{3, 2, 2, 2}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d: got %d want %d", i, got, w)
		}
	}
	if h.Count() != 9 {
		t.Errorf("count: got %d want 9", h.Count())
	}
	wantSum := int64(-5 + 0 + 9 + 10 + 19 + 20 + 39 + 40 + (1 << 40))
	if got := h.sum.Load(); got != wantSum {
		t.Errorf("sum: got %d want %d", got, wantSum)
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	for _, bounds := range [][]int64{nil, {}, {5, 5}, {5, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v: expected panic", bounds)
				}
			}()
			newHistogram("bad", bounds)
		}()
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []int64{10, 100, 1000})
	for i := 0; i < 90; i++ {
		h.Observe(5) // underflow bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(500) // third bucket (100 <= v < 1000)
	}
	s := r.Snapshot()
	p := s.Histograms[0]
	if got := p.Quantile(50, 100); got != 10 {
		t.Errorf("p50: got %d want 10 (underflow bucket upper bound)", got)
	}
	if got := p.Quantile(99, 100); got != 1000 {
		t.Errorf("p99: got %d want 1000", got)
	}
	var empty HistogramPoint
	if got := empty.Quantile(50, 100); got != 0 {
		t.Errorf("empty: got %d want 0", got)
	}
}

// TestFamilySortedIterationDeterminism: whatever order labels are inserted
// in (and whatever order Go's map would walk them), Do and the snapshot see
// them sorted.
func TestFamilySortedIterationDeterminism(t *testing.T) {
	labels := []string{"delta", "alpha", "echo", "bravo", "charlie", "foxtrot", "golf"}
	rng := rand.New(rand.NewSource(42))
	var first []string
	for trial := 0; trial < 20; trial++ {
		r := NewRegistry()
		f := r.Family("fam_total", "kind")
		shuffled := append([]string(nil), labels...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		for i, l := range shuffled {
			f.With(l).Add(uint64(i + 1))
		}
		var seen []string
		f.Do(func(value string, c *Counter) { seen = append(seen, value) })
		if trial == 0 {
			first = seen
			for i := 1; i < len(seen); i++ {
				if seen[i-1] >= seen[i] {
					t.Fatalf("iteration not sorted: %v", seen)
				}
			}
			continue
		}
		if len(seen) != len(first) {
			t.Fatalf("trial %d: got %v want %v", trial, seen, first)
		}
		for i := range seen {
			if seen[i] != first[i] {
				t.Fatalf("trial %d: got %v want %v", trial, seen, first)
			}
		}
	}
}

// TestSnapshotEncodeDeterminism: registering metrics in different orders
// still encodes to identical bytes when the values match.
func TestSnapshotEncodeDeterminism(t *testing.T) {
	build := func(order []int) *Registry {
		r := NewRegistry()
		ops := []func(){
			func() { r.Counter("c_one").Add(3) },
			func() { r.Counter("c_two").Add(7) },
			func() { r.Gauge("g_one").Set(-4) },
			func() { r.Histogram("h_one", []int64{10, 100}).Observe(55) },
			func() { r.Family("f_one", "k").With("b").Add(2) },
			func() { r.Family("f_one", "k").With("a").Add(1) },
		}
		for _, i := range order {
			ops[i]()
		}
		return r
	}
	a := build([]int{0, 1, 2, 3, 4, 5}).Snapshot().Encode()
	b := build([]int{5, 3, 1, 4, 2, 0}).Snapshot().Encode()
	if !bytes.Equal(a, b) {
		t.Fatal("snapshots of equal registries differ by registration order")
	}
}

func TestSnapshotEncodeDecodeRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total").Add(12)
	r.Gauge("tip_height").Set(840_000)
	h := r.Histogram("latency_ns", DurationBuckets)
	h.Observe(250_000)
	h.Observe(2_000_000)
	h.Observe(50_000_000_000) // overflow
	r.Family("calls_total", "method").With("get_utxos").Add(9)
	r.Family("calls_total", "method").With("get_tip").Add(4)

	s := r.Snapshot()
	enc := s.Encode()
	got, err := DecodeSnapshot(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(got.Encode(), enc) {
		t.Fatal("re-encode of decoded snapshot differs")
	}
	if len(got.Counters) != 1 || got.Counters[0].Value != 12 {
		t.Fatalf("counters: %+v", got.Counters)
	}
	if len(got.Families) != 1 || len(got.Families[0].Values) != 2 || got.Families[0].Values[0].Value != "get_tip" {
		t.Fatalf("families: %+v", got.Families)
	}
	if _, err := DecodeSnapshot(enc[:len(enc)-2]); err == nil {
		t.Fatal("truncated snapshot decoded without error")
	}
}

// TestMergeDeterminism: merging any permutation of snapshots yields
// identical bytes, and values sum.
func TestMergeDeterminism(t *testing.T) {
	mk := func(seed int64) *Snapshot {
		r := NewRegistry()
		rng := rand.New(rand.NewSource(seed))
		r.Counter("a_total").Add(uint64(rng.Intn(100)))
		r.Counter("b_total").Add(uint64(rng.Intn(100)))
		r.Gauge("g").Add(int64(rng.Intn(50)))
		h := r.Histogram("h", []int64{10, 100})
		for i := 0; i < 20; i++ {
			h.Observe(int64(rng.Intn(200)))
		}
		f := r.Family("f_total", "k")
		for _, l := range []string{"x", "y", "z"} {
			f.With(l).Add(uint64(rng.Intn(10)))
		}
		return r.Snapshot()
	}
	s1, s2, s3 := mk(1), mk(2), mk(3)
	m1, err := Merge(s1, s2, s3)
	if err != nil {
		t.Fatal(err)
	}
	perms := [][]*Snapshot{{s2, s3, s1}, {s3, s1, s2}, {s3, s2, s1}, {s1, s3, s2}}
	for i, p := range perms {
		m, err := Merge(p...)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(m.Encode(), m1.Encode()) {
			t.Fatalf("permutation %d: merged bytes differ", i)
		}
	}
	// Values sum.
	wantA := s1.Counters[0].Value + s2.Counters[0].Value + s3.Counters[0].Value
	if m1.Counters[0].Name != "a_total" || m1.Counters[0].Value != wantA {
		t.Fatalf("merged a_total: %+v want %d", m1.Counters[0], wantA)
	}
	wantH := s1.Histograms[0].Count + s2.Histograms[0].Count + s3.Histograms[0].Count
	if m1.Histograms[0].Count != wantH {
		t.Fatalf("merged histogram count: %d want %d", m1.Histograms[0].Count, wantH)
	}

	// Boundary mismatch is an error, not a silent corruption.
	r := NewRegistry()
	r.Histogram("h", []int64{5, 50}).Observe(7)
	if _, err := Merge(s1, r.Snapshot()); err == nil {
		t.Fatal("merge with mismatched histogram bounds should error")
	}
}

func TestRegistryClockAndTracer(t *testing.T) {
	r := NewRegistry()
	at := time.Unix(100, 0)
	r.SetClock(func() time.Time { return at })
	if !r.Now().Equal(at) {
		t.Fatalf("Now: got %v want %v", r.Now(), at)
	}

	tr := r.Tracer()
	tr.Emit("ignored", "") // disabled: no-op
	tr.SetEnabled(true)
	end := tr.Span("work")
	at = at.Add(5 * time.Millisecond)
	end()
	events, dropped := tr.Events()
	if dropped != 0 || len(events) != 2 {
		t.Fatalf("events: %v dropped %d", events, dropped)
	}
	if events[0].Name != "work:begin" || events[1].Name != "work:end" {
		t.Fatalf("event names: %q %q", events[0].Name, events[1].Name)
	}
	if events[1].Detail != "5ms" {
		t.Fatalf("span detail: %q want 5ms", events[1].Detail)
	}
	if !events[0].At.Equal(time.Unix(100, 0)) {
		t.Fatalf("event stamped %v, want injected clock time", events[0].At)
	}

	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("WriteText wrote nothing")
	}
}

func TestTracerCapDrops(t *testing.T) {
	tr := NewTracer(4)
	tr.SetEnabled(true)
	for i := 0; i < 10; i++ {
		tr.Emit("e", "")
	}
	events, dropped := tr.Events()
	if len(events) != 4 || dropped != 6 {
		t.Fatalf("got %d events %d dropped, want 4/6", len(events), dropped)
	}
}

func TestNilReceiversSafe(t *testing.T) {
	var r *Registry
	r.SetClock(nil)
	r.Trace("x", "y")
	if r.Counter("c") != nil || r.Gauge("g") != nil || r.Family("f", "k") != nil {
		t.Fatal("nil registry should return nil metrics")
	}
	if r.Histogram("h", nil) != nil {
		t.Fatal("nil registry should return nil histogram")
	}
	var c *Counter
	c.Add(1)
	c.Inc()
	_ = c.Value()
	var g *Gauge
	g.Set(1)
	g.Add(1)
	_ = g.Value()
	var h *Histogram
	h.Observe(1)
	h.ObserveDuration(time.Second)
	_ = h.Count()
	var f *Family
	if f.With("x") != nil {
		t.Fatal("nil family should return nil child")
	}
	f.Do(func(string, *Counter) { t.Fatal("nil family should not iterate") })
	var tr *Tracer
	tr.Emit("x", "")
	tr.SetEnabled(true)
	tr.SetClock(nil)
	tr.Span("s")()
	tr.Reset()
	if s := r.Snapshot(); s == nil || len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot should be empty, not nil")
	}
}

func TestRegistryDuplicateTypePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic registering gauge under a counter's name")
		}
	}()
	r.Gauge("x")
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := r.Counter("c_total")
			h := r.Histogram("h", DurationBuckets)
			f := r.Family("f_total", "worker")
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(int64(j))
				f.With(string(rune('a' + i%4))).Inc()
				if j%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(i)
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters[0].Value != 8000 {
		t.Fatalf("counter: got %d want 8000", s.Counters[0].Value)
	}
	if s.Histograms[0].Count != 8000 {
		t.Fatalf("histogram: got %d want 8000", s.Histograms[0].Count)
	}
}

func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total").Add(5)
	r.Gauge("height").Set(10)
	r.Histogram("lat", []int64{100, 200}).Observe(150)
	r.Family("calls_total", "method").With("get_tip").Add(2)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"req_total 5",
		"height 10",
		`calls_total{method="get_tip"} 2`,
		`lat_bucket{le="200"} 1`,
		`lat_bucket{le="+Inf"} 1`,
		"lat_sum 150",
		"lat_count 1",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
