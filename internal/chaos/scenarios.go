package chaos

import (
	"fmt"
	"sort"
	"time"

	"icbtc/internal/simnet"
)

// Scenario is one named fault schedule. Step runs at the start of every
// harness round (before the round's block is mined) and injects or heals
// faults by reaching into the World.
type Scenario struct {
	Name        string
	Description string
	// DivergentByDesign marks scenarios whose final state is allowed to
	// differ from the oracle's. Every current scenario must end
	// byte-identical; the flag exists so a future scenario that
	// intentionally forks (e.g. a >f-faulty subnet) can document it.
	DivergentByDesign bool
	Step              func(w *World, round int) error
}

var registry = map[string]Scenario{}

// Register adds a scenario to the registry (panics on duplicates — the
// registry is assembled at init time).
func Register(s Scenario) {
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("chaos: duplicate scenario %q", s.Name))
	}
	registry[s.Name] = s
}

// Names returns all registered scenario names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Lookup returns a scenario by name.
func Lookup(name string) (Scenario, bool) {
	s, ok := registry[name]
	return s, ok
}

// Fault schedule shape shared by the network scenarios: inject at round 5,
// heal at round 25, leaving 35 rounds to reconverge.
const (
	injectRound = 5
	healRound   = 25
)

// rotateOutAdversaries drops every adversarial connection, one per call
// site round, letting the low-water refill (which excludes the dropped
// peer) rotate honest peers back in.
func rotateOutAdversaries(w *World) {
	for _, p := range w.Adapter.ConnectedPeers() {
		if w.IsAdversary(p) {
			w.Adapter.DropConnection(p)
		}
	}
}

// adversaryIDs returns the IDs of all adversarial nodes.
func adversaryIDs(w *World) []simnet.NodeID {
	ids := make([]simnet.NodeID, 0, len(w.Sim.Adversaries))
	for _, adv := range w.Sim.Adversaries {
		ids = append(ids, adv.Node.ID)
	}
	return ids
}

func init() {
	Register(Scenario{
		Name: "eclipse",
		Description: "adapter's whole peer set replaced by silent adversaries; " +
			"heals by rotating peers out through DropConnection",
		Step: func(w *World, round int) error {
			switch {
			case round == 0:
				for _, adv := range w.Sim.Adversaries {
					adv.SetSilent(true)
				}
			case round == injectRound:
				w.EclipseAdapter(adversaryIDs(w))
			case round >= healRound:
				w.SetHealed(healRound)
				rotateOutAdversaries(w)
			}
			return nil
		},
	})

	Register(Scenario{
		Name: "partition",
		Description: "adapter partitioned away from the whole Bitcoin network, " +
			"then the partition heals; in-flight block requests must be retried",
		Step: func(w *World, round int) error {
			switch round {
			case injectRound:
				w.Net.SetPartition(w.Adapter.ID, "dark")
			case healRound:
				w.Net.HealPartitions()
				w.SetHealed(healRound)
			}
			return nil
		},
	})

	Register(Scenario{
		Name: "withhold",
		Description: "adapter eclipsed by peers that announce headers but never " +
			"serve blocks (withholding); retry logic recovers the downloads after heal",
		Step: func(w *World, round int) error {
			switch {
			case round == 0:
				for _, adv := range w.Sim.Adversaries {
					adv.SetWithholdData(true)
				}
			case round == injectRound:
				w.EclipseAdapter(adversaryIDs(w))
			case round == healRound:
				for _, adv := range w.Sim.Adversaries {
					adv.SetWithholdData(false)
				}
				w.SetHealed(healRound)
			}
			return nil
		},
	})

	Register(Scenario{
		Name: "invalid-blocks",
		Description: "adapter eclipsed by peers serving blocks whose merkle root " +
			"does not cover their transactions; every one must be rejected",
		Step: func(w *World, round int) error {
			switch {
			case round == 0:
				for _, adv := range w.Sim.Adversaries {
					adv.SetCorruptBlocks(true)
				}
			case round == injectRound:
				w.EclipseAdapter(adversaryIDs(w))
			case round == healRound:
				for _, adv := range w.Sim.Adversaries {
					adv.SetCorruptBlocks(false)
				}
				w.SetHealed(healRound)
			}
			return nil
		},
	})

	Register(Scenario{
		Name: "stale-peers",
		Description: "adapter eclipsed by peers whose chain view froze at inject " +
			"time; they keep serving an ever-staler chain until thawed",
		Step: func(w *World, round int) error {
			switch round {
			case injectRound:
				for _, adv := range w.Sim.Adversaries {
					adv.SetFrozen(true)
				}
				w.EclipseAdapter(adversaryIDs(w))
			case healRound:
				for _, adv := range w.Sim.Adversaries {
					adv.SetFrozen(false)
				}
				w.SetHealed(healRound)
			}
			return nil
		},
	})

	Register(Scenario{
		Name: "deep-reorg",
		Description: "adversary mines a private fork branching below the δ-stable " +
			"anchor and feeds it to the adapter; the anchor must never roll back",
		Step: func(w *World, round int) error {
			adv := w.Sim.Adversaries[0]
			switch round {
			case 10:
				// Branch two blocks BELOW the current anchor — deeper than δ —
				// and overtake the honest tip at fork time.
				anchor := w.Canister().AnchorHeight()
				target := anchor - 2
				if target < 0 {
					target = 0
				}
				honestTip := w.Sim.Nodes[0].BestTip()
				base := honestTip
				for base.Height > target {
					base = base.Parent()
				}
				length := int(honestTip.Height-base.Height) + 3
				if err := adv.MinePrivateFork(base.Hash, length, nil); err != nil {
					return fmt.Errorf("private fork: %w", err)
				}
				adv.SetServeForkOnly(true)
				w.Adapter.ConnectPeer(adv.Node.ID)
			case healRound:
				// The attack must actually have been delivered: the fork's
				// headers reached the adapter's tree (the canister then
				// refused to follow them — checked by anchor monotonicity
				// and oracle equivalence every round).
				tip := adv.ForkTip()
				if tip == nil || !w.Adapter.Tree().Contains(tip.Hash) {
					return fmt.Errorf("adversarial fork never reached the adapter's header tree")
				}
				adv.SetServeForkOnly(false)
				w.Adapter.Disconnect(adv.Node.ID)
				w.SetHealed(healRound)
			}
			return nil
		},
	})

	Register(Scenario{
		Name: "loss-ramp",
		Description: "message loss on every adapter link ramps from 15% to 55% " +
			"and back off; per-request retries with backoff keep the sync alive",
		Step: func(w *World, round int) error {
			switch {
			case round >= injectRound && round < healRound:
				// Re-install each round with the ramped rate; the profile is
				// pure loss, so reinstallation consumes no RNG draws.
				frac := float64(round-injectRound) / float64(healRound-1-injectRound)
				w.DegradeAdapterLinks(&simnet.LinkProfile{LossRate: 0.15 + 0.40*frac})
			case round == healRound:
				w.DegradeAdapterLinks(nil)
				w.SetHealed(healRound)
			}
			return nil
		},
	})

	Register(Scenario{
		Name: "latency-spike",
		Description: "adapter links suffer bufferbloat-style latency-spike storms " +
			"(25x delay episodes); slow-but-honest peers must not be banned",
		Step: func(w *World, round int) error {
			switch round {
			case injectRound:
				w.DegradeAdapterLinks(&simnet.LinkProfile{
					Latency:       simnet.LatencyModel{Base: 20 * time.Millisecond, Jitter: 30 * time.Millisecond},
					SpikeRate:     0.25,
					SpikeFactor:   25,
					SpikeDuration: 3 * time.Second,
				})
			case healRound:
				w.DegradeAdapterLinks(nil)
				w.SetHealed(healRound)
			}
			return nil
		},
	})

	Register(Scenario{
		Name: "flapping-links",
		Description: "every adapter link flaps on a ~1.2s cycle (down ~40% in " +
			"contiguous bursts); bursty loss must not wedge the block download",
		Step: func(w *World, round int) error {
			switch round {
			case injectRound:
				w.DegradeAdapterLinks(&simnet.LinkProfile{
					FlapPeriod: 1200 * time.Millisecond,
					FlapDown:   500 * time.Millisecond,
				})
			case healRound:
				w.DegradeAdapterLinks(nil)
				w.SetHealed(healRound)
			}
			return nil
		},
	})

	Register(Scenario{
		Name: "slow-drip",
		Description: "adapter eclipsed by slowloris peers that answer everything " +
			"30s late; deadline strikes must ban and rotate them out unaided",
		Step: func(w *World, round int) error {
			switch round {
			case 0:
				for _, adv := range w.Sim.Adversaries {
					adv.SetSlowDrip(30 * time.Second)
				}
			case injectRound:
				w.EclipseAdapter(adversaryIDs(w))
			case healRound:
				// Self-recovery assert: unlike the eclipse scenario, nothing
				// here rotates peers out for the adapter — the deadline→score→
				// ban lifecycle alone must have pulled honest peers back in.
				honest := 0
				for _, p := range w.Adapter.ConnectedPeers() {
					if !w.IsAdversary(p) {
						honest++
					}
				}
				if honest == 0 {
					return fmt.Errorf("no honest peer rotated in by the heal round: peer scoring failed to evict the slow-drip peers")
				}
				for _, adv := range w.Sim.Adversaries {
					adv.SetSlowDrip(0)
				}
				w.SetHealed(healRound)
			}
			return nil
		},
	})

	Register(Scenario{
		Name: "replica-churn",
		Description: "replicas join mid-stream, a quarantine storm takes the whole " +
			"fleet out, and snapshot re-hydration readmits everyone",
		Step: func(w *World, round int) error {
			switch round {
			case 5, 15:
				if _, err := w.Fleet.AddReplica(); err != nil {
					return fmt.Errorf("replica join: %w", err)
				}
			case 10:
				// The storm: every replica pulled at once. Queries must
				// forward to the authority until readmission.
				for i := 0; i < w.Fleet.Replicas(); i++ {
					w.Fleet.Replica(i).Quarantine()
				}
			case 18:
				for i := 0; i < w.Fleet.Replicas(); i++ {
					if w.Fleet.Replica(i).Broken() {
						if err := w.Fleet.HydrateReplica(i); err != nil {
							return fmt.Errorf("readmit replica %d: %w", i, err)
						}
					}
				}
			case 22:
				w.Fleet.Replica(w.Rng.Intn(w.Fleet.Replicas())).Quarantine()
			case healRound:
				for i := 0; i < w.Fleet.Replicas(); i++ {
					if w.Fleet.Replica(i).Broken() {
						if err := w.Fleet.HydrateReplica(i); err != nil {
							return fmt.Errorf("readmit replica %d: %w", i, err)
						}
					}
				}
				w.SetHealed(healRound)
			}
			return nil
		},
	})

	Register(Scenario{
		Name: "upgrade-storm",
		Description: "canister snapshot-reinstall upgrades every few rounds while " +
			"ingest and the fleet stream stay hot",
		Step: func(w *World, round int) error {
			if round%7 == 6 && round <= 48 {
				if err := w.UpgradeCanister(); err != nil {
					return fmt.Errorf("upgrade: %w", err)
				}
			}
			if round == 49 {
				w.SetHealed(49)
			}
			return nil
		},
	})
}
