package chaos

import (
	"fmt"
	"sort"
	"time"

	"icbtc/internal/canister"
	"icbtc/internal/ic"
	"icbtc/internal/queryfleet"
	"icbtc/internal/simnet"
)

// Scenario is one named fault schedule. Step runs at the start of every
// harness round (before the round's block is mined) and injects or heals
// faults by reaching into the World.
type Scenario struct {
	Name        string
	Description string
	// DivergentByDesign marks scenarios whose final state is allowed to
	// differ from the oracle's. Every current scenario must end
	// byte-identical; the flag exists so a future scenario that
	// intentionally forks (e.g. a >f-faulty subnet) can document it.
	DivergentByDesign bool
	Step              func(w *World, round int) error
}

var registry = map[string]Scenario{}

// Register adds a scenario to the registry (panics on duplicates — the
// registry is assembled at init time).
func Register(s Scenario) {
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("chaos: duplicate scenario %q", s.Name))
	}
	registry[s.Name] = s
}

// Names returns all registered scenario names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Lookup returns a scenario by name.
func Lookup(name string) (Scenario, bool) {
	s, ok := registry[name]
	return s, ok
}

// Fault schedule shape shared by the network scenarios: inject at round 5,
// heal at round 25, leaving 35 rounds to reconverge.
const (
	injectRound = 5
	healRound   = 25
)

// rotateOutAdversaries drops every adversarial connection, one per call
// site round, letting the low-water refill (which excludes the dropped
// peer) rotate honest peers back in.
func rotateOutAdversaries(w *World) {
	for _, p := range w.Adapter.ConnectedPeers() {
		if w.IsAdversary(p) {
			w.Adapter.DropConnection(p)
		}
	}
}

// adversaryIDs returns the IDs of all adversarial nodes.
func adversaryIDs(w *World) []simnet.NodeID {
	ids := make([]simnet.NodeID, 0, len(w.Sim.Adversaries))
	for _, adv := range w.Sim.Adversaries {
		ids = append(ids, adv.Node.ID)
	}
	return ids
}

func init() {
	Register(Scenario{
		Name: "eclipse",
		Description: "adapter's whole peer set replaced by silent adversaries; " +
			"heals by rotating peers out through DropConnection",
		Step: func(w *World, round int) error {
			switch {
			case round == 0:
				for _, adv := range w.Sim.Adversaries {
					adv.SetSilent(true)
				}
			case round == injectRound:
				w.EclipseAdapter(adversaryIDs(w))
			case round >= healRound:
				w.SetHealed(healRound)
				rotateOutAdversaries(w)
			}
			return nil
		},
	})

	Register(Scenario{
		Name: "partition",
		Description: "adapter partitioned away from the whole Bitcoin network, " +
			"then the partition heals; in-flight block requests must be retried",
		Step: func(w *World, round int) error {
			switch round {
			case injectRound:
				w.Net.SetPartition(w.Adapter.ID, "dark")
			case healRound:
				w.Net.HealPartitions()
				w.SetHealed(healRound)
			}
			return nil
		},
	})

	Register(Scenario{
		Name: "withhold",
		Description: "adapter eclipsed by peers that announce headers but never " +
			"serve blocks (withholding); retry logic recovers the downloads after heal",
		Step: func(w *World, round int) error {
			switch {
			case round == 0:
				for _, adv := range w.Sim.Adversaries {
					adv.SetWithholdData(true)
				}
			case round == injectRound:
				w.EclipseAdapter(adversaryIDs(w))
			case round == healRound:
				for _, adv := range w.Sim.Adversaries {
					adv.SetWithholdData(false)
				}
				w.SetHealed(healRound)
			}
			return nil
		},
	})

	Register(Scenario{
		Name: "invalid-blocks",
		Description: "adapter eclipsed by peers serving blocks whose merkle root " +
			"does not cover their transactions; every one must be rejected",
		Step: func(w *World, round int) error {
			switch {
			case round == 0:
				for _, adv := range w.Sim.Adversaries {
					adv.SetCorruptBlocks(true)
				}
			case round == injectRound:
				w.EclipseAdapter(adversaryIDs(w))
			case round == healRound:
				for _, adv := range w.Sim.Adversaries {
					adv.SetCorruptBlocks(false)
				}
				w.SetHealed(healRound)
			}
			return nil
		},
	})

	Register(Scenario{
		Name: "stale-peers",
		Description: "adapter eclipsed by peers whose chain view froze at inject " +
			"time; they keep serving an ever-staler chain until thawed",
		Step: func(w *World, round int) error {
			switch round {
			case injectRound:
				for _, adv := range w.Sim.Adversaries {
					adv.SetFrozen(true)
				}
				w.EclipseAdapter(adversaryIDs(w))
			case healRound:
				for _, adv := range w.Sim.Adversaries {
					adv.SetFrozen(false)
				}
				w.SetHealed(healRound)
			}
			return nil
		},
	})

	Register(Scenario{
		Name: "deep-reorg",
		Description: "adversary mines a private fork branching below the δ-stable " +
			"anchor and feeds it to the adapter; the anchor must never roll back",
		Step: func(w *World, round int) error {
			adv := w.Sim.Adversaries[0]
			switch round {
			case 10:
				// Branch two blocks BELOW the current anchor — deeper than δ —
				// and overtake the honest tip at fork time.
				anchor := w.Canister().AnchorHeight()
				target := anchor - 2
				if target < 0 {
					target = 0
				}
				honestTip := w.Sim.Nodes[0].BestTip()
				base := honestTip
				for base.Height > target {
					base = base.Parent()
				}
				length := int(honestTip.Height-base.Height) + 3
				if err := adv.MinePrivateFork(base.Hash, length, nil); err != nil {
					return fmt.Errorf("private fork: %w", err)
				}
				adv.SetServeForkOnly(true)
				w.Adapter.ConnectPeer(adv.Node.ID)
			case healRound:
				// The attack must actually have been delivered: the fork's
				// headers reached the adapter's tree (the canister then
				// refused to follow them — checked by anchor monotonicity
				// and oracle equivalence every round).
				tip := adv.ForkTip()
				if tip == nil || !w.Adapter.Tree().Contains(tip.Hash) {
					return fmt.Errorf("adversarial fork never reached the adapter's header tree")
				}
				adv.SetServeForkOnly(false)
				w.Adapter.Disconnect(adv.Node.ID)
				w.SetHealed(healRound)
			}
			return nil
		},
	})

	Register(Scenario{
		Name: "loss-ramp",
		Description: "message loss on every adapter link ramps from 15% to 55% " +
			"and back off; per-request retries with backoff keep the sync alive",
		Step: func(w *World, round int) error {
			switch {
			case round >= injectRound && round < healRound:
				// Re-install each round with the ramped rate; the profile is
				// pure loss, so reinstallation consumes no RNG draws.
				frac := float64(round-injectRound) / float64(healRound-1-injectRound)
				w.DegradeAdapterLinks(&simnet.LinkProfile{LossRate: 0.15 + 0.40*frac})
			case round == healRound:
				w.DegradeAdapterLinks(nil)
				w.SetHealed(healRound)
			}
			return nil
		},
	})

	Register(Scenario{
		Name: "latency-spike",
		Description: "adapter links suffer bufferbloat-style latency-spike storms " +
			"(25x delay episodes); slow-but-honest peers must not be banned",
		Step: func(w *World, round int) error {
			switch round {
			case injectRound:
				w.DegradeAdapterLinks(&simnet.LinkProfile{
					Latency:       simnet.LatencyModel{Base: 20 * time.Millisecond, Jitter: 30 * time.Millisecond},
					SpikeRate:     0.25,
					SpikeFactor:   25,
					SpikeDuration: 3 * time.Second,
				})
			case healRound:
				w.DegradeAdapterLinks(nil)
				w.SetHealed(healRound)
			}
			return nil
		},
	})

	Register(Scenario{
		Name: "flapping-links",
		Description: "every adapter link flaps on a ~1.2s cycle (down ~40% in " +
			"contiguous bursts); bursty loss must not wedge the block download",
		Step: func(w *World, round int) error {
			switch round {
			case injectRound:
				w.DegradeAdapterLinks(&simnet.LinkProfile{
					FlapPeriod: 1200 * time.Millisecond,
					FlapDown:   500 * time.Millisecond,
				})
			case healRound:
				w.DegradeAdapterLinks(nil)
				w.SetHealed(healRound)
			}
			return nil
		},
	})

	Register(Scenario{
		Name: "slow-drip",
		Description: "adapter eclipsed by slowloris peers that answer everything " +
			"30s late; deadline strikes must ban and rotate them out unaided",
		Step: func(w *World, round int) error {
			switch round {
			case 0:
				for _, adv := range w.Sim.Adversaries {
					adv.SetSlowDrip(30 * time.Second)
				}
			case injectRound:
				w.EclipseAdapter(adversaryIDs(w))
			case healRound:
				// Self-recovery assert: unlike the eclipse scenario, nothing
				// here rotates peers out for the adapter — the deadline→score→
				// ban lifecycle alone must have pulled honest peers back in.
				honest := 0
				for _, p := range w.Adapter.ConnectedPeers() {
					if !w.IsAdversary(p) {
						honest++
					}
				}
				if honest == 0 {
					return fmt.Errorf("no honest peer rotated in by the heal round: peer scoring failed to evict the slow-drip peers")
				}
				for _, adv := range w.Sim.Adversaries {
					adv.SetSlowDrip(0)
				}
				w.SetHealed(healRound)
			}
			return nil
		},
	})

	Register(Scenario{
		Name: "replica-churn",
		Description: "replicas join mid-stream, a quarantine storm takes the whole " +
			"fleet out, and snapshot re-hydration readmits everyone",
		Step: func(w *World, round int) error {
			switch round {
			case 5, 15:
				if _, err := w.Fleet.AddReplica(); err != nil {
					return fmt.Errorf("replica join: %w", err)
				}
			case 10:
				// The storm: every replica pulled at once. Queries must
				// forward to the authority until readmission.
				for i := 0; i < w.Fleet.Replicas(); i++ {
					w.Fleet.Replica(i).Quarantine()
				}
			case 18:
				for i := 0; i < w.Fleet.Replicas(); i++ {
					if w.Fleet.Replica(i).Broken() {
						if err := w.Fleet.HydrateReplica(i); err != nil {
							return fmt.Errorf("readmit replica %d: %w", i, err)
						}
					}
				}
			case 22:
				w.Fleet.Replica(w.Rng.Intn(w.Fleet.Replicas())).Quarantine()
			case healRound:
				for i := 0; i < w.Fleet.Replicas(); i++ {
					if w.Fleet.Replica(i).Broken() {
						if err := w.Fleet.HydrateReplica(i); err != nil {
							return fmt.Errorf("readmit replica %d: %w", i, err)
						}
					}
				}
				w.SetHealed(healRound)
			}
			return nil
		},
	})

	Register(Scenario{
		Name: "crash-storm",
		Description: "canister upgrades die mid-install — torn snapshot write, " +
			"bit-flipped image, crash inside the restore; the journal detects every " +
			"torn state and recovers from checkpoint (plus wire replay) or the " +
			"intact pending image",
		Step: func(w *World, round int) error {
			switch round {
			case 2, 10:
				if err := w.Subnet.CommitCheckpoint(CanisterID); err != nil {
					return fmt.Errorf("checkpoint: %w", err)
				}
			case 6:
				rep, err := w.CrashUpgrade(ic.UpgradeCrash{Stage: ic.CrashTornWrite, Offset: 1 + w.Rng.Intn(1<<20)}, 0)
				if err != nil {
					return fmt.Errorf("torn-write upgrade: %w", err)
				}
				if !rep.Crashed || !rep.TornDetected || rep.RecoveredFrom != ic.RecoveryCheckpoint {
					return fmt.Errorf("torn write not detected and recovered from checkpoint: %+v", rep)
				}
			case 13:
				rep, err := w.CrashUpgrade(ic.UpgradeCrash{Stage: ic.CrashBitFlip, Offset: w.Rng.Intn(1 << 24)}, 0)
				if err != nil {
					return fmt.Errorf("bit-flip upgrade: %w", err)
				}
				if !rep.Crashed || !rep.TornDetected || rep.RecoveredFrom != ic.RecoveryCheckpoint {
					return fmt.Errorf("bit flip not detected and recovered from checkpoint: %+v", rep)
				}
			case 19:
				// The image landed intact; only the install died. Recovery must
				// replay the pending image, NOT fall back (that would silently
				// discard the blocks folded since the last checkpoint).
				rep, err := w.CrashUpgrade(ic.UpgradeCrash{Stage: ic.CrashMidRestore}, canister.RestoreStageTree)
				if err != nil {
					return fmt.Errorf("mid-restore upgrade: %w", err)
				}
				if !rep.Crashed || rep.TornDetected || rep.RecoveredFrom != ic.RecoveryPending {
					return fmt.Errorf("mid-restore crash should recover from the intact pending image: %+v", rep)
				}
			case healRound:
				if w.Recovering() {
					return fmt.Errorf("wire replay has not re-reached the oracle by the heal round")
				}
				w.SetHealed(healRound)
			}
			return nil
		},
	})

	Register(Scenario{
		Name: "corrupt-stream",
		Description: "the replica delta stream suffers seeded bit-flips, truncation, " +
			"duplication, and drops; frame checksums and strict sequencing catch every " +
			"one and auto-resync re-hydrates the victims",
		Step: func(w *World, round int) error {
			switch round {
			case injectRound:
				w.SetFrameFault(func(replica int, seq uint64, raw []byte) [][]byte {
					// One victim per frame (rotating), faulted about a third of
					// the time; the RNG is only drawn for the victim so the
					// fault schedule stays deterministic per seed.
					if replica != int(seq%uint64(w.Cfg.Replicas)) || w.Rng.Float64() > 0.35 {
						return [][]byte{raw}
					}
					switch w.Rng.Intn(4) {
					case 0: // bit flip: checksum must catch it
						cp := append([]byte(nil), raw...)
						cp[w.Rng.Intn(len(cp))] ^= 1 << uint(w.Rng.Intn(8))
						return [][]byte{cp}
					case 1: // truncation: framing/checksum must catch it
						return [][]byte{raw[:len(raw)/2]}
					case 2: // duplication: strict sequencing must skip the copy
						return [][]byte{raw, raw}
					default: // drop: the next frame reveals the gap
						return nil
					}
				})
			case healRound:
				w.SetFrameFault(nil)
				st := w.Fleet.Stats()
				if st.FrameCorrupt+st.FrameGaps+st.FrameDuplicates == 0 {
					return fmt.Errorf("no injected corruption was ever detected (corrupt=%d gaps=%d dups=%d)",
						st.FrameCorrupt, st.FrameGaps, st.FrameDuplicates)
				}
				if st.Resyncs == 0 {
					return fmt.Errorf("corruption detected but no automatic resync happened")
				}
				w.SetHealed(healRound)
			}
			return nil
		},
	})

	Register(Scenario{
		Name: "byzantine-replica",
		Description: "one replica tampers with certified envelopes after signing and " +
			"another replays stale ones; the fleet's response audit ejects both while " +
			"honest replicas keep every answer verifiable and fresh",
		Step: func(w *World, round int) error {
			if w.signer == nil {
				return fmt.Errorf("byzantine-replica needs certification enabled (CertifyEvery > 0)")
			}
			switch round {
			case injectRound:
				w.Fleet.SetVerifier(func(env ic.CertifiedQuery, sig []byte) bool {
					return w.Subnet.VerifyCertified(env, nil, sig)
				})
				w.Fleet.Replica(0).SetEquivocation(queryfleet.EquivTamper)
			case 12:
				w.Fleet.Replica(1).SetEquivocation(queryfleet.EquivStaleReplay)
			}
			if round >= injectRound && round < healRound {
				// Clients must get verifiable, bounded-fresh answers every
				// round no matter which replica the router tries first.
				authTip := w.Canister().TipHeight()
				w.Fleet.SetSigner(w.signer)
				for k := 0; k < 2; k++ {
					rq := w.Fleet.RouteQuery("get_tip", nil, "byzantine-probe", w.Sched.Now())
					if rq.Err != nil {
						return fmt.Errorf("signed get_tip %d: %w", k, rq.Err)
					}
					if rq.Signature == nil {
						return fmt.Errorf("signed get_tip %d came back uncertified", k)
					}
					env := ic.CertifiedQuery{
						Method:       "get_tip",
						Value:        rq.Value,
						ErrText:      ic.ErrText(rq.Err),
						AnchorHeight: rq.AnchorHeight,
						TipHeight:    rq.TipHeight,
					}
					if !w.Subnet.VerifyCertified(env, nil, rq.Signature) {
						return fmt.Errorf("served get_tip %d does not verify under the subnet key", k)
					}
					if lag := authTip - rq.TipHeight; lag > 3 {
						return fmt.Errorf("served get_tip %d is %d blocks stale (bound 3)", k, lag)
					}
				}
				w.Fleet.SetSigner(nil)
			}
			if round == healRound {
				st := w.Fleet.Stats()
				if st.ByzantineEjected < 2 {
					return fmt.Errorf("audit ejected %d replicas, want both equivocators", st.ByzantineEjected)
				}
				for i := 0; i < 2; i++ {
					if !w.Fleet.Replica(i).Broken() {
						return fmt.Errorf("equivocating replica %d was never quarantined", i)
					}
				}
				for i := 0; i < w.Fleet.Replicas(); i++ {
					w.Fleet.Replica(i).SetEquivocation(queryfleet.EquivNone)
					if w.Fleet.Replica(i).Broken() {
						if err := w.Fleet.HydrateReplica(i); err != nil {
							return fmt.Errorf("readmit replica %d: %w", i, err)
						}
					}
				}
				w.SetHealed(healRound)
			}
			return nil
		},
	})

	Register(Scenario{
		Name: "upgrade-storm",
		Description: "canister snapshot-reinstall upgrades every few rounds while " +
			"ingest and the fleet stream stay hot",
		Step: func(w *World, round int) error {
			if round%7 == 6 && round <= 48 {
				if err := w.UpgradeCanister(); err != nil {
					return fmt.Errorf("upgrade: %w", err)
				}
			}
			if round == 49 {
				w.SetHealed(49)
			}
			return nil
		},
	})
}
