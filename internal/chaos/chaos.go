// Package chaos is a seeded, deterministic fault-injection harness over the
// full stack — simulated Bitcoin network (btcnode), adapter, canister-on-
// subnet, and read-replica query fleet. Each scenario scripts a fault
// schedule (eclipse, partition, withheld/invalid/stale blocks, deep reorg
// attempts near the anchor, replica churn, upgrades under load) against a
// world driven round by round, while an undisturbed oracle canister is fed
// byte-identical payloads (the difftest oracle pattern). After every round
// the harness checks the paper's safety invariants:
//
//   - anchor monotonicity: the δ-stable anchor height never decreases, no
//     matter what the network serves (§III-C's core guarantee);
//   - oracle equivalence: the chaos canister's state stays byte-identical
//     to the oracle's — faults may stall progress, never corrupt it;
//   - certified-response verifiability: fleet responses signed under the
//     subnet key verify via Subnet.VerifyCertified and fail after
//     tampering;
//   - replica freshness: a caught-up, non-quarantined replica serves at
//     the authoritative tip.
//
// Scenarios end healed: the harness requires reconvergence with the honest
// chain and reports rounds-to-reconverge, the recovery metric
// `bench -fig chaos` prints. Every failure message carries the scenario
// name, seed, and round plus a one-line reproduction command.
package chaos

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"icbtc/internal/adapter"
	"icbtc/internal/btc"
	"icbtc/internal/btcnode"
	"icbtc/internal/canister"
	"icbtc/internal/ic"
	"icbtc/internal/ingest"
	"icbtc/internal/obs"
	"icbtc/internal/queryfleet"
	"icbtc/internal/simnet"
)

// CanisterID is the chaos canister's ID on the harness subnet.
const CanisterID ic.CanisterID = "bitcoin"

// Config parameterizes a scenario run.
type Config struct {
	// Seed drives every random choice (scheduler, fault schedule, worker
	// counts). Same seed, same run.
	Seed int64
	// Rounds is the number of harness rounds (0 selects the scenario's
	// default, 60).
	Rounds int
	// HonestNodes and Adversaries size the Bitcoin network.
	HonestNodes int
	Adversaries int
	// Replicas is the initial query-fleet size.
	Replicas int
	// CertifyEvery verifies one threshold-signed fleet response every N
	// rounds (0 disables — threshold signing costs tens of ms per round).
	CertifyEvery int
}

// DefaultConfig returns the scenario battery's standard world: 8 honest
// nodes, 3 adversaries, a 3-replica fleet, certification checked every 10
// rounds.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:         seed,
		Rounds:       60,
		HonestNodes:  8,
		Adversaries:  3,
		Replicas:     3,
		CertifyEvery: 10,
	}
}

// Result summarizes one scenario run.
type Result struct {
	Scenario string
	Seed     int64
	Rounds   int
	// HealRound is the round the scenario lifted its faults (-1 when the
	// scenario injects none).
	HealRound int
	// ConvergedRound is the first post-heal round at which the canister held
	// the honest chain in full (tip hash and available height), or -1.
	ConvergedRound int
	// RecoveryRounds = ConvergedRound − HealRound (0 when no faults).
	RecoveryRounds int
	// OracleIdentical reports whether the final chaos-canister snapshot was
	// byte-identical to the undisturbed oracle's.
	OracleIdentical bool
	// FinalHeight is the honest chain height at the end of the run.
	FinalHeight int64
	// SnapshotBytes is the size of the final state snapshot.
	SnapshotBytes int
	// MetricsText is the merged observability snapshot of the run — the
	// canister, adapter, and fleet registries in Prometheus text form — for
	// humans and soak artifacts.
	MetricsText string
	// MetricsDigest is the SHA-256 of the canonical encoding of the
	// deterministic subset of that snapshot (see World.metricsView for what
	// is excluded and why). Same seed ⇒ same digest: the telemetry extension
	// of the harness's "same seed, same run" promise.
	MetricsDigest [32]byte
}

// World is the live stack a scenario injects faults into. Scenario steps
// may reach any layer: the simnet network (partitions, loss), the btcnode
// adversaries, the adapter's connection hooks, the fleet's churn hooks, and
// the subnet's upgrade path.
type World struct {
	Cfg   Config
	Sched *simnet.Scheduler
	Net   *simnet.Network
	Sim   *btcnode.SimNetwork
	Miner *btcnode.Miner
	// Adapter is the one adapter under test (ID "adapter/chaos").
	Adapter *adapter.Adapter
	// Subnet hosts the chaos canister (upgrades, threshold signing). It is
	// never Start()ed: the harness drives payloads directly so the oracle
	// sees the exact same sequence.
	Subnet *ic.Subnet
	// Oracle is the undisturbed twin: same config, same payloads, never
	// upgraded, never restored.
	Oracle *canister.BitcoinCanister
	Fleet  *queryfleet.Fleet
	// Rng is the harness's fault-schedule RNG, separate from the
	// scheduler's so network jitter and fault timing don't entangle.
	Rng *rand.Rand

	signer     queryfleet.SignFunc
	lastAnchor int64
	healRound  int
	converged  int
	// recovering is set while the canister replays wire history after a
	// checkpoint rollback (CrashUpgrade → RecoveryCheckpoint): the chaos
	// canister legitimately trails the oracle until replay catches up, at
	// which point byte-equality is re-required and the flag clears.
	recovering bool
	// streamFaulted is set while a frame-fault hook is installed
	// (SetFrameFault): a dropped round-final frame leaves a replica
	// legitimately stale until the next frame reveals the gap, so the
	// freshness invariant is suspended.
	streamFaulted bool
}

// Recovering reports whether the harness is between a checkpoint rollback
// and the round wire replay re-reaches the oracle's state.
func (w *World) Recovering() bool { return w.recovering }

// Canister resolves the chaos canister through the subnet, so scenario
// steps and invariants always see the post-upgrade instance.
func (w *World) Canister() *canister.BitcoinCanister {
	return w.Subnet.Canister(CanisterID).(*canister.BitcoinCanister)
}

// SetHealed records the round the scenario lifted its faults; recovery is
// measured from here.
func (w *World) SetHealed(round int) {
	if w.healRound < 0 {
		w.healRound = round
	}
}

// UpgradeCanister runs a snapshot-reinstall upgrade of the chaos canister
// and re-installs the fleet's stream sink on the new instance (the harness
// authority is a proxy, so the fleet itself needs no rewiring).
func (w *World) UpgradeCanister() error {
	if err := w.Subnet.UpgradeCanister(CanisterID, func(snapshot []byte) (ic.Canister, error) {
		return canister.RestoreSnapshot(snapshot)
	}); err != nil {
		return err
	}
	w.Canister().SetStreamSink(w.Fleet.Feed)
	// The restored instance carries a fresh metrics registry; re-install the
	// virtual clock so post-upgrade timings stay on scheduler time.
	w.Canister().Metrics().SetClock(w.Sched.Now)
	return nil
}

// CrashUpgrade runs a snapshot-reinstall upgrade with a crash armed at the
// given point (and, for CrashMidRestore, the restore stage the install dies
// inside). The subnet's journal recovery runs in the same call; the world is
// rewired to whatever instance recovery installed. A checkpoint rollback
// (RecoveredFrom == RecoveryCheckpoint) puts the harness into recovering
// mode — the canister replays wire history toward the oracle — and
// re-hydrates every fleet replica, whose states are ahead of the rolled-back
// authority.
func (w *World) CrashUpgrade(crash ic.UpgradeCrash, stage canister.RestoreStage) (ic.UpgradeReport, error) {
	w.Subnet.ArmUpgradeCrash(crash)
	first := true
	err := w.Subnet.UpgradeCanister(CanisterID, func(snapshot []byte) (ic.Canister, error) {
		if crash.Stage == ic.CrashMidRestore && first {
			first = false
			return canister.RestoreSnapshotCrashing(snapshot, stage)
		}
		first = false
		return canister.RestoreSnapshot(snapshot)
	})
	rep := w.Subnet.LastUpgrade()
	if err != nil {
		return rep, err
	}
	w.Canister().SetStreamSink(w.Fleet.Feed)
	w.Canister().Metrics().SetClock(w.Sched.Now)
	if rep.RecoveredFrom == ic.RecoveryCheckpoint {
		w.recovering = true
		for i := 0; i < w.Fleet.Replicas(); i++ {
			if err := w.Fleet.HydrateReplica(i); err != nil {
				return rep, fmt.Errorf("re-hydrate replica %d after rollback: %w", i, err)
			}
		}
	}
	return rep, nil
}

// SetFrameFault installs (or with nil clears) a corruption hook on the
// fleet's frame stream and tracks it for the freshness invariant (a dropped
// frame leaves replicas legitimately stale until the stream moves again).
func (w *World) SetFrameFault(h queryfleet.FrameFault) {
	w.streamFaulted = h != nil
	w.Fleet.SetFrameFault(h)
}

// IsAdversary reports whether a peer ID belongs to an adversarial node.
func (w *World) IsAdversary(id simnet.NodeID) bool {
	for _, adv := range w.Sim.Adversaries {
		if adv.Node.ID == id {
			return true
		}
	}
	return false
}

// DegradeAdapterLinks installs a link profile on BOTH directions of every
// link between the adapter and a Bitcoin node (honest and adversarial
// alike), leaving the honest mesh untouched — the fault entry point for the
// lossy/flapping/spiking network scenarios. The honest nodes keep gossiping
// normally; only the adapter's view of the network degrades, which is the
// deployment-relevant failure (the adapter sits behind its own uplink).
// Passing nil heals every adapter link.
func (w *World) DegradeAdapterLinks(p *simnet.LinkProfile) {
	degrade := func(id simnet.NodeID) {
		w.Net.SetLinkProfile(w.Adapter.ID, id, p)
		w.Net.SetLinkProfile(id, w.Adapter.ID, p)
	}
	for _, n := range w.Sim.Nodes {
		degrade(n.ID)
	}
	for _, adv := range w.Sim.Adversaries {
		degrade(adv.Node.ID)
	}
}

// EclipseAdapter replaces the adapter's peer set with the given peers —
// the fault entry point for eclipse-style scenarios.
func (w *World) EclipseAdapter(peers []simnet.NodeID) {
	for _, p := range w.Adapter.ConnectedPeers() {
		w.Adapter.Disconnect(p)
	}
	for _, p := range peers {
		w.Adapter.ConnectPeer(p)
	}
}

// chaosAuthority routes the fleet's authority access through the subnet,
// so canister upgrades that swap the installed instance are transparent to
// the fleet (same proxy pattern as difftest's snapshot restarts).
type chaosAuthority struct{ w *World }

func (a chaosAuthority) Snapshot() ([]byte, error) { return a.w.Canister().Snapshot() }
func (a chaosAuthority) Query(ctx *ic.CallContext, method string, arg any) (any, error) {
	return a.w.Canister().Query(ctx, method, arg)
}
func (a chaosAuthority) TipHeight() int64    { return a.w.Canister().TipHeight() }
func (a chaosAuthority) AnchorHeight() int64 { return a.w.Canister().AnchorHeight() }

// newWorld builds the full stack for one scenario run.
func newWorld(cfg Config) (*World, error) {
	sched := simnet.NewScheduler(cfg.Seed)
	net := simnet.NewNetwork(sched)
	params := btc.RegtestParams()
	sim := btcnode.BuildHonestNetwork(net, params, cfg.HonestNodes)
	sim.AddAdversaries(cfg.Adversaries)

	scfg := ic.DefaultConfig()
	scfg.N = 4
	scfg.Seed = cfg.Seed
	scfg.DisableThresholdKeys = cfg.CertifyEvery <= 0
	subnet, err := ic.NewSubnet(sched, scfg)
	if err != nil {
		return nil, fmt.Errorf("subnet: %w", err)
	}
	ccfg := canister.DefaultConfig(btc.Regtest)
	subnet.InstallCanister(CanisterID, canister.New(ccfg))

	acfg := adapter.ConfigForNetwork(btc.Regtest)
	acfg.Connections = 3
	acfg.AddrLowWater = 1
	acfg.AddrHighWater = cfg.HonestNodes + cfg.Adversaries
	ad := adapter.New("adapter/chaos", net, params, sim.Directory, acfg)

	w := &World{
		Cfg:       cfg,
		Sched:     sched,
		Net:       net,
		Sim:       sim,
		Miner:     btcnode.NewMiner(sim.Nodes[0], btc.PayToPubKeyHashScript([20]byte{0x42})),
		Adapter:   ad,
		Subnet:    subnet,
		Oracle:    canister.New(ccfg),
		Rng:       rand.New(rand.NewSource(cfg.Seed ^ 0x5eed)),
		healRound: -1,
		converged: -1,
	}
	if cfg.CertifyEvery > 0 {
		w.signer = queryfleet.CommitteeSigner(subnet.Committee())
	}
	// Every obs registry in the world runs on the scheduler's virtual clock:
	// same seed, same timestamps, bit-identical metrics snapshots. Installed
	// BEFORE the fleet exists — replica hydration takes an authority
	// snapshot, and that snapshot's timing must already be virtual.
	w.Canister().Metrics().SetClock(sched.Now)
	w.Oracle.Metrics().SetClock(sched.Now)
	ad.Metrics().SetClock(sched.Now)
	fleet, err := queryfleet.New(chaosAuthority{w}, queryfleet.Config{
		Replicas:     cfg.Replicas,
		MaxLagBlocks: 3,
		StalePolicy:  queryfleet.StaleForward,
		AutoResync:   true,
	})
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	w.Fleet = fleet
	fleet.Metrics().SetClock(sched.Now)
	// The proxy authority is not a StreamSource; install the sink by hand
	// (and again after every upgrade — UpgradeCanister does).
	w.Canister().SetStreamSink(fleet.Feed)
	ad.Start()
	return w, nil
}

// RunScenario executes one named (registered) scenario under cfg.
func RunScenario(name string, cfg Config) (Result, error) {
	s, ok := Lookup(name)
	if !ok {
		return Result{}, fmt.Errorf("chaos: unknown scenario %q (have %v)", name, Names())
	}
	return Run(s, cfg)
}

// Run executes one scenario under cfg and returns its result — the entry
// point for parameterized, unregistered scenarios built on the fly (the
// degradation experiments sweep loss rates this way). Any invariant
// violation or scenario error is wrapped with the scenario name, seed, and
// round, plus a one-line reproduction command.
func Run(s Scenario, cfg Config) (Result, error) {
	name := s.Name
	if cfg.Rounds <= 0 {
		cfg.Rounds = 60
	}
	w, err := newWorld(cfg)
	if err != nil {
		return Result{}, fmt.Errorf("chaos: scenario %q seed %d: %w", name, cfg.Seed, err)
	}
	defer w.Fleet.Close()

	fail := func(round int, err error) (Result, error) {
		return Result{}, fmt.Errorf("chaos: scenario %q seed %d round %d: %w\nreproduce: go test ./internal/chaos -run TestChaosScenarios -chaos.scenario=%s -chaos.seed=%d",
			name, cfg.Seed, round, err, name, cfg.Seed)
	}

	for round := 0; round < cfg.Rounds; round++ {
		if err := s.Step(w, round); err != nil {
			return fail(round, err)
		}
		if _, err := w.Miner.Mine(0); err != nil {
			return fail(round, fmt.Errorf("mining: %w", err))
		}
		w.Sched.RunFor(2 * time.Second)
		if err := w.deliverPayload(); err != nil {
			return fail(round, err)
		}
		if err := w.fleetTick(); err != nil {
			return fail(round, err)
		}
		if err := w.checkInvariants(round); err != nil {
			return fail(round, err)
		}
		if w.converged < 0 && w.healRound >= 0 && round >= w.healRound && w.convergedWithHonestChain() {
			w.converged = round
		}
	}

	// A run may not end mid-recovery: a checkpoint rollback must have been
	// replayed back to oracle equality before the last round.
	if w.recovering {
		return fail(cfg.Rounds-1, fmt.Errorf("still replaying after a checkpoint rollback: canister tip %d, oracle %d",
			w.Canister().TipHeight(), w.Oracle.TipHeight()))
	}

	// Every scenario must end healed and reconverged with the honest chain.
	if w.healRound < 0 {
		w.healRound = 0
		if w.converged < 0 && w.convergedWithHonestChain() {
			w.converged = 0
		}
	}
	if w.converged < 0 {
		return fail(cfg.Rounds-1, fmt.Errorf("never reconverged after heal at round %d: canister height %d (available %d), honest chain %d",
			w.healRound, w.Canister().TipHeight(), w.Canister().AvailableHeight(), w.Sim.Nodes[0].Height()))
	}
	chaosSnap, oracleSnap, err := w.snapshots()
	if err != nil {
		return fail(cfg.Rounds-1, err)
	}
	identical := bytes.Equal(chaosSnap, oracleSnap)
	if !identical && !s.DivergentByDesign {
		return fail(cfg.Rounds-1, fmt.Errorf("final state diverged from the oracle: %d vs %d snapshot bytes",
			len(chaosSnap), len(oracleSnap)))
	}
	metricsText, metricsDigest, err := w.metricsView()
	if err != nil {
		return fail(cfg.Rounds-1, err)
	}
	return Result{
		Scenario:        name,
		Seed:            cfg.Seed,
		Rounds:          cfg.Rounds,
		HealRound:       w.healRound,
		ConvergedRound:  w.converged,
		RecoveryRounds:  w.converged - w.healRound,
		OracleIdentical: identical,
		FinalHeight:     w.Sim.Nodes[0].Height(),
		SnapshotBytes:   len(chaosSnap),
		MetricsText:     metricsText,
		MetricsDigest:   metricsDigest,
	}, nil
}

// metricsView merges the world's per-subsystem obs registries into the
// run's telemetry result: the full merged snapshot as Prometheus text, and
// a SHA-256 digest of its canonical (statecodec) encoding.
//
// The digest covers EVERY metric, fleet apply-path histograms included: the
// harness fleet has no auto-apply workers (frames apply on the driver
// goroutine via CatchUp), Fleet.Close joins any workers a fleet does run,
// and all durations are virtual-clock deltas — so the full snapshot
// reproduces bit for bit per seed, with no carve-out.
func (w *World) metricsView() (string, [32]byte, error) {
	canSnap := w.Canister().Metrics().Snapshot()
	adSnap := w.Adapter.Metrics().Snapshot()
	fleetSnap := w.Fleet.Metrics().Snapshot()

	full, err := obs.Merge(canSnap, adSnap, fleetSnap)
	if err != nil {
		return "", [32]byte{}, fmt.Errorf("merge metrics: %w", err)
	}
	var text strings.Builder
	if err := full.WriteProm(&text); err != nil {
		return "", [32]byte{}, fmt.Errorf("render metrics: %w", err)
	}
	return text.String(), sha256.Sum256(full.Encode()), nil
}

// payloadsPerRound is how many consensus payloads execute per harness round.
// Past MultiBlockSyncHeight the adapter serves one block per payload (the
// Algorithm 1 response cap), while the harness mines one block per round —
// recovery is only possible because consensus rounds outnumber blocks, as
// they do on the real IC (~1 s rounds vs ~600 s blocks).
const payloadsPerRound = 3

// deliverPayload runs Algorithm 1 against the chaos canister's current
// request and feeds the resulting payload to BOTH canisters with identical
// contexts — the oracle serially, the chaos canister through the randomized
// pipelined path (worker counts 1–4, byte-identical by construction).
// Virtual time advances between payloads so blocks requested by one
// HandleRequest can arrive before the next.
func (w *World) deliverPayload() error {
	for k := 0; k < payloadsPerRound; k++ {
		can := w.Canister()
		payload := w.Adapter.HandleRequest(can.CurrentRequest())
		now := w.Sched.Now()
		if err := w.Oracle.ProcessPayload(ic.NewCallContext(ic.KindUpdate, now), payload); err != nil {
			return fmt.Errorf("oracle payload: %w", err)
		}
		workers := 1 + w.Rng.Intn(4)
		ctx := ic.NewCallContext(ic.KindUpdate, now)
		if workers == 1 {
			if err := can.ProcessPayload(ctx, payload); err != nil {
				return fmt.Errorf("chaos payload: %w", err)
			}
		} else if err := can.ProcessPayloadPipelined(ctx, payload, ingest.Config{Workers: workers}); err != nil {
			return fmt.Errorf("chaos payload (%d workers): %w", workers, err)
		}
		w.Sched.RunFor(500 * time.Millisecond)
	}
	return nil
}

// fleetTick catches up every healthy replica. Quarantined replicas stay
// behind (scenarios heal them explicitly); a frame failure on a healthy
// replica quarantines it — RouteQuery then skips it, which the freshness
// invariant tolerates and the storm scenarios exercise.
func (w *World) fleetTick() error {
	for i := 0; i < w.Fleet.Replicas(); i++ {
		r := w.Fleet.Replica(i)
		if r.Broken() {
			continue
		}
		if err := r.CatchUp(); err != nil && !r.Broken() {
			return fmt.Errorf("replica %d catch-up: %w", i, err)
		}
	}
	return nil
}

// checkInvariants runs the per-round safety checks.
func (w *World) checkInvariants(round int) error {
	can := w.Canister()

	// While replaying wire history after a checkpoint rollback, the chaos
	// canister legitimately trails the oracle — monotonicity and
	// byte-equality are suspended, but the canister must never OVERTAKE the
	// oracle, and the moment replay catches up it must be byte-identical
	// again (recovery converges exactly, not approximately).
	if w.recovering {
		got, want := can.TipHeight(), w.Oracle.TipHeight()
		if got > want {
			return fmt.Errorf("recovering canister overtook the oracle: %d vs %d", got, want)
		}
		if got < want || can.AnchorHeight() < w.Oracle.AnchorHeight() ||
			can.AvailableHeight() < w.Oracle.AvailableHeight() {
			return nil // still replaying (headers can lead block downloads)
		}
		chaosSnap, oracleSnap, err := w.snapshots()
		if err != nil {
			return err
		}
		if !bytes.Equal(chaosSnap, oracleSnap) {
			return fmt.Errorf("recovery reached the oracle tip but diverged: %d vs %d snapshot bytes",
				len(chaosSnap), len(oracleSnap))
		}
		w.recovering = false
	}

	// 1. Anchor monotonicity: the δ-stable anchor never rolls back.
	if a := can.AnchorHeight(); a < w.lastAnchor {
		return fmt.Errorf("anchor rolled back: %d -> %d", w.lastAnchor, a)
	} else {
		w.lastAnchor = a
	}

	// 2. Oracle equivalence: faults may stall the chain view, never fork it
	// from the oracle fed the same payloads.
	if got, want := can.TipHeight(), w.Oracle.TipHeight(); got != want {
		return fmt.Errorf("tip height diverged from oracle: %d vs %d", got, want)
	}
	if got, want := can.AnchorHeight(), w.Oracle.AnchorHeight(); got != want {
		return fmt.Errorf("anchor height diverged from oracle: %d vs %d", got, want)
	}
	chaosSnap, oracleSnap, err := w.snapshots()
	if err != nil {
		return err
	}
	if !bytes.Equal(chaosSnap, oracleSnap) {
		return fmt.Errorf("snapshot diverged from oracle: %d vs %d bytes", len(chaosSnap), len(oracleSnap))
	}

	// 3. Replica freshness: a caught-up, healthy replica serves at the
	// authoritative tip — staleness never hides behind an empty inbox.
	// Suspended while a frame-fault hook is live: a dropped round-final
	// frame leaves a replica stale with an empty inbox until the next frame
	// reveals the gap and triggers its resync.
	for i := 0; !w.streamFaulted && i < w.Fleet.Replicas(); i++ {
		r := w.Fleet.Replica(i)
		if r.Broken() || r.Pending() > 0 {
			continue
		}
		if got, want := r.TipHeight(), can.TipHeight(); got != want {
			return fmt.Errorf("caught-up replica %d at tip %d, authority at %d", i, got, want)
		}
	}

	// 4. Certified-response verifiability (every CertifyEvery rounds).
	if w.Cfg.CertifyEvery > 0 && round%w.Cfg.CertifyEvery == w.Cfg.CertifyEvery-1 {
		if err := w.checkCertification(); err != nil {
			return err
		}
	}
	return nil
}

// checkCertification routes signed queries through the fleet and verifies
// each certification under the subnet key, including a tamper check. Both a
// chain query (get_tip) and the telemetry endpoint (get_metrics) are
// exercised: the metrics snapshot rides the same certification envelope as
// any other response, so a client can prove the telemetry it reads came
// from the subnet.
func (w *World) checkCertification() error {
	w.Fleet.SetSigner(w.signer)
	tip := w.Fleet.RouteQuery("get_tip", nil, "chaos", w.Sched.Now())
	met := w.Fleet.RouteQuery("get_metrics", nil, "chaos", w.Sched.Now())
	w.Fleet.SetSigner(nil)
	for _, c := range []struct {
		method string
		rq     ic.RoutedQuery
	}{{"get_tip", tip}, {"get_metrics", met}} {
		if c.rq.Err != nil {
			return fmt.Errorf("certified %s: %w", c.method, c.rq.Err)
		}
		if c.rq.Signature == nil {
			return fmt.Errorf("fleet returned an uncertified %s response with signing enabled", c.method)
		}
		env := ic.CertifiedQuery{
			Method:       c.method,
			Value:        c.rq.Value,
			ErrText:      ic.ErrText(c.rq.Err),
			AnchorHeight: c.rq.AnchorHeight,
			TipHeight:    c.rq.TipHeight,
		}
		if !w.Subnet.VerifyCertified(env, nil, c.rq.Signature) {
			return fmt.Errorf("certified %s did not verify under the subnet key", c.method)
		}
		env.TipHeight++
		if w.Subnet.VerifyCertified(env, nil, c.rq.Signature) {
			return fmt.Errorf("%s certification verified after tampering with the bound tip height", c.method)
		}
	}
	return nil
}

// convergedWithHonestChain reports whether the chaos canister holds the
// honest chain in full: same tip hash and every block downloaded.
func (w *World) convergedWithHonestChain() bool {
	can := w.Canister()
	honest := w.Sim.Nodes[0]
	if can.AvailableHeight() != honest.Height() {
		return false
	}
	tip, err := can.Query(ic.NewCallContext(ic.KindQuery, w.Sched.Now()), "get_tip", nil)
	if err != nil {
		return false
	}
	hash, ok := tip.(btc.Hash)
	return ok && hash == honest.BestTip().Hash
}

// snapshots returns the chaos and oracle snapshots for byte comparison.
func (w *World) snapshots() (chaosSnap, oracleSnap []byte, err error) {
	chaosSnap, err = w.Canister().Snapshot()
	if err != nil {
		return nil, nil, fmt.Errorf("chaos snapshot: %w", err)
	}
	oracleSnap, err = w.Oracle.Snapshot()
	if err != nil {
		return nil, nil, fmt.Errorf("oracle snapshot: %w", err)
	}
	return chaosSnap, oracleSnap, nil
}
