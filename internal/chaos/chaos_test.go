package chaos

import (
	"flag"
	"os"
	"testing"
	"time"

	"icbtc/internal/simnet"
)

var (
	// soakFlag is the wall-clock budget for the long soak: the harness keeps
	// drawing fresh seeds and running the whole battery until time is up.
	soakFlag = flag.Duration("soak", 0, "wall-clock budget for TestChaosSoak (0 skips the soak)")
	// chaosSeed replays one failing seed — the one-liner every chaos failure
	// message prints.
	chaosSeed = flag.Int64("chaos.seed", 0, "override the scenario seed (0 = default battery seed)")
	// chaosScenario narrows TestChaosScenarios to one registered scenario —
	// the other half of the failure messages' reproduction one-liner.
	chaosScenario = flag.String("chaos.scenario", "", "run only this registered scenario (empty = the whole battery)")
	// soakMetrics writes the final soak run's merged obs metrics dump
	// (Prometheus text) to a file — CI uploads it as an artifact next to the
	// failing-seed log.
	soakMetrics = flag.String("soak.metrics", "", "path to write the soak's final metrics dump (empty = skip)")
)

// TestChaosScenarios is the short, seeded tier-1 variant: every registered
// scenario once, fixed seed, full invariant checking, and the run must end
// byte-identical to the undisturbed oracle.
func TestChaosScenarios(t *testing.T) {
	seed := int64(7)
	if *chaosSeed != 0 {
		seed = *chaosSeed
	}
	names := Names()
	if len(names) < 6 {
		t.Fatalf("scenario registry holds %d scenarios, want >= 6", len(names))
	}
	if *chaosScenario != "" {
		if _, ok := Lookup(*chaosScenario); !ok {
			t.Fatalf("unknown scenario %q (registered: %v)", *chaosScenario, names)
		}
		names = []string{*chaosScenario}
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			res, err := RunScenario(name, DefaultConfig(seed))
			if err != nil {
				t.Fatal(err)
			}
			if res.ConvergedRound < 0 {
				t.Fatalf("scenario did not reconverge: %+v", res)
			}
			s, _ := Lookup(name)
			if !res.OracleIdentical && !s.DivergentByDesign {
				t.Fatalf("final state not byte-identical to the oracle: %+v", res)
			}
			if res.RecoveryRounds < 0 {
				t.Fatalf("converged before heal?! %+v", res)
			}
			t.Logf("heal=%d converged=%d recovery=%d rounds, height=%d, snapshot=%dB",
				res.HealRound, res.ConvergedRound, res.RecoveryRounds, res.FinalHeight, res.SnapshotBytes)
		})
	}
}

// TestChaosDeterminism pins the harness's "same seed, same run" promise: a
// lossy-link scenario replayed under one seed must land on the identical
// Result, round for round. The loss path is the sensitive probe — every
// delivery consumes a seeded RNG draw, so any map-iteration-order leak in a
// send loop (the bug this test regressed on: adapter and node broadcast
// loops ranged over peer maps) shifts the draw sequence and with it the
// recovery round.
func TestChaosDeterminism(t *testing.T) {
	s := Scenario{
		Name: "determinism-probe",
		Step: func(w *World, round int) error {
			switch round {
			case injectRound:
				w.DegradeAdapterLinks(&simnet.LinkProfile{LossRate: 0.25})
			case healRound:
				w.DegradeAdapterLinks(nil)
				w.SetHealed(healRound)
			}
			return nil
		},
	}
	cfg := DefaultConfig(7)
	cfg.Rounds = 32
	first, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.MetricsDigest == ([32]byte{}) {
		t.Fatal("run produced an empty metrics digest")
	}
	for i := 0; i < 2; i++ {
		again, err := Run(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// The telemetry extension of the same-seed promise: the encoded obs
		// snapshot (canister + adapter + fleet serving counters) must be
		// bit-identical, compared by digest so a failure does not dump the
		// full Prometheus text.
		if again.MetricsDigest != first.MetricsDigest {
			t.Fatalf("replay %d: metrics snapshot diverged: digest %x vs %x",
				i+1, again.MetricsDigest, first.MetricsDigest)
		}
		a, f := again, first
		a.MetricsText, f.MetricsText = "", ""
		if a != f {
			t.Fatalf("replay %d diverged:\nfirst %+v\nagain %+v", i+1, f, a)
		}
	}
}

// TestChaosSoak runs the battery over fresh seeds until the -soak budget is
// spent: go test ./internal/chaos -run TestChaosSoak -soak 5m. Any failure
// message carries the seed and scenario for one-line reproduction.
func TestChaosSoak(t *testing.T) {
	if *soakFlag <= 0 {
		t.Skip("soak disabled; pass -soak 5m to run")
	}
	deadline := time.Now().Add(*soakFlag)
	runs := 0
	var lastMetrics string
	for seed := int64(1); time.Now().Before(deadline); seed++ {
		for _, name := range Names() {
			if !time.Now().Before(deadline) {
				break
			}
			cfg := DefaultConfig(seed)
			cfg.CertifyEvery = 20 // keep threshold signing from dominating the soak
			res, err := RunScenario(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.ConvergedRound < 0 {
				t.Fatalf("chaos: scenario %q seed %d: did not reconverge: %+v", name, seed, res)
			}
			lastMetrics = res.MetricsText
			runs++
		}
	}
	if *soakMetrics != "" && lastMetrics != "" {
		if err := os.WriteFile(*soakMetrics, []byte(lastMetrics), 0o644); err != nil {
			t.Errorf("writing soak metrics dump: %v", err)
		}
	}
	t.Logf("soak complete: %d scenario runs", runs)
}
