package queryfleet_test

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"icbtc/internal/btc"
	"icbtc/internal/canister"
	"icbtc/internal/ic"
	"icbtc/internal/queryfleet"
	"icbtc/internal/simnet"
)

// TestCacheServesIdenticalCertifiedEnvelope fills the hot-response cache
// with a signed get_utxos response and asserts the hit serves the same
// envelope — value digest and signature bytes — without re-execution, and
// that the cache-served signature still verifies under the subnet key.
func TestCacheServesIdenticalCertifiedEnvelope(t *testing.T) {
	sched := simnet.NewScheduler(7)
	scfg := ic.DefaultConfig()
	scfg.N = 4
	scfg.Seed = 7
	subnet, err := ic.NewSubnet(sched, scfg)
	if err != nil {
		t.Fatal(err)
	}

	cfg := queryfleet.DefaultConfig()
	cfg.Replicas = 2
	cfg.CacheEntries = 64
	cfg.Sign = queryfleet.CommitteeSigner(subnet.Committee())
	r := newRig(t, cfg, 10)

	args := canister.GetUTXOsArgs{Address: r.addr.String(), Limit: 5}
	fresh := r.fleet.RouteQuery("get_utxos", args, "client", r.now)
	if fresh.Err != nil {
		t.Fatal(fresh.Err)
	}
	if fresh.Signature == nil {
		t.Fatal("fresh response is not certified")
	}
	if r.fleet.Stats().CacheHits != 0 {
		t.Fatal("first request hit the cache")
	}
	if r.fleet.CacheSize() != 1 {
		t.Fatalf("cache size %d after fill, want 1", r.fleet.CacheSize())
	}

	served := r.fleet.Replica(0).Served() + r.fleet.Replica(1).Served()
	hit := r.fleet.RouteQuery("get_utxos", args, "client", r.now)
	if r.fleet.Stats().CacheHits != 1 {
		t.Fatalf("CacheHits = %d, want 1", r.fleet.Stats().CacheHits)
	}
	if got := r.fleet.Replica(0).Served() + r.fleet.Replica(1).Served(); got != served {
		t.Fatalf("cache hit re-executed: replica served count %d -> %d", served, got)
	}
	if ic.ResponseDigest(hit.Value, hit.Err) != ic.ResponseDigest(fresh.Value, fresh.Err) {
		t.Fatal("cache hit served a different response")
	}
	if !bytes.Equal(hit.Signature, fresh.Signature) {
		t.Fatal("cache hit served different signature bytes")
	}
	// The acceptance criterion: VerifyCertified passes on the cache-served
	// envelope exactly as on a fresh one.
	env := ic.CertifiedQuery{
		Method:       "get_utxos",
		Value:        hit.Value,
		ErrText:      ic.ErrText(hit.Err),
		AnchorHeight: hit.AnchorHeight,
		TipHeight:    hit.TipHeight,
	}
	if !subnet.VerifyCertified(env, nil, hit.Signature) {
		t.Fatal("cache-served envelope failed threshold verification")
	}

	// A differing argument field must miss (distinct canonical key).
	other := canister.GetUTXOsArgs{Address: r.addr.String(), Limit: 6}
	if rq := r.fleet.RouteQuery("get_utxos", other, "client", r.now); rq.Err != nil {
		t.Fatal(rq.Err)
	}
	if r.fleet.Stats().CacheHits != 1 {
		t.Fatal("request with a different Limit hit the hot entry")
	}
}

// TestCacheInvalidatedByFrames asserts every distributed frame invalidates
// the cache — the "never serve across a tip change" contract — and that
// serving resumes with a fresh fill afterwards.
func TestCacheInvalidatedByFrames(t *testing.T) {
	cfg := queryfleet.DefaultConfig()
	cfg.Replicas = 2
	cfg.CacheEntries = 64
	r := newRig(t, cfg, 10)

	args := canister.GetBalanceArgs{Address: r.addr.String()}
	first := r.fleet.RouteQuery("get_balance", args, "client", r.now)
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	if hits := r.fleet.Stats().CacheHits; hits != 0 {
		t.Fatalf("CacheHits = %d before any repeat", hits)
	}

	// Tip moves: the entry must not be served even though the key matches.
	r.feedBlock()
	if err := r.fleet.CatchUpAll(); err != nil {
		t.Fatal(err)
	}
	second := r.fleet.RouteQuery("get_balance", args, "client", r.now)
	if second.Err != nil {
		t.Fatal(second.Err)
	}
	if hits := r.fleet.Stats().CacheHits; hits != 0 {
		t.Fatalf("CacheHits = %d across a tip move, want 0", hits)
	}
	if second.Value.(int64) == first.Value.(int64) {
		t.Fatal("balance unchanged after a paying block; invalidation test is vacuous")
	}
	if want := r.authBalance(); second.Value.(int64) != want {
		t.Fatalf("post-frame response %d, authoritative %d", second.Value.(int64), want)
	}

	// Same generation again: now it hits, serving the refreshed value.
	third := r.fleet.RouteQuery("get_balance", args, "client", r.now)
	if hits := r.fleet.Stats().CacheHits; hits != 1 {
		t.Fatalf("CacheHits = %d after repeat at stable tip, want 1", hits)
	}
	if third.Value.(int64) != second.Value.(int64) {
		t.Fatal("cache hit served a stale value")
	}
}

// TestCacheNotFilledFromLaggingReplica feeds a frame the replicas have not
// applied and asserts responses computed from the lagging state are not
// cached: a fill is only sound when the serving state provably matches the
// current stream generation.
func TestCacheNotFilledFromLaggingReplica(t *testing.T) {
	cfg := queryfleet.DefaultConfig()
	cfg.Replicas = 2
	cfg.MaxLagBlocks = -1 // allow serving from the lagging state
	cfg.CacheEntries = 64
	r := newRig(t, cfg, 10)

	r.feedBlock() // enqueued on replicas, deliberately not applied
	rq := r.fleet.RouteQuery("get_balance", canister.GetBalanceArgs{Address: r.addr.String()}, "client", r.now)
	if rq.Err != nil {
		t.Fatal(rq.Err)
	}
	if rq.Forwarded {
		t.Fatal("query was forwarded; lagging-replica path not exercised")
	}
	if size := r.fleet.CacheSize(); size != 0 {
		t.Fatalf("lagging-replica response was cached (size %d)", size)
	}

	// Once the replicas catch up, the same request fills normally.
	if err := r.fleet.CatchUpAll(); err != nil {
		t.Fatal(err)
	}
	if rq := r.fleet.RouteQuery("get_balance", canister.GetBalanceArgs{Address: r.addr.String()}, "client", r.now); rq.Err != nil {
		t.Fatal(rq.Err)
	}
	if size := r.fleet.CacheSize(); size != 1 {
		t.Fatalf("cache size %d after caught-up fill, want 1", size)
	}
}

// TestCoalesceFansOutOneExecution parks a leader inside the signing stage,
// piles followers onto the same canonical request, and asserts exactly one
// execution happened whose response — signature bytes included — fanned
// out to every waiter.
func TestCoalesceFansOutOneExecution(t *testing.T) {
	const followers = 8

	block := make(chan struct{})
	entered := make(chan struct{}, 1)
	var signMu sync.Mutex
	signCount := 0
	cfg := queryfleet.DefaultConfig()
	cfg.Replicas = 2
	cfg.Coalesce = true
	cfg.Sign = func(digest []byte) ([]byte, error) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-block
		signMu.Lock()
		signCount++
		signMu.Unlock()
		sig := make([]byte, 64)
		copy(sig, digest)
		copy(sig[32:], digest)
		return sig, nil
	}
	r := newRig(t, cfg, 10)

	args := canister.GetUTXOsArgs{Address: r.addr.String(), Limit: 5}
	results := make(chan ic.RoutedQuery, followers+1)
	go func() { results <- r.fleet.RouteQuery("get_utxos", args, "client", r.now) }()
	<-entered // leader is executing, parked in the signer

	for i := 0; i < followers; i++ {
		go func() { results <- r.fleet.RouteQuery("get_utxos", args, "client", r.now) }()
	}
	deadline := time.Now().Add(10 * time.Second)
	for r.fleet.FlightWaiters("get_utxos", args) < followers {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d followers joined the flight", r.fleet.FlightWaiters("get_utxos", args), followers)
		}
		time.Sleep(time.Millisecond)
	}
	close(block)

	first := <-results
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	for i := 0; i < followers; i++ {
		rq := <-results
		if rq.Err != nil {
			t.Fatal(rq.Err)
		}
		if ic.ResponseDigest(rq.Value, rq.Err) != ic.ResponseDigest(first.Value, first.Err) {
			t.Fatal("coalesced follower got a different response")
		}
		if !bytes.Equal(rq.Signature, first.Signature) {
			t.Fatal("coalesced follower got different signature bytes")
		}
	}
	signMu.Lock()
	defer signMu.Unlock()
	if signCount != 1 {
		t.Fatalf("coalesced burst signed %d times, want 1", signCount)
	}
	st := r.fleet.Stats()
	if st.Coalesced != followers {
		t.Fatalf("Stats.Coalesced = %d, want %d", st.Coalesced, followers)
	}
	if st.Served != 1 {
		t.Fatalf("Stats.Served = %d, want 1 (one execution for the burst)", st.Served)
	}
}

// TestLayeredUnknownMethodStillErrors pins the fall-through: an
// unregistered method bypasses the layers and reports the canister's
// canonical dispatch error.
func TestLayeredUnknownMethodStillErrors(t *testing.T) {
	cfg := queryfleet.DefaultConfig()
	cfg.Replicas = 1
	cfg.Coalesce = true
	cfg.CacheEntries = 16
	r := newRig(t, cfg, 5)
	rq := r.fleet.RouteQuery("no_such_method", nil, "client", r.now)
	if rq.Err == nil || rq.Err.Error() != `canister: no query method "no_such_method"` {
		t.Fatalf("unknown method error = %v", rq.Err)
	}
	// A wrong-typed argument skips the layers but reports the typed error.
	rq = r.fleet.RouteQuery("get_utxos", canister.GetBalanceArgs{}, "client", r.now)
	if rq.Err == nil {
		t.Fatal("wrong-typed argument did not error")
	}
	if r.fleet.CacheSize() != 0 {
		t.Fatal("error responses were cached")
	}
}

// TestNetworkFieldChangesCacheKey guards the property end to end on the
// serving path: requests differing only in an argument field never share a
// cache entry.
func TestNetworkFieldChangesCacheKey(t *testing.T) {
	cfg := queryfleet.DefaultConfig()
	cfg.Replicas = 1
	cfg.CacheEntries = 16
	r := newRig(t, cfg, 5)

	a := canister.GetBalanceArgs{Address: r.addr.String()}
	b := canister.GetBalanceArgs{Address: r.addr.String(), Network: btc.Regtest}
	if rq := r.fleet.RouteQuery("get_balance", a, "client", r.now); rq.Err != nil {
		t.Fatal(rq.Err)
	}
	if rq := r.fleet.RouteQuery("get_balance", b, "client", r.now); rq.Err != nil {
		t.Fatal(rq.Err)
	}
	if hits := r.fleet.Stats().CacheHits; hits != 0 {
		t.Fatalf("distinct Network fields shared a cache entry (%d hits)", hits)
	}
	if size := r.fleet.CacheSize(); size != 2 {
		t.Fatalf("cache size %d, want 2 distinct entries", size)
	}
}
