// Package queryfleet is the certified read-replica serving layer for the
// Bitcoin canister. The paper's canister answers queries "on a single
// randomly chosen replica" whose responses "cannot be fully trusted"
// (§IV-B); this subsystem replaces that with a horizontally scaled fleet:
//
//   - Replicas hydrate from a canister snapshot (the statecodec fast-sync
//     image) and stay fresh by consuming the framed per-block delta stream
//     the canister publishes on every processed payload — they never
//     re-validate blocks or rebuild deltas.
//   - Each replica serves get_utxos / get_balance /
//     get_current_fee_percentiles / get_block_headers concurrently under an
//     epoch-counted RWMutex; execution capacity is modeled per replica, so
//     aggregate throughput scales with the fleet size.
//   - A bounded-staleness policy caps how far (in blocks) a serving replica
//     may lag the authoritative canister; beyond the bound the query is
//     rejected or forwarded to the authoritative canister, per
//     configuration.
//   - Responses are certified: the fleet threshold-signs the canonical
//     digest of an ic.CertifiedQuery envelope — the response bound to the
//     serving anchor and tip heights — so any client holding the subnet
//     public key verifies it via ic.Subnet.VerifyCertified, closing the
//     trust gap plain queries have.
//
// The fleet implements ic.QueryRouter, so ic.Subnet.Query routes through it
// once installed with Subnet.SetQueryRouter.
package queryfleet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"icbtc/internal/adapter"
	"icbtc/internal/canister"
	"icbtc/internal/ic"
	"icbtc/internal/tecdsa"
)

// StalePolicy selects what happens to a query whose chosen replica lags
// beyond Config.MaxLagBlocks.
type StalePolicy int

const (
	// StaleForward sends the query to the authoritative canister (default):
	// the client pays authoritative-path latency instead of staleness.
	StaleForward StalePolicy = iota
	// StaleReject fails the query with ErrTooStale; the client retries.
	StaleReject
)

// ErrTooStale reports a query rejected by the bounded-staleness policy.
var ErrTooStale = errors.New("queryfleet: replica lags beyond the staleness bound")

// SignFunc threshold-signs a 32-byte digest under the subnet key.
type SignFunc func(digest []byte) ([]byte, error)

// VerifyFunc checks a certification signature over a CertifiedQuery envelope
// against the subnet public key (ic.Subnet.VerifyCertified wrapped). When a
// verifier is installed (SetVerifier), the fleet audits every certified
// response a replica serves before returning it: a signature that does not
// verify, or a bound tip height outside the staleness bound, exposes an
// equivocating (byzantine) replica — it is ejected and the query retried on
// an honest one.
type VerifyFunc func(env ic.CertifiedQuery, signature []byte) bool

// FrameFault is a stream-corruption injection hook (SetFrameFault): called
// under the feed lock for every (replica, frame) pair, it returns the wire
// frames actually delivered to that replica's inbox — nil drops the frame (a
// gap), the same bytes twice duplicates it, modified bytes model bit-flips
// or truncation, and holding bytes to return with a later frame reorders the
// stream. Test and chaos harness use only.
type FrameFault func(replica int, seq uint64, raw []byte) [][]byte

// CommitteeSigner adapts a tecdsa committee to SignFunc. The committee's
// signing protocol is not safe for concurrent use, so the adapter
// serializes calls.
func CommitteeSigner(c *tecdsa.Committee) SignFunc {
	var mu sync.Mutex
	return func(digest []byte) ([]byte, error) {
		mu.Lock()
		defer mu.Unlock()
		sig, err := c.SignSchnorr(digest)
		if err != nil {
			return nil, err
		}
		return sig.Serialize(), nil
	}
}

// Authority is the fleet's view of the authoritative canister: the
// snapshot source for hydration and the forward target for queries beyond
// the staleness bound. *canister.BitcoinCanister satisfies it.
//
// The fleet serializes its own authority access (forwards, hydration
// snapshots) internally, but it cannot see the producer that mutates the
// authority between frames. A producer that runs on its own goroutine
// while queries are being served concurrently (live deployments with
// StaleForward or mid-run hydration) must wrap every authority mutation in
// Fleet.GuardAuthority, so forwards never observe a half-applied payload.
// Single-threaded drivers — the ic.Subnet scheduler, the differential
// harness, the benchmarks — need no guard: there, queries and payloads
// already execute on one goroutine.
type Authority interface {
	Snapshot() ([]byte, error)
	Query(ctx *ic.CallContext, method string, arg any) (any, error)
	TipHeight() int64
	AnchorHeight() int64
}

// Config parameterizes a fleet.
type Config struct {
	// Replicas is the fleet size.
	Replicas int
	// MaxLagBlocks bounds how many blocks a serving replica may lag the
	// authoritative tip; a negative value disables the bound.
	MaxLagBlocks int64
	// StalePolicy picks reject-or-forward beyond the bound.
	StalePolicy StalePolicy
	// QueryConcurrency is the number of concurrent query executions per
	// replica; <= 0 means 1 (the IC executes canister queries sequentially
	// per replica).
	QueryConcurrency int
	// ExecRate, when > 0, models each replica's execution speed in
	// instructions per second: a query holds its execution slot for its
	// metered instruction count divided by this rate. Zero disables the
	// model (slots are held only for the native execution time).
	ExecRate float64
	// Sign, when set, certifies every response (replica-served and
	// forwarded alike).
	Sign SignFunc
	// AutoApply starts one background worker per replica that applies
	// frames as they arrive. Leave false to control application manually
	// (ApplyPending / CatchUp) — the differential harness does.
	AutoApply bool
	// HydrateWorkers parallelizes snapshot decoding during replica
	// (re)hydration — sharded script-table/bucket decode plus concurrent
	// block parsing (canister.RestoreSnapshotParallel). 0 selects
	// ingest.DefaultWorkers(); 1 forces the serial decoder. The hydrated
	// state is identical either way.
	HydrateWorkers int
	// PrepareWorkers parallelizes decoding and block-parsing of queued
	// stream frames ahead of their (strictly sequential) application — the
	// catch-up accelerator for replicas that fell behind. 0 selects
	// ingest.DefaultWorkers(); 1 forces serial. Applied state is identical
	// either way.
	PrepareWorkers int
	// Coalesce collapses concurrent identical queries (same canonical
	// request key from the canister's method registry) into one execution
	// whose response — signature included — fans out to every waiter.
	Coalesce bool
	// CacheEntries bounds the certified hot-response cache (0 disables):
	// responses to cacheable methods are served without re-execution until
	// the next stream frame invalidates them (see serving.go).
	CacheEntries int
	// Budgets, when non-empty, enables cost-aware admission control:
	// executions are charged against their method's cost-class token
	// bucket; the overflow is shed with ErrBusy. Unlisted classes are
	// never shed. Refill is driven by the virtual timestamps queries
	// carry, so it must only be enabled by drivers that advance `now`.
	Budgets map[canister.CostClass]Budget
	// AutoResync turns a frame-integrity rejection (corrupt bytes, sequence
	// gap, mismatched embedded sequence, failed application) into an
	// automatic re-hydration from a fresh authority snapshot instead of a
	// sticky quarantine: the replica jumps past the damage and resumes
	// serving. Manual Quarantine() remains sticky either way. An authority
	// whose frame stream moves the tip backwards (state-loss recovery)
	// likewise flags every replica for resync.
	AutoResync bool
	// Verify installs the certified-response audit at construction time
	// (SetVerifier swaps it later). See VerifyFunc.
	Verify VerifyFunc
}

// DefaultConfig returns a 4-replica fleet with a 2-block staleness bound
// (the canister's own τ default) that forwards stale queries.
func DefaultConfig() Config {
	return Config{Replicas: 4, MaxLagBlocks: 2, StalePolicy: StaleForward}
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Served    uint64 // queries answered by replicas
	Forwarded uint64 // queries sent to the authoritative canister
	Rejected  uint64 // queries failed with ErrTooStale
	Certified uint64 // responses that carry a certification
	Frames    uint64 // stream frames distributed
	Coalesced uint64 // queries served as followers of a coalesced flight
	CacheHits uint64 // queries served from the certified response cache
	Shed      uint64 // queries shed by admission control (ErrBusy)

	FrameCorrupt     uint64 // frames rejected by checksum/decode or embedded-seq mismatch
	FrameGaps        uint64 // frames rejected for a sequence gap (drop or reorder)
	FrameDuplicates  uint64 // re-delivered frames skipped as already applied
	Resyncs          uint64 // automatic re-hydrations triggered by integrity failures
	ByzantineEjected uint64 // replicas ejected by the certified-response audit
}

// Fleet distributes the canister's delta stream to its replicas and routes
// queries across them.
type Fleet struct {
	cfg  Config
	auth Authority
	// authMu serializes fleet-initiated authority access (forwards and
	// hydration snapshots) — the authoritative canister is single-threaded.
	authMu sync.Mutex
	// feedMu orders frame distribution against replica addition/hydration,
	// so no replica ever misses a frame or sees one twice.
	feedMu sync.Mutex
	seq    uint64 // last distributed frame seq (under feedMu)

	authTip atomic.Int64
	// gen mirrors seq for the serving layers: the stream generation cached
	// responses and coalesced flights are keyed on. Bumped on every
	// distributed frame (under feedMu), read lock-free on the query path.
	gen atomic.Uint64
	// degraded caches the adapter health carried on the last distributed
	// frame: while true, every routed response is annotated as possibly
	// stale (the explicit degraded-mode serving contract).
	degraded atomic.Bool

	replicas []*Replica
	rr       atomic.Uint64
	closed   chan struct{}
	once     sync.Once
	// wg joins the auto-apply workers so Close returns only after every
	// worker has exited — no goroutine keeps mutating replica state or
	// metrics behind a closed fleet.
	wg sync.WaitGroup

	// frameFault, when set, intercepts frame delivery per replica (stream
	// corruption injection; under feedMu).
	frameFault FrameFault

	// sign is the active certification signer (swap with SetSigner; key
	// rotation, or a harness certifying selectively).
	signMu sync.RWMutex
	sign   SignFunc
	// verify is the certified-response audit (swap with SetVerifier).
	verifyMu sync.RWMutex
	verify   VerifyFunc

	// met holds the registry-backed counters the old ad-hoc atomics became
	// (plus the stats lock that makes Stats() tear-free) and the fleet's obs
	// registry.
	met *fleetMetrics

	// serving holds the coalesce/cache/admission layer state; nil when
	// every layer is disabled (the pre-existing zero-overhead path).
	serving *serving

	// lastApplyErr records the first background frame-application failure
	// (auto mode); surfaced via Err.
	applyErrMu sync.Mutex
	applyErr   error
}

// StreamSource is implemented by authorities that can publish the delta
// stream themselves (*canister.BitcoinCanister does). New installs the
// fleet's Feed on such an authority before taking the hydration snapshot,
// so no payload can slip between hydration and subscription — a frame
// missed there would freeze the fleet's view of the authoritative tip and
// let the staleness bound read stale replicas as fresh.
type StreamSource interface {
	SetStreamSink(func(*canister.Frame))
}

// New hydrates cfg.Replicas replicas from one snapshot of the authority
// and returns the fleet. When the authority implements StreamSource (the
// Bitcoin canister does), the fleet subscribes itself to the delta stream;
// otherwise the caller must wire SetStreamSink(fleet.Feed) before the next
// payload is processed. A caller that replaces the authority instance
// (canister upgrade, snapshot restore) must re-install the sink on the new
// instance. Install the fleet as the subnet's query router
// (SetQueryRouter) to serve traffic.
func New(auth Authority, cfg Config) (*Fleet, error) {
	if cfg.Replicas <= 0 {
		return nil, fmt.Errorf("queryfleet: fleet needs at least one replica, got %d", cfg.Replicas)
	}
	f := &Fleet{cfg: cfg, auth: auth, sign: cfg.Sign, verify: cfg.Verify, closed: make(chan struct{}), met: newFleetMetrics()}
	f.serving = newServing(cfg)
	f.authMu.Lock()
	if src, ok := auth.(StreamSource); ok {
		src.SetStreamSink(f.Feed)
	}
	snapshot, err := auth.Snapshot()
	tip := auth.TipHeight()
	f.authMu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("queryfleet: snapshot for hydration: %w", err)
	}
	f.authTip.Store(tip)
	for i := 0; i < cfg.Replicas; i++ {
		r, err := newReplica(i, f, snapshot, 0)
		if err != nil {
			return nil, err
		}
		f.replicas = append(f.replicas, r)
		if cfg.AutoApply {
			f.startWorker(r)
		}
	}
	return f, nil
}

// startWorker launches one replica's auto-apply worker under the fleet's
// join group.
func (f *Fleet) startWorker(r *Replica) {
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		r.runWorker(f.closed)
	}()
}

// Close stops the auto-apply workers and joins them: on return no worker
// goroutine is running, so every frame-application metric and state mutation
// has landed. Queries already in flight complete.
func (f *Fleet) Close() {
	f.once.Do(func() { close(f.closed) })
	f.wg.Wait()
}

// Replicas returns the fleet size.
func (f *Fleet) Replicas() int { return len(f.replicas) }

// Replica returns one replica by index (test and harness access).
func (f *Fleet) Replica(i int) *Replica { return f.replicas[i] }

// Stats returns the current counters — now a compatibility view over the
// obs registry, read under one lock so the snapshot is consistent: counter
// groups bumped together on the serving path (served+certified,
// forwarded+certified) appear together or not at all. The old
// independently-read atomics could tear mid-burst, showing a Certified
// count with no matching Served/Forwarded.
func (f *Fleet) Stats() Stats { return f.met.snapshotStats() }

// Err returns the first background frame-application error, if any.
func (f *Fleet) Err() error {
	f.applyErrMu.Lock()
	defer f.applyErrMu.Unlock()
	return f.applyErr
}

func (f *Fleet) noteApplyError(err error) {
	f.applyErrMu.Lock()
	if f.applyErr == nil {
		f.applyErr = err
	}
	f.applyErrMu.Unlock()
}

// LastSeq returns the sequence number of the last distributed frame.
func (f *Fleet) LastSeq() uint64 {
	f.feedMu.Lock()
	defer f.feedMu.Unlock()
	return f.seq
}

// AuthTipHeight returns the authoritative tip height as of the last frame.
func (f *Fleet) AuthTipHeight() int64 { return f.authTip.Load() }

// Feed is the canister's stream sink: it stamps the frame with the next
// sequence number, encodes it once, and enqueues the bytes on every
// replica. Apply happens on the replicas' side (workers in auto mode,
// ApplyPending otherwise), so a slow replica lags instead of stalling the
// authoritative canister.
func (f *Fleet) Feed(frame *canister.Frame) {
	f.feedMu.Lock()
	f.seq++
	frame.Seq = f.seq
	f.gen.Store(f.seq)
	raw := canister.EncodeFrame(frame)
	// A tip moving backwards on the authoritative stream is not a reorg
	// (reorgs never lower the considered tip height) — it means the
	// authority lost state and recovered from an older checkpoint. Replicas
	// ahead of it would "apply" the replayed frames as no-ops while serving
	// a future the authority no longer has; flag them all for resync.
	if f.cfg.AutoResync && frame.TipHeight < f.authTip.Load() {
		for _, r := range f.replicas {
			r.needsResync.Store(true)
		}
	}
	f.authTip.Store(frame.TipHeight)
	f.degraded.Store(frame.Health.State == adapter.StateDegraded)
	at := f.met.reg.Now()
	for _, r := range f.replicas {
		if f.frameFault != nil {
			for _, alt := range f.frameFault(r.index, frame.Seq, raw) {
				r.enqueue(alt, frame.Seq, at)
			}
		} else {
			r.enqueue(raw, frame.Seq, at)
		}
	}
	f.feedMu.Unlock()
	f.met.countGroup(f.met.frames.Inc)
}

// SetFrameFault installs (nil removes) the stream-corruption injection hook.
// Not for production paths — the chaos and differential harnesses use it to
// prove the frame-integrity machinery detects and recovers every corruption
// class.
func (f *Fleet) SetFrameFault(h FrameFault) {
	f.feedMu.Lock()
	f.frameFault = h
	f.feedMu.Unlock()
}

// GuardAuthority runs fn while holding the fleet's authority lock — the
// lock stale-query forwarding and hydration snapshots take. A producer
// that mutates the authority (ProcessPayload) from its own goroutine while
// the fleet serves concurrently wraps each mutation in it:
//
//	fleet.GuardAuthority(func() error {
//	    return can.ProcessPayload(ctx, payload) // Feed fires inside
//	})
//
// The frame sink runs inside fn (the canister publishes synchronously), so
// replicas receive the frame before any forwarded query can observe the
// post-payload state without it.
func (f *Fleet) GuardAuthority(fn func() error) error {
	f.authMu.Lock()
	defer f.authMu.Unlock()
	return fn()
}

// resyncReplica is the automatic-recovery path frame-integrity failures
// take under Config.AutoResync: a plain re-hydration, counted. Called with
// no fleet locks held (HydrateReplica takes authMu → feedMu itself).
func (f *Fleet) resyncReplica(i int) error {
	if err := f.HydrateReplica(i); err != nil {
		return err
	}
	f.met.countGroup(f.met.resyncs.Inc)
	return nil
}

// HydrateReplica refreshes one replica from a fresh authority snapshot —
// fast-sync for a replica that fell too far behind (or a new one), jumping
// it to the current stream position without replaying frames.
func (f *Fleet) HydrateReplica(i int) error {
	// Lock order is authMu → feedMu, matching GuardAuthority(fn)'s
	// authMu → Feed's feedMu; taking them in the opposite order here would
	// deadlock against a guarded producer. feedMu makes the snapshot
	// atomic with respect to the stream: every frame after seq reaches the
	// replica's inbox, every earlier one is superseded by the snapshot.
	f.authMu.Lock()
	defer f.authMu.Unlock()
	f.feedMu.Lock()
	defer f.feedMu.Unlock()
	snapshot, err := f.auth.Snapshot()
	if err != nil {
		return fmt.Errorf("queryfleet: snapshot for re-hydration: %w", err)
	}
	return f.replicas[i].Hydrate(snapshot, f.seq)
}

// AddReplica hydrates one new replica from a fresh authority snapshot and
// joins it to the fleet mid-stream (replica churn: scale-out, or replacing
// a decommissioned member). The snapshot and the join are atomic with
// respect to the stream — the newcomer sees every frame after its snapshot
// and none before — so it serves from a consistent state immediately.
//
// The replicas slice is read without a lock on the serving path, so
// AddReplica must not run concurrently with RouteQuery; call it from the
// single-threaded driver that owns the fleet (the chaos harness does).
func (f *Fleet) AddReplica() (int, error) {
	// Same lock order as HydrateReplica: authMu → feedMu.
	f.authMu.Lock()
	defer f.authMu.Unlock()
	f.feedMu.Lock()
	defer f.feedMu.Unlock()
	snapshot, err := f.auth.Snapshot()
	if err != nil {
		return 0, fmt.Errorf("queryfleet: snapshot for replica join: %w", err)
	}
	r, err := newReplica(len(f.replicas), f, snapshot, f.seq)
	if err != nil {
		return 0, err
	}
	f.replicas = append(f.replicas, r)
	if f.cfg.AutoApply {
		f.startWorker(r)
	}
	return r.index, nil
}

// CatchUpAll applies every queued frame on every replica (manual mode).
func (f *Fleet) CatchUpAll() error {
	for _, r := range f.replicas {
		if err := r.CatchUp(); err != nil {
			return err
		}
	}
	return nil
}

// RouteQuery implements ic.QueryRouter. With serving layers enabled the
// query runs coalesce → cache → admit → execute (serving.go); otherwise it
// goes straight to execution: pick a healthy replica round-robin, apply the
// bounded-staleness policy, execute, certify.
func (f *Fleet) RouteQuery(method string, arg any, caller string, now time.Time) ic.RoutedQuery {
	_ = caller // principals do not affect read-only routing
	if f.serving != nil {
		if m, ok := canister.MethodByName(method); ok {
			return f.routeLayered(m, method, arg, now)
		}
		// Unregistered method: fall through so the replica reports the
		// canonical dispatch error.
	}
	rq, _, _ := f.executeQuery(method, arg, now)
	return rq
}

// executeQuery is the execution layer: pick a healthy replica round-robin,
// apply the bounded-staleness policy, execute, certify. Quarantined
// replicas (failed frame application) are skipped; if every replica is
// quarantined the query goes to the authoritative canister. servedSeq is
// the stream position of the replica state the response was computed at
// (0 for forwarded and rejected queries — the forwarded flag disambiguates),
// which is what lets the cache layer prove a response belongs to the
// current generation.
func (f *Fleet) executeQuery(method string, arg any, now time.Time) (rq ic.RoutedQuery, servedSeq uint64, forwarded bool) {
	// The outer loop is the byzantine-ejection retry: a replica whose
	// certified response fails the audit is ejected and the query re-routed
	// to the next healthy replica; when none remain, the authority serves.
	for attempt := 0; attempt < len(f.replicas); attempt++ {
		var r *Replica
		for probe := 0; probe < len(f.replicas); probe++ {
			// Modulo in uint64 space: a truncating int() conversion could go
			// negative on 32-bit platforms once the counter wraps 2^31.
			cand := f.replicas[int(f.rr.Add(1)%uint64(len(f.replicas)))]
			if !cand.broken.Load() {
				r = cand
				break
			}
		}
		if r == nil {
			return f.forward(method, arg, now), 0, true
		}

		if f.cfg.MaxLagBlocks >= 0 {
			if lag := f.authTip.Load() - r.TipHeight(); lag > f.cfg.MaxLagBlocks {
				if f.cfg.StalePolicy == StaleReject {
					f.met.countGroup(f.met.rejected.Inc)
					return ic.RoutedQuery{Err: fmt.Errorf("%w: replica %d lags %d blocks (bound %d)",
						ErrTooStale, r.index, lag, f.cfg.MaxLagBlocks)}, 0, false
				}
				return f.forward(method, arg, now), 0, true
			}
		}

		value, err, instructions, tip, anchor, seq := r.serve(method, arg, now)
		f.met.reg.Trace("fleet.execute", method)
		var certified bool
		rq, certified = f.certify(ic.RoutedQuery{
			Value:        value,
			Err:          err,
			Instructions: instructions,
			AnchorHeight: anchor,
			TipHeight:    tip,
			Degraded:     f.degraded.Load(),
		}, method)
		// Equivocation fault hook: a byzantine replica corrupts its response
		// after certification (tampered envelope or a stale signed replay).
		rq = r.equivocate(method, rq)
		f.met.countGroup(func() {
			f.met.served.Inc()
			if certified {
				f.met.certified.Inc()
			}
		})
		if !f.auditResponse(method, rq) {
			// The replica served a response that fails verification under the
			// subnet key or binds a tip outside the staleness bound while the
			// replica itself reads as fresh — equivocation either way. Eject
			// it and retry on an honest replica.
			r.broken.Store(true)
			f.met.countGroup(f.met.byzantine.Inc)
			continue
		}
		return rq, seq, false
	}
	return f.forward(method, arg, now), 0, true
}

// auditResponse cross-checks a replica-served certified response: the
// signature must verify over the envelope the response claims, and the bound
// tip height must sit inside the staleness bound relative to the
// authoritative tip. Responses without a signature (signing disabled) and
// fleets without a verifier pass unaudited.
func (f *Fleet) auditResponse(method string, rq ic.RoutedQuery) bool {
	f.verifyMu.RLock()
	verify := f.verify
	f.verifyMu.RUnlock()
	if verify == nil || rq.Signature == nil {
		return true
	}
	env := ic.CertifiedQuery{
		Method:       method,
		Value:        rq.Value,
		ErrText:      ic.ErrText(rq.Err),
		AnchorHeight: rq.AnchorHeight,
		TipHeight:    rq.TipHeight,
	}
	if !verify(env, rq.Signature) {
		return false
	}
	// Generation bound: a correctly signed envelope from a long-dead tip is
	// the stale-replay equivocation; the bound that limits replica lag also
	// limits how old a served certification may be.
	if f.cfg.MaxLagBlocks >= 0 && f.authTip.Load()-rq.TipHeight > f.cfg.MaxLagBlocks {
		return false
	}
	return true
}

// SetVerifier replaces the certified-response audit (nil disables it). Safe
// for concurrent use with serving.
func (f *Fleet) SetVerifier(v VerifyFunc) {
	f.verifyMu.Lock()
	f.verify = v
	f.verifyMu.Unlock()
}

// CacheSize returns the number of resident response-cache entries.
func (f *Fleet) CacheSize() int { return f.serving.CacheSize() }

// Degraded reports whether the last distributed frame carried a degraded
// adapter health report.
func (f *Fleet) Degraded() bool { return f.degraded.Load() }

// forward serves a query from the authoritative canister (the
// reject-or-forward escape hatch of the staleness policy).
func (f *Fleet) forward(method string, arg any, now time.Time) ic.RoutedQuery {
	ctx := ic.NewCallContext(ic.KindQuery, now)
	f.authMu.Lock()
	value, err := f.auth.Query(ctx, method, arg)
	tip, anchor := f.auth.TipHeight(), f.auth.AnchorHeight()
	f.authMu.Unlock()
	rq, certified := f.certify(ic.RoutedQuery{
		Value:        value,
		Err:          err,
		Instructions: ctx.Meter.Total(),
		AnchorHeight: anchor,
		TipHeight:    tip,
		Forwarded:    true,
		Degraded:     f.degraded.Load(),
	}, method)
	f.met.countGroup(func() {
		f.met.forwarded.Inc()
		if certified {
			f.met.certified.Inc()
		}
	})
	return rq
}

// SetSigner replaces the certification signer (nil disables
// certification). Safe for concurrent use with serving.
func (f *Fleet) SetSigner(sign SignFunc) {
	f.signMu.Lock()
	f.sign = sign
	f.signMu.Unlock()
}

// certify threshold-signs the canonical digest of the response's
// CertifiedQuery envelope, binding it to the anchor and tip heights it was
// served at. It reports rather than counts success: the caller bumps the
// certified counter inside the same counter group as its served/forwarded
// bump, so a Stats snapshot can never observe one without the other.
func (f *Fleet) certify(rq ic.RoutedQuery, method string) (ic.RoutedQuery, bool) {
	f.signMu.RLock()
	sign := f.sign
	f.signMu.RUnlock()
	if sign == nil {
		return rq, false
	}
	env := ic.CertifiedQuery{
		Method:       method,
		Value:        rq.Value,
		ErrText:      ic.ErrText(rq.Err),
		AnchorHeight: rq.AnchorHeight,
		TipHeight:    rq.TipHeight,
	}
	digest := ic.ResponseDigest(env, nil)
	sig, err := sign(digest[:])
	if err != nil {
		// A failed signing round leaves the response uncertified rather
		// than failing the query; the client sees the missing signature.
		return rq, false
	}
	rq.Signature = sig
	return rq, true
}

// Compile-time interface checks.
var (
	_ ic.QueryRouter = (*Fleet)(nil)
	_ Authority      = (*canister.BitcoinCanister)(nil)
)
