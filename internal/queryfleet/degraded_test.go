package queryfleet_test

import (
	"testing"

	"icbtc/internal/adapter"
	"icbtc/internal/canister"
	"icbtc/internal/ic"
	"icbtc/internal/queryfleet"
)

// TestFleetDegradedAnnotation: when the adapter behind the authoritative
// canister stalls, the fleet keeps serving — but every routed response is
// annotated Degraded, and get_health through the fleet explains the state.
// Recovery clears the annotation.
func TestFleetDegradedAnnotation(t *testing.T) {
	cfg := queryfleet.DefaultConfig()
	cfg.Replicas = 2
	r := newRig(t, cfg, 4)
	if err := r.fleet.CatchUpAll(); err != nil {
		t.Fatal(err)
	}

	rq := r.fleet.RouteQuery("get_tip", nil, "client", r.now)
	if rq.Err != nil || rq.Degraded {
		t.Fatalf("healthy fleet: err=%v degraded=%v", rq.Err, rq.Degraded)
	}

	// The adapter reports a stall on an otherwise empty payload. The health
	// flip alone publishes a frame, so the fleet learns immediately — before
	// any replica even applies it.
	stalled := adapter.Health{State: adapter.StateDegraded, Height: 4, Peers: 3}
	ctx := ic.NewCallContext(ic.KindUpdate, r.now)
	if err := r.f.Canister.ProcessPayload(ctx, adapter.Response{Health: stalled}); err != nil {
		t.Fatal(err)
	}
	if !r.fleet.Degraded() {
		t.Fatal("fleet did not pick up the degraded health frame")
	}
	rq = r.fleet.RouteQuery("get_tip", nil, "client", r.now)
	if rq.Err != nil {
		t.Fatalf("degraded mode must keep serving: %v", rq.Err)
	}
	if !rq.Degraded {
		t.Fatal("routed response not annotated Degraded during the stall")
	}

	// get_health routed through the fleet reports the stall too (after the
	// replicas apply the health frame).
	if err := r.fleet.CatchUpAll(); err != nil {
		t.Fatal(err)
	}
	rq = r.fleet.RouteQuery("get_health", nil, "client", r.now)
	if rq.Err != nil {
		t.Fatal(rq.Err)
	}
	if h := rq.Value.(*canister.HealthStatus); !h.Degraded || h.AdapterState != adapter.StateDegraded {
		t.Fatalf("fleet get_health missed the stall: %+v", h)
	}

	// Recovery: a syncing report clears the annotation.
	if err := r.f.Canister.ProcessPayload(ic.NewCallContext(ic.KindUpdate, r.now),
		adapter.Response{Health: adapter.Health{State: adapter.StateSyncing, Height: 4, Peers: 3}}); err != nil {
		t.Fatal(err)
	}
	rq = r.fleet.RouteQuery("get_tip", nil, "client", r.now)
	if rq.Err != nil || rq.Degraded {
		t.Fatalf("annotation not cleared after recovery: err=%v degraded=%v", rq.Err, rq.Degraded)
	}
}
