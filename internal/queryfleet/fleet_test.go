package queryfleet_test

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"icbtc/internal/btc"
	"icbtc/internal/canister"
	"icbtc/internal/experiments"
	"icbtc/internal/ic"
	"icbtc/internal/queryfleet"
	"icbtc/internal/simnet"
)

// rig couples a feeder-driven authoritative canister to a fleet.
type rig struct {
	t     *testing.T
	f     *experiments.Feeder
	fleet *queryfleet.Fleet
	addr  btc.Address
	now   time.Time
}

func newRig(t *testing.T, cfg queryfleet.Config, preload int) *rig {
	t.Helper()
	r := &rig{
		t:    t,
		f:    experiments.NewFeeder(btc.Regtest, 6, 911),
		addr: btc.NewP2PKHAddress([20]byte{0xAB}, btc.Regtest),
		now:  time.Unix(1_700_000_000, 0).UTC(),
	}
	for i := 0; i < preload; i++ {
		r.feedBlock()
	}
	fleet, err := queryfleet.New(r.f.Canister, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.fleet = fleet
	// Frames published from here on reach the fleet.
	r.f.Canister.SetStreamSink(fleet.Feed)
	t.Cleanup(fleet.Close)
	return r
}

func (r *rig) feedBlock() {
	script := btc.PayToAddrScript(r.addr)
	if _, err := r.f.FeedBlock([]experiments.TxSpec{{Outputs: experiments.PayN(script, 3, 700)}}); err != nil {
		r.t.Fatal(err)
	}
}

func (r *rig) authBalance() int64 {
	ctx := ic.NewCallContext(ic.KindQuery, r.now)
	v, err := r.f.Canister.GetBalance(ctx, canister.GetBalanceArgs{Address: r.addr.String()})
	if err != nil {
		r.t.Fatal(err)
	}
	return v
}

// TestFleetServesIdenticalResponses hydrates replicas, feeds more blocks
// through the delta stream, and checks that routed queries answer exactly
// like the authoritative canister.
func TestFleetServesIdenticalResponses(t *testing.T) {
	cfg := queryfleet.DefaultConfig()
	cfg.Replicas = 3
	r := newRig(t, cfg, 10)
	for i := 0; i < 8; i++ {
		r.feedBlock()
	}
	if err := r.fleet.CatchUpAll(); err != nil {
		t.Fatal(err)
	}
	want := r.authBalance()
	if want == 0 {
		t.Fatal("authoritative balance is zero; workload is vacuous")
	}
	args := canister.GetBalanceArgs{Address: r.addr.String()}
	for i := 0; i < 6; i++ { // round-robin across all replicas
		rq := r.fleet.RouteQuery("get_balance", args, "client", r.now)
		if rq.Err != nil {
			t.Fatalf("routed query %d: %v", i, rq.Err)
		}
		if got := rq.Value.(int64); got != want {
			t.Fatalf("routed query %d: balance %d, authoritative %d", i, got, want)
		}
		if rq.Forwarded {
			t.Fatalf("routed query %d was forwarded despite caught-up replicas", i)
		}
		if rq.TipHeight != r.f.Canister.TipHeight() {
			t.Fatalf("routed query %d bound to tip %d, authoritative %d", i, rq.TipHeight, r.f.Canister.TipHeight())
		}
	}
	// get_utxos responses must match the authoritative page too.
	uargs := canister.GetUTXOsArgs{Address: r.addr.String(), Limit: 7}
	ctx := ic.NewCallContext(ic.KindQuery, r.now)
	authRes, err := r.f.Canister.GetUTXOs(ctx, uargs)
	if err != nil {
		t.Fatal(err)
	}
	rq := r.fleet.RouteQuery("get_utxos", uargs, "client", r.now)
	if rq.Err != nil {
		t.Fatal(rq.Err)
	}
	if ic.ResponseDigest(rq.Value, nil) != ic.ResponseDigest(authRes, nil) {
		t.Fatal("routed get_utxos diverged from the authoritative response")
	}
}

// TestFleetStalenessPolicy lets replicas lag beyond the bound and checks
// both policies: rejection with ErrTooStale, and forwarding that serves
// the authoritative state.
func TestFleetStalenessPolicy(t *testing.T) {
	cfg := queryfleet.DefaultConfig()
	cfg.Replicas = 2
	cfg.MaxLagBlocks = 1
	cfg.StalePolicy = queryfleet.StaleReject
	r := newRig(t, cfg, 8)
	// Three new blocks, never applied by the replicas: lag 3 > bound 1.
	for i := 0; i < 3; i++ {
		r.feedBlock()
	}
	args := canister.GetBalanceArgs{Address: r.addr.String()}
	rq := r.fleet.RouteQuery("get_balance", args, "client", r.now)
	if !errors.Is(rq.Err, queryfleet.ErrTooStale) {
		t.Fatalf("want ErrTooStale, got %v", rq.Err)
	}
	if r.fleet.Stats().Rejected == 0 {
		t.Fatal("rejection not counted")
	}

	// Same lag, forwarding policy: the answer must be the *current*
	// authoritative balance, not the stale replica view.
	cfg.StalePolicy = queryfleet.StaleForward
	r2 := newRig(t, cfg, 8)
	staleWant := r2.authBalance()
	for i := 0; i < 3; i++ {
		r2.feedBlock()
	}
	freshWant := r2.authBalance()
	if freshWant == staleWant {
		t.Fatal("workload did not change the balance; staleness is unobservable")
	}
	rq = r2.fleet.RouteQuery("get_balance", args, "client", r2.now)
	if rq.Err != nil {
		t.Fatal(rq.Err)
	}
	if !rq.Forwarded {
		t.Fatal("stale query was not forwarded")
	}
	if got := rq.Value.(int64); got != freshWant {
		t.Fatalf("forwarded balance %d, want fresh authoritative %d", got, freshWant)
	}
	// Once replicas catch up, forwarding stops.
	if err := r2.fleet.CatchUpAll(); err != nil {
		t.Fatal(err)
	}
	rq = r2.fleet.RouteQuery("get_balance", args, "client", r2.now)
	if rq.Err != nil || rq.Forwarded {
		t.Fatalf("caught-up query: err=%v forwarded=%v", rq.Err, rq.Forwarded)
	}
}

// TestFleetRehydration jumps a hopelessly lagging replica to the current
// state via snapshot fast-sync instead of frame replay.
func TestFleetRehydration(t *testing.T) {
	cfg := queryfleet.DefaultConfig()
	cfg.Replicas = 1
	cfg.MaxLagBlocks = 0
	cfg.StalePolicy = queryfleet.StaleReject
	r := newRig(t, cfg, 6)
	for i := 0; i < 5; i++ {
		r.feedBlock()
	}
	if rq := r.fleet.RouteQuery("get_balance", canister.GetBalanceArgs{Address: r.addr.String()}, "c", r.now); !errors.Is(rq.Err, queryfleet.ErrTooStale) {
		t.Fatalf("want ErrTooStale before re-hydration, got %v", rq.Err)
	}
	if err := r.fleet.HydrateReplica(0); err != nil {
		t.Fatal(err)
	}
	if pending := r.fleet.Replica(0).Pending(); pending != 0 {
		t.Fatalf("re-hydrated replica still has %d queued frames", pending)
	}
	rq := r.fleet.RouteQuery("get_balance", canister.GetBalanceArgs{Address: r.addr.String()}, "c", r.now)
	if rq.Err != nil {
		t.Fatal(rq.Err)
	}
	if got := rq.Value.(int64); got != r.authBalance() {
		t.Fatalf("re-hydrated balance %d, authoritative %d", got, r.authBalance())
	}
	// The stream keeps working after a re-hydration.
	r.feedBlock()
	if err := r.fleet.CatchUpAll(); err != nil {
		t.Fatal(err)
	}
	rq = r.fleet.RouteQuery("get_balance", canister.GetBalanceArgs{Address: r.addr.String()}, "c", r.now)
	if rq.Err != nil || rq.Value.(int64) != r.authBalance() {
		t.Fatalf("post-rehydration stream broken: %v %v", rq.Value, rq.Err)
	}
}

// TestSubnetQueryRoutesThroughFleet wires the fleet into ic.Subnet.Query:
// queries come back certified, verify via Subnet.VerifyCertified (through
// the VerifyCertifiedQuery envelope helper), and tampering breaks them.
func TestSubnetQueryRoutesThroughFleet(t *testing.T) {
	sched := simnet.NewScheduler(5)
	scfg := ic.DefaultConfig()
	scfg.N = 4
	scfg.Seed = 5
	subnet, err := ic.NewSubnet(sched, scfg)
	if err != nil {
		t.Fatal(err)
	}

	f := experiments.NewFeeder(btc.Regtest, 6, 912)
	addr := btc.NewP2PKHAddress([20]byte{0xCD}, btc.Regtest)
	script := btc.PayToAddrScript(addr)
	for i := 0; i < 12; i++ {
		if _, err := f.FeedBlock([]experiments.TxSpec{{Outputs: experiments.PayN(script, 2, 900)}}); err != nil {
			t.Fatal(err)
		}
	}
	subnet.InstallCanister("bitcoin", f.Canister)

	cfg := queryfleet.DefaultConfig()
	cfg.Replicas = 2
	cfg.Sign = queryfleet.CommitteeSigner(subnet.Committee())
	fleet, err := queryfleet.New(f.Canister, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	f.Canister.SetStreamSink(fleet.Feed)
	subnet.SetQueryRouter("bitcoin", fleet)

	var res ic.Result
	done := false
	subnet.Query("bitcoin", "get_balance", canister.GetBalanceArgs{Address: addr.String()}, "client", func(r ic.Result) {
		res = r
		done = true
	})
	sched.RunFor(30 * time.Second)
	if !done {
		t.Fatal("routed query never completed")
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Certified || res.Signature == nil {
		t.Fatal("routed query response is not certified")
	}
	if res.CertTipHeight != f.Canister.TipHeight() || res.CertAnchorHeight != f.Canister.AnchorHeight() {
		t.Fatalf("certification bound to (%d,%d), canister at (%d,%d)",
			res.CertAnchorHeight, res.CertTipHeight, f.Canister.AnchorHeight(), f.Canister.TipHeight())
	}
	if !subnet.VerifyCertifiedQuery("get_balance", res) {
		t.Fatal("certified query response did not verify")
	}
	// Tampering with the value, the method, or the bound heights breaks it.
	tampered := res
	tampered.Value = res.Value.(int64) + 1
	if subnet.VerifyCertifiedQuery("get_balance", tampered) {
		t.Fatal("tampered value verified")
	}
	if subnet.VerifyCertifiedQuery("get_utxos", res) {
		t.Fatal("signature replayed across methods verified")
	}
	tampered = res
	tampered.CertTipHeight++
	if subnet.VerifyCertifiedQuery("get_balance", tampered) {
		t.Fatal("tampered tip height verified")
	}
}

// TestFleetConcurrentQueriesAndFrames is the race-detector workout: many
// client goroutines query the fleet (all endpoints) while the authoritative
// canister keeps publishing frames that auto-apply workers consume
// concurrently. The staleness bound is finite and the policy forwards, so
// stale round-robin picks hit the forward path while the producer mutates
// the authority — which is why the producer wraps every payload in
// GuardAuthority, and mid-run re-hydrations snapshot the authority under
// the same guard.
func TestFleetConcurrentQueriesAndFrames(t *testing.T) {
	cfg := queryfleet.Config{
		Replicas:         3,
		MaxLagBlocks:     0, // any lag forwards: exercises forward-under-feed
		StalePolicy:      queryfleet.StaleForward,
		QueryConcurrency: 4,
		AutoApply:        true,
	}
	r := newRig(t, cfg, 10)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	methods := []string{"get_balance", "get_utxos", "get_current_fee_percentiles", "get_block_headers"}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				var arg any
				method := methods[rng.Intn(len(methods))]
				switch method {
				case "get_balance":
					arg = canister.GetBalanceArgs{Address: r.addr.String()}
				case "get_utxos":
					arg = canister.GetUTXOsArgs{Address: r.addr.String(), Limit: 5}
				case "get_block_headers":
					arg = canister.GetBlockHeadersArgs{}
				}
				if rq := r.fleet.RouteQuery(method, arg, "client", r.now); rq.Err != nil {
					t.Errorf("%s: %v", method, rq.Err)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 30; i++ {
		if err := r.fleet.GuardAuthority(func() error {
			r.feedBlock()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if i%10 == 5 {
			if err := r.fleet.HydrateReplica(i % cfg.Replicas); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if err := r.fleet.Err(); err != nil {
		t.Fatal(err)
	}
	if err := r.fleet.CatchUpAll(); err != nil {
		t.Fatal(err)
	}
	want := r.authBalance()
	rq := r.fleet.RouteQuery("get_balance", canister.GetBalanceArgs{Address: r.addr.String()}, "client", r.now)
	if rq.Err != nil || rq.Value.(int64) != want {
		t.Fatalf("final balance %v (%v), want %d", rq.Value, rq.Err, want)
	}
}
