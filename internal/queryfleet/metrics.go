package queryfleet

import (
	"sync"

	"icbtc/internal/obs"
)

// fleetMetrics is the fleet's obs instrumentation. The old ad-hoc atomic
// counters live here as registry-backed counters (Fleet.Stats stays as the
// compatibility view over them), plus the metrics the atomics never had:
// cache misses and fills, per-cost-class sheds, and the frame publish→apply
// lag.
//
// statsMu fixes the snapshot tear Stats() used to have: counters that are
// bumped together (served+certified, forwarded+certified) are incremented
// under the READ side of the lock — shared, so concurrent queries never
// serialize against each other — while Stats takes the WRITE side, which
// excludes every in-flight group and yields a consistent snapshot (no
// Certified count can exceed its Served+Forwarded).
type fleetMetrics struct {
	reg *obs.Registry

	statsMu sync.RWMutex

	served    *obs.Counter
	forwarded *obs.Counter
	rejected  *obs.Counter
	certified *obs.Counter
	frames    *obs.Counter
	coalesced *obs.Counter
	cacheHits *obs.Counter
	shed      *obs.Counter

	// Frame-stream integrity counters: every rejected frame is accounted by
	// failure class, and every automatic re-hydration the rejection triggered.
	frameCorrupt    *obs.Counter
	frameGaps       *obs.Counter
	frameDuplicates *obs.Counter
	resyncs         *obs.Counter
	// byzantine counts replicas ejected by the response audit (signature or
	// generation-bound failure on a served certified response).
	byzantine *obs.Counter

	cacheMisses *obs.Counter
	cacheFills  *obs.Counter
	shedByClass *obs.Family
	applyLag    *obs.Histogram
}

func newFleetMetrics() *fleetMetrics {
	r := obs.NewRegistry()
	return &fleetMetrics{
		reg:       r,
		served:    r.Counter("fleet_served_total"),
		forwarded: r.Counter("fleet_forwarded_total"),
		rejected:  r.Counter("fleet_rejected_total"),
		certified: r.Counter("fleet_certified_total"),
		frames:    r.Counter("fleet_frames_total"),
		coalesced: r.Counter("fleet_coalesced_total"),
		cacheHits: r.Counter("fleet_cache_hits_total"),
		shed:      r.Counter("fleet_shed_total"),

		frameCorrupt:    r.Counter("fleet_frame_corrupt_total"),
		frameGaps:       r.Counter("fleet_frame_gap_total"),
		frameDuplicates: r.Counter("fleet_frame_duplicate_total"),
		resyncs:         r.Counter("fleet_resync_total"),
		byzantine:       r.Counter("fleet_byzantine_ejections_total"),

		cacheMisses: r.Counter("fleet_cache_misses_total"),
		cacheFills:  r.Counter("fleet_cache_fills_total"),
		shedByClass: r.Family("fleet_shed_by_class_total", "class"),
		applyLag:    r.Histogram("fleet_frame_apply_lag_ns", obs.DurationBuckets),
	}
}

// Metrics returns the fleet's obs registry. Seeded drivers install the
// scheduler clock on it so the apply-lag histogram (and any traced spans)
// measure virtual time.
func (f *Fleet) Metrics() *obs.Registry { return f.met.reg }

// countGroup runs fn under the shared side of the stats lock: every counter
// bump inside it lands in the same Stats snapshot (or the next one) as one
// unit. Concurrent groups proceed in parallel; only Stats excludes them.
func (m *fleetMetrics) countGroup(fn func()) {
	m.statsMu.RLock()
	fn()
	m.statsMu.RUnlock()
}

// snapshotStats reads the compatibility counters under the exclusive side
// of the stats lock, so no half-applied group can tear the view.
func (m *fleetMetrics) snapshotStats() Stats {
	m.statsMu.Lock()
	defer m.statsMu.Unlock()
	return Stats{
		Served:           m.served.Value(),
		Forwarded:        m.forwarded.Value(),
		Rejected:         m.rejected.Value(),
		Certified:        m.certified.Value(),
		Frames:           m.frames.Value(),
		Coalesced:        m.coalesced.Value(),
		CacheHits:        m.cacheHits.Value(),
		Shed:             m.shed.Value(),
		FrameCorrupt:     m.frameCorrupt.Value(),
		FrameGaps:        m.frameGaps.Value(),
		FrameDuplicates:  m.frameDuplicates.Value(),
		Resyncs:          m.resyncs.Value(),
		ByzantineEjected: m.byzantine.Value(),
	}
}
