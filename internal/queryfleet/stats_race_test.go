package queryfleet_test

import (
	"sync"
	"testing"
	"time"

	"icbtc/internal/canister"
	"icbtc/internal/queryfleet"
)

// TestStatsSnapshotConsistency hammers the serving path from many
// goroutines while a reader snapshots Stats concurrently, asserting the
// invariant the old independently-read atomics could violate mid-burst:
// every certified response has a matching served or forwarded count in the
// SAME snapshot. Run under -race this also exercises the counter-group
// lock discipline.
func TestStatsSnapshotConsistency(t *testing.T) {
	cfg := queryfleet.DefaultConfig()
	cfg.Replicas = 2
	cfg.QueryConcurrency = 4
	// A cheap signer so every response is certified — the coupled
	// served+certified bump is the pair that used to tear.
	cfg.Sign = func(digest []byte) ([]byte, error) {
		sig := make([]byte, 8)
		copy(sig, digest)
		return sig, nil
	}
	r := newRig(t, cfg, 6)
	if err := r.fleet.CatchUpAll(); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const perWorker = 300
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Concurrent snapshot reader: any snapshot taken mid-burst must satisfy
	// Certified <= Served+Forwarded.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := r.fleet.Stats()
			if s.Certified > s.Served+s.Forwarded {
				t.Errorf("torn stats snapshot: certified=%d > served+forwarded=%d",
					s.Certified, s.Served+s.Forwarded)
				return
			}
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				now := time.Unix(1_700_000_000+int64(w*perWorker+i), 0)
				rq := r.fleet.RouteQuery("get_balance",
					canister.GetBalanceArgs{Address: r.addr.String()}, "caller", now)
				if rq.Err != nil {
					t.Errorf("worker %d query %d: %v", w, i, rq.Err)
					return
				}
				if len(rq.Signature) == 0 {
					t.Errorf("worker %d query %d: uncertified response", w, i)
					return
				}
			}
		}(w)
	}
	// Release the reader once every query has been counted, then wait for
	// all goroutines (the reader is in wg too).
	for {
		s := r.fleet.Stats()
		if s.Served+s.Forwarded+s.Rejected+s.Shed >= workers*perWorker {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	// End-state conservation: every query was served or forwarded (no
	// budgets, no staleness in this rig), and all of them certified.
	s := r.fleet.Stats()
	if s.Served+s.Forwarded != workers*perWorker {
		t.Fatalf("served=%d forwarded=%d, want total %d", s.Served, s.Forwarded, workers*perWorker)
	}
	if s.Certified != workers*perWorker {
		t.Fatalf("certified=%d, want %d", s.Certified, workers*perWorker)
	}
}
