package queryfleet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"icbtc/internal/canister"
	"icbtc/internal/ic"
	"icbtc/internal/ingest"
)

// Replica is one read replica: a full canister state hydrated from a
// snapshot (statecodec fast-sync) and kept fresh by applying the framed
// per-block delta stream. Queries execute concurrently under the state's
// read lock; frame application and re-hydration take the write lock.
//
// Execution concurrency is modeled separately from state safety: on the IC
// a canister executes queries sequentially per replica, so each Replica
// owns a bounded set of execution slots (Config.QueryConcurrency, default
// 1) and, when Config.ExecRate is set, holds a slot for the metered
// execution time of each query — which is what makes aggregate fleet
// throughput scale with the replica count rather than with the host's
// cores.
type Replica struct {
	index int
	fleet *Fleet

	// mu guards the canister state: queries hold it for read, frame
	// application and hydration for write. Certifications bind the chain
	// position (anchor, tip) read under this lock together with the served
	// value, so a response and its binding always come from one state.
	mu  sync.RWMutex
	can *canister.BitcoinCanister
	// seq is the stream sequence number of the last applied frame (or the
	// frame the hydration snapshot was taken after).
	seq uint64

	// tip mirrors the canister's tip height for lock-free staleness checks
	// on the serving path.
	tip atomic.Int64
	// broken marks a replica whose frame application failed: its state may
	// silently diverge from the stream (a later frame applied over a lost
	// one), so routing skips it until a re-hydration resets it. Without the
	// quarantine the replica's tip would keep advancing with later frames,
	// the lag check would read 0, and the fleet would keep certifying
	// responses from a diverged state.
	broken atomic.Bool
	// needsResync flags a replica whose stream observed an authority
	// regression (Feed saw the tip move backwards): its state may be AHEAD
	// of the recovered authority. ApplyPending re-hydrates before touching
	// further frames (AutoResync fleets only).
	needsResync atomic.Bool

	// equivMode is the byzantine fault hook (SetEquivocation): a nonzero
	// mode corrupts served responses after certification. staleEnvs holds
	// the per-method signed envelopes a stale-replay equivocator re-serves.
	equivMode atomic.Int32
	staleMu   sync.Mutex
	staleEnvs map[string]ic.RoutedQuery

	// inbox holds encoded frames not yet applied, in stream order.
	inboxMu sync.Mutex
	inbox   []pendingFrame
	// wake signals the auto-apply worker (capacity 1, best-effort).
	wake chan struct{}

	// execSlots bounds concurrent query executions on this replica.
	execSlots chan struct{}

	served atomic.Uint64
}

// pendingFrame is one enqueued stream frame in wire form. Replicas decode
// their own copy so no mutable state is shared across the fleet. at is the
// publish timestamp (fleet registry clock) the apply-lag histogram measures
// from.
type pendingFrame struct {
	raw []byte
	seq uint64
	at  time.Time
}

func newReplica(index int, fleet *Fleet, snapshot []byte, seq uint64) (*Replica, error) {
	slots := fleet.cfg.QueryConcurrency
	if slots <= 0 {
		slots = 1
	}
	r := &Replica{
		index:     index,
		fleet:     fleet,
		wake:      make(chan struct{}, 1),
		execSlots: make(chan struct{}, slots),
	}
	for i := 0; i < slots; i++ {
		r.execSlots <- struct{}{}
	}
	if err := r.Hydrate(snapshot, seq); err != nil {
		return nil, err
	}
	return r, nil
}

// hydrateWorkers resolves the fleet's hydration worker count.
func (r *Replica) hydrateWorkers() int {
	if w := r.fleet.cfg.HydrateWorkers; w > 0 {
		return w
	}
	return ingest.DefaultWorkers()
}

// prepareWorkers resolves the fleet's frame-preparation worker count.
func (r *Replica) prepareWorkers() int {
	if w := r.fleet.cfg.PrepareWorkers; w > 0 {
		return w
	}
	return ingest.DefaultWorkers()
}

// Hydrate (re)builds the replica's state from a canister snapshot taken
// after stream frame seq: decode (sharded across the fleet's hydration
// workers — the fast-sync path), warm every lazily derived structure the
// read path touches, and drop queued frames the snapshot already covers.
// Serving continues from the new state on return.
func (r *Replica) Hydrate(snapshot []byte, seq uint64) error {
	can, err := canister.RestoreSnapshotParallel(snapshot, ingest.Config{Workers: r.hydrateWorkers()})
	if err != nil {
		return fmt.Errorf("queryfleet: hydrate replica %d: %w", r.index, err)
	}
	can.WarmQueryState()
	tip, _ := can.StreamPosition()

	r.mu.Lock()
	r.can = can
	r.seq = seq
	r.tip.Store(tip)
	r.broken.Store(false)      // a fresh snapshot supersedes any lost frame
	r.needsResync.Store(false) // and any observed authority regression
	r.mu.Unlock()

	r.inboxMu.Lock()
	kept := r.inbox[:0]
	for _, f := range r.inbox {
		if f.seq > seq {
			kept = append(kept, f)
		}
	}
	r.inbox = kept
	r.inboxMu.Unlock()
	return nil
}

// enqueue appends one encoded frame to the replica's inbox.
func (r *Replica) enqueue(raw []byte, seq uint64, at time.Time) {
	r.inboxMu.Lock()
	r.inbox = append(r.inbox, pendingFrame{raw: raw, seq: seq, at: at})
	r.inboxMu.Unlock()
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

// Pending returns how many frames are queued but not yet applied.
func (r *Replica) Pending() int {
	r.inboxMu.Lock()
	defer r.inboxMu.Unlock()
	return len(r.inbox)
}

// Seq returns the stream position of the replica's state.
func (r *Replica) Seq() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.seq
}

// TipHeight returns the replica's current chain tip height.
func (r *Replica) TipHeight() int64 { return r.tip.Load() }

// ApplyPending applies up to max queued frames (all of them when max < 0),
// returning how many were applied. Queued frames are decoded and their
// blocks parsed on the ingest pipeline (PrepareWorkers) while application
// itself stays strictly sequential under the write lock, so a lagging
// replica catches up at pipeline speed without weakening any ordering
// guarantee.
//
// Every frame is integrity-checked before it touches state: the statecodec
// checksum rejects corrupted bytes, the embedded sequence number must match
// the stream slot the frame was delivered for, and the slot must be exactly
// the replica's position + 1 — a gap, reordering, or swap is rejected, and a
// re-delivered frame (slot ≤ position) is skipped as a duplicate. A rejection
// quarantines the replica (Broken reports it; routing skips it) until a
// re-hydration replaces its state — continuing past a lost frame would let
// later frames advance the tip over a silently diverged state. Under
// Config.AutoResync the re-hydration happens right here: the replica jumps
// to a fresh authority snapshot, the damaged backlog is discarded, and
// serving resumes without operator action.
func (r *Replica) ApplyPending(max int) (int, error) {
	applied := 0
	for max < 0 || applied < max {
		if r.needsResync.Load() && r.fleet.cfg.AutoResync {
			if err := r.resync("authority tip regressed"); err != nil {
				return applied, err
			}
			continue
		}
		if r.broken.Load() {
			return applied, fmt.Errorf("queryfleet: replica %d is quarantined after a failed frame; re-hydrate it", r.index)
		}
		r.inboxMu.Lock()
		take := len(r.inbox)
		if max >= 0 && take > max-applied {
			take = max - applied
		}
		if take == 0 {
			r.inboxMu.Unlock()
			return applied, nil
		}
		batch := make([]pendingFrame, take)
		copy(batch, r.inbox[:take])
		r.inbox = r.inbox[take:]
		r.inboxMu.Unlock()

		type decoded struct {
			frame *canister.Frame
			err   error
		}
		var failErr error
		err := ingest.Map(len(batch), ingest.Config{Workers: r.prepareWorkers(), Obs: r.fleet.met.reg},
			func(_, i int) decoded {
				frame, err := canister.DecodeFrame(batch[i].raw)
				if err != nil {
					return decoded{err: err}
				}
				// Blocks parse inside this produce call; frame-level
				// parallelism already covers the batch.
				frame.Prepare(ingest.Config{Workers: 1})
				return decoded{frame: frame}
			},
			func(i int, dec decoded) error {
				f := batch[i]
				if dec.err != nil {
					// Checksum/framing rejection: bit-flips and truncation
					// land here (statecodec's CRC trailer covers every byte).
					r.fleet.met.frameCorrupt.Inc()
					failErr = fmt.Errorf("queryfleet: replica %d frame %d: %w", r.index, f.seq, dec.err)
					return failErr
				}
				if dec.frame.Seq != f.seq {
					// Clean bytes carrying the wrong stream position: a frame
					// body swapped or replayed into another slot.
					r.fleet.met.frameCorrupt.Inc()
					failErr = fmt.Errorf("queryfleet: replica %d frame %d: embedded seq %d does not match its stream slot",
						r.index, f.seq, dec.frame.Seq)
					return failErr
				}
				r.mu.Lock()
				if f.seq <= r.seq {
					// Already covered: a re-delivered (duplicated) frame, or a
					// concurrent re-hydration that raced the dequeue.
					r.mu.Unlock()
					r.fleet.met.frameDuplicates.Inc()
					return nil
				}
				if f.seq != r.seq+1 {
					// A hole in the stream: the missing frame was dropped or
					// is still in flight behind this one (reordering).
					at, want := f.seq, r.seq+1
					r.mu.Unlock()
					r.fleet.met.frameGaps.Inc()
					failErr = fmt.Errorf("queryfleet: replica %d frame %d: sequence gap (want %d)", r.index, at, want)
					return failErr
				}
				err := r.can.ApplyFrame(dec.frame)
				if err == nil {
					r.seq = f.seq
					tip, _ := r.can.StreamPosition()
					r.tip.Store(tip)
				}
				r.mu.Unlock()
				if err != nil {
					if errors.Is(err, canister.ErrFrameOutOfOrder) {
						r.fleet.met.frameGaps.Inc()
					} else {
						r.fleet.met.frameCorrupt.Inc()
					}
					failErr = fmt.Errorf("queryfleet: replica %d frame %d: %w", r.index, f.seq, err)
					return failErr
				}
				// Publish→apply lag on the fleet registry clock (virtual in
				// seeded runs, where enqueue and apply share one timeline).
				r.fleet.met.applyLag.ObserveDuration(r.fleet.met.reg.Now().Sub(f.at))
				applied++
				return nil
			})
		if err != nil {
			r.broken.Store(true)
			if failErr != nil {
				err = failErr
			}
			if r.fleet.cfg.AutoResync {
				// Jump past the damage: re-hydrate from a fresh authority
				// snapshot. The rest of the dequeued batch is superseded by
				// the snapshot (its frames are ≤ the hydration position).
				if rerr := r.resync(err.Error()); rerr != nil {
					return applied, rerr
				}
				continue
			}
			return applied, err
		}
	}
	return applied, nil
}

// resync re-hydrates this replica through the fleet (authMu → feedMu → a
// fresh snapshot), clearing the broken and needsResync flags. Called with no
// replica locks held.
func (r *Replica) resync(cause string) error {
	r.needsResync.Store(false)
	if err := r.fleet.resyncReplica(r.index); err != nil {
		r.broken.Store(true)
		return fmt.Errorf("queryfleet: replica %d resync (%s): %w", r.index, cause, err)
	}
	return nil
}

// EquivocationMode selects how a byzantine fault hook corrupts this
// replica's served responses (SetEquivocation). The corruption happens
// after certification, modeling a replica that signs honestly but then
// tampers with — or substitutes — what it hands to the router.
type EquivocationMode int32

const (
	// EquivNone serves honestly.
	EquivNone EquivocationMode = iota
	// EquivTamper mutates the served value/binding after signing, so the
	// signature no longer covers the envelope (detected by the response
	// audit's signature check).
	EquivTamper
	// EquivStaleReplay re-serves the first signed envelope it saw for each
	// method forever — valid signatures over an aging generation (detected
	// by the audit's generation bound once the chain moves past MaxLagBlocks).
	EquivStaleReplay
)

// SetEquivocation installs (or, with EquivNone, clears) the byzantine fault
// hook on this replica.
func (r *Replica) SetEquivocation(m EquivocationMode) { r.equivMode.Store(int32(m)) }

// equivocate applies the replica's equivocation mode to a served response
// just before it is returned to the router. Honest replicas return rq
// unchanged.
func (r *Replica) equivocate(method string, rq ic.RoutedQuery) ic.RoutedQuery {
	switch EquivocationMode(r.equivMode.Load()) {
	case EquivTamper:
		if rq.Signature != nil {
			// Claim a taller tip than the one the signature covers.
			rq.TipHeight++
		}
		return rq
	case EquivStaleReplay:
		r.staleMu.Lock()
		defer r.staleMu.Unlock()
		if stored, ok := r.staleEnvs[method]; ok {
			return stored
		}
		if rq.Signature != nil {
			if r.staleEnvs == nil {
				r.staleEnvs = make(map[string]ic.RoutedQuery)
			}
			r.staleEnvs[method] = rq
		}
		return rq
	default:
		return rq
	}
}

// Broken reports whether the replica is quarantined after a failed frame
// application. HydrateReplica clears it.
func (r *Replica) Broken() bool { return r.broken.Load() }

// Quarantine marks the replica broken without a frame failure — the fault
// hook chaos scenarios use to model an operator (or watchdog) pulling a
// replica out of rotation. Routing skips it until a re-hydration clears it.
func (r *Replica) Quarantine() { r.broken.Store(true) }

// CatchUp applies every queued frame.
func (r *Replica) CatchUp() error {
	_, err := r.ApplyPending(-1)
	return err
}

// runWorker is the auto-apply loop: drain the inbox whenever woken, until
// the fleet closes.
func (r *Replica) runWorker(closed <-chan struct{}) {
	for {
		select {
		case <-closed:
			return
		case <-r.wake:
			if err := r.CatchUp(); err != nil {
				r.fleet.noteApplyError(err)
			}
		}
	}
}

// serve executes one query on this replica: acquire an execution slot,
// read-lock the state, execute, then hold the slot for the metered
// execution time (ExecRate) before releasing it. The returned chain
// position is the one the response was computed at — what its
// certification binds; seq is that state's stream position, read under the
// same lock, which the cache layer compares against the fleet generation.
func (r *Replica) serve(method string, arg any, now time.Time) (value any, err error, instructions uint64, tip, anchor int64, seq uint64) {
	<-r.execSlots
	start := time.Now()

	ctx := ic.NewCallContext(ic.KindQuery, now)
	r.mu.RLock()
	value, err = r.can.Query(ctx, method, arg)
	tip, anchor = r.can.StreamPosition()
	seq = r.seq
	r.mu.RUnlock()
	instructions = ctx.Meter.Total()
	r.served.Add(1)

	if rate := r.fleet.cfg.ExecRate; rate > 0 {
		need := time.Duration(float64(instructions) / rate * float64(time.Second))
		if elapsed := time.Since(start); need > elapsed {
			time.Sleep(need - elapsed)
		}
	}
	r.execSlots <- struct{}{}
	return value, err, instructions, tip, anchor, seq
}

// Served returns how many queries this replica has executed.
func (r *Replica) Served() uint64 { return r.served.Load() }

// Canister exposes the underlying state for test probes. The caller must
// not run it concurrently with frame application; the differential harness
// (single-threaded) is the intended user.
func (r *Replica) Canister() *canister.BitcoinCanister {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.can
}
