package queryfleet_test

import (
	"bytes"
	"testing"

	"icbtc/internal/btc"
	"icbtc/internal/canister"
	"icbtc/internal/experiments"
	"icbtc/internal/ic"
	"icbtc/internal/queryfleet"
	"icbtc/internal/simnet"
)

// replicaBalance reads the balance directly from one replica (bypassing
// routing, which would skip broken replicas or round-robin away).
func replicaBalance(t *testing.T, r *rig, i int) int64 {
	t.Helper()
	ctx := ic.NewCallContext(ic.KindQuery, r.now)
	v, err := r.fleet.Replica(i).Canister().GetBalance(ctx, canister.GetBalanceArgs{Address: r.addr.String()})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestFrameCorruptionAutoResync bit-flips a delivered frame: the statecodec
// checksum must reject it, and with AutoResync on the replica must come back
// by re-hydration, byte-identical to the authority — no quarantine, no
// operator action.
func TestFrameCorruptionAutoResync(t *testing.T) {
	cfg := queryfleet.DefaultConfig()
	cfg.Replicas = 1
	cfg.AutoResync = true
	r := newRig(t, cfg, 6)

	r.fleet.SetFrameFault(func(replica int, seq uint64, raw []byte) [][]byte {
		cp := append([]byte(nil), raw...)
		cp[len(cp)/2] ^= 0x40
		return [][]byte{cp}
	})
	r.feedBlock()
	r.fleet.SetFrameFault(nil)

	if err := r.fleet.CatchUpAll(); err != nil {
		t.Fatalf("auto-resync should swallow the corruption, got %v", err)
	}
	st := r.fleet.Stats()
	if st.FrameCorrupt == 0 {
		t.Fatalf("bit-flip not detected: %+v", st)
	}
	if st.Resyncs == 0 {
		t.Fatalf("detection did not trigger a resync: %+v", st)
	}
	if r.fleet.Replica(0).Broken() {
		t.Fatal("replica left quarantined despite auto-resync")
	}
	if got, want := replicaBalance(t, r, 0), r.authBalance(); got != want {
		t.Fatalf("recovered replica balance %d, authoritative %d", got, want)
	}
}

// TestFrameGapAutoResync drops a frame: the next frame's sequence check must
// flag the hole and re-hydration must close it.
func TestFrameGapAutoResync(t *testing.T) {
	cfg := queryfleet.DefaultConfig()
	cfg.Replicas = 1
	cfg.AutoResync = true
	r := newRig(t, cfg, 6)

	r.fleet.SetFrameFault(func(replica int, seq uint64, raw []byte) [][]byte { return nil })
	r.feedBlock() // dropped
	r.fleet.SetFrameFault(nil)
	r.feedBlock() // arrives with a one-frame hole before it

	if err := r.fleet.CatchUpAll(); err != nil {
		t.Fatal(err)
	}
	st := r.fleet.Stats()
	if st.FrameGaps == 0 {
		t.Fatalf("sequence gap not detected: %+v", st)
	}
	if st.Resyncs == 0 {
		t.Fatalf("gap did not trigger a resync: %+v", st)
	}
	if got, want := replicaBalance(t, r, 0), r.authBalance(); got != want {
		t.Fatalf("recovered replica balance %d, authoritative %d", got, want)
	}
}

// TestFrameDuplicateSkipped re-delivers a frame: the duplicate must be
// skipped as benign — counted, state unharmed, and no resync spent on it.
func TestFrameDuplicateSkipped(t *testing.T) {
	cfg := queryfleet.DefaultConfig()
	cfg.Replicas = 1
	cfg.AutoResync = true
	r := newRig(t, cfg, 6)

	r.fleet.SetFrameFault(func(replica int, seq uint64, raw []byte) [][]byte {
		return [][]byte{raw, raw}
	})
	r.feedBlock()
	r.fleet.SetFrameFault(nil)

	if err := r.fleet.CatchUpAll(); err != nil {
		t.Fatal(err)
	}
	st := r.fleet.Stats()
	if st.FrameDuplicates == 0 {
		t.Fatalf("duplicate not counted: %+v", st)
	}
	if st.Resyncs != 0 {
		t.Fatalf("benign duplicate burned a resync: %+v", st)
	}
	if got, want := replicaBalance(t, r, 0), r.authBalance(); got != want {
		t.Fatalf("replica balance %d after duplicate, authoritative %d", got, want)
	}
}

// TestFrameSwapDetected delivers clean bytes in the wrong stream slot (two
// frames with their payloads exchanged): the embedded-sequence check must
// reject them even though every checksum verifies.
func TestFrameSwapDetected(t *testing.T) {
	cfg := queryfleet.DefaultConfig()
	cfg.Replicas = 1
	cfg.AutoResync = true
	r := newRig(t, cfg, 6)

	var held []byte
	r.fleet.SetFrameFault(func(replica int, seq uint64, raw []byte) [][]byte {
		if held == nil {
			// Hold the first frame back and deliver it in the second
			// frame's slot instead.
			held = append([]byte(nil), raw...)
			return nil
		}
		out := [][]byte{held, raw}
		held = nil
		return out
	})
	r.feedBlock()
	r.feedBlock()
	r.fleet.SetFrameFault(nil)

	if err := r.fleet.CatchUpAll(); err != nil {
		t.Fatal(err)
	}
	st := r.fleet.Stats()
	if st.FrameCorrupt == 0 {
		t.Fatalf("slot/seq mismatch not detected: %+v", st)
	}
	if got, want := replicaBalance(t, r, 0), r.authBalance(); got != want {
		t.Fatalf("recovered replica balance %d, authoritative %d", got, want)
	}
}

// TestCloseJoinsApplyWorkers pins the Close contract: after Close returns,
// no auto-apply worker is left running (frames fed afterwards stay queued),
// and a second Close is a harmless no-op.
func TestCloseJoinsApplyWorkers(t *testing.T) {
	cfg := queryfleet.DefaultConfig()
	cfg.Replicas = 2
	cfg.AutoApply = true
	f := experiments.NewFeeder(btc.Regtest, 6, 913)
	fleet, err := queryfleet.New(f.Canister, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.Canister.SetStreamSink(fleet.Feed)
	addr := btc.NewP2PKHAddress([20]byte{0xEF}, btc.Regtest)
	script := btc.PayToAddrScript(addr)
	for i := 0; i < 4; i++ {
		if _, err := f.FeedBlock([]experiments.TxSpec{{Outputs: experiments.PayN(script, 2, 800)}}); err != nil {
			t.Fatal(err)
		}
	}
	fleet.Close()
	fleet.Close() // idempotent

	// With the workers joined, nothing drains the inbox anymore: a frame fed
	// after Close must still be pending on every replica. (Before Close
	// joined its workers this was racy — a live worker could consume it.)
	if _, err := f.FeedBlock([]experiments.TxSpec{{Outputs: experiments.PayN(script, 1, 800)}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < fleet.Replicas(); i++ {
		if p := fleet.Replica(i).Pending(); p == 0 {
			t.Fatalf("replica %d inbox drained after Close — a worker is still running", i)
		}
	}
	if err := fleet.Err(); err != nil {
		t.Fatal(err)
	}
}

// certRig is a rig whose fleet signs responses with a real threshold
// committee and audits them against the subnet's public key.
func newCertRig(t *testing.T, replicas int, maxLag int64) (*rig, *ic.Subnet) {
	t.Helper()
	scfg := ic.DefaultConfig()
	scfg.N = 4
	scfg.Seed = 17
	subnet, err := ic.NewSubnet(simnet.NewScheduler(17), scfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := queryfleet.DefaultConfig()
	cfg.Replicas = replicas
	cfg.MaxLagBlocks = maxLag
	cfg.Sign = queryfleet.CommitteeSigner(subnet.Committee())
	cfg.Verify = func(env ic.CertifiedQuery, sig []byte) bool {
		return subnet.VerifyCertified(env, nil, sig)
	}
	r := newRig(t, cfg, 8)
	return r, subnet
}

// TestByzantineTamperEjected makes one replica tamper with its certified
// envelope after signing. The audit must catch the broken signature, eject
// the replica, and keep serving correct certified answers from the honest
// one — the client never sees the equivocation.
func TestByzantineTamperEjected(t *testing.T) {
	r, subnet := newCertRig(t, 2, 3)
	if err := r.fleet.CatchUpAll(); err != nil {
		t.Fatal(err)
	}
	r.fleet.Replica(0).SetEquivocation(queryfleet.EquivTamper)

	want := r.authBalance()
	args := canister.GetBalanceArgs{Address: r.addr.String()}
	for i := 0; i < 4; i++ { // enough round-robin picks to hit the liar
		rq := r.fleet.RouteQuery("get_balance", args, "client", r.now)
		if rq.Err != nil {
			t.Fatalf("query %d: %v", i, rq.Err)
		}
		if rq.Value.(int64) != want {
			t.Fatalf("query %d served %d, authoritative %d", i, rq.Value, want)
		}
		if rq.Signature == nil {
			t.Fatalf("query %d not certified", i)
		}
		env := ic.CertifiedQuery{Method: "get_balance", Value: rq.Value,
			AnchorHeight: rq.AnchorHeight, TipHeight: rq.TipHeight}
		if !subnet.VerifyCertified(env, nil, rq.Signature) {
			t.Fatalf("query %d: served envelope does not verify", i)
		}
	}
	if !r.fleet.Replica(0).Broken() {
		t.Fatal("tampering replica was never ejected")
	}
	if r.fleet.Replica(1).Broken() {
		t.Fatal("honest replica was ejected")
	}
	if r.fleet.Stats().ByzantineEjected == 0 {
		t.Fatal("ejection not counted")
	}
	// Recovery: re-hydration clears the quarantine once the fault is gone.
	r.fleet.Replica(0).SetEquivocation(queryfleet.EquivNone)
	if err := r.fleet.HydrateReplica(0); err != nil {
		t.Fatal(err)
	}
	if r.fleet.Replica(0).Broken() {
		t.Fatal("re-hydration did not clear the quarantine")
	}
}

// TestByzantineStaleReplayEjected makes one replica replay its first signed
// envelope forever: the signature stays valid, so only the audit's
// generation bound can catch it once the chain outruns MaxLagBlocks.
func TestByzantineStaleReplayEjected(t *testing.T) {
	r, _ := newCertRig(t, 2, 2)
	if err := r.fleet.CatchUpAll(); err != nil {
		t.Fatal(err)
	}
	r.fleet.Replica(0).SetEquivocation(queryfleet.EquivStaleReplay)
	args := canister.GetBalanceArgs{Address: r.addr.String()}
	// Seed the replayed envelope while it is still fresh (passes the audit).
	for i := 0; i < 2; i++ {
		if rq := r.fleet.RouteQuery("get_balance", args, "client", r.now); rq.Err != nil {
			t.Fatal(rq.Err)
		}
	}
	// Move the chain past the lag bound; the replayed envelope's tip is now
	// too old for any honest fresh replica to have served it.
	for i := 0; i < 4; i++ {
		r.feedBlock()
	}
	if err := r.fleet.CatchUpAll(); err != nil {
		t.Fatal(err)
	}
	want := r.authBalance()
	for i := 0; i < 4; i++ {
		rq := r.fleet.RouteQuery("get_balance", args, "client", r.now)
		if rq.Err != nil {
			t.Fatalf("query %d: %v", i, rq.Err)
		}
		if rq.Value.(int64) != want {
			t.Fatalf("query %d served %d, authoritative %d (stale replay leaked)", i, rq.Value, want)
		}
	}
	if !r.fleet.Replica(0).Broken() {
		t.Fatal("stale-replaying replica was never ejected")
	}
	if r.fleet.Stats().ByzantineEjected == 0 {
		t.Fatal("ejection not counted")
	}
}

// TestFeedAuthorityRegressionFlagsResync pins the torn-state interaction:
// when the authority recovers from an older checkpoint and its stream tip
// moves backwards, every replica must be flagged and re-hydrated instead of
// serving a future the authority no longer has.
func TestFeedAuthorityRegressionFlagsResync(t *testing.T) {
	cfg := queryfleet.DefaultConfig()
	cfg.Replicas = 2
	cfg.AutoResync = true
	r := newRig(t, cfg, 6)
	for i := 0; i < 3; i++ {
		r.feedBlock()
	}
	if err := r.fleet.CatchUpAll(); err != nil {
		t.Fatal(err)
	}

	// Simulate the authority rolling back: hand-feed a frame whose tip is
	// below the stream's high-water mark.
	r.fleet.Feed(&canister.Frame{TipHeight: r.f.Canister.TipHeight() - 2})
	if err := r.fleet.CatchUpAll(); err != nil {
		t.Fatal(err)
	}
	if got := r.fleet.Stats().Resyncs; got < 2 {
		t.Fatalf("authority tip regression resynced %d replicas, want all %d", got, cfg.Replicas)
	}
	// Replicas landed on the (current) authority snapshot.
	want, err := r.f.Canister.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Replicas; i++ {
		got, err := r.fleet.Replica(i).Canister().Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("replica %d not byte-identical to the authority after regression resync", i)
		}
	}
}
