package queryfleet

import (
	"testing"
	"time"

	"icbtc/internal/adapter"
	"icbtc/internal/btc"
	"icbtc/internal/btcnode"
	"icbtc/internal/canister"
	"icbtc/internal/ic"
	"icbtc/internal/simnet"
)

// TestReplicaQuarantineOnBadFrame: a frame that fails to decode or apply
// must quarantine the replica — routing skips it (falling back to the
// authoritative canister) instead of certifying a possibly diverged state —
// and a snapshot re-hydration heals it.
func TestReplicaQuarantineOnBadFrame(t *testing.T) {
	auth := canister.New(canister.DefaultConfig(btc.Regtest))
	fleet, err := New(auth, Config{Replicas: 1, MaxLagBlocks: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	now := time.Unix(1_700_000_000, 0).UTC()

	// A healthy replica serves.
	rq := fleet.RouteQuery("get_tip", nil, "c", now)
	if rq.Err != nil || rq.Forwarded {
		t.Fatalf("healthy replica: err=%v forwarded=%v", rq.Err, rq.Forwarded)
	}

	// Inject an undecodable frame: application fails and quarantines.
	r := fleet.Replica(0)
	r.enqueue([]byte("not a frame"), 1, time.Time{})
	if _, err := r.ApplyPending(-1); err == nil {
		t.Fatal("garbage frame applied without error")
	}
	if !r.Broken() {
		t.Fatal("replica not quarantined after a failed frame")
	}
	// Further application attempts refuse until re-hydration.
	if _, err := r.ApplyPending(-1); err == nil {
		t.Fatal("quarantined replica kept applying frames")
	}

	// Routing skips the quarantined replica and forwards to the authority.
	rq = fleet.RouteQuery("get_tip", nil, "c", now)
	if rq.Err != nil {
		t.Fatal(rq.Err)
	}
	if !rq.Forwarded {
		t.Fatal("query was served by a quarantined replica")
	}

	// Re-hydration heals the replica; serving resumes locally.
	if err := fleet.HydrateReplica(0); err != nil {
		t.Fatal(err)
	}
	if r.Broken() {
		t.Fatal("re-hydration did not clear the quarantine")
	}
	rq = fleet.RouteQuery("get_tip", nil, "c", now)
	if rq.Err != nil || rq.Forwarded {
		t.Fatalf("healed replica: err=%v forwarded=%v", rq.Err, rq.Forwarded)
	}
}

// TestQuarantineStormRecovery: every replica is quarantined at once (a
// correlated fault — bad frame on one, watchdog pulls on the rest), the
// stream keeps flowing while the fleet is dark, and the replicas are
// readmitted mid-stream. Throughout the storm the fleet must never serve a
// stale answer from a quarantined state (all traffic forwards to the fresh
// authority), and recovery must come from a current snapshot — not a frame
// replay from genesis.
func TestQuarantineStormRecovery(t *testing.T) {
	sched := simnet.NewScheduler(99)
	net := simnet.NewNetwork(sched)
	node := btcnode.NewNode("btc/0", net, btc.RegtestParams())
	miner := btcnode.NewMiner(node, btc.PayToPubKeyHashScript([20]byte{0x01}))

	auth := canister.New(canister.DefaultConfig(btc.Regtest))
	fleet, err := New(auth, Config{Replicas: 3, MaxLagBlocks: 2, StalePolicy: StaleForward})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	now := sched.Now()
	feed := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			blk, err := miner.Mine(0)
			if err != nil {
				t.Fatal(err)
			}
			now = now.Add(time.Second)
			payload := adapter.Response{Blocks: []adapter.BlockWithHeader{{Block: blk, Header: blk.Header}}}
			if err := auth.ProcessPayload(ic.NewCallContext(ic.KindUpdate, now), payload); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Healthy baseline: 10 blocks, everyone caught up, local serving.
	feed(10)
	if err := fleet.CatchUpAll(); err != nil {
		t.Fatal(err)
	}
	rq := fleet.RouteQuery("get_tip", nil, "c", now)
	if rq.Err != nil || rq.Forwarded {
		t.Fatalf("baseline: err=%v forwarded=%v", rq.Err, rq.Forwarded)
	}

	// The storm: replica 0 hits a real poison frame, the watchdog pulls the
	// other two (both quarantine paths in one event).
	r0 := fleet.Replica(0)
	r0.enqueue([]byte("poison"), r0.Seq()+1, time.Time{})
	if _, err := r0.ApplyPending(-1); err == nil {
		t.Fatal("poison frame applied without error")
	}
	fleet.Replica(1).Quarantine()
	fleet.Replica(2).Quarantine()
	for i := 0; i < fleet.Replicas(); i++ {
		if !fleet.Replica(i).Broken() {
			t.Fatalf("replica %d not quarantined", i)
		}
	}

	// The chain keeps growing while the fleet is dark. Every query must
	// forward to the authority and reflect its FRESH tip — a stale answer
	// from a quarantined replica here would certify a diverged state.
	feed(5)
	for probe := 0; probe < 6; probe++ {
		rq = fleet.RouteQuery("get_tip", nil, "c", now)
		if rq.Err != nil {
			t.Fatal(rq.Err)
		}
		if !rq.Forwarded {
			t.Fatalf("probe %d: query served by a quarantined replica", probe)
		}
		if got, want := rq.Value.(btc.Hash), node.BestTip().Hash; got != want {
			t.Fatalf("probe %d: forwarded answer is stale: tip %s, want %s", probe, got, want)
		}
		if rq.TipHeight != auth.TipHeight() {
			t.Fatalf("probe %d: certified tip height %d, want authoritative %d", probe, rq.TipHeight, auth.TipHeight())
		}
	}

	// Readmission mid-stream: each replica re-hydrates from a snapshot taken
	// at the CURRENT stream position. Seq jumps straight to the fleet's last
	// distributed frame with nothing left to replay — the signature of
	// snapshot recovery, not a genesis replay.
	for i := 0; i < fleet.Replicas(); i++ {
		if err := fleet.HydrateReplica(i); err != nil {
			t.Fatal(err)
		}
		r := fleet.Replica(i)
		if r.Broken() {
			t.Fatalf("replica %d still quarantined after re-hydration", i)
		}
		if r.Seq() != fleet.LastSeq() {
			t.Fatalf("replica %d at seq %d after re-hydration, want %d", i, r.Seq(), fleet.LastSeq())
		}
		if r.Pending() != 0 {
			t.Fatalf("replica %d has %d frames to replay after snapshot recovery", i, r.Pending())
		}
		if r.TipHeight() != auth.TipHeight() {
			t.Fatalf("replica %d tip %d after re-hydration, want %d", i, r.TipHeight(), auth.TipHeight())
		}
	}

	// Local serving resumes, and the next frame applies cleanly everywhere.
	rq = fleet.RouteQuery("get_tip", nil, "c", now)
	if rq.Err != nil || rq.Forwarded {
		t.Fatalf("post-recovery: err=%v forwarded=%v", rq.Err, rq.Forwarded)
	}
	feed(1)
	if err := fleet.CatchUpAll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < fleet.Replicas(); i++ {
		if got, want := fleet.Replica(i).TipHeight(), auth.TipHeight(); got != want {
			t.Fatalf("replica %d tip %d after post-recovery frame, want %d", i, got, want)
		}
	}
}
