package queryfleet

import (
	"testing"
	"time"

	"icbtc/internal/btc"
	"icbtc/internal/canister"
)

// TestReplicaQuarantineOnBadFrame: a frame that fails to decode or apply
// must quarantine the replica — routing skips it (falling back to the
// authoritative canister) instead of certifying a possibly diverged state —
// and a snapshot re-hydration heals it.
func TestReplicaQuarantineOnBadFrame(t *testing.T) {
	auth := canister.New(canister.DefaultConfig(btc.Regtest))
	fleet, err := New(auth, Config{Replicas: 1, MaxLagBlocks: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	now := time.Unix(1_700_000_000, 0).UTC()

	// A healthy replica serves.
	rq := fleet.RouteQuery("get_tip", nil, "c", now)
	if rq.Err != nil || rq.Forwarded {
		t.Fatalf("healthy replica: err=%v forwarded=%v", rq.Err, rq.Forwarded)
	}

	// Inject an undecodable frame: application fails and quarantines.
	r := fleet.Replica(0)
	r.enqueue([]byte("not a frame"), 1)
	if _, err := r.ApplyPending(-1); err == nil {
		t.Fatal("garbage frame applied without error")
	}
	if !r.Broken() {
		t.Fatal("replica not quarantined after a failed frame")
	}
	// Further application attempts refuse until re-hydration.
	if _, err := r.ApplyPending(-1); err == nil {
		t.Fatal("quarantined replica kept applying frames")
	}

	// Routing skips the quarantined replica and forwards to the authority.
	rq = fleet.RouteQuery("get_tip", nil, "c", now)
	if rq.Err != nil {
		t.Fatal(rq.Err)
	}
	if !rq.Forwarded {
		t.Fatal("query was served by a quarantined replica")
	}

	// Re-hydration heals the replica; serving resumes locally.
	if err := fleet.HydrateReplica(0); err != nil {
		t.Fatal(err)
	}
	if r.Broken() {
		t.Fatal("re-hydration did not clear the quarantine")
	}
	rq = fleet.RouteQuery("get_tip", nil, "c", now)
	if rq.Err != nil || rq.Forwarded {
		t.Fatalf("healed replica: err=%v forwarded=%v", rq.Err, rq.Forwarded)
	}
}
