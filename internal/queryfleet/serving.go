package queryfleet

// serving.go implements the fleet's serving layers, the path one query
// takes before (or instead of) reaching a replica:
//
//	coalesce → cache → admit → execute
//
// Coalescing collapses concurrent identical queries — same canonical
// request key from the canister's method registry — into one execution
// whose result (including its certification signature) fans out to every
// waiter. The certified hot-response cache serves threshold-signed
// envelopes without re-execution for as long as the fleet's stream
// generation (the last distributed frame) is unchanged; any frame — new
// block, reorg, header advance — bumps the generation and implicitly
// invalidates every entry, so the cache can never serve across a tip or
// anchor move. Admission control charges each execution against its
// method's cost-class token bucket and sheds the overflow with ErrBusy, so
// a paginated-scan flood cannot starve cheap balance traffic.
//
// All layer state is keyed or guarded such that a response served from any
// layer is byte-identical to some fresh execution against the same stream
// generation — the property the differential harness asserts.

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"icbtc/internal/canister"
	"icbtc/internal/ic"
)

// ErrBusy reports a query shed by admission control: the cost-class budget
// is exhausted. Clients back off and retry; the error is explicit so they
// can distinguish shedding from a failed execution.
var ErrBusy = errors.New("queryfleet: shed by admission control")

// Budget is one cost class's admission budget: a token bucket refilled at
// Rate executions per second up to Burst. Refill is driven by the virtual
// `now` each query carries, so shedding is deterministic under a seeded
// scheduler.
type Budget struct {
	Rate  float64
	Burst float64
}

// cacheEntry is one certified hot response, valid only while the fleet's
// stream generation still equals gen.
type cacheEntry struct {
	gen uint64
	rq  ic.RoutedQuery
}

// flightKey identifies one in-flight coalesced execution: the canonical
// request key bound to the stream generation it was started under, so a
// late waiter can never be handed a response computed before a tip move it
// already observed.
type flightKey struct {
	gen uint64
	key [32]byte
}

// flight is one coalesced execution: the leader executes, followers wait on
// done and return rq verbatim (same value, same signature bytes).
type flight struct {
	done    chan struct{}
	rq      ic.RoutedQuery
	waiters int
}

// bucket is one cost class's token-bucket state.
type bucket struct {
	rate, burst float64
	level       float64
	last        time.Time
	primed      bool
}

// serving holds the fleet's layer state. Nil on fleets with no layer
// enabled — the zero-cost configuration every pre-existing caller gets.
type serving struct {
	coalesce bool
	cacheCap int

	cacheMu sync.Mutex
	cache   map[[32]byte]cacheEntry

	flightMu sync.Mutex
	flights  map[flightKey]*flight

	budgetMu sync.Mutex
	buckets  map[canister.CostClass]*bucket
}

// newServing builds the layer state for a config, or returns nil when every
// layer is disabled.
func newServing(cfg Config) *serving {
	if !cfg.Coalesce && cfg.CacheEntries <= 0 && len(cfg.Budgets) == 0 {
		return nil
	}
	s := &serving{coalesce: cfg.Coalesce, cacheCap: cfg.CacheEntries}
	if cfg.CacheEntries > 0 {
		s.cache = make(map[[32]byte]cacheEntry, cfg.CacheEntries)
	}
	if cfg.Coalesce {
		s.flights = make(map[flightKey]*flight)
	}
	if len(cfg.Budgets) > 0 {
		s.buckets = make(map[canister.CostClass]*bucket, len(cfg.Budgets))
		for class, b := range cfg.Budgets {
			s.buckets[class] = &bucket{rate: b.Rate, burst: b.Burst}
		}
	}
	return s
}

// cacheGet returns the cached response for key if it was filled at the
// current stream generation. A stale-generation entry is never served: the
// generation bumps on every distributed frame, so a hit proves neither the
// tip nor the anchor has moved since the fill.
func (s *serving) cacheGet(gen uint64, key [32]byte) (ic.RoutedQuery, bool) {
	if s.cache == nil {
		return ic.RoutedQuery{}, false
	}
	s.cacheMu.Lock()
	e, ok := s.cache[key]
	s.cacheMu.Unlock()
	if !ok || e.gen != gen {
		return ic.RoutedQuery{}, false
	}
	return e.rq, true
}

// cacheFill stores one certified response under the generation it was
// computed at, reporting whether the entry landed. Under capacity pressure,
// entries from older generations are swept first (they can never be served
// again); if the cache is full of current-generation entries the fill is
// skipped — deterministic, and the hot keys that filled first stay resident.
func (s *serving) cacheFill(gen uint64, key [32]byte, rq ic.RoutedQuery) bool {
	if s.cache == nil {
		return false
	}
	s.cacheMu.Lock()
	if _, exists := s.cache[key]; !exists && len(s.cache) >= s.cacheCap {
		for k, e := range s.cache {
			if e.gen != gen {
				delete(s.cache, k)
			}
		}
		if len(s.cache) >= s.cacheCap {
			s.cacheMu.Unlock()
			return false
		}
	}
	s.cache[key] = cacheEntry{gen: gen, rq: rq}
	s.cacheMu.Unlock()
	return true
}

// CacheSize returns the number of resident cache entries (observability).
func (s *serving) CacheSize() int {
	if s == nil || s.cache == nil {
		return 0
	}
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	return len(s.cache)
}

// join registers interest in one flight. The first caller per key becomes
// the leader (leader true, a fresh flight to complete); followers receive
// the existing flight to wait on.
func (s *serving) join(fk flightKey) (*flight, bool) {
	s.flightMu.Lock()
	if fl, ok := s.flights[fk]; ok {
		fl.waiters++
		s.flightMu.Unlock()
		return fl, false
	}
	fl := &flight{done: make(chan struct{})}
	s.flights[fk] = fl
	s.flightMu.Unlock()
	return fl, true
}

// finish publishes the leader's result and releases the flight's waiters.
func (s *serving) finish(fk flightKey, fl *flight, rq ic.RoutedQuery) {
	s.flightMu.Lock()
	fl.rq = rq
	delete(s.flights, fk)
	s.flightMu.Unlock()
	close(fl.done)
}

// flightWaiters reports how many followers are parked on one flight (test
// observability; 0 when no flight is open for the key).
func (s *serving) flightWaiters(fk flightKey) int {
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	if fl, ok := s.flights[fk]; ok {
		return fl.waiters
	}
	return 0
}

// admit charges one execution against the method's cost-class bucket.
// Unbudgeted classes always admit. The bucket primes to its full burst on
// first use and refills from the virtual timestamps queries carry — no wall
// clock, so a seeded scheduler replays the same shed decisions.
func (s *serving) admit(class canister.CostClass, now time.Time) bool {
	if s.buckets == nil {
		return true
	}
	s.budgetMu.Lock()
	defer s.budgetMu.Unlock()
	b := s.buckets[class]
	if b == nil {
		return true
	}
	if !b.primed {
		b.level = b.burst
		b.last = now
		b.primed = true
	}
	if dt := now.Sub(b.last); dt > 0 {
		b.level += dt.Seconds() * b.rate
		if b.level > b.burst {
			b.level = b.burst
		}
		b.last = now
	}
	if b.level >= 1 {
		b.level--
		return true
	}
	return false
}

// FlightWaiters reports how many followers are parked on the open
// coalesced flight for one request at the current stream generation (0
// when none) — observability for tests and load drivers.
func (f *Fleet) FlightWaiters(method string, arg any) int {
	s := f.serving
	if s == nil || !s.coalesce {
		return 0
	}
	m, ok := canister.MethodByName(method)
	if !ok {
		return 0
	}
	key, err := m.RequestKey(arg)
	if err != nil {
		return 0
	}
	return s.flightWaiters(flightKey{gen: f.gen.Load(), key: key})
}

// routeLayered is RouteQuery's path on fleets with serving layers enabled:
// coalesce → cache → admit → execute (with a lock-free-ish cache fast path
// ahead of flight registration — same semantics, no flight allocation on
// the hot hit path).
func (f *Fleet) routeLayered(m *canister.MethodDesc, method string, arg any, now time.Time) ic.RoutedQuery {
	s := f.serving
	key, err := m.RequestKey(arg)
	if err != nil {
		// Wrong-typed argument: skip the layers and let the canister
		// report its canonical error.
		rq, _, _ := f.executeQuery(method, arg, now)
		return rq
	}
	gen := f.gen.Load()
	cacheable := m.Cacheable && s.cache != nil
	if cacheable {
		if rq, ok := s.cacheGet(gen, key); ok {
			f.met.countGroup(f.met.cacheHits.Inc)
			return rq
		}
		f.met.cacheMisses.Inc()
	}
	if s.coalesce {
		fk := flightKey{gen: gen, key: key}
		fl, leader := s.join(fk)
		if !leader {
			<-fl.done
			f.met.countGroup(f.met.coalesced.Inc)
			return fl.rq
		}
		rq := f.admitAndExecute(m, method, arg, now, gen, key, cacheable)
		s.finish(fk, fl, rq)
		return rq
	}
	return f.admitAndExecute(m, method, arg, now, gen, key, cacheable)
}

// admitAndExecute is the tail of the layered path: charge admission, run
// the query, and fill the cache when the response provably belongs to the
// generation the caller keyed on.
func (f *Fleet) admitAndExecute(m *canister.MethodDesc, method string, arg any, now time.Time, gen uint64, key [32]byte, cacheable bool) ic.RoutedQuery {
	if !f.serving.admit(m.Cost, now) {
		f.met.countGroup(f.met.shed.Inc)
		f.met.shedByClass.With(m.Cost.String()).Inc()
		return ic.RoutedQuery{Err: fmt.Errorf("%w: %s (cost class %s)", ErrBusy, method, m.Cost)}
	}
	rq, servedSeq, forwarded := f.executeQuery(method, arg, now)
	// Fill conditions: a clean response, computed either by the
	// authoritative canister (forwarded) or by a replica that had applied
	// exactly the frames of this generation (servedSeq == gen; tip-height
	// equality is NOT enough — a header-only frame moves the tip hash
	// without moving its height), and no frame has been distributed since
	// the caller loaded gen. A frame racing past the last check is still
	// safe: the entry is stored under gen, and cacheGet never serves an
	// entry whose generation is not current.
	if cacheable && rq.Err == nil && (forwarded || servedSeq == gen) && f.gen.Load() == gen {
		if f.serving.cacheFill(gen, key, rq) {
			f.met.cacheFills.Inc()
		}
	}
	return rq
}
