package queryfleet_test

import (
	"errors"
	"sort"
	"sync"
	"testing"
	"time"

	"icbtc/internal/canister"
	"icbtc/internal/queryfleet"
)

// TestAdmissionDeterministicShedding scripts a single-goroutine request
// sequence against virtual timestamps and asserts the exact admit/shed
// pattern: the token bucket is driven by the `now` each query carries, so
// a seeded scheduler replays identical shed decisions.
func TestAdmissionDeterministicShedding(t *testing.T) {
	cfg := queryfleet.DefaultConfig()
	cfg.Replicas = 1
	cfg.Budgets = map[canister.CostClass]queryfleet.Budget{
		canister.CostScan: {Rate: 1, Burst: 2},
	}
	r := newRig(t, cfg, 10)

	scan := canister.GetUTXOsArgs{Address: r.addr.String(), Limit: 3}
	cheap := canister.GetBalanceArgs{Address: r.addr.String()}
	route := func(method string, arg any, at time.Time) error {
		t.Helper()
		return r.fleet.RouteQuery(method, arg, "client", at).Err
	}

	t0 := r.now
	// Burst of 2 admits, then shed — twice to prove the replayed decision.
	for run := 0; run < 2; run++ {
		at := t0.Add(time.Duration(run) * time.Hour) // a fresh full bucket each run
		if err := route("get_utxos", scan, at); err != nil {
			t.Fatalf("run %d: first scan shed: %v", run, err)
		}
		if err := route("get_utxos", scan, at); err != nil {
			t.Fatalf("run %d: second scan (burst) shed: %v", run, err)
		}
		err := route("get_utxos", scan, at)
		if !errors.Is(err, queryfleet.ErrBusy) {
			t.Fatalf("run %d: third scan = %v, want ErrBusy", run, err)
		}
		// The cheap class has no budget: never shed, even mid-flood.
		if err := route("get_balance", cheap, at); err != nil {
			t.Fatalf("run %d: unbudgeted balance query shed: %v", run, err)
		}
		// Virtual time refills exactly Rate tokens per second.
		if err := route("get_utxos", scan, at.Add(1*time.Second)); err != nil {
			t.Fatalf("run %d: scan after 1s refill shed: %v", run, err)
		}
		if err := route("get_utxos", scan, at.Add(1*time.Second)); !errors.Is(err, queryfleet.ErrBusy) {
			t.Fatalf("run %d: second scan after refill = %v, want ErrBusy", run, err)
		}
	}
	st := r.fleet.Stats()
	if st.Shed != 4 {
		t.Fatalf("Stats.Shed = %d, want 4", st.Shed)
	}
}

// TestAdmissionShedBypassesExecution asserts a shed query consumes no
// replica capacity, is never certified, and is never cached.
func TestAdmissionShedBypassesExecution(t *testing.T) {
	cfg := queryfleet.DefaultConfig()
	cfg.Replicas = 1
	cfg.CacheEntries = 16
	cfg.Budgets = map[canister.CostClass]queryfleet.Budget{
		canister.CostScan: {Rate: 0, Burst: 0}, // scans always shed
	}
	r := newRig(t, cfg, 10)

	served := r.fleet.Replica(0).Served()
	rq := r.fleet.RouteQuery("get_utxos", canister.GetUTXOsArgs{Address: r.addr.String()}, "client", r.now)
	if !errors.Is(rq.Err, queryfleet.ErrBusy) {
		t.Fatalf("zero-budget scan = %v, want ErrBusy", rq.Err)
	}
	if rq.Signature != nil {
		t.Fatal("shed response carries a certification")
	}
	if got := r.fleet.Replica(0).Served(); got != served {
		t.Fatal("shed query reached a replica")
	}
	if r.fleet.CacheSize() != 0 {
		t.Fatal("shed response was cached")
	}
}

// TestScanFloodDoesNotStarveBalance is the SLO test: a paginated get_utxos
// flood runs against a tight scan budget while balance clients measure
// latency. Admission must shed most of the flood with explicit busy
// errors, keep the balance p99 within a (generous, wall-clock) SLO, and
// leave every balance query unshed.
func TestScanFloodDoesNotStarveBalance(t *testing.T) {
	const (
		floodWorkers  = 4
		floodRequests = 40
		balanceReqs   = 60
		balanceSLO    = 400 * time.Millisecond
	)
	cfg := queryfleet.DefaultConfig()
	cfg.Replicas = 2
	// ~28ms per balance query, ~65ms per scan (CostRequestBase is 5.5M
	// instructions): slow enough that an unshed flood would starve the
	// exec slots for seconds, fast enough to keep the test short.
	cfg.ExecRate = 2e8
	cfg.Budgets = map[canister.CostClass]queryfleet.Budget{
		canister.CostScan: {Rate: 10, Burst: 2},
	}
	r := newRig(t, cfg, 12)

	var wg sync.WaitGroup
	floodErrs := make(chan error, floodWorkers*floodRequests)
	for w := 0; w < floodWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < floodRequests; i++ {
				// Distinct limits keep the requests from coalescing or
				// cache-hitting: every admitted one pays full execution.
				args := canister.GetUTXOsArgs{Address: r.addr.String(), Limit: 1 + (w*floodRequests+i)%30}
				if err := r.fleet.RouteQuery("get_utxos", args, "flood", time.Now()).Err; err != nil {
					floodErrs <- err
				}
			}
		}(w)
	}

	latencies := make([]time.Duration, balanceReqs)
	wg.Add(1)
	go func() {
		defer wg.Done()
		args := canister.GetBalanceArgs{Address: r.addr.String()}
		for i := 0; i < balanceReqs; i++ {
			start := time.Now()
			rq := r.fleet.RouteQuery("get_balance", args, "client", start)
			latencies[i] = time.Since(start)
			if rq.Err != nil {
				t.Errorf("balance query %d failed: %v", i, rq.Err)
				return
			}
		}
	}()
	wg.Wait()
	close(floodErrs)

	shedSeen := 0
	for err := range floodErrs {
		if !errors.Is(err, queryfleet.ErrBusy) {
			t.Fatalf("flood error is not the explicit busy error: %v", err)
		}
		shedSeen++
	}
	st := r.fleet.Stats()
	if shedSeen == 0 || st.Shed == 0 {
		t.Fatal("flood was never shed; admission control inert")
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p99 := latencies[len(latencies)*99/100]
	if p99 > balanceSLO {
		t.Fatalf("balance p99 %v exceeds SLO %v under scan flood (shed %d)", p99, balanceSLO, st.Shed)
	}
}
