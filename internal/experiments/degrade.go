package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"icbtc/internal/chaos"
	"icbtc/internal/simnet"
)

// DegradeConfig parameterizes the network-degradation recovery sweep: the
// chaos harness run at a ladder of adapter-link loss rates, measuring rounds
// to reconverge with the honest chain after the links heal.
type DegradeConfig struct {
	// Seed is the first seed; run k of a rate uses Seed+k.
	Seed int64
	// Runs per loss rate. A single seed's recovery time is dominated by
	// where the retry backoff schedule happens to land relative to the heal
	// round, so the table reports mean and max over Runs seeds.
	Runs int
	// LossRates is the ladder of per-message loss probabilities applied to
	// every adapter link (both directions). 0 is the healthy baseline.
	LossRates []float64
	// Rounds per run (0 selects the harness default, 60).
	Rounds int
}

// DefaultDegradeConfig sweeps from healthy to a severely lossy uplink. 0.55
// matches the top of the loss-ramp chaos scenario; past ~0.6 a 3-message
// round trip succeeds <6% of the time and recovery times stop being
// informative within the harness's 60-round budget.
func DefaultDegradeConfig() DegradeConfig {
	return DegradeConfig{Seed: 7, Runs: 3, LossRates: []float64{0, 0.10, 0.25, 0.40, 0.55}}
}

// DegradeRow is one loss rate's recovery measurement across Runs seeds.
type DegradeRow struct {
	LossRate        float64
	HealRound       int
	RecoveryAvg     float64
	RecoveryMax     int
	OracleIdentical bool // across every run
	FinalHeight     int64
}

// DegradeResult is the `bench -fig degrade` table.
type DegradeResult struct {
	Seed int64
	Runs int
	Rows []DegradeRow
}

// The sweep uses the same fault window as the registered network scenarios:
// inject at round 5, heal at round 25.
const (
	degradeInjectRound = 5
	degradeHealRound   = 25
)

// RunDegrade runs the chaos harness Runs times per loss rate with an ad-hoc
// scenario (built on the fly and never registered) that holds the rate on
// every adapter link between the inject and heal rounds. All of the
// harness's per-round invariants apply: the sweep measures recovery time of
// a state that provably never diverged from the loss-free oracle.
func RunDegrade(cfg DegradeConfig) (*DegradeResult, error) {
	if cfg.Runs <= 0 {
		cfg.Runs = 1
	}
	res := &DegradeResult{Seed: cfg.Seed, Runs: cfg.Runs}
	for _, rate := range cfg.LossRates {
		rate := rate
		s := chaos.Scenario{
			Name:        fmt.Sprintf("degrade-loss-%d", int(rate*100)),
			Description: fmt.Sprintf("%.0f%% loss on every adapter link from round %d to %d", rate*100, degradeInjectRound, degradeHealRound),
			Step: func(w *chaos.World, round int) error {
				switch round {
				case degradeInjectRound:
					if rate > 0 {
						w.DegradeAdapterLinks(&simnet.LinkProfile{LossRate: rate})
					}
				case degradeHealRound:
					if rate > 0 {
						w.DegradeAdapterLinks(nil)
					}
					w.SetHealed(degradeHealRound)
				}
				return nil
			},
		}
		row := DegradeRow{LossRate: rate, OracleIdentical: true}
		total := 0
		for k := 0; k < cfg.Runs; k++ {
			ccfg := chaos.DefaultConfig(cfg.Seed + int64(k))
			if cfg.Rounds > 0 {
				ccfg.Rounds = cfg.Rounds
			}
			r, err := chaos.Run(s, ccfg)
			if err != nil {
				return nil, err
			}
			row.HealRound = r.HealRound
			row.OracleIdentical = row.OracleIdentical && r.OracleIdentical
			row.FinalHeight = r.FinalHeight
			total += r.RecoveryRounds
			if r.RecoveryRounds > row.RecoveryMax {
				row.RecoveryMax = r.RecoveryRounds
			}
		}
		row.RecoveryAvg = float64(total) / float64(cfg.Runs)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Print renders the recovery-vs-loss table.
func (r *DegradeResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Degraded-link recovery (seeds %d..%d): rounds to reconverge vs adapter-link loss rate\n",
		r.Seed, r.Seed+int64(r.Runs)-1)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "loss\theal@\trecovery avg\trecovery max\toracle-identical\theight")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%.0f%%\t%d\t%.1f\t%d\t%v\t%d\n",
			row.LossRate*100, row.HealRound, row.RecoveryAvg, row.RecoveryMax,
			row.OracleIdentical, row.FinalHeight)
	}
	tw.Flush()
}
