package experiments

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"time"

	"icbtc/internal/adapter"
	"icbtc/internal/btc"
	"icbtc/internal/canister"
	"icbtc/internal/ic"
)

// Snapshot scenario: the production Bitcoin canister keeps its state in
// stable memory, which is what lets replicas state-sync — a fresh replica
// fetches the certified state instead of replaying the chain — and lets the
// canister survive upgrades. This experiment sizes and times the snapshot
// subsystem on a ~100k-UTXO state: bytes per UTXO, encode and decode wall
// time, and the fast-sync question the paper's state-sync design answers —
// how much faster is restoring a snapshot than re-ingesting the blocks it
// summarizes?

// SnapshotConfig parameterizes the scenario.
type SnapshotConfig struct {
	Seed int64
	// Blocks is how many blocks of history to ingest.
	Blocks int
	// TxsPerBlock is how many transactions each block carries. Real blocks
	// are many small transactions, and replay cost is dominated by per-
	// transaction work (parsing, txid hashing, Merkle validation, delta
	// indexing), so the block shape matters for an honest comparison.
	TxsPerBlock int
	// OutputsPerTx is how many outputs each transaction creates.
	OutputsPerTx int
	// SpendEvery makes every SpendEvery-th transaction consume one
	// previously created output (removals and interned-script refcounts).
	SpendEvery int
	// Addresses is the population size.
	Addresses int
	// Delta is δ; all but the last δ−1 blocks fold into the stable set.
	Delta int64
}

// DefaultSnapshotConfig builds a ≥100k-UTXO state out of realistically
// shaped blocks (~500 transactions of ~2 outputs each — Bitcoin's long-run
// average is close to two outputs per transaction).
func DefaultSnapshotConfig() SnapshotConfig {
	return SnapshotConfig{
		Seed:         7,
		Blocks:       125,
		TxsPerBlock:  500,
		OutputsPerTx: 2,
		SpendEvery:   6,
		Addresses:    64,
		Delta:        6,
	}
}

// SnapshotResult carries the measurements.
type SnapshotResult struct {
	// State shape.
	StableUTXOs    int
	UnstableBlocks int
	Addresses      int

	// Snapshot size.
	SnapshotBytes int
	BytesPerUTXO  float64

	// Wall times: serializing, restoring, and re-ingesting the same blocks
	// into a fresh canister (what a replica without state-sync would do).
	EncodeTime time.Duration
	DecodeTime time.Duration
	ReplayTime time.Duration

	// FastSyncSpeedup is ReplayTime / DecodeTime — how much faster a fresh
	// replica bootstraps from a peer's snapshot than from block replay.
	FastSyncSpeedup float64

	// Deterministic reports that encode→decode→encode reproduced the
	// snapshot byte for byte, and that the replayed replica's snapshot is
	// byte-identical to the original's.
	Deterministic bool
}

// RunSnapshot executes the scenario.
func RunSnapshot(cfg SnapshotConfig) (*SnapshotResult, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	scripts := make([][]byte, cfg.Addresses)
	for i := range scripts {
		var h [20]byte
		rng.Read(h[:])
		scripts[i] = btc.PayToAddrScript(btc.NewP2PKHAddress(h, btc.Regtest))
	}

	// Build the history once and retain it in wire form: a syncing replica
	// receives serialized blocks, so both legs below — snapshot restore and
	// block replay — start from bytes and pay their own parsing/hashing.
	builder := NewBlockBuilder(btc.RegtestParams(), cfg.Seed)
	wire := make([][]byte, 0, cfg.Blocks)
	for i := 0; i < cfg.Blocks; i++ {
		specs := make([]TxSpec, 0, cfg.TxsPerBlock)
		for t := 0; t < cfg.TxsPerBlock; t++ {
			spec := TxSpec{Outputs: PayN(scripts[rng.Intn(len(scripts))], cfg.OutputsPerTx, 546+int64(t%9))}
			if cfg.SpendEvery > 0 && t%cfg.SpendEvery == cfg.SpendEvery-1 {
				spec.Inputs = 1
			}
			specs = append(specs, spec)
		}
		block, err := builder.NextBlock(specs)
		if err != nil {
			return nil, err
		}
		wire = append(wire, block.Bytes())
	}

	mkCfg := canister.DefaultConfig(btc.Regtest)
	mkCfg.StabilityThreshold = cfg.Delta
	// feed parses each block fresh from wire bytes and runs Algorithm 2 on
	// it — exactly what a replica re-ingesting the chain performs.
	feed := func(c *canister.BitcoinCanister) error {
		now := time.Unix(1_700_000_000, 0).UTC()
		for i := range wire {
			block, err := btc.ParseBlock(wire[i])
			if err != nil {
				return err
			}
			now = now.Add(time.Second)
			payload := adapter.Response{Blocks: []adapter.BlockWithHeader{{Block: block, Header: block.Header}}}
			if err := c.ProcessPayload(ic.NewCallContext(ic.KindUpdate, now), payload); err != nil {
				return err
			}
		}
		return nil
	}

	source := canister.New(mkCfg)
	if err := feed(source); err != nil {
		return nil, err
	}

	res := &SnapshotResult{
		StableUTXOs:    source.StableUTXOCount(),
		UnstableBlocks: source.UnstableBlockCount(),
		Addresses:      cfg.Addresses,
	}

	// Each leg is measured best-of-N: the minimum suppresses GC pauses and
	// scheduler noise, the standard way to time a deterministic operation.
	best := func(n int, op func() error) (time.Duration, error) {
		var min time.Duration
		for i := 0; i < n; i++ {
			start := time.Now()
			if err := op(); err != nil {
				return 0, err
			}
			if d := time.Since(start); i == 0 || d < min {
				min = d
			}
		}
		return min, nil
	}

	var snap []byte
	encodeTime, err := best(3, func() error {
		var err error
		snap, err = source.Snapshot()
		return err
	})
	if err != nil {
		return nil, err
	}
	res.EncodeTime = encodeTime
	res.SnapshotBytes = len(snap)
	if res.StableUTXOs > 0 {
		res.BytesPerUTXO = float64(len(snap)) / float64(res.StableUTXOs)
	}

	// Fast-sync leg: a fresh replica restores the peer's snapshot.
	var restored *canister.BitcoinCanister
	if res.DecodeTime, err = best(5, func() error {
		var err error
		restored, err = canister.RestoreSnapshot(snap)
		return err
	}); err != nil {
		return nil, err
	}

	// Replay leg: a fresh replica re-ingests every block.
	var replayer *canister.BitcoinCanister
	if res.ReplayTime, err = best(2, func() error {
		replayer = canister.New(mkCfg)
		return feed(replayer)
	}); err != nil {
		return nil, err
	}
	if res.DecodeTime > 0 {
		res.FastSyncSpeedup = float64(res.ReplayTime) / float64(res.DecodeTime)
	}

	// Determinism cross-checks: the restored replica re-encodes to the same
	// bytes, and the replayed replica's snapshot is byte-identical too (two
	// replicas that followed different paths to the same state agree).
	again, err := restored.Snapshot()
	if err != nil {
		return nil, err
	}
	replaySnap, err := replayer.Snapshot()
	if err != nil {
		return nil, err
	}
	res.Deterministic = bytes.Equal(snap, again) && bytes.Equal(snap, replaySnap)
	if !res.Deterministic {
		return res, fmt.Errorf("experiments: snapshot determinism violated (restore %v, replay %v)",
			bytes.Equal(snap, again), bytes.Equal(snap, replaySnap))
	}
	return res, nil
}

// Print renders the measurements.
func (r *SnapshotResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Snapshot subsystem: state-sync vs block replay")
	fmt.Fprintf(w, "%-28s %12d\n", "stable UTXOs", r.StableUTXOs)
	fmt.Fprintf(w, "%-28s %12d\n", "unstable blocks", r.UnstableBlocks)
	fmt.Fprintf(w, "%-28s %12d\n", "snapshot bytes", r.SnapshotBytes)
	fmt.Fprintf(w, "%-28s %12.1f\n", "bytes/UTXO", r.BytesPerUTXO)
	fmt.Fprintf(w, "%-28s %12s\n", "encode", r.EncodeTime.Round(time.Microsecond))
	fmt.Fprintf(w, "%-28s %12s\n", "decode (fast-sync)", r.DecodeTime.Round(time.Microsecond))
	fmt.Fprintf(w, "%-28s %12s\n", "block replay", r.ReplayTime.Round(time.Microsecond))
	fmt.Fprintf(w, "%-28s %11.1fx\n", "fast-sync speedup", r.FastSyncSpeedup)
	fmt.Fprintf(w, "%-28s %12v\n", "deterministic round trip", r.Deterministic)
}
