package experiments

import (
	"fmt"
	"time"

	"icbtc/internal/adapter"
	"icbtc/internal/btc"
	"icbtc/internal/canister"
	"icbtc/internal/ic"
)

// Feeder drives a BitcoinCanister with blocks from a BlockBuilder the way
// consensus payloads would, one Algorithm-2 invocation per block, and
// accumulates per-block metering — the measurement loop shared by the
// figure experiments.
type Feeder struct {
	Canister *canister.BitcoinCanister
	Builder  *BlockBuilder
	now      time.Time
}

// NewFeeder wires a fresh canister (with the given δ) to a builder.
func NewFeeder(network btc.Network, delta int64, seed int64) *Feeder {
	cfg := canister.DefaultConfig(network)
	if delta > 0 {
		cfg.StabilityThreshold = delta
	}
	return &Feeder{
		Canister: canister.New(cfg),
		Builder:  NewBlockBuilder(btc.ParamsForNetwork(network), seed),
		now:      time.Unix(1_700_000_000, 0).UTC(),
	}
}

// ctx builds a fresh metered update context.
func (f *Feeder) ctx() *ic.CallContext {
	f.now = f.now.Add(time.Second)
	return ic.NewCallContext(ic.KindUpdate, f.now)
}

// BlockCost is the metered cost of ingesting one block.
type BlockCost struct {
	Height        int64
	Transactions  int
	Instructions  uint64
	InsertOutputs uint64
	RemoveInputs  uint64
}

// FeedBlock builds and delivers one block, returning its ingestion cost.
// Because stable-ingestion (the expensive part, Fig 6) happens only when a
// block crosses the δ boundary, the reported cost is attributed to the
// block that was folded into the UTXO set during this delivery.
func (f *Feeder) FeedBlock(specs []TxSpec) (BlockCost, error) {
	block, err := f.Builder.NextBlock(specs)
	if err != nil {
		return BlockCost{}, err
	}
	ctx := f.ctx()
	payload := adapter.Response{Blocks: []adapter.BlockWithHeader{{Block: block, Header: block.Header}}}
	if err := f.Canister.ProcessPayload(ctx, payload); err != nil {
		return BlockCost{}, fmt.Errorf("experiments: feeding block %d: %w", f.Builder.Height(), err)
	}
	return BlockCost{
		Height:        f.Builder.Height(),
		Transactions:  len(block.Transactions),
		Instructions:  ctx.Meter.Total(),
		InsertOutputs: ctx.Meter.Category("insert_outputs"),
		RemoveInputs:  ctx.Meter.Category("remove_inputs"),
	}, nil
}

// FeedEmpty feeds n empty blocks (coinbase only); used to push earlier
// blocks past the stability threshold.
func (f *Feeder) FeedEmpty(n int) error {
	for i := 0; i < n; i++ {
		if _, err := f.FeedBlock(nil); err != nil {
			return err
		}
	}
	return nil
}

// QueryCtx builds a query-kind context for read measurements. The meter is
// embedded in the context (ic.NewCallContext), so one measured request
// costs a single context allocation.
func (f *Feeder) QueryCtx() *ic.CallContext {
	return ic.NewCallContext(ic.KindQuery, f.now)
}
