package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
)

// --- Lemma IV.1: eclipse probability ---

// EclipseRow is one (n, ℓ, ϕ) Monte-Carlo sample.
type EclipseRow struct {
	N           int     // subnet size (number of adapters)
	L           int     // connections per adapter
	Phi         float64 // fraction of corrupted Bitcoin nodes
	PAdapterMC  float64 // measured P(single adapter eclipsed)
	PAdapterAna float64 // analytical ϕ^ℓ
	PAnyMC      float64 // measured P(any of n adapters eclipsed)
	PAnyAna     float64 // analytical 1-(1-ϕ^ℓ)^n
}

// EclipseResult validates Lemma IV.1 by sampling random peer selections.
type EclipseResult struct {
	Trials int
	Rows   []EclipseRow
}

// RunEclipse sweeps ϕ for the paper's parameters (n=13, ℓ=5) plus a larger
// subnet, sampling `trials` random connection sets per point.
func RunEclipse(trials int, seed int64) *EclipseResult {
	if trials <= 0 {
		trials = 20_000
	}
	rng := rand.New(rand.NewSource(seed))
	res := &EclipseResult{Trials: trials}
	const bitcoinNodes = 10_000
	for _, cfg := range []struct {
		n, l int
	}{{13, 5}, {40, 5}, {13, 8}} {
		for _, phi := range []float64{0.1, 0.2, 0.3, 0.5} {
			corrupted := int(phi * bitcoinNodes)
			eclipsedSingle := 0
			eclipsedAny := 0
			for t := 0; t < trials; t++ {
				anyEclipsed := false
				for a := 0; a < cfg.n; a++ {
					all := true
					for c := 0; c < cfg.l; c++ {
						if rng.Intn(bitcoinNodes) >= corrupted {
							all = false
						}
					}
					if all {
						anyEclipsed = true
						if a == 0 {
							// Count the first adapter for the single-adapter
							// estimate (independent of the others).
						}
					}
					if a == 0 && all {
						eclipsedSingle++
					}
				}
				if anyEclipsed {
					eclipsedAny++
				}
			}
			pSingle := math.Pow(phi, float64(cfg.l))
			res.Rows = append(res.Rows, EclipseRow{
				N:           cfg.n,
				L:           cfg.l,
				Phi:         phi,
				PAdapterMC:  float64(eclipsedSingle) / float64(trials),
				PAdapterAna: pSingle,
				PAnyMC:      float64(eclipsedAny) / float64(trials),
				PAnyAna:     1 - math.Pow(1-pSingle, float64(cfg.n)),
			})
		}
	}
	return res
}

// Print renders the Monte-Carlo vs analytical comparison.
func (r *EclipseResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Lemma IV.1: eclipse probability, %d trials per point\n", r.Trials)
	fmt.Fprintf(w, "%-4s %-3s %-5s %14s %14s %14s %14s\n",
		"n", "ℓ", "ϕ", "P(adapter) MC", "ϕ^ℓ", "P(any) MC", "analytical")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-4d %-3d %-5.2f %14.6f %14.6f %14.6f %14.6f\n",
			row.N, row.L, row.Phi, row.PAdapterMC, row.PAdapterAna, row.PAnyMC, row.PAnyAna)
	}
	fmt.Fprintln(w, "with ϕ ≪ n^(−1/ℓ) every adapter keeps a correct connection w.h.p. (Definition IV.1)")
}

// --- Lemma IV.3: post-downtime fork ingestion ---

// DowntimeRow is one c* sweep point.
type DowntimeRow struct {
	CStar      int
	SuccessMC  float64 // measured attack success probability
	BoundAna   float64 // the 3^(−c*) bound
	ByzantineF int
	N          int
}

// DowntimeResult validates Lemma IV.3: after canister downtime, malicious
// block makers must be selected c* times in a row to feed a c*-block fork
// before a correct maker reveals the real chain via the header set N.
type DowntimeResult struct {
	Trials int
	Rows   []DowntimeRow
}

// RunDowntime sweeps c* with f = (n-1)/3 Byzantine replicas. The round
// structure mirrors the proof: the Bitcoin canister accepts one block per
// IC block near the tip, a Byzantine maker can deliver one fork block and
// claim N = {}, and the first correct maker's payload reveals the missing
// headers and ends the attack.
func RunDowntime(trials int, seed int64, n int) *DowntimeResult {
	if trials <= 0 {
		trials = 100_000
	}
	if n <= 0 || (n-1)%3 != 0 {
		n = 13
	}
	f := (n - 1) / 3
	rng := rand.New(rand.NewSource(seed))
	res := &DowntimeResult{Trials: trials}
	for _, cStar := range []int{1, 2, 3, 4, 5, 6} {
		success := 0
		for t := 0; t < trials; t++ {
			// The attack succeeds iff the first c* block makers after the
			// canister resumes are all Byzantine (each delivers one fork
			// block; any correct maker's N-set stops the canister from
			// acting, per Algorithm 2's synced rule).
			ok := true
			for round := 0; round < cStar; round++ {
				if rng.Intn(n) >= f {
					ok = false
					break
				}
			}
			if ok {
				success++
			}
		}
		res.Rows = append(res.Rows, DowntimeRow{
			CStar:      cStar,
			SuccessMC:  float64(success) / float64(trials),
			BoundAna:   math.Pow(3, -float64(cStar)),
			ByzantineF: f,
			N:          n,
		})
	}
	return res
}

// Print renders the sweep.
func (r *DowntimeResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Lemma IV.3: post-downtime fork ingestion, %d trials per point\n", r.Trials)
	fmt.Fprintf(w, "%-6s %-4s %-4s %16s %16s\n", "c*", "n", "f", "P(success) MC", "3^(−c*) bound")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-6d %-4d %-4d %16.6f %16.6f\n",
			row.CStar, row.N, row.ByzantineF, row.SuccessMC, row.BoundAna)
	}
	fmt.Fprintln(w, "measured success stays below the bound (f/n < 1/3 exactly when n = 3f+1)")
}
