package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"icbtc/internal/chaos"
)

// ChaosConfig parameterizes the chaos-recovery experiment.
type ChaosConfig struct {
	// Seed drives every scenario run.
	Seed int64
	// Scenarios to run; empty selects the full registry.
	Scenarios []string
}

// DefaultChaosConfig runs the whole registry.
func DefaultChaosConfig() ChaosConfig { return ChaosConfig{Seed: 7} }

// ChaosResult holds one scenario's recovery measurement.
type ChaosRow struct {
	Scenario        string
	HealRound       int
	ConvergedRound  int
	RecoveryRounds  int
	OracleIdentical bool
	FinalHeight     int64
	SnapshotBytes   int
}

// ChaosResult is the `bench -fig chaos` table: rounds-to-reconverge per
// fault scenario, plus the oracle byte-identity verdict.
type ChaosResult struct {
	Seed int64
	Rows []ChaosRow
	// LastMetricsText is the final scenario run's merged obs dump
	// (Prometheus text), for `bench -metrics`.
	LastMetricsText string
}

// RunChaos runs every selected scenario under the harness's full invariant
// checking and reports recovery time per scenario.
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) {
	names := cfg.Scenarios
	if len(names) == 0 {
		names = chaos.Names()
	}
	res := &ChaosResult{Seed: cfg.Seed}
	for _, name := range names {
		r, err := chaos.RunScenario(name, chaos.DefaultConfig(cfg.Seed))
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, ChaosRow{
			Scenario:        r.Scenario,
			HealRound:       r.HealRound,
			ConvergedRound:  r.ConvergedRound,
			RecoveryRounds:  r.RecoveryRounds,
			OracleIdentical: r.OracleIdentical,
			FinalHeight:     r.FinalHeight,
			SnapshotBytes:   r.SnapshotBytes,
		})
		res.LastMetricsText = r.MetricsText
	}
	return res, nil
}

// Print renders the recovery table.
func (r *ChaosResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Chaos recovery (seed %d): rounds to reconverge with the honest chain after heal\n", r.Seed)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scenario\theal@\tconverged@\trecovery (rounds)\toracle-identical\theight\tsnapshot")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%v\t%d\t%dB\n",
			row.Scenario, row.HealRound, row.ConvergedRound, row.RecoveryRounds,
			row.OracleIdentical, row.FinalHeight, row.SnapshotBytes)
	}
	tw.Flush()
}
