package experiments

import (
	"bytes"
	"math"
	"testing"
	"time"

	"icbtc/internal/adapter"
	"icbtc/internal/btc"
	"icbtc/internal/canister"
	"icbtc/internal/ic"
	"icbtc/internal/simnet"
)

func TestBlockBuilderProducesValidChain(t *testing.T) {
	f := NewFeeder(btc.Regtest, 6, 1)
	script := btc.PayToPubKeyHashScript([20]byte{1})
	for i := 0; i < 12; i++ {
		cost, err := f.FeedBlock([]TxSpec{{Inputs: 1, Outputs: PayN(script, 3, 546)}})
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		if cost.Height != int64(i+1) {
			t.Fatalf("height %d", cost.Height)
		}
	}
	// All 12 blocks must have been ingested by the canister (none rejected)
	// and the anchor advanced past δ.
	if f.Canister.IngestedBlocks() != 12 {
		t.Fatalf("ingested %d", f.Canister.IngestedBlocks())
	}
	// Anchor at 12-δ+1 = 7 (depth of h7 is exactly δ=6).
	if f.Canister.AnchorHeight() != 7 {
		t.Fatalf("anchor %d", f.Canister.AnchorHeight())
	}
	if !f.Canister.Synced() {
		t.Fatal("not synced")
	}
}

func TestBlockBuilderSpendsTrackedOutputs(t *testing.T) {
	f := NewFeeder(btc.Regtest, 6, 2)
	script := btc.PayToPubKeyHashScript([20]byte{2})
	if _, err := f.FeedBlock([]TxSpec{{Outputs: PayN(script, 10, 546)}}); err != nil {
		t.Fatal(err)
	}
	before := f.Builder.SpendableOutputs()
	if _, err := f.FeedBlock([]TxSpec{{Inputs: 4, Outputs: PayN(script, 1, 546)}}); err != nil {
		t.Fatal(err)
	}
	// 4 spent, 1 tx output + 1 coinbase created.
	if got := f.Builder.SpendableOutputs(); got != before-4+2 {
		t.Fatalf("spendable %d, want %d", got, before-2)
	}
}

func TestAddressPopulationSkew(t *testing.T) {
	pop := NewAddressPopulation(btc.Regtest, 3, 1)
	if len(pop.Addresses) != 1000 {
		t.Fatalf("population %d", len(pop.Addresses))
	}
	var small, mid, large, huge int
	for _, a := range pop.Addresses {
		switch {
		case a.Count < 50:
			small++
		case a.Count < 200:
			mid++
		case a.Count < 1000:
			large++
		default:
			huge++
		}
	}
	if small != 517 || mid != 159 || large != 113 || huge != 211 {
		t.Fatalf("skew %d/%d/%d/%d, want 517/159/113/211", small, mid, large, huge)
	}
	if pop.TotalUTXOs() <= 0 {
		t.Fatal("no UTXOs")
	}
	// Scaled population preserves the shape.
	scaled := NewAddressPopulation(btc.Regtest, 3, 10)
	if len(scaled.Addresses) < 90 || len(scaled.Addresses) > 110 {
		t.Fatalf("scaled population %d", len(scaled.Addresses))
	}
}

func TestFig5GrowthShape(t *testing.T) {
	cfg := DefaultFig5Config()
	cfg.Weeks = 30 // shorter for the unit test; the bench runs the full span
	res, err := RunFig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 30 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	// Monotone growth of both series.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].UTXOCount < res.Rows[i-1].UTXOCount {
			t.Fatal("UTXO count not monotone")
		}
		if res.Rows[i].StorageBytes < res.Rows[i-1].StorageBytes {
			t.Fatal("storage not monotone")
		}
	}
	// Storage tracks the UTXO count linearly (the paper's two series move
	// together).
	if dev := res.LinearityError(); dev > 0.1 {
		t.Fatalf("storage deviates %.1f%% from linear in UTXOs", dev*100)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestFig6IngestionShape(t *testing.T) {
	cfg := DefaultFig6Config()
	cfg.Days = 60
	res, err := RunFig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Average in the paper's ballpark (21.6 B ± generous band — the shape,
	// not the constant, is the claim).
	avg := float64(res.AvgInstructions) / 1e9
	if avg < 8 || avg > 40 {
		t.Fatalf("average ingestion %.1f B instructions outside [8,40]", avg)
	}
	// Roughly half the cost in insertions, half in removals (Fig 6 right).
	ins, rem := res.SplitFractions()
	if ins < 0.3 || ins > 0.65 || rem < 0.3 || rem > 0.65 {
		t.Fatalf("split %.2f/%.2f not roughly half/half", ins, rem)
	}
	if ins+rem < 0.8 {
		t.Fatalf("insert+remove only %.2f of total", ins+rem)
	}
	// Cost varies with block size (the figure's spread): min well below max.
	var min, max uint64 = math.MaxUint64, 0
	for _, row := range res.Rows {
		if row.Instructions < min {
			min = row.Instructions
		}
		if row.Instructions > max {
			max = row.Instructions
		}
	}
	if float64(max) < 1.5*float64(min) {
		t.Fatalf("no spread: min %d max %d", min, max)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestFig7Shape(t *testing.T) {
	cfg := DefaultFig7Config()
	cfg.Scale = 20 // ~50 addresses: fast but covers all buckets
	res, err := RunFig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Query latency must grow with UTXO count: compare the small and large
	// thirds.
	third := len(res.Rows) / 3
	if third > 0 {
		var smallSum, largeSum time.Duration
		for _, row := range res.Rows[:third] {
			smallSum += row.UTXOsQuery
		}
		for _, row := range res.Rows[len(res.Rows)-third:] {
			largeSum += row.UTXOsQuery
		}
		if largeSum <= smallSum {
			t.Fatal("query latency does not grow with UTXO count")
		}
	}
	for _, row := range res.Rows {
		// Replicated calls dominated by consensus: several seconds.
		if row.BalanceReplicated < 3*time.Second {
			t.Fatalf("replicated balance %v implausibly fast", row.BalanceReplicated)
		}
		// Queries far faster than replicated calls.
		if row.BalanceQuery >= row.BalanceReplicated {
			t.Fatal("query not faster than replicated")
		}
		if row.UTXOsInstructions == 0 {
			t.Fatal("no instructions recorded")
		}
	}
	// Bifurcation: an unstable address's instructions are below a stable
	// address's at a comparable UTXO count.
	var stableSamples, unstableSamples []Fig7Row
	for _, row := range res.Rows {
		if row.UTXOCount >= 100 && row.UTXOCount <= 1100 {
			if row.Unstable {
				unstableSamples = append(unstableSamples, row)
			} else {
				stableSamples = append(stableSamples, row)
			}
		}
	}
	if len(stableSamples) > 0 && len(unstableSamples) > 0 {
		var sPer, uPer float64
		for _, s := range stableSamples {
			sPer += float64(s.UTXOsInstructions) / float64(s.UTXOCount)
		}
		sPer /= float64(len(stableSamples))
		for _, u := range unstableSamples {
			uPer += float64(u.UTXOsInstructions) / float64(u.UTXOCount)
		}
		uPer /= float64(len(unstableSamples))
		if uPer >= sPer {
			t.Fatalf("no bifurcation: unstable %.0f/UTXO vs stable %.0f/UTXO", uPer, sPer)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestLatencyDistribution(t *testing.T) {
	cfg := DefaultLatencyConfig()
	cfg.Scale = 25 // ~40 addresses
	res, err := RunLatency(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Paper bands with tolerance: min ≈7s → [4,11]; avg <10s → <15s;
	// p90 ≈18s → [8,30].
	if res.ReplicatedMin < 4*time.Second || res.ReplicatedMin > 11*time.Second {
		t.Fatalf("replicated min %v", res.ReplicatedMin)
	}
	if res.ReplicatedAvg > 15*time.Second {
		t.Fatalf("replicated avg %v", res.ReplicatedAvg)
	}
	if res.ReplicatedP90 < res.ReplicatedAvg || res.ReplicatedP90 > 30*time.Second {
		t.Fatalf("replicated p90 %v (avg %v)", res.ReplicatedP90, res.ReplicatedAvg)
	}
	// Query medians: hundreds of milliseconds; UTXOs slower than balance.
	if res.QueryBalanceMedian > time.Second {
		t.Fatalf("balance median %v", res.QueryBalanceMedian)
	}
	if res.QueryUTXOsMedian < res.QueryBalanceMedian {
		t.Fatalf("utxos median %v below balance median %v", res.QueryUTXOsMedian, res.QueryBalanceMedian)
	}
	if res.QueryUTXOsP90 > 5*time.Second {
		t.Fatalf("utxos p90 %v", res.QueryUTXOsP90)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestCostArithmetic(t *testing.T) {
	res, err := RunCost(13)
	if err != nil {
		t.Fatal(err)
	}
	// Orders of magnitude per the paper: tens of thousands of balance
	// requests per dollar, ~20x fewer UTXO requests.
	if res.BalancePerUSD < 5_000 || res.BalancePerUSD > 500_000 {
		t.Fatalf("balance/USD %.0f", res.BalancePerUSD)
	}
	if res.UTXOsPerUSD < 300 || res.UTXOsPerUSD > 50_000 {
		t.Fatalf("utxos/USD %.0f", res.UTXOsPerUSD)
	}
	if res.UTXOsPerUSD >= res.BalancePerUSD {
		t.Fatal("UTXO requests not more expensive than balance requests")
	}
	if got := float64(res.IngestionInstructions) / 1e9; got < 8 || got > 40 {
		t.Fatalf("ingestion %.1f B", got)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestEclipseMonteCarloMatchesAnalytical(t *testing.T) {
	res := RunEclipse(30_000, 17)
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		// MC within 3 standard errors + small absolute slack of analytic.
		se := math.Sqrt(row.PAdapterAna*(1-row.PAdapterAna)/float64(res.Trials)) + 1e-4
		if diff := math.Abs(row.PAdapterMC - row.PAdapterAna); diff > 3*se+0.01 {
			t.Fatalf("n=%d ℓ=%d ϕ=%.2f: MC %.5f vs analytic %.5f", row.N, row.L, row.Phi, row.PAdapterMC, row.PAdapterAna)
		}
		// Larger ℓ at same ϕ must reduce the eclipse probability.
	}
	// ϕ=0.5, ℓ=5 → ϕ^ℓ ≈ 3.1%; ℓ=8 → ≈0.4%.
	var l5, l8 float64
	for _, row := range res.Rows {
		if row.Phi == 0.5 && row.N == 13 {
			if row.L == 5 {
				l5 = row.PAdapterMC
			}
			if row.L == 8 {
				l8 = row.PAdapterMC
			}
		}
	}
	if l8 >= l5 {
		t.Fatalf("more connections did not reduce eclipse probability: ℓ5=%.4f ℓ8=%.4f", l5, l8)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestDowntimeBound(t *testing.T) {
	res := RunDowntime(200_000, 19, 13)
	for _, row := range res.Rows {
		// The measured success probability must respect the 3^(−c*) bound
		// (f/n = 4/13 < 1/3), with slack for MC noise.
		if row.SuccessMC > row.BoundAna*1.1+1e-4 {
			t.Fatalf("c*=%d: success %.6f exceeds bound %.6f", row.CStar, row.SuccessMC, row.BoundAna)
		}
	}
	// Success must decay geometrically.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].SuccessMC > res.Rows[i-1].SuccessMC && res.Rows[i-1].SuccessMC > 0 {
			t.Fatal("success probability not decaying")
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}

// TestDowntimeSystemLevel wires the REAL subnet + canister: Byzantine block
// makers feed a private fork after downtime, honest makers reveal the true
// chain via N, and the corrupting transaction must never reach c*
// confirmations once a correct maker has proposed.
func TestDowntimeSystemLevel(t *testing.T) {
	sched := simnet.NewScheduler(21)
	subCfg := ic.DefaultConfig()
	subCfg.N = 4
	subCfg.DisableThresholdKeys = true
	subCfg.DegradedRoundProb = 0
	subCfg.Seed = 21
	subnet, err := ic.NewSubnet(sched, subCfg)
	if err != nil {
		t.Fatal(err)
	}

	// Honest history: 8 blocks; canister ingests all.
	canCfg := canister.DefaultConfig(btc.Regtest)
	can := canister.New(canCfg)
	builder := NewBlockBuilder(btc.RegtestParams(), 21)
	var honest []*btc.Block
	for i := 0; i < 8; i++ {
		blk, err := builder.NextBlock(nil)
		if err != nil {
			t.Fatal(err)
		}
		honest = append(honest, blk)
	}
	feedCtx := &ic.CallContext{Meter: ic.NewMeter(), Time: sched.Now(), Kind: ic.KindUpdate}
	for _, blk := range honest[:5] { // canister saw only the first 5 (downtime)
		if err := can.ProcessPayload(feedCtx, adapter.Response{Blocks: []adapter.BlockWithHeader{{Block: blk, Header: blk.Header}}}); err != nil {
			t.Fatal(err)
		}
	}
	subnet.InstallCanister("bitcoin", can)

	// Attacker fork from height 5 with a corrupting transaction.
	forkBuilder := &BlockBuilder{
		params: btc.RegtestParams(),
		prev:   honest[4].Header,
		prevTS: []uint32{honest[4].Header.Timestamp + 1},
		height: 5,
		rng:    builder.rng,
	}
	loot := btc.PayToPubKeyHashScript([20]byte{0x66})
	var fork []*btc.Block
	for i := 0; i < 3; i++ {
		specs := []TxSpec{}
		if i == 0 {
			specs = append(specs, TxSpec{Outputs: PayN(loot, 1, 777)})
		}
		blk, err := forkBuilder.NextBlock(specs)
		if err != nil {
			t.Fatal(err)
		}
		fork = append(fork, blk)
	}

	// Byzantine replica 0 feeds fork blocks one per round with N = {};
	// honest replicas reveal the real chain's remaining blocks.
	forkIdx, honestIdx := 0, 5
	subnet.Replicas()[0].Byzantine = true
	subnet.Replicas()[0].MaliciousPayload = func(ic.CanisterID) any {
		if forkIdx >= len(fork) {
			return nil
		}
		blk := fork[forkIdx]
		forkIdx++
		return adapter.Response{Blocks: []adapter.BlockWithHeader{{Block: blk, Header: blk.Header}}}
	}
	for _, r := range subnet.Replicas()[1:] {
		r.SetPayloadBuilder("bitcoin", ic.PayloadBuilderFunc(func() any {
			if honestIdx >= len(honest) {
				return nil
			}
			blk := honest[honestIdx]
			honestIdx++
			return adapter.Response{Blocks: []adapter.BlockWithHeader{{Block: blk, Header: blk.Header}}}
		}))
	}
	subnet.Start()
	sched.RunFor(60 * time.Second)

	// The honest chain (height 8) outgrows the fork (height 8 too, but the
	// honest branch ties and deterministic d_w selection is checked by the
	// canister); the corrupting transaction must never be visible with 2+
	// confirmations on the current chain once honest blocks landed.
	lootAddr, _ := btc.ExtractAddress(loot, btc.Regtest)
	ctx := &ic.CallContext{Meter: ic.NewMeter(), Time: sched.Now(), Kind: ic.KindQuery}
	res, err := can.GetUTXOs(ctx, canister.GetUTXOsArgs{Address: lootAddr.String(), MinConfirmations: 3})
	if err != nil {
		// Not synced is an acceptable safe outcome.
		return
	}
	if len(res.UTXOs) != 0 {
		t.Fatal("corrupting transaction visible with 3 confirmations")
	}
}

func TestDeltaSweepMonotone(t *testing.T) {
	res, err := RunDeltaSweep(23)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].GetUTXOsInstructions <= res.Rows[i-1].GetUTXOsInstructions {
			t.Fatalf("δ=%d cost %d not above δ=%d cost %d",
				res.Rows[i].Delta, res.Rows[i].GetUTXOsInstructions,
				res.Rows[i-1].Delta, res.Rows[i-1].GetUTXOsInstructions)
		}
		if res.Rows[i].UnstableBlocks <= res.Rows[i-1].UnstableBlocks {
			t.Fatal("unstable suffix did not grow with δ")
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestSyncModesAblation(t *testing.T) {
	res, err := RunSyncModes(29)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	single, multi := res.Rows[0], res.Rows[1]
	if single.MaxBlocksPerResponse != 1 {
		t.Fatalf("single-block mode returned %d blocks", single.MaxBlocksPerResponse)
	}
	if multi.MaxBlocksPerResponse <= 1 {
		t.Fatal("multi-block mode never returned multiple blocks")
	}
	if multi.RequestRounds >= single.RequestRounds {
		t.Fatalf("multi-block (%d rounds) not faster than single (%d rounds)",
			multi.RequestRounds, single.RequestRounds)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestTauSweepMatrix(t *testing.T) {
	res, err := RunTauSweep(31)
	if err != nil {
		t.Fatal(err)
	}
	get := func(tau, lag int64) float64 {
		for _, row := range res.Rows {
			if row.Tau == tau && row.Lag == lag {
				return row.AnsweredFraction
			}
		}
		t.Fatalf("missing row τ=%d lag=%d", tau, lag)
		return 0
	}
	// τ=0 refuses any lag; τ=2 (production) tolerates lag ≤ 2; larger τ
	// tolerates more.
	if get(0, 0) != 1 || get(0, 1) != 0 {
		t.Fatal("τ=0 behavior wrong")
	}
	if get(2, 2) != 1 || get(2, 3) != 0 {
		t.Fatal("τ=2 behavior wrong")
	}
	if get(8, 6) != 1 {
		t.Fatal("τ=8 behavior wrong")
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestScalingLinear(t *testing.T) {
	res, err := RunScaling(61)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	base := res.Rows[0]
	if base.CompletedCalls == 0 {
		t.Fatal("no calls completed")
	}
	for _, row := range res.Rows[1:] {
		ratio := float64(row.CompletedCalls) / float64(base.CompletedCalls)
		want := float64(row.Subnets)
		if ratio < want*0.8 || ratio > want*1.2 {
			t.Fatalf("%d subnets: throughput ratio %.2f, want ~%.0f (linear)", row.Subnets, ratio, want)
		}
		// Latency must not degrade materially with more subnets.
		if row.AvgLatency > base.AvgLatency*3/2 {
			t.Fatalf("%d subnets: latency %v degraded vs %v", row.Subnets, row.AvgLatency, base.AvgLatency)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestSnapshotScenario(t *testing.T) {
	// Scaled-down state; the bench runs the full ≥100k-UTXO configuration.
	cfg := SnapshotConfig{
		Seed:         3,
		Blocks:       20,
		TxsPerBlock:  40,
		OutputsPerTx: 3,
		SpendEvery:   5,
		Addresses:    16,
		Delta:        6,
	}
	res, err := RunSnapshot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deterministic {
		t.Fatal("round trip not deterministic")
	}
	if res.StableUTXOs == 0 || res.UnstableBlocks != int(cfg.Delta)-1 {
		t.Fatalf("unexpected state shape: %d stable UTXOs, %d unstable blocks",
			res.StableUTXOs, res.UnstableBlocks)
	}
	if res.SnapshotBytes == 0 || res.BytesPerUTXO <= 0 {
		t.Fatalf("degenerate snapshot: %d bytes", res.SnapshotBytes)
	}
	// Restore must beat replay even at this small scale; the ≥10× criterion
	// is asserted by the full-scale bench, not here (CI wall clocks vary).
	if res.FastSyncSpeedup < 1 {
		t.Fatalf("fast-sync slower than replay: %.2fx", res.FastSyncSpeedup)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestIngestScenario(t *testing.T) {
	// Scaled down for CI; the full mainnet-shaped run is `bench -fig
	// ingest`. The scenario itself asserts byte-identical state across
	// every leg before reporting a single number; wall-clock speedups are
	// NOT asserted here — CI machines (and this container) may have any
	// core count.
	cfg := IngestConfig{
		Seed:         3,
		Blocks:       15,
		TxsPerBlock:  60,
		OutputsPerTx: 2,
		SpendEvery:   5,
		Addresses:    16,
		Delta:        6,
		Workers:      []int{1, 2, 4},
		Rounds:       1,
	}
	res, err := RunIngest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical {
		t.Fatal("pipelined legs diverged from serial")
	}
	if len(res.Rows) != 1+len(cfg.Workers) || len(res.HydrateRows) != len(cfg.Workers) {
		t.Fatalf("unexpected table shape: %d ingest rows, %d hydrate rows", len(res.Rows), len(res.HydrateRows))
	}
	if res.StableUTXOs == 0 || res.Rows[0].BlocksSec <= 0 {
		t.Fatalf("degenerate run: %+v", res.Rows[0])
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}
