package experiments

import "testing"

// TestReadPathOverlaySpeedup pins the tentpole's acceptance criteria at the
// mainnet-shaped configuration (δ=144): the overlay read path no longer
// scales linearly with unstable depth and beats the naive-replay oracle by
// ≥ 5× at full depth.
func TestReadPathOverlaySpeedup(t *testing.T) {
	res, err := RunReadPath(DefaultReadPathConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.BalanceSpeedupAtFullDepth(); got < 5 {
		t.Errorf("get_balance instruction speedup at depth δ-1 = %.1fx, want >= 5x", got)
	}
	if got := res.UTXOsWallSpeedupAtFullDepth(); got < 5 {
		t.Errorf("get_utxos wall-clock speedup at depth δ-1 = %.1fx, want >= 5x", got)
	}
	// The oracle's cost is linear in depth (the §III-C complexity); the
	// overlay's must be essentially flat.
	if got := res.OracleDepthScaling(); got < 4 {
		t.Errorf("oracle depth scaling %.1fx, expected strongly depth-dependent (>= 4x)", got)
	}
	if got := res.OverlayDepthScaling(); got > 1.5 {
		t.Errorf("overlay depth scaling %.2fx, want <= 1.5x (depth-independent)", got)
	}
	// A repeated balance query is served from the coherent cache at a
	// fraction of even the overlay's merge cost.
	if res.BalanceCacheHitInstr >= res.Rows[0].BalanceOverlay {
		t.Errorf("cache hit cost %d not below overlay merge cost %d",
			res.BalanceCacheHitInstr, res.Rows[0].BalanceOverlay)
	}
	// Building deltas at ingestion must stay a small fraction of ingestion
	// work — the overlay shifts cost off the read path without making
	// block processing meaningfully more expensive.
	if res.DeltaBuildShare > 0.15 {
		t.Errorf("delta build share %.1f%% of ingestion, want <= 15%%", res.DeltaBuildShare*100)
	}
}

// TestReadPathSmallDelta exercises the sweep bookkeeping at the regtest δ.
func TestReadPathSmallDelta(t *testing.T) {
	cfg := DefaultReadPathConfig()
	cfg.Delta = 8
	cfg.StableBlocks = 4
	cfg.TxPerBlock = 5
	cfg.SampleAddresses = 4
	res, err := RunReadPath(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		if row.BalanceOracle == 0 || row.BalanceOverlay == 0 {
			t.Fatalf("zero-cost row: %+v", row)
		}
		if row.Depth == 0 && row.BalanceOracle != row.BalanceOverlay {
			t.Errorf("at depth 0 both paths serve from the stable set alone: oracle=%d overlay=%d",
				row.BalanceOracle, row.BalanceOverlay)
		}
	}
}
