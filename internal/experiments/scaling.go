package experiments

import (
	"fmt"
	"io"
	"time"

	"icbtc/internal/btc"
	"icbtc/internal/canister"
	"icbtc/internal/ic"
	"icbtc/internal/simnet"
)

// Throughput scaling: the paper omits a throughput evaluation "due to
// space constraints and the fact that capacity can be increased linearly
// on demand by hosting Bitcoin canisters on more subnets" (§IV-B). This
// extension experiment substantiates that claim in the simulation: K
// independent subnets each hosting a Bitcoin canister serve K times the
// replicated-call throughput at essentially unchanged latency.

// ScalingRow is one subnet-count sample.
type ScalingRow struct {
	Subnets int
	// CompletedCalls across all subnets in the measurement window.
	CompletedCalls int
	// AvgLatency across all completed calls.
	AvgLatency time.Duration
}

// ScalingResult is the sweep over subnet counts.
type ScalingResult struct {
	Window time.Duration
	Rows   []ScalingRow
}

// RunScaling measures aggregate replicated-call throughput for 1..4
// subnets over a fixed virtual-time window under saturating demand.
func RunScaling(seed int64) (*ScalingResult, error) {
	const window = 2 * time.Minute
	res := &ScalingResult{Window: window}
	for _, k := range []int{1, 2, 3, 4} {
		sched := simnet.NewScheduler(seed + int64(k))
		completed := 0
		var latencySum time.Duration
		var addr string
		for i := 0; i < k; i++ {
			cfg := ic.DefaultConfig()
			cfg.DisableThresholdKeys = true
			cfg.DegradedRoundProb = 0
			cfg.Seed = seed + int64(k*100+i)
			s, err := ic.NewSubnet(sched, cfg)
			if err != nil {
				return nil, err
			}
			// Each subnet hosts its own Bitcoin canister with a small state.
			can := canister.New(canister.DefaultConfig(btc.Regtest))
			s.InstallCanister("bitcoin", can)
			s.Start()
			if addr == "" {
				addr = btc.NewP2PKHAddress([20]byte{0x5C}, btc.Regtest).String()
			}
			// Saturating demand: one call per 100ms per subnet.
			subnet := s
			var issue func()
			issue = func() {
				subnet.SubmitUpdate("bitcoin", "get_balance",
					canister.GetBalanceArgs{Address: addr}, "load", func(r ic.Result) {
						if r.Err == nil {
							completed++
							latencySum += r.Latency
						}
					})
				sched.After(100*time.Millisecond, issue)
			}
			sched.After(time.Duration(i)*10*time.Millisecond, issue)
		}
		sched.RunFor(window)
		row := ScalingRow{Subnets: k, CompletedCalls: completed}
		if completed > 0 {
			row.AvgLatency = latencySum / time.Duration(completed)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Print renders the sweep.
func (r *ScalingResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Extension: throughput scaling over %v (paper: capacity increases linearly with subnets)\n", r.Window)
	fmt.Fprintf(w, "%-9s %16s %14s %16s\n", "subnets", "completed calls", "avg latency", "calls vs 1-subnet")
	base := 0
	for _, row := range r.Rows {
		if row.Subnets == 1 {
			base = row.CompletedCalls
		}
		ratio := 0.0
		if base > 0 {
			ratio = float64(row.CompletedCalls) / float64(base)
		}
		fmt.Fprintf(w, "%-9d %16d %14v %15.2fx\n", row.Subnets, row.CompletedCalls, row.AvgLatency.Round(time.Millisecond), ratio)
	}
}
