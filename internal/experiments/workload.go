// Package experiments regenerates every figure and in-text measurement of
// the paper's evaluation (§IV): UTXO-set and storage growth (Fig 5), block
// ingestion cost and its insert/remove split (Fig 6), request latency and
// instruction counts versus UTXO-set size (Fig 7), the latency and cost
// summary numbers, and Monte-Carlo validations of the security lemmas
// (IV.1–IV.3), plus ablations over the design parameters DESIGN.md calls
// out (δ, τ, single- versus multi-block responses).
//
// Experiments run against the same canister, adapter, and subnet code the
// integration uses; the workload generators below replace the mainnet
// traffic the paper measured (see the substitution table in DESIGN.md).
package experiments

import (
	"fmt"
	"math/rand"

	"icbtc/internal/btc"
)

// BlockBuilder manufactures valid blocks (real PoW at simulation targets,
// correct Merkle roots and timestamps) on top of a growing chain without a
// full Bitcoin network — the fast path for feeding the canister synthetic
// history.
type BlockBuilder struct {
	params *btc.Params
	// prev tracks the chain tip header and the timestamp window for MTP.
	prev      btc.BlockHeader
	prevTS    []uint32
	height    int64
	extra     uint64
	spendable []btc.OutPoint
	rng       *rand.Rand
}

// NewBlockBuilder starts a builder at the network genesis.
func NewBlockBuilder(params *btc.Params, seed int64) *BlockBuilder {
	return &BlockBuilder{
		params: params,
		prev:   params.GenesisHeader,
		prevTS: []uint32{params.GenesisHeader.Timestamp},
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Height returns the current tip height.
func (b *BlockBuilder) Height() int64 { return b.height }

// TipHeader returns the current tip header.
func (b *BlockBuilder) TipHeader() btc.BlockHeader { return b.prev }

// SpendableOutputs returns how many previously created outputs are
// available for the generator to spend.
func (b *BlockBuilder) SpendableOutputs() int { return len(b.spendable) }

// TxSpec describes one synthetic transaction.
type TxSpec struct {
	// Inputs is how many previously created outputs to consume (capped by
	// availability; coinbase-style zero is allowed).
	Inputs int
	// Outputs lists the locking scripts and values to create.
	Outputs []btc.TxOut
}

// PayN builds n outputs of the given value paying the same script.
func PayN(script []byte, n int, value int64) []btc.TxOut {
	outs := make([]btc.TxOut, n)
	for i := range outs {
		outs[i] = btc.TxOut{Value: value, PkScript: script}
	}
	return outs
}

// NextBlock mines the next block containing a coinbase plus one transaction
// per spec. Spent inputs are drawn from (and removed from) the builder's
// spendable pool; created outputs join the pool.
func (b *BlockBuilder) NextBlock(specs []TxSpec) (*btc.Block, error) {
	b.extra++
	coinbase := &btc.Transaction{
		Version: 2,
		Inputs: []btc.TxIn{{
			PreviousOutPoint: btc.OutPoint{TxID: btc.ZeroHash, Vout: 0xffffffff},
			SignatureScript: []byte{
				byte(b.height + 1), byte((b.height + 1) >> 8), byte((b.height + 1) >> 16), byte((b.height + 1) >> 24),
				byte(b.extra), byte(b.extra >> 8), byte(b.extra >> 16), byte(b.extra >> 24),
			},
		}},
		Outputs: []btc.TxOut{{Value: b.params.BlockSubsidy, PkScript: btc.PayToPubKeyHashScript([20]byte{0xA1})}},
	}
	txs := []*btc.Transaction{coinbase}
	var newOutputs []btc.OutPoint
	cbID := coinbase.TxID()
	newOutputs = append(newOutputs, btc.OutPoint{TxID: cbID, Vout: 0})

	for _, spec := range specs {
		tx := &btc.Transaction{Version: 2}
		nIn := spec.Inputs
		if nIn > len(b.spendable) {
			nIn = len(b.spendable)
		}
		if nIn == 0 {
			// Synthetic "import": spend a fabricated outpoint. The canister
			// tolerates unknown inputs (it does not validate spends), and
			// the generator uses this to model value entering the tracked
			// address set.
			var fake btc.OutPoint
			b.rng.Read(fake.TxID[:])
			tx.Inputs = append(tx.Inputs, btc.TxIn{PreviousOutPoint: fake})
		}
		for i := 0; i < nIn; i++ {
			// Pop a random spendable output.
			j := b.rng.Intn(len(b.spendable))
			op := b.spendable[j]
			b.spendable[j] = b.spendable[len(b.spendable)-1]
			b.spendable = b.spendable[:len(b.spendable)-1]
			tx.Inputs = append(tx.Inputs, btc.TxIn{PreviousOutPoint: op})
		}
		tx.Outputs = spec.Outputs
		txs = append(txs, tx)
		txid := tx.TxID()
		for v := range tx.Outputs {
			newOutputs = append(newOutputs, btc.OutPoint{TxID: txid, Vout: uint32(v)})
		}
	}

	ts := btc.MedianTimePast(b.prevTS) + 30
	header := btc.BlockHeader{
		Version:   1,
		PrevBlock: b.prev.BlockHash(),
		Timestamp: ts,
		Bits:      b.prev.Bits,
	}
	block := &btc.Block{Header: header, Transactions: txs}
	block.Header.MerkleRoot = block.MerkleRoot()
	for nonce := uint32(0); ; nonce++ {
		block.Header.Nonce = nonce
		if btc.HashMeetsTarget(block.BlockHash(), block.Header.Bits) {
			break
		}
		if nonce == 1<<24 {
			return nil, fmt.Errorf("experiments: PoW search exhausted at height %d", b.height+1)
		}
	}
	b.prev = block.Header
	b.prevTS = append(b.prevTS, ts)
	if len(b.prevTS) > 11 {
		b.prevTS = b.prevTS[len(b.prevTS)-11:]
	}
	b.height++
	b.spendable = append(b.spendable, newOutputs...)
	return block, nil
}

// AddressPopulation builds the Fig 7 address set with the paper's reported
// skew: of 1000 addresses, 517 hold fewer than 50 UTXOs, 159 hold 50-199,
// 113 hold 200-999, and 211 hold 1000 or more.
type AddressPopulation struct {
	Addresses []PopulationAddress
}

// PopulationAddress is one synthetic address and its target UTXO count.
type PopulationAddress struct {
	Address string
	Script  []byte
	Count   int
}

// NewAddressPopulation samples the population. Scale divides every bucket's
// size (scale=1 reproduces the full 1000 addresses).
func NewAddressPopulation(network btc.Network, seed int64, scale int) *AddressPopulation {
	if scale < 1 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(seed))
	buckets := []struct {
		n        int
		min, max int
	}{
		{517, 1, 49},
		{159, 50, 199},
		{113, 200, 999},
		{211, 1000, 2500},
	}
	pop := &AddressPopulation{}
	idx := 0
	for _, bk := range buckets {
		n := bk.n / scale
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			var h [20]byte
			rng.Read(h[:])
			addr := btc.NewP2PKHAddress(h, network)
			pop.Addresses = append(pop.Addresses, PopulationAddress{
				Address: addr.String(),
				Script:  btc.PayToAddrScript(addr),
				Count:   bk.min + rng.Intn(bk.max-bk.min+1),
			})
			idx++
		}
	}
	return pop
}

// TotalUTXOs sums the population's target counts.
func (p *AddressPopulation) TotalUTXOs() int {
	total := 0
	for _, a := range p.Addresses {
		total += a.Count
	}
	return total
}
