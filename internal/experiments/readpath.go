package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"icbtc/internal/adapter"
	"icbtc/internal/btc"
	"icbtc/internal/canister"
	"icbtc/internal/ic"
)

// Read-path scenario: the paper's §III-C read path replays every unstable
// block per request, so get_utxos/get_balance cost grows linearly with δ
// (144 on mainnet ≈ one day of blocks). This experiment builds a mainnet-
// deep unstable chain over a skewed address workload, feeds the identical
// blocks to two canisters — the incremental overlay read path and the
// retained naive-replay oracle — and measures both instruction cost and
// wall time per request as the considered depth shrinks with the
// minConfirmations filter (depth = δ − c + 1 at the tip).

// ReadPathConfig parameterizes the scenario.
type ReadPathConfig struct {
	Seed int64
	// Delta is δ; the unstable chain is kept exactly this deep.
	Delta int64
	// StableBlocks funds the address population below the anchor.
	StableBlocks int
	// TxPerBlock is the number of transactions per unstable block.
	TxPerBlock int
	// Addresses is the population size; selection is skewed so a few hot
	// addresses take most of the traffic (the Fig 7 population shape).
	Addresses int
	// SampleAddresses is how many addresses each depth point measures.
	SampleAddresses int
}

// DefaultReadPathConfig returns the mainnet-shaped configuration (δ=144).
func DefaultReadPathConfig() ReadPathConfig {
	return ReadPathConfig{
		Seed:            7,
		Delta:           144,
		StableBlocks:    12,
		TxPerBlock:      12,
		Addresses:       24,
		SampleAddresses: 8,
	}
}

// ReadPathRow is one depth point, averaged over the sampled addresses.
type ReadPathRow struct {
	MinConfirmations int64
	// Depth is the number of unstable blocks the considered chain holds.
	Depth int64
	// Instruction averages per request.
	BalanceOracle, BalanceOverlay uint64
	UTXOsOracle, UTXOsOverlay     uint64
	// Wall-clock averages per request.
	BalanceOracleNs, BalanceOverlayNs time.Duration
	UTXOsOracleNs, UTXOsOverlayNs     time.Duration
}

// ReadPathResult carries the depth sweep plus ingestion-side accounting.
type ReadPathResult struct {
	Rows []ReadPathRow
	// BalanceCacheHitInstr is the metered cost of a get_balance served from
	// the overlay's coherent per-address cache.
	BalanceCacheHitInstr uint64
	// DeltaBuildShare is the fraction of overlay ingestion instructions
	// spent building per-block deltas (the one-time cost that amortizes the
	// per-request scans away).
	DeltaBuildShare float64
}

// BalanceSpeedupAtFullDepth returns the oracle/overlay instruction ratio
// for get_balance at the deepest point (minConfirmations = 1).
func (r *ReadPathResult) BalanceSpeedupAtFullDepth() float64 {
	row := r.Rows[0]
	return float64(row.BalanceOracle) / float64(row.BalanceOverlay)
}

// UTXOsWallSpeedupAtFullDepth returns the oracle/overlay wall-clock ratio
// for get_utxos at the deepest point.
func (r *ReadPathResult) UTXOsWallSpeedupAtFullDepth() float64 {
	row := r.Rows[0]
	return float64(row.UTXOsOracleNs) / float64(row.UTXOsOverlayNs)
}

// OverlayDepthScaling returns overlay get_balance cost at full depth over
// its cost at depth 1 — near 1.0 means the δ-linear term is gone.
func (r *ReadPathResult) OverlayDepthScaling() float64 {
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	return float64(first.BalanceOverlay) / float64(last.BalanceOverlay)
}

// OracleDepthScaling is the same ratio for the replay oracle — the paper's
// linear-in-δ behavior.
func (r *ReadPathResult) OracleDepthScaling() float64 {
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	return float64(first.BalanceOracle) / float64(last.BalanceOracle)
}

// RunReadPath executes the scenario.
func RunReadPath(cfg ReadPathConfig) (*ReadPathResult, error) {
	params := btc.ParamsForNetwork(btc.Regtest)
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Skewed population: address i is picked with weight ~ 1/(i+1).
	type popEntry struct {
		address string
		script  []byte
	}
	pop := make([]popEntry, cfg.Addresses)
	for i := range pop {
		var h [20]byte
		rng.Read(h[:])
		a := btc.NewP2PKHAddress(h, btc.Regtest)
		pop[i] = popEntry{address: a.String(), script: btc.PayToAddrScript(a)}
	}
	pick := func() popEntry {
		// Harmonic-ish skew: repeatedly halve the candidate range.
		n := cfg.Addresses
		for n > 1 && rng.Intn(2) == 0 {
			n = (n + 1) / 2
		}
		return pop[rng.Intn(n)]
	}

	mkCan := func(rp canister.ReadPath) *canister.BitcoinCanister {
		c := canister.DefaultConfig(btc.Regtest)
		c.StabilityThreshold = cfg.Delta
		c.ReadPath = rp
		return canister.New(c)
	}
	overlay := mkCan(canister.ReadPathOverlay)
	oracle := mkCan(canister.ReadPathReplay)

	// Feed identical blocks to both canisters, metering ingestion so the
	// delta-build overhead can be reported.
	builder := NewBlockBuilder(params, cfg.Seed)
	now := time.Unix(1_700_000_000, 0).UTC()
	overlayIngest := ic.NewMeter()
	feed := func(specs []TxSpec) error {
		block, err := builder.NextBlock(specs)
		if err != nil {
			return err
		}
		now = now.Add(time.Minute)
		payload := adapter.Response{Blocks: []adapter.BlockWithHeader{{Block: block, Header: block.Header}}}
		if err := overlay.ProcessPayload(&ic.CallContext{Meter: overlayIngest, Time: now, Kind: ic.KindUpdate}, payload); err != nil {
			return err
		}
		return oracle.ProcessPayload(&ic.CallContext{Meter: ic.NewMeter(), Time: now, Kind: ic.KindUpdate}, payload)
	}

	blockSpecs := func() []TxSpec {
		specs := make([]TxSpec, 0, cfg.TxPerBlock)
		for t := 0; t < cfg.TxPerBlock; t++ {
			e := pick()
			specs = append(specs, TxSpec{
				Inputs:  rng.Intn(2),
				Outputs: PayN(e.script, 1+rng.Intn(2), 546+int64(rng.Intn(5000))),
			})
		}
		return specs
	}

	// Funding prefix (ends up below the anchor), then enough blocks on top
	// that the anchor trails the tip by δ−1, the deepest unstable chain the
	// δ-stability rule sustains with equal-work blocks.
	for i := 0; i < cfg.StableBlocks; i++ {
		var specs []TxSpec
		for _, e := range pop {
			specs = append(specs, TxSpec{Outputs: PayN(e.script, 1, 546)})
		}
		if err := feed(specs); err != nil {
			return nil, err
		}
	}
	for i := int64(0); i < cfg.Delta; i++ {
		if err := feed(blockSpecs()); err != nil {
			return nil, err
		}
	}
	if got := overlay.TipHeight() - overlay.AnchorHeight(); got != cfg.Delta-1 {
		return nil, fmt.Errorf("experiments: unstable depth %d, want δ-1=%d", got, cfg.Delta-1)
	}

	res := &ReadPathResult{
		DeltaBuildShare: float64(overlayIngest.Category("build_delta")) / float64(overlayIngest.Total()),
	}

	// Depth sweep via the confirmations filter: at the tip, minConf = c
	// restricts the considered chain to δ − c unstable blocks.
	// Sample without replacement: a repeated (address, minConf) pair would
	// land in the overlay's balance cache and no longer measure the merge.
	perm := rng.Perm(len(pop))
	n := cfg.SampleAddresses
	if n > len(pop) {
		n = len(pop)
	}
	sample := make([]popEntry, n)
	for i := range sample {
		sample[i] = pop[perm[i]]
	}
	sweep := []int64{1, cfg.Delta / 4, cfg.Delta / 2, 3 * cfg.Delta / 4, cfg.Delta}
	for _, minConf := range sweep {
		row := ReadPathRow{MinConfirmations: minConf, Depth: cfg.Delta - minConf}
		for _, e := range sample {
			balArgs := canister.GetBalanceArgs{Address: e.address, MinConfirmations: minConf}
			utxoArgs := canister.GetUTXOsArgs{Address: e.address, MinConfirmations: minConf}

			m := ic.NewMeter()
			start := time.Now()
			if _, err := oracle.GetBalance(&ic.CallContext{Meter: m, Time: now, Kind: ic.KindQuery}, balArgs); err != nil {
				return nil, err
			}
			row.BalanceOracleNs += time.Since(start)
			row.BalanceOracle += m.Total()

			m = ic.NewMeter()
			start = time.Now()
			if _, err := overlay.GetBalance(&ic.CallContext{Meter: m, Time: now, Kind: ic.KindQuery}, balArgs); err != nil {
				return nil, err
			}
			row.BalanceOverlayNs += time.Since(start)
			row.BalanceOverlay += m.Total()

			m = ic.NewMeter()
			start = time.Now()
			if _, err := oracle.GetUTXOs(&ic.CallContext{Meter: m, Time: now, Kind: ic.KindQuery}, utxoArgs); err != nil {
				return nil, err
			}
			row.UTXOsOracleNs += time.Since(start)
			row.UTXOsOracle += m.Total()

			m = ic.NewMeter()
			start = time.Now()
			if _, err := overlay.GetUTXOs(&ic.CallContext{Meter: m, Time: now, Kind: ic.KindQuery}, utxoArgs); err != nil {
				return nil, err
			}
			row.UTXOsOverlayNs += time.Since(start)
			row.UTXOsOverlay += m.Total()
		}
		n := uint64(len(sample))
		row.BalanceOracle /= n
		row.BalanceOverlay /= n
		row.UTXOsOracle /= n
		row.UTXOsOverlay /= n
		d := time.Duration(len(sample))
		row.BalanceOracleNs /= d
		row.BalanceOverlayNs /= d
		row.UTXOsOracleNs /= d
		row.UTXOsOverlayNs /= d
		res.Rows = append(res.Rows, row)
	}

	// The first depth-1 repeat query lands in the overlay's balance cache.
	hit := ic.NewMeter()
	if _, err := overlay.GetBalance(&ic.CallContext{Meter: hit, Time: now, Kind: ic.KindQuery},
		canister.GetBalanceArgs{Address: sample[0].address, MinConfirmations: 1}); err != nil {
		return nil, err
	}
	res.BalanceCacheHitInstr = hit.Total()
	return res, nil
}

// Print renders the depth sweep.
func (r *ReadPathResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Read path: instructions [M] and wall time per request vs unstable depth")
	fmt.Fprintf(w, "%-6s %-6s | %10s %10s %7s | %10s %10s %7s\n",
		"c", "depth", "bal-oracle", "bal-ovl", "x", "utxo-oracle", "utxo-ovl", "x")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-6d %-6d | %10.2f %10.2f %6.1fx | %10.2f %10.2f %6.1fx\n",
			row.MinConfirmations, row.Depth,
			float64(row.BalanceOracle)/1e6, float64(row.BalanceOverlay)/1e6,
			float64(row.BalanceOracle)/float64(row.BalanceOverlay),
			float64(row.UTXOsOracle)/1e6, float64(row.UTXOsOverlay)/1e6,
			float64(row.UTXOsOracle)/float64(row.UTXOsOverlay))
	}
	fmt.Fprintf(w, "%-6s %-6s | %10s %10s %7s | %10s %10s %7s\n", "", "", "wall[µs]:", "", "", "", "", "")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-6d %-6d | %10.1f %10.1f %6.1fx | %10.1f %10.1f %6.1fx\n",
			row.MinConfirmations, row.Depth,
			float64(row.BalanceOracleNs.Microseconds()), float64(row.BalanceOverlayNs.Microseconds()),
			float64(row.BalanceOracleNs)/float64(row.BalanceOverlayNs),
			float64(row.UTXOsOracleNs.Microseconds()), float64(row.UTXOsOverlayNs.Microseconds()),
			float64(row.UTXOsOracleNs)/float64(row.UTXOsOverlayNs))
	}
	fmt.Fprintf(w, "balance cache hit: %.2f M instructions\n", float64(r.BalanceCacheHitInstr)/1e6)
	fmt.Fprintf(w, "delta build share of overlay ingestion: %.1f%%\n", r.DeltaBuildShare*100)
}
