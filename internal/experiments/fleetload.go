package experiments

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"time"

	"icbtc/internal/btc"
	"icbtc/internal/canister"
	"icbtc/internal/obs"
	"icbtc/internal/queryfleet"
)

// Fleet load: the internet-scale serving experiment. An open-loop traffic
// generator — arrivals fire on a precomputed schedule whether or not earlier
// requests finished, the way real traffic does — drives a Zipf-popular
// address population (a few hot addresses draw most requests), periodic
// burst windows (BurstLen arrivals compressed to one instant), and a
// slow-client lane (full-page scans, the most expensive request the API
// serves) against the query fleet. Periodic tip moves invalidate the hot
// cache mid-run, so the measured hit rate includes refill transients.
//
// The same schedule runs twice at an equal replica count: once against the
// bare fleet (no coalescing, no cache, no admission — every request pays
// full modeled execution) and once against the full serving stack. The
// result reports completed QPS, latency percentiles from *scheduled
// arrival* (queueing delay counts, as an open-loop client experiences it)
// against an SLO, cache-hit/coalesce rates, and the aggregate speedup.

// FleetLoadConfig parameterizes the load experiment.
type FleetLoadConfig struct {
	Seed     int64
	Replicas int
	// Requests is the schedule length; OfferedQPS its open-loop arrival
	// rate. Offered load should exceed the bare fleet's modeled capacity —
	// the point of the experiment is what the serving layers do under
	// overload the replicas alone cannot absorb.
	Requests   int
	OfferedQPS float64
	// Addresses is the query population size; ZipfS its skew exponent
	// (s > 1; higher concentrates more traffic on fewer addresses).
	Addresses int
	ZipfS     float64
	// Blocks is the preloaded chain length.
	Blocks int
	// ExecRate is the modeled replica execution speed (instructions/s).
	ExecRate float64
	// PageLimit caps normal get_utxos pages; SlowEvery makes every Nth
	// request a slow-client full page of SlowLimit UTXOs.
	PageLimit, SlowEvery, SlowLimit int
	// BurstEvery compresses every Nth arrival and the BurstLen-1 after it
	// onto one instant.
	BurstEvery, BurstLen int
	// TipMoveEvery is the wall-clock interval between authoritative blocks
	// fed mid-measurement (each invalidates the hot cache).
	TipMoveEvery time.Duration
	// CacheEntries and Budgets configure the layered pass; the baseline
	// pass ignores them.
	CacheEntries int
	Budgets      map[canister.CostClass]queryfleet.Budget
	// SLO is the latency target the percentiles are reported against.
	SLO time.Duration
	// TraceEvents enables the fleet registry's event tracer for each pass;
	// the recorded events land in FleetLoadPass.TraceText (bench -obstrace).
	TraceEvents bool
}

// DefaultFleetLoadConfig returns the reference load: offered traffic ~5-6x
// the bare fleet's modeled capacity, Zipf-concentrated on a hot set the
// cache can hold.
func DefaultFleetLoadConfig() FleetLoadConfig {
	return FleetLoadConfig{
		Seed:         7,
		Replicas:     4,
		Requests:     1800,
		OfferedQPS:   600,
		Addresses:    64,
		ZipfS:        1.5,
		Blocks:       30,
		ExecRate:     2e8,
		PageLimit:    10,
		SlowEvery:    50,
		SlowLimit:    100,
		BurstEvery:   150,
		BurstLen:     25,
		TipMoveEvery: 700 * time.Millisecond,
		CacheEntries: 512,
		Budgets: map[canister.CostClass]queryfleet.Budget{
			canister.CostScan: {Rate: 45, Burst: 15},
		},
		SLO: 300 * time.Millisecond,
	}
}

// loadReq is one scheduled arrival.
type loadReq struct {
	at     time.Duration
	method string
	addr   int // population index; -1 for argless methods
	limit  int
}

// FleetLoadPass is one measured pass over the schedule.
type FleetLoadPass struct {
	Name           string
	Requests       int
	OK             int
	Shed           int
	Elapsed        time.Duration // schedule start to last completion
	QPS            float64       // OK / Elapsed
	P50, P99, P999 time.Duration
	CacheHits      uint64
	Coalesced      uint64
	TipMoves       int
	// Obs is the fleet's metrics snapshot at the end of the pass — the full
	// registry view (cache misses/fills, per-class sheds, apply lag) behind
	// the headline columns above.
	Obs *obs.Snapshot
	// TraceText is the pass's recorded event trace (one event per line),
	// empty unless FleetLoadConfig.TraceEvents was set.
	TraceText string
}

// FleetLoadResult is the completed two-pass comparison.
type FleetLoadResult struct {
	OfferedQPS float64
	Replicas   int
	SLO        time.Duration
	Baseline   FleetLoadPass
	Layered    FleetLoadPass
	// Speedup is the layered pass's completed QPS over the baseline's at
	// the equal replica count.
	Speedup float64
}

// RunFleetLoad executes the open-loop schedule against the bare fleet and
// the full serving stack and returns the comparison.
func RunFleetLoad(cfg FleetLoadConfig) (*FleetLoadResult, error) {
	sched := buildFleetLoadSchedule(cfg)
	base, err := runFleetLoadPass(cfg, "baseline", false, sched)
	if err != nil {
		return nil, err
	}
	layered, err := runFleetLoadPass(cfg, "layered", true, sched)
	if err != nil {
		return nil, err
	}
	res := &FleetLoadResult{
		OfferedQPS: cfg.OfferedQPS,
		Replicas:   cfg.Replicas,
		SLO:        cfg.SLO,
		Baseline:   base,
		Layered:    layered,
	}
	if base.QPS > 0 {
		res.Speedup = layered.QPS / base.QPS
	}
	return res, nil
}

// buildFleetLoadSchedule precomputes the arrival sequence: Zipf addresses,
// a 60/30/10 scan/balance/fees mix, every SlowEvery-th request a full-page
// slow-client scan, and every BurstEvery-th arrival opening a BurstLen
// window compressed onto one instant.
func buildFleetLoadSchedule(cfg FleetLoadConfig) []loadReq {
	rng := rand.New(rand.NewSource(cfg.Seed * 31))
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Addresses-1))
	interval := time.Duration(float64(time.Second) / cfg.OfferedQPS)
	sched := make([]loadReq, 0, cfg.Requests)
	var cursor time.Duration
	burstLeft := 0
	for i := 0; i < cfg.Requests; i++ {
		if cfg.BurstEvery > 0 && i > 0 && i%cfg.BurstEvery == 0 {
			burstLeft = cfg.BurstLen
		}
		if burstLeft > 0 {
			burstLeft-- // arrivals pile onto the current cursor instant
		} else {
			cursor += interval
		}
		r := loadReq{at: cursor, addr: int(zipf.Uint64())}
		switch {
		case cfg.SlowEvery > 0 && i%cfg.SlowEvery == cfg.SlowEvery-1:
			r.method, r.limit = "get_utxos", cfg.SlowLimit
		case rng.Intn(10) < 6:
			r.method, r.limit = "get_utxos", cfg.PageLimit
		case rng.Intn(10) < 9:
			r.method = "get_balance"
		default:
			r.method, r.addr = "get_current_fee_percentiles", -1
		}
		sched = append(sched, r)
	}
	return sched
}

// runFleetLoadPass builds a fresh canister + fleet (identical state both
// passes: same seed, same blocks) and fires the schedule.
func runFleetLoadPass(cfg FleetLoadConfig, name string, layered bool, sched []loadReq) (FleetLoadPass, error) {
	feeder := NewFeeder(btc.Regtest, 6, cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed))
	addrs := make([]string, cfg.Addresses)
	scripts := make([][]byte, cfg.Addresses)
	for i := range addrs {
		var h [20]byte
		rng.Read(h[:])
		a := btc.NewP2PKHAddress(h, btc.Regtest)
		addrs[i], scripts[i] = a.String(), btc.PayToAddrScript(a)
	}
	for b := 0; b < cfg.Blocks; b++ {
		var specs []TxSpec
		for i := range addrs {
			specs = append(specs, TxSpec{Outputs: PayN(scripts[i], 4, 600+int64(rng.Intn(3000)))})
		}
		if _, err := feeder.FeedBlock(specs); err != nil {
			return FleetLoadPass{}, err
		}
	}
	auth := feeder.Canister

	qcfg := queryfleet.Config{
		Replicas:         cfg.Replicas,
		MaxLagBlocks:     -1, // replicas serve through tip moves; no forwarding
		QueryConcurrency: 1,  // IC canisters execute queries sequentially
		ExecRate:         cfg.ExecRate,
	}
	if layered {
		qcfg.Coalesce = true
		qcfg.CacheEntries = cfg.CacheEntries
		qcfg.Budgets = cfg.Budgets
	}
	fleet, err := queryfleet.New(auth, qcfg)
	if err != nil {
		return FleetLoadPass{}, err
	}
	defer fleet.Close()
	auth.SetStreamSink(fleet.Feed)
	if cfg.TraceEvents {
		fleet.Metrics().Tracer().SetEnabled(true)
	}

	// Tip mover: feed one paying block every TipMoveEvery until the
	// schedule drains; each published frame invalidates the hot cache.
	var (
		moveMu   sync.Mutex
		tipMoves int
		stop     = make(chan struct{})
		moverWG  sync.WaitGroup
	)
	if cfg.TipMoveEvery > 0 {
		moverWG.Add(1)
		go func() {
			defer moverWG.Done()
			tick := time.NewTicker(cfg.TipMoveEvery)
			defer tick.Stop()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				moveMu.Lock()
				_, ferr := feeder.FeedBlock([]TxSpec{{Outputs: PayN(scripts[i%len(scripts)], 2, 700)}})
				if ferr == nil {
					ferr = fleet.CatchUpAll()
				}
				if ferr == nil {
					tipMoves++
				}
				moveMu.Unlock()
			}
		}()
	}

	lats := make([]time.Duration, len(sched))
	okFlags := make([]bool, len(sched))
	shedFlags := make([]bool, len(sched))
	var (
		errMu    sync.Mutex
		firstErr error
	)
	start := time.Now()
	var wg sync.WaitGroup
	for i := range sched {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := sched[i]
			target := start.Add(req.at)
			if d := time.Until(target); d > 0 {
				time.Sleep(d)
			}
			var arg any
			switch req.method {
			case "get_utxos":
				arg = canister.GetUTXOsArgs{Address: addrs[req.addr], Limit: req.limit}
			case "get_balance":
				arg = canister.GetBalanceArgs{Address: addrs[req.addr]}
			}
			rq := fleet.RouteQuery(req.method, arg, "loadgen", time.Now())
			// Open-loop latency: measured from the scheduled arrival, so
			// queueing behind saturated replicas counts in full.
			lats[i] = time.Since(target)
			switch {
			case rq.Err == nil:
				okFlags[i] = true
			case errors.Is(rq.Err, queryfleet.ErrBusy):
				shedFlags[i] = true
			default:
				errMu.Lock()
				if firstErr == nil {
					firstErr = rq.Err
				}
				errMu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	moverWG.Wait()
	if firstErr != nil {
		return FleetLoadPass{}, fmt.Errorf("experiments: fleetload %s pass: %w", name, firstErr)
	}

	pass := FleetLoadPass{Name: name, Requests: len(sched), Elapsed: elapsed}
	var okLats []time.Duration
	for i := range sched {
		switch {
		case okFlags[i]:
			pass.OK++
			okLats = append(okLats, lats[i])
		case shedFlags[i]:
			pass.Shed++
		}
	}
	if pass.OK == 0 {
		return FleetLoadPass{}, fmt.Errorf("experiments: fleetload %s pass completed zero requests", name)
	}
	ls := obs.SummarizeDurations(okLats)
	pass.QPS = float64(pass.OK) / elapsed.Seconds()
	pass.P50, pass.P99, pass.P999 = ls.P50, ls.P99, ls.P999
	pass.Obs = fleet.Metrics().Snapshot()
	if cfg.TraceEvents {
		var tb strings.Builder
		if err := fleet.Metrics().Tracer().WriteText(&tb); err == nil {
			pass.TraceText = tb.String()
		}
	}
	st := fleet.Stats()
	pass.CacheHits = st.CacheHits
	pass.Coalesced = st.Coalesced
	moveMu.Lock()
	pass.TipMoves = tipMoves
	moveMu.Unlock()
	return pass, nil
}

// Print renders the comparison.
func (r *FleetLoadResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Fleet load: open-loop Zipf workload, %d requests offered at %.0f QPS, %d replicas, SLO %v\n",
		r.Baseline.Requests, r.OfferedQPS, r.Replicas, r.SLO)
	fmt.Fprintf(w, "%-9s %6s %6s %9s %9s %10s %10s %10s %10s %10s\n",
		"pass", "ok", "shed", "elapsed", "QPS", "p50", "p99", "p99.9", "cache-hit", "coalesced")
	for _, p := range []FleetLoadPass{r.Baseline, r.Layered} {
		fmt.Fprintf(w, "%-9s %6d %6d %9s %9.0f %10v %10v %10v %9.1f%% %10d\n",
			p.Name, p.OK, p.Shed, p.Elapsed.Round(10*time.Millisecond), p.QPS,
			p.P50.Round(time.Millisecond), p.P99.Round(time.Millisecond), p.P999.Round(time.Millisecond),
			100*float64(p.CacheHits)/float64(p.Requests), p.Coalesced)
	}
	slo := "within"
	if r.Layered.P99 > r.SLO {
		slo = "OVER"
	}
	fmt.Fprintf(w, "aggregate QPS speedup at equal replicas: %.1fx; layered p99 %s the %v SLO (%d tip-move invalidations)\n",
		r.Speedup, slo, r.SLO, r.Layered.TipMoves)
}
