package experiments

import (
	"fmt"
	"io"
	"time"

	"icbtc/internal/canister"
	"icbtc/internal/ic"
	"icbtc/internal/obs"
	"icbtc/internal/simnet"
)

// LatencyResult reproduces the in-text latency distribution of §IV-B:
//
//	"On average, replicated requests take below 10s to be answered, with
//	 the minimum around 7s and a 90th percentile of 18s. For queries ...
//	 the median time to get a balance or UTXOs is about 220ms and 310ms,
//	 and 90% of the response times are below 0.5s and 2.5s."
type LatencyResult struct {
	ReplicatedMin, ReplicatedAvg, ReplicatedP90       time.Duration
	QueryBalanceMedian, QueryBalanceP90               time.Duration
	QueryUTXOsMedian, QueryUTXOsP90                   time.Duration
	ReplicatedSamples, QueryBalanceN, QueryUTXOsCount int
}

// LatencyConfig parameterizes the measurement.
type LatencyConfig struct {
	// Scale divides the address population (see Fig7Config.Scale).
	Scale int
	Seed  int64
}

// DefaultLatencyConfig returns the laptop-scale run.
func DefaultLatencyConfig() LatencyConfig { return LatencyConfig{Scale: 10, Seed: 11} }

// RunLatency loads the Fig 7 population and measures the latency
// distribution of replicated and query requests under the default
// (mainnet-flavored) subnet configuration.
func RunLatency(cfg LatencyConfig) (*LatencyResult, error) {
	f, pop, _, err := loadPopulation(Fig7Config{Scale: cfg.Scale, UnstableFraction: 0.3, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	sched := simnet.NewScheduler(cfg.Seed)
	subCfg := ic.DefaultConfig()
	subCfg.DisableThresholdKeys = true
	subCfg.Seed = cfg.Seed
	subnet, err := ic.NewSubnet(sched, subCfg)
	if err != nil {
		return nil, err
	}
	subnet.InstallCanister("bitcoin", f.Canister)
	subnet.Start()

	var replicated, qBalance, qUTXOs []time.Duration
	done := 0
	// Spread submissions over time like real traffic (requests arriving in
	// a burst would all wait for the same blocks and bias the tail).
	for i, a := range pop.Addresses {
		a := a
		delay := time.Duration(i) * 800 * time.Millisecond
		sched.After(delay, func() {
			subnet.SubmitUpdate("bitcoin", "get_balance", canister.GetBalanceArgs{Address: a.Address}, "bench", func(r ic.Result) {
				replicated = append(replicated, r.Latency)
				done++
			})
			subnet.SubmitUpdate("bitcoin", "get_utxos", canister.GetUTXOsArgs{Address: a.Address}, "bench", func(r ic.Result) {
				replicated = append(replicated, r.Latency)
				done++
			})
			subnet.Query("bitcoin", "get_balance", canister.GetBalanceArgs{Address: a.Address}, "bench", func(r ic.Result) {
				qBalance = append(qBalance, r.Latency)
				done++
			})
			subnet.Query("bitcoin", "get_utxos", canister.GetUTXOsArgs{Address: a.Address}, "bench", func(r ic.Result) {
				qUTXOs = append(qUTXOs, r.Latency)
				done++
			})
		})
	}
	want := len(pop.Addresses) * 4
	budget := sched.Now().Add(6 * time.Hour)
	for done < want && sched.Now().Before(budget) {
		sched.RunFor(5 * time.Second)
	}
	if done < want {
		return nil, fmt.Errorf("experiments: latency run timed out with %d/%d", done, want)
	}

	res := &LatencyResult{
		ReplicatedSamples: len(replicated),
		QueryBalanceN:     len(qBalance),
		QueryUTXOsCount:   len(qUTXOs),
	}
	rs := obs.SummarizeDurations(replicated)
	res.ReplicatedMin, res.ReplicatedAvg, res.ReplicatedP90 = rs.Min, rs.Mean, rs.P90
	bs := obs.SummarizeDurations(qBalance)
	res.QueryBalanceMedian, res.QueryBalanceP90 = bs.P50, bs.P90
	us := obs.SummarizeDurations(qUTXOs)
	res.QueryUTXOsMedian, res.QueryUTXOsP90 = us.P50, us.P90
	return res, nil
}

// Print renders the distribution next to the paper's numbers.
func (r *LatencyResult) Print(w io.Writer) {
	fmt.Fprintln(w, "In-text latency distribution (§IV-B)")
	fmt.Fprintf(w, "%-34s %10s %10s\n", "metric", "measured", "paper")
	fmt.Fprintf(w, "%-34s %9.1fs %10s\n", "replicated min", r.ReplicatedMin.Seconds(), "~7s")
	fmt.Fprintf(w, "%-34s %9.1fs %10s\n", "replicated avg", r.ReplicatedAvg.Seconds(), "<10s")
	fmt.Fprintf(w, "%-34s %9.1fs %10s\n", "replicated p90", r.ReplicatedP90.Seconds(), "~18s")
	fmt.Fprintf(w, "%-34s %8.0fms %10s\n", "query get_balance median", float64(r.QueryBalanceMedian.Milliseconds()), "~220ms")
	fmt.Fprintf(w, "%-34s %8.0fms %10s\n", "query get_balance p90", float64(r.QueryBalanceP90.Milliseconds()), "<500ms")
	fmt.Fprintf(w, "%-34s %8.0fms %10s\n", "query get_utxos median", float64(r.QueryUTXOsMedian.Milliseconds()), "~310ms")
	fmt.Fprintf(w, "%-34s %8.1fs %10s\n", "query get_utxos p90", r.QueryUTXOsP90.Seconds(), "<2.5s")
}
