package experiments

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"time"

	"icbtc/internal/adapter"
	"icbtc/internal/btc"
	"icbtc/internal/canister"
	"icbtc/internal/ic"
	"icbtc/internal/ingest"
)

// Ingest scenario: block-ingest throughput, serial versus the parallel
// deterministic pipeline. The serial leg is the per-block ProcessPayload
// loop the repo has always run (ParseBlock from wire, then Algorithm 2);
// the pipelined legs run the identical batch through SyncWire at 1/2/4/8
// workers — wire decode, txid/Merkle double-hashing, script-ID derivation,
// and delta prebuild on the workers, application strictly sequential. The
// scenario asserts the resulting canister snapshots are byte-identical
// across every leg before reporting any number, then measures fast-sync
// hydration (snapshot restore) serial versus sharded at the same worker
// counts.

// IngestConfig parameterizes the scenario.
type IngestConfig struct {
	Seed int64
	// Blocks, TxsPerBlock, OutputsPerTx, SpendEvery, Addresses shape the
	// history exactly as the snapshot scenario does (realistic blocks:
	// many small transactions).
	Blocks       int
	TxsPerBlock  int
	OutputsPerTx int
	SpendEvery   int
	Addresses    int
	// Delta is δ; all but the last δ−1 blocks fold into the stable set.
	Delta int64
	// Workers lists the pipeline worker counts to measure.
	Workers []int
	// Rounds is the best-of-N repetition count per leg.
	Rounds int
}

// DefaultIngestConfig mirrors the snapshot scenario's mainnet-shaped
// blocks: ~500 transactions of ~2 outputs each.
func DefaultIngestConfig() IngestConfig {
	return IngestConfig{
		Seed:         7,
		Blocks:       125,
		TxsPerBlock:  500,
		OutputsPerTx: 2,
		SpendEvery:   6,
		Addresses:    64,
		Delta:        6,
		Workers:      []int{1, 2, 4, 8},
		Rounds:       3,
	}
}

// IngestRow is one measured leg.
type IngestRow struct {
	// Workers is 0 for the serial ProcessPayload loop, else the pipeline
	// worker count.
	Workers   int
	Time      time.Duration
	BlocksSec float64
	// Speedup is serial time / this leg's time.
	Speedup float64
}

// IngestResult carries the measurements.
type IngestResult struct {
	Blocks       int
	Transactions int
	StableUTXOs  int
	WireBytes    int

	Rows []IngestRow

	// Hydration legs: snapshot restore, serial vs sharded.
	SnapshotBytes int
	HydrateSerial time.Duration
	HydrateRows   []IngestRow

	// Identical reports that every pipelined leg's final snapshot was
	// byte-identical to the serial leg's.
	Identical bool
}

// RunIngest executes the scenario.
func RunIngest(cfg IngestConfig) (*IngestResult, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	scripts := make([][]byte, cfg.Addresses)
	for i := range scripts {
		var h [20]byte
		rng.Read(h[:])
		scripts[i] = btc.PayToAddrScript(btc.NewP2PKHAddress(h, btc.Regtest))
	}

	builder := NewBlockBuilder(btc.RegtestParams(), cfg.Seed)
	wire := make([][]byte, 0, cfg.Blocks)
	txs := 0
	wireBytes := 0
	for i := 0; i < cfg.Blocks; i++ {
		specs := make([]TxSpec, 0, cfg.TxsPerBlock)
		for t := 0; t < cfg.TxsPerBlock; t++ {
			spec := TxSpec{Outputs: PayN(scripts[rng.Intn(len(scripts))], cfg.OutputsPerTx, 546+int64(t%9))}
			if cfg.SpendEvery > 0 && t%cfg.SpendEvery == cfg.SpendEvery-1 {
				spec.Inputs = 1
			}
			specs = append(specs, spec)
		}
		block, err := builder.NextBlock(specs)
		if err != nil {
			return nil, err
		}
		raw := block.Bytes()
		wire = append(wire, raw)
		wireBytes += len(raw)
		txs += len(block.Transactions)
	}

	mkCfg := canister.DefaultConfig(btc.Regtest)
	mkCfg.StabilityThreshold = cfg.Delta

	// Serial leg: the per-block parse + ProcessPayload loop.
	feedSerial := func() (*canister.BitcoinCanister, error) {
		c := canister.New(mkCfg)
		now := time.Unix(1_700_000_000, 0).UTC()
		for i := range wire {
			block, err := btc.ParseBlock(wire[i])
			if err != nil {
				return nil, err
			}
			now = now.Add(time.Second)
			payload := adapter.Response{Blocks: []adapter.BlockWithHeader{{Block: block, Header: block.Header}}}
			if err := c.ProcessPayload(ic.NewCallContext(ic.KindUpdate, now), payload); err != nil {
				return nil, err
			}
		}
		return c, nil
	}
	feedPipelined := func(workers int) (*canister.BitcoinCanister, error) {
		c := canister.New(mkCfg)
		now := time.Unix(1_700_000_000, 0).UTC()
		_, err := c.SyncWire(ic.NewCallContext(ic.KindUpdate, now), wire, ingest.Config{Workers: workers})
		return c, err
	}

	rounds := cfg.Rounds
	if rounds < 1 {
		rounds = 1
	}
	best := func(feed func() (*canister.BitcoinCanister, error)) (*canister.BitcoinCanister, time.Duration, error) {
		var min time.Duration
		var last *canister.BitcoinCanister
		for i := 0; i < rounds; i++ {
			start := time.Now()
			c, err := feed()
			if err != nil {
				return nil, 0, err
			}
			if d := time.Since(start); i == 0 || d < min {
				min = d
			}
			last = c
		}
		return last, min, nil
	}

	res := &IngestResult{Blocks: cfg.Blocks, Transactions: txs, WireBytes: wireBytes, Identical: true}

	serialCan, serialTime, err := best(feedSerial)
	if err != nil {
		return nil, err
	}
	res.StableUTXOs = serialCan.StableUTXOCount()
	res.Rows = append(res.Rows, IngestRow{
		Workers: 0, Time: serialTime,
		BlocksSec: float64(cfg.Blocks) / serialTime.Seconds(), Speedup: 1,
	})
	want, err := serialCan.Snapshot()
	if err != nil {
		return nil, err
	}

	for _, w := range cfg.Workers {
		c, t, err := best(func() (*canister.BitcoinCanister, error) { return feedPipelined(w) })
		if err != nil {
			return nil, err
		}
		snap, err := c.Snapshot()
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(snap, want) {
			res.Identical = false
			return res, fmt.Errorf("experiments: pipelined ingest at %d workers diverged from the serial path", w)
		}
		res.Rows = append(res.Rows, IngestRow{
			Workers: w, Time: t,
			BlocksSec: float64(cfg.Blocks) / t.Seconds(),
			Speedup:   float64(serialTime) / float64(t),
		})
	}

	// Fast-sync hydration: serial restore vs sharded restore.
	res.SnapshotBytes = len(want)
	timeOp := func(op func() error) (time.Duration, error) {
		var min time.Duration
		for i := 0; i < rounds+2; i++ {
			start := time.Now()
			if err := op(); err != nil {
				return 0, err
			}
			if d := time.Since(start); i == 0 || d < min {
				min = d
			}
		}
		return min, nil
	}
	if res.HydrateSerial, err = timeOp(func() error {
		_, err := canister.RestoreSnapshot(want)
		return err
	}); err != nil {
		return nil, err
	}
	for _, w := range cfg.Workers {
		var restored *canister.BitcoinCanister
		t, err := timeOp(func() error {
			var err error
			restored, err = canister.RestoreSnapshotParallel(want, ingest.Config{Workers: w})
			return err
		})
		if err != nil {
			return nil, err
		}
		again, err := restored.Snapshot()
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(again, want) {
			res.Identical = false
			return res, fmt.Errorf("experiments: sharded restore at %d workers diverged", w)
		}
		res.HydrateRows = append(res.HydrateRows, IngestRow{
			Workers: w, Time: t,
			Speedup: float64(res.HydrateSerial) / float64(t),
		})
	}
	return res, nil
}

// Print renders the measurements.
func (r *IngestResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Block ingest: serial vs deterministic parallel pipeline")
	fmt.Fprintf(w, "%-28s %12d\n", "blocks", r.Blocks)
	fmt.Fprintf(w, "%-28s %12d\n", "transactions", r.Transactions)
	fmt.Fprintf(w, "%-28s %12d\n", "stable UTXOs", r.StableUTXOs)
	fmt.Fprintf(w, "%-28s %12d\n", "wire bytes", r.WireBytes)
	fmt.Fprintf(w, "%-28s %12v\n", "byte-identical state", r.Identical)
	fmt.Fprintf(w, "%-12s %12s %12s %9s\n", "leg", "time", "blocks/s", "speedup")
	for _, row := range r.Rows {
		leg := "serial"
		if row.Workers > 0 {
			leg = fmt.Sprintf("%d workers", row.Workers)
		}
		fmt.Fprintf(w, "%-12s %12s %12.1f %8.2fx\n", leg, row.Time.Round(time.Microsecond), row.BlocksSec, row.Speedup)
	}
	fmt.Fprintf(w, "fast-sync hydration (snapshot %d bytes):\n", r.SnapshotBytes)
	fmt.Fprintf(w, "%-12s %12s %9s\n", "serial", r.HydrateSerial.Round(time.Microsecond), "1.00x")
	for _, row := range r.HydrateRows {
		fmt.Fprintf(w, "%-12s %12s %8.2fx\n", fmt.Sprintf("%d workers", row.Workers),
			row.Time.Round(time.Microsecond), row.Speedup)
	}
}
