package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"icbtc/internal/btc"
	"icbtc/internal/canister"
	"icbtc/internal/obs"
	"icbtc/internal/queryfleet"
)

// Query-fleet throughput: the paper serves queries on "a single randomly
// chosen replica" (§IV-B); the queryfleet subsystem horizontally scales
// that read path with snapshot-hydrated, delta-fed replicas. This
// experiment measures aggregate QPS and latency percentiles as the fleet
// grows from 1 to N replicas under a fixed offered load with a mixed
// hot/cold address workload.
//
// Replica execution is modeled, not host-parallel: each replica executes
// queries sequentially (as IC canister execution does) and holds its
// execution slot for the query's metered instruction count divided by
// Config.ExecRate — so the measured scaling reflects fleet capacity, not
// the benchmark machine's core count.

// QueryFleetConfig parameterizes the sweep.
type QueryFleetConfig struct {
	Seed int64
	// ReplicaCounts is the sweep of fleet sizes.
	ReplicaCounts []int
	// Clients is the fixed number of concurrent query clients (offered
	// load), identical across fleet sizes.
	Clients int
	// Window is the measurement window per fleet size.
	Window time.Duration
	// HotAddresses hold deep UTXO buckets and draw 80% of the traffic;
	// ColdAddresses hold a few UTXOs each and draw the rest.
	HotAddresses, ColdAddresses int
	// Blocks is the synthetic chain length the canister ingests.
	Blocks int
	// ExecRate is the modeled replica execution speed (instructions/s).
	ExecRate float64
	// PageLimit caps get_utxos pages in the workload.
	PageLimit int
}

// DefaultQueryFleetConfig returns the reference sweep: 1→8 replicas, 16
// clients, IC-flavored execution rate.
func DefaultQueryFleetConfig() QueryFleetConfig {
	return QueryFleetConfig{
		Seed:          7,
		ReplicaCounts: []int{1, 2, 4, 8},
		Clients:       16,
		Window:        1500 * time.Millisecond,
		HotAddresses:  16,
		ColdAddresses: 400,
		Blocks:        40,
		ExecRate:      2e9,
		PageLimit:     25,
	}
}

// QueryFleetRow is one fleet size's measurement.
type QueryFleetRow struct {
	Replicas int
	Queries  int
	QPS      float64
	Speedup  float64 // QPS vs the 1-replica row
	P50, P99 time.Duration
}

// QueryFleetResult is the completed sweep.
type QueryFleetResult struct {
	Rows          []QueryFleetRow
	Clients       int
	Window        time.Duration
	SnapshotBytes int
	// HydrateTime is the mean per-replica snapshot fast-sync time observed
	// while building the largest fleet.
	HydrateTime time.Duration
	StableUTXOs int
	TipHeight   int64
}

// RunQueryFleet builds a canister with a hot/cold address population and
// sweeps fleet sizes under constant offered load.
func RunQueryFleet(cfg QueryFleetConfig) (*QueryFleetResult, error) {
	feeder := NewFeeder(btc.Regtest, 6, cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed))

	hot := make([]string, cfg.HotAddresses)
	hotScripts := make([][]byte, cfg.HotAddresses)
	for i := range hot {
		var h [20]byte
		rng.Read(h[:])
		a := btc.NewP2PKHAddress(h, btc.Regtest)
		hot[i], hotScripts[i] = a.String(), btc.PayToAddrScript(a)
	}
	cold := make([]string, cfg.ColdAddresses)
	coldScripts := make([][]byte, cfg.ColdAddresses)
	for i := range cold {
		var h [20]byte
		rng.Read(h[:])
		a := btc.NewP2PKHAddress(h, btc.Regtest)
		cold[i], coldScripts[i] = a.String(), btc.PayToAddrScript(a)
	}

	// Every block pays every hot address (deep buckets) and a rotating
	// slice of cold addresses (shallow buckets), plus some spends so the
	// unstable suffix carries nontrivial deltas.
	coldAt := 0
	for b := 0; b < cfg.Blocks; b++ {
		var specs []TxSpec
		for i := range hot {
			specs = append(specs, TxSpec{Inputs: 0, Outputs: PayN(hotScripts[i], 8, 600+int64(rng.Intn(4000)))})
		}
		for k := 0; k < 10 && cfg.ColdAddresses > 0; k++ {
			i := coldAt % cfg.ColdAddresses
			coldAt++
			specs = append(specs, TxSpec{Inputs: 0, Outputs: PayN(coldScripts[i], 1+rng.Intn(2), 500+int64(rng.Intn(2000)))})
		}
		specs = append(specs, TxSpec{Inputs: 2, Outputs: PayN(hotScripts[rng.Intn(len(hot))], 2, 550)})
		if _, err := feeder.FeedBlock(specs); err != nil {
			return nil, err
		}
	}
	auth := feeder.Canister
	snap, err := auth.Snapshot()
	if err != nil {
		return nil, err
	}

	res := &QueryFleetResult{
		Clients:       cfg.Clients,
		Window:        cfg.Window,
		SnapshotBytes: len(snap),
		StableUTXOs:   auth.StableUTXOCount(),
		TipHeight:     auth.TipHeight(),
	}

	for _, n := range cfg.ReplicaCounts {
		hydrateStart := time.Now()
		fleet, err := queryfleet.New(auth, queryfleet.Config{
			Replicas:         n,
			MaxLagBlocks:     -1, // static state during measurement
			QueryConcurrency: 1,  // IC canisters execute queries sequentially
			ExecRate:         cfg.ExecRate,
		})
		if err != nil {
			return nil, err
		}
		if n == cfg.ReplicaCounts[len(cfg.ReplicaCounts)-1] {
			res.HydrateTime = time.Since(hydrateStart) / time.Duration(n)
		}

		row, err := measureFleet(fleet, cfg, hot, cold)
		fleet.Close()
		if err != nil {
			return nil, err
		}
		row.Replicas = n
		res.Rows = append(res.Rows, row)
	}
	for i := range res.Rows {
		res.Rows[i].Speedup = res.Rows[i].QPS / res.Rows[0].QPS
	}
	return res, nil
}

// measureFleet drives cfg.Clients concurrent clients against the fleet for
// the window and aggregates throughput and latency.
func measureFleet(fleet *queryfleet.Fleet, cfg QueryFleetConfig, hot, cold []string) (QueryFleetRow, error) {
	type clientResult struct {
		lat []time.Duration
		err error
	}
	results := make([]clientResult, cfg.Clients)
	start := time.Now()
	deadline := start.Add(cfg.Window)
	now := time.Unix(1_700_100_000, 0).UTC()

	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed*1000 + int64(c)))
			cr := &results[c]
			for time.Now().Before(deadline) {
				var addr string
				if rng.Intn(10) < 8 || len(cold) == 0 {
					addr = hot[rng.Intn(len(hot))]
				} else {
					addr = cold[rng.Intn(len(cold))]
				}
				var method string
				var arg any
				switch r := rng.Intn(20); {
				case r < 13:
					method, arg = "get_utxos", canister.GetUTXOsArgs{Address: addr, Limit: cfg.PageLimit}
				case r < 19:
					method, arg = "get_balance", canister.GetBalanceArgs{Address: addr}
				default:
					method, arg = "get_current_fee_percentiles", nil
				}
				t0 := time.Now()
				rq := fleet.RouteQuery(method, arg, "bench", now)
				if rq.Err != nil {
					cr.err = rq.Err
					return
				}
				cr.lat = append(cr.lat, time.Since(t0))
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for c := range results {
		if results[c].err != nil {
			return QueryFleetRow{}, results[c].err
		}
		all = append(all, results[c].lat...)
	}
	if len(all) == 0 {
		return QueryFleetRow{}, fmt.Errorf("experiments: queryfleet window completed zero queries")
	}
	ls := obs.SummarizeDurations(all)
	return QueryFleetRow{
		Queries: len(all),
		QPS:     float64(len(all)) / elapsed.Seconds(),
		P50:     ls.P50,
		P99:     ls.P99,
	}, nil
}

// Print renders the sweep.
func (r *QueryFleetResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Query fleet: %d clients over %v against snapshot-hydrated read replicas\n", r.Clients, r.Window)
	fmt.Fprintf(w, "state: %d stable UTXOs, tip height %d, snapshot %d KiB, fast-sync %v/replica\n",
		r.StableUTXOs, r.TipHeight, r.SnapshotBytes/1024, r.HydrateTime.Round(10*time.Microsecond))
	fmt.Fprintf(w, "%-9s %9s %10s %9s %12s %12s\n", "replicas", "queries", "QPS", "speedup", "p50", "p99")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-9d %9d %10.0f %8.2fx %12v %12v\n",
			row.Replicas, row.Queries, row.QPS, row.Speedup,
			row.P50.Round(10*time.Microsecond), row.P99.Round(10*time.Microsecond))
	}
}
