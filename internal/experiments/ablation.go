package experiments

import (
	"fmt"
	"io"
	"time"

	"icbtc/internal/adapter"
	"icbtc/internal/btc"
	"icbtc/internal/btcnode"
	"icbtc/internal/canister"
	"icbtc/internal/ic"
	"icbtc/internal/secp256k1"
	"icbtc/internal/simnet"

	"math/rand"
)

// Ablation benches for the design choices DESIGN.md calls out.

// --- δ sweep: request cost vs stability threshold (§III-C trade-off) ---

// DeltaRow is one δ sample.
type DeltaRow struct {
	Delta int64
	// GetUTXOsInstructions is the mean metered cost of get_utxos when the
	// unstable suffix has δ blocks to scan.
	GetUTXOsInstructions uint64
	// UnstableBlocks actually held above the anchor.
	UnstableBlocks int
}

// DeltaSweepResult quantifies "there is a trade-off between the
// computational complexity and security as a larger δ makes it less likely
// that blocks ... are affected by a block reorganization" (§III-C).
type DeltaSweepResult struct {
	Rows []DeltaRow
}

// RunDeltaSweep measures get_utxos cost across δ values with the same
// workload: the per-request cost grows with δ because every request scans
// the unstable suffix.
func RunDeltaSweep(seed int64) (*DeltaSweepResult, error) {
	res := &DeltaSweepResult{}
	for _, delta := range []int64{6, 12, 36, 72, 144} {
		f := NewFeeder(btc.Regtest, delta, seed)
		var addrHash [20]byte
		addrHash[0] = byte(delta)
		addr := btc.NewP2PKHAddress(addrHash, btc.Regtest)
		script := btc.PayToAddrScript(addr)
		// Funds arrive early (stable once past δ), then the chain grows a
		// full unstable suffix of δ+2 blocks with light traffic to the
		// same address.
		if _, err := f.FeedBlock([]TxSpec{{Outputs: PayN(script, 50, 546)}}); err != nil {
			return nil, err
		}
		for i := int64(0); i < delta+2; i++ {
			if _, err := f.FeedBlock([]TxSpec{{Outputs: PayN(script, 1, 546)}}); err != nil {
				return nil, err
			}
		}
		ctx := f.QueryCtx()
		if _, err := f.Canister.GetUTXOs(ctx, canister.GetUTXOsArgs{Address: addr.String()}); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, DeltaRow{
			Delta:                delta,
			GetUTXOsInstructions: ctx.Meter.Total(),
			UnstableBlocks:       f.Canister.UnstableBlockCount(),
		})
	}
	return res, nil
}

// Print renders the sweep.
func (r *DeltaSweepResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Ablation: δ sweep — get_utxos cost vs stability threshold (§III-C trade-off)")
	fmt.Fprintf(w, "%-8s %18s %16s\n", "δ", "instructions[M]", "unstable blocks")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8d %18.2f %16d\n", row.Delta, float64(row.GetUTXOsInstructions)/1e6, row.UnstableBlocks)
	}
}

// --- single-block vs multi-block responses (§III-B / §IV-A) ---

// SyncModeRow compares the two Algorithm 1 modes.
type SyncModeRow struct {
	Mode string
	// RequestRounds is how many canister request/response rounds were
	// needed to ingest the whole chain.
	RequestRounds int
	// MaxBlocksPerResponse observed.
	MaxBlocksPerResponse int
}

// SyncModeResult is the ablation for "Returning multiple blocks speeds up
// the syncing process but returning only one block is preferable for
// security reasons" (§III-B).
type SyncModeResult struct {
	ChainHeight int
	Rows        []SyncModeRow
}

// RunSyncModes syncs the same chain through an adapter once per mode.
func RunSyncModes(seed int64) (*SyncModeResult, error) {
	const height = 40
	res := &SyncModeResult{ChainHeight: height}
	for _, mode := range []struct {
		name       string
		multiBelow int64
	}{
		{"single-block (tip rule)", 0},
		{"multi-block (initial sync)", 1 << 30},
	} {
		sched := simnet.NewScheduler(seed)
		net := simnet.NewNetwork(sched)
		params := btc.RegtestParams()
		sim := btcnode.BuildHonestNetwork(net, params, 4)
		key, err := secp256k1.GeneratePrivateKey(rand.New(rand.NewSource(seed)))
		if err != nil {
			return nil, err
		}
		miner := btcnode.NewMinerWithKey(sim.Nodes[0], key)
		if _, err := miner.MineChain(height, 0); err != nil {
			return nil, err
		}
		if _, err := sim.SyncAll(5_000_000); err != nil {
			return nil, err
		}
		cfg := adapter.ConfigForNetwork(btc.Regtest)
		cfg.Connections = 3
		cfg.AddrLowWater, cfg.AddrHighWater = 1, 10
		cfg.MultiBlockSyncHeight = mode.multiBelow
		ad := adapter.New("adapter/0", net, params, sim.Directory, cfg)
		ad.Start()
		sched.RunFor(time.Minute)

		canCfg := canister.DefaultConfig(btc.Regtest)
		can := canister.New(canCfg)
		rounds := 0
		maxBlocks := 0
		for can.AvailableHeight() < height && rounds < 10*height {
			rounds++
			resp := ad.HandleRequest(can.CurrentRequest())
			if len(resp.Blocks) > maxBlocks {
				maxBlocks = len(resp.Blocks)
			}
			ctx := &ic.CallContext{Meter: ic.NewMeter(), Time: sched.Now(), Kind: ic.KindUpdate}
			if err := can.ProcessPayload(ctx, resp); err != nil {
				return nil, err
			}
			sched.RunFor(2 * time.Second) // block fetches in flight
		}
		res.Rows = append(res.Rows, SyncModeRow{
			Mode:                 mode.name,
			RequestRounds:        rounds,
			MaxBlocksPerResponse: maxBlocks,
		})
	}
	return res, nil
}

// Print renders the comparison.
func (r *SyncModeResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Ablation: Algorithm 1 response modes, syncing a %d-block chain\n", r.ChainHeight)
	fmt.Fprintf(w, "%-30s %16s %22s\n", "mode", "request rounds", "max blocks/response")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-30s %16d %22d\n", row.Mode, row.RequestRounds, row.MaxBlocksPerResponse)
	}
	fmt.Fprintln(w, "single-block mode bounds a malicious block maker to one fork block per IC round (Lemma IV.3)")
}

// --- τ sweep: availability vs staleness tolerance ---

// TauRow is one τ sample.
type TauRow struct {
	Tau int64
	// AnsweredFraction of requests served while the canister lags the
	// network by `Lag` blocks.
	AnsweredFraction float64
	Lag              int64
}

// TauSweepResult quantifies the τ availability/staleness trade-off of
// Algorithm 2's synced flag.
type TauSweepResult struct {
	Rows []TauRow
}

// RunTauSweep measures, for each τ, whether requests are answered while
// the canister knows about `lag` upcoming blocks it has not ingested.
func RunTauSweep(seed int64) (*TauSweepResult, error) {
	res := &TauSweepResult{}
	for _, tau := range []int64{0, 1, 2, 4, 8} {
		for _, lag := range []int64{0, 1, 2, 3, 6} {
			cfg := canister.DefaultConfig(btc.Regtest)
			cfg.SyncSlack = tau
			f := &Feeder{
				Canister: canister.New(cfg),
				Builder:  NewBlockBuilder(btc.RegtestParams(), seed),
				now:      time.Unix(1_700_000_000, 0).UTC(),
			}
			script := btc.PayToPubKeyHashScript([20]byte{0x7A})
			// Ingest 5 blocks fully.
			for i := 0; i < 5; i++ {
				if _, err := f.FeedBlock([]TxSpec{{Outputs: PayN(script, 2, 546)}}); err != nil {
					return nil, err
				}
			}
			// Then the chain grows by `lag` blocks the canister only hears
			// about as headers.
			var headers []btc.BlockHeader
			for i := int64(0); i < lag; i++ {
				blk, err := f.Builder.NextBlock(nil)
				if err != nil {
					return nil, err
				}
				headers = append(headers, blk.Header)
			}
			if len(headers) > 0 {
				ctx := f.ctx()
				if err := f.Canister.ProcessPayload(ctx, adapterResponseHeaders(headers)); err != nil {
					return nil, err
				}
			}
			ctx := f.QueryCtx()
			_, err := f.Canister.GetBalance(ctx, canister.GetBalanceArgs{Address: "any"})
			answered := 1.0
			if err != nil {
				answered = 0.0
			}
			res.Rows = append(res.Rows, TauRow{Tau: tau, Lag: lag, AnsweredFraction: answered})
		}
	}
	return res, nil
}

func adapterResponseHeaders(h []btc.BlockHeader) adapter.Response {
	return adapter.Response{Next: h}
}

// Print renders the τ/lag matrix.
func (r *TauSweepResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Ablation: τ sweep — requests answered (1) or refused (0) at a given block lag")
	fmt.Fprintf(w, "%-6s", "τ\\lag")
	lags := []int64{0, 1, 2, 3, 6}
	for _, l := range lags {
		fmt.Fprintf(w, "%6d", l)
	}
	fmt.Fprintln(w)
	byTau := map[int64]map[int64]float64{}
	for _, row := range r.Rows {
		if byTau[row.Tau] == nil {
			byTau[row.Tau] = map[int64]float64{}
		}
		byTau[row.Tau][row.Lag] = row.AnsweredFraction
	}
	for _, tau := range []int64{0, 1, 2, 4, 8} {
		fmt.Fprintf(w, "%-6d", tau)
		for _, l := range lags {
			fmt.Fprintf(w, "%6.0f", byTau[tau][l])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "production τ=2 keeps availability through transient lag while refusing stale answers")
}
