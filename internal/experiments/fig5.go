package experiments

import (
	"fmt"
	"io"

	"icbtc/internal/btc"
)

// Fig5Row is one weekly sample of UTXO-set growth.
type Fig5Row struct {
	Week         int
	UTXOCount    int
	StorageBytes int64
}

// Fig5Result is the regenerated Figure 5: "The growth of the UTXO set and
// the Bitcoin canister space consumption ... over the span of two years."
type Fig5Result struct {
	Rows []Fig5Row
	// ScaleDivisor relates the simulated population to mainnet's (the paper
	// ends at ~170 M UTXOs; the simulation ends at ~170 M / ScaleDivisor).
	ScaleDivisor int
}

// Fig5Config parameterizes the growth workload.
type Fig5Config struct {
	// Weeks of simulated history (the paper's figure spans ~104).
	Weeks int
	// BlocksPerWeek compresses a week's 1008 blocks into fewer, larger
	// steps (total growth is what matters, not block cadence).
	BlocksPerWeek int
	// NetNewUTXOsPerBlock is the average growth per block: outputs created
	// minus inputs spent. Mainnet's UTXO set grows on the order of 2-3 %
	// per month, which this reproduces at scale.
	NetNewUTXOsPerBlock int
	// SpendFraction is the fraction of each block's transactions that
	// consume existing outputs (churn without net growth).
	SpendFraction float64
	Seed          int64
}

// DefaultFig5Config returns a laptop-scale two-year run (~1/1000 mainnet).
func DefaultFig5Config() Fig5Config {
	return Fig5Config{
		Weeks:               104,
		BlocksPerWeek:       6,
		NetNewUTXOsPerBlock: 250,
		SpendFraction:       0.3,
		Seed:                5,
	}
}

// RunFig5 regenerates Figure 5 by replaying two years of synthetic traffic
// through the Bitcoin canister and sampling |U| and its storage footprint
// weekly.
func RunFig5(cfg Fig5Config) (*Fig5Result, error) {
	f := NewFeeder(btc.Regtest, 6, cfg.Seed)
	script := btc.PayToPubKeyHashScript([20]byte{0x05})
	res := &Fig5Result{ScaleDivisor: 1000}
	for week := 1; week <= cfg.Weeks; week++ {
		for b := 0; b < cfg.BlocksPerWeek; b++ {
			spends := int(float64(cfg.NetNewUTXOsPerBlock) * cfg.SpendFraction)
			specs := []TxSpec{
				// Growth: one fat transaction creating the net-new outputs.
				{Inputs: 0, Outputs: PayN(script, cfg.NetNewUTXOsPerBlock, 546)},
				// Churn: spend existing outputs, recreate the same number.
				{Inputs: spends, Outputs: PayN(script, spends, 546)},
			}
			if _, err := f.FeedBlock(specs); err != nil {
				return nil, err
			}
		}
		res.Rows = append(res.Rows, Fig5Row{
			Week:         week,
			UTXOCount:    f.Canister.StableUTXOCount(),
			StorageBytes: f.Canister.StableStorageBytes(),
		})
	}
	return res, nil
}

// Print renders the figure data as the paper's two series.
func (r *Fig5Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 5: UTXO count and canister storage over two years (scale 1:%d vs mainnet)\n", r.ScaleDivisor)
	fmt.Fprintf(w, "%-6s %12s %14s %16s\n", "week", "UTXOs", "storage[MiB]", "scaled-to-mainnet")
	for i, row := range r.Rows {
		if i%8 != 0 && i != len(r.Rows)-1 {
			continue // print every 8th week plus the last
		}
		fmt.Fprintf(w, "%-6d %12d %14.2f %13d M\n",
			row.Week, row.UTXOCount, float64(row.StorageBytes)/(1<<20),
			row.UTXOCount*r.ScaleDivisor/1_000_000)
	}
	last := r.Rows[len(r.Rows)-1]
	fmt.Fprintf(w, "final: %d UTXOs, %.2f MiB — paper reports ~170 M UTXOs / ~103 GiB at the same point\n",
		last.UTXOCount, float64(last.StorageBytes)/(1<<20))
}

// LinearityError reports how far storage growth deviates from linear in the
// UTXO count (Fig 5's claim: the two series track each other). It returns
// the max relative deviation of bytes-per-UTXO from its mean.
func (r *Fig5Result) LinearityError() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	var sum float64
	var n int
	for _, row := range r.Rows {
		if row.UTXOCount > 0 {
			sum += float64(row.StorageBytes) / float64(row.UTXOCount)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	mean := sum / float64(n)
	worst := 0.0
	for _, row := range r.Rows {
		if row.UTXOCount == 0 {
			continue
		}
		ratio := float64(row.StorageBytes) / float64(row.UTXOCount)
		dev := (ratio - mean) / mean
		if dev < 0 {
			dev = -dev
		}
		if dev > worst {
			worst = dev
		}
	}
	return worst
}
