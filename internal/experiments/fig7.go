package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"icbtc/internal/btc"
	"icbtc/internal/canister"
	"icbtc/internal/ic"
	"icbtc/internal/obs"
	"icbtc/internal/simnet"
)

// Fig7Row is one address's measurements.
type Fig7Row struct {
	UTXOCount int
	// Latencies for the four request variants.
	BalanceQuery, BalanceReplicated time.Duration
	UTXOsQuery, UTXOsReplicated     time.Duration
	// Instructions for the replicated get_utxos call (Fig 7 right).
	UTXOsInstructions uint64
	// Unstable marks addresses whose UTXOs live in unstable blocks (the
	// lower branch of the bifurcation).
	Unstable bool
}

// Fig7Result regenerates Figure 7: response time for get_balance and
// get_utxos (replicated and non-replicated) and instructions executed for
// replicated UTXO requests, as functions of the UTXO-set size.
type Fig7Result struct {
	Rows []Fig7Row
}

// Fig7Config parameterizes the population and the measurement subnet.
type Fig7Config struct {
	// Scale divides the 1000-address population (scale 10 → 100 addresses,
	// keeping the paper's skew). Latency distributions are insensitive to
	// the population size; the default keeps the experiment fast.
	Scale int
	// UnstableFraction of addresses get their UTXOs in recent (unstable)
	// blocks, producing the Fig 7 (right) bifurcation.
	UnstableFraction float64
	Seed             int64
}

// DefaultFig7Config returns the laptop-scale configuration.
func DefaultFig7Config() Fig7Config {
	return Fig7Config{Scale: 10, UnstableFraction: 0.3, Seed: 7}
}

// loadPopulation feeds the population into a fresh canister. Addresses
// marked unstable receive their outputs in blocks that stay within δ of the
// tip; everything else is pushed below the anchor.
func loadPopulation(cfg Fig7Config) (*Feeder, *AddressPopulation, map[string]bool, error) {
	const delta = 6
	f := NewFeeder(btc.Regtest, delta, cfg.Seed)
	pop := NewAddressPopulation(btc.Regtest, cfg.Seed, cfg.Scale)

	unstable := make(map[string]bool)
	nUnstable := int(float64(len(pop.Addresses)) * cfg.UnstableFraction)
	// The LAST nUnstable addresses are loaded late so their blocks stay
	// above the anchor.
	stableAddrs := pop.Addresses[:len(pop.Addresses)-nUnstable]
	unstableAddrs := pop.Addresses[len(pop.Addresses)-nUnstable:]

	// One transaction per address (all its outputs at once); a handful of
	// addresses per block keeps blocks well-formed and fast to hash.
	feed := func(addrs []PopulationAddress) error {
		const perBlock = 10
		for i := 0; i < len(addrs); i += perBlock {
			end := i + perBlock
			if end > len(addrs) {
				end = len(addrs)
			}
			var specs []TxSpec
			for _, a := range addrs[i:end] {
				specs = append(specs, TxSpec{Outputs: PayN(a.Script, a.Count, 546)})
			}
			if _, err := f.FeedBlock(specs); err != nil {
				return err
			}
		}
		return nil
	}
	if err := feed(stableAddrs); err != nil {
		return nil, nil, nil, err
	}
	// Push the stable population past δ.
	if err := f.FeedEmpty(delta + 2); err != nil {
		return nil, nil, nil, err
	}
	if err := feed(unstableAddrs); err != nil {
		return nil, nil, nil, err
	}
	for _, a := range unstableAddrs {
		unstable[a.Address] = true
	}
	return f, pop, unstable, nil
}

// RunFig7 loads the skewed address population and measures all four
// request variants per address on a default-configured subnet.
func RunFig7(cfg Fig7Config) (*Fig7Result, error) {
	f, pop, unstableSet, err := loadPopulation(cfg)
	if err != nil {
		return nil, err
	}

	// Install the preloaded canister on a measurement subnet.
	sched := simnet.NewScheduler(cfg.Seed)
	subCfg := ic.DefaultConfig()
	subCfg.DisableThresholdKeys = true // certification latency is modeled by CertifyDelay
	subCfg.Seed = cfg.Seed
	subnet, err := ic.NewSubnet(sched, subCfg)
	if err != nil {
		return nil, err
	}
	subnet.InstallCanister("bitcoin", f.Canister)
	subnet.Start()

	res := &Fig7Result{Rows: make([]Fig7Row, len(pop.Addresses))}
	done := 0
	for i, a := range pop.Addresses {
		i, a := i, a
		row := &res.Rows[i]
		row.Unstable = unstableSet[a.Address]
		subnet.Query("bitcoin", "get_balance", canister.GetBalanceArgs{Address: a.Address}, "bench", func(r ic.Result) {
			row.BalanceQuery = r.Latency
			done++
		})
		subnet.Query("bitcoin", "get_utxos", canister.GetUTXOsArgs{Address: a.Address}, "bench", func(r ic.Result) {
			row.UTXOsQuery = r.Latency
			if v, ok := r.Value.(*canister.GetUTXOsResult); ok && v != nil {
				row.UTXOCount = v.StableCount + v.UnstableCount
			}
			done++
		})
		subnet.SubmitUpdate("bitcoin", "get_balance", canister.GetBalanceArgs{Address: a.Address}, "bench", func(r ic.Result) {
			row.BalanceReplicated = r.Latency
			done++
		})
		subnet.SubmitUpdate("bitcoin", "get_utxos", canister.GetUTXOsArgs{Address: a.Address}, "bench", func(r ic.Result) {
			row.UTXOsReplicated = r.Latency
			row.UTXOsInstructions = r.Instructions
			done++
		})
	}
	want := len(pop.Addresses) * 4
	budget := sched.Now().Add(2 * time.Hour)
	for done < want && sched.Now().Before(budget) {
		sched.RunFor(time.Second)
	}
	if done < want {
		return nil, fmt.Errorf("experiments: fig7 timed out with %d/%d responses", done, want)
	}
	sort.Slice(res.Rows, func(i, j int) bool { return res.Rows[i].UTXOCount < res.Rows[j].UTXOCount })
	return res, nil
}

// bucketOf maps a UTXO count to the figure's logarithmic x-axis buckets.
var fig7Buckets = []int{1, 2, 4, 10, 20, 40, 100, 200, 400, 1000}

func bucketOf(count int) int {
	b := fig7Buckets[0]
	for _, edge := range fig7Buckets {
		if count >= edge {
			b = edge
		}
	}
	return b
}

// Print renders the three panels as bucketed medians.
func (r *Fig7Result) Print(w io.Writer) {
	type agg struct {
		bq, br, uq, ur []time.Duration
		instr          []uint64
		instrUnstable  []uint64
	}
	buckets := map[int]*agg{}
	for _, row := range r.Rows {
		b := bucketOf(row.UTXOCount)
		a := buckets[b]
		if a == nil {
			a = &agg{}
			buckets[b] = a
		}
		a.bq = append(a.bq, row.BalanceQuery)
		a.br = append(a.br, row.BalanceReplicated)
		a.uq = append(a.uq, row.UTXOsQuery)
		a.ur = append(a.ur, row.UTXOsReplicated)
		if row.Unstable {
			a.instrUnstable = append(a.instrUnstable, row.UTXOsInstructions)
		} else {
			a.instr = append(a.instr, row.UTXOsInstructions)
		}
	}
	fmt.Fprintln(w, "Figure 7 (left/center): median response time [s] by #UTXOs")
	fmt.Fprintf(w, "%-8s %14s %14s %14s %14s\n", "#UTXOs", "bal-query", "bal-repl", "utxo-query", "utxo-repl")
	for _, b := range fig7Buckets {
		a := buckets[b]
		if a == nil {
			continue
		}
		fmt.Fprintf(w, "%-8d %14.3f %14.3f %14.3f %14.3f\n", b,
			medianDur(a.bq).Seconds(), medianDur(a.br).Seconds(),
			medianDur(a.uq).Seconds(), medianDur(a.ur).Seconds())
	}
	fmt.Fprintln(w, "Figure 7 (right): median instructions [M] for replicated get_utxos")
	fmt.Fprintf(w, "%-8s %16s %18s\n", "#UTXOs", "stable-UTXOs", "unstable-UTXOs")
	for _, b := range fig7Buckets {
		a := buckets[b]
		if a == nil {
			continue
		}
		fmt.Fprintf(w, "%-8d %16.1f %18.1f\n", b,
			float64(medianU64(a.instr))/1e6, float64(medianU64(a.instrUnstable))/1e6)
	}
}

// medianDur and medianU64 delegate to the obs order-statistic helpers (the
// single home of the nearest-rank rule the reports have always used). Both
// sort the sample slice in place.
func medianDur(d []time.Duration) time.Duration { return obs.SummarizeDurations(d).P50 }

func medianU64(d []uint64) uint64 { return obs.MedianU64(d) }
