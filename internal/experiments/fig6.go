package experiments

import (
	"fmt"
	"io"

	"icbtc/internal/btc"
)

// Fig6Row is the ingestion cost of one stable block.
type Fig6Row struct {
	Day           int
	Instructions  uint64
	InsertOutputs uint64
	RemoveInputs  uint64
}

// Fig6Result regenerates Figure 6: per-block ingestion cost over a six-
// month window (left) and the split between output insertions and input
// removals (right).
type Fig6Result struct {
	Rows []Fig6Row
	// AvgInstructions is the figure's dashed average line (paper: 21.6 B).
	AvgInstructions uint64
}

// Fig6Config parameterizes the ingestion workload.
type Fig6Config struct {
	// Days of daily block samples (the paper's window is ~180 days).
	Days int
	// MinOps/MaxOps bound the per-block input+output operation count; real
	// blocks vary with demand, which produces the figure's vertical spread.
	MinOps, MaxOps int
	Seed           int64
}

// DefaultFig6Config reproduces the paper's window with block sizes chosen
// so the average lands near 21.6 B instructions.
func DefaultFig6Config() Fig6Config {
	return Fig6Config{Days: 180, MinOps: 2400, MaxOps: 8400, Seed: 6}
}

// RunFig6 feeds six months of variable-size blocks and meters stable
// ingestion. Every delivered block pushes an older one across the δ
// boundary (after warm-up), so each delivery folds exactly one block.
func RunFig6(cfg Fig6Config) (*Fig6Result, error) {
	const delta = 6
	f := NewFeeder(btc.Regtest, delta, cfg.Seed)
	script := btc.PayToPubKeyHashScript([20]byte{0x06})
	rng := f.Builder.rng

	specsFor := func() []TxSpec {
		ops := cfg.MinOps + rng.Intn(cfg.MaxOps-cfg.MinOps+1)
		// Split ops roughly half outputs, half inputs: spend what exists,
		// create the rest. Group into transactions of ~2 in / 2 out.
		spend := ops / 2
		if avail := f.Builder.SpendableOutputs(); spend > avail {
			spend = avail
		}
		create := ops - spend
		var specs []TxSpec
		for spend > 0 || create > 0 {
			in := 2
			if in > spend {
				in = spend
			}
			out := 2
			if out > create {
				out = create
			}
			if in == 0 && out == 0 {
				break
			}
			specs = append(specs, TxSpec{Inputs: in, Outputs: PayN(script, out, 546)})
			spend -= in
			create -= out
		}
		return specs
	}

	// Warm-up: fill the pipeline so the anchor starts moving and the
	// spendable pool is deep enough for the input halves.
	for i := 0; i < delta+4; i++ {
		if _, err := f.FeedBlock(specsFor()); err != nil {
			return nil, err
		}
	}

	res := &Fig6Result{}
	var sum uint64
	for day := 1; day <= cfg.Days; day++ {
		cost, err := f.FeedBlock(specsFor())
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig6Row{
			Day:           day,
			Instructions:  cost.Instructions,
			InsertOutputs: cost.InsertOutputs,
			RemoveInputs:  cost.RemoveInputs,
		})
		sum += cost.Instructions
	}
	res.AvgInstructions = sum / uint64(len(res.Rows))
	return res, nil
}

// Print renders both panels of the figure.
func (r *Fig6Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 6 (left): block ingestion cost over six months\n")
	fmt.Fprintf(w, "%-6s %18s %18s %18s\n", "day", "instructions[B]", "insert-outputs[B]", "remove-inputs[B]")
	for i, row := range r.Rows {
		if i%15 != 0 && i != len(r.Rows)-1 {
			continue
		}
		fmt.Fprintf(w, "%-6d %18.2f %18.2f %18.2f\n",
			row.Day,
			float64(row.Instructions)/1e9,
			float64(row.InsertOutputs)/1e9,
			float64(row.RemoveInputs)/1e9)
	}
	fmt.Fprintf(w, "average ingestion cost: %.2f B instructions (paper: 21.6 B)\n",
		float64(r.AvgInstructions)/1e9)
	ins, rem := r.SplitFractions()
	fmt.Fprintf(w, "Figure 6 (right): cost split — insert outputs %.0f%%, remove inputs %.0f%% (paper: ~half each)\n",
		ins*100, rem*100)
}

// SplitFractions returns the fraction of metered ingestion cost spent on
// output insertion and input removal respectively.
func (r *Fig6Result) SplitFractions() (insert, remove float64) {
	var ins, rem, tot uint64
	for _, row := range r.Rows {
		ins += row.InsertOutputs
		rem += row.RemoveInputs
		tot += row.Instructions
	}
	if tot == 0 {
		return 0, 0
	}
	return float64(ins) / float64(tot), float64(rem) / float64(tot)
}
